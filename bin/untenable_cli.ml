(* The untenable command-line tool.

     untenable-cli helpers [--version VER]   list the helper table
     untenable-cli audit                     call-graph audit (Fig. 3 data)
     untenable-cli demos                     list the exploit corpus
     untenable-cli demo ID [--fixed]         run one exploit demo
     untenable-cli dispatch [--filters N]    attach a filter population and
                   [--events N] [--jit]      drive a synthetic packet stream
                   [--trace FILE]            (optionally writing a Perfetto trace)
     untenable-cli serve [--events N]        serve a stream with scripted
                   [--reloads N]             mid-stream hot reloads: epoch
                   [--filters N]             swaps under live dispatch, then
                   [--domains N]             the epoch-transition table (with
                                             --domains > 1, sharded across
                                             OCaml domains; per-shard table)
     untenable-cli supervise [--events N]    serve a stream with a crasher in
                   [--policy P]              the population; per-extension
                   [--chaos-rate R]          breaker/quarantine health
     untenable-cli profile [--period NS]     sampled block-level profile plus
                   [--events N] [--jit]      per-helper latency histograms
     untenable-cli flame [--samples]         folded stacks (span self-time or
                                             profiler samples) for flamegraph.pl
     untenable-cli top [--events N]          per-extension health scorecard:
                   [--chaos-rate R]          p50/p99, crash/exhaust rates,
                                             breaker state, cache hit ratio
     untenable-cli trace-check FILE          validate a Chrome trace-event file
     untenable-cli matrix                    executable Table 2
     untenable-cli datasets                  the paper's static datasets
     untenable-cli stats [ID] [--format F]   telemetry snapshot (last demo or ID)
     untenable-cli trace ID [--fixed]        run a demo, print its trace timeline
     untenable-cli lint [NAME]               run the static-analysis passes over
                   [--no-resource]           the built-in lint corpus (or one
                   [--no-lock] [--no-elide]  program) and print the findings
                   [--no-bound]
     untenable-cli bound [--jit]             static cost & termination analysis
                                             over the bound corpus: loop trip
                                             counts, worst-case bounds, and the
                                             max observed retired-insn count
     untenable-cli fuzz [--seed N]           differential fuzzing: generate
                   [--budget N]              seeded programs, cross-check every
                   [--matrix M] [--dist D]   execution mode against the others,
                   [--replay FILE]           shrink + persist divergences (or
                   [--plant-jit-bug]         replay one corpus counterexample)
                   [--corpus DIR]
*)

open Untenable
open Cmdliner
module Serve = Framework.Serve

let version_arg =
  let parse s =
    match Kerndata.Kver.of_string s with
    | Some v -> Ok v
    | None -> Error (`Msg (Printf.sprintf "unknown kernel version %S" s))
  in
  let print ppf v = Format.fprintf ppf "%s" (Kerndata.Kver.to_string v) in
  Arg.conv (parse, print)

(* ---- helpers ---- *)

let helpers_cmd =
  let run version =
    let defs = Helpers.Registry.available ~version in
    Printf.printf "%d helpers available in %s:\n" (List.length defs)
      (Kerndata.Kver.to_string version);
    List.iter
      (fun (d : Helpers.Registry.def) ->
        Printf.printf "  %3d  %-28s since %-6s callgraph=%-5d %s\n" d.id d.name
          (Kerndata.Kver.to_string d.introduced)
          d.callgraph_nodes
          (match d.disposition with
          | Some disp -> "[" ^ Kerndata.Retirement.disposition_to_string disp ^ "]"
          | None -> ""))
      (List.sort (fun a b -> compare a.Helpers.Registry.id b.Helpers.Registry.id) defs)
  in
  let version =
    Arg.(value & opt version_arg Kerndata.Kver.V5_18 & info [ "version" ] ~doc:"Kernel version.")
  in
  Cmd.v (Cmd.info "helpers" ~doc:"List the helper-function table")
    Term.(const run $ version)

(* ---- audit ---- *)

let audit_cmd =
  let run () =
    let dist = Callgraph.Analysis.measure (Callgraph.Kernel_graph.build ()) in
    Printf.printf
      "helper call-graph complexity (%d helpers): min=%d median=%d mean=%.0f max=%d\n"
      dist.Callgraph.Analysis.n dist.Callgraph.Analysis.min_nodes
      dist.Callgraph.Analysis.median dist.Callgraph.Analysis.mean
      dist.Callgraph.Analysis.max_nodes;
    Printf.printf "30+ nodes: %.1f%%  500+ nodes: %.1f%% (paper: 52.2%% / 34.5%%)\n"
      (100. *. dist.Callgraph.Analysis.share_ge30)
      (100. *. dist.Callgraph.Analysis.share_ge500)
  in
  Cmd.v (Cmd.info "audit" ~doc:"Audit helper call-graph complexity (Figure 3)")
    Term.(const run $ const ())

(* ---- demos ---- *)

let demos_cmd =
  let run () =
    List.iter
      (fun (d : Framework.Exploits.demo) ->
        Printf.printf "  %-36s [%s] %s\n" d.id d.bug_class d.title)
      Framework.Exploits.all
  in
  Cmd.v (Cmd.info "demos" ~doc:"List the exploit corpus")
    Term.(const run $ const ())

(* Where `demo` leaves its telemetry snapshot for a later `stats` invocation
   (separate process, so the registry itself does not survive). *)
let snapshot_file = ".untenable-telemetry"

let run_demo_exn id fixed =
  match Framework.Exploits.find id with
  | None ->
    Printf.eprintf "unknown demo %S (see `untenable-cli demos`)\n" id;
    exit 1
  | Some d -> (d, d.Framework.Exploits.run ~vulnerable:(not fixed))

let save_snapshot () =
  try Telemetry.Export.save_file (Telemetry.Registry.snapshot ()) snapshot_file
  with Sys_error _ -> ()

let demo_cmd =
  let run id fixed =
    let d, r = run_demo_exn id fixed in
    Printf.printf "%s\n  load: %s\n  run:  %s\n  kernel dead: %b\n  attack: %s\n"
      d.Framework.Exploits.title r.Framework.Exploits.gate
      r.Framework.Exploits.runtime r.Framework.Exploits.kernel_dead
      (if r.Framework.Exploits.attack_succeeded then "SUCCEEDED" else "defeated");
    save_snapshot ();
    Printf.printf "  (telemetry snapshot saved; inspect with `untenable-cli stats`)\n"
  in
  let id = Arg.(required & pos 0 (some string) None & info [] ~docv:"ID") in
  let fixed =
    Arg.(value & flag & info [ "fixed" ] ~doc:"Run against the fixed/guarded kernel.")
  in
  Cmd.v (Cmd.info "demo" ~doc:"Run one exploit demo") Term.(const run $ id $ fixed)

(* ---- stats / trace ---- *)

let format_arg =
  Arg.(
    value
    & opt (enum [ ("table", `Table); ("json", `Json); ("prometheus", `Prometheus) ]) `Table
    & info [ "format" ] ~docv:"FORMAT" ~doc:"Output format: table, json or prometheus.")

let render_snapshot fmt (s : Telemetry.Registry.snapshot) =
  match fmt with
  | `Table -> Format.printf "%a" (Telemetry.Export.pp_table ~all:false) s
  | `Json -> print_string (Telemetry.Export.to_json s)
  | `Prometheus -> print_string (Telemetry.Export.to_prometheus s)

let stats_cmd =
  let run id fixed fmt =
    match id with
    | Some id ->
      (* run the demo in-process and dump the registry *)
      Telemetry.Registry.reset ();
      let _d, _r = run_demo_exn id fixed in
      render_snapshot fmt (Telemetry.Registry.snapshot ())
    | None -> (
      (* no demo given: show the snapshot the last `demo` run left behind *)
      match Telemetry.Export.load_file snapshot_file with
      | s -> render_snapshot fmt s
      | exception Sys_error _ ->
        Printf.eprintf
          "no telemetry snapshot found (run `untenable-cli demo ID` first, or pass a \
           demo ID to `stats`)\n";
        exit 1
      | exception Failure msg ->
        Printf.eprintf "telemetry snapshot %s is unreadable: %s\n" snapshot_file
          msg;
        exit 1
      | exception e ->
        Printf.eprintf
          "telemetry snapshot %s is truncated or corrupt (%s); re-run a demo to \
           regenerate it\n"
          snapshot_file (Printexc.to_string e);
        exit 1)
  in
  let id = Arg.(value & pos 0 (some string) None & info [] ~docv:"ID") in
  let fixed =
    Arg.(value & flag & info [ "fixed" ] ~doc:"Run against the fixed/guarded kernel.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Dump the telemetry snapshot (of the last demo, or of demo ID run in-process)")
    Term.(const run $ id $ fixed $ format_arg)

let trace_cmd =
  let run id fixed =
    Telemetry.Registry.reset ();
    let d, _r = run_demo_exn id fixed in
    let s = Telemetry.Registry.snapshot () in
    Printf.printf "trace timeline for %s:\n" d.Framework.Exploits.id;
    Format.printf "%a" Telemetry.Export.pp_timeline s
  in
  let id = Arg.(required & pos 0 (some string) None & info [] ~docv:"ID") in
  let fixed =
    Arg.(value & flag & info [ "fixed" ] ~doc:"Run against the fixed/guarded kernel.")
  in
  Cmd.v (Cmd.info "trace" ~doc:"Run an exploit demo and print its trace-event timeline")
    Term.(const run $ id $ fixed)

(* ---- matrix ---- *)

let matrix_cmd =
  let run () =
    let rows = Framework.Safety_matrix.rows () in
    print_string
      (Framework.Report.table
         ~header:[ "Safety property"; "Enforcement"; "Upheld" ]
         (List.map
            (fun (r : Framework.Safety_matrix.row) ->
              [ r.property;
                Kerndata.Safety_props.mechanism_to_string r.mechanism;
                Framework.Report.check r.upheld ])
            rows))
  in
  Cmd.v (Cmd.info "matrix" ~doc:"Run the executable Table 2 safety matrix")
    Term.(const run $ const ())

(* ---- datasets ---- *)

let datasets_cmd =
  let run () =
    Printf.printf "Figure 2 — verifier LoC by version:\n";
    List.iter
      (fun (p : Kerndata.Verifier_loc.point) ->
        Printf.printf "  %-6s %6d  %s\n" (Kerndata.Kver.to_string p.version) p.loc
          (String.concat "; " p.features_added))
      Kerndata.Verifier_loc.series;
    Printf.printf "\nFigure 4 — helper count by version:\n";
    List.iter
      (fun (p : Kerndata.Helper_history.point) ->
        Printf.printf "  %-6s %4d\n" (Kerndata.Kver.to_string p.version) p.count)
      Kerndata.Helper_history.series;
    Printf.printf "\nTable 1 — bug classes (2021-2022):\n";
    List.iter
      (fun (c : Kerndata.Bug_stats.clazz) ->
        Printf.printf "  %-28s total=%2d helper=%2d verifier=%2d\n" c.name c.total
          c.in_helpers c.in_verifier)
      Kerndata.Bug_stats.classes
  in
  Cmd.v (Cmd.info "datasets" ~doc:"Print the paper's static datasets")
    Term.(const run $ const ())

(* ---- dispatch ---- *)

(* The rotating filter population shared by dispatch / profile / flame:
   length, parity-of-length, first byte — plus (when [with_helper]) a
   kprobe that calls a helper, so the per-helper latency histograms have
   something to show. *)
let attach_filters ?(with_helper = false) engine ~filters =
  let open Ebpf.Asm in
  let bodies =
    [| ("len", [ ldxw r0 r1 0; exit_ ]);
       ("parity", [ ldxw r6 r1 0; mov_r r0 r6; and_i r0 1; exit_ ]);
       ("proto", [ ldxw r0 r1 4; exit_ ]) |]
  in
  let world = engine.Framework.Dispatch.world in
  let load name prog_type items =
    let prog = Ebpf.Program.of_items_exn ~name ~prog_type items in
    match Framework.Pipeline.load_ebpf world prog with
    | Ok loaded ->
      ignore (Framework.Attach.attach engine.Framework.Dispatch.attach ~hook:"xdp" loaded)
    | Error e ->
      Format.eprintf "load failed: %a@." Framework.Pipeline.pp_error e;
      exit 1
  in
  for i = 0 to filters - 1 do
    let name, items = bodies.(i mod Array.length bodies) in
    load (Printf.sprintf "%s%d" name i) Ebpf.Program.Socket_filter items
  done;
  if with_helper then begin
    let h = Helpers.Registry.id_of_name in
    load "ktime" Ebpf.Program.Kprobe
      [ call (h "bpf_ktime_get_ns"); mov_i r0 0; exit_ ]
  end

(* Write the retained span tree as Chrome trace-event JSON and prove it
   Perfetto-loadable before declaring success: an unbalanced file (e.g.
   from ring overflow) is worse than no file. *)
let write_chrome_trace path =
  let text = Telemetry.Export.to_chrome_trace (Telemetry.Registry.snapshot ()) in
  let oc = open_out path in
  output_string oc text;
  close_out oc;
  match Telemetry.Trace_check.validate text with
  | Ok st ->
    Printf.printf
      "trace: %s — %d events, %d spans, %d instants, %d lanes, max depth %d \
       (perfetto-valid)\n"
      path st.Telemetry.Trace_check.events st.Telemetry.Trace_check.spans
      st.Telemetry.Trace_check.instants st.Telemetry.Trace_check.traces
      st.Telemetry.Trace_check.max_depth
  | Error msg ->
    Printf.eprintf "trace: %s is NOT a valid trace-event file: %s\n" path msg;
    exit 1

let dispatch_cmd =
  let run filters events size seed jit trace_out =
    (* tracing to a file needs every Enter matched by a retained Exit, so
       size the ring for the whole stream instead of the default window *)
    (match trace_out with
    | Some _ ->
      Telemetry.Registry.set_trace_capacity
        (max Telemetry.Registry.default_trace_capacity
           ((events * ((filters * 8) + 8)) + 256))
    | None -> ());
    let world = Framework.World.create_populated () in
    let opts = { Framework.Invoke.default_opts with Framework.Invoke.use_jit = jit } in
    let engine = Framework.Dispatch.create ~opts world in
    attach_filters engine ~filters;
    Printf.printf "loaded programs:\n";
    List.iter
      (fun (id, (p : Ebpf.Program.t)) ->
        Printf.printf "  prog_id=%d %-12s %d insns\n" id p.Ebpf.Program.name
          (Ebpf.Program.length p))
      (Framework.World.progs_sorted world);
    (match Framework.World.tail_calls_sorted world with
    | [] -> ()
    | tcs ->
      Printf.printf "tail-call table:\n";
      List.iter (fun (idx, pid) -> Printf.printf "  [%d] -> prog_id=%d\n" idx pid) tcs);
    List.iter
      (fun hook ->
        Printf.printf "hook %s:\n" hook;
        List.iter
          (fun a -> Printf.printf "  %s\n" (Framework.Attach.describe a))
          (Framework.Attach.attached engine.Framework.Dispatch.attach ~hook))
      (Framework.Attach.hooks engine.Framework.Dispatch.attach);
    let stats =
      Serve.run engine (Serve.plan ~seed ~size ~hook:"xdp" ~count:events ())
    in
    Format.printf "%a@." Serve.pp_stats stats;
    (match trace_out with None -> () | Some path -> write_chrome_trace path);
    save_snapshot ();
    Printf.printf "(telemetry snapshot saved; inspect with `untenable-cli stats`)\n"
  in
  let filters =
    Arg.(value & opt int 3 & info [ "filters" ] ~doc:"Number of filters to attach.")
  in
  let events =
    Arg.(value & opt int 10_000 & info [ "events" ] ~doc:"Number of synthetic packets.")
  in
  let size =
    Arg.(value & opt int 64 & info [ "size" ] ~doc:"Packet size in bytes.")
  in
  let seed =
    Arg.(value & opt int64 0x9e3779b97f4a7c15L & info [ "seed" ] ~doc:"Packet-stream seed.")
  in
  let jit = Arg.(value & flag & info [ "jit" ] ~doc:"Run filters through the JIT.") in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write the causal trace as Chrome trace-event JSON to $(docv).")
  in
  Cmd.v
    (Cmd.info "dispatch"
       ~doc:"Load and attach a filter population, then drive a synthetic packet stream")
    Term.(const run $ filters $ events $ size $ seed $ jit $ trace_out)

(* ---- supervise ---- *)

let supervise_cmd =
  let run events policy_name chaos_rate no_crasher =
    let world = Framework.World.create_populated () in
    let policy =
      match policy_name with
      | `Fail_fast -> Framework.Dispatch.Fail_fast
      | `Isolate -> Framework.Dispatch.Isolate
      | `Supervise ->
        (* a cooldown short enough to see quarantine inside one stream *)
        Framework.Dispatch.Supervise
          { Framework.Supervisor.default_config with
            Framework.Supervisor.cooldown_ns = 100L;
            max_cooldown_ns = 1_000L }
    in
    let engine = Framework.Dispatch.create ~policy world in
    let open Ebpf.Asm in
    let h = Helpers.Registry.id_of_name in
    let attach name ~prog_type items =
      let prog = Ebpf.Program.of_items_exn ~name ~prog_type items in
      match Framework.Loader.load_ebpf world prog with
      | Ok loaded ->
        ignore
          (Framework.Attach.attach engine.Framework.Dispatch.attach ~hook:"xdp" loaded)
      | Error e ->
        Format.eprintf "load failed: %a@." Framework.Loader.pp_load_error e;
        exit 1
    in
    if not no_crasher then begin
      (* the §2.2 probe-read vehicle: verifier-accepted, crashes on call *)
      Helpers.Bugdb.force_on world.Framework.World.bugs
        "hbug:probe-read-size-unchecked";
      attach "crasher" ~prog_type:Ebpf.Program.Kprobe
        [ call (h "bpf_get_current_task"); mov_r r3 r0; mov_r r1 r10;
          add_i r1 (-16); mov_i r2 16; call (h "bpf_probe_read_kernel");
          mov_i r0 0; exit_ ]
    end;
    List.iter
      (fun (name, items) ->
        attach name ~prog_type:Ebpf.Program.Socket_filter items)
      [ ("len", [ ldxw r0 r1 0; exit_ ]);
        ("parity", [ ldxw r6 r1 0; mov_r r0 r6; and_i r0 1; exit_ ]);
        ("proto", [ ldxw r0 r1 4; exit_ ]) ];
    let chaos =
      if chaos_rate <= 0. then None
      else
        Some { Framework.Chaos.default_config with Framework.Chaos.fault_rate = chaos_rate }
    in
    (match chaos with
    | Some c ->
      Printf.printf "chaos: %.2f%% fault rate, %d of %d events carry an injection\n"
        (c.Framework.Chaos.fault_rate *. 100.)
        (Framework.Chaos.planned c ~count:events)
        events
    | None -> ());
    let stats =
      Serve.run engine (Serve.plan ?chaos ~size:64 ~hook:"xdp" ~count:events ())
    in
    Format.printf "%a@." Serve.pp_stats stats;
    print_string
      (Framework.Report.table
         ~header:[ "#"; "extension"; "state"; "inv"; "ok"; "stop"; "crash";
                   "exhaust"; "skip"; "trips"; "checksum" ]
         (List.map
            (fun (x : Framework.Supervisor.health) ->
              [ string_of_int x.Framework.Supervisor.attach_id;
                x.Framework.Supervisor.name;
                Framework.Supervisor.state_to_string x.Framework.Supervisor.state;
                string_of_int x.Framework.Supervisor.invocations;
                string_of_int x.Framework.Supervisor.finished;
                string_of_int x.Framework.Supervisor.stopped;
                string_of_int x.Framework.Supervisor.crashed;
                string_of_int x.Framework.Supervisor.exhausted;
                string_of_int x.Framework.Supervisor.skipped;
                string_of_int x.Framework.Supervisor.trips;
                Printf.sprintf "%016Lx" x.Framework.Supervisor.ret_checksum ])
            stats.Serve.per_ext));
    Printf.printf "kernel at end: %s\n"
      (if Kernel_sim.Kernel.is_dead world.Framework.World.kernel then "DEAD"
       else "alive");
    save_snapshot ();
    Printf.printf "(telemetry snapshot saved; inspect with `untenable-cli stats`)\n"
  in
  let events =
    Arg.(value & opt int 2_000 & info [ "events" ] ~doc:"Number of synthetic packets.")
  in
  let policy =
    Arg.(
      value
      & opt
          (enum
             [ ("fail-fast", `Fail_fast); ("isolate", `Isolate);
               ("supervise", `Supervise) ])
          `Supervise
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:"Fault policy: fail-fast, isolate or supervise.")
  in
  let chaos_rate =
    Arg.(
      value & opt float 0.
      & info [ "chaos-rate" ] ~docv:"RATE"
          ~doc:"Chaos injection probability per event (0 disables).")
  in
  let no_crasher =
    Arg.(
      value & flag
      & info [ "no-crasher" ]
          ~doc:"Attach only healthy filters (skip the probe-read crasher).")
  in
  Cmd.v
    (Cmd.info "supervise"
       ~doc:
         "Serve a packet stream with a crashing extension in the population and \
          show per-extension supervision health")
    Term.(const run $ events $ policy $ chaos_rate $ no_crasher)

(* ---- serve ---- *)

let serve_cmd =
  let run events reloads filters size seed domains =
    let world = Framework.World.create_populated () in
    let engine = Framework.Dispatch.create world in
    attach_filters engine ~filters;
    (* the scripted reload schedule: at evenly spaced event boundaries,
       alternately hot-load + attach a fresh filter (verified inside the
       swap, staged on the epoch builder) and unload + detach the previous
       hot one — both publish exactly one epoch *)
    let last_hot = ref None in
    let plan k (e : Framework.Dispatch.engine) b =
      match !last_hot with
      | Some (attach_id, prog_id) when k mod 2 = 1 ->
        ignore (Framework.Attach.detach e.Framework.Dispatch.attach ~attach_id);
        ignore (Framework.Epoch.unload b ~prog_id);
        last_hot := None
      | _ -> (
        let name = Printf.sprintf "hot%d" k in
        let prog =
          Ebpf.Asm.(
            Ebpf.Program.of_items_exn ~name
              ~prog_type:Ebpf.Program.Socket_filter
              [ mov_i r0 (100 + k); exit_ ])
        in
        match Framework.Pipeline.load_ebpf ~into:b world prog with
        | Ok (Framework.Pipeline.Ebpf_prog { prog_id; _ } as loaded) ->
          let a =
            Framework.Attach.attach e.Framework.Dispatch.attach ~hook:"xdp" loaded
          in
          last_hot := Some (a.Framework.Attach.attach_id, prog_id)
        | Ok _ -> ()
        | Error err ->
          Format.eprintf "hot load failed: %a@." Framework.Pipeline.pp_error err)
    in
    let reload =
      List.init reloads (fun k -> (((k + 1) * events) / (reloads + 1), plan k))
    in
    Printf.printf "serving %d events with %d scripted reloads over %d domain%s...\n"
      events reloads domains
      (if domains = 1 then "" else "s");
    let stats =
      Serve.run engine
        (Serve.plan ~seed ~size ~domains ~reloads:reload ~hook:"xdp" ~count:events ())
    in
    Format.printf "%a@." Serve.pp_stats stats;
    (match stats.Serve.per_shard with
    | [] -> ()
    | shards ->
      Printf.printf "\nper-shard:\n";
      print_string
        (Framework.Report.table
           ~header:[ "shard"; "events"; "inv"; "ok"; "crash"; "skip"; "drop";
                     "qpeak"; "waits" ]
           (List.map
              (fun (sh : Serve.shard_stats) ->
                [ string_of_int sh.Serve.shard;
                  string_of_int sh.Serve.s_events;
                  string_of_int sh.Serve.s_invocations;
                  string_of_int sh.Serve.s_finished;
                  string_of_int sh.Serve.s_crashed;
                  string_of_int sh.Serve.s_skipped;
                  string_of_int sh.Serve.s_dropped;
                  string_of_int sh.Serve.s_queue_peak;
                  string_of_int sh.Serve.s_backpressure_waits ])
              shards)));
    Printf.printf "\nevents served per epoch:\n";
    print_string
      (Framework.Report.table
         ~header:[ "epoch"; "events" ]
         (List.map
            (fun (e, n) -> [ string_of_int e; string_of_int n ])
            stats.Serve.totals.Serve.per_epoch));
    let store = world.Framework.World.epochs in
    Printf.printf "\nepoch transitions:\n";
    print_string
      (Framework.Report.table
         ~header:[ "epoch"; "at (vclock ns)"; "loads"; "unloads"; "tail-calls";
                   "vconfig"; "aconfig"; "grace" ]
         (List.map
            (fun (t : Framework.Epoch.transition) ->
              [ string_of_int t.Framework.Epoch.epoch;
                Int64.to_string t.Framework.Epoch.at_ns;
                string_of_int t.Framework.Epoch.loads;
                string_of_int t.Framework.Epoch.unloads;
                string_of_int t.Framework.Epoch.tail_call_updates;
                (if t.Framework.Epoch.vconfig_changed then "changed" else "-");
                (if t.Framework.Epoch.aconfig_changed then "changed" else "-");
                (match t.Framework.Epoch.grace_ns with
                | Some g -> Printf.sprintf "%Ldns" g
                | None -> "pending") ])
            (Framework.Epoch.transitions store)));
    let swap = Telemetry.Registry.histogram "epoch.swap_ns" in
    Printf.printf
      "epochs: %d published, %d retired, %d pending grace; swap latency \
       mean=%.0fns max=%Ldns (host clock)\n"
      (Framework.Epoch.published store)
      (Framework.Epoch.retired store)
      (Framework.Epoch.grace_pending store)
      (Telemetry.Histogram.mean swap)
      (Telemetry.Histogram.max_value swap);
    let vc = world.Framework.World.vcache in
    Printf.printf "verdict cache: %d hits (%d cross-epoch), %d misses\n"
      (Framework.Verdict_cache.hits vc)
      (Framework.Verdict_cache.cross_epoch_reuse vc)
      (Framework.Verdict_cache.misses vc);
    save_snapshot ();
    Printf.printf "(telemetry snapshot saved; inspect with `untenable-cli stats`)\n"
  in
  let events =
    Arg.(value & opt int 10_000 & info [ "events" ] ~doc:"Number of synthetic packets.")
  in
  let reloads =
    Arg.(
      value & opt int 3
      & info [ "reloads" ]
          ~doc:"Scripted hot reloads, spread evenly across the stream.")
  in
  let filters =
    Arg.(value & opt int 3 & info [ "filters" ] ~doc:"Number of filters to attach.")
  in
  let size = Arg.(value & opt int 64 & info [ "size" ] ~doc:"Packet size in bytes.") in
  let seed =
    Arg.(value & opt int64 0x9e3779b97f4a7c15L & info [ "seed" ] ~doc:"Packet-stream seed.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Serving domains: 1 runs the historical sequential loop, >1 shards \
             the stream across $(docv) OCaml domains over shared epoch \
             snapshots.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a packet stream with scripted mid-stream hot reloads (epoch \
          swaps under live dispatch) and print the epoch-transition table")
    Term.(const run $ events $ reloads $ filters $ size $ seed $ domains)

(* ---- profile / flame ---- *)

(* Shared workload for the profiling views: the dispatch population (plus a
   helper-calling kprobe) under a seeded stream, with the Vclock sampler
   armed for the duration. *)
let run_profiled ~filters ~events ~size ~seed ~jit ~period_ns =
  let world = Framework.World.create_populated () in
  let opts = { Framework.Invoke.default_opts with Framework.Invoke.use_jit = jit } in
  let engine = Framework.Dispatch.create ~opts world in
  attach_filters ~with_helper:true engine ~filters;
  Telemetry.Profiler.reset ();
  Telemetry.Profiler.set_period period_ns;
  let stats =
    Fun.protect
      ~finally:(fun () -> Telemetry.Profiler.set_period 0L)
      (fun () ->
        Serve.run engine (Serve.plan ~seed ~size ~hook:"xdp" ~count:events ()))
  in
  (stats, world)

let period_arg =
  Arg.(
    value & opt int 64
    & info [ "period" ] ~docv:"NS"
        ~doc:"Sampling period in simulated nanoseconds (0 disables).")

let profile_cmd =
  let run filters events size seed jit period =
    let stats, _world =
      run_profiled ~filters ~events ~size ~seed ~jit ~period_ns:(Int64.of_int period)
    in
    Format.printf "%a@." Serve.pp_stats stats;
    let total = Telemetry.Profiler.total () in
    Printf.printf "\nsamples: %d (period %dns, vclock-driven)\n" total period;
    if total > 0 then
      print_string
        (Framework.Report.table
           ~header:[ "stack (prog;engine;block)"; "samples"; "share" ]
           (List.map
              (fun (stack, n) ->
                [ stack; string_of_int n;
                  Printf.sprintf "%.1f%%" (100. *. float_of_int n /. float_of_int total) ])
              (Telemetry.Profiler.sample_list ())));
    (* the per-helper latency scorecard, read back from the interned
       helper.ns.* histograms *)
    let s = Telemetry.Registry.snapshot () in
    let prefix = "helper.ns." in
    let plen = String.length prefix in
    let helpers =
      List.filter
        (fun (name, h) ->
          String.length name > plen
          && String.equal (String.sub name 0 plen) prefix
          && Telemetry.Histogram.count h > 0)
        s.Telemetry.Registry.histograms
    in
    if helpers <> [] then begin
      Printf.printf "\nhelper latency (simulated ns):\n";
      print_string
        (Framework.Report.table
           ~header:[ "helper"; "calls"; "mean"; "p50"; "p99"; "max" ]
           (List.map
              (fun (name, h) ->
                [ String.sub name plen (String.length name - plen);
                  string_of_int (Telemetry.Histogram.count h);
                  Printf.sprintf "%.0f" (Telemetry.Histogram.mean h);
                  Int64.to_string (Telemetry.Histogram.quantile h 0.50);
                  Int64.to_string (Telemetry.Histogram.quantile h 0.99);
                  Int64.to_string (Telemetry.Histogram.max_value h) ])
              helpers))
    end
  in
  let filters =
    Arg.(value & opt int 3 & info [ "filters" ] ~doc:"Number of filters to attach.")
  in
  let events =
    Arg.(value & opt int 2_000 & info [ "events" ] ~doc:"Number of synthetic packets.")
  in
  let size = Arg.(value & opt int 64 & info [ "size" ] ~doc:"Packet size in bytes.") in
  let seed =
    Arg.(value & opt int64 0x9e3779b97f4a7c15L & info [ "seed" ] ~doc:"Packet-stream seed.")
  in
  let jit = Arg.(value & flag & info [ "jit" ] ~doc:"Run filters through the JIT.") in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Drive a seeded stream with the sampling profiler armed and print \
          block-level sample attribution plus per-helper latency histograms")
    Term.(const run $ filters $ events $ size $ seed $ jit $ period_arg)

let flame_cmd =
  let run filters events size seed jit period samples =
    let _stats, _world =
      run_profiled ~filters ~events ~size ~seed ~jit ~period_ns:(Int64.of_int period)
    in
    (* both outputs are flamegraph-collapse lines, ready for
       flamegraph.pl / speedscope *)
    if samples then print_string (Telemetry.Profiler.to_folded ())
    else print_string (Telemetry.Export.to_folded (Telemetry.Registry.snapshot ()))
  in
  let filters =
    Arg.(value & opt int 3 & info [ "filters" ] ~doc:"Number of filters to attach.")
  in
  let events =
    Arg.(value & opt int 2_000 & info [ "events" ] ~doc:"Number of synthetic packets.")
  in
  let size = Arg.(value & opt int 64 & info [ "size" ] ~doc:"Packet size in bytes.") in
  let seed =
    Arg.(value & opt int64 0x9e3779b97f4a7c15L & info [ "seed" ] ~doc:"Packet-stream seed.")
  in
  let jit = Arg.(value & flag & info [ "jit" ] ~doc:"Run filters through the JIT.") in
  let samples =
    Arg.(
      value & flag
      & info [ "samples" ]
          ~doc:"Fold profiler samples instead of span self-time.")
  in
  Cmd.v
    (Cmd.info "flame"
       ~doc:
         "Run the profile workload and print folded stacks (span self-time, \
          or profiler samples with --samples) in flamegraph-collapse format")
    Term.(const run $ filters $ events $ size $ seed $ jit $ period_arg $ samples)

(* ---- top ---- *)

let top_cmd =
  let run events chaos_rate no_crasher jit =
    let world = Framework.World.create_populated () in
    let policy =
      Framework.Dispatch.Supervise
        { Framework.Supervisor.default_config with
          Framework.Supervisor.cooldown_ns = 100L;
          max_cooldown_ns = 1_000L }
    in
    let opts = { Framework.Invoke.default_opts with Framework.Invoke.use_jit = jit } in
    let engine = Framework.Dispatch.create ~policy ~opts world in
    let open Ebpf.Asm in
    let h = Helpers.Registry.id_of_name in
    let attach name ~prog_type items =
      let prog = Ebpf.Program.of_items_exn ~name ~prog_type items in
      match Framework.Pipeline.load_ebpf world prog with
      | Ok loaded ->
        ignore
          (Framework.Attach.attach engine.Framework.Dispatch.attach ~hook:"xdp" loaded)
      | Error e ->
        Format.eprintf "load failed: %a@." Framework.Pipeline.pp_error e;
        exit 1
    in
    if not no_crasher then begin
      Helpers.Bugdb.force_on world.Framework.World.bugs
        "hbug:probe-read-size-unchecked";
      attach "crasher" ~prog_type:Ebpf.Program.Kprobe
        [ call (h "bpf_get_current_task"); mov_r r3 r0; mov_r r1 r10;
          add_i r1 (-16); mov_i r2 16; call (h "bpf_probe_read_kernel");
          mov_i r0 0; exit_ ]
    end;
    List.iter
      (fun (name, items) -> attach name ~prog_type:Ebpf.Program.Socket_filter items)
      [ ("len", [ ldxw r0 r1 0; exit_ ]);
        ("parity", [ ldxw r6 r1 0; mov_r r0 r6; and_i r0 1; exit_ ]);
        ("proto", [ ldxw r0 r1 4; exit_ ]);
        (* a second copy of len: same image, so its load is a verdict-cache
           hit and the hit-ratio line below has something to show *)
        ("len", [ ldxw r0 r1 0; exit_ ]) ];
    let chaos =
      if chaos_rate <= 0. then None
      else
        Some
          { Framework.Chaos.default_config with Framework.Chaos.fault_rate = chaos_rate }
    in
    let stats =
      Serve.run engine (Serve.plan ?chaos ~size:64 ~hook:"xdp" ~count:events ())
    in
    let pct r = Printf.sprintf "%.1f%%" (100. *. r) in
    print_string
      (Framework.Report.table
         ~header:[ "#"; "extension"; "state"; "inv"; "p50ns"; "p99ns"; "crash";
                   "exhaust"; "skip"; "trips" ]
         (List.map
            (fun (x : Framework.Supervisor.health) ->
              [ string_of_int x.Framework.Supervisor.attach_id;
                x.Framework.Supervisor.name;
                Framework.Supervisor.state_to_string x.Framework.Supervisor.state;
                string_of_int x.Framework.Supervisor.invocations;
                Int64.to_string x.Framework.Supervisor.p50_ns;
                Int64.to_string x.Framework.Supervisor.p99_ns;
                pct x.Framework.Supervisor.crash_rate;
                pct x.Framework.Supervisor.exhaust_rate;
                string_of_int x.Framework.Supervisor.skipped;
                string_of_int x.Framework.Supervisor.trips ])
            stats.Serve.per_ext));
    let vc = world.Framework.World.vcache in
    let hits = Framework.Verdict_cache.hits vc in
    let misses = Framework.Verdict_cache.misses vc in
    let lookups = hits + misses in
    Printf.printf
      "verdict cache: %d hits / %d misses (%d invalidated), hit ratio %.1f%%\n"
      hits misses
      (Framework.Verdict_cache.invalidations vc)
      (if lookups = 0 then 0.
       else 100. *. float_of_int hits /. float_of_int lookups);
    Printf.printf "events: %d dispatched, %d faults absorbed, kernel %s\n"
      stats.Serve.totals.Serve.events stats.Serve.totals.Serve.faults_absorbed
      (if Kernel_sim.Kernel.is_dead world.Framework.World.kernel then "DEAD"
       else "alive")
  in
  let events =
    Arg.(value & opt int 2_000 & info [ "events" ] ~doc:"Number of synthetic packets.")
  in
  let chaos_rate =
    Arg.(
      value & opt float 0.
      & info [ "chaos-rate" ] ~docv:"RATE"
          ~doc:"Chaos injection probability per event (0 disables).")
  in
  let no_crasher =
    Arg.(
      value & flag
      & info [ "no-crasher" ]
          ~doc:"Attach only healthy filters (skip the probe-read crasher).")
  in
  let jit = Arg.(value & flag & info [ "jit" ] ~doc:"Run filters through the JIT.") in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Serve a stream and print the per-extension health scorecard: latency \
          quantiles, crash/exhaustion rates, breaker state and the \
          verdict-cache hit ratio")
    Term.(const run $ events $ chaos_rate $ no_crasher $ jit)

(* ---- trace-check ---- *)

let trace_check_cmd =
  let run path =
    let text =
      try
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with Sys_error msg ->
        Printf.eprintf "trace-check: cannot read %s: %s\n" path msg;
        exit 1
    in
    match Telemetry.Trace_check.validate text with
    | Ok st ->
      Printf.printf "%s: %d events, %d spans, %d instants, %d lanes, max depth %d — OK\n"
        path st.Telemetry.Trace_check.events st.Telemetry.Trace_check.spans
        st.Telemetry.Trace_check.instants st.Telemetry.Trace_check.traces
        st.Telemetry.Trace_check.max_depth
    | Error msg ->
      Printf.eprintf "%s: INVALID: %s\n" path msg;
      exit 1
  in
  let path = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "trace-check"
       ~doc:"Validate a Chrome trace-event JSON file (as written by dispatch --trace)")
    Term.(const run $ path)

(* ---- lint ---- *)

(* A small fixed corpus exercising each pass: a resource leak, its clean
   twin, a ringbuf leak, a lock-discipline violation, and a program whose
   guard the elide pass can prove redundant.  Lint runs the analysis only —
   no verifier — so the known-bad programs are linted even though the
   verify gate would reject them. *)
let lint_corpus () =
  let open Ebpf.Asm in
  let h = Helpers.Registry.id_of_name in
  [ ( "sock-leak",
      "acquires a socket and exits without releasing it",
      [ mov_i r1 8080; call (h "bpf_sk_lookup_tcp"); mov_i r0 0; exit_ ] );
    ( "sock-clean",
      "acquires a socket and releases it on every path",
      [ mov_i r1 8080; call (h "bpf_sk_lookup_tcp"); jeq_i r0 0 "out";
        mov_r r1 r0; call (h "bpf_sk_release"); label "out"; mov_i r0 0;
        exit_ ] );
    ( "ringbuf-leak",
      "reserves a ringbuf slot and never submits or discards it",
      [ map_fd r1 1; mov_i r2 8; mov_i r3 0; call (h "bpf_ringbuf_reserve");
        mov_i r0 0; exit_ ] );
    ( "lock-sleep",
      "calls a may-sleep helper while holding the spinlock",
      [ mov_r r1 r10; add_i r1 (-8); call (h "bpf_spin_lock");
        mov_r r1 r10; add_i r1 (-16); mov_i r2 8; mov_i r3 0;
        call (h "bpf_probe_read_user");
        mov_r r1 r10; add_i r1 (-8); call (h "bpf_spin_unlock");
        mov_i r0 0; exit_ ] );
    ( "redundant-guard",
      "branches on a bound the preceding constant already proves",
      [ mov_i r6 4; jgt_i r6 10 "oob"; mov_i r0 1; exit_; label "oob";
        mov_i r0 0; exit_ ] );
    (* the §2.2 probe-read vehicle: lints clean — the out-of-bounds copy
       lives inside the helper, exactly the class of bug no program-side
       static analysis (or verifier) can see *)
    ( "probe-read-crasher",
      "the exploit corpus crasher; helper-internal bugs are invisible here",
      [ call (h "bpf_get_current_task"); mov_r r3 r0; mov_r r1 r10;
        add_i r1 (-16); mov_i r2 16; call (h "bpf_probe_read_kernel");
        mov_i r0 0; exit_ ] ) ]

let lint_cmd =
  let run name no_resource no_lock no_elide no_bound =
    let config =
      { Analysis.Driver.default_config with
        Analysis.Driver.resource = not no_resource; lock = not no_lock;
        elide = not no_elide; bound = not no_bound }
    in
    let corpus =
      match name with
      | None -> lint_corpus ()
      | Some n -> (
        match List.filter (fun (id, _, _) -> String.equal id n) (lint_corpus ()) with
        | [] ->
          Printf.eprintf "unknown lint program %S; available: %s\n" n
            (String.concat ", " (List.map (fun (id, _, _) -> id) (lint_corpus ())));
          exit 1
        | l -> l)
    in
    let rows = ref [] in
    List.iter
      (fun (id, blurb, items) ->
        let prog =
          Ebpf.Program.of_items_exn ~name:id
            ~prog_type:Ebpf.Program.Socket_filter items
        in
        let report =
          Analysis.Driver.analyze ~config prog.Ebpf.Program.insns
        in
        Printf.printf "%-16s %s\n" id blurb;
        Format.printf "  %a@." Analysis.Driver.pp_report report;
        List.iter
          (fun (f : Analysis.Finding.t) ->
            rows :=
              [ id; f.Analysis.Finding.pass;
                string_of_int f.Analysis.Finding.pc;
                Analysis.Finding.severity_to_string f.Analysis.Finding.severity;
                f.Analysis.Finding.message ]
              :: !rows)
          report.Analysis.Driver.findings)
      corpus;
    (match List.rev !rows with
    | [] -> Printf.printf "\nno findings.\n"
    | rows ->
      print_newline ();
      print_string
        (Framework.Report.table
           ~header:[ "program"; "pass"; "pc"; "severity"; "finding" ] rows))
  in
  let prog_name = Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME") in
  let no_resource =
    Arg.(value & flag & info [ "no-resource" ] ~doc:"Skip the resource-obligation pass.")
  in
  let no_lock =
    Arg.(value & flag & info [ "no-lock" ] ~doc:"Skip the lock-discipline pass.")
  in
  let no_elide =
    Arg.(value & flag & info [ "no-elide" ] ~doc:"Skip the redundant-guard elision pass.")
  in
  let no_bound =
    Arg.(value & flag & info [ "no-bound" ] ~doc:"Skip the cost/termination bound pass.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the static-analysis passes (resource obligations, lock \
          discipline, guard elision, cost bounds) over the built-in lint \
          corpus and print the findings")
    Term.(const run $ prog_name $ no_resource $ no_lock $ no_elide $ no_bound)

(* ---- bound ---- *)

(* A fixed corpus for the cost/termination pass: counted loops the
   SCEV-lite inference can bound, plus the shapes that must stay
   unbounded — a data-dependent exit test and the §2.2 vehicle's bpf_loop
   callback iteration.  The static columns come from the analysis alone;
   the observed column runs each program under a fuel guard and reports
   the max retired-instruction count across runs — the quantity a
   [Bounded n] verdict promises never exceeds [n]. *)
let bound_corpus () =
  let open Ebpf.Asm in
  let h = Helpers.Registry.id_of_name in
  [ ( "straight-line",
      "no loops; the bound is the instruction count",
      [ mov_i r0 0; add_i r0 7; xor_i r0 3; exit_ ] );
    ( "alu-loop",
      "counted 64-iteration ALU loop",
      [ mov_i r0 0; mov_i r6 64; label "loop"; add_i r0 7; xor_i r0 3;
        add_i r0 1; sub_i r6 1; jne_i r6 0 "loop"; exit_ ] );
    ( "nested-counted",
      "two nested counted loops (8 x 16)",
      [ mov_i r0 0; mov_i r6 8; label "outer"; mov_i r7 16; label "inner";
        add_i r0 1; sub_i r7 1; jne_i r7 0 "inner"; sub_i r6 1;
        jne_i r6 0 "outer"; exit_ ] );
    ( "data-loop",
      "exit test depends on helper output; trip count not inferable",
      [ label "loop"; call (h "bpf_get_prandom_u32"); jne_i r0 0 "loop";
        mov_i r0 0; exit_ ] );
    ( "bpf-loop-hang",
      "the \xc2\xa72.2 hang shape: callback iteration via bpf_loop",
      [ mov_i r1 1000; mov_label r2 "cb"; mov_i r3 0; mov_i r4 0;
        call (h "bpf_loop"); mov_i r0 0; exit_; label "cb"; mov_i r0 0;
        exit_ ] ) ]

let bound_cmd =
  let run jit =
    let world = Framework.World.create () in
    let ictx = Framework.Invoke.create world in
    let opts =
      { Framework.Invoke.default_opts with
        Framework.Invoke.fuel = Some 100_000L; use_jit = jit }
    in
    let rows =
      List.map
        (fun (id, blurb, items) ->
          let prog =
            Ebpf.Program.of_items_exn ~name:id
              ~prog_type:Ebpf.Program.Socket_filter items
          in
          let report = Analysis.Driver.analyze prog.Ebpf.Program.insns in
          Printf.printf "%-16s %s\n" id blurb;
          match report.Analysis.Driver.cost with
          | None -> [ id; "-"; "-"; "?"; "-" ]
          | Some cost ->
            (* the fabricated handle skips the verify gate: the hang shapes
               must be measurable even though verification would refuse
               them (§2.2: verified-or-not, only runtime guards stop them) *)
            let loaded =
              Framework.Pipeline.Ebpf_prog
                { prog_id = 1; prog;
                  vstats =
                    { Bpf_verifier.Verifier.insns_processed = 0;
                      states_explored = 0; prune_hits = 0;
                      callbacks_verified = 0; log = "" };
                  analysis = Some report }
            in
            let observed = ref 0L in
            for _ = 1 to 3 do
              let r = Framework.Invoke.run ~opts ~ictx world loaded in
              if Int64.compare r.Framework.Invoke.insns_retired !observed > 0
              then observed := r.Framework.Invoke.insns_retired
            done;
            let open Analysis.Bound_pass in
            [ id;
              string_of_int (List.length cost.loops);
              (match cost.loops with
              | [] -> "-"
              | ls ->
                String.concat ","
                  (List.map
                     (fun l ->
                       match l.trips with
                       | Some t -> string_of_int t
                       | None -> "?")
                     ls));
              Format.asprintf "%a" pp_bound cost.bound;
              Int64.to_string !observed ])
        (bound_corpus ())
    in
    print_newline ();
    print_string
      (Framework.Report.table
         ~header:[ "program"; "loops"; "trips"; "bound"; "max observed" ]
         rows);
    Printf.printf
      "\nobserved counts are under a 100k fuel guard; a bounded program's \
       max observed never exceeds its bound.\n";
    save_snapshot ()
  in
  let jit =
    Arg.(value & flag & info [ "jit" ] ~doc:"Measure under the JIT instead of the interpreter.")
  in
  Cmd.v
    (Cmd.info "bound"
       ~doc:
         "Run the static cost & termination analysis over the built-in \
          corpus: per-program loop trip counts, the worst-case instruction \
          bound, and the max observed retired-instruction count")
    Term.(const run $ jit)

(* ---- rustlite source ---- *)

let read_source path_or_inline =
  if Sys.file_exists path_or_inline then begin
    let ic = open_in_bin path_or_inline in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  end
  else path_or_inline (* treat the argument as inline source *)

let rl_check_cmd =
  let run src_arg =
    let src = read_source src_arg in
    match Rustlite.Parser.parse src with
    | Error e ->
      Printf.eprintf "parse error at %d:%d: %s\n" e.Rustlite.Parser.line
        e.Rustlite.Parser.col e.Rustlite.Parser.msg;
      exit 1
    | Ok body -> (
      match Rustlite.Toolchain.compile { Rustlite.Toolchain.name = "cli"; maps = []; body } with
      | Error e ->
        Format.printf "toolchain rejected: %a@." Rustlite.Toolchain.pp_error e;
        exit 1
      | Ok ext ->
        Printf.printf "ok: typechecked, ownership-checked, signed (digest %s...)\n"
          (String.sub ext.Rustlite.Toolchain.signature.Rustlite.Sign.digest_hex 0 16))
  in
  let src = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE|SOURCE") in
  Cmd.v (Cmd.info "rl-check" ~doc:"Type/ownership-check and sign rustlite source")
    Term.(const run $ src)

let rl_run_cmd =
  let run src_arg wall_ms =
    let src = read_source src_arg in
    match Rustlite.Parser.parse src with
    | Error e ->
      Printf.eprintf "parse error at %d:%d: %s\n" e.Rustlite.Parser.line
        e.Rustlite.Parser.col e.Rustlite.Parser.msg;
      exit 1
    | Ok body -> (
      match Rustlite.Toolchain.compile { Rustlite.Toolchain.name = "cli"; maps = []; body } with
      | Error e ->
        Format.printf "toolchain rejected: %a@." Rustlite.Toolchain.pp_error e;
        exit 1
      | Ok ext -> (
        let world = Framework.World.create_populated () in
        match Framework.Loader.load_rustlite world ext with
        | Error e ->
          Format.printf "load failed: %a@." Framework.Loader.pp_load_error e;
          exit 1
        | Ok loaded ->
          let opts =
            { Framework.Invoke.default_opts with
              Framework.Invoke.wall_ns =
                Some (Int64.mul (Int64.of_int wall_ms) 1_000_000L)
            }
          in
          let report = Framework.Invoke.run ~opts world loaded in
          List.iter (Printf.printf "trace: %s\n") report.Framework.Loader.trace;
          Format.printf "%a@.kernel: %a@." Framework.Loader.pp_outcome
            report.Framework.Loader.outcome Kernel_sim.Kernel.pp_health
            report.Framework.Loader.health))
  in
  let src = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE|SOURCE") in
  let wall =
    Arg.(value & opt int 100 & info [ "watchdog-ms" ] ~doc:"Watchdog budget in ms.")
  in
  Cmd.v
    (Cmd.info "rl-run"
       ~doc:"Run rustlite source through the signed-extension path (with watchdog)")
    Term.(const run $ src $ wall)

(* ---- fuzz ---- *)

let fuzz_cmd =
  let run seed budget matrix dist replay plant_jit corpus_dir =
    let plant = if plant_jit then [ Fuzz.Oracle.jit_branch_bug_key ] else [] in
    match replay with
    | Some path -> (
      match Fuzz.Driver.replay ~matrix ~plant path with
      | Error msg ->
        Printf.eprintf "fuzz: cannot replay %s: %s\n" path msg;
        exit 1
      | Ok None ->
        Printf.printf "replay %s: conforming (matrix %s, no divergence)\n" path
          matrix;
        save_snapshot ()
      | Ok (Some d) ->
        Format.printf "replay %s: DIVERGENCE %a@." path Fuzz.Oracle.pp_divergence
          d;
        save_snapshot ();
        exit 1)
    | None -> (
      let dist =
        match dist with
        | None -> None
        | Some s -> (
          match Fuzz.Gen.dist_of_string s with
          | Some d -> Some d
          | None ->
            Printf.eprintf
              "fuzz: unknown distribution %S (expected clean, adversarial or \
               hang)\n"
              s;
            exit 1)
      in
      match
        Fuzz.Driver.run ~seed ~budget ~matrix ?dist ~plant
          ~corpus_dir ()
      with
      | exception Invalid_argument msg ->
        Printf.eprintf "fuzz: %s\n" msg;
        exit 1
      | report ->
        Printf.printf "fuzz: seed=%Ld budget=%d matrix=%s\n" seed budget matrix;
        Printf.printf "programs: %d\n" report.Fuzz.Driver.programs;
        Printf.printf "divergences: %d\n"
          (List.length report.Fuzz.Driver.findings);
        Printf.printf "shrink steps: %d\n" report.Fuzz.Driver.shrink_steps;
        List.iter
          (fun f -> Format.printf "  %a@." Fuzz.Driver.pp_finding f)
          report.Fuzz.Driver.findings;
        save_snapshot ();
        if report.Fuzz.Driver.findings <> [] then exit 1)
  in
  let seed =
    Arg.(value & opt int64 1L & info [ "seed" ] ~doc:"PRNG seed for the program generator.")
  in
  let budget =
    Arg.(value & opt int 500 & info [ "budget" ] ~doc:"Number of programs to generate.")
  in
  let matrix =
    Arg.(
      value
      & opt string "quick"
      & info [ "matrix" ]
          ~doc:"Execution-mode matrix: quick, modes, serve, or full.")
  in
  let dist =
    Arg.(
      value
      & opt (some string) None
      & info [ "dist" ]
          ~doc:"Pin the program distribution: clean, adversarial, or hang.")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Replay one persisted corpus counterexample instead of generating.")
  in
  let plant_jit =
    Arg.(
      value & flag
      & info [ "plant-jit-bug" ]
          ~doc:
            "Force the historical JIT backward-branch bug on in every leg's \
             world; the oracle must catch it.")
  in
  let corpus_dir =
    Arg.(
      value & opt string "corpus"
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Directory where shrunk counterexamples are persisted.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: generate seeded eBPF programs and cross-check \
          every execution mode (interpreter/JIT, elision, fuel batching, \
          sequential/sharded serving, chaos) against each other; shrink and \
          persist any divergence")
    Term.(
      const run $ seed $ budget $ matrix $ dist $ replay $ plant_jit
      $ corpus_dir)

let main =
  Cmd.group
    (Cmd.info "untenable-cli" ~version:Untenable.version
       ~doc:"Explore the 'Kernel extension verification is untenable' reproduction")
    [ helpers_cmd; audit_cmd; demos_cmd; demo_cmd; dispatch_cmd; serve_cmd;
      supervise_cmd;
      profile_cmd; flame_cmd; top_cmd; trace_check_cmd; matrix_cmd;
      datasets_cmd; lint_cmd; bound_cmd; fuzz_cmd; rl_check_cmd; rl_run_cmd;
      stats_cmd; trace_cmd ]

let () = exit (Cmd.eval main)
