(* The observability layer end to end: drive a short supervised packet
   stream with the sampling profiler armed, then show the three artefacts
   it leaves behind — a Perfetto-loadable causal trace (validated by the
   standalone parser before we claim anything about it), flamegraph-ready
   folded stacks from the profiler, and a per-extension health scorecard
   with the verdict-cache tallies.

   Run with: dune exec examples/observability_demo.exe *)

open Untenable
module World = Framework.World
module Loader = Framework.Loader
module Dispatch = Framework.Dispatch
module Serve = Framework.Serve
module Attach = Framework.Attach
module Supervisor = Framework.Supervisor
module Verdict_cache = Framework.Verdict_cache
module Registry = Telemetry.Registry
module Profiler = Telemetry.Profiler
module Export = Telemetry.Export
module Trace_check = Telemetry.Trace_check
open Ebpf.Asm

let filters =
  [ ("len", [ ldxw r0 r1 0; exit_ ]);
    ("parity", [ ldxw r6 r1 0; mov_r r0 r6; and_i r0 1; exit_ ]);
    ("proto", [ ldxw r6 r1 4; mov_r r0 r6; and_i r0 0xff; exit_ ]) ]

let events = 300

let () =
  Registry.set_enabled true;
  (* size the trace ring for the whole stream: the ring drops newest on
     overflow, and a dropped Exit would orphan its span in the export *)
  Registry.set_trace_capacity ((events * ((List.length filters * 8) + 8)) + 256);
  Registry.reset ();
  let world = World.create_populated () in
  let engine = Dispatch.create world in
  List.iter
    (fun (name, items) ->
      match
        Loader.load_ebpf world
          (Ebpf.Program.of_items_exn ~name ~prog_type:Ebpf.Program.Socket_filter
             items)
      with
      | Ok loaded -> ignore (Attach.attach engine.Dispatch.attach ~hook:"xdp" loaded)
      | Error e -> Format.kasprintf failwith "load %s: %a" name Loader.pp_load_error e)
    filters;

  (* arm the profiler for the stream; disarm no matter what *)
  Profiler.reset ();
  Profiler.set_period 64L;
  let r =
    Fun.protect
      ~finally:(fun () -> Profiler.set_period 0L)
      (fun () ->
        Serve.run engine
          (Serve.plan ~seed:42L ~size:64 ~hook:"xdp" ~count:events ()))
  in
  Format.printf "stream: %a@." Serve.pp_stats r;

  (* 1. causal trace: export, then re-validate from the exported text *)
  let trace = Export.to_chrome_trace (Registry.snapshot ()) in
  (match Trace_check.validate trace with
  | Ok s ->
    Printf.printf "trace: %d events, %d spans over %d lanes, max depth %d — OK\n"
      s.Trace_check.events s.Trace_check.spans s.Trace_check.traces
      s.Trace_check.max_depth
  | Error reason -> failwith ("trace export failed validation: " ^ reason));

  (* 2. profiler: folded stacks, ready for flamegraph.pl *)
  Printf.printf "\nprofiler: %d samples (period 64ns on the Vclock)\n"
    (Profiler.total ());
  print_string (Profiler.to_folded ());

  (* 3. scorecard: per-extension health + the verdict-cache tallies *)
  Printf.printf "\nhealth:\n";
  List.iter
    (fun (h : Supervisor.health) ->
      Printf.printf "  %-8s %4d inv  p50 %Ldns  p99 %Ldns\n" h.Supervisor.name
        h.Supervisor.invocations h.Supervisor.p50_ns h.Supervisor.p99_ns)
    r.Serve.per_ext;
  let vc = world.World.vcache in
  Printf.printf "verdict cache: %d hits / %d misses (%d invalidated)\n"
    (Verdict_cache.hits vc) (Verdict_cache.misses vc)
    (Verdict_cache.invalidations vc)
