(* One leaky and one clean extension through the static lint layer.

   The §3 toolchain story: the author writes the extension in rustlite; the
   userspace toolchain lowers it to bytecode and — this PR's layer — runs
   the dataflow passes over the lowered program before anything reaches the
   kernel.  The leaky variant forgets sk_release on the found socket; the
   clean variant releases on every path (including the NULL arm).  Lint
   flags the first and stays silent on the second, and running both under
   Invoke shows the findings agree with runtime ground truth: the flagged
   program really does strand a refcount, the clean one does not.

   Run with: dune exec examples/lint_demo.exe *)

open Untenable
module Driver = Analysis.Driver
module Finding = Analysis.Finding
module World = Framework.World
module Invoke = Framework.Invoke

(* What the author writes (rustlite surface syntax)... *)

let leaky_source =
  {|
    // track connections on the web port -- but the socket ref is never
    // released: the lookup's refcount leaks on every invocation
    if let Some(sock) = sk_lookup_tcp(8080) {
      trace_i64("found sock on port ", 8080);
      1
    } else { 0 }
  |}

let clean_source =
  {|
    // same probe, release paired on every path
    if let Some(sock) = sk_lookup_tcp(8080) {
      let found = 1;
      sk_release(sock);
      found
    } else { 0 }
  |}

(* ...and the bytecode the toolchain lowers it to. *)

let h = Helpers.Registry.id_of_name

let leaky_prog =
  let open Ebpf.Asm in
  Ebpf.Program.of_items_exn ~name:"sk-leaky"
    ~prog_type:Ebpf.Program.Socket_filter
    [ mov_i r1 8080; call (h "bpf_sk_lookup_tcp"); jeq_i r0 0 "missing";
      mov_i r0 1; exit_; label "missing"; mov_i r0 0; exit_ ]

let clean_prog =
  let open Ebpf.Asm in
  Ebpf.Program.of_items_exn ~name:"sk-clean"
    ~prog_type:Ebpf.Program.Socket_filter
    [ mov_i r1 8080; call (h "bpf_sk_lookup_tcp"); jeq_i r0 0 "missing";
      mov_r r1 r0; call (h "bpf_sk_release"); mov_i r0 1; exit_;
      label "missing"; mov_i r0 0; exit_ ]

let lint ~source (prog : Ebpf.Program.t) =
  Printf.printf "=== %s ===\n%s\n" prog.Ebpf.Program.name source;
  let report = Driver.analyze prog.Ebpf.Program.insns in
  Format.printf "lint: %a@." Driver.pp_report report;
  List.iter (fun f -> Format.printf "  %a@." Finding.pp f)
    report.Driver.findings;
  report

(* Ground truth: hand the program to the runtime regardless of what lint
   said (lint never blocks a load) and count the refcounts stranded at
   exit.  The fabricated handle skips the verify gate the way a path-B
   kernel would: safety is the toolchain's job, the runtime only counts
   the damage. *)
let run_ground_truth (prog : Ebpf.Program.t) =
  let world = World.create_populated () in
  let zero_stats =
    { Bpf_verifier.Verifier.insns_processed = 0; states_explored = 0;
      prune_hits = 0; callbacks_verified = 0; log = "" }
  in
  let loaded =
    Framework.Pipeline.Ebpf_prog
      { prog_id = 1; prog; vstats = zero_stats;
        analysis = Some (Driver.analyze prog.Ebpf.Program.insns) }
  in
  let report = Invoke.run world loaded in
  Format.printf "run: %a, %d resource(s) outstanding at exit@.@."
    Invoke.pp_outcome report.Invoke.outcome
    report.Invoke.resources_outstanding;
  report.Invoke.resources_outstanding

let () =
  let leaky_report = lint ~source:leaky_source leaky_prog in
  let leaky_outstanding = run_ground_truth leaky_prog in
  let clean_report = lint ~source:clean_source clean_prog in
  let clean_outstanding = run_ground_truth clean_prog in
  let leak_findings r =
    List.length
      (List.filter
         (fun (f : Finding.t) -> f.Finding.pass = "resource")
         r.Driver.findings)
  in
  Printf.printf "agreement with runtime ground truth:\n";
  Printf.printf "  leaky: %d finding(s), %d stranded refcount(s)  %s\n"
    (leak_findings leaky_report) leaky_outstanding
    (if leak_findings leaky_report > 0 && leaky_outstanding > 0 then "OK"
     else "MISMATCH");
  Printf.printf "  clean: %d finding(s), %d stranded refcount(s)  %s\n"
    (leak_findings clean_report) clean_outstanding
    (if leak_findings clean_report = 0 && clean_outstanding = 0 then "OK"
     else "MISMATCH")
