(* The full userspace toolchain pipeline, from concrete source text:
   parse -> typecheck -> ownership-check -> sign -> (kernel) validate ->
   run under the watchdog.  The programs below are written in rustlite's
   surface syntax; the third one is rejected by the ownership checker —
   at *compile* time, in userspace, exactly where §3 wants the analysis.

   Run with: dune exec examples/rustlite_source.exe *)

open Untenable
module Loader = Framework.Loader
module Invoke = Framework.Invoke
module World = Framework.World

let good_program =
  {|
    // count scheduler hits per task and log them
    if let Some(task) = task_current() {
      let pid = task_pid(&task);
      let hits = match map_get("hits", pid % 8) {
        Some(n) => n + 1,
        None => 1
      };
      map_set("hits", pid % 8, hits);
      trace_i64("task hit count: ", hits);
      hits
    } else { 0 }
  |}

let looping_program =
  {|
    // perfectly legal to WRITE an unbounded loop; the runtime owns termination
    let mut x = 0;
    while true {
      x = (x * 1103515245 + 12345) % 2147483648;
    }
  |}

let double_submit_program =
  {|
    if let Some(res) = ringbuf_reserve("events", 16) {
      rb_write_i64(&res, 0, ktime());
      rb_submit(res);
      rb_submit(res)   // use of moved value: caught by the toolchain
    } else { () }
  |}

let maps =
  [ { Maps.Bpf_map.name = "hits"; kind = Maps.Bpf_map.Array; key_size = 4;
      value_size = 8; max_entries = 8; lock_off = None };
    { Maps.Bpf_map.name = "events"; kind = Maps.Bpf_map.Ringbuf; key_size = 0;
      value_size = 0; max_entries = 4096; lock_off = None } ]

let compile_and_run ~name ?(wall_ms = 50) src =
  Printf.printf "\n=== %s ===\n%s\n" name src;
  match Rustlite.Parser.parse src with
  | Error e ->
    Printf.printf "parse error at %d:%d: %s\n" e.Rustlite.Parser.line
      e.Rustlite.Parser.col e.Rustlite.Parser.msg
  | Ok body -> (
    match Rustlite.Toolchain.compile { Rustlite.Toolchain.name = name; maps; body } with
    | Error e ->
      Format.printf "toolchain REJECTED (userspace, before any kernel involvement):@.  %a@."
        Rustlite.Toolchain.pp_error e
    | Ok ext -> (
      Printf.printf "toolchain: checked + signed\n";
      let world = World.create_populated () in
      match Loader.load_rustlite world ext with
      | Error e -> Format.printf "load failed: %a@." Loader.pp_load_error e
      | Ok loaded ->
        for i = 1 to 3 do
          let opts =
            { Invoke.default_opts with
              Invoke.wall_ns = Some (Int64.mul (Int64.of_int wall_ms) 1_000_000L)
            }
          in
          let r = Invoke.run ~opts world loaded in
          Format.printf "run %d -> %a@." i Loader.pp_outcome r.Loader.outcome;
          List.iter (Printf.printf "   trace: %s\n") r.Loader.trace
        done;
        Format.printf "kernel: %a@."
          Kernel_sim.Kernel.pp_health
          (Kernel_sim.Kernel.health world.World.kernel)))

let () =
  Printf.printf "rustlite surface syntax -> toolchain -> signed load -> guarded run\n";
  compile_and_run ~name:"task_hit_counter" good_program;
  compile_and_run ~name:"spin_forever" looping_program;
  compile_and_run ~name:"double_submit" double_submit_program
