(* A port-blocklist packet filter, both ways — and a concrete instance of
   §2.1's "developers need to find ways to break their program into small
   pieces" when the complexity budget bites.

   The filter checks a packet's destination port against a blocklist.  The
   eBPF version is a compare chain; on a kernel with a small verifier
   budget the 64-entry chain is rejected as "too complex" and has to be
   split into two programs chained by a tail call.  The rustlite version is
   one loop over an array, whatever the list size.

   Run with: dune exec examples/packet_filter.exe *)

open Untenable
module Loader = Framework.Loader
module Invoke = Framework.Invoke
module World = Framework.World
module Program = Ebpf.Program

let blocked_ports = List.init 64 (fun i -> 7000 + (i * 13))

(* A packet: 14B Ethernet stub + minimal header where dst port lives at
   bytes 16..17 (big-endian, as on the wire). *)
let make_packet ~dst_port =
  let b = Bytes.make 64 '\000' in
  Bytes.set b 16 (Char.chr (dst_port lsr 8));
  Bytes.set b 17 (Char.chr (dst_port land 0xff));
  b

(* ---- eBPF: a straight-line compare chain over the blocklist ---- *)

let ebpf_filter ~ports =
  let open Ebpf.Asm in
  let h = Helpers.Registry.id_of_name in
  let header =
    [
      (* load dst port: skb_load_bytes(off=16, fp-8, len=2) *)
      stdw r10 (-8) 0;
      mov_i r1 16;
      mov_r r2 r10;
      add_i r2 (-8);
      mov_i r3 2;
      call (h "bpf_skb_load_bytes");
      ldxb r6 r10 (-8);
      lsh_i r6 8;
      ldxb r7 r10 (-7);
      or_r r6 r7;
    ]
  in
  let checks = List.concat_map (fun p -> [ jeq_i r6 p "drop" ]) ports in
  let tail = [ mov_i r0 1; exit_; label "drop"; mov_i r0 0; exit_ ] in
  Program.of_items_exn ~name:"port_filter" ~prog_type:Program.Socket_filter
    (header @ checks @ tail)

let run_ebpf ~budget ~ports ~packets =
  let world = World.create_populated () in
  World.set_vconfig world
    { (World.vconfig world) with Bpf_verifier.Verifier.insn_budget = budget };
  let prog = ebpf_filter ~ports in
  Printf.printf "  program: %d insns, verifier budget %d\n" (Program.length prog) budget;
  match Loader.load_ebpf world prog with
  | Error e ->
    Format.printf "  %a@." Loader.pp_load_error e;
    Printf.printf
      "  -> the §2.1 outcome: the developer must split the filter into pieces\n"
  | Ok loaded ->
    List.iter
      (fun port ->
        let opts =
            { Invoke.default_opts with
              Invoke.skb_payload = Some (make_packet ~dst_port:port)
            }
          in
          let r = Invoke.run ~opts world loaded in
        Format.printf "  port %5d -> %a@." port Loader.pp_outcome r.Loader.outcome)
      packets

(* ---- rustlite: one loop over the blocklist, any size ---- *)

let rustlite_filter ~ports =
  let open Rustlite.Ast in
  {
    Rustlite.Toolchain.name = "port_filter_rl";
    maps = [];
    body =
      Let
        { name = "blocked"; mut = false;
          value = Array_lit (List.map (fun p -> Lit_int (Int64.of_int p)) ports);
          body =
            Let
              { name = "hi"; mut = false;
                value =
                  Match_option
                    { scrutinee = Call ("skb_byte", [ Lit_int 16L ]);
                      bind = "b"; some_branch = Var "b"; none_branch = Lit_int 0L };
                body =
                  Let
                    { name = "lo"; mut = false;
                      value =
                        Match_option
                          { scrutinee = Call ("skb_byte", [ Lit_int 17L ]);
                            bind = "b"; some_branch = Var "b";
                            none_branch = Lit_int 0L };
                      body =
                        Let
                          { name = "port"; mut = false;
                            value =
                              Binop (BOr, Binop (Shl, Var "hi", Lit_int 8L), Var "lo");
                            body =
                              Let
                                { name = "verdict"; mut = true; value = Lit_int 1L;
                                  body =
                                    Seq
                                      [ For
                                          ( "i", Lit_int 0L,
                                            Lit_int (Int64.of_int (List.length ports)),
                                            If
                                              ( Binop (Eq, Index (Var "blocked", Var "i"),
                                                       Var "port"),
                                                Assign ("verdict", Lit_int 0L),
                                                Lit_unit ) );
                                        Var "verdict" ] } } } } };
  }

let run_rustlite ~ports ~packets =
  let world = World.create_populated () in
  match Rustlite.Toolchain.compile (rustlite_filter ~ports) with
  | Error e -> Format.printf "  toolchain: %a@." Rustlite.Toolchain.pp_error e
  | Ok ext -> (
    match Loader.load_rustlite world ext with
    | Error e -> Format.printf "  %a@." Loader.pp_load_error e
    | Ok loaded ->
      List.iter
        (fun port ->
          let opts =
            { Invoke.default_opts with
              Invoke.skb_payload = Some (make_packet ~dst_port:port)
            }
          in
          let r = Invoke.run ~opts world loaded in
          Format.printf "  port %5d -> %a@." port Loader.pp_outcome r.Loader.outcome)
        packets)

let () =
  let packets = [ 443; 7000; 7013; 8443 ] in
  Printf.printf "=== eBPF filter on a roomy kernel (default 1M-insn budget) ===\n";
  run_ebpf ~budget:1_000_000 ~ports:blocked_ports ~packets;
  Printf.printf "\n=== the same filter under a tight complexity budget ===\n";
  run_ebpf ~budget:48 ~ports:blocked_ports ~packets;
  Printf.printf "\n=== rustlite filter (ret 1 = pass, 0 = drop) ===\n";
  run_rustlite ~ports:blocked_ports ~packets;
  Printf.printf
    "\nThe rustlite loop costs the same to check whatever the blocklist size;\n\
     the eBPF chain's verification cost grows with it until the budget bites.\n"
