(* A realistic rustlite extension: a little tracer that keeps a per-task
   event count in task storage and emits an event record to a ring buffer,
   exercising RAII resources, borrows, Option handling, strings, and the
   runtime guards — the §3 wish list the eBPF programming model cannot
   express without helper shims.

   Run with: dune exec examples/safe_tracer.exe *)

open Untenable
open Rustlite.Ast
module Loader = Framework.Loader
module Invoke = Framework.Invoke
module World = Framework.World
module Bpf_map = Maps.Bpf_map
module Ringbuf = Maps.Ringbuf

let tracer_maps =
  [ { Bpf_map.name = "per_task"; kind = Bpf_map.Hash; key_size = 4; value_size = 8;
      max_entries = 64; lock_off = None };
    { Bpf_map.name = "events"; kind = Bpf_map.Ringbuf; key_size = 0; value_size = 0;
      max_entries = 4096; lock_off = None } ]

(* fn trace() {
     if let Some(task) = task_current() {
       let n = task_storage_get("per_task", &task, CREATE).unwrap_or(0) + 1;
       task_storage_set("per_task", &task, n);
       if let Some(rec) = ringbuf_reserve("events", 24) {
         rb_write_i64(&rec, 0, pid_tgid());
         rb_write_i64(&rec, 8, n);
         rb_write_i64(&rec, 16, ktime());
         rb_submit(rec);            // move: a second submit cannot typecheck
       }
       trace("task traced: ", comm)
     }
   } *)
let tracer_body =
  Match_option
    { scrutinee = Call ("task_current", []);
      bind = "task";
      some_branch =
        Let
          { name = "n"; mut = false;
            value =
              Binop
                ( Add,
                  Match_option
                    { scrutinee =
                        Call ("task_storage_get",
                              [ Lit_str "per_task"; Borrow "task"; Lit_int 1L ]);
                      bind = "prev"; some_branch = Var "prev";
                      none_branch = Lit_int 0L },
                  Lit_int 1L );
            body =
              Seq
                [ Call ("task_storage_set",
                        [ Lit_str "per_task"; Borrow "task"; Var "n" ]);
                  Match_option
                    { scrutinee =
                        Call ("ringbuf_reserve", [ Lit_str "events"; Lit_int 24L ]);
                      bind = "rec";
                      some_branch =
                        Seq
                          [ Call ("rb_write_i64",
                                  [ Borrow "rec"; Lit_int 0L; Call ("pid_tgid", []) ]);
                            Call ("rb_write_i64",
                                  [ Borrow "rec"; Lit_int 8L; Var "n" ]);
                            Call ("rb_write_i64",
                                  [ Borrow "rec"; Lit_int 16L; Call ("ktime", []) ]);
                            Call ("rb_submit", [ Var "rec" ]) ];
                      none_branch = Lit_unit };
                  Call ("trace", [ Call ("task_comm", [ Borrow "task" ]) ]);
                  Var "n" ] };
      none_branch = Lit_int 0L }

let () =
  let world = World.create_populated () in
  let src = { Rustlite.Toolchain.name = "safe_tracer"; maps = tracer_maps; body = tracer_body } in
  match Rustlite.Toolchain.compile src with
  | Error e -> Format.printf "toolchain rejected: %a@." Rustlite.Toolchain.pp_error e
  | Ok ext -> (
    match Loader.load_rustlite world ext with
    | Error e -> Format.printf "load failed: %a@." Loader.pp_load_error e
    | Ok loaded ->
      Printf.printf "tracing 3 scheduler hits on 2 tasks...\n";
      let nginx = List.nth world.World.kernel.Kernel_sim.Kernel.tasks 0 in
      let tasks = world.World.kernel.Kernel_sim.Kernel.tasks in
      List.iteri
        (fun i task ->
          Kernel_sim.Kernel.set_current world.World.kernel task;
          let r = Invoke.run world loaded in
          Format.printf "hit %d on %-9s -> %a@." (i + 1)
            task.Kernel_sim.Kobject.comm Loader.pp_outcome r.Loader.outcome)
        (List.concat [ tasks; [ nginx ] ]);
      (* userspace drains the ring buffer *)
      (match
         List.find_map
           (fun (name, id) ->
             if String.equal name "events" then
               Option.bind (Bpf_map.Registry.find world.World.maps id) Bpf_map.ringbuf
             else None)
           (match loaded with
           | Loader.Rustlite_ext { map_ids; _ } -> map_ids
           | Loader.Ebpf_prog _ -> [])
       with
      | None -> ()
      | Some rb ->
        let records = Ringbuf.consume rb in
        Printf.printf "\nring buffer drained: %d records\n" (List.length records);
        List.iteri
          (fun i record ->
            let pid_tgid = Bytes.get_int64_le record 0 in
            let count = Bytes.get_int64_le record 8 in
            let t = Bytes.get_int64_le record 16 in
            Printf.printf "  record %d: pid=%Ld count=%Ld t=%Ldns\n" i
              (Int64.logand pid_tgid 0xffff_ffffL) count t)
          records);
      let health = Kernel_sim.Kernel.health world.World.kernel in
      Format.printf "kernel after tracing: %a@." Kernel_sim.Kernel.pp_health health)
