(* Quickstart: the same tiny extension — "count invocations in a map and
   stamp the time of the last run" — loaded through both architectures.

   Path A: eBPF bytecode -> in-kernel verifier -> interpreter.
   Path B: rustlite source -> userspace toolchain (typecheck, ownership
           check, sign) -> signature validation -> evaluator.

   Run with: dune exec examples/quickstart.exe *)

open Untenable
module Loader = Framework.Loader
module Invoke = Framework.Invoke
module World = Framework.World
module Bpf_map = Maps.Bpf_map

let banner title = Printf.printf "\n==== %s ====\n" title

(* ------------------------- Path A: eBPF ------------------------- *)

let ebpf_counter ~map_id =
  let open Ebpf.Asm in
  let h = Helpers.Registry.id_of_name in
  Ebpf.Program.of_items_exn ~name:"counter" ~prog_type:Ebpf.Program.Kprobe
    [
      (* key 0 on the stack *)
      stdw r10 (-8) 0;
      map_fd r1 map_id;
      mov_r r2 r10;
      add_i r2 (-8);
      call (h "bpf_map_lookup_elem");
      jeq_i r0 0 "miss";
      (* value layout: [count:u64][last_ns:u64] *)
      ldxdw r6 r0 0;
      add_i r6 1;
      stxdw r0 0 r6;
      mov_r r7 r0;
      call (h "bpf_ktime_get_ns");
      stxdw r7 8 r0;
      mov_r r0 r6;
      exit_;
      label "miss";
      mov_i r0 (-1);
      exit_;
    ]

let run_ebpf () =
  banner "Path A: eBPF bytecode through the in-kernel verifier";
  let world = World.create_populated () in
  let m =
    World.register_map world
      { Bpf_map.name = "stats"; kind = Bpf_map.Array; key_size = 4; value_size = 16;
        max_entries = 1; lock_off = None }
  in
  let prog = ebpf_counter ~map_id:m.Bpf_map.id in
  Printf.printf "program (%d insns):\n%s" (Ebpf.Program.length prog)
    (Ebpf.Disasm.to_string prog.Ebpf.Program.insns);
  match Loader.load_ebpf world prog with
  | Error e -> Format.printf "load failed: %a@." Loader.pp_load_error e
  | Ok loaded ->
    (match loaded with
    | Loader.Ebpf_prog { vstats; _ } ->
      Printf.printf "verifier: accepted after processing %d instructions, %d states\n"
        vstats.Bpf_verifier.Verifier.insns_processed
        vstats.Bpf_verifier.Verifier.states_explored
    | Loader.Rustlite_ext _ -> ());
    for i = 1 to 3 do
      let report = Invoke.run world loaded in
      Format.printf "run %d -> %a (kernel %a)@." i Loader.pp_outcome
        report.Loader.outcome Kernel_sim.Kernel.pp_health report.Loader.health
    done

(* ----------------------- Path B: rustlite ----------------------- *)

let rustlite_counter =
  let open Rustlite.Ast in
  {
    Rustlite.Toolchain.name = "counter_rl";
    maps =
      [ { Bpf_map.name = "stats"; kind = Bpf_map.Array; key_size = 4; value_size = 8;
          max_entries = 1; lock_off = None } ];
    body =
      Match_option
        { scrutinee = Call ("map_get", [ Lit_str "stats"; Lit_int 0L ]);
          bind = "count";
          some_branch =
            Seq
              [ Call ("map_set",
                      [ Lit_str "stats"; Lit_int 0L;
                        Binop (Add, Var "count", Lit_int 1L) ]);
                Call ("trace_i64", [ Lit_str "count is now "; Binop (Add, Var "count", Lit_int 1L) ]);
                Binop (Add, Var "count", Lit_int 1L) ];
          none_branch = Lit_int (-1L) };
  }

let run_rustlite () =
  banner "Path B: rustlite through the signing toolchain";
  let world = World.create_populated () in
  match Rustlite.Toolchain.compile rustlite_counter with
  | Error e -> Format.printf "toolchain rejected: %a@." Rustlite.Toolchain.pp_error e
  | Ok ext ->
    Printf.printf "toolchain: typechecked, ownership-checked, signed\n  digest %s\n"
      (String.sub ext.Rustlite.Toolchain.signature.Rustlite.Sign.digest_hex 0 16 ^ "...");
    (match Loader.load_rustlite world ext with
    | Error e -> Format.printf "load failed: %a@." Loader.pp_load_error e
    | Ok loaded ->
      Printf.printf "kernel: signature valid, loaded with NO in-kernel verification\n";
      for i = 1 to 3 do
        let report = Invoke.run world loaded in
        Format.printf "run %d -> %a (kernel %a)@." i Loader.pp_outcome
          report.Loader.outcome Kernel_sim.Kernel.pp_health report.Loader.health;
        List.iter (Printf.printf "  trace: %s\n") report.Loader.trace
      done)

let () =
  Printf.printf "untenable %s — %s\n" Untenable.version Untenable.paper;
  run_ebpf ();
  run_rustlite ()
