(* A helper-surface audit tool over the simulated kernel: call-graph
   complexity per helper (Figure 3's metric), growth across kernel versions
   (Figure 4), and the §3.2 retire/simplify/wrap classification.

   Run with: dune exec examples/helper_audit.exe *)

open Untenable
module Analysis = Callgraph.Analysis
module Kernel_graph = Callgraph.Kernel_graph
module Registry = Helpers.Registry
module Retirement = Kerndata.Retirement

let () =
  let built = Kernel_graph.build () in
  let dist = Analysis.measure built in
  Printf.printf "helper call-graph audit over the synthetic Linux-5.18 graph\n";
  Printf.printf "  %d helpers, graph: %d nodes / %d edges\n\n" dist.Analysis.n
    (Callgraph.Graph.node_count built.Kernel_graph.graph)
    (Callgraph.Graph.edge_count built.Kernel_graph.graph);
  Printf.printf "top 10 by call-graph footprint (the danger list):\n";
  List.iteri
    (fun i (m : Analysis.measurement) ->
      if i < 10 then Printf.printf "  %2d. %-24s %5d nodes\n" (i + 1) m.helper m.nodes)
    (List.rev dist.Analysis.measurements);
  Printf.printf "\nbottom 5 (the harmless end):\n";
  List.iteri
    (fun i (m : Analysis.measurement) ->
      if i < 5 then Printf.printf "  %2d. %-24s %5d nodes\n" (i + 1) m.helper m.nodes)
    dist.Analysis.measurements;
  Printf.printf "\ndistribution: min=%d median=%d mean=%.0f max=%d\n"
    dist.Analysis.min_nodes dist.Analysis.median dist.Analysis.mean
    dist.Analysis.max_nodes;
  Printf.printf "  30+ nodes: %.1f%%   500+ nodes: %.1f%%\n"
    (100. *. dist.Analysis.share_ge30)
    (100. *. dist.Analysis.share_ge500);
  (* §3.2 classification over the implemented helpers *)
  Printf.printf "\n§3.2 disposition of the implemented helper table (%d helpers):\n"
    Registry.count;
  List.iter
    (fun disposition ->
      let names =
        List.filter_map
          (fun (d : Registry.def) ->
            if d.Registry.disposition = Some disposition then Some d.Registry.name
            else None)
          Registry.defs
      in
      Printf.printf "  %-9s %2d: %s\n"
        (Retirement.disposition_to_string disposition)
        (List.length names) (String.concat ", " names))
    [ Retirement.Retire; Retirement.Simplify; Retirement.Wrap ];
  Printf.printf "\npaper's taxonomy: %d retirable helpers" Retirement.retire_count;
  Printf.printf " (bpf_loop, bpf_strtol, bpf_strncmp are the worked examples)\n";
  (* the safety/effect flags the static-analysis passes read *)
  Printf.printf
    "\nsafety-relevant helper flags (what lib/analysis reads from the \
     prototypes):\n";
  List.iter
    (fun (d : Registry.def) ->
      let p = d.Registry.proto in
      let flags =
        List.filter_map
          (fun (set, tag) -> if set then Some tag else None)
          [ (Helpers.Proto.may_sleep p, "may-sleep");
            (Helpers.Proto.unbounded p, "unbounded");
            (Helpers.Proto.acquires p, "acquires");
            (Helpers.Proto.locks p, "locks");
            (Helpers.Proto.unlocks p, "unlocks");
            ( Helpers.Proto.releases p <> None,
              match Helpers.Proto.releases p with
              | Some i -> Printf.sprintf "releases(arg%d)" i
              | None -> "releases" ) ]
      in
      if flags <> [] then
        Printf.printf "  %3d %-28s %s\n" d.Registry.id d.Registry.name
          (String.concat " " flags))
    Registry.defs;
  (* growth, Figure 4 *)
  Printf.printf "\nhelper-count growth by kernel version (Fig. 4):\n";
  List.iter
    (fun (p : Kerndata.Helper_history.point) ->
      Printf.printf "  %-6s (%d)  %3d  %s\n"
        (Kerndata.Kver.to_string p.Kerndata.Helper_history.version)
        (Kerndata.Kver.year p.Kerndata.Helper_history.version)
        p.Kerndata.Helper_history.count
        (String.make (p.Kerndata.Helper_history.count / 4) '#'))
    Kerndata.Helper_history.series;
  Printf.printf "  slope: %.1f helpers per two years (paper: ~50)\n"
    Kerndata.Helper_history.per_two_years
