# Convenience wrapper over dune.  `make check` is the tier-1 gate plus a
# smoke run of the telemetry overhead bench (3 reps — fast, catches wiring
# regressions, not a precision measurement; use `make bench-telemetry` for
# the real numbers).

.PHONY: all build test check bench bench-telemetry bench-profile lint-smoke \
        bound-smoke trace-smoke profile-smoke parallel-smoke fuzz-smoke clean

all: build

build:
	dune build @all

test:
	dune runtest

check:
	dune build @all
	dune runtest
	dune exec bench/main.exe -- telemetry-smoke
	dune exec bench/main.exe -- throughput-smoke
	dune exec bench/main.exe -- chaos-smoke
	dune exec bench/main.exe -- elision-smoke
	dune exec bench/main.exe -- reload-smoke
	$(MAKE) parallel-smoke
	$(MAKE) lint-smoke
	$(MAKE) bound-smoke
	$(MAKE) trace-smoke
	$(MAKE) profile-smoke
	$(MAKE) fuzz-smoke

# The three analysis passes over the lint corpus (which includes the §2.2
# probe-read exploit vehicle): every known-bad program must be flagged,
# every clean one must not, and the examples/lint_demo ground-truth run
# must agree with the runtime on both programs.
lint-smoke:
	dune build @all
	dune exec bin/untenable_cli.exe -- lint > /tmp/lint.out
	grep -q '^sock-leak .*resource.*error' /tmp/lint.out
	grep -q '^ringbuf-leak .*resource.*error' /tmp/lint.out
	grep -q '^lock-sleep .*lock.*error' /tmp/lint.out
	grep -q '^redundant-guard .*elide.*info.*elided' /tmp/lint.out
	! grep -q '^sock-clean .*\(error\|warning\)' /tmp/lint.out
	! grep -q '^probe-read-crasher .*\(error\|warning\|info\)' /tmp/lint.out
	dune exec examples/lint_demo.exe > /tmp/lint_demo.out
	grep -q 'leaky: .*OK' /tmp/lint_demo.out
	grep -q 'clean: .*OK' /tmp/lint_demo.out
	@echo "lint-smoke: OK"

# Cost & termination analysis: the known-bounded corpus programs get
# finite bounds that dominate their observed retired counts, the §2.2
# hang shapes stay unbounded, and a reduced-iteration run of the
# fuel-batching bench asserts batching changes no outcome or retired
# count (throughput deltas in the smoke run are informational; the >=5%
# acceptance number comes from `dune exec bench/main.exe -- bound`).
bound-smoke:
	dune build @all
	dune exec bin/untenable_cli.exe -- bound > /tmp/bound.out
	grep -Eq '^straight-line +0 +- +4 +4' /tmp/bound.out
	grep -Eq '^alu-loop +1 +65 +328 ' /tmp/bound.out
	grep -Eq '^nested-counted +2 +9,17 +489 ' /tmp/bound.out
	grep -Eq '^data-loop +1 +\? +unbounded ' /tmp/bound.out
	grep -Eq '^bpf-loop-hang +0 +- +unbounded ' /tmp/bound.out
	dune exec bench/main.exe -- bound-smoke
	@echo "bound-smoke: OK"

# Causal-trace round trip: a seeded dispatch run exports a Chrome
# trace-event file, the exporter self-validates it (balanced B/E per lane,
# monotonic timestamps), and the standalone parser re-validates from disk.
trace-smoke:
	dune build @all
	dune exec bin/untenable_cli.exe -- dispatch --events 200 \
	  --trace /tmp/untenable-trace.json > /tmp/trace_smoke.out
	grep -q 'perfetto-valid' /tmp/trace_smoke.out
	test -s /tmp/untenable-trace.json
	dune exec bin/untenable_cli.exe -- trace-check /tmp/untenable-trace.json
	@echo "trace-smoke: OK"

# Sampling-profiler wiring: samples land while armed and the on/off ratio
# stays bounded.  3 reps is too noisy for the <5% target — that number
# comes from the full `make bench-profile` run.
profile-smoke:
	dune build @all
	dune exec bench/main.exe -- profile-smoke > /tmp/profile_smoke.out
	grep -q 'samples taken while armed' /tmp/profile_smoke.out
	! grep -q 'samples taken while armed: 0 ' /tmp/profile_smoke.out
	grep -q 'smoke bound: .* MET' /tmp/profile_smoke.out
	@echo "profile-smoke: OK"

# Sharded-serving determinism gate: a 4-domain run (coordinator, bounded
# queues, shard worlds, checksum reconstruction) must agree with the
# sequential loop event for event, calm and across mid-stream reloads.
# Speedup is NOT gated here — wall-clock scaling needs real cores and is
# reported by `dune exec bench/main.exe -- parallel`.
parallel-smoke:
	dune build @all
	dune exec bench/main.exe -- parallel-smoke
	@echo "parallel-smoke: OK"

# Differential-fuzzing conformance gate: a pinned seed drives >= 500
# generated programs through the quick execution-mode matrix with zero
# divergences; a planted JIT branch bug must be caught and shrunk (or the
# zero is vacuous); and the `fuzz --replay` CLI honors exit-code
# discipline on good, diverging, and corrupt corpus files.
fuzz-smoke:
	dune build @all
	dune exec bench/main.exe -- fuzz-smoke
	dune exec bin/untenable_cli.exe -- fuzz --seed 1 --budget 500 \
	  --corpus /tmp/untenable-fuzz-corpus > /tmp/fuzz_smoke.out
	grep -q '^divergences: 0' /tmp/fuzz_smoke.out
	dune exec bin/untenable_cli.exe -- fuzz --seed 42 --budget 60 \
	  --plant-jit-bug --corpus /tmp/untenable-fuzz-corpus > /tmp/fuzz_plant.out; \
	  test $$? -eq 1
	grep -q '^divergences: [1-9]' /tmp/fuzz_plant.out
	dune exec bin/untenable_cli.exe -- fuzz \
	  --replay $$(ls -d /tmp/untenable-fuzz-corpus/*.fuzz | head -1) \
	  > /tmp/fuzz_replay.out
	grep -q 'conforming' /tmp/fuzz_replay.out
	! dune exec bin/untenable_cli.exe -- fuzz --replay /tmp/no-such-file.fuzz \
	  2> /dev/null
	@echo "fuzz-smoke: OK"

bench:
	dune exec bench/main.exe

bench-telemetry:
	dune exec bench/main.exe -- telemetry

bench-profile:
	dune exec bench/main.exe -- profile

clean:
	dune clean
