# Convenience wrapper over dune.  `make check` is the tier-1 gate plus a
# smoke run of the telemetry overhead bench (3 reps — fast, catches wiring
# regressions, not a precision measurement; use `make bench-telemetry` for
# the real numbers).

.PHONY: all build test check bench bench-telemetry clean

all: build

build:
	dune build @all

test:
	dune runtest

check:
	dune build @all
	dune runtest
	dune exec bench/main.exe -- telemetry-smoke
	dune exec bench/main.exe -- throughput-smoke
	dune exec bench/main.exe -- chaos-smoke

bench:
	dune exec bench/main.exe

bench-telemetry:
	dune exec bench/main.exe -- telemetry

clean:
	dune clean
