# Convenience wrapper over dune.  `make check` is the tier-1 gate plus a
# smoke run of the telemetry overhead bench (3 reps — fast, catches wiring
# regressions, not a precision measurement; use `make bench-telemetry` for
# the real numbers).

.PHONY: all build test check bench bench-telemetry lint-smoke clean

all: build

build:
	dune build @all

test:
	dune runtest

check:
	dune build @all
	dune runtest
	dune exec bench/main.exe -- telemetry-smoke
	dune exec bench/main.exe -- throughput-smoke
	dune exec bench/main.exe -- chaos-smoke
	dune exec bench/main.exe -- elision-smoke
	$(MAKE) lint-smoke

# The three analysis passes over the lint corpus (which includes the §2.2
# probe-read exploit vehicle): every known-bad program must be flagged,
# every clean one must not, and the examples/lint_demo ground-truth run
# must agree with the runtime on both programs.
lint-smoke:
	dune build @all
	dune exec bin/untenable_cli.exe -- lint > /tmp/lint.out
	grep -q '^sock-leak .*resource.*error' /tmp/lint.out
	grep -q '^ringbuf-leak .*resource.*error' /tmp/lint.out
	grep -q '^lock-sleep .*lock.*error' /tmp/lint.out
	grep -q '^redundant-guard .*elide.*info.*elided' /tmp/lint.out
	! grep -q '^sock-clean .*\(error\|warning\)' /tmp/lint.out
	! grep -q '^probe-read-crasher .*\(error\|warning\|info\)' /tmp/lint.out
	dune exec examples/lint_demo.exe > /tmp/lint_demo.out
	grep -q 'leaky: .*OK' /tmp/lint_demo.out
	grep -q 'clean: .*OK' /tmp/lint_demo.out
	@echo "lint-smoke: OK"

bench:
	dune exec bench/main.exe

bench-telemetry:
	dune exec bench/main.exe -- telemetry

clean:
	dune clean
