(* Parser/pretty-printer tests: concrete programs, precedence, statement
   forms, error reporting, end-to-end parse->compile->run, and a round-trip
   property over generated ASTs. *)

open Untenable
open Rustlite.Ast
module Parser = Rustlite.Parser
module Pretty = Rustlite.Pretty
module Eval = Rustlite.Eval
module Kcrate = Rustlite.Kcrate
module Value = Rustlite.Value
module World = Framework.World

let ast =
  Alcotest.testable
    (fun ppf e -> Format.pp_print_string ppf (serialize e))
    (fun a b -> String.equal (serialize a) (serialize b))

let parses_to expected src =
  match Parser.parse src with
  | Ok e -> Alcotest.check ast src expected e
  | Error err -> Alcotest.failf "parse error at %d:%d: %s" err.Parser.line err.Parser.col err.Parser.msg

let parse_fails src =
  match Parser.parse src with
  | Error _ -> ()
  | Ok e -> Alcotest.failf "expected parse error, got %s" (serialize e)

let test_literals () =
  parses_to (Lit_int 42L) "42";
  parses_to (Lit_int (-7L)) "-7";
  parses_to (Lit_int 255L) "0xff";
  parses_to (Lit_bool true) "true";
  parses_to (Lit_str "hi\n") "\"hi\\n\"";
  parses_to Lit_unit "()";
  parses_to (None_ T_i64) "None";
  parses_to (None_ (T_option T_bool)) "None:Option<bool>";
  parses_to (Some_ (Lit_int 1L)) "Some(1)"

let test_precedence () =
  parses_to
    (Binop (Add, Lit_int 1L, Binop (Mul, Lit_int 2L, Lit_int 3L)))
    "1 + 2 * 3";
  parses_to
    (Binop (Mul, Binop (Add, Lit_int 1L, Lit_int 2L), Lit_int 3L))
    "(1 + 2) * 3";
  parses_to
    (Binop (LOr, Binop (Lt, Var "x", Lit_int 1L),
            Binop (LAnd, Binop (Gt, Var "y", Lit_int 2L), Lit_bool true)))
    "x < 1 || y > 2 && true";
  parses_to
    (Binop (Sub, Binop (Sub, Lit_int 10L, Lit_int 3L), Lit_int 2L))
    "10 - 3 - 2";
  parses_to
    (Binop (BOr, Binop (BAnd, Var "a", Var "b"), Var "c"))
    "a & b | c";
  parses_to (Not (Binop (Eq, Var "x", Lit_int 0L))) "!(x == 0)";
  parses_to (Binop (Shl, Lit_int 1L, Lit_int 4L)) "1 << 4"

let test_let_and_blocks () =
  parses_to
    (Let { name = "x"; mut = false; value = Lit_int 1L;
           body = Binop (Add, Var "x", Lit_int 2L) })
    "let x = 1; x + 2";
  parses_to
    (Let { name = "x"; mut = true; value = Lit_int 0L;
           body = Seq [ Assign ("x", Lit_int 5L); Var "x" ] })
    "let mut x = 0; x = 5; x";
  (* a trailing semicolon makes the program unit-valued *)
  parses_to
    (Seq [ Call ("trace", [ Lit_str "hi" ]); Lit_unit ])
    "trace(\"hi\");"

let test_control_flow () =
  parses_to
    (If (Binop (Lt, Var "x", Lit_int 3L), Lit_int 1L, Lit_int 2L))
    "if x < 3 { 1 } else { 2 }";
  parses_to
    (If (Lit_bool true, Call ("trace", [ Lit_str "t" ]), Lit_unit))
    "if true { trace(\"t\") }";
  parses_to
    (While (Binop (Gt, Var "n", Lit_int 0L), Assign ("n", Binop (Sub, Var "n", Lit_int 1L))))
    "while n > 0 { n = n - 1 }";
  parses_to
    (For ("i", Lit_int 0L, Lit_int 10L, Assign ("acc", Binop (Add, Var "acc", Var "i"))))
    "for i in 0..10 { acc = acc + i }"

let test_match_and_if_let () =
  let expected =
    Match_option
      { scrutinee = Call ("map_get", [ Lit_str "m"; Lit_int 0L ]); bind = "v";
        some_branch = Var "v"; none_branch = Lit_int (-1L) }
  in
  parses_to expected "match map_get(\"m\", 0) { Some(v) => v, None => -1 }";
  parses_to expected "match map_get(\"m\", 0) { None => -1, Some(v) => v }";
  parses_to
    (Match_option
       { scrutinee = Call ("task_current", []); bind = "t";
         some_branch = Call ("task_pid", [ Borrow "t" ]); none_branch = Lit_unit })
    "if let Some(t) = task_current() { task_pid(&t) }"

let test_arrays () =
  parses_to
    (Index (Array_lit [ Lit_int 1L; Lit_int 2L ], Lit_int 0L))
    "[1, 2][0]";
  parses_to
    (Let { name = "a"; mut = true;
           value = Array_lit [ Lit_int 0L; Lit_int 0L ];
           body = Seq [ Index_assign ("a", Lit_int 1L, Lit_int 9L);
                        Index (Var "a", Lit_int 1L) ] })
    "let mut a = [0, 0]; a[1] = 9; a[1]"

let test_builtins () =
  parses_to (Str_len (Lit_str "abc")) "len(\"abc\")";
  parses_to (Str_parse (Lit_str "42")) "parse(\"42\")";
  parses_to (Str_cmp (Var "a", Var "b")) "strcmp(a, b)";
  parses_to (Panic "boom") "panic(\"boom\")";
  parses_to (Drop_ "sk") "drop(sk)";
  parses_to (Call ("sk_lookup", [ Lit_int 80L ])) "sk_lookup(80)";
  parses_to (Call ("rb_submit", [ Var "res" ])) "rb_submit(res)"

let test_comments () =
  parses_to (Lit_int 1L) "// leading comment\n1 /* trailing */";
  parses_to (Binop (Add, Lit_int 1L, Lit_int 2L)) "1 + /* inline */ 2"

let test_parse_errors () =
  parse_fails "let = 5;";
  parse_fails "1 +";
  parse_fails "if x { 1 } else";
  parse_fails "match x { Some(v) => v }";
  parse_fails "\"unterminated";
  parse_fails "[]";
  parse_fails "1 2";
  parse_fails "panic(42)"

let test_error_location () =
  match Parser.parse "let x = 1;\nlet y = ;" with
  | Error err -> Alcotest.(check int) "error on line 2" 2 err.Parser.line
  | Ok _ -> Alcotest.fail "should not parse"

(* parse -> toolchain -> run, end to end from source text *)
let test_source_to_execution () =
  let src = {|
    // sum the numbers below 100 divisible by 3
    let mut total = 0;
    for i in 0..100 {
      if i % 3 == 0 { total = total + i; } else { () }
    }
    total
  |} in
  let body = Parser.parse_exn src in
  let world = World.create_populated () in
  match Rustlite.Toolchain.compile { Rustlite.Toolchain.name = "sum3"; maps = []; body } with
  | Error e -> Alcotest.failf "toolchain: %s" (Format.asprintf "%a" Rustlite.Toolchain.pp_error e)
  | Ok ext -> (
    let loaded = Result.get_ok (Framework.Loader.load_rustlite world ext) in
    match (Framework.Invoke.run world loaded).Framework.Loader.outcome with
    | Framework.Loader.Finished 1683L -> ()
    | o ->
      Alcotest.failf "expected 1683, got %s"
        (Format.asprintf "%a" Framework.Loader.pp_outcome o))

let test_source_with_resources () =
  let src = {|
    if let Some(sk) = sk_lookup(8080) {
      let port = sk_port(&sk);
      trace_i64("saw port ", port);
      port
    } else { 0 }
  |} in
  let body = Parser.parse_exn src in
  let world = World.create_populated () in
  let kctx = { Kcrate.hctx = World.new_hctx world; map_ids = [] } in
  match Eval.run ~kctx body with
  | Eval.Ret (Value.V_int 8080L) ->
    Alcotest.(check int) "RAII released the sock" 0
      (List.length
         (Kernel_sim.Kernel.health world.World.kernel).Kernel_sim.Kernel.leaked_refs)
  | o -> Alcotest.failf "expected 8080, got %s" (Format.asprintf "%a" Eval.pp_outcome o)

(* ---------------- round-trip property ---------------- *)

let gen_expr =
  QCheck.Gen.(
    sized @@ fix (fun self size ->
        let leaf =
          oneof
            [ map (fun v -> Lit_int (Int64.of_int v)) (int_range (-1000) 1000);
              map (fun b -> Lit_bool b) bool;
              oneofl [ Var "x"; Var "y"; Lit_unit; Lit_str "s"; None_ T_i64 ] ]
        in
        if size <= 1 then leaf
        else
          let sub = self (size / 2) in
          oneof
            [ leaf;
              map2 (fun op (a, b) -> Binop (op, a, b))
                (oneofl [ Add; Sub; Mul; Div; LAnd; LOr; Eq; Lt; Shl; BAnd; BOr ])
                (pair sub sub);
              map (fun e -> Not e) sub;
              map (fun e -> Some_ e) sub;
              map3 (fun c t f -> If (c, t, f)) sub sub sub;
              map2 (fun v b -> Let { name = "z"; mut = false; value = v; body = b })
                sub sub;
              map2 (fun a b -> Seq [ a; b ]) sub sub;
              map3
                (fun s sb nb ->
                  Match_option { scrutinee = s; bind = "w"; some_branch = sb;
                                 none_branch = nb })
                sub sub sub;
              map2 (fun a b -> Call ("trace_i64", [ a; b ])) sub sub ]))

(* normalise sequencing artifacts before comparing: the printer/parser pair
   preserves semantics but may rebalance Seq nesting *)
let rec normalize e =
  match e with
  | Seq es -> (
    let es = List.concat_map (fun e -> match normalize e with Seq i -> i | x -> [ x ]) es in
    match es with [ x ] -> x | es -> Seq es)
  | Let { name; mut; value; body } ->
    Let { name; mut; value = normalize value; body = normalize body }
  | Binop (op, a, b) -> Binop (op, normalize a, normalize b)
  | Not e -> Not (normalize e)
  | Neg e -> Neg (normalize e)
  | Some_ e -> Some_ (normalize e)
  | If (c, t, f) -> If (normalize c, normalize t, normalize f)
  | While (c, b) -> While (normalize c, normalize b)
  | For (x, lo, hi, b) -> For (x, normalize lo, normalize hi, normalize b)
  | Match_option { scrutinee; bind; some_branch; none_branch } ->
    Match_option
      { scrutinee = normalize scrutinee; bind; some_branch = normalize some_branch;
        none_branch = normalize none_branch }
  | Array_lit es -> Array_lit (List.map normalize es)
  | Index (a, i) -> Index (normalize a, normalize i)
  | Index_assign (x, i, v) -> Index_assign (x, normalize i, normalize v)
  | Assign (x, v) -> Assign (x, normalize v)
  | Call (f, args) -> Call (f, List.map normalize args)
  | Str_len e -> Str_len (normalize e)
  | Str_parse e -> Str_parse (normalize e)
  | Str_cmp (a, b) -> Str_cmp (normalize a, normalize b)
  | Lit_unit | Lit_bool _ | Lit_int _ | Lit_str _ | Var _ | None_ _ | Borrow _
  | Panic _ | Drop_ _ -> e

let roundtrip_property =
  QCheck.Test.make ~count:300 ~name:"pretty |> parse round-trips the AST"
    (QCheck.make ~print:Pretty.to_string gen_expr)
    (fun e ->
      let text = Pretty.to_string e in
      match Parser.parse text with
      | Error err ->
        QCheck.Test.fail_reportf "did not re-parse (%s at %d:%d):\n%s" err.Parser.msg
          err.Parser.line err.Parser.col text
      | Ok e' -> String.equal (serialize (normalize e)) (serialize (normalize e')))

(* robustness: arbitrary input must yield Ok or Error, never an escaped
   exception (the toolchain front door faces untrusted text) *)
let parser_total =
  QCheck.Test.make ~count:500 ~name:"parser is total on arbitrary input"
    QCheck.(string_gen_of_size (QCheck.Gen.int_bound 80) QCheck.Gen.printable)
    (fun s ->
      match Parser.parse s with Ok _ | Error _ -> true)

let suite =
  [
    QCheck_alcotest.to_alcotest parser_total;
    Alcotest.test_case "literals" `Quick test_literals;
    Alcotest.test_case "precedence" `Quick test_precedence;
    Alcotest.test_case "let and blocks" `Quick test_let_and_blocks;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "match and if-let" `Quick test_match_and_if_let;
    Alcotest.test_case "arrays" `Quick test_arrays;
    Alcotest.test_case "builtins" `Quick test_builtins;
    Alcotest.test_case "comments" `Quick test_comments;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "error location" `Quick test_error_location;
    Alcotest.test_case "source to execution" `Quick test_source_to_execution;
    Alcotest.test_case "source with resources" `Quick test_source_with_resources;
    QCheck_alcotest.to_alcotest roundtrip_property;
  ]
