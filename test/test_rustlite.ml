(* rustlite tests: type checker, ownership checker, evaluator semantics
   (checked arithmetic, RAII), signing, toolchain pipeline, and the trusted
   kernel crate. *)

open Untenable
open Rustlite.Ast
module Typeck = Rustlite.Typeck
module Ownck = Rustlite.Ownck
module Eval = Rustlite.Eval
module Sign = Rustlite.Sign
module Toolchain = Rustlite.Toolchain
module Kcrate = Rustlite.Kcrate
module Value = Rustlite.Value
module Guard = Runtime.Guard
module Kernel = Kernel_sim.Kernel
module Bpf_map = Maps.Bpf_map
module World = Framework.World

(* ---------------- type checker ---------------- *)

let well_typed e =
  match Typeck.check e with
  | Ok _ -> ()
  | Error err -> Alcotest.failf "unexpected type error: %s" err.Typeck.what

let ill_typed e =
  match Typeck.check e with
  | Ok t -> Alcotest.failf "ill-typed program accepted with type %s" (ty_to_string t)
  | Error _ -> ()

let test_typeck_accepts () =
  well_typed (Binop (Add, Lit_int 1L, Lit_int 2L));
  well_typed (If (Lit_bool true, Lit_int 1L, Lit_int 2L));
  well_typed
    (Let { name = "x"; mut = true; value = Lit_int 0L;
           body = Seq [ Assign ("x", Lit_int 5L); Var "x" ] });
  well_typed
    (Match_option
       { scrutinee = Some_ (Lit_int 3L); bind = "v"; some_branch = Var "v";
         none_branch = Lit_int 0L });
  well_typed (Index (Array_lit [ Lit_int 1L; Lit_int 2L ], Lit_int 0L));
  well_typed (Str_parse (Lit_str "42"));
  well_typed (While (Lit_bool false, Lit_unit));
  well_typed (For ("i", Lit_int 0L, Lit_int 3L, Var "i"))

let test_typeck_rejects () =
  ill_typed (Binop (Add, Lit_int 1L, Lit_bool true));
  ill_typed (If (Lit_int 1L, Lit_int 1L, Lit_int 2L));
  ill_typed (If (Lit_bool true, Lit_int 1L, Lit_bool false));
  ill_typed (Var "nope");
  ill_typed (Call ("no_such_function", []));
  ill_typed (Call ("map_get", [ Lit_int 1L; Lit_int 0L ])); (* wrong arg type *)
  ill_typed (Call ("map_get", [ Lit_str "m" ])); (* wrong arity *)
  ill_typed (Let { name = "x"; mut = false; value = Lit_int 0L;
                   body = Assign ("x", Lit_int 1L) }); (* immutable assign *)
  ill_typed (Array_lit [ Lit_int 1L; Lit_bool true ]); (* heterogeneous *)
  ill_typed (Array_lit []); (* no type *)
  ill_typed (Index (Lit_int 3L, Lit_int 0L));
  ill_typed (Match_option { scrutinee = Lit_int 1L; bind = "v";
                            some_branch = Var "v"; none_branch = Lit_int 0L });
  ill_typed (Str_len (Lit_int 5L));
  ill_typed (Not (Lit_int 1L))

let test_typeck_resource_types () =
  (* task_current yields Option<Task>; borrowing the payload types as &Task *)
  well_typed
    (Match_option
       { scrutinee = Call ("task_current", []); bind = "t";
         some_branch = Call ("task_pid", [ Borrow "t" ]); none_branch = Lit_int 0L });
  (* passing the resource by value where a borrow is expected fails *)
  ill_typed
    (Match_option
       { scrutinee = Call ("task_current", []); bind = "t";
         some_branch = Call ("task_pid", [ Var "t" ]); none_branch = Lit_int 0L })

(* ---------------- ownership checker ---------------- *)

let owned_ok e =
  (match Typeck.check e with
  | Ok _ -> ()
  | Error err -> Alcotest.failf "type error in ownership test: %s" err.Typeck.what);
  match Ownck.check e with
  | Ok () -> ()
  | Error err -> Alcotest.failf "unexpected ownership error: %s" err.Ownck.what

let owned_bad e =
  (match Typeck.check e with
  | Ok _ -> ()
  | Error err -> Alcotest.failf "type error in ownership test: %s" err.Typeck.what);
  match Ownck.check e with
  | Ok () -> Alcotest.fail "ownership violation accepted"
  | Error _ -> ()

(* helper: a resource-producing expression *)
let with_sock body =
  Match_option
    { scrutinee = Call ("sk_lookup", [ Lit_int 8080L ]); bind = "sk";
      some_branch = body; none_branch = Lit_unit }

let test_own_use_after_move () =
  (* moving sk into a new binding, then using the old name *)
  owned_bad
    (with_sock
       (Let { name = "sk2"; mut = false; value = Var "sk";
              body = Seq [ Drop_ "sk"; Lit_unit ] }));
  owned_ok
    (with_sock
       (Let { name = "sk2"; mut = false; value = Var "sk";
              body = Seq [ Drop_ "sk2"; Lit_unit ] }))

let test_own_double_submit () =
  (* the rb_submit double-free is a compile error: the paper's RAII story *)
  let prog submit_twice =
    Match_option
      { scrutinee = Call ("ringbuf_reserve", [ Lit_str "rb"; Lit_int 16L ]);
        bind = "res";
        some_branch =
          (if submit_twice then
             Seq [ Call ("rb_submit", [ Var "res" ]); Call ("rb_submit", [ Var "res" ]) ]
           else Call ("rb_submit", [ Var "res" ]));
        none_branch = Lit_unit }
  in
  owned_ok (prog false);
  owned_bad (prog true)

let test_own_copy_types_unaffected () =
  owned_ok
    (Let { name = "x"; mut = false; value = Lit_int 5L;
           body = Seq [ Var "x"; Var "x"; Binop (Add, Var "x", Var "x") ] })

let test_own_index_borrows () =
  owned_ok
    (Let { name = "a"; mut = false; value = Array_lit [ Lit_int 1L; Lit_int 2L ];
           body =
             Binop (Add, Index (Var "a", Lit_int 0L), Index (Var "a", Lit_int 1L)) })

let test_own_reassign_revives () =
  owned_ok
    (Let { name = "x"; mut = true; value = Array_lit [ Lit_int 1L ];
           body =
             Seq
               [ Let { name = "y"; mut = false; value = Var "x"; body = Lit_unit };
                 Assign ("x", Array_lit [ Lit_int 2L ]);
                 Index (Var "x", Lit_int 0L) ] })

let test_own_branch_merge () =
  let prog =
    Match_option
      { scrutinee = Call ("ringbuf_reserve", [ Lit_str "rb"; Lit_int 16L ]);
        bind = "res";
        some_branch =
          Seq
            [ If (Lit_bool true, Call ("rb_submit", [ Var "res" ]), Lit_unit);
              Drop_ "res" ];
        none_branch = Lit_unit }
  in
  owned_bad prog

let test_own_borrow_of_moved () =
  let prog =
    Match_option
      { scrutinee = Call ("ringbuf_reserve", [ Lit_str "rb"; Lit_int 16L ]);
        bind = "res";
        some_branch =
          Seq
            [ Call ("rb_submit", [ Var "res" ]);
              Call ("rb_write_i64", [ Borrow "res"; Lit_int 0L; Lit_int 1L ]) ];
        none_branch = Lit_unit }
  in
  owned_bad prog

let test_own_loop_move () =
  let prog =
    Match_option
      { scrutinee = Call ("ringbuf_reserve", [ Lit_str "rb"; Lit_int 16L ]);
        bind = "res";
        some_branch = While (Lit_bool true, Call ("rb_submit", [ Var "res" ]));
        none_branch = Lit_unit }
  in
  owned_bad prog

(* ---------------- evaluator ---------------- *)

let run ?fuel ?wall_ns ?(maps = []) e =
  let world = World.create_populated () in
  let hctx = World.new_hctx world in
  let map_ids =
    List.map
      (fun def ->
        let m = World.register_map world def in
        (def.Bpf_map.name, m.Bpf_map.id))
      maps
  in
  let kctx = { Kcrate.hctx; map_ids } in
  (world, hctx, Eval.run ?fuel ?wall_ns ~kctx e)

let expect_int expected e =
  match run e with
  | _, _, Eval.Ret (Value.V_int v) -> Alcotest.(check int64) "result" expected v
  | _, _, other -> Alcotest.failf "expected int, got %s" (Format.asprintf "%a" Eval.pp_outcome other)

let expect_panic substring e =
  match run e with
  | _, _, Eval.Terminated { Guard.reason = Guard.Language_panic msg; _ } ->
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    if not (contains msg substring) then
      Alcotest.failf "panic %S does not mention %S" msg substring
  | _, _, other ->
    Alcotest.failf "expected panic, got %s" (Format.asprintf "%a" Eval.pp_outcome other)

let test_eval_arithmetic () =
  expect_int 7L (Binop (Add, Lit_int 3L, Lit_int 4L));
  expect_int (-12L) (Binop (Mul, Lit_int 3L, Lit_int (-4L)));
  expect_int 2L (Binop (Rem, Lit_int 17L, Lit_int 5L));
  expect_int 4L (Binop (Shr, Lit_int 16L, Lit_int 2L))

let test_eval_overflow_panics () =
  expect_panic "overflow" (Binop (Add, Lit_int Int64.max_int, Lit_int 1L));
  expect_panic "overflow" (Binop (Mul, Lit_int Int64.max_int, Lit_int 2L));
  expect_panic "overflow" (Neg (Lit_int Int64.min_int));
  expect_panic "overflow" (Binop (Shl, Lit_int 1L, Lit_int 64L))

let test_eval_div_by_zero_panics () =
  expect_panic "divide by zero" (Binop (Div, Lit_int 5L, Lit_int 0L));
  expect_panic "remainder" (Binop (Rem, Lit_int 5L, Lit_int 0L))

let test_eval_index_oob_panics () =
  expect_panic "index out of bounds"
    (Index (Array_lit [ Lit_int 1L ], Lit_int 3L))

let test_eval_loops () =
  expect_int 499500L
    (Let { name = "acc"; mut = true; value = Lit_int 0L;
           body =
             Seq
               [ For ("i", Lit_int 0L, Lit_int 1000L,
                      Assign ("acc", Binop (Add, Var "acc", Var "i")));
                 Var "acc" ] });
  expect_int 10L
    (Let { name = "x"; mut = true; value = Lit_int 0L;
           body =
             Seq
               [ While (Binop (Lt, Var "x", Lit_int 10L),
                        Assign ("x", Binop (Add, Var "x", Lit_int 1L)));
                 Var "x" ] })

let test_eval_parse_and_strings () =
  expect_int 42L
    (Match_option
       { scrutinee = Str_parse (Lit_str " 42 "); bind = "v"; some_branch = Var "v";
         none_branch = Lit_int (-1L) });
  expect_int (-1L)
    (Match_option
       { scrutinee = Str_parse (Lit_str "xyz"); bind = "v"; some_branch = Var "v";
         none_branch = Lit_int (-1L) });
  expect_int 5L (Str_len (Lit_str "hello"))

let test_eval_watchdog () =
  match run ~wall_ns:10_000L (While (Lit_bool true, Lit_unit)) with
  | _, _, Eval.Terminated { Guard.reason = Guard.Watchdog_timeout; _ } -> ()
  | _, _, other -> Alcotest.failf "expected watchdog, got %s"
                     (Format.asprintf "%a" Eval.pp_outcome other)

let test_eval_fuel () =
  match run ~fuel:50L (While (Lit_bool true, Lit_unit)) with
  | _, _, Eval.Terminated { Guard.reason = Guard.Fuel_exhausted; _ } -> ()
  | _, _, other -> Alcotest.failf "expected fuel exhaustion, got %s"
                     (Format.asprintf "%a" Eval.pp_outcome other)

let test_eval_raii_scope_drop () =
  (* a socket acquired in a scope is released when the scope ends *)
  let world, _, outcome =
    run
      (Seq
         [ Match_option
             { scrutinee = Call ("sk_lookup", [ Lit_int 8080L ]); bind = "sk";
               some_branch = Call ("sk_port", [ Borrow "sk" ]);
               none_branch = Lit_int 0L };
           Lit_int 1L ])
  in
  (match outcome with
  | Eval.Ret (Value.V_int 1L) -> ()
  | other -> Alcotest.failf "expected 1, got %s" (Format.asprintf "%a" Eval.pp_outcome other));
  Alcotest.(check int) "sock ref released by RAII" 0
    (List.length (Kernel.health world.World.kernel).Kernel.leaked_refs)

let test_eval_raii_panic_cleanup () =
  let world, hctx, outcome =
    run
      (Match_option
         { scrutinee = Call ("sk_lookup", [ Lit_int 8080L ]); bind = "sk";
           some_branch = Panic "boom"; none_branch = Lit_unit })
  in
  (match outcome with
  | Eval.Terminated t ->
    Alcotest.(check int) "cleanup ran" 1 t.Guard.cleaned_resources
  | other -> Alcotest.failf "expected panic, got %s" (Format.asprintf "%a" Eval.pp_outcome other));
  Alcotest.(check int) "no leak" 0
    (List.length (Kernel.health world.World.kernel).Kernel.leaked_refs);
  ignore hctx

let test_eval_explicit_drop () =
  let world, _, _ =
    run
      (Match_option
         { scrutinee = Call ("sk_lookup", [ Lit_int 8080L ]); bind = "sk";
           some_branch = Drop_ "sk"; none_branch = Lit_unit })
  in
  Alcotest.(check int) "dropped early" 0
    (List.length (Kernel.health world.World.kernel).Kernel.leaked_refs)

(* ---------------- kcrate ---------------- *)

let rb_def =
  { Bpf_map.name = "rb"; kind = Bpf_map.Ringbuf; key_size = 0; value_size = 0;
    max_entries = 1024; lock_off = None }

let counter_def =
  { Bpf_map.name = "c"; kind = Bpf_map.Array; key_size = 4; value_size = 8;
    max_entries = 4; lock_off = None }

let test_kcrate_map_roundtrip () =
  let _, _, outcome =
    run ~maps:[ counter_def ]
      (Seq
         [ Call ("map_set", [ Lit_str "c"; Lit_int 2L; Lit_int 91L ]);
           Match_option
             { scrutinee = Call ("map_get", [ Lit_str "c"; Lit_int 2L ]); bind = "v";
               some_branch = Var "v"; none_branch = Lit_int (-1L) } ])
  in
  match outcome with
  | Eval.Ret (Value.V_int 91L) -> ()
  | other -> Alcotest.failf "expected 91, got %s" (Format.asprintf "%a" Eval.pp_outcome other)

let test_kcrate_ringbuf_flow () =
  let world, _, outcome =
    run ~maps:[ rb_def ]
      (Match_option
         { scrutinee = Call ("ringbuf_reserve", [ Lit_str "rb"; Lit_int 16L ]);
           bind = "res";
           some_branch =
             Seq
               [ Call ("rb_write_i64", [ Borrow "res"; Lit_int 0L; Lit_int 7L ]);
                 Call ("rb_submit", [ Var "res" ]); Lit_int 1L ];
           none_branch = Lit_int 0L })
  in
  (match outcome with
  | Eval.Ret (Value.V_int 1L) -> ()
  | other -> Alcotest.failf "flow failed: %s" (Format.asprintf "%a" Eval.pp_outcome other));
  (* userspace sees exactly one record *)
  let rb =
    List.find_map Bpf_map.ringbuf (Bpf_map.Registry.all world.World.maps)
    |> Option.get
  in
  match Maps.Ringbuf.consume rb with
  | [ record ] -> Alcotest.(check int64) "payload" 7L (Bytes.get_int64_le record 0)
  | l -> Alcotest.failf "expected 1 record, got %d" (List.length l)

let test_kcrate_reservation_dropped_if_not_submitted () =
  let world, _, _ =
    run ~maps:[ rb_def ]
      (Match_option
         { scrutinee = Call ("ringbuf_reserve", [ Lit_str "rb"; Lit_int 16L ]);
           bind = "res"; some_branch = Lit_unit (* res dropped: RAII discard *);
           none_branch = Lit_unit })
  in
  let rb =
    List.find_map Bpf_map.ringbuf (Bpf_map.Registry.all world.World.maps)
    |> Option.get
  in
  Alcotest.(check int) "no dangling reservation" 0
    (List.length (Maps.Ringbuf.outstanding_reservations rb))

let test_kcrate_task_storage_via_borrow () =
  let tls =
    { Bpf_map.name = "tls"; kind = Bpf_map.Hash; key_size = 4; value_size = 8;
      max_entries = 8; lock_off = None }
  in
  let _, _, outcome =
    run ~maps:[ tls ]
      (Match_option
         { scrutinee = Call ("task_current", []); bind = "t";
           some_branch =
             Seq
               [ Call ("task_storage_set", [ Lit_str "tls"; Borrow "t"; Lit_int 9L ]);
                 Match_option
                   { scrutinee =
                       Call ("task_storage_get",
                             [ Lit_str "tls"; Borrow "t"; Lit_int 0L ]);
                     bind = "v"; some_branch = Var "v"; none_branch = Lit_int (-1L) } ];
           none_branch = Lit_int (-2L) })
  in
  match outcome with
  | Eval.Ret (Value.V_int 9L) -> ()
  | other -> Alcotest.failf "expected 9, got %s" (Format.asprintf "%a" Eval.pp_outcome other)

(* ---------------- sign / toolchain ---------------- *)

let test_sha256_vector () =
  Alcotest.(check string) "sha256(abc)"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sign.to_hex (Sign.sha256 "abc"));
  Alcotest.(check string) "sha256(empty)"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sign.to_hex (Sign.sha256 ""))

let test_hmac_properties () =
  let s1 = Sign.sign ~key:"k1" "payload" in
  let s2 = Sign.sign ~key:"k1" "payload" in
  let s3 = Sign.sign ~key:"k2" "payload" in
  Alcotest.(check string) "deterministic" s1.Sign.mac_hex s2.Sign.mac_hex;
  Alcotest.(check bool) "key matters" false (String.equal s1.Sign.mac_hex s3.Sign.mac_hex);
  Alcotest.(check bool) "validate ok" true (Sign.validate ~key:"k1" "payload" s1);
  Alcotest.(check bool) "validate bad payload" false
    (Sign.validate ~key:"k1" "payloaX" s1)

let test_toolchain_pipeline () =
  let good = { Toolchain.name = "ok"; maps = []; body = Lit_int 1L } in
  (match Toolchain.compile good with
  | Ok ext -> Alcotest.(check bool) "validates" true (Toolchain.validate ext)
  | Error _ -> Alcotest.fail "good program rejected");
  let bad_ty = { Toolchain.name = "bad"; maps = []; body = Binop (Add, Lit_int 1L, Lit_bool true) } in
  (match Toolchain.compile bad_ty with
  | Error (Toolchain.Type_error _) -> ()
  | _ -> Alcotest.fail "type error not caught");
  let bad_own =
    { Toolchain.name = "bad2"; maps = [ rb_def ];
      body =
        Match_option
          { scrutinee = Call ("ringbuf_reserve", [ Lit_str "rb"; Lit_int 8L ]);
            bind = "r";
            some_branch =
              Seq [ Call ("rb_submit", [ Var "r" ]); Call ("rb_submit", [ Var "r" ]) ];
            none_branch = Lit_unit } }
  in
  match Toolchain.compile bad_own with
  | Error (Toolchain.Ownership_error _) -> ()
  | _ -> Alcotest.fail "ownership error not caught"

let test_toolchain_tamper () =
  let good = { Toolchain.name = "ok"; maps = []; body = Lit_int 1L } in
  match Toolchain.compile good with
  | Error _ -> Alcotest.fail "good program rejected"
  | Ok ext ->
    let evil = { ext with Toolchain.src = { ext.Toolchain.src with Toolchain.body = Lit_int 666L } } in
    Alcotest.(check bool) "tamper detected" false (Toolchain.validate evil)

let test_serialize_distinguishes () =
  Alcotest.(check bool) "different programs, different payloads" false
    (String.equal (serialize (Lit_int 1L)) (serialize (Lit_int 2L)));
  Alcotest.(check bool) "structurally equal serialize equal" true
    (String.equal
       (serialize (Binop (Add, Var "x", Lit_int 1L)))
       (serialize (Binop (Add, Var "x", Lit_int 1L))))

let suite =
  [
    Alcotest.test_case "typeck accepts" `Quick test_typeck_accepts;
    Alcotest.test_case "typeck rejects" `Quick test_typeck_rejects;
    Alcotest.test_case "typeck resources" `Quick test_typeck_resource_types;
    Alcotest.test_case "own: use after move" `Quick test_own_use_after_move;
    Alcotest.test_case "own: double submit" `Quick test_own_double_submit;
    Alcotest.test_case "own: copy types" `Quick test_own_copy_types_unaffected;
    Alcotest.test_case "own: branch merge" `Quick test_own_branch_merge;
    Alcotest.test_case "own: loop move" `Quick test_own_loop_move;
    Alcotest.test_case "own: borrow of moved" `Quick test_own_borrow_of_moved;
    Alcotest.test_case "own: index borrows" `Quick test_own_index_borrows;
    Alcotest.test_case "own: reassign revives" `Quick test_own_reassign_revives;
    Alcotest.test_case "eval arithmetic" `Quick test_eval_arithmetic;
    Alcotest.test_case "eval overflow panics" `Quick test_eval_overflow_panics;
    Alcotest.test_case "eval div-by-zero panics" `Quick test_eval_div_by_zero_panics;
    Alcotest.test_case "eval index oob panics" `Quick test_eval_index_oob_panics;
    Alcotest.test_case "eval loops" `Quick test_eval_loops;
    Alcotest.test_case "eval parse/strings" `Quick test_eval_parse_and_strings;
    Alcotest.test_case "eval watchdog" `Quick test_eval_watchdog;
    Alcotest.test_case "eval fuel" `Quick test_eval_fuel;
    Alcotest.test_case "eval RAII scope drop" `Quick test_eval_raii_scope_drop;
    Alcotest.test_case "eval RAII panic cleanup" `Quick test_eval_raii_panic_cleanup;
    Alcotest.test_case "eval explicit drop" `Quick test_eval_explicit_drop;
    Alcotest.test_case "kcrate map roundtrip" `Quick test_kcrate_map_roundtrip;
    Alcotest.test_case "kcrate ringbuf flow" `Quick test_kcrate_ringbuf_flow;
    Alcotest.test_case "kcrate reservation RAII" `Quick test_kcrate_reservation_dropped_if_not_submitted;
    Alcotest.test_case "kcrate task storage" `Quick test_kcrate_task_storage_via_borrow;
    Alcotest.test_case "sha256 vectors" `Quick test_sha256_vector;
    Alcotest.test_case "hmac properties" `Quick test_hmac_properties;
    Alcotest.test_case "toolchain pipeline" `Quick test_toolchain_pipeline;
    Alcotest.test_case "toolchain tamper" `Quick test_toolchain_tamper;
    Alcotest.test_case "serialize" `Quick test_serialize_distinguishes;
  ]

(* ------------------------------------------------------------------ *)
(* The proposal-side soundness property (the §3 claim, as a theorem):
   any program the toolchain accepts — whatever it does with resources,
   arithmetic, loops or panics — leaves the simulated kernel healthy:
   no oops, no leaked references, no held locks, no leaked pool chunks.
   Panics and guard terminations are safe outcomes; kernel death is not. *)
(* ------------------------------------------------------------------ *)

let rl_gen_maps =
  [ { Bpf_map.name = "rb"; kind = Bpf_map.Ringbuf; key_size = 0; value_size = 0;
      max_entries = 1024; lock_off = None };
    { Bpf_map.name = "m"; kind = Bpf_map.Array; key_size = 4; value_size = 8;
      max_entries = 8; lock_off = None };
    { Bpf_map.name = "locked"; kind = Bpf_map.Array; key_size = 4; value_size = 16;
      max_entries = 2; lock_off = Some 0 } ]

(* i64-typed leaf expressions *)
let rl_gen_leaf =
  QCheck.Gen.(
    oneof
      [ map (fun v -> Lit_int (Int64.of_int v)) (int_range (-100) 100);
        return (Call ("prandom", []));
        return (Call ("pid_tgid", []));
        return (Call ("ktime", [])) ])

(* statements built from resource idioms and (possibly panicking) compute *)
let rl_gen_stmt =
  QCheck.Gen.(
    let* tag = int_bound 7 in
    let* leaf = rl_gen_leaf in
    let* leaf2 = rl_gen_leaf in
    match tag with
    | 0 ->
      (* socket held across some work, dropped by RAII *)
      return
        (Match_option
           { scrutinee = Call ("sk_lookup", [ Lit_int 8080L ]); bind = "sk";
             some_branch = Seq [ Call ("sk_port", [ Borrow "sk" ]); Lit_unit ];
             none_branch = Lit_unit })
    | 1 ->
      (* reservation submitted *)
      return
        (Match_option
           { scrutinee = Call ("ringbuf_reserve", [ Lit_str "rb"; Lit_int 16L ]);
             bind = "res";
             some_branch =
               Seq
                 [ Call ("rb_write_i64", [ Borrow "res"; Lit_int 0L; leaf ]);
                   Call ("rb_submit", [ Var "res" ]) ];
             none_branch = Lit_unit })
    | 2 ->
      (* reservation dropped (RAII discard) *)
      return
        (Match_option
           { scrutinee = Call ("ringbuf_reserve", [ Lit_str "rb"; Lit_int 8L ]);
             bind = "res"; some_branch = Lit_unit; none_branch = Lit_unit })
    | 3 ->
      (* lock guard over a small critical section *)
      return
        (Match_option
           { scrutinee = Call ("lock", [ Lit_str "locked" ]); bind = "g";
             some_branch = Seq [ Call ("map_set", [ Lit_str "m"; Lit_int 1L; leaf ]) ];
             none_branch = Lit_unit })
    | 4 ->
      (* pool chunk round-trip *)
      return
        (Match_option
           { scrutinee = Call ("pool_alloc", []); bind = "c";
             some_branch = Call ("chunk_write", [ Borrow "c"; Lit_int 0L; leaf ]);
             none_branch = Lit_unit })
    | 5 ->
      (* possibly-panicking arithmetic (div by random, checked ops) *)
      return (Seq [ Binop (Div, leaf, leaf2); Lit_unit ])
    | 6 ->
      (* a bounded loop of map traffic *)
      return
        (For ("i", Lit_int 0L, Lit_int 8L,
              Call ("map_set", [ Lit_str "m"; Var "i"; leaf ])))
    | _ ->
      (* maybe an explicit panic mid-program *)
      map (fun b -> if b then Panic "injected" else Lit_unit) bool)

let rl_gen_program =
  QCheck.Gen.(
    let* stmts = list_size (int_range 1 12) rl_gen_stmt in
    return (Seq (stmts @ [ Lit_int 0L ])))

let rl_soundness =
  QCheck.Test.make ~count:300
    ~name:"toolchain-accepted programs leave the kernel healthy"
    (QCheck.make ~print:Rustlite.Pretty.to_string rl_gen_program)
    (fun body ->
      let src = { Toolchain.name = "gen"; maps = rl_gen_maps; body } in
      match Toolchain.compile src with
      | Error _ -> QCheck.assume_fail () (* only accepted programs matter *)
      | Ok ext -> (
        let world = World.create_populated () in
        match Framework.Loader.load_rustlite world ext with
        | Error _ -> false
        | Ok loaded ->
          let report =
            Framework.Invoke.run
              ~opts:
                { Framework.Invoke.default_opts with
                  Framework.Invoke.fuel = Some 200_000L
                }
              world loaded
          in
          let healthy =
            Kernel.healthy (Kernel.health world.World.kernel)
          in
          let safe_outcome =
            match report.Framework.Loader.outcome with
            | Framework.Loader.Finished _ | Framework.Loader.Stopped _
            | Framework.Loader.Exhausted _ ->
              true
            | Framework.Loader.Crashed _ -> false
          in
          safe_outcome && healthy && report.Framework.Loader.resources_outstanding = 0))

let suite = suite @ [ QCheck_alcotest.to_alcotest rl_soundness ]
