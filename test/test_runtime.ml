(* Runtime tests: interpreter semantics, guards, JIT equivalence (including
   a qcheck differential test interp-vs-JIT on verifier-accepted programs),
   and the safe-termination cleanup machinery. *)

open Untenable
open Ebpf.Asm
module Interp = Runtime.Interp
module Jit = Runtime.Jit
module Guard = Runtime.Guard
module Program = Ebpf.Program
module Kernel = Kernel_sim.Kernel
module Kmem = Kernel_sim.Kmem
module World = Framework.World

let h = Helpers.Registry.id_of_name

let fresh () =
  let world = World.create_populated () in
  let hctx = World.new_hctx world in
  let ctx =
    Kmem.alloc world.World.kernel.Kernel.mem ~size:64 ~kind:"ctx" ~name:"tctx" ()
  in
  (world, hctx, ctx.Kmem.base)

let run_items ?fuel ?wall_ns ?ns_per_insn items =
  let _, hctx, ctx_addr = fresh () in
  let prog = Program.of_items_exn ~name:"t" ~prog_type:Program.Kprobe items in
  Interp.run ?fuel ?wall_ns ?ns_per_insn ~hctx ~prog ~ctx_addr ()

let expect_ret expected items =
  match run_items items with
  | Interp.Ret v -> Alcotest.(check int64) "return value" expected v
  | other -> Alcotest.failf "expected Ret, got %s" (Format.asprintf "%a" Interp.pp_outcome other)

(* ---------------- ALU semantics ---------------- *)

let test_alu_basic () =
  expect_ret 11L [ mov_i r0 5; add_i r0 6; exit_ ];
  expect_ret 30L [ mov_i r0 5; mul_i r0 6; exit_ ];
  expect_ret 2L [ mov_i r0 17; mod_i r0 5; exit_ ];
  expect_ret 3L [ mov_i r0 12; div_i r0 4; exit_ ];
  expect_ret (-5L) [ mov_i r0 5; neg r0; exit_ ]

let test_div_by_zero_yields_zero () =
  (* the JITed guard semantics: x / 0 = 0, x % 0 = x *)
  expect_ret 0L [ mov_i r0 7; mov_i r1 0; div_r r0 r1; exit_ ];
  expect_ret 7L [ mov_i r0 7; mov_i r1 0; mod_r r0 r1; exit_ ]

let test_unsigned_div () =
  (* -1 as unsigned is huge: dividing by 2 gives 2^63-1 *)
  expect_ret 0x7fff_ffff_ffff_ffffL [ mov_i r0 (-1); mov_i r1 2; div_r r0 r1; exit_ ]

let test_alu32_zext () =
  (* 32-bit add wraps and zero-extends *)
  expect_ret 0L
    [ lddw r0 0xffff_ffffL; insn (Ebpf.Insn.Alu { op = Ebpf.Insn.Add;
        width = Ebpf.Insn.W32; dst = 0; src = Ebpf.Insn.Imm 1 }); exit_ ]

let test_arsh () =
  expect_ret (-2L) [ mov_i r0 (-8); arsh_i r0 2; exit_ ];
  (* logical shift of a negative value clears the sign *)
  expect_ret 0x3fff_ffff_ffff_fffeL [ mov_i r0 (-8); rsh_i r0 2; exit_ ]

let test_jump_signed_vs_unsigned () =
  (* -1 unsigned-greater-than 5, but not signed-greater-than *)
  expect_ret 1L
    [ mov_i r2 (-1); mov_i r0 0; jgt_i r2 5 "t"; ja "end"; label "t"; mov_i r0 1;
      label "end"; exit_ ];
  expect_ret 0L
    [ mov_i r2 (-1); mov_i r0 0; jsgt_i r2 5 "t"; ja "end"; label "t"; mov_i r0 1;
      label "end"; exit_ ]

let test_jset () =
  expect_ret 1L
    [ mov_i r2 0b1010; mov_i r0 0; jset_i r2 0b0010 "t"; ja "end"; label "t";
      mov_i r0 1; label "end"; exit_ ]

let test_stack_roundtrip () =
  expect_ret 0xbeefL
    [ lddw r3 0xbeefL; stxdw r10 (-16) r3; ldxdw r0 r10 (-16); exit_ ]

let test_byte_granular_stack () =
  expect_ret 0x42L
    [ mov_i r3 0x42; stxb r10 (-1) r3; ldxb r0 r10 (-1); exit_ ]

let test_loop_countdown () =
  expect_ret 10L
    [ mov_i r0 0; mov_i r6 10; label "l"; add_i r0 1; sub_i r6 1; jne_i r6 0 "l";
      exit_ ]

let test_atomic_add () =
  expect_ret 15L
    [ stdw r10 (-8) 10; mov_i r3 5; atomic_add r10 (-8) r3; ldxdw r0 r10 (-8); exit_ ]

let test_atomic_fetch_add () =
  (* src receives the old value *)
  expect_ret 10L
    [ stdw r10 (-8) 10; mov_i r3 5; atomic_add ~fetch:true r10 (-8) r3;
      mov_r r0 r3; exit_ ]

let test_atomic_xchg () =
  expect_ret 10L
    [ stdw r10 (-8) 10; mov_i r3 77; atomic_xchg r10 (-8) r3; mov_r r0 r3; exit_ ]

let test_atomic_cmpxchg_hit () =
  (* r0 matches memory: src stored, r0 = old *)
  expect_ret 99L
    [ stdw r10 (-8) 10; mov_i r0 10; mov_i r3 99; atomic_cmpxchg r10 (-8) r3;
      ldxdw r0 r10 (-8); exit_ ]

let test_atomic_cmpxchg_miss () =
  (* r0 mismatches: memory unchanged, r0 = old *)
  expect_ret 10L
    [ stdw r10 (-8) 10; mov_i r0 11; mov_i r3 99; atomic_cmpxchg r10 (-8) r3;
      ldxdw r0 r10 (-8); exit_ ]

let test_atomic_bitwise () =
  expect_ret 0b1110L
    [ stdw r10 (-8) 0b1100; mov_i r3 0b0110; atomic_or r10 (-8) r3;
      ldxdw r0 r10 (-8); exit_ ]

let test_bpf2bpf_call () =
  (* max3(a,b,c) via two subprogram calls *)
  expect_ret 9L
    [ mov_i r1 7; mov_i r2 9; call_sub "max2"; mov_r r6 r0;
      mov_r r1 r6; mov_i r2 3; call_sub "max2"; exit_;
      label "max2";
      jge_r r1 r2 "a_wins"; mov_r r0 r2; exit_;
      label "a_wins"; mov_r r0 r1; exit_ ]

let test_bpf2bpf_callee_saved () =
  (* r6..r9 survive the call even if the callee uses them *)
  expect_ret 5L
    [ mov_i r6 5; mov_i r1 0; call_sub "clobber"; mov_r r0 r6; exit_;
      label "clobber"; mov_i r6 999; mov_i r0 0; exit_ ]

let test_bpf2bpf_recursion_guarded () =
  let _, hctx, ctx_addr = fresh () in
  let prog =
    Program.of_items_exn ~name:"rec" ~prog_type:Program.Kprobe
      [ mov_i r1 0; call_sub "self"; exit_;
        label "self"; mov_i r1 0; call_sub "self"; exit_ ]
  in
  match Interp.run ~hctx ~prog ~ctx_addr () with
  | Interp.Terminated { Guard.reason = Guard.Stack_violation; _ } -> ()
  | other -> Alcotest.failf "expected stack guard, got %s"
               (Format.asprintf "%a" Interp.pp_outcome other)

(* ---------------- guards ---------------- *)

let test_fuel_guard () =
  match
    run_items ~fuel:100L
      [ mov_i r0 0; label "l"; add_i r0 1; ja "l" ]
  with
  | Interp.Terminated { Guard.reason = Guard.Fuel_exhausted; _ } -> ()
  | other -> Alcotest.failf "expected fuel termination, got %s"
               (Format.asprintf "%a" Interp.pp_outcome other)

(* Regression: fuel is checked before executing, so [fuel:N] runs exactly N
   instructions.  An off-by-one previously terminated a single-insn program
   under [fuel:1]. *)
let test_fuel_exact_budget () =
  (match run_items ~fuel:1L [ exit_ ] with
   | Interp.Ret _ -> ()
   | other -> Alcotest.failf "fuel:1 should run [exit_], got %s"
                (Format.asprintf "%a" Interp.pp_outcome other));
  (match run_items ~fuel:3L [ mov_i r0 7; mov_i r0 9; exit_ ] with
   | Interp.Ret v -> Alcotest.(check int64) "ran to completion" 9L v
   | other -> Alcotest.failf "fuel:3 should suffice for 3 insns, got %s"
                (Format.asprintf "%a" Interp.pp_outcome other));
  (match run_items ~fuel:2L [ mov_i r0 7; mov_i r0 9; exit_ ] with
   | Interp.Terminated { Guard.reason = Guard.Fuel_exhausted; _ } -> ()
   | other -> Alcotest.failf "fuel:2 on 3 insns should trip, got %s"
                (Format.asprintf "%a" Interp.pp_outcome other));
  (match run_items ~fuel:0L [ exit_ ] with
   | Interp.Terminated { Guard.reason = Guard.Fuel_exhausted; _ } -> ()
   | other -> Alcotest.failf "fuel:0 should trip immediately, got %s"
                (Format.asprintf "%a" Interp.pp_outcome other))

let test_fuel_retires_exactly () =
  let _, hctx, ctx_addr = fresh () in
  let prog = Program.of_items_exn ~name:"t" ~prog_type:Program.Kprobe
      [ mov_i r0 0; label "l"; add_i r0 1; ja "l" ] in
  let outcome, retired = Interp.run_counted ~fuel:3L ~hctx ~prog ~ctx_addr () in
  (match outcome with
   | Interp.Terminated { Guard.reason = Guard.Fuel_exhausted; _ } -> ()
   | other -> Alcotest.failf "expected fuel termination, got %s"
                (Format.asprintf "%a" Interp.pp_outcome other));
  Alcotest.(check int64) "exactly 3 insns retired" 3L retired

let test_watchdog_guard () =
  match
    run_items ~wall_ns:5000L ~ns_per_insn:10L
      [ mov_i r0 0; label "l"; add_i r0 1; ja "l" ]
  with
  | Interp.Terminated { Guard.reason = Guard.Watchdog_timeout; _ } -> ()
  | other -> Alcotest.failf "expected watchdog, got %s"
               (Format.asprintf "%a" Interp.pp_outcome other)

let test_oops_surfaces () =
  match run_items [ mov_i r2 0; ldxdw r0 r2 0; exit_ ] with
  | Interp.Oopsed r ->
    Alcotest.(check string) "null deref" "NULL pointer dereference"
      (Kernel_sim.Oops.kind_to_string r.Kernel_sim.Oops.kind)
  | other -> Alcotest.failf "expected oops, got %s"
               (Format.asprintf "%a" Interp.pp_outcome other)

let test_rcu_wrapped () =
  let world, hctx, ctx_addr = fresh () in
  let prog = Program.of_items_exn ~name:"t" ~prog_type:Program.Kprobe
      [ mov_i r0 0; exit_ ] in
  ignore (Interp.run ~hctx ~prog ~ctx_addr ());
  Alcotest.(check bool) "rcu released after run" false
    (Kernel_sim.Rcu.in_critical_section world.World.kernel.Kernel.rcu)

let test_termination_cleans_resources () =
  (* acquire a sock ref, then spin forever; the fuel guard must terminate
     AND release the reference via the recorded destructor *)
  let world, hctx, ctx_addr = fresh () in
  Kernel.snapshot_refs world.World.kernel;
  let prog =
    Program.of_items_exn ~name:"t" ~prog_type:Program.Kprobe
      [ mov_i r1 8080; call (h "bpf_sk_lookup_tcp"); label "l"; ja "l" ]
  in
  (match Interp.run ~fuel:500L ~hctx ~prog ~ctx_addr () with
  | Interp.Terminated t ->
    Alcotest.(check int) "one resource cleaned" 1 t.Guard.cleaned_resources
  | other -> Alcotest.failf "expected termination, got %s"
               (Format.asprintf "%a" Interp.pp_outcome other));
  let health = Kernel.health world.World.kernel in
  Alcotest.(check int) "no leaked refs after cleanup" 0
    (List.length health.Kernel.leaked_refs);
  Alcotest.(check bool) "rcu not stuck" false
    (Kernel_sim.Rcu.in_critical_section world.World.kernel.Kernel.rcu)

let test_callback_depth_guard () =
  let _, hctx, ctx_addr = fresh () in
  let prog =
    Program.of_items_exn ~name:"t" ~prog_type:Program.Kprobe
      [ mov_i r1 1; mov_label r2 "cb"; mov_i r3 0; mov_i r4 0; call (h "bpf_loop");
        mov_i r0 0; exit_;
        label "cb"; mov_i r1 1; mov_label r2 "cb"; mov_i r3 0; mov_i r4 0;
        call (h "bpf_loop"); mov_i r0 0; exit_ ]
  in
  match Interp.run ~hctx ~prog ~ctx_addr () with
  | Interp.Terminated { Guard.reason = Guard.Stack_violation; _ } -> ()
  | other -> Alcotest.failf "expected stack guard, got %s"
               (Format.asprintf "%a" Interp.pp_outcome other)

let test_insn_counting () =
  let _, hctx, ctx_addr = fresh () in
  let prog = Program.of_items_exn ~name:"t" ~prog_type:Program.Kprobe
      [ mov_i r0 1; add_i r0 2; exit_ ] in
  let outcome, retired = Interp.run_counted ~hctx ~prog ~ctx_addr () in
  (match outcome with Interp.Ret _ -> () | _ -> Alcotest.fail "ret expected");
  Alcotest.(check int64) "3 insns retired" 3L retired

(* ---------------- JIT ---------------- *)

let run_jit ?bug items =
  let _, hctx, ctx_addr = fresh () in
  let prog = Program.of_items_exn ~name:"t" ~prog_type:Program.Kprobe items in
  let compiled = Jit.compile ?bug_branch_off_by_one:bug hctx prog in
  Jit.run hctx compiled ~ctx_addr

let test_bpf2bpf_jit_parity () =
  let items =
    [ mov_i r1 20; mov_i r2 22; call_sub "add"; exit_;
      label "add"; mov_r r0 r1; add_r r0 r2; exit_ ]
  in
  match (run_items items, run_jit items) with
  | Interp.Ret a, Interp.Ret b ->
    Alcotest.(check int64) "both 42" 42L a;
    Alcotest.(check int64) "parity" a b
  | _ -> Alcotest.fail "both should return"

let test_jit_matches_interp_basic () =
  let items = [ mov_i r0 5; mul_i r0 7; add_i r0 (-3); exit_ ] in
  match (run_items items, run_jit items) with
  | Interp.Ret a, Interp.Ret b -> Alcotest.(check int64) "same result" a b
  | _ -> Alcotest.fail "both should return"

let test_jit_branch_bug_changes_flow () =
  let items =
    [ mov_i r0 0; mov_i r6 5; label "l"; add_i r0 1; sub_i r6 1; jne_i r6 0 "l";
      exit_ ]
  in
  (match run_jit items with
  | Interp.Ret v -> Alcotest.(check int64) "correct JIT: 5" 5L v
  | _ -> Alcotest.fail "correct JIT should return");
  let _, hctx, ctx_addr = fresh () in
  let prog = Program.of_items_exn ~name:"t" ~prog_type:Program.Kprobe items in
  let compiled = Jit.compile ~bug_branch_off_by_one:true hctx prog in
  match Jit.run ~fuel:10_000L hctx compiled ~ctx_addr with
  | Interp.Terminated { Guard.reason = Guard.Fuel_exhausted; _ } -> ()
  | other -> Alcotest.failf "buggy JIT should hang, got %s"
               (Format.asprintf "%a" Interp.pp_outcome other)

(* differential property: on verifier-accepted helper-free programs the JIT
   and the interpreter agree *)
let differential_property =
  QCheck.Test.make ~count:200 ~name:"JIT and interpreter agree on accepted programs"
    (QCheck.make
       ~print:(fun items ->
         match Ebpf.Asm.assemble items with
         | Ok insns -> Ebpf.Disasm.to_string insns
         | Error e -> e)
       QCheck.Gen.(
         let reg = int_range 0 5 in
         let small = int_range (-100) 100 in
         let chunk =
           oneof
             [ map2 (fun d v -> mov_i d v) reg small;
               map2 (fun d s -> add_r d s) reg reg;
               map2 (fun d v -> mul_i d v) reg small;
               map2 (fun d v -> xor_i d v) reg small;
               map2 (fun d v -> and_i d v) reg small;
               map2 (fun d s -> sub_r d s) reg reg;
               map2 (fun d v -> div_i d v) reg (int_range 1 50);
               map2 (fun d sh -> rsh_i d sh) reg (int_bound 63);
               map2 (fun d sh -> lsh_i d sh) reg (int_bound 63) ]
         in
         let* init = return (List.init 6 (fun i -> mov_i i (i * 3))) in
         let* body = list_size (int_range 1 30) chunk in
         let* guard_v = small in
         return
           (init @ body
           @ [ jeq_i r1 guard_v "end"; xor_i r0 1; label "end"; mov_r r0 r0; exit_ ])))
    (fun items ->
      match Ebpf.Asm.assemble items with
      | Error _ -> QCheck.assume_fail ()
      | Ok insns -> (
        let prog = Program.make ~name:"d" ~prog_type:Program.Kprobe insns in
        match Bpf_verifier.Verifier.verify ~map_def:(fun _ -> None) prog with
        | Error _ -> QCheck.assume_fail ()
        | Ok _ -> (
          let _, hctx1, ctx1 = fresh () in
          let _, hctx2, ctx2 = fresh () in
          let i = Interp.run ~hctx:hctx1 ~prog ~ctx_addr:ctx1 () in
          let j = Jit.run hctx2 (Jit.compile hctx2 prog) ~ctx_addr:ctx2 in
          match (i, j) with
          | Interp.Ret a, Interp.Ret b -> Int64.equal a b
          | _ -> false)))

let suite =
  [
    Alcotest.test_case "ALU basics" `Quick test_alu_basic;
    Alcotest.test_case "div by zero semantics" `Quick test_div_by_zero_yields_zero;
    Alcotest.test_case "unsigned division" `Quick test_unsigned_div;
    Alcotest.test_case "ALU32 zero-extension" `Quick test_alu32_zext;
    Alcotest.test_case "arithmetic shifts" `Quick test_arsh;
    Alcotest.test_case "signed vs unsigned jumps" `Quick test_jump_signed_vs_unsigned;
    Alcotest.test_case "jset" `Quick test_jset;
    Alcotest.test_case "stack roundtrip" `Quick test_stack_roundtrip;
    Alcotest.test_case "byte-granular stack" `Quick test_byte_granular_stack;
    Alcotest.test_case "loop countdown" `Quick test_loop_countdown;
    Alcotest.test_case "atomic add" `Quick test_atomic_add;
    Alcotest.test_case "atomic fetch add" `Quick test_atomic_fetch_add;
    Alcotest.test_case "atomic xchg" `Quick test_atomic_xchg;
    Alcotest.test_case "atomic cmpxchg hit" `Quick test_atomic_cmpxchg_hit;
    Alcotest.test_case "atomic cmpxchg miss" `Quick test_atomic_cmpxchg_miss;
    Alcotest.test_case "atomic bitwise" `Quick test_atomic_bitwise;
    Alcotest.test_case "bpf2bpf call" `Quick test_bpf2bpf_call;
    Alcotest.test_case "bpf2bpf callee-saved" `Quick test_bpf2bpf_callee_saved;
    Alcotest.test_case "bpf2bpf recursion guarded" `Quick test_bpf2bpf_recursion_guarded;
    Alcotest.test_case "bpf2bpf jit parity" `Quick test_bpf2bpf_jit_parity;
    Alcotest.test_case "fuel guard" `Quick test_fuel_guard;
    Alcotest.test_case "fuel exact budget" `Quick test_fuel_exact_budget;
    Alcotest.test_case "fuel retires exactly" `Quick test_fuel_retires_exactly;
    Alcotest.test_case "watchdog guard" `Quick test_watchdog_guard;
    Alcotest.test_case "oops surfaces" `Quick test_oops_surfaces;
    Alcotest.test_case "rcu wrapped" `Quick test_rcu_wrapped;
    Alcotest.test_case "termination cleans resources" `Quick test_termination_cleans_resources;
    Alcotest.test_case "callback depth guard" `Quick test_callback_depth_guard;
    Alcotest.test_case "insn counting" `Quick test_insn_counting;
    Alcotest.test_case "jit matches interp" `Quick test_jit_matches_interp_basic;
    Alcotest.test_case "jit branch bug" `Quick test_jit_branch_bug_changes_flow;
    QCheck_alcotest.to_alcotest differential_property;
  ]
