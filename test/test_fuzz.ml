(* The differential fuzzing subsystem: generator validity (every emitted
   shape assembles into a CFG-valid program), PRNG determinism, corpus
   round-trip and error discipline, oracle conformance on the unmodified
   tree, and the acceptance property — a planted JIT branch bug must be
   caught by the oracle and shrunk to a small counterexample. *)

open Untenable
module Rng = Fuzz.Rng
module Gen = Fuzz.Gen
module Corpus = Fuzz.Corpus
module Oracle = Fuzz.Oracle
module Shrink = Fuzz.Shrink
module Driver = Fuzz.Driver

let dists = [ Gen.Clean; Gen.Adversarial; Gen.Hang ]

(* ---------------- rng ---------------- *)

let test_rng_deterministic () =
  let a = Rng.create 99L and b = Rng.create 99L in
  for i = 1 to 100 do
    Alcotest.(check int64)
      (Printf.sprintf "draw %d" i)
      (Rng.next a) (Rng.next b)
  done;
  let c = Rng.create 100L in
  Alcotest.(check bool) "different seed, different stream" true
    (Rng.next (Rng.create 99L) <> Rng.next c)

let test_rng_bounds () =
  let t = Rng.create 5L in
  for _ = 1 to 1_000 do
    let v = Rng.int t 7 in
    Alcotest.(check bool) "int in [0,7)" true (v >= 0 && v < 7);
    let r = Rng.range t 3 9 in
    Alcotest.(check bool) "range inclusive" true (r >= 3 && r <= 9)
  done;
  let w = Rng.weighted t [ (1, `A); (0, `B) ] in
  Alcotest.(check bool) "zero weight never picked" true (w = `A)

(* ---------------- generator ---------------- *)

(* Every shape the grammar emits must assemble: chunks are self-contained,
   so no distribution and no seed may produce a dangling label or a
   fall-off-the-end program. *)
let test_generator_emits_valid_programs () =
  List.iter
    (fun dist ->
      let rng = Rng.create 123L in
      for i = 1 to 200 do
        let shape = Gen.generate ~dist rng in
        match Gen.program_of_shape shape with
        | Ok p ->
          Alcotest.(check int)
            (Printf.sprintf "%s #%d insn count" (Gen.dist_to_string dist) i)
            (Gen.insn_count shape)
            (Array.length p.Ebpf.Program.insns)
        | Error msg ->
          Alcotest.failf "%s #%d does not assemble: %s"
            (Gen.dist_to_string dist) i msg
      done)
    dists

let test_generator_deterministic () =
  let digest_stream seed =
    let rng = Rng.create seed in
    List.init 50 (fun _ ->
        Ebpf.Program.digest
          (Gen.program_of_shape_exn (Gen.generate ~dist:Gen.Clean rng)))
  in
  Alcotest.(check (list string)) "same seed, same programs"
    (digest_stream 7L) (digest_stream 7L)

let test_generator_distributions_differ () =
  (* hang shapes must actually exhaust the oracle's fuel budget somewhere,
     so the distribution knob is not cosmetic: at least one hang chunk
     kind appears in a short stream *)
  let rng = Rng.create 3L in
  let kinds =
    List.concat_map
      (fun _ -> List.map (fun c -> c.Gen.kind) (Gen.generate ~dist:Gen.Hang rng).Gen.chunks)
      (List.init 20 Fun.id)
  in
  Alcotest.(check bool) "hang chunks present" true
    (List.exists
       (fun k -> List.mem k [ "big_loop"; "data_loop"; "spin" ])
       kinds)

(* ---------------- corpus ---------------- *)

let tmp_corpus () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "untenable-fuzz-test"
  in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  dir

let test_corpus_roundtrip () =
  let rng = Rng.create 11L in
  let dir = tmp_corpus () in
  List.iter
    (fun dist ->
      let p = Gen.program_of_shape_exn (Gen.generate ~dist rng) in
      let path = Corpus.save ~dir p in
      match Corpus.load path with
      | Error e -> Alcotest.failf "reload failed: %s" e
      | Ok q ->
        Alcotest.(check string)
          (Gen.dist_to_string dist ^ " digest survives")
          (Ebpf.Program.digest p) (Ebpf.Program.digest q))
    dists

let test_corpus_error_discipline () =
  let err = function Error e -> e | Ok _ -> Alcotest.fail "expected Error" in
  Alcotest.(check bool) "missing file" true
    (String.length (err (Corpus.load "/nonexistent/x.fuzz")) > 0);
  Alcotest.(check bool) "bad header" true
    (String.length (err (Corpus.of_string "nonsense\n")) > 0);
  let p =
    Gen.program_of_shape_exn (Gen.generate ~dist:Gen.Clean (Rng.create 1L))
  in
  (match String.split_on_char '\n' (Corpus.to_string p) with
  | magic :: ty :: name :: hex :: rest ->
    let rejoin l = String.concat "\n" l in
    Alcotest.(check bool) "truncated" true
      (String.length (err (Corpus.of_string (rejoin [ magic; ty ]))) > 0);
    Alcotest.(check bool) "unknown prog type" true
      (String.length
         (err (Corpus.of_string (rejoin (magic :: "martian" :: name :: hex :: rest))))
      > 0);
    Alcotest.(check bool) "odd hex" true
      (String.length
         (err
            (Corpus.of_string
               (rejoin (magic :: ty :: name :: ("a" ^ hex) :: rest))))
      > 0);
    Alcotest.(check bool) "bad hex digit" true
      (String.length
         (err
            (Corpus.of_string
               (rejoin (magic :: ty :: name :: ("zz" ^ hex) :: rest))))
      > 0)
  | _ -> Alcotest.fail "corpus text did not split");
  (* Driver.replay surfaces the same errors (the CLI turns them into
     exit 1) *)
  match Driver.replay "/nonexistent/x.fuzz" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "replay of a missing file must error"

(* ---------------- oracle conformance ---------------- *)

let counter name =
  Telemetry.Counter.value (Telemetry.Registry.counter name)

(* On the unmodified tree, every execution mode agrees on every generated
   program — and the run is visible in telemetry. *)
let test_oracle_conformance () =
  let before = counter "fuzz.programs_generated" in
  let r = Driver.run ~seed:17L ~budget:80 ~matrix:"quick" () in
  Alcotest.(check int) "all programs generated" 80 r.Driver.programs;
  Alcotest.(check (list string)) "no divergences"
    []
    (List.map
       (fun f -> Format.asprintf "%a" Driver.pp_finding f)
       r.Driver.findings);
  Alcotest.(check int) "fuzz.programs_generated bumped" (before + 80)
    (counter "fuzz.programs_generated")

let test_oracle_full_matrix_conformance () =
  let r = Driver.run ~seed:23L ~budget:25 ~matrix:"full" () in
  Alcotest.(check int) "all programs generated" 25 r.Driver.programs;
  Alcotest.(check int) "no divergences" 0 (List.length r.Driver.findings)

let test_unknown_matrix_rejected () =
  match Driver.run ~matrix:"martian" ~budget:1 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown matrix accepted"

(* ---------------- the acceptance property ---------------- *)

(* Plant the historical JIT backward-branch bug via Bugdb force_on: the
   oracle must catch it, the shrinker must reduce the counterexample to
   <= 10 instructions, the corpus must hold a replayable reproduction,
   and the telemetry counters must record all of it. *)
let test_planted_jit_bug_caught_and_shrunk () =
  let dir = tmp_corpus () in
  let div_before = counter "fuzz.divergences" in
  let steps_before = counter "fuzz.shrink_steps" in
  let r =
    Driver.run ~seed:42L ~budget:60 ~matrix:"quick"
      ~plant:[ Oracle.jit_branch_bug_key ] ~corpus_dir:dir ()
  in
  (match r.Driver.findings with
  | [] -> Alcotest.fail "planted JIT branch bug was not caught"
  | f :: _ ->
    Alcotest.(check bool)
      (Printf.sprintf "shrunk to %d insns (<= 10)" f.Driver.shrunk.Shrink.insns)
      true
      (f.Driver.shrunk.Shrink.insns <= 10);
    Alcotest.(check bool) "shrinking did work" true
      (f.Driver.shrunk.Shrink.steps > 0);
    (* the divergence names the JIT leg, not some unrelated pair *)
    Alcotest.(check string) "invoke group diverged" "invoke"
      f.Driver.divergence.Oracle.group;
    (* the persisted counterexample replays: diverges with the bug
       planted, conforms without *)
    match f.Driver.corpus_path with
    | None -> Alcotest.fail "no corpus file written"
    | Some path -> (
      (match Driver.replay ~plant:[ Oracle.jit_branch_bug_key ] path with
      | Ok (Some _) -> ()
      | Ok None -> Alcotest.fail "replay with planted bug did not diverge"
      | Error e -> Alcotest.failf "replay failed: %s" e);
      match Driver.replay path with
      | Ok None -> ()
      | Ok (Some d) ->
        Alcotest.failf "clean replay diverged: %a" Oracle.pp_divergence d
      | Error e -> Alcotest.failf "clean replay failed: %s" e));
  Alcotest.(check bool) "fuzz.divergences bumped" true
    (counter "fuzz.divergences" > div_before);
  Alcotest.(check bool) "fuzz.shrink_steps bumped" true
    (counter "fuzz.shrink_steps" > steps_before)

(* Shrinking is deterministic: same seed, same planted bug, same minimal
   program. *)
let test_shrink_deterministic () =
  let go () =
    match
      (Driver.run ~seed:42L ~budget:60 ~matrix:"quick"
         ~plant:[ Oracle.jit_branch_bug_key ] ())
        .Driver.findings
    with
    | f :: _ -> Ebpf.Program.digest f.Driver.shrunk.Shrink.program
    | [] -> Alcotest.fail "bug not caught"
  in
  Alcotest.(check string) "same minimal counterexample" (go ()) (go ())

let suite =
  [
    Alcotest.test_case "rng is deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "generator emits valid programs" `Quick
      test_generator_emits_valid_programs;
    Alcotest.test_case "generator is deterministic" `Quick
      test_generator_deterministic;
    Alcotest.test_case "hang distribution has hang chunks" `Quick
      test_generator_distributions_differ;
    Alcotest.test_case "corpus round-trip" `Quick test_corpus_roundtrip;
    Alcotest.test_case "corpus error discipline" `Quick
      test_corpus_error_discipline;
    Alcotest.test_case "oracle conformance (quick matrix)" `Quick
      test_oracle_conformance;
    Alcotest.test_case "oracle conformance (full matrix)" `Quick
      test_oracle_full_matrix_conformance;
    Alcotest.test_case "unknown matrix rejected" `Quick
      test_unknown_matrix_rejected;
    Alcotest.test_case "planted JIT bug caught and shrunk" `Quick
      test_planted_jit_bug_caught_and_shrunk;
    Alcotest.test_case "shrink is deterministic" `Quick
      test_shrink_deterministic;
  ]
