(* Observability tests: the causal-trace export round-trip (a seeded
   dispatch stream must produce a trace that survives the Chrome
   trace-event parser's span-tree validation, including the breaker-open
   fast-fail path), the Vclock sampling profiler's arming semantics, the
   verdict-cache hit/miss/invalidation counters, and the exporter
   surfaces the satellites added: ring drop count + capacity in both JSON
   and Prometheus, and label escaping for hostile span names.

   The registry is process-global; every test resets it and restores the
   enabled flag and trace capacity on the way out. *)

open Untenable
module Event = Telemetry.Event
module Registry = Telemetry.Registry
module Export = Telemetry.Export
module Profiler = Telemetry.Profiler
module Trace_check = Telemetry.Trace_check
module World = Framework.World
module Loader = Framework.Loader
module Pipeline = Framework.Pipeline
module Dispatch = Framework.Dispatch
module Serve = Framework.Serve
module Attach = Framework.Attach
module Supervisor = Framework.Supervisor
module Verdict_cache = Framework.Verdict_cache
module Bugdb = Helpers.Bugdb
open Ebpf.Asm

let h = Helpers.Registry.id_of_name

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* Run [f] against a freshly reset registry, restoring the global knobs it
   may perturb regardless of outcome. *)
let with_fresh f =
  let was = Registry.enabled () in
  Registry.reset ();
  Registry.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Profiler.set_period 0L;
      Profiler.reset ();
      Registry.set_trace_capacity Registry.default_trace_capacity;
      Registry.reset ();
      Registry.set_enabled was)
    f

(* ---------------- seeded dispatch stream fixtures ---------------- *)

let load world name ~prog_type items =
  match Loader.load_ebpf world (Ebpf.Program.of_items_exn ~name ~prog_type items) with
  | Ok loaded -> loaded
  | Error e -> Alcotest.failf "load %s: %a" name Loader.pp_load_error e

(* Verifier-accepted, crashes every invocation once the probe-read bug is
   armed (the §2.2 vehicle) — used to drive breakers open mid-stream. *)
let crasher_items =
  [ call (h "bpf_get_current_task");
    mov_r r3 r0;
    mov_r r1 r10;
    add_i r1 (-16);
    mov_i r2 16;
    call (h "bpf_probe_read_kernel");
    mov_i r0 0;
    exit_ ]

let twitchy_breaker =
  { Supervisor.window = 4;
    fault_threshold = 2;
    cooldown_ns = 1_000_000L;  (* stays open for the whole stream *)
    backoff = 2.0;
    max_cooldown_ns = 2_000_000L;
    quarantine_after = 99 }

let build_engine ?policy ~with_crasher () =
  let world = World.create_populated () in
  let engine = Dispatch.create ?policy world in
  if with_crasher then begin
    Bugdb.force_on world.World.bugs "hbug:probe-read-size-unchecked";
    ignore
      (Attach.attach engine.Dispatch.attach ~hook:"xdp"
         (load world "crasher" ~prog_type:Ebpf.Program.Kprobe crasher_items))
  end;
  ignore
    (Attach.attach engine.Dispatch.attach ~hook:"xdp"
       (load world "len" ~prog_type:Ebpf.Program.Socket_filter
          [ ldxw r0 r1 0; exit_ ]));
  engine

let run ~count engine =
  (Serve.run engine (Serve.plan ~seed:7L ~size:32 ~hook:"xdp" ~count ()))
    .Serve.totals

(* ---------------- causal-trace round-trip ---------------- *)

let test_dispatch_trace_roundtrip () =
  with_fresh (fun () ->
      let engine = build_engine ~with_crasher:false () in
      let r = run ~count:30 engine in
      Alcotest.(check int) "all events served" 30 r.Serve.events;
      let text = Export.to_chrome_trace (Registry.snapshot ()) in
      match Trace_check.validate text with
      | Error reason -> Alcotest.failf "trace failed validation: %s" reason
      | Ok stats ->
        Alcotest.(check bool) "has span events" true (stats.Trace_check.spans > 0);
        Alcotest.(check bool) "per-event lanes are distinct" true
          (stats.Trace_check.traces > 1);
        Alcotest.(check bool) "spans nest" true (stats.Trace_check.max_depth >= 2))

(* Satellite (c): when a breaker opens mid-stream and invocations fast-fail,
   their spans must still close — the trace validates and the raw ring holds
   as many Exit events as Enter events. *)
let test_breaker_open_spans_close () =
  with_fresh (fun () ->
      let engine =
        build_engine ~policy:(Dispatch.Supervise twitchy_breaker) ~with_crasher:true ()
      in
      let r = run ~count:30 engine in
      Alcotest.(check bool) "breaker-open fast-fails happened" true
        (r.Serve.skipped > 0);
      Alcotest.(check bool) "crashes happened" true (r.Serve.crashed > 0);
      let s = Registry.snapshot () in
      Alcotest.(check int) "nothing dropped from the ring" 0 s.Registry.dropped_events;
      let count kind =
        List.length (List.filter (fun (e : Event.t) -> e.kind = kind) s.Registry.events)
      in
      Alcotest.(check int) "every opened span closed" (count Event.Enter)
        (count Event.Exit);
      match Trace_check.validate (Export.to_chrome_trace s) with
      | Ok _ -> ()
      | Error reason -> Alcotest.failf "breaker-open trace invalid: %s" reason)

(* Loads are traced too: a pipeline load (admission → … → link) under a
   fresh trace id must export as balanced spans alongside dispatch lanes. *)
let test_load_trace_spans () =
  with_fresh (fun () ->
      let world = World.create_populated () in
      let prog =
        Ebpf.Program.of_items_exn ~name:"tiny" ~prog_type:Ebpf.Program.Socket_filter
          [ mov_i r0 0; exit_ ]
      in
      (match Pipeline.load_ebpf world prog with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "load: %a" Pipeline.pp_error e);
      let s = Registry.snapshot () in
      let names = List.map (fun (e : Event.t) -> e.name) s.Registry.events in
      Alcotest.(check bool) "pipeline stages traced" true
        (List.exists (fun n -> contains n "pipeline") names
        || List.exists (fun n -> contains n "verify") names);
      match Trace_check.validate (Export.to_chrome_trace s) with
      | Ok stats ->
        Alcotest.(check bool) "load produced spans" true (stats.Trace_check.spans > 0)
      | Error reason -> Alcotest.failf "load trace invalid: %s" reason)

(* ---------------- exporter satellites ---------------- *)

(* Satellite (a), part 1: ring drop count AND capacity appear in both the
   JSON and the Prometheus exposition. *)
let test_ring_drops_and_capacity_exported () =
  with_fresh (fun () ->
      Registry.set_trace_capacity 4;
      for i = 1 to 6 do
        Registry.point (Printf.sprintf "p.%d" i)
      done;
      let s = Registry.snapshot () in
      Alcotest.(check int) "two dropped" 2 s.Registry.dropped_events;
      Alcotest.(check int) "capacity surfaced" 4 s.Registry.trace_capacity;
      let json = Export.to_json s in
      Alcotest.(check bool) "json dropped" true (contains json "\"dropped\": 2");
      Alcotest.(check bool) "json capacity" true (contains json "\"capacity\": 4");
      let prom = Export.to_prometheus s in
      Alcotest.(check bool) "prom dropped" true
        (contains prom "untenable_trace_events_dropped 2");
      Alcotest.(check bool) "prom capacity" true
        (contains prom "untenable_trace_ring_capacity 4"))

(* Satellite (a), part 2: a span name containing a quote, a backslash and a
   newline must arrive escaped in Prometheus label values and JSON strings —
   never raw. *)
let test_label_escaping () =
  with_fresh (fun () ->
      let nasty = "sp\"an\\na" ^ "\n" ^ "me" in
      Registry.point nasty;
      let s = Registry.snapshot () in
      let prom = Export.to_prometheus s in
      Alcotest.(check bool) "prom label escaped" true
        (contains prom "untenable_trace_events_total{name=\"sp\\\"an\\\\na\\nme\"} 1");
      (* the exposition format is line-oriented: the raw newline must not
         split the series line in two *)
      Alcotest.(check bool) "no raw newline inside label" false
        (contains prom "sp\"an");
      let json = Export.to_json s in
      Alcotest.(check bool) "json name escaped" true
        (contains json "sp\\\"an\\\\na\\nme");
      Alcotest.(check bool) "json stays parseable as a trace name" true
        (match Trace_check.validate (Export.to_chrome_trace s) with
        | Ok stats -> stats.Trace_check.instants = 1
        | Error _ -> false))

(* Folded-stack export: nested spans collapse to "parent;child count" lines
   weighted by self-time. *)
let test_folded_stacks () =
  with_fresh (fun () ->
      let t = ref 0L in
      Registry.set_clock (fun () -> !t);
      let tick n = t := Int64.add !t n in
      Registry.with_span "outer" (fun () ->
          tick 10L;
          Registry.with_span "inner" (fun () -> tick 4L);
          tick 6L);
      let folded = Export.to_folded (Registry.snapshot ()) in
      Alcotest.(check bool) "child stack" true (contains folded "outer;inner 4");
      Alcotest.(check bool) "parent self-time" true (contains folded "outer 16"))

(* ---------------- verdict-cache counters (satellite b) ---------------- *)

let counter_value s name =
  match List.assoc_opt name s.Registry.counters with Some v -> v | None -> 0

let test_verdict_cache_counters () =
  with_fresh (fun () ->
      let world = World.create_populated () in
      let prog =
        Ebpf.Program.of_items_exn ~name:"cached" ~prog_type:Ebpf.Program.Socket_filter
          [ mov_i r0 0; exit_ ]
      in
      let load () =
        match Pipeline.load_ebpf world prog with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "load: %a" Pipeline.pp_error e
      in
      load ();
      load ();
      let vc = world.World.vcache in
      Alcotest.(check int) "one verdict hit" 1 (Verdict_cache.hits vc);
      Alcotest.(check int) "one verdict miss" 1 (Verdict_cache.misses vc);
      Alcotest.(check int) "no invalidation yet" 0 (Verdict_cache.invalidations vc);
      (* flipping a helper bug changes the fingerprint: same digest, new
         fingerprint — an invalidation, not a cold miss *)
      Bugdb.force_on world.World.bugs "hbug:probe-read-size-unchecked";
      load ();
      Alcotest.(check int) "invalidation counted" 1 (Verdict_cache.invalidations vc);
      Alcotest.(check int) "invalidation is also a miss" 2 (Verdict_cache.misses vc);
      let s = Registry.snapshot () in
      Alcotest.(check int) "cache.hit counter" 1 (counter_value s "cache.hit");
      Alcotest.(check int) "cache.miss counter" 2 (counter_value s "cache.miss");
      Alcotest.(check int) "cache.invalidated counter" 1
        (counter_value s "cache.invalidated"))

(* ---------------- epoch counters ---------------- *)

(* The hot-reload observables: epoch.published / epoch.retired counters,
   the epoch.grace_ns histogram (present in both JSON and Prometheus),
   and cache.cross_epoch_reuse when a verdict survives a swap. *)
let test_epoch_counters () =
  with_fresh (fun () ->
      let world = World.create_populated () in
      let prog =
        Ebpf.Program.of_items_exn ~name:"ep" ~prog_type:Ebpf.Program.Socket_filter
          [ mov_i r0 0; exit_ ]
      in
      (match Pipeline.load_ebpf world prog with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "load: %a" Pipeline.pp_error e);
      (* hold the current epoch across a swap so the grace period is
         nonzero on the virtual clock *)
      let pinned = World.pin world in
      World.set_tail_call world ~index:0 ~prog_id:1;
      Kernel_sim.Vclock.advance world.World.kernel.Kernel_sim.Kernel.clock 300L;
      World.unpin world pinned;
      (* reload the same image after the swap: a cross-epoch cache hit *)
      (match Pipeline.load_ebpf world prog with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "reload: %a" Pipeline.pp_error e);
      let s = Registry.snapshot () in
      Alcotest.(check int) "epoch.published" 3
        (counter_value s "epoch.published");
      Alcotest.(check int) "epoch.retired" 3 (counter_value s "epoch.retired");
      Alcotest.(check int) "cache.cross_epoch_reuse" 1
        (counter_value s "cache.cross_epoch_reuse");
      let grace =
        match List.assoc_opt "epoch.grace_ns" s.Registry.histograms with
        | Some h -> h
        | None -> Alcotest.fail "epoch.grace_ns histogram missing"
      in
      Alcotest.(check int) "every retirement observed a grace period" 3
        (Telemetry.Histogram.count grace);
      Alcotest.(check bool) "pinned swap shows >= 300ns of grace" true
        (Telemetry.Histogram.max_value grace >= 300L);
      let json = Export.to_json s in
      Alcotest.(check bool) "json exports the histogram" true
        (contains json "\"epoch.grace_ns\"");
      Alcotest.(check bool) "json exports the counter" true
        (contains json "\"epoch.published\": 3");
      let prom = Export.to_prometheus s in
      Alcotest.(check bool) "prometheus exports the histogram" true
        (contains prom "untenable_epoch_grace_ns_count 3");
      Alcotest.(check bool) "prometheus exports the counters" true
        (contains prom "untenable_epoch_published 3"
        && contains prom "untenable_epoch_retired 3"
        && contains prom "untenable_cache_cross_epoch_reuse 1"))

(* ---------------- sampling profiler ---------------- *)

let tight_loop =
  Ebpf.Program.of_items_exn ~name:"tight" ~prog_type:Ebpf.Program.Kprobe
    [ mov_i r0 0; mov_i r6 8;
      label "loop";
      add_i r0 1; sub_i r6 1; jne_i r6 0 "loop";
      exit_ ]

let interp_fixture () =
  let world = World.create_populated () in
  let hctx = World.new_hctx world in
  let ctx =
    Kernel_sim.Kmem.alloc world.World.kernel.Kernel_sim.Kernel.mem ~size:64
      ~kind:"ctx" ~name:"test_ctx" ()
  in
  (world, hctx, ctx.Kernel_sim.Kmem.base)

let test_profiler_samples_interp () =
  with_fresh (fun () ->
      let _world, hctx, ctx_addr = interp_fixture () in
      Profiler.set_period 64L;
      for _ = 1 to 50 do
        ignore (Runtime.Interp.run ~hctx ~prog:tight_loop ~ctx_addr ())
      done;
      Profiler.set_period 0L;
      Alcotest.(check bool) "samples landed" true (Profiler.total () > 0);
      let folded = Profiler.to_folded () in
      Alcotest.(check bool) "keys name program, engine, block" true
        (contains folded "tight;interp;block:"))

(* Absolute period boundaries: a run far shorter than one period must still
   contribute — many short runs cross a global boundary eventually. *)
let test_profiler_short_runs_accumulate () =
  with_fresh (fun () ->
      let _world, hctx, ctx_addr = interp_fixture () in
      let one =
        Ebpf.Program.of_items_exn ~name:"one" ~prog_type:Ebpf.Program.Kprobe
          [ mov_i r0 0; exit_ ]
      in
      Profiler.set_period 50L;
      for _ = 1 to 200 do
        ignore (Runtime.Interp.run ~hctx ~prog:one ~ctx_addr ())
      done;
      Profiler.set_period 0L;
      Alcotest.(check bool) "short runs still sampled" true (Profiler.total () > 0))

let test_profiler_off_is_silent () =
  with_fresh (fun () ->
      let _world, hctx, ctx_addr = interp_fixture () in
      Alcotest.(check bool) "disabled by default" false (Profiler.enabled ());
      for _ = 1 to 50 do
        ignore (Runtime.Interp.run ~hctx ~prog:tight_loop ~ctx_addr ())
      done;
      Alcotest.(check int) "no samples while off" 0 (Profiler.total ()))

let test_profiler_samples_jit () =
  with_fresh (fun () ->
      let _world, hctx, ctx_addr = interp_fixture () in
      let jit = Runtime.Jit.compile hctx tight_loop in
      Profiler.set_period 64L;
      for _ = 1 to 50 do
        ignore (Runtime.Jit.run hctx jit ~ctx_addr)
      done;
      Profiler.set_period 0L;
      let folded = Profiler.to_folded () in
      Alcotest.(check bool) "jit samples attributed" true
        (contains folded "tight;jit;block:"))

let suite =
  [
    Alcotest.test_case "dispatch trace round-trips validation" `Quick
      test_dispatch_trace_roundtrip;
    Alcotest.test_case "breaker-open fast-fail closes spans" `Quick
      test_breaker_open_spans_close;
    Alcotest.test_case "pipeline load is traced" `Quick test_load_trace_spans;
    Alcotest.test_case "ring drops and capacity exported" `Quick
      test_ring_drops_and_capacity_exported;
    Alcotest.test_case "label escaping in exports" `Quick test_label_escaping;
    Alcotest.test_case "folded stacks from spans" `Quick test_folded_stacks;
    Alcotest.test_case "verdict-cache counters" `Quick test_verdict_cache_counters;
    Alcotest.test_case "epoch lifecycle counters" `Quick test_epoch_counters;
    Alcotest.test_case "profiler samples the interpreter" `Quick
      test_profiler_samples_interp;
    Alcotest.test_case "short runs accumulate to a sample" `Quick
      test_profiler_short_runs_accumulate;
    Alcotest.test_case "profiler off takes no samples" `Quick
      test_profiler_off_is_silent;
    Alcotest.test_case "profiler samples the jit" `Quick test_profiler_samples_jit;
  ]
