(* Supervisor tests: the circuit-breaker state machine in isolation (every
   transition, the backoff schedule, the quarantine budget), the chaos
   schedule's determinism, and the dispatch integration — a crashing
   extension must not perturb what healthy extensions compute. *)

open Untenable
module World = Framework.World
module Dispatch = Framework.Dispatch
module Serve = Framework.Serve
module Supervisor = Framework.Supervisor
module Chaos = Framework.Chaos
module Attach = Framework.Attach
module Kernel = Kernel_sim.Kernel
module Bugdb = Helpers.Bugdb

(* The crasher/healthy populations and the engine factory live in the
   shared scaffolding (Generators). *)
let healthy_filters = Generators.healthy_filters
let build_engine = Generators.build_dispatch_engine

(* ---------------- the breaker state machine, no engine ---------------- *)

let test_cfg =
  { Supervisor.window = 8;
    fault_threshold = 3;
    cooldown_ns = 100L;
    backoff = 2.0;
    max_cooldown_ns = 1_000L;
    quarantine_after = 99 (* out of the way unless a test wants it *) }

let fresh ?(config = test_cfg) () =
  let sup = Supervisor.create ~config () in
  (sup, Supervisor.ext sup ~attach_id:0 ~name:"probe")

let test_trips_at_threshold () =
  let sup, e = fresh () in
  Alcotest.(check bool) "starts executing" true
    (Supervisor.decide sup e ~now_ns:0L = Supervisor.Execute);
  (match Supervisor.observe_fault sup e ~now_ns:0L with
  | Supervisor.No_change -> ()
  | _ -> Alcotest.fail "tripped after 1 fault");
  (match Supervisor.observe_fault sup e ~now_ns:0L with
  | Supervisor.No_change -> ()
  | _ -> Alcotest.fail "tripped after 2 faults");
  (match Supervisor.observe_fault sup e ~now_ns:10L with
  | Supervisor.Tripped { until_ns; trip } ->
    Alcotest.(check int) "first trip" 1 trip;
    Alcotest.(check int64) "base cooldown" 110L until_ns
  | _ -> Alcotest.fail "threshold fault did not trip");
  Alcotest.(check bool) "open: skipped" true
    (Supervisor.decide sup e ~now_ns:50L = Supervisor.Skip);
  Alcotest.(check bool) "cooldown elapsed: probe" true
    (Supervisor.decide sup e ~now_ns:110L = Supervisor.Probe);
  Alcotest.(check bool) "now half-open" true (e.Supervisor.state = Supervisor.Half_open)

let test_window_slides () =
  let sup, e = fresh ~config:{ test_cfg with Supervisor.window = 3 } () in
  ignore (Supervisor.observe_fault sup e ~now_ns:0L);
  ignore (Supervisor.observe_fault sup e ~now_ns:0L);
  (* three clean observations push both faults out of the window *)
  Supervisor.observe_ok sup e ~now_ns:0L;
  Supervisor.observe_ok sup e ~now_ns:0L;
  Supervisor.observe_ok sup e ~now_ns:0L;
  (match Supervisor.observe_fault sup e ~now_ns:0L with
  | Supervisor.No_change -> ()
  | _ -> Alcotest.fail "stale faults counted against the window");
  Alcotest.(check bool) "still closed" true (e.Supervisor.state = Supervisor.Closed)

let test_probe_recovery_closes () =
  let sup, e = fresh () in
  for _ = 1 to 3 do ignore (Supervisor.observe_fault sup e ~now_ns:0L) done;
  Alcotest.(check bool) "probe offered" true
    (Supervisor.decide sup e ~now_ns:1_000L = Supervisor.Probe);
  Supervisor.observe_ok sup e ~now_ns:1_000L;
  Alcotest.(check bool) "probe ok closes" true
    (e.Supervisor.state = Supervisor.Closed);
  (* the fault window restarts: one new fault must not re-trip *)
  (match Supervisor.observe_fault sup e ~now_ns:1_001L with
  | Supervisor.No_change -> ()
  | _ -> Alcotest.fail "window not reset after recovery")

let test_probe_failure_backs_off () =
  let sup, e = fresh () in
  for _ = 1 to 3 do ignore (Supervisor.observe_fault sup e ~now_ns:0L) done;
  ignore (Supervisor.decide sup e ~now_ns:200L);
  (match Supervisor.observe_fault sup e ~now_ns:200L with
  | Supervisor.Tripped { until_ns; trip } ->
    Alcotest.(check int) "second trip" 2 trip;
    Alcotest.(check int64) "cooldown doubled" 400L until_ns
  | _ -> Alcotest.fail "failed probe did not re-trip")

let test_cooldown_schedule () =
  let c = test_cfg in
  Alcotest.(check int64) "trip 1" 100L (Supervisor.cooldown_for c ~trip:1);
  Alcotest.(check int64) "trip 2" 200L (Supervisor.cooldown_for c ~trip:2);
  Alcotest.(check int64) "trip 3" 400L (Supervisor.cooldown_for c ~trip:3);
  Alcotest.(check int64) "trip 4" 800L (Supervisor.cooldown_for c ~trip:4);
  Alcotest.(check int64) "trip 5 capped" 1_000L (Supervisor.cooldown_for c ~trip:5);
  Alcotest.(check int64) "trip 20 capped" 1_000L (Supervisor.cooldown_for c ~trip:20)

let test_quarantine_budget () =
  let sup, e =
    fresh ~config:{ test_cfg with Supervisor.quarantine_after = 2 } ()
  in
  for _ = 1 to 3 do ignore (Supervisor.observe_fault sup e ~now_ns:0L) done;
  ignore (Supervisor.decide sup e ~now_ns:200L);
  (match Supervisor.observe_fault sup e ~now_ns:200L with
  | Supervisor.Quarantine -> ()
  | _ -> Alcotest.fail "trip budget spent but no quarantine");
  Alcotest.(check bool) "state quarantined" true
    (e.Supervisor.state = Supervisor.Quarantined);
  Alcotest.(check bool) "always skipped" true
    (Supervisor.decide sup e ~now_ns:1_000_000L = Supervisor.Skip);
  let h = Supervisor.health_of_ext e in
  Alcotest.(check bool) "health reports quarantine" true h.Supervisor.quarantined;
  (* further faults are a no-op, not a crash *)
  match Supervisor.observe_fault sup e ~now_ns:300L with
  | Supervisor.No_change -> ()
  | _ -> Alcotest.fail "quarantined ext transitioned again"

(* ---------------- the chaos schedule ---------------- *)

let test_chaos_pure () =
  let c = { Chaos.default_config with Chaos.fault_rate = 0.05 } in
  for i = 0 to 499 do
    Alcotest.(check string)
      (Printf.sprintf "event %d stable" i)
      (Chaos.describe (Chaos.injection c ~event:i))
      (Chaos.describe (Chaos.injection c ~event:i))
  done;
  let n = ref 0 in
  for i = 0 to 499 do
    if Chaos.injection c ~event:i <> Chaos.Calm then incr n
  done;
  Alcotest.(check int) "planned matches schedule" !n (Chaos.planned c ~count:500);
  Alcotest.(check bool) "rate roughly honoured" true (!n > 0 && !n < 100)

let test_chaos_rate_edges () =
  let calm = { Chaos.default_config with Chaos.fault_rate = 0. } in
  Alcotest.(check int) "rate 0: no injections" 0 (Chaos.planned calm ~count:200);
  let storm = { Chaos.default_config with Chaos.fault_rate = 1. } in
  Alcotest.(check int) "rate 1: every event" 200 (Chaos.planned storm ~count:200)

let test_chaos_disarm_unpins () =
  (* disarm must not pin the bug off: a later force_on must still win *)
  let world = World.create_populated () in
  let key = "hbug:probe-read-size-unchecked" in
  let inj = Chaos.Helper_bug key in
  Chaos.arm inj world.World.bugs;
  Chaos.disarm inj world.World.bugs;
  Bugdb.force_on world.World.bugs key;
  Alcotest.(check bool) "force_on after disarm sticks" true
    (Bugdb.active world.World.bugs key)

(* ---------------- dispatch integration ---------------- *)

(* A compact view of a one-domain Serve run: just the fields these tests
   assert on, so the call sites stay readable. *)
type run_result = {
  events : int;
  invocations : int;
  crashed : int;
  faults_absorbed : int;
  quarantined : int;
  injected : int;
  ret_checksum : int64;
  per_ext : Supervisor.health list;
}

let run ?chaos ~count engine =
  let s =
    Serve.run engine (Serve.plan ?chaos ~seed:7L ~size:32 ~hook:"xdp" ~count ())
  in
  let t = s.Serve.totals in
  { events = t.Serve.events;
    invocations = t.Serve.invocations;
    crashed = t.Serve.crashed;
    faults_absorbed = t.Serve.faults_absorbed;
    quarantined = t.Serve.quarantined;
    injected = t.Serve.injected;
    ret_checksum = t.Serve.ret_checksum;
    per_ext = s.Serve.per_ext }

let health_by name (r : run_result) =
  match
    List.find_opt
      (fun (h : Supervisor.health) -> String.equal h.Supervisor.name name)
      r.per_ext
  with
  | Some h -> h
  | None -> Alcotest.failf "no per-ext health for %s" name

let test_isolate_contains () =
  let engine = build_engine ~with_crasher:true () in
  let r = run ~count:25 engine in
  Alcotest.(check int) "all events served" 25 r.events;
  Alcotest.(check int) "every invocation ran" 75 r.invocations;
  Alcotest.(check int) "crasher crashed every time" 25 r.crashed;
  Alcotest.(check int) "every fault absorbed" 25 r.faults_absorbed;
  Alcotest.(check int) "no quarantine under Isolate" 0 r.quarantined;
  Alcotest.(check int) "crasher tally" 25 (health_by "crasher" r).Supervisor.crashed;
  Alcotest.(check int) "healthy tally" 25 (health_by "len" r).Supervisor.finished;
  Alcotest.(check bool) "kernel alive at end" false
    (Kernel.is_dead engine.Dispatch.world.World.kernel)

let test_supervise_quarantines () =
  let config =
    { Supervisor.default_config with
      Supervisor.cooldown_ns = 1L (* expire by the next event *);
      max_cooldown_ns = 4L }
  in
  let engine =
    build_engine ~policy:(Dispatch.Supervise config) ~with_crasher:true ()
  in
  let count = 60 in
  let r = run ~count engine in
  let baseline = run ~count (build_engine ~with_crasher:false ()) in
  Alcotest.(check int) "all events served" count r.events;
  Alcotest.(check int) "offender quarantined" 1 r.quarantined;
  let c = health_by "crasher" r in
  Alcotest.(check bool) "crasher marked quarantined" true c.Supervisor.quarantined;
  Alcotest.(check int) "trip budget spent" config.Supervisor.quarantine_after
    c.Supervisor.trips;
  Alcotest.(check bool) "crasher stopped being invoked" true
    (c.Supervisor.invocations < count);
  Alcotest.(check int) "offender detached from the hook"
    (List.length healthy_filters)
    (Attach.count engine.Dispatch.attach);
  (* the healthy population computed exactly what a crasher-free run does *)
  List.iter
    (fun (name, _) ->
      Alcotest.(check int64)
        (name ^ " checksum matches crasher-free run")
        (health_by name baseline).Supervisor.ret_checksum
        (health_by name r).Supervisor.ret_checksum;
      Alcotest.(check int)
        (name ^ " served every event")
        count
        (health_by name r).Supervisor.invocations)
    healthy_filters;
  Alcotest.(check bool) "kernel alive at end" false
    (Kernel.is_dead engine.Dispatch.world.World.kernel)

let test_fail_fast_aborts () =
  let engine = build_engine ~policy:Dispatch.Fail_fast ~with_crasher:true () in
  let r = run ~count:10 engine in
  Alcotest.(check int) "stream aborted on first crash" 1 r.events;
  Alcotest.(check int) "one crash" 1 r.crashed;
  Alcotest.(check int) "nothing absorbed" 0 r.faults_absorbed;
  Alcotest.(check bool) "kernel stays dead" true
    (Kernel.is_dead engine.Dispatch.world.World.kernel)

let test_chaos_dispatch_deterministic () =
  let chaos = { Chaos.default_config with Chaos.fault_rate = 0.2 } in
  let go () = run ~chaos ~count:120 (build_engine ~with_crasher:false ()) in
  let r1 = go () and r2 = go () in
  Alcotest.(check int) "same injections" r1.injected r2.injected;
  Alcotest.(check bool) "chaos actually landed" true (r1.injected > 0);
  Alcotest.(check int64) "identical checksums" r1.ret_checksum
    r2.ret_checksum;
  Alcotest.(check int) "all events served" 120 r1.events

(* Property: under Isolate, an always-crashing extension is invisible to the
   healthy population — their per-extension checksums match a crasher-free
   run event for event. *)
let isolate_equivalence_property =
  QCheck.Test.make ~count:25 ~name:"Isolate: crasher invisible to healthy exts"
    QCheck.(pair (int_range 1 40) (int_range 0 1000))
    (fun (count, _salt) ->
      let with_c = run ~count (build_engine ~with_crasher:true ()) in
      let without = run ~count (build_engine ~with_crasher:false ()) in
      with_c.events = count
      && List.for_all
           (fun (name, _) ->
             Int64.equal
               (health_by name with_c).Supervisor.ret_checksum
               (health_by name without).Supervisor.ret_checksum)
           healthy_filters)

let suite =
  [
    Alcotest.test_case "breaker trips at threshold" `Quick test_trips_at_threshold;
    Alcotest.test_case "fault window slides" `Quick test_window_slides;
    Alcotest.test_case "probe recovery closes" `Quick test_probe_recovery_closes;
    Alcotest.test_case "probe failure backs off" `Quick test_probe_failure_backs_off;
    Alcotest.test_case "cooldown schedule" `Quick test_cooldown_schedule;
    Alcotest.test_case "quarantine budget" `Quick test_quarantine_budget;
    Alcotest.test_case "chaos schedule is pure" `Quick test_chaos_pure;
    Alcotest.test_case "chaos rate edges" `Quick test_chaos_rate_edges;
    Alcotest.test_case "chaos disarm unpins the bug" `Quick test_chaos_disarm_unpins;
    Alcotest.test_case "Isolate contains a crasher" `Quick test_isolate_contains;
    Alcotest.test_case "Supervise quarantines the offender" `Quick
      test_supervise_quarantines;
    Alcotest.test_case "Fail_fast aborts the stream" `Quick test_fail_fast_aborts;
    Alcotest.test_case "chaos dispatch is deterministic" `Quick
      test_chaos_dispatch_deterministic;
    QCheck_alcotest.to_alcotest isolate_equivalence_property;
  ]
