(* Shared test scaffolding: the program builders, engine factories and
   qcheck generators that used to be copy-pasted across test_analysis,
   test_serve and test_supervisor, plus qcheck generators backed by the
   lib/fuzz program generator (one grammar, every suite). *)

open Untenable
open Ebpf.Asm
module World = Framework.World
module Loader = Framework.Loader
module Pipeline = Framework.Pipeline
module Invoke = Framework.Invoke
module Attach = Framework.Attach
module Serve = Framework.Serve
module Dispatch = Framework.Dispatch
module Bugdb = Helpers.Bugdb

let h = Helpers.Registry.id_of_name

(* ---- program builders ---- *)

let prog ?(name = "t") ?(prog_type = Ebpf.Program.Socket_filter) items =
  Ebpf.Program.of_items_exn ~name ~prog_type items

let insns_of items = (prog items).Ebpf.Program.insns

(* Load through the full pipeline, failing the test on rejection. *)
let load world name ~prog_type items =
  match Loader.load_ebpf world (prog ~name ~prog_type items) with
  | Ok loaded -> loaded
  | Error e -> Alcotest.failf "load %s: %a" name Loader.pp_load_error e

(* Hand a program straight to the runtime the way a path-B kernel would:
   the fabricated handle skips the verify gate, so properties are about
   the analysis/runtime against execution, not about what the verifier
   accepts. *)
let fabricate ?(prog_id = 1) p =
  Framework.Pipeline.Ebpf_prog
    { prog_id; prog = p;
      vstats =
        { Bpf_verifier.Verifier.insns_processed = 0; states_explored = 0;
          prune_hits = 0; callbacks_verified = 0; log = "" };
      analysis = Some (Analysis.Driver.analyze p.Ebpf.Program.insns) }

let outcome_agrees a b =
  match (a, b) with
  | Invoke.Finished x, Invoke.Finished y -> x = y
  | Invoke.Crashed _, Invoke.Crashed _ -> true
  | Invoke.Stopped _, Invoke.Stopped _ -> true
  | Invoke.Exhausted (x, _), Invoke.Exhausted (y, _) -> x = y
  | _ -> false

(* ---- canonical extension populations ---- *)

let healthy_filters =
  [ ("len", [ ldxw r0 r1 0; exit_ ]);
    ("parity", [ ldxw r6 r1 0; mov_r r0 r6; and_i r0 1; exit_ ]) ]

(* The three-filter stateless population the serve determinism oracle is
   stated over: len/parity plus a helper-calling port extractor. *)
let serve_filters =
  healthy_filters
  @ [ ("port",
       [ stdw r10 (-8) 0; mov_i r1 16; mov_r r2 r10; add_i r2 (-8);
         mov_i r3 2; call (h "bpf_skb_load_bytes"); ldxb r6 r10 (-8);
         lsh_i r6 8; ldxb r7 r10 (-7); or_r r6 r7; mov_r r0 r6; exit_ ]) ]

(* Verifier-accepted, crashes every invocation once the probe-read bug is
   armed in the world's Bugdb (the §2.2 vehicle). *)
let crasher_items =
  [ call (h "bpf_get_current_task");
    mov_r r3 r0;
    mov_r r1 r10;
    add_i r1 (-16);
    mov_i r2 16;
    call (h "bpf_probe_read_kernel");
    mov_i r0 0;
    exit_ ]

(* ---- engine factories ---- *)

(* A stateless serving population — per-event outcomes depend only on the
   payload, the scope the determinism contract is stated for. *)
let build_serve_engine () =
  let world = World.create_populated () in
  let engine = Serve.create world in
  List.iter
    (fun (name, items) ->
      match Pipeline.load_ebpf world (prog ~name items) with
      | Ok loaded -> ignore (Attach.attach engine.Serve.attach ~hook:"xdp" loaded)
      | Error e -> failwith (Format.asprintf "%a" Pipeline.pp_error e))
    serve_filters;
  engine

(* A hot reload: stage a fresh filter on the epoch builder and attach it —
   segment capture, snapshot retention and the swap publish all engage. *)
let hot_reload k (e : Serve.engine) b =
  let name = Printf.sprintf "hot%d" k in
  let p = prog ~name [ mov_i r0 (300 + k); exit_ ] in
  match Pipeline.load_ebpf ~into:b e.Serve.world p with
  | Ok loaded -> ignore (Attach.attach e.Serve.attach ~hook:"xdp" loaded)
  | Error err -> failwith (Format.asprintf "%a" Pipeline.pp_error err)

let reload_schedule ~count ~reloads =
  List.init reloads (fun k -> ((k + 1) * count / (reloads + 1), hot_reload k))

(* A dispatch engine over the healthy population, optionally with the
   armed §2.2 crasher in front of it. *)
let build_dispatch_engine ?policy ~with_crasher () =
  let world = World.create_populated () in
  let engine = Dispatch.create ?policy world in
  if with_crasher then begin
    Bugdb.force_on world.World.bugs "hbug:probe-read-size-unchecked";
    ignore
      (Attach.attach engine.Dispatch.attach ~hook:"xdp"
         (load world "crasher" ~prog_type:Ebpf.Program.Kprobe crasher_items))
  end;
  List.iter
    (fun (name, items) ->
      ignore
        (Attach.attach engine.Dispatch.attach ~hook:"xdp"
           (load world name ~prog_type:Ebpf.Program.Socket_filter items)))
    healthy_filters;
  engine

(* ---- fuzz-backed qcheck generators ---- *)

(* CFG-valid programs from the lib/fuzz grammar, driven by a qcheck-chosen
   seed so shrinking moves through seeds while every sample stays a valid
   program. *)
let gen_fuzz_shape ~dist =
  QCheck.Gen.map
    (fun seed -> Fuzz.Gen.generate ~dist (Fuzz.Rng.create (Int64.of_int seed)))
    (QCheck.Gen.int_bound 1_000_000)

let gen_fuzz_program ~dist =
  QCheck.Gen.map
    (fun shape -> Fuzz.Gen.program_of_shape_exn shape)
    (gen_fuzz_shape ~dist)

let arb_fuzz_program ~dist =
  QCheck.make
    ~print:(fun p ->
      Format.asprintf "%s (%d insns)" p.Ebpf.Program.name
        (Array.length p.Ebpf.Program.insns))
    (gen_fuzz_program ~dist)
