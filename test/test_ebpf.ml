(* ISA tests: assembler label resolution, wire-format encode/decode
   round-trips (unit + property), disassembly, and CFG analysis. *)

open Untenable
open Ebpf

let insn_eq (a : Insn.insn) (b : Insn.insn) = a = b
let t_insns =
  Alcotest.testable
    (fun ppf arr ->
      Array.iter (fun i -> Format.fprintf ppf "%a; " Insn.pp i) arr)
    (fun a b -> Array.length a = Array.length b && Array.for_all2 insn_eq a b)

(* ---------------- assembler ---------------- *)

let test_asm_forward_jump () =
  let open Asm in
  let prog = assemble_exn [ jeq_i r1 0 "out"; mov_i r0 1; label "out"; exit_ ] in
  match prog.(0) with
  | Insn.Jmp { off; _ } -> Alcotest.(check int) "skips one insn" 1 off
  | _ -> Alcotest.fail "expected jmp"

let test_asm_backward_jump () =
  let open Asm in
  let prog =
    assemble_exn [ mov_i r0 3; label "loop"; sub_i r0 1; jne_i r0 0 "loop"; exit_ ]
  in
  match prog.(2) with
  | Insn.Jmp { off; _ } -> Alcotest.(check int) "back to sub" (-2) off
  | _ -> Alcotest.fail "expected jmp"

let test_asm_duplicate_label () =
  let open Asm in
  match assemble [ label "a"; mov_i r0 0; label "a"; exit_ ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate label accepted"

let test_asm_undefined_label () =
  let open Asm in
  match assemble [ ja "nowhere"; exit_ ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "undefined label accepted"

let test_asm_mov_label () =
  let open Asm in
  let prog = assemble_exn [ mov_label r2 "cb"; exit_; label "cb"; exit_ ] in
  match prog.(0) with
  | Insn.Alu { op = Insn.Mov; src = Insn.Imm pc; _ } ->
    Alcotest.(check int) "absolute pc of label" 2 pc
  | _ -> Alcotest.fail "expected mov"

(* ---------------- encode/decode ---------------- *)

let roundtrip insns =
  match Encode.of_bytes (Encode.to_bytes insns) with
  | Ok decoded -> decoded
  | Error msg -> Alcotest.failf "decode failed: %s" msg

let test_encode_roundtrip_basics () =
  let open Asm in
  let prog =
    assemble_exn
      [ mov_i r0 (-7); lddw r3 0xdead_beef_cafe_f00dL; map_fd r2 12;
        atomic_add r10 (-8) r4; atomic_cmpxchg r10 (-16) r5;
        atomic_xor ~fetch:true r10 (-24) r6;
        ldxw r4 r1 16; stxdw r10 (-8) r4; stw r1 4 0x7f; add_r r0 r4;
        insn (Insn.Alu { op = Insn.Arsh; width = Insn.W32; dst = 4; src = Insn.Imm 3 });
        jne_i r0 0 "back"; label "back";
        insn (Insn.Jmp { cond = Insn.Sle; width = Insn.W32; dst = 0;
                         src = Insn.Reg 4; off = 0 });
        call 181; exit_ ]
  in
  Alcotest.check t_insns "roundtrip" prog (roundtrip prog)

let test_encode_slot_count () =
  let bytes = Encode.to_bytes [| Insn.Ld_imm64 (1, 5L); Insn.Exit |] in
  Alcotest.(check int) "lddw takes two slots" 24 (Bytes.length bytes)

let test_encode_negative_imm64 () =
  let prog = [| Insn.Ld_imm64 (2, -1L); Insn.Ld_imm64 (3, Int64.min_int); Insn.Exit |] in
  Alcotest.check t_insns "negative imm64" prog (roundtrip prog)

let test_decode_garbage () =
  match Encode.of_bytes (Bytes.make 8 '\xff') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage decoded"

let test_decode_truncated () =
  match Encode.of_bytes (Bytes.make 12 '\x00') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated decoded"

(* property: random well-formed instruction arrays round-trip *)
let gen_insn =
  QCheck.Gen.(
    let reg = int_bound 10 in
    let imm = map (fun v -> v - 0x4000_0000) (int_bound 0x7fff_ffff) in
    let off = map (fun v -> v - 1000) (int_bound 2000) in
    let size = oneofl [ Insn.B; Insn.H; Insn.W; Insn.DW ] in
    let width = oneofl [ Insn.W64; Insn.W32 ] in
    let alu_op =
      oneofl
        [ Insn.Add; Insn.Sub; Insn.Mul; Insn.Div; Insn.Or; Insn.And; Insn.Lsh;
          Insn.Rsh; Insn.Neg; Insn.Mod; Insn.Xor; Insn.Mov; Insn.Arsh ]
    in
    let cond =
      oneofl
        [ Insn.Eq; Insn.Gt; Insn.Ge; Insn.Set; Insn.Ne; Insn.Sgt; Insn.Sge;
          Insn.Lt; Insn.Le; Insn.Slt; Insn.Sle ]
    in
    let operand =
      oneof [ map (fun r -> Insn.Reg r) reg; map (fun v -> Insn.Imm v) imm ]
    in
    oneof
      [ (let* op = alu_op and* width = width and* dst = reg and* src = operand in
         return (Insn.Alu { op; width; dst; src }));
        (let* dst = reg and* v = ui64 in
         return (Insn.Ld_imm64 (dst, v)));
        (let* dst = reg and* fd = int_bound 1000 in
         return (Insn.Ld_map_fd (dst, fd)));
        (let* size = size and* dst = reg and* src = reg and* off = off in
         return (Insn.Ldx { size; dst; src; off }));
        (let* size = size and* dst = reg and* off = off and* imm = imm in
         return (Insn.St { size; dst; off; imm }));
        (let* size = size and* dst = reg and* off = off and* src = reg in
         return (Insn.Stx { size; dst; off; src }));
        (let* cond = cond and* width = width and* dst = reg and* src = operand
         and* off = off in
         return (Insn.Jmp { cond; width; dst; src; off }));
        (let* aop = oneofl [ Insn.A_add; Insn.A_or; Insn.A_and; Insn.A_xor;
                             Insn.A_xchg; Insn.A_cmpxchg ]
         and* size = oneofl [ Insn.W; Insn.DW ]
         and* dst = reg and* src = reg and* off = off and* fetch = bool in
         let fetch = fetch || aop = Insn.A_xchg || aop = Insn.A_cmpxchg in
         return (Insn.Atomic { aop; size; dst; src; off; fetch }));
        map (fun off -> Insn.Ja off) off;
        map (fun id -> Insn.Call id) (int_bound 300);
        map (fun off -> Insn.Call_sub off) off;
        return Insn.Exit ])

let roundtrip_property =
  QCheck.Test.make ~count:300 ~name:"encode/decode round-trip"
    (QCheck.make
       ~print:(fun insns ->
         String.concat "; " (List.map Insn.to_string (Array.to_list insns)))
       QCheck.Gen.(map Array.of_list (list_size (int_range 1 40) gen_insn)))
    (fun insns ->
      match Encode.of_bytes (Encode.to_bytes insns) with
      | Ok decoded -> decoded = insns
      | Error _ -> false)

(* CFG-valid programs from the shared fuzz grammar (not just random insn
   soup): the wire encoding must round-trip insn-for-insn and byte-for-
   byte, and the disassembly of the decoded image must read identically —
   for verifier-clean, adversarial, and hang-shaped programs alike. *)
let fuzz_roundtrip_property dist =
  QCheck.Test.make ~count:100
    ~name:
      (Printf.sprintf "generated %s programs: encode/disasm/encode round-trip"
         (Fuzz.Gen.dist_to_string dist))
    (Generators.arb_fuzz_program ~dist)
    (fun p ->
      let insns = p.Program.insns in
      let wire = Encode.to_bytes insns in
      match Encode.of_bytes wire with
      | Error _ -> false
      | Ok decoded ->
        decoded = insns
        && Bytes.equal (Encode.to_bytes decoded) wire
        && String.equal (Disasm.to_string decoded) (Disasm.to_string insns)
        && String.length (Disasm.to_string decoded) > 0)

(* ---------------- disasm ---------------- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_disasm_labels () =
  let open Asm in
  let prog = assemble_exn [ jeq_i r1 0 "out"; mov_i r0 1; label "out"; exit_ ] in
  let text = Disasm.to_string prog in
  Alcotest.(check bool) "has L0 label" true (contains text "L0:");
  Alcotest.(check bool) "has arrow" true (contains text "-> L0")

(* ---------------- cfg ---------------- *)

let test_cfg_linear () =
  let open Asm in
  let prog = assemble_exn [ mov_i r0 0; add_i r0 1; exit_ ] in
  let cfg = Cfg.build prog in
  Alcotest.(check int) "one block" 1 (Cfg.block_count cfg);
  Alcotest.(check bool) "no loop" false (Cfg.has_loop cfg);
  Alcotest.(check int) "one path" 1 (Cfg.path_count cfg)

let test_cfg_diamond () =
  let open Asm in
  let prog =
    assemble_exn
      [ jeq_i r1 0 "else"; mov_i r0 1; ja "end"; label "else"; mov_i r0 2;
        label "end"; exit_ ]
  in
  let cfg = Cfg.build prog in
  Alcotest.(check bool) "no loop" false (Cfg.has_loop cfg);
  Alcotest.(check int) "two paths" 2 (Cfg.path_count cfg)

let test_cfg_loop () =
  let open Asm in
  let prog =
    assemble_exn [ mov_i r0 4; label "l"; sub_i r0 1; jne_i r0 0 "l"; exit_ ]
  in
  let cfg = Cfg.build prog in
  Alcotest.(check bool) "loop detected" true (Cfg.has_loop cfg);
  Alcotest.(check bool) "back edge reported" true (Cfg.back_edges cfg <> [])

let test_cfg_path_explosion () =
  let open Asm in
  let items =
    List.concat_map
      (fun i -> [ jeq_i r1 i (Printf.sprintf "t%d" i); label (Printf.sprintf "t%d" i) ])
      (List.init 10 (fun i -> i))
    @ [ exit_ ]
  in
  let cfg = Cfg.build (assemble_exn items) in
  Alcotest.(check int) "2^10 paths" 1024 (Cfg.path_count cfg)

(* regression: a 128-diamond chain has 2^128 paths — far past [max_int] —
   and the multiply must saturate at the cap instead of wrapping negative *)
let test_cfg_path_count_saturates () =
  let open Asm in
  let items =
    List.concat_map
      (fun i -> [ jeq_i r1 i (Printf.sprintf "d%d" i); label (Printf.sprintf "d%d" i) ])
      (List.init 128 (fun i -> i))
    @ [ exit_ ]
  in
  let cfg = Cfg.build (assemble_exn items) in
  let n = Cfg.path_count cfg in
  Alcotest.(check bool) "count stays non-negative" true (n >= 0);
  Alcotest.(check int) "count saturates at the default cap" 1_000_000_000 n;
  Alcotest.(check int) "count saturates at a small cap" 7
    (Cfg.path_count ~cap:7 cfg)

(* hardening: a loop confined to dead code must still be reported (the
   pre-5.3 rejection is syntactic, not reachability-based) *)
let test_cfg_unreachable_loop () =
  let open Asm in
  let prog =
    assemble_exn
      [ mov_i r0 0; exit_;
        (* dead: *) label "dead"; add_i r1 1; ja "dead" ]
  in
  let cfg = Cfg.build prog in
  Alcotest.(check bool) "dead-code loop still detected" true (Cfg.has_loop cfg);
  Alcotest.(check bool) "dead block not reachable" false
    (Hashtbl.mem (Cfg.reachable cfg) 2);
  (* the cyclic part is unreachable: path counting ignores it *)
  Alcotest.(check int) "one live path" 1 (Cfg.path_count cfg)

let test_cfg_no_trailing_exit () =
  let open Asm in
  (* both arms fall off the end of the program — each is a terminator, so
     two paths, no divergence *)
  let prog =
    assemble_exn [ jeq_i r1 0 "else"; mov_i r0 1; label "else"; mov_i r0 2 ]
  in
  let cfg = Cfg.build prog in
  Alcotest.(check bool) "no loop" false (Cfg.has_loop cfg);
  Alcotest.(check int) "fall-off-end paths counted" 2 (Cfg.path_count cfg)

let test_cfg_self_loop () =
  let open Asm in
  let prog = assemble_exn [ mov_i r0 0; label "spin"; ja "spin" ] in
  let cfg = Cfg.build prog in
  Alcotest.(check bool) "self-loop detected" true (Cfg.has_loop cfg);
  Alcotest.(check bool) "self back edge reported" true
    (List.mem (1, 1) (Cfg.back_edges cfg));
  (* cyclic reachable subgraph: the count saturates at the cap instead of
     diverging *)
  Alcotest.(check int) "path count caps" 7 (Cfg.path_count ~cap:7 cfg)

let test_program_referenced_maps () =
  let open Asm in
  let prog =
    Program.of_items_exn ~name:"m" ~prog_type:Program.Kprobe
      [ map_fd r1 3; map_fd r2 7; map_fd r3 3; mov_i r0 0; exit_ ]
  in
  Alcotest.(check (list int)) "dedup + sorted" [ 3; 7 ] (Program.referenced_maps prog)

let test_ctx_descriptors () =
  let skb = Program.ctx_of_prog_type Program.Socket_filter in
  Alcotest.(check bool) "len field" true
    (Program.find_ctx_field skb ~off:0 ~size:4 <> None);
  Alcotest.(check bool) "mark writable" true
    (match Program.find_ctx_field skb ~off:8 ~size:4 with
    | Some f -> f.Program.writable
    | None -> false);
  Alcotest.(check bool) "misaligned access refused" true
    (Program.find_ctx_field skb ~off:2 ~size:4 = None)

let suite =
  [
    Alcotest.test_case "asm forward jump" `Quick test_asm_forward_jump;
    Alcotest.test_case "asm backward jump" `Quick test_asm_backward_jump;
    Alcotest.test_case "asm duplicate label" `Quick test_asm_duplicate_label;
    Alcotest.test_case "asm undefined label" `Quick test_asm_undefined_label;
    Alcotest.test_case "asm mov_label" `Quick test_asm_mov_label;
    Alcotest.test_case "encode roundtrip basics" `Quick test_encode_roundtrip_basics;
    Alcotest.test_case "lddw is two slots" `Quick test_encode_slot_count;
    Alcotest.test_case "negative imm64" `Quick test_encode_negative_imm64;
    Alcotest.test_case "decode garbage" `Quick test_decode_garbage;
    Alcotest.test_case "decode truncated" `Quick test_decode_truncated;
    Alcotest.test_case "disasm labels" `Quick test_disasm_labels;
    Alcotest.test_case "cfg linear" `Quick test_cfg_linear;
    Alcotest.test_case "cfg diamond" `Quick test_cfg_diamond;
    Alcotest.test_case "cfg loop" `Quick test_cfg_loop;
    Alcotest.test_case "cfg path explosion" `Quick test_cfg_path_explosion;
    Alcotest.test_case "cfg path count saturates" `Quick
      test_cfg_path_count_saturates;
    Alcotest.test_case "cfg unreachable loop" `Quick test_cfg_unreachable_loop;
    Alcotest.test_case "cfg no trailing exit" `Quick test_cfg_no_trailing_exit;
    Alcotest.test_case "cfg self-loop" `Quick test_cfg_self_loop;
    Alcotest.test_case "referenced maps" `Quick test_program_referenced_maps;
    Alcotest.test_case "ctx descriptors" `Quick test_ctx_descriptors;
    QCheck_alcotest.to_alcotest roundtrip_property;
    QCheck_alcotest.to_alcotest (fuzz_roundtrip_property Fuzz.Gen.Clean);
    QCheck_alcotest.to_alcotest (fuzz_roundtrip_property Fuzz.Gen.Adversarial);
    QCheck_alcotest.to_alcotest (fuzz_roundtrip_property Fuzz.Gen.Hang);
  ]
