(* Integration tests: whole-flow scenarios crossing the toolchain/verifier,
   the loaders, the runtime, and the kernel — including equivalence of the
   two architectures on the same logic. *)

open Untenable
module World = Framework.World
module Loader = Framework.Loader
module Invoke = Framework.Invoke
module Kernel = Kernel_sim.Kernel
module Bpf_map = Maps.Bpf_map
open Ebpf.Asm

let h = Helpers.Registry.id_of_name

let counter_def =
  { Bpf_map.name = "stats"; kind = Bpf_map.Array; key_size = 4; value_size = 8;
    max_entries = 1; lock_off = None }

(* the quickstart counter through path A *)
let ebpf_counter ~map_id =
  Ebpf.Program.of_items_exn ~name:"counter" ~prog_type:Ebpf.Program.Kprobe
    [ stdw r10 (-8) 0; map_fd r1 map_id; mov_r r2 r10; add_i r2 (-8);
      call (h "bpf_map_lookup_elem"); jeq_i r0 0 "miss"; ldxdw r6 r0 0;
      add_i r6 1; stxdw r0 0 r6; mov_r r0 r6; exit_;
      label "miss"; mov_i r0 (-1); exit_ ]

(* the same logic through path B *)
let rustlite_counter =
  let open Rustlite.Ast in
  { Rustlite.Toolchain.name = "counter"; maps = [ counter_def ];
    body =
      Match_option
        { scrutinee = Call ("map_get", [ Lit_str "stats"; Lit_int 0L ]);
          bind = "c";
          some_branch =
            Seq
              [ Call ("map_set",
                      [ Lit_str "stats"; Lit_int 0L; Binop (Add, Var "c", Lit_int 1L) ]);
                Binop (Add, Var "c", Lit_int 1L) ];
          none_branch = Lit_int (-1L) } }

let returns = function
  | Loader.Finished v -> v
  | o -> Alcotest.failf "expected Finished, got %s" (Format.asprintf "%a" Loader.pp_outcome o)

let test_paths_agree () =
  (* run each counter 5 times; the sequences of return values must agree *)
  let run_a () =
    let world = World.create_populated () in
    let m = World.register_map world counter_def in
    let loaded = Result.get_ok (Loader.load_ebpf world (ebpf_counter ~map_id:m.Bpf_map.id)) in
    List.init 5 (fun _ -> returns (Invoke.run world loaded).Loader.outcome)
  in
  let run_b () =
    let world = World.create_populated () in
    let ext = Result.get_ok (Rustlite.Toolchain.compile rustlite_counter) in
    let loaded = Result.get_ok (Loader.load_rustlite world ext) in
    List.init 5 (fun _ -> returns (Invoke.run world loaded).Loader.outcome)
  in
  Alcotest.(check (list int64)) "same observable behaviour" (run_a ()) (run_b ())

let test_both_paths_leave_healthy_kernels () =
  let world = World.create_populated () in
  let m = World.register_map world counter_def in
  let loaded = Result.get_ok (Loader.load_ebpf world (ebpf_counter ~map_id:m.Bpf_map.id)) in
  for _ = 1 to 20 do
    ignore (Invoke.run world loaded)
  done;
  Alcotest.(check bool) "healthy after 20 runs" true
    (Kernel.healthy (Kernel.health world.World.kernel))

let test_dead_kernel_stays_dead () =
  let world = World.create_populated () in
  let crasher =
    Ebpf.Program.of_items_exn ~name:"c" ~prog_type:Ebpf.Program.Kprobe
      [ stw r10 (-24) 1; stw r10 (-20) 0; stdw r10 (-16) 0; stdw r10 (-8) 0;
        mov_i r1 1; mov_r r2 r10; add_i r2 (-24); mov_i r3 24;
        call (h "bpf_sys_bpf"); mov_i r0 0; exit_ ]
  in
  let m = World.register_map world counter_def in
  ignore m;
  let loaded = Result.get_ok (Loader.load_ebpf world crasher) in
  (match (Invoke.run world loaded).Loader.outcome with
  | Loader.Crashed _ -> ()
  | o -> Alcotest.failf "expected crash, got %s" (Format.asprintf "%a" Loader.pp_outcome o));
  Alcotest.(check bool) "kernel dead" true (Kernel.is_dead world.World.kernel)

let test_verification_vs_signature_gate_difference () =
  (* the identical *intent* (unbounded loop) is rejected by path A's gate if
     loops are disallowed, but sails through path B's gate (signature only)
     and is handled by the runtime instead *)
  let world_a =
    World.create
      ~vconfig:{ (Bpf_verifier.Verifier.default_config ()) with
                 Bpf_verifier.Verifier.allow_loops = false }
      ()
  in
  let looping =
    Ebpf.Program.of_items_exn ~name:"l" ~prog_type:Ebpf.Program.Kprobe
      [ mov_i r0 10; label "l"; sub_i r0 1; jne_i r0 0 "l"; exit_ ]
  in
  (match Loader.load_ebpf world_a looping with
  | Error (Loader.Rejected _) -> ()
  | _ -> Alcotest.fail "legacy verifier should reject the loop");
  let world_b = World.create_populated () in
  let src =
    { Rustlite.Toolchain.name = "spin"; maps = [];
      body = Rustlite.Ast.While (Rustlite.Ast.Lit_bool true, Rustlite.Ast.Lit_unit) }
  in
  let ext = Result.get_ok (Rustlite.Toolchain.compile src) in
  let loaded = Result.get_ok (Loader.load_rustlite world_b ext) in
  let opts = { Invoke.default_opts with Invoke.wall_ns = Some 100_000L } in
  match (Invoke.run ~opts world_b loaded).Loader.outcome with
  | Loader.Exhausted (Loader.Wall_clock, _) -> ()
  | o -> Alcotest.failf "expected watchdog stop, got %s" (Format.asprintf "%a" Loader.pp_outcome o)

let test_jit_and_interp_paths_same_result () =
  let world = World.create_populated () in
  let m = World.register_map world counter_def in
  let prog = ebpf_counter ~map_id:m.Bpf_map.id in
  let loaded = Result.get_ok (Loader.load_ebpf world prog) in
  let a =
    returns
      (Invoke.run ~opts:{ Invoke.default_opts with Invoke.use_jit = false }
         world loaded)
        .Loader.outcome
  in
  let b =
    returns
      (Invoke.run ~opts:{ Invoke.default_opts with Invoke.use_jit = true }
         world loaded)
        .Loader.outcome
  in
  Alcotest.(check int64) "interp then jit continue the same count" (Int64.add a 1L) b

let test_trace_pipeline () =
  let world = World.create_populated () in
  let prog =
    Ebpf.Program.of_items_exn ~name:"t" ~prog_type:Ebpf.Program.Kprobe
      [ (* "n=%d" *)
        stdw r10 (-8) 0;
        stw r10 (-8) 0x64253d6e (* "n=%d" little-endian *);
        mov_r r1 r10; add_i r1 (-8); mov_i r2 5; mov_i r3 42; mov_i r4 0; mov_i r5 0;
        call (h "bpf_trace_printk"); mov_i r0 0; exit_ ]
  in
  let loaded = Result.get_ok (Loader.load_ebpf world prog) in
  let report = Invoke.run world loaded in
  Alcotest.(check (list string)) "trace output" [ "n=42" ] report.Loader.trace

let test_queue_program_end_to_end () =
  let world = World.create_populated () in
  let q =
    World.register_map world
      { Bpf_map.name = "q"; kind = Bpf_map.Queue; key_size = 0; value_size = 8;
        max_entries = 8; lock_off = None }
  in
  let prog =
    Ebpf.Program.of_items_exn ~name:"q" ~prog_type:Ebpf.Program.Kprobe
      [ (* push 41, push 42, pop -> r0 gets the first (FIFO) *)
        stdw r10 (-8) 41; map_fd r1 q.Bpf_map.id; mov_r r2 r10; add_i r2 (-8);
        mov_i r3 0; call (h "bpf_map_push_elem");
        stdw r10 (-8) 42; map_fd r1 q.Bpf_map.id; mov_r r2 r10; add_i r2 (-8);
        mov_i r3 0; call (h "bpf_map_push_elem");
        map_fd r1 q.Bpf_map.id; mov_r r2 r10; add_i r2 (-16);
        call (h "bpf_map_pop_elem");
        ldxdw r0 r10 (-16); exit_ ]
  in
  match Loader.load_ebpf world prog with
  | Error e -> Alcotest.failf "rejected: %s" (Format.asprintf "%a" Loader.pp_load_error e)
  | Ok loaded -> (
    match (Invoke.run world loaded).Loader.outcome with
    | Loader.Finished 41L -> ()
    | o -> Alcotest.failf "expected 41 (FIFO), got %s" (Format.asprintf "%a" Loader.pp_outcome o))

let test_timer_fires () =
  let world = World.create_populated () in
  let m = World.register_map world counter_def in
  (* the program arms a timer whose callback bumps map[0] *)
  let prog =
    Ebpf.Program.of_items_exn ~name:"timer" ~prog_type:Ebpf.Program.Kprobe
      [ mov_i r1 1000; mov_label r2 "cb"; mov_i r3 0; mov_i r4 0;
        call (h "bpf_timer_start"); mov_i r0 0; exit_;
        label "cb";
        stdw r10 (-8) 0; map_fd r1 m.Bpf_map.id; mov_r r2 r10; add_i r2 (-8);
        call (h "bpf_map_lookup_elem"); jeq_i r0 0 "out";
        ldxdw r6 r0 0; add_i r6 1; stxdw r0 0 r6;
        label "out"; mov_i r0 0; exit_ ]
  in
  match Loader.load_ebpf world prog with
  | Error e -> Alcotest.failf "rejected: %s" (Format.asprintf "%a" Loader.pp_load_error e)
  | Ok loaded ->
    ignore (Invoke.run world loaded);
    ignore (Invoke.run world loaded);
    let addr =
      Option.get (Bpf_map.lookup m ~key:(Bytes.make 4 '\000'))
    in
    let v =
      Kernel_sim.Kmem.load world.World.kernel.Kernel.mem ~size:8 ~addr ~context:"t"
    in
    Alcotest.(check int64) "callback ran per invocation" 2L v

let test_timer_cancel () =
  let world = World.create_populated () in
  let m = World.register_map world counter_def in
  let prog =
    Ebpf.Program.of_items_exn ~name:"timer_cancel" ~prog_type:Ebpf.Program.Kprobe
      [ mov_i r1 1000; mov_label r2 "cb"; mov_i r3 0; mov_i r4 0;
        call (h "bpf_timer_start");
        mov_label r1 "cb"; call (h "bpf_timer_cancel");
        exit_; (* r0 = number cancelled = 1 *)
        label "cb";
        stdw r10 (-8) 0; map_fd r1 m.Bpf_map.id; mov_r r2 r10; add_i r2 (-8);
        call (h "bpf_map_lookup_elem"); jeq_i r0 0 "out";
        ldxdw r6 r0 0; add_i r6 1; stxdw r0 0 r6;
        label "out"; mov_i r0 0; exit_ ]
  in
  match Loader.load_ebpf world prog with
  | Error e -> Alcotest.failf "rejected: %s" (Format.asprintf "%a" Loader.pp_load_error e)
  | Ok loaded ->
    (match (Invoke.run world loaded).Loader.outcome with
    | Loader.Finished 1L -> ()
    | o -> Alcotest.failf "expected 1 cancel, got %s" (Format.asprintf "%a" Loader.pp_outcome o));
    let addr = Option.get (Bpf_map.lookup m ~key:(Bytes.make 4 '\000')) in
    let v =
      Kernel_sim.Kmem.load world.World.kernel.Kernel.mem ~size:8 ~addr ~context:"t"
    in
    Alcotest.(check int64) "cancelled callback never ran" 0L v

let test_tail_call_chain_wired () =
  let world = World.create_populated () in
  let prog_b =
    Ebpf.Program.of_items_exn ~name:"b" ~prog_type:Ebpf.Program.Kprobe
      [ mov_i r0 55; exit_ ]
  in
  let b_id =
    match Result.get_ok (Loader.load_ebpf world prog_b) with
    | Loader.Ebpf_prog { prog_id; _ } -> prog_id
    | _ -> 0
  in
  World.set_tail_call world ~index:0 ~prog_id:b_id;
  let prog_a =
    Ebpf.Program.of_items_exn ~name:"a" ~prog_type:Ebpf.Program.Kprobe
      [ mov_r r1 r1; mov_i r2 0; mov_i r3 0; call (h "bpf_tail_call");
        mov_i r0 1; exit_ ]
  in
  let a = Result.get_ok (Loader.load_ebpf world prog_a) in
  match (Invoke.run world a).Loader.outcome with
  | Loader.Finished 55L -> ()
  | o -> Alcotest.failf "expected 55 via tail call, got %s"
           (Format.asprintf "%a" Loader.pp_outcome o)

let test_tail_call_limit () =
  (* a self tail-calling program stops after MAX_TAIL_CALL_CNT hops *)
  let world = World.create_populated () in
  let prog =
    Ebpf.Program.of_items_exn ~name:"selfcall" ~prog_type:Ebpf.Program.Kprobe
      [ mov_r r1 r1; mov_i r2 0; mov_i r3 0; call (h "bpf_tail_call");
        mov_i r0 7; exit_ ]
  in
  let loaded = Result.get_ok (Loader.load_ebpf world prog) in
  let self_id =
    match loaded with Loader.Ebpf_prog { prog_id; _ } -> prog_id | _ -> 0
  in
  World.set_tail_call world ~index:0 ~prog_id:self_id;
  match (Invoke.run world loaded).Loader.outcome with
  | Loader.Finished 0L -> () (* the chain was cut by the limit *)
  | o -> Alcotest.failf "expected limit cutoff (0), got %s"
           (Format.asprintf "%a" Loader.pp_outcome o)

(* The §2.2 nested-bpf_loop hang demo, run with the fix active, must be
   stopped by the watchdog — and the telemetry subsystem must have seen it:
   a nonzero guard.watchdog_trips counter plus activity in several other
   namespaces, proving the instrumentation is wired through the whole path. *)
let test_telemetry_sees_watchdog_trip () =
  let module Registry = Telemetry.Registry in
  Registry.reset ();
  let demo =
    match Framework.Exploits.find "hbug:nested-bpf-loop-hang" with
    | Some d -> d
    | None -> Alcotest.fail "demo hbug:nested-bpf-loop-hang not registered"
  in
  let summary = demo.Framework.Exploits.run ~vulnerable:false in
  Alcotest.(check bool) "kernel survives the fixed run" false
    summary.Framework.Exploits.kernel_dead;
  let trips = Telemetry.Counter.value (Registry.counter "guard.watchdog_trips") in
  Alcotest.(check bool) "guard.watchdog_trips is nonzero" true (trips > 0);
  let snap = Registry.snapshot () in
  let namespaces =
    List.filter_map
      (fun (name, v) ->
        if v = 0 then None
        else match String.index_opt name '.' with
          | Some i -> Some (String.sub name 0 i)
          | None -> Some name)
      snap.Registry.counters
    |> List.sort_uniq String.compare
  in
  Alcotest.(check bool)
    (Printf.sprintf "counters active in >= 4 namespaces (got %d: %s)"
       (List.length namespaces) (String.concat ", " namespaces))
    true
    (List.length namespaces >= 4)

let suite =
  [
    Alcotest.test_case "tail call chain (wired)" `Quick test_tail_call_chain_wired;
    Alcotest.test_case "tail call limit" `Quick test_tail_call_limit;
    Alcotest.test_case "timer fires after invocation" `Quick test_timer_fires;
    Alcotest.test_case "timer cancel" `Quick test_timer_cancel;
    Alcotest.test_case "queue program end to end" `Quick test_queue_program_end_to_end;
    Alcotest.test_case "paths agree on the counter" `Quick test_paths_agree;
    Alcotest.test_case "healthy after many runs" `Quick test_both_paths_leave_healthy_kernels;
    Alcotest.test_case "dead kernel stays dead" `Quick test_dead_kernel_stays_dead;
    Alcotest.test_case "gate difference A vs B" `Quick test_verification_vs_signature_gate_difference;
    Alcotest.test_case "jit and interp agree" `Quick test_jit_and_interp_paths_same_result;
    Alcotest.test_case "trace pipeline" `Quick test_trace_pipeline;
    Alcotest.test_case "telemetry sees watchdog trip" `Quick test_telemetry_sees_watchdog_trip;
  ]
