(* The static-analysis layer: the worklist dataflow engine (termination on
   cyclic CFGs, widening, monotone join laws), each lint pass against the
   known-good/known-bad corpus, and the ground-truth properties the
   ISSUE pins down: a leak the resource pass reports is a real unreleased
   resource under Invoke, guard elision never changes an outcome under
   Chaos fault injection, a static instruction bound always dominates the
   retired count under random chaos, and statically-unbounded programs
   still trip the runtime watchdog (fuel batching masks nothing). *)

open Untenable
open Ebpf.Asm
module Cfg = Ebpf.Cfg
module Insn = Ebpf.Insn
module Dataflow = Analysis.Dataflow
module Driver = Analysis.Driver
module Finding = Analysis.Finding
module Resource_pass = Analysis.Resource_pass
module Bound_pass = Analysis.Bound_pass
module World = Framework.World
module Invoke = Framework.Invoke
module Chaos = Framework.Chaos

let h = Helpers.Registry.id_of_name

(* Program builders and the verify-gate bypass are shared scaffolding. *)
let prog = Generators.prog
let insns_of = Generators.insns_of
let fabricate = Generators.fabricate
let outcome_agrees = Generators.outcome_agrees

let findings_of ?config items =
  (Driver.analyze ?config (insns_of items)).Driver.findings

let has_finding ~pass ~severity fs =
  List.exists
    (fun (f : Finding.t) -> f.Finding.pass = pass && f.Finding.severity = severity)
    fs

let pass_findings ~pass fs =
  List.filter (fun (f : Finding.t) -> f.Finding.pass = pass) fs

(* ---- the engine ---- *)

(* An infinite-height counting lattice: without the widening hook the loop
   below would bump the counter forever; with it the solve must terminate
   and still report convergence. *)
module Count = struct
  type fact = Bot | Count of int | Top

  let bottom = Bot
  let entry = Count 0
  let equal = ( = )

  let join a b =
    match (a, b) with
    | Bot, f | f, Bot -> f
    | Top, _ | _, Top -> Top
    | Count x, Count y -> Count (max x y)

  let widen ~prev next =
    match (prev, next) with
    | Count p, Count n when n > p -> Top (* jump the moving part to top *)
    | _ -> next
end

module Count_solver = Dataflow.Make (Count)

(* r1 = 0; do { r1++ } while (r1 < 10); exit — one back edge. *)
let loop_items =
  [ mov_i r1 0; label "loop"; add_i r1 1; jlt_i r1 10 "loop"; mov_i r0 0;
    exit_ ]

let test_engine_terminates_cyclic () =
  let insns = insns_of loop_items in
  let cfg = Cfg.build insns in
  Alcotest.(check bool) "loop has a back edge" true (Cfg.back_edges cfg <> []);
  let solved =
    Count_solver.solve cfg ~transfer:(fun _b f ->
        match f with Count.Count n -> Count.Count (n + 1) | f -> f)
  in
  Alcotest.(check bool) "converged" true solved.Count_solver.converged;
  Alcotest.(check bool) "loop head widened to top" true
    (List.exists
       (fun (_, into) -> Count_solver.in_fact solved into = Count.Top)
       (Cfg.back_edges cfg))

let test_engine_no_widening_diverges () =
  (* Same solve with the widening disabled (identity hook): the safety cap
     must stop it and report non-convergence, not hang. *)
  let module Raw = struct
    include Count

    let widen ~prev:_ next = next
  end in
  let module S = Dataflow.Make (Raw) in
  let insns = insns_of loop_items in
  let solved =
    S.solve (Cfg.build insns) ~max_iterations:200 ~transfer:(fun _b f ->
        match f with Raw.Count n -> Raw.Count (n + 1) | f -> f)
  in
  Alcotest.(check bool) "cap trips" false solved.S.converged

let test_engine_backward () =
  (* Backward reachability-of-exit: every block of a diamond can reach the
     exit, so the entry's backward in-fact must be [true]. *)
  let module Reach = struct
    type fact = bool

    let bottom = false
    let entry = true
    let equal = ( = )
    let join = ( || )
    let widen ~prev:_ next = next
  end in
  let module S = Dataflow.Make (Reach) in
  let insns =
    insns_of
      [ mov_i r1 1; jeq_i r1 0 "else"; mov_i r0 1; ja "out"; label "else";
        mov_i r0 2; label "out"; exit_ ]
  in
  let cfg = Cfg.build insns in
  let solved =
    S.solve cfg ~dir:Dataflow.Backward ~transfer:(fun _b f -> f)
  in
  Alcotest.(check bool) "entry reaches exit" true
    (S.in_fact solved cfg.Cfg.entry)

(* Diamond join: an obligation owed on only one arm survives the join (may
   semantics), and a holder register differing across arms is dropped from
   the must-holder set. *)
let test_resource_diamond_join () =
  let fs =
    findings_of
      [ mov_i r1 8080; jeq_i r1 0 "else";
        mov_i r1 8080; call (h "bpf_sk_lookup_tcp"); ja "out";
        label "else"; mov_i r0 0;
        label "out"; mov_i r0 0; exit_ ]
  in
  Alcotest.(check bool) "one-arm acquire still a leak" true
    (has_finding ~pass:"resource" ~severity:Finding.Error fs)

(* qcheck: join on the resource lattice is commutative, associative and
   idempotent over canonical facts. *)
let gen_fact =
  QCheck.Gen.(
    let gen_oblig =
      map3
        (fun apc fam regs ->
          { Resource_pass.apc;
            fam =
              (match fam with
              | 0 -> Resource_pass.Sock
              | 1 -> Resource_pass.Ringbuf
              | _ -> Resource_pass.Lock);
            regs = List.sort_uniq compare regs })
        (int_bound 5) (int_bound 2)
        (list_size (int_bound 3) (int_bound 4))
    in
    map
      (fun os ->
        (* canonical: at most one obligation per (apc, fam), sorted *)
        let tbl = Hashtbl.create 8 in
        List.iter
          (fun (o : Resource_pass.oblig) ->
            Hashtbl.replace tbl (o.Resource_pass.apc, o.Resource_pass.fam) o)
          os;
        Hashtbl.fold (fun _ o acc -> o :: acc) tbl []
        |> List.sort (fun (x : Resource_pass.oblig) y ->
               compare (x.Resource_pass.apc, x.Resource_pass.fam)
                 (y.Resource_pass.apc, y.Resource_pass.fam)))
      (list_size (int_bound 6) gen_oblig))

let join_laws_property =
  QCheck.Test.make ~count:300 ~name:"resource join is ACI"
    (QCheck.make QCheck.Gen.(triple gen_fact gen_fact gen_fact))
    (fun (a, b, c) ->
      let module L = Resource_pass.L in
      L.equal (L.join a a) a
      && L.equal (L.join a b) (L.join b a)
      && L.equal (L.join (L.join a b) c) (L.join a (L.join b c)))

(* ---- the resource pass ---- *)

let leaky_items =
  [ mov_i r1 8080; call (h "bpf_sk_lookup_tcp"); mov_i r0 0; exit_ ]

let clean_items =
  [ mov_i r1 8080; call (h "bpf_sk_lookup_tcp"); jeq_i r0 0 "out";
    mov_r r1 r0; call (h "bpf_sk_release"); label "out"; mov_i r0 0; exit_ ]

let test_resource_leak_flagged () =
  Alcotest.(check bool) "sk leak flagged" true
    (has_finding ~pass:"resource" ~severity:Finding.Error
       (findings_of leaky_items))

let test_resource_clean_silent () =
  Alcotest.(check int) "null-checked pairing clean" 0
    (List.length (pass_findings ~pass:"resource" (findings_of clean_items)))

let test_resource_ringbuf_leak () =
  let fs =
    findings_of
      [ map_fd r1 1; mov_i r2 8; mov_i r3 0; call (h "bpf_ringbuf_reserve");
        mov_i r0 0; exit_ ]
  in
  Alcotest.(check bool) "ringbuf reservation leak flagged" true
    (has_finding ~pass:"resource" ~severity:Finding.Error fs)

let test_resource_double_release () =
  let fs =
    findings_of
      [ mov_i r1 8080; call (h "bpf_sk_lookup_tcp"); jeq_i r0 0 "out";
        mov_r r6 r0; mov_r r1 r6; call (h "bpf_sk_release");
        mov_r r1 r6; call (h "bpf_sk_release"); label "out"; mov_i r0 0;
        exit_ ]
  in
  Alcotest.(check bool) "second release warned" true
    (has_finding ~pass:"resource" ~severity:Finding.Warning fs)

(* ---- the lock pass ---- *)

let lock_region body =
  [ map_fd r1 1; call (h "bpf_spin_lock") ] @ body
  @ [ map_fd r1 1; call (h "bpf_spin_unlock"); mov_i r0 0; exit_ ]

let test_lock_sleep_flagged () =
  let fs =
    findings_of
      (lock_region
         [ mov_r r1 r10; add_i r1 (-8); mov_i r2 8; mov_i r3 0;
           call (h "bpf_probe_read_user") ])
  in
  Alcotest.(check bool) "may-sleep under spinlock flagged" true
    (has_finding ~pass:"lock" ~severity:Finding.Error fs)

let test_lock_clean_silent () =
  Alcotest.(check int) "balanced lock region clean" 0
    (List.length
       (pass_findings ~pass:"lock" (findings_of (lock_region [ mov_i r6 1 ]))))

let test_lock_across_back_edge () =
  let fs =
    findings_of
      [ map_fd r1 1; call (h "bpf_spin_lock"); mov_i r6 0; label "loop";
        add_i r6 1; jlt_i r6 4 "loop"; map_fd r1 1;
        call (h "bpf_spin_unlock"); mov_i r0 0; exit_ ]
  in
  Alcotest.(check bool) "lock across back edge flagged" true
    (List.exists
       (fun (f : Finding.t) ->
         f.Finding.pass = "lock"
         && f.Finding.severity = Finding.Error
         && String.length f.Finding.message >= 8
         && String.sub f.Finding.message 0 8 = "spinlock")
       fs)

let test_lock_held_at_exit () =
  let fs =
    findings_of [ map_fd r1 1; call (h "bpf_spin_lock"); mov_i r0 0; exit_ ]
  in
  Alcotest.(check bool) "lock held at exit flagged" true
    (has_finding ~pass:"lock" ~severity:Finding.Error fs)

(* ---- the elide pass ---- *)

let test_elide_redundant_guard () =
  let r =
    Driver.analyze
      (insns_of
         [ mov_i r6 4; jgt_i r6 10 "oob"; mov_i r0 1; exit_; label "oob";
           mov_i r0 0; exit_ ])
  in
  Alcotest.(check int) "one guard elided" 1 r.Driver.elided;
  Alcotest.(check int) "fall-through resolved" 2 r.Driver.elide.(1)

let test_elide_unknown_guard_kept () =
  (* r6 loaded from memory: the facts cannot resolve the branch *)
  let r =
    Driver.analyze
      (insns_of
         [ ldxw r6 r1 0; jgt_i r6 10 "oob"; mov_i r0 1; exit_; label "oob";
           mov_i r0 0; exit_ ])
  in
  Alcotest.(check int) "nothing elided" 0 r.Driver.elided

let test_elide_map_pointer_kept () =
  (* the NULL test on a map handle must never be elided even though the
     runtime models the fd as a small concrete integer *)
  let r =
    Driver.analyze
      (insns_of
         [ map_fd r1 1; jeq_i r1 0 "out"; mov_i r0 1; exit_; label "out";
           mov_i r0 0; exit_ ])
  in
  Alcotest.(check int) "map-handle guard kept" 0 r.Driver.elided

let test_elide_loop_guard_kept () =
  (* the loop condition goes both ways; widening must not let the pass
     pretend otherwise *)
  let r = Driver.analyze (insns_of loop_items) in
  Alcotest.(check int) "loop guard kept" 0 r.Driver.elided

(* ---- driver config ---- *)

let test_driver_config_toggles () =
  let insns = insns_of leaky_items in
  let off = Driver.analyze ~config:Driver.all_off insns in
  Alcotest.(check (list string)) "all off runs nothing" [] off.Driver.passes_run;
  Alcotest.(check int) "no findings when off" 0 (List.length off.Driver.findings);
  let only_lock =
    Driver.analyze
      ~config:{ Driver.all_off with Driver.lock = true }
      insns
  in
  Alcotest.(check (list string)) "only lock runs" [ "lock" ]
    only_lock.Driver.passes_run;
  let sig_a = Driver.config_signature Driver.default_config in
  let sig_b = Driver.config_signature Driver.all_off in
  Alcotest.(check bool) "config signature distinguishes" true (sig_a <> sig_b)

(* ---- ground truth: reported leaks are real leaks ---- *)

type action = Acquire of int | Release of int

(* A well-formed straight-line acquire/release schedule over slots r6..r9:
   only acquire into a free slot, only release a live one. *)
let gen_schedule =
  QCheck.Gen.(
    let slots = [ 6; 7; 8; 9 ] in
    let rec go live n acc st =
      if n = 0 then List.rev acc
      else
        let free = List.filter (fun s -> not (List.mem s live)) slots in
        let choices =
          (if free <> [] then [ `Acq ] else [])
          @ if live <> [] then [ `Rel ] else []
        in
        match choices with
        | [] -> List.rev acc
        | _ -> (
          match oneofl choices st with
          | `Acq ->
            let s = oneofl free st in
            go (s :: live) (n - 1) (Acquire s :: acc) st
          | `Rel ->
            let s = oneofl live st in
            go (List.filter (( <> ) s) live) (n - 1) (Release s :: acc) st)
    in
    fun st ->
      let n = int_range 1 8 st in
      go [] n [] st)

let schedule_to_items actions =
  List.concat_map
    (function
      | Acquire s ->
        [ mov_i r1 8080; call (h "bpf_sk_lookup_tcp"); mov_r s r0 ]
      | Release s -> [ mov_r r1 s; call (h "bpf_sk_release") ])
    actions
  @ [ mov_i r0 0; exit_ ]

let expected_leaks actions =
  List.fold_left
    (fun live -> function
      | Acquire s -> s :: live
      | Release s -> List.filter (( <> ) s) live)
    [] actions
  |> List.length

let leak_ground_truth_property =
  QCheck.Test.make ~count:60
    ~name:"reported leaks = resources stranded under Invoke"
    (QCheck.make gen_schedule) (fun actions ->
      let p = prog ~name:"leakgen" (schedule_to_items actions) in
      let report = Driver.analyze p.Ebpf.Program.insns in
      let reported =
        List.length
          (List.filter
             (fun (f : Finding.t) ->
               f.Finding.pass = "resource"
               && f.Finding.severity = Finding.Error)
             report.Driver.findings)
      in
      let world = World.create_populated () in
      let run = Invoke.run world (fabricate p) in
      let real = run.Invoke.resources_outstanding in
      if reported <> expected_leaks actions || real <> reported then
        QCheck.Test.fail_reportf
          "schedule of %d actions: %d reported, %d expected, %d real"
          (List.length actions) reported (expected_leaks actions) real
      else true)

(* ---- ground truth: elision masks no Chaos-injected fault ---- *)

(* k always-decidable guards in front of the §2.2 probe-read vehicle: the
   elide pass resolves every guard, and the outcome with elision on must be
   identical to the outcome with every check evaluated dynamically — for a
   clean run, an armed helper bug (crash), fuel pressure and stack
   pressure alike. *)
let gen_guarded =
  QCheck.Gen.(
    fun st ->
      let k = int_range 1 5 st in
      let guards =
        List.concat
          (List.init k (fun i ->
               let c = int_bound 20 st and bound = int_bound 20 st in
               [ mov_i r6 c;
                 (match i mod 3 with
                 | 0 -> jgt_i r6 bound "trap"
                 | 1 -> jle_i r6 bound "trap"
                 | _ -> jeq_i r6 bound "trap") ]))
      in
      (k, guards))

let guarded_prog guards =
  prog ~name:"chaosgen" ~prog_type:Ebpf.Program.Kprobe
    (guards
    @ [ call (h "bpf_get_current_task"); mov_r r3 r0; mov_r r1 r10;
        add_i r1 (-16); mov_i r2 16; call (h "bpf_probe_read_kernel");
        mov_i r0 0; exit_; label "trap"; mov_i r0 77; exit_ ])

let chaos_no_masking_property =
  QCheck.Test.make ~count:40 ~name:"elision masks no injected fault"
    (QCheck.make gen_guarded) (fun (k, guards) ->
      let p = guarded_prog guards in
      let analysis = Driver.analyze p.Ebpf.Program.insns in
      if analysis.Driver.elided < k then
        QCheck.Test.fail_reportf "only %d of %d guards elided"
          analysis.Driver.elided k
      else
        let injections =
          [ Chaos.Calm; Chaos.Helper_bug "hbug:probe-read-size-unchecked";
            Chaos.Fuel_pressure 7L; Chaos.Stack_pressure ]
        in
        List.for_all
          (fun inj ->
            let outcome_with use_elision =
              let world = World.create_populated () in
              Chaos.arm inj world.World.bugs;
              let opts =
                Chaos.apply_opts inj
                  { Invoke.default_opts with use_elision }
              in
              (Invoke.run ~opts world (fabricate p)).Invoke.outcome
            in
            let off = outcome_with false and on = outcome_with true in
            outcome_agrees off on
            ||
            (QCheck.Test.fail_reportf
               "under %s: elision off %s, on %s" (Chaos.describe inj)
               (Format.asprintf "%a" Invoke.pp_outcome off)
               (Format.asprintf "%a" Invoke.pp_outcome on)
             : bool))
          injections)

(* ---- cost & termination: the bound pass ---- *)

let cost_of items =
  match (Driver.analyze (insns_of items)).Driver.cost with
  | Some c -> c
  | None -> Alcotest.fail "bound pass did not run"

let retired_of ?(opts = Invoke.default_opts) p =
  let world = World.create_populated () in
  let r = Invoke.run ~opts world (fabricate p) in
  Int64.to_int r.Invoke.insns_retired

let alu_loop_items =
  [ mov_i r0 0; mov_i r6 64; label "loop"; add_i r0 3; sub_i r6 1;
    jne_i r6 0 "loop"; exit_ ]

let test_bound_counted_loop () =
  let c = cost_of alu_loop_items in
  (match c.Bound_pass.loops with
  | [ l ] -> Alcotest.(check (option int)) "trips" (Some 65) l.Bound_pass.trips
  | ls -> Alcotest.failf "expected one loop, got %d" (List.length ls));
  match c.Bound_pass.bound with
  | Bound_pass.Unbounded -> Alcotest.fail "counted loop must be bounded"
  | Bound_pass.Bounded b ->
    let observed = retired_of (prog alu_loop_items) in
    Alcotest.(check bool) "bound dominates retired count" true (observed <= b)

let test_bound_nested_loops () =
  let items =
    [ mov_i r0 0; mov_i r6 8; label "outer"; mov_i r7 16; label "inner";
      add_i r0 1; sub_i r7 1; jne_i r7 0 "inner"; sub_i r6 1;
      jne_i r6 0 "outer"; exit_ ]
  in
  let c = cost_of items in
  Alcotest.(check int) "both loops found" 2 (List.length c.Bound_pass.loops);
  Alcotest.(check bool) "both trip counts inferred" true
    (List.for_all (fun l -> l.Bound_pass.trips <> None) c.Bound_pass.loops);
  match c.Bound_pass.bound with
  | Bound_pass.Unbounded -> Alcotest.fail "nested counted loops must be bounded"
  | Bound_pass.Bounded b ->
    let observed = retired_of (prog items) in
    Alcotest.(check bool) "bound dominates retired count" true (observed <= b)

(* the shapes no sound analysis may guess a number for: a data-dependent
   exit, callback iteration through an [unbounded]-flagged helper, and a
   bpf-to-bpf call *)
let test_bound_honest_unbounded () =
  let is_unbounded items =
    (cost_of items).Bound_pass.bound = Bound_pass.Unbounded
  in
  Alcotest.(check bool) "data-dependent exit" true
    (is_unbounded
       [ label "loop"; call (h "bpf_get_prandom_u32"); jne_i r0 0 "loop";
         mov_i r0 0; exit_ ]);
  Alcotest.(check bool) "bpf_loop callback" true
    (is_unbounded
       [ mov_i r1 4; mov_label r2 "cb"; mov_i r3 0; mov_i r4 0;
         call (h "bpf_loop"); mov_i r0 0; exit_; label "cb"; mov_i r0 0;
         exit_ ]);
  Alcotest.(check bool) "bpf-to-bpf call" true
    (is_unbounded
       [ call_sub "sub"; mov_i r0 0; exit_; label "sub"; mov_i r0 1; exit_ ])

(* ---- ground truth: the static bound dominates execution ---- *)

(* Random counted ALU loops (optionally nested): always inferable, so an
   [Unbounded] verdict here is an inference regression, and a retired
   count above the bound is a soundness bug.  Each program runs under
   every chaos injection with fuel batching on and off: outcomes and
   retired counts must agree pairwise, and both must respect the bound. *)
let gen_bounded =
  QCheck.Gen.(
    fun st ->
      let n = int_range 1 40 st in
      let outer = if bool st then int_range 1 6 st else 0 in
      let body =
        List.init (int_range 1 5 st) (fun _ ->
            match int_bound 2 st with
            | 0 -> `Add (1 + int_bound 9 st)
            | 1 -> `Xor (int_bound 255 st)
            | _ -> `And (int_bound 255 st))
      in
      (n, outer, body))

let bounded_items (n, outer, body) =
  let body =
    List.map
      (function
        | `Add k -> add_i r0 k | `Xor k -> xor_i r0 k | `And k -> and_i r0 k)
      body
  in
  if outer = 0 then
    [ mov_i r0 0; mov_i r6 n; label "loop" ]
    @ body
    @ [ sub_i r6 1; jne_i r6 0 "loop"; exit_ ]
  else
    [ mov_i r0 0; mov_i r6 outer; label "outer"; mov_i r7 n; label "inner" ]
    @ body
    @ [ sub_i r7 1; jne_i r7 0 "inner"; sub_i r6 1; jne_i r6 0 "outer";
        exit_ ]

let bound_soundness_property =
  QCheck.Test.make ~count:40
    ~name:"static bound >= retired insns under chaos, batching on and off"
    (QCheck.make gen_bounded) (fun shape ->
      let p = prog ~name:"boundgen" (bounded_items shape) in
      let c =
        match (Driver.analyze p.Ebpf.Program.insns).Driver.cost with
        | Some c -> c
        | None -> QCheck.Test.fail_report "bound pass did not run"
      in
      match c.Bound_pass.bound with
      | Bound_pass.Unbounded ->
        QCheck.Test.fail_report "counted loop inferred unbounded"
      | Bound_pass.Bounded b ->
        List.for_all
          (fun inj ->
            let run_with use_bound_batching =
              let world = World.create_populated () in
              Chaos.arm inj world.World.bugs;
              let opts =
                Chaos.apply_opts inj
                  { Invoke.default_opts with use_bound_batching }
              in
              Invoke.run ~opts world (fabricate p)
            in
            let off = run_with false and on = run_with true in
            if not (outcome_agrees off.Invoke.outcome on.Invoke.outcome) then
              QCheck.Test.fail_reportf "under %s: batching changed the outcome"
                (Chaos.describe inj)
            else if
              not (Int64.equal off.Invoke.insns_retired on.Invoke.insns_retired)
            then
              QCheck.Test.fail_reportf
                "under %s: batching changed retired %Ld -> %Ld"
                (Chaos.describe inj) off.Invoke.insns_retired
                on.Invoke.insns_retired
            else if Int64.to_int on.Invoke.insns_retired > b then
              QCheck.Test.fail_reportf "under %s: retired %Ld > static bound %d"
                (Chaos.describe inj) on.Invoke.insns_retired b
            else true)
          [ Chaos.Calm; Chaos.Fuel_pressure 7L; Chaos.Fuel_pressure 100L;
            Chaos.Stack_pressure ])

(* ---- no masking: unbounded programs stay the watchdog's problem ---- *)

let test_unbounded_still_trips_watchdog () =
  let items = [ mov_i r0 0; label "spin"; add_i r0 1; ja "spin" ] in
  let p = prog items in
  Alcotest.(check bool) "statically unbounded" true
    ((cost_of items).Bound_pass.bound = Bound_pass.Unbounded);
  let trips () =
    Telemetry.Counter.value (Telemetry.Registry.counter "guard.watchdog_trips")
  in
  let before = trips () in
  let world = World.create_populated () in
  let opts = { Invoke.default_opts with Invoke.wall_ns = Some 50_000L } in
  let r = Invoke.run ~opts world (fabricate p) in
  (match r.Invoke.outcome with
  | Invoke.Exhausted _ -> ()
  | o ->
    Alcotest.failf "expected a watchdog trip, got %a" Invoke.pp_outcome o);
  Alcotest.(check bool) "guard.watchdog_trips bumped" true (trips () > before)

let suite =
  [
    Alcotest.test_case "engine: terminates on cyclic CFG" `Quick
      test_engine_terminates_cyclic;
    Alcotest.test_case "engine: cap catches missing widening" `Quick
      test_engine_no_widening_diverges;
    Alcotest.test_case "engine: backward direction" `Quick test_engine_backward;
    Alcotest.test_case "resource: diamond join keeps one-arm leak" `Quick
      test_resource_diamond_join;
    Alcotest.test_case "resource: leak flagged" `Quick test_resource_leak_flagged;
    Alcotest.test_case "resource: null-checked pairing clean" `Quick
      test_resource_clean_silent;
    Alcotest.test_case "resource: ringbuf leak flagged" `Quick
      test_resource_ringbuf_leak;
    Alcotest.test_case "resource: double release warned" `Quick
      test_resource_double_release;
    Alcotest.test_case "lock: may-sleep under lock flagged" `Quick
      test_lock_sleep_flagged;
    Alcotest.test_case "lock: balanced region clean" `Quick
      test_lock_clean_silent;
    Alcotest.test_case "lock: held across back edge flagged" `Quick
      test_lock_across_back_edge;
    Alcotest.test_case "lock: held at exit flagged" `Quick
      test_lock_held_at_exit;
    Alcotest.test_case "elide: redundant guard resolved" `Quick
      test_elide_redundant_guard;
    Alcotest.test_case "elide: unknown guard kept" `Quick
      test_elide_unknown_guard_kept;
    Alcotest.test_case "elide: map-handle guard kept" `Quick
      test_elide_map_pointer_kept;
    Alcotest.test_case "elide: loop guard kept" `Quick
      test_elide_loop_guard_kept;
    Alcotest.test_case "driver: config toggles passes" `Quick
      test_driver_config_toggles;
    Alcotest.test_case "bound: counted loop" `Quick test_bound_counted_loop;
    Alcotest.test_case "bound: nested counted loops" `Quick
      test_bound_nested_loops;
    Alcotest.test_case "bound: honest unbounded verdicts" `Quick
      test_bound_honest_unbounded;
    Alcotest.test_case "bound: unbounded still trips the watchdog" `Quick
      test_unbounded_still_trips_watchdog;
    QCheck_alcotest.to_alcotest join_laws_property;
    QCheck_alcotest.to_alcotest leak_ground_truth_property;
    QCheck_alcotest.to_alcotest chaos_no_masking_property;
    QCheck_alcotest.to_alcotest bound_soundness_property;
  ]
