(* Serve tests: the sharded determinism oracle (N-domain sharded ≡
   1-domain sharded ≡ sequential, for stateless filter populations under
   Isolate), plan validation, queue overflow accounting, cross-domain
   epoch grace, and the telemetry registry merge the shard barrier
   relies on. *)

open Untenable
module World = Framework.World
module Serve = Framework.Serve
module Shard = Framework.Shard
module Epoch = Framework.Epoch
module Chaos = Framework.Chaos
module Supervisor = Framework.Supervisor
open Ebpf.Asm

(* The stateless three-filter engine, the hot-reload hook and the reload
   schedule all live in the shared scaffolding. *)
let build_engine = Generators.build_serve_engine
let reload_schedule = Generators.reload_schedule

(* ---------------- the determinism oracle ---------------- *)

let determinism_oracle =
  QCheck.Test.make ~count:12
    ~name:"sharded run reconstructs the sequential checksum exactly"
    QCheck.(quad (int_range 1 5) (int_range 1 120) bool (int_range 0 2))
    (fun (domains, count, with_chaos, reloads) ->
      let chaos =
        if with_chaos then
          Some { Chaos.default_config with Chaos.fault_rate = 0.05 }
        else None
      in
      let partition =
        if count mod 2 = 0 then Serve.Flow_hash else Serve.Round_robin
      in
      let mk () =
        Serve.plan ?chaos ~domains
          ~reloads:(reload_schedule ~count ~reloads)
          ~record_checksums:true ~partition ~size:48 ~hook:"xdp" ~count ()
      in
      (* sequential reference on a fresh engine *)
      let seq =
        Serve.run (build_engine ())
          (Serve.plan ?chaos
             ~reloads:(reload_schedule ~count ~reloads)
             ~record_checksums:true ~size:48 ~hook:"xdp" ~count ())
      in
      (* the same stream forced through the sharded machinery *)
      let par = Serve.sharded (build_engine ()) (mk ()) in
      par.Serve.totals.Serve.events = count
      && par.Serve.totals.Serve.reloads = reloads
      && Int64.equal par.Serve.totals.Serve.ret_checksum
           seq.Serve.totals.Serve.ret_checksum
      && par.Serve.event_checksums = seq.Serve.event_checksums)

(* ---------------- plan validation ---------------- *)

let test_plan_validation () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "count < 0 rejected" true
    (raises (fun () -> Serve.plan ~hook:"xdp" ~count:(-1) ()));
  Alcotest.(check bool) "domains < 1 rejected" true
    (raises (fun () -> Serve.plan ~domains:0 ~hook:"xdp" ~count:1 ()));
  Alcotest.(check bool) "queue_capacity < 1 rejected" true
    (raises (fun () -> Serve.plan ~queue_capacity:0 ~hook:"xdp" ~count:1 ()));
  Alcotest.(check bool) "seed with gen rejected" true
    (raises (fun () ->
         Serve.plan ~seed:1L ~gen:(fun _ -> Bytes.create 8) ~hook:"xdp" ~count:1 ()));
  let p = Serve.default ~hook:"xdp" ~count:5 in
  Alcotest.(check int) "default domains" 1 p.Serve.domains;
  Alcotest.(check int) "default queue" 256 p.Serve.queue_capacity

(* ---------------- bounded queues ---------------- *)

let test_shard_queue_drop_newest () =
  let q = Shard.create ~capacity:2 Shard.Drop_newest in
  Alcotest.(check bool) "push 1" true (Shard.push q 1);
  Alcotest.(check bool) "push 2" true (Shard.push q 2);
  Alcotest.(check bool) "push 3 dropped" false (Shard.push q 3);
  Alcotest.(check int) "dropped counted" 1 (Shard.dropped q);
  Alcotest.(check int) "peak" 2 (Shard.peak q);
  Shard.close q;
  Alcotest.(check (option int)) "pop 1" (Some 1) (Shard.pop q);
  Alcotest.(check (option int)) "pop 2" (Some 2) (Shard.pop q);
  Alcotest.(check (option int)) "drained" None (Shard.pop q)

(* Sharded Drop_newest: every generated event is either served or counted
   as dropped, and drops leave the reconstructed checksum untouched for
   the events that were served. *)
let test_drop_newest_accounting () =
  let count = 400 in
  let r =
    Serve.sharded (build_engine ())
      (Serve.plan ~domains:3 ~queue_capacity:1 ~overflow:Shard.Drop_newest
         ~record_checksums:true ~size:48 ~hook:"xdp" ~count ())
  in
  let t = r.Serve.totals in
  Alcotest.(check int) "served + dropped = generated" count
    (t.Serve.events + t.Serve.dropped);
  let shard_drops =
    List.fold_left (fun a s -> a + s.Serve.s_dropped) 0 r.Serve.per_shard
  in
  Alcotest.(check int) "per-shard drops sum to the total" t.Serve.dropped
    shard_drops;
  (* a dropped event's slot stays at the fold-identity, so the recorded
     array still has one entry per generated event *)
  Alcotest.(check int) "one checksum slot per event" count
    (Array.length r.Serve.event_checksums)

(* A queue of capacity 1 is the tightest legal bound: the second push in
   a row must drop (and be counted) while the first still pops intact. *)
let test_shard_queue_capacity_one () =
  (match Shard.create ~capacity:0 Shard.Drop_newest with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 accepted");
  let q = Shard.create ~capacity:1 Shard.Drop_newest in
  Alcotest.(check bool) "push 1" true (Shard.push q 1);
  Alcotest.(check bool) "push 2 dropped" false (Shard.push q 2);
  Alcotest.(check bool) "push 3 dropped" false (Shard.push q 3);
  Alcotest.(check int) "both drops counted" 2 (Shard.dropped q);
  Alcotest.(check int) "peak is the capacity" 1 (Shard.peak q);
  Alcotest.(check int) "no producer waits under Drop_newest" 0
    (Shard.backpressure_waits q);
  Shard.close q;
  Alcotest.(check (option int)) "survivor pops" (Some 1) (Shard.pop q);
  Alcotest.(check (option int)) "drained" None (Shard.pop q)

(* Single-domain sharded plan over a capacity-1 Block queue: nothing may
   drop, the peak must cap at the capacity, and the stream must still
   reconstruct the sequential checksum exactly. *)
let test_single_domain_queue_counters () =
  let count = 100 in
  let seq =
    Serve.run (build_engine ())
      (Serve.plan ~record_checksums:true ~size:48 ~hook:"xdp" ~count ())
  in
  let r =
    Serve.sharded (build_engine ())
      (Serve.plan ~domains:1 ~queue_capacity:1 ~overflow:Shard.Block
         ~record_checksums:true ~size:48 ~hook:"xdp" ~count ())
  in
  let t = r.Serve.totals in
  Alcotest.(check int) "all events served" count t.Serve.events;
  Alcotest.(check int) "nothing dropped under Block" 0 t.Serve.dropped;
  (match r.Serve.per_shard with
  | [ s ] ->
    Alcotest.(check int) "peak capped at capacity" 1 s.Serve.s_queue_peak;
    Alcotest.(check int) "no shard drops" 0 s.Serve.s_dropped;
    Alcotest.(check bool) "wait counter is sane" true
      (s.Serve.s_backpressure_waits >= 0
      && s.Serve.s_backpressure_waits <= count)
  | l -> Alcotest.failf "expected one shard, got %d" (List.length l));
  Alcotest.(check int64) "checksum matches sequential"
    seq.Serve.totals.Serve.ret_checksum t.Serve.ret_checksum;
  Alcotest.(check bool) "per-event checksums match" true
    (r.Serve.event_checksums = seq.Serve.event_checksums)

(* ---------------- cross-domain epoch grace ---------------- *)

let test_multi_domain_grace () =
  let world = World.create_populated () in
  let store = world.World.epochs in
  let snap = Epoch.current store in
  (* two shard-like domains each retain the snapshot, as segment capture
     does; the pins must be visible across domains *)
  let d1 = Domain.spawn (fun () -> ignore (Epoch.retain store snap)) in
  let d2 = Domain.spawn (fun () -> ignore (Epoch.retain store snap)) in
  Domain.join d1;
  Domain.join d2;
  (* publish epoch 2: the genesis snapshot is superseded but still pinned *)
  let b = Epoch.begin_ store in
  ignore
    (Epoch.add_prog b
       (Ebpf.Program.of_items_exn ~name:"noop"
          ~prog_type:Ebpf.Program.Socket_filter [ mov_i r0 0; exit_ ]));
  ignore (Epoch.publish b);
  Alcotest.(check int) "grace pending while both shards pin" 1
    (Epoch.grace_pending store);
  Epoch.release store snap;
  Alcotest.(check int) "still pending after one shard unpins" 1
    (Epoch.grace_pending store);
  let d3 = Domain.spawn (fun () -> Epoch.release store snap) in
  Domain.join d3;
  Alcotest.(check int) "retired once every shard unpins" 0
    (Epoch.grace_pending store);
  Alcotest.(check int) "retired count" 1 (Epoch.retired store)

(* ---------------- registry merge ---------------- *)

let test_registry_merge () =
  let open Telemetry in
  let a = Registry.create ~label:"shard-a" () in
  let b = Registry.create ~label:"shard-b" () in
  Registry.using a (fun () ->
      Counter.incr ~n:3 (Registry.counter "m.count");
      Histogram.observe (Registry.histogram "m.ns") 8L;
      Histogram.observe (Registry.histogram "m.ns") 64L;
      Counter.incr (Registry.counter "m.only_a"));
  Registry.using b (fun () ->
      Counter.incr ~n:4 (Registry.counter "m.count");
      Histogram.observe (Registry.histogram "m.ns") 8L);
  Registry.merge a ~into:b;
  Registry.using b (fun () ->
      Alcotest.(check int) "counters sum" 7
        (Counter.value (Registry.counter "m.count"));
      Alcotest.(check int) "absent counters materialize" 1
        (Counter.value (Registry.counter "m.only_a"));
      let hist = Registry.histogram "m.ns" in
      Alcotest.(check int) "histogram counts sum" 3 (Histogram.count hist);
      Alcotest.(check int64) "histogram sums add" 80L (Histogram.sum hist);
      Alcotest.(check int64) "histogram max is max" 64L
        (Histogram.max_value hist));
  (* the source registry is left untouched *)
  Registry.using a (fun () ->
      Alcotest.(check int) "src counters unchanged" 3
        (Counter.value (Registry.counter "m.count")))

let test_ring_merge_drops () =
  let open Telemetry in
  let src = Ring.create ~capacity:4 in
  let dst = Ring.create ~capacity:2 in
  for i = 0 to 2 do
    Ring.push src ~time_ns:(Int64.of_int i) ~depth:0 ~trace:0 ~kind:Event.Point
      ~name:"x" ~value:0L
  done;
  Ring.push dst ~time_ns:99L ~depth:0 ~trace:0 ~kind:Event.Point ~name:"y"
    ~value:0L;
  Ring.merge_into ~src ~dst;
  (* dst held 1 of 2; one src event fits, two overflow and are counted *)
  Alcotest.(check int) "dst full" 2 (Ring.length dst);
  Alcotest.(check int) "overflow counted" 2 (Ring.dropped dst)

(* ---------------- scorecard merge ---------------- *)

let test_merge_healths () =
  let mk ~digest ~name ~finished ~crashed state =
    { Supervisor.attach_id = 1; digest; name;
      state; invocations = finished + crashed; finished; stopped = 0;
      crashed; exhausted = 0; skipped = 0; trips = 0; quarantined = false;
      crash_rate = 0.; exhaust_rate = 0.;
      p50_ns = 10L; p99_ns = 20L;
      ret_checksum = Int64.of_int (finished + crashed) }
  in
  let a = mk ~digest:"d1" ~name:"len" ~finished:5 ~crashed:0 Supervisor.Closed in
  let b =
    mk ~digest:"d1" ~name:"len" ~finished:3 ~crashed:2
      (Supervisor.Open { until_ns = 5L })
  in
  match Supervisor.merge_healths [ [ a ]; [ b ] ] with
  | [ m ] ->
    Alcotest.(check int) "invocations sum" 10 m.Supervisor.invocations;
    Alcotest.(check int) "finished sum" 8 m.Supervisor.finished;
    Alcotest.(check int) "crashed sum" 2 m.Supervisor.crashed;
    Alcotest.(check bool) "worst state wins" true
      (match m.Supervisor.state with Supervisor.Open _ -> true | _ -> false);
    Alcotest.(check int64) "checksums add" 10L m.Supervisor.ret_checksum
  | l -> Alcotest.failf "expected one merged row, got %d" (List.length l)

let suite =
  [
    QCheck_alcotest.to_alcotest determinism_oracle;
    Alcotest.test_case "plan validation" `Quick test_plan_validation;
    Alcotest.test_case "shard queue Drop_newest" `Quick test_shard_queue_drop_newest;
    Alcotest.test_case "sharded Drop_newest accounting" `Quick
      test_drop_newest_accounting;
    Alcotest.test_case "shard queue at capacity 1" `Quick
      test_shard_queue_capacity_one;
    Alcotest.test_case "single-domain queue counters" `Quick
      test_single_domain_queue_counters;
    Alcotest.test_case "cross-domain epoch grace" `Quick test_multi_domain_grace;
    Alcotest.test_case "registry merge" `Quick test_registry_merge;
    Alcotest.test_case "ring merge drop accounting" `Quick test_ring_merge_drops;
    Alcotest.test_case "scorecard merge" `Quick test_merge_healths;
  ]
