(* Staged-pipeline tests: the shared hash library, content-addressed
   program digests, per-stage typed errors, the verdict cache (hit/miss
   accounting, observational equivalence of hits, invalidation on
   vconfig/Vbug/Bugdb mutation), pooled invocation contexts, and the
   attach/dispatch engine. *)

open Untenable
module World = Framework.World
module Pipeline = Framework.Pipeline
module Invoke = Framework.Invoke
module Attach = Framework.Attach
module Dispatch = Framework.Dispatch
module Serve = Framework.Serve
module Loader = Framework.Loader
module Verdict_cache = Framework.Verdict_cache
module Vconfig = Bpf_verifier.Verifier
module Program = Ebpf.Program
module Toolchain = Rustlite.Toolchain
open Ebpf.Asm

let h = Helpers.Registry.id_of_name

let stage = Alcotest.testable (Fmt.of_to_string Pipeline.stage_name) ( = )

let trivial_prog ?(name = "triv") () =
  Program.of_items_exn ~name ~prog_type:Program.Kprobe [ mov_i r0 7; exit_ ]

(* ---------------- hash / digests ---------------- *)

let test_sha256_vectors () =
  (* FIPS 180-2 test vectors *)
  Alcotest.(check string) "empty"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Hash.Sha256.hex_digest "");
  Alcotest.(check string) "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Hash.Sha256.hex_digest "abc");
  (* rustlite's Sign re-exports the same implementation *)
  Alcotest.(check string) "sign re-export" (Hash.Sha256.hex_digest "abc")
    (Rustlite.Sign.to_hex (Rustlite.Sign.sha256 "abc"))

let test_program_digest () =
  let a = trivial_prog () and a' = trivial_prog () in
  Alcotest.(check string) "stable across rebuilds" (Program.digest a)
    (Program.digest a');
  let b =
    Program.of_items_exn ~name:"triv" ~prog_type:Program.Kprobe
      [ mov_i r0 8; exit_ ]
  in
  Alcotest.(check bool) "content-sensitive" false
    (String.equal (Program.digest a) (Program.digest b));
  let c =
    Program.of_items_exn ~name:"triv" ~prog_type:Program.Tracepoint
      [ mov_i r0 7; exit_ ]
  in
  Alcotest.(check bool) "prog-type-sensitive" false
    (String.equal (Program.digest a) (Program.digest c))

let test_artifact_digest () =
  let src = { Toolchain.name = "d"; maps = []; body = Rustlite.Ast.Lit_int 1L } in
  match Toolchain.compile src with
  | Error _ -> Alcotest.fail "compile failed"
  | Ok ext ->
    Alcotest.(check string) "digest of payload"
      (Hash.Sha256.hex_digest ext.Toolchain.payload)
      (Toolchain.artifact_digest ext)

(* ---------------- per-stage errors ---------------- *)

let test_admission_error () =
  let world = World.create_populated () in
  World.set_vconfig world { (World.vconfig world) with Vconfig.max_insns = 3 };
  let prog =
    Program.of_items_exn ~name:"big" ~prog_type:Program.Kprobe
      [ mov_i r0 0; mov_i r1 0; mov_i r2 0; mov_i r3 0; exit_ ]
  in
  (match Pipeline.load_ebpf world prog with
  | Error (Pipeline.Too_many_insns { count = 5; max = 3 } as e) ->
    Alcotest.check stage "stage" Pipeline.Admission (Pipeline.stage_of_error e)
  | _ -> Alcotest.fail "expected Too_many_insns {5; 3}");
  (* the flat API folds it into the verdict the verifier's own cap issued *)
  match Loader.load_ebpf world prog with
  | Error (Loader.Rejected r) ->
    Alcotest.(check string) "legacy reason text" "too many instructions (5 > 3)"
      r.Vconfig.reason;
    Alcotest.(check int) "legacy at_pc" 0 r.Vconfig.at_pc
  | _ -> Alcotest.fail "expected legacy Rejected"

let test_fixup_error () =
  let world = World.create_populated () in
  let prog =
    Program.of_items_exn ~name:"unres" ~prog_type:Program.Kprobe
      [ call_named "no_such_helper"; mov_i r0 0; exit_ ]
  in
  (match Pipeline.load_ebpf world prog with
  | Error (Pipeline.Unknown_helper "no_such_helper" as e) ->
    Alcotest.check stage "stage" Pipeline.Fixup (Pipeline.stage_of_error e)
  | _ -> Alcotest.fail "expected Unknown_helper");
  match Loader.load_ebpf world prog with
  | Error (Loader.Fixup_failed "no_such_helper") -> ()
  | _ -> Alcotest.fail "expected legacy Fixup_failed"

let test_gate_reject_error () =
  let world = World.create_populated () in
  let prog =
    (* loads through an uninitialized pointer: always rejected *)
    Program.of_items_exn ~name:"bad" ~prog_type:Program.Kprobe
      [ mov_i r2 0; ldxdw r0 r2 0; exit_ ]
  in
  match Pipeline.load_ebpf world prog with
  | Error (Pipeline.Verifier_rejected _ as e) ->
    Alcotest.check stage "stage" Pipeline.Gate (Pipeline.stage_of_error e)
  | _ -> Alcotest.fail "expected Verifier_rejected"

let test_gate_crash_not_cached () =
  let world = World.create_populated () in
  (World.vconfig world).Vconfig.bugs.Bpf_verifier.Vbug.loop_inline_uaf <- true;
  let prog =
    Program.of_items_exn ~name:"loop" ~prog_type:Program.Kprobe
      [ mov_i r1 4; mov_label r2 "cb"; mov_i r3 0; mov_i r4 0;
        call (h "bpf_loop"); mov_i r0 0; exit_; label "cb"; mov_i r0 0; exit_ ]
  in
  (match Pipeline.load_ebpf world prog with
  | Error (Pipeline.Verifier_crashed _ as e) ->
    Alcotest.check stage "stage" Pipeline.Gate (Pipeline.stage_of_error e)
  | _ -> Alcotest.fail "expected Verifier_crashed");
  Alcotest.(check int) "crash verdict never cached" 0
    (Verdict_cache.size world.World.vcache);
  (* a second load must crash again (each one oopses the kernel) *)
  match Pipeline.load_ebpf world prog with
  | Error (Pipeline.Verifier_crashed _) -> ()
  | _ -> Alcotest.fail "expected second Verifier_crashed"

let test_gate_signature_error () =
  let src = { Toolchain.name = "ok"; maps = []; body = Rustlite.Ast.Lit_int 1L } in
  let ext = Result.get_ok (Toolchain.compile src) in
  let tampered = { ext with Toolchain.src = { src with Toolchain.name = "evil" } } in
  let world = World.create_populated () in
  match Pipeline.load_rustlite world tampered with
  | Error (Pipeline.Bad_signature as e) ->
    Alcotest.check stage "stage" Pipeline.Gate (Pipeline.stage_of_error e)
  | _ -> Alcotest.fail "expected Bad_signature"

let test_link_duplicate_map () =
  let def name =
    { Maps.Bpf_map.name; kind = Maps.Bpf_map.Array; key_size = 4;
      value_size = 8; max_entries = 4; lock_off = None }
  in
  let src =
    { Toolchain.name = "dup"; maps = [ def "counts"; def "counts" ];
      body = Rustlite.Ast.Lit_int 1L }
  in
  let ext = Result.get_ok (Toolchain.compile src) in
  let world = World.create_populated () in
  match Pipeline.load_rustlite world ext with
  | Error (Pipeline.Duplicate_map "counts" as e) ->
    Alcotest.check stage "stage" Pipeline.Link (Pipeline.stage_of_error e)
  | _ -> Alcotest.fail "expected Duplicate_map"

(* ---------------- verdict cache ---------------- *)

let test_cache_hit_accounting () =
  let world = World.create_populated () in
  let prog = trivial_prog () in
  let vstats1 =
    match Pipeline.load_ebpf world prog with
    | Ok (Pipeline.Ebpf_prog { vstats; _ }) -> vstats
    | _ -> Alcotest.fail "first load failed"
  in
  let vstats2 =
    match Pipeline.load_ebpf world prog with
    | Ok (Pipeline.Ebpf_prog { vstats; _ }) -> vstats
    | _ -> Alcotest.fail "second load failed"
  in
  Alcotest.(check int) "one miss" 1 (Verdict_cache.misses world.World.vcache);
  Alcotest.(check int) "one hit" 1 (Verdict_cache.hits world.World.vcache);
  Alcotest.(check int) "one entry" 1 (Verdict_cache.size world.World.vcache);
  Alcotest.(check bool) "replayed stats identical" true (vstats1 = vstats2);
  (* distinct prog ids: a cache hit still links a fresh program *)
  match (Pipeline.load_ebpf world prog, Pipeline.load_ebpf world prog) with
  | Ok (Pipeline.Ebpf_prog a), Ok (Pipeline.Ebpf_prog b) ->
    Alcotest.(check bool) "fresh prog ids" true (a.prog_id <> b.prog_id)
  | _ -> Alcotest.fail "repeat loads failed"

let test_cache_rejects_cached () =
  let world = World.create_populated () in
  let bad =
    Program.of_items_exn ~name:"bad" ~prog_type:Program.Kprobe
      [ mov_i r2 0; ldxdw r0 r2 0; exit_ ]
  in
  (match Pipeline.load_ebpf world bad with
  | Error (Pipeline.Verifier_rejected _) -> ()
  | _ -> Alcotest.fail "expected reject");
  (match Pipeline.load_ebpf world bad with
  | Error (Pipeline.Verifier_rejected _) -> ()
  | _ -> Alcotest.fail "expected cached reject");
  Alcotest.(check int) "reject was cached" 1 (Verdict_cache.hits world.World.vcache)

(* The mutability footgun: vconfig is a mutable field, Vbug is a record of
   mutable toggles, Bugdb injection is mutable.  Mutating any of them must
   invalidate cached verdicts, not replay a stale accept. *)
let test_invalidation_vconfig () =
  let world = World.create_populated () in
  (* a bounded loop: accepted by default, rejected pre-5.3 (allow_loops) *)
  let prog =
    Program.of_items_exn ~name:"loop4" ~prog_type:Program.Kprobe
      [ mov_i r0 4; label "l"; sub_i r0 1; jne_i r0 0 "l"; exit_ ]
  in
  (match Pipeline.load_ebpf world prog with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "load failed");
  World.set_vconfig world
    { (World.vconfig world) with Vconfig.allow_loops = false };
  (match Pipeline.load_ebpf world prog with
  | Error (Pipeline.Verifier_rejected _) -> ()
  | Ok _ -> Alcotest.fail "STALE VERDICT: config mutation replayed the old accept"
  | Error e ->
    Alcotest.failf "unexpected: %s" (Format.asprintf "%a" Pipeline.pp_error e));
  (* and back: restoring the config accepts again (and hits the old entry) *)
  World.set_vconfig world { (World.vconfig world) with Vconfig.allow_loops = true };
  let hits_before = Verdict_cache.hits world.World.vcache in
  (match Pipeline.load_ebpf world prog with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "restored config should accept");
  Alcotest.(check int) "restored config hits the original entry"
    (hits_before + 1)
    (Verdict_cache.hits world.World.vcache)

let test_invalidation_vbug () =
  let world = World.create_populated () in
  let prog = trivial_prog () in
  ignore (Pipeline.load_ebpf world prog);
  let misses_before = Verdict_cache.misses world.World.vcache in
  (World.vconfig world).Vconfig.bugs.Bpf_verifier.Vbug.ptr_arith_or_null <- true;
  ignore (Pipeline.load_ebpf world prog);
  Alcotest.(check int) "vbug toggle forces a miss" (misses_before + 1)
    (Verdict_cache.misses world.World.vcache)

let test_invalidation_bugdb () =
  let world = World.create_populated () in
  let prog = trivial_prog () in
  ignore (Pipeline.load_ebpf world prog);
  let misses_before = Verdict_cache.misses world.World.vcache in
  Helpers.Bugdb.force_on world.World.bugs "hbug:ringbuf-double-submit";
  ignore (Pipeline.load_ebpf world prog);
  Alcotest.(check int) "bugdb injection forces a miss" (misses_before + 1)
    (Verdict_cache.misses world.World.vcache);
  Helpers.Bugdb.force_off world.World.bugs "hbug:ringbuf-double-submit";
  let hits_before = Verdict_cache.hits world.World.vcache in
  ignore (Pipeline.load_ebpf world prog);
  Alcotest.(check int) "restoring the bug set hits again" (hits_before + 1)
    (Verdict_cache.hits world.World.vcache)

(* aconfig is the same footgun: the analysis configuration is a mutable
   world field the verdict fingerprint folds in, so toggling a lint pass
   must invalidate cached verdicts exactly like a vconfig mutation. *)
let test_invalidation_aconfig () =
  let world = World.create_populated () in
  let prog = trivial_prog () in
  ignore (Pipeline.load_ebpf world prog);
  let misses_before = Verdict_cache.misses world.World.vcache in
  World.set_aconfig world
    { (World.aconfig world) with Analysis.Driver.elide = false };
  ignore (Pipeline.load_ebpf world prog);
  Alcotest.(check int) "analysis config change forces a verdict miss"
    (misses_before + 1)
    (Verdict_cache.misses world.World.vcache);
  World.set_aconfig world
    { (World.aconfig world) with Analysis.Driver.elide = true };
  let hits_before = Verdict_cache.hits world.World.vcache in
  ignore (Pipeline.load_ebpf world prog);
  Alcotest.(check int) "restored analysis config hits again" (hits_before + 1)
    (Verdict_cache.hits world.World.vcache)

let test_analysis_report_cached () =
  let world = World.create_populated () in
  let prog = trivial_prog () in
  (match Pipeline.load_ebpf world prog with
  | Ok (Pipeline.Ebpf_prog { analysis = Some _; _ }) -> ()
  | Ok _ -> Alcotest.fail "expected an analysis report on the handle"
  | Error _ -> Alcotest.fail "load failed");
  Alcotest.(check int) "one analysis miss" 1
    (Verdict_cache.analysis_misses world.World.vcache);
  (match Pipeline.load_ebpf world prog with
  | Ok (Pipeline.Ebpf_prog { analysis = Some _; _ }) -> ()
  | _ -> Alcotest.fail "second load failed");
  Alcotest.(check int) "second load hits the analysis table" 1
    (Verdict_cache.analysis_hits world.World.vcache);
  Alcotest.(check int) "one analysis entry" 1
    (Verdict_cache.analysis_size world.World.vcache);
  (* all_off skips the stage entirely: no report on the handle and no
     further analysis-table traffic *)
  World.set_aconfig world Analysis.Driver.all_off;
  match Pipeline.load_ebpf world prog with
  | Ok (Pipeline.Ebpf_prog { analysis = None; _ }) ->
    Alcotest.(check int) "skipped stage leaves the table alone" 1
      (Verdict_cache.analysis_misses world.World.vcache)
  | Ok _ -> Alcotest.fail "all_off must skip the analysis stage"
  | Error _ -> Alcotest.fail "load failed"

(* qcheck: for random helper-free ALU programs, a cache-hit load is
   observationally identical to a fresh verification — same verdict, same
   stats, same run outcome. *)
let gen_alu_prog =
  let open QCheck.Gen in
  let reg_of = function
    | 0 -> r0 | 1 -> r2 | 2 -> r3 | 3 -> r4 | _ -> r5
  in
  let gen_op =
    oneof
      [ map2 (fun d v -> add_i (reg_of d) v) (int_bound 4) (int_range (-1000) 1000);
        map2 (fun d v -> and_i (reg_of d) v) (int_bound 4) (int_range 0 0xffff);
        map2 (fun d v -> or_i (reg_of d) v) (int_bound 4) (int_range 0 0xffff);
        map2 (fun d v -> lsh_i (reg_of d) v) (int_bound 4) (int_range 0 31);
        map2 (fun d s -> mov_r (reg_of d) (reg_of s)) (int_bound 4) (int_bound 4);
        map2 (fun d s -> add_r (reg_of d) (reg_of s)) (int_bound 4) (int_bound 4);
        map2 (fun d v -> mov_i (reg_of d) v) (int_bound 4) (int_range (-1000) 1000) ]
  in
  let init = List.init 5 (fun i -> mov_i (reg_of i) i) in
  map
    (fun body ->
      Program.of_items_exn ~name:"qprog" ~prog_type:Program.Kprobe
        (init @ body @ [ exit_ ]))
    (list_size (int_range 0 30) gen_op)

let cache_equivalence_property =
  QCheck.Test.make ~count:100
    ~name:"cache-hit load observationally identical to fresh verify"
    (QCheck.make gen_alu_prog) (fun prog ->
      let w1 = World.create_populated () in
      let fresh = Pipeline.load_ebpf ~use_cache:false w1 prog in
      let first = Pipeline.load_ebpf w1 prog in
      let hit = Pipeline.load_ebpf w1 prog in
      match (fresh, first, hit) with
      | Ok (Pipeline.Ebpf_prog f), Ok (Pipeline.Ebpf_prog a), Ok (Pipeline.Ebpf_prog b)
        ->
        f.vstats = a.vstats && a.vstats = b.vstats
        && (Invoke.run w1 (Pipeline.Ebpf_prog a)).Invoke.outcome
           = (Invoke.run w1 (Pipeline.Ebpf_prog b)).Invoke.outcome
      | Error (Pipeline.Verifier_rejected x), Error (Pipeline.Verifier_rejected y),
        Error (Pipeline.Verifier_rejected z) ->
        x = y && y = z
      | _ -> false)

(* ---------------- pooled invocation ---------------- *)

let test_reuse_matches_fresh () =
  let world = World.create_populated () in
  let prog =
    (* ctx-reading + prandom: exercises ctx region fill and hctx reset *)
    Program.of_items_exn ~name:"mix" ~prog_type:Program.Socket_filter
      [ ldxw r6 r1 0; call (h "bpf_get_prandom_u32"); and_i r0 0xff;
        add_r r0 r6; exit_ ]
  in
  let loaded = Result.get_ok (Pipeline.load_ebpf world prog) in
  let opts = { Invoke.default_opts with Invoke.skb_payload = Some (Bytes.make 50 'x') } in
  let fresh1 = Invoke.run ~opts world loaded in
  let ictx = Invoke.create world in
  let pooled1 = Invoke.run ~opts ~ictx world loaded in
  let pooled2 = Invoke.run ~opts ~ictx world loaded in
  Alcotest.(check bool) "pooled matches one-shot" true
    (fresh1.Invoke.outcome = pooled1.Invoke.outcome);
  Alcotest.(check bool) "reuse is deterministic (rng reseeded)" true
    (pooled1.Invoke.outcome = pooled2.Invoke.outcome);
  (* a smaller packet through the same pooled skb buffer *)
  let small = { opts with Invoke.skb_payload = Some (Bytes.make 7 'y') } in
  Alcotest.(check bool) "shrunk packet sees its own length" true
    ((Invoke.run ~opts:small ~ictx world loaded).Invoke.outcome
    = (Invoke.run ~opts:small world loaded).Invoke.outcome)

let test_reuse_keeps_address_space_flat () =
  let world = World.create_populated () in
  let prog =
    Program.of_items_exn ~name:"len" ~prog_type:Program.Socket_filter
      [ ldxw r0 r1 0; exit_ ]
  in
  let loaded = Result.get_ok (Pipeline.load_ebpf world prog) in
  let opts = { Invoke.default_opts with Invoke.skb_payload = Some (Bytes.make 32 'p') } in
  let ictx = Invoke.create world in
  ignore (Invoke.run ~opts ~ictx world loaded);
  let regions_after_one =
    List.length world.World.kernel.Kernel_sim.Kernel.mem.Kernel_sim.Kmem.regions
  in
  for _ = 1 to 50 do
    ignore (Invoke.run ~opts ~ictx world loaded)
  done;
  let regions_after_many =
    List.length world.World.kernel.Kernel_sim.Kernel.mem.Kernel_sim.Kmem.regions
  in
  Alcotest.(check int) "no per-invocation region growth" regions_after_one
    regions_after_many

let test_ictx_world_mismatch () =
  let w1 = World.create_populated () and w2 = World.create_populated () in
  let loaded = Result.get_ok (Pipeline.load_ebpf w1 (trivial_prog ())) in
  let ictx = Invoke.create w2 in
  Alcotest.check_raises "wrong world rejected"
    (Invalid_argument "Invoke.run: invocation context belongs to a different world")
    (fun () -> ignore (Invoke.run ~ictx w1 loaded))

(* ---------------- attach / dispatch ---------------- *)

let load_filter world name items =
  Result.get_ok
    (Pipeline.load_ebpf world
       (Program.of_items_exn ~name ~prog_type:Program.Socket_filter items))

let test_attach_order_and_detach () =
  let world = World.create_populated () in
  let reg = Attach.create () in
  let a = Attach.attach reg ~hook:"xdp" (load_filter world "a" [ mov_i r0 1; exit_ ]) in
  let _b = Attach.attach reg ~hook:"xdp" (load_filter world "b" [ mov_i r0 2; exit_ ]) in
  let _c = Attach.attach reg ~hook:"tp" (load_filter world "c" [ mov_i r0 3; exit_ ]) in
  Alcotest.(check (list string)) "hooks sorted" [ "tp"; "xdp" ] (Attach.hooks reg);
  Alcotest.(check int) "count" 3 (Attach.count reg);
  Alcotest.(check (list int)) "attach order preserved" [ a.Attach.attach_id;
    a.Attach.attach_id + 1 ]
    (List.map (fun (x : Attach.attachment) -> x.Attach.attach_id)
       (Attach.attached reg ~hook:"xdp"));
  Alcotest.(check bool) "detach hit" true (Attach.detach reg ~attach_id:a.Attach.attach_id);
  Alcotest.(check bool) "detach miss" false (Attach.detach reg ~attach_id:999);
  Alcotest.(check int) "one left on xdp" 1 (List.length (Attach.attached reg ~hook:"xdp"))

let build_engine () =
  let world = World.create_populated () in
  let engine = Dispatch.create world in
  List.iter
    (fun (name, items) ->
      ignore
        (Attach.attach engine.Dispatch.attach ~hook:"xdp"
           (load_filter world name items)))
    [ ("len", [ ldxw r0 r1 0; exit_ ]);
      ("parity", [ ldxw r6 r1 0; mov_r r0 r6; and_i r0 1; exit_ ]);
      ("fixed", [ mov_i r0 9; exit_ ]) ];
  engine

let test_dispatch_order () =
  let engine = build_engine () in
  let reports = Dispatch.dispatch_event engine ~hook:"xdp" (Bytes.make 33 'z') in
  let returns =
    List.map
      (fun (r : Invoke.run_report) ->
        match r.Invoke.outcome with Invoke.Finished v -> v | _ -> -99L)
      reports
  in
  Alcotest.(check (list int64)) "attach order: len, parity, fixed"
    [ 33L; 1L; 9L ] returns

let test_dispatch_deterministic () =
  let run_once () =
    (Serve.run (build_engine ())
       (Serve.plan ~seed:42L ~size:48 ~hook:"xdp" ~count:300 ()))
      .Serve.totals
  in
  let t1 = run_once () and t2 = run_once () in
  Alcotest.(check int) "events" 300 t1.Serve.events;
  Alcotest.(check int) "invocations" 900 t1.Serve.invocations;
  Alcotest.(check int) "all finished" 900 t1.Serve.finished;
  Alcotest.(check int64) "checksums match" t1.Serve.ret_checksum
    t2.Serve.ret_checksum;
  Alcotest.(check bool) "positive rate" true (t1.Serve.events_per_sec > 0.)

let test_dispatch_telemetry () =
  Telemetry.Registry.reset ();
  let engine = build_engine () in
  let _ = Serve.run engine (Serve.plan ~size:16 ~hook:"xdp" ~count:50 ()) in
  let cval name = Telemetry.Counter.value (Telemetry.Registry.counter name) in
  Alcotest.(check int) "dispatch.events" 50 (cval "dispatch.events");
  Alcotest.(check int) "dispatch.invocations" 150 (cval "dispatch.invocations");
  Alcotest.(check bool) "pipeline.cache_misses counted" true
    (cval "pipeline.cache_misses" >= 3);
  Alcotest.(check bool) "rate exported" true (cval "dispatch.events_per_sec" >= 0)

let suite =
  [
    Alcotest.test_case "sha256 vectors + sign re-export" `Quick test_sha256_vectors;
    Alcotest.test_case "program digest" `Quick test_program_digest;
    Alcotest.test_case "artifact digest" `Quick test_artifact_digest;
    Alcotest.test_case "admission: too many insns" `Quick test_admission_error;
    Alcotest.test_case "fixup: unknown helper" `Quick test_fixup_error;
    Alcotest.test_case "gate: verifier reject" `Quick test_gate_reject_error;
    Alcotest.test_case "gate: crash is never cached" `Quick test_gate_crash_not_cached;
    Alcotest.test_case "gate: bad signature" `Quick test_gate_signature_error;
    Alcotest.test_case "link: duplicate map" `Quick test_link_duplicate_map;
    Alcotest.test_case "cache hit/miss accounting" `Quick test_cache_hit_accounting;
    Alcotest.test_case "rejects are cached too" `Quick test_cache_rejects_cached;
    Alcotest.test_case "invalidation: vconfig mutation" `Quick test_invalidation_vconfig;
    Alcotest.test_case "invalidation: vbug toggle" `Quick test_invalidation_vbug;
    Alcotest.test_case "invalidation: bugdb injection" `Quick test_invalidation_bugdb;
    Alcotest.test_case "invalidation: analysis config" `Quick
      test_invalidation_aconfig;
    Alcotest.test_case "analysis reports cached beside verdicts" `Quick
      test_analysis_report_cached;
    QCheck_alcotest.to_alcotest cache_equivalence_property;
    Alcotest.test_case "pooled run matches one-shot" `Quick test_reuse_matches_fresh;
    Alcotest.test_case "pooled run keeps address space flat" `Quick
      test_reuse_keeps_address_space_flat;
    Alcotest.test_case "ictx world mismatch" `Quick test_ictx_world_mismatch;
    Alcotest.test_case "attach order and detach" `Quick test_attach_order_and_detach;
    Alcotest.test_case "dispatch order" `Quick test_dispatch_order;
    Alcotest.test_case "dispatch deterministic" `Quick test_dispatch_deterministic;
    Alcotest.test_case "dispatch telemetry" `Quick test_dispatch_telemetry;
  ]
