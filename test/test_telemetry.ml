(* Tests for the telemetry subsystem: counter and histogram math, span
   nesting on an injected clock, ring overflow semantics, exporters, and
   the snapshot file round-trip.

   The registry is process-global, so every test starts from a reset and
   restores the defaults it changes (enabled flag, trace capacity, clock)
   to avoid leaking state into the other suites. *)

open Untenable
module Counter = Telemetry.Counter
module Histogram = Telemetry.Histogram
module Event = Telemetry.Event
module Ring = Telemetry.Ring
module Registry = Telemetry.Registry
module Export = Telemetry.Export

let t64 = Alcotest.testable (fun ppf v -> Format.fprintf ppf "%Ld" v) Int64.equal

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let with_fresh_registry f =
  Registry.reset ();
  Registry.set_trace_capacity 64;
  Registry.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Registry.reset ();
      Registry.set_trace_capacity 4096;
      Registry.set_enabled true;
      Registry.set_clock (fun () -> 0L))
    f

(* ---------------- counters ---------------- *)

let test_counter_math () =
  let c = Counter.make "t.c" in
  Alcotest.(check int) "starts at 0" 0 (Counter.value c);
  Counter.incr c;
  Counter.incr c ~n:41;
  Counter.bump c;
  Counter.add c 7;
  Alcotest.(check int) "1+41+1+7" 50 (Counter.value c);
  Alcotest.(check string) "name" "t.c" (Counter.name c);
  Counter.reset c;
  Alcotest.(check int) "reset" 0 (Counter.value c)

let test_registry_interning () =
  with_fresh_registry (fun () ->
      let a = Registry.counter "t.interned" in
      Registry.incr a ~n:5;
      let b = Registry.counter "t.interned" in
      Alcotest.(check int) "same object" 5 (Counter.value b);
      Registry.reset ();
      (* reset zeroes but keeps the interned object alive *)
      Registry.bump a;
      Alcotest.(check int) "survives reset" 1
        (Counter.value (Registry.counter "t.interned")))

let test_disabled_is_noop () =
  with_fresh_registry (fun () ->
      Registry.set_enabled false;
      let c = Registry.counter "t.off" in
      let h = Registry.histogram "t.off_h" in
      Registry.incr c;
      Registry.bump c;
      Registry.add c 9;
      Registry.incr_name "t.off_name";
      Registry.observe h 42L;
      Registry.point "t.off_point" ~value:1L;
      Registry.with_span "t.off_span" (fun () -> ());
      Registry.set_enabled true;
      let s = Registry.snapshot () in
      Alcotest.(check int) "counter untouched" 0 (Counter.value c);
      Alcotest.(check int) "histogram untouched" 0 (Histogram.count h);
      Alcotest.(check int) "no events" 0 (List.length s.Registry.events))

(* ---------------- histograms ---------------- *)

let test_histogram_buckets () =
  Alcotest.(check int) "v<=0 -> bucket 0" 0 (Histogram.bucket_index 0L);
  Alcotest.(check int) "neg -> bucket 0" 0 (Histogram.bucket_index (-3L));
  Alcotest.(check int) "1 -> bucket 1" 1 (Histogram.bucket_index 1L);
  Alcotest.(check int) "2 -> bucket 2" 2 (Histogram.bucket_index 2L);
  Alcotest.(check int) "3 -> bucket 2" 2 (Histogram.bucket_index 3L);
  Alcotest.(check int) "4 -> bucket 3" 3 (Histogram.bucket_index 4L);
  Alcotest.(check int) "7 -> bucket 3" 3 (Histogram.bucket_index 7L);
  Alcotest.(check int) "max_int64 -> bucket 63" 63 (Histogram.bucket_index Int64.max_int);
  Alcotest.check t64 "bound 0" 0L (Histogram.bucket_bound 0);
  Alcotest.check t64 "bound 3 = 2^3-1" 7L (Histogram.bucket_bound 3);
  (* every bucket's bound is the largest value still indexed into it *)
  for i = 1 to 62 do
    let b = Histogram.bucket_bound i in
    Alcotest.(check int) "bound in bucket" i (Histogram.bucket_index b);
    Alcotest.(check int) "bound+1 in next" (i + 1) (Histogram.bucket_index (Int64.add b 1L))
  done

let test_histogram_stats () =
  let h = Histogram.make "t.h" in
  List.iter (Histogram.observe h) [ 1L; 2L; 3L; 10L ];
  Alcotest.(check int) "count" 4 (Histogram.count h);
  Alcotest.check t64 "sum" 16L (Histogram.sum h);
  Alcotest.check t64 "max" 10L (Histogram.max_value h);
  Alcotest.(check (float 0.001)) "mean" 4.0 (Histogram.mean h);
  Alcotest.(check (list (pair int int)))
    "nonzero buckets" [ (1, 1); (2, 2); (4, 1) ] (Histogram.nonzero_buckets h);
  let c = Histogram.copy h in
  Histogram.observe h 1L;
  Alcotest.(check int) "copy is independent" 4 (Histogram.count c);
  Histogram.reset h;
  Alcotest.(check int) "reset count" 0 (Histogram.count h);
  Alcotest.(check (list (pair int int))) "reset buckets" [] (Histogram.nonzero_buckets h)

let test_histogram_of_parts () =
  let h =
    Histogram.of_parts ~name:"t.p" ~count:3 ~sum:13L ~max:8L ~buckets:[ (1, 2); (4, 1) ]
  in
  Alcotest.(check int) "count" 3 (Histogram.count h);
  Alcotest.check t64 "sum" 13L (Histogram.sum h);
  Alcotest.check t64 "max" 8L (Histogram.max_value h);
  Alcotest.(check (list (pair int int)))
    "buckets" [ (1, 2); (4, 1) ] (Histogram.nonzero_buckets h)

(* ---------------- spans on a virtual clock ---------------- *)

let test_span_nesting () =
  with_fresh_registry (fun () ->
      let now = ref 100L in
      Registry.set_clock (fun () -> !now);
      let advance ns = now := Int64.add !now ns in
      Registry.with_span "outer" (fun () ->
          advance 10L;
          Registry.with_span "inner" (fun () -> advance 5L);
          advance 1L);
      let s = Registry.snapshot () in
      let kinds =
        List.map (fun (e : Event.t) -> (Event.kind_to_string e.kind, e.name, e.depth)) s.Registry.events
      in
      Alcotest.(check (list (triple string string int)))
        "event order and depth"
        [ ("enter", "outer", 0); ("enter", "inner", 1); ("exit", "inner", 1); ("exit", "outer", 0) ]
        kinds;
      let exit_value name =
        List.find_map
          (fun (e : Event.t) ->
            if e.kind = Event.Exit && e.name = name then Some e.value else None)
          s.Registry.events
        |> Option.get
      in
      Alcotest.check t64 "inner duration" 5L (exit_value "inner");
      Alcotest.check t64 "outer duration" 16L (exit_value "outer");
      let hist name = List.assoc name s.Registry.histograms in
      Alcotest.(check int) "outer.ns observed" 1 (Histogram.count (hist "outer.ns"));
      Alcotest.check t64 "outer.ns sum" 16L (Histogram.sum (hist "outer.ns")))

let test_span_exception_safe () =
  with_fresh_registry (fun () ->
      let now = ref 0L in
      Registry.set_clock (fun () -> !now);
      (try
         Registry.with_span "boom" (fun () ->
             now := 7L;
             failwith "inside")
       with Failure _ -> ());
      let s = Registry.snapshot () in
      Alcotest.(check int) "enter+exit recorded" 2 (List.length s.Registry.events);
      let e = List.nth s.Registry.events 1 in
      Alcotest.(check string) "exit event" "exit" (Event.kind_to_string e.Event.kind);
      Alcotest.check t64 "duration recorded" 7L e.Event.value;
      (* depth unwound: a fresh span starts back at depth 0 *)
      Registry.with_span "after" (fun () -> ());
      let s = Registry.snapshot () in
      let after = List.nth s.Registry.events 2 in
      Alcotest.(check int) "depth unwound" 0 after.Event.depth)

(* ---------------- trace ring ---------------- *)

let test_ring_overflow () =
  with_fresh_registry (fun () ->
      Registry.set_trace_capacity 3;
      for i = 1 to 5 do
        Registry.point "p" ~value:(Int64.of_int i)
      done;
      let s = Registry.snapshot () in
      Alcotest.(check int) "retained = capacity" 3 (List.length s.Registry.events);
      Alcotest.(check int) "dropped" 2 s.Registry.dropped_events;
      (* drop-newest, as in Maps.Ringbuf: the oldest events survive *)
      Alcotest.(check (list t64))
        "oldest retained" [ 1L; 2L; 3L ]
        (List.map (fun (e : Event.t) -> e.value) s.Registry.events);
      (* seq keeps counting through drops, so gaps are visible *)
      Alcotest.(check (list int))
        "seq assigned to drops too" [ 0; 1; 2 ]
        (List.map (fun (e : Event.t) -> e.seq) s.Registry.events);
      Registry.point "p" ~value:9L;
      let s = Registry.snapshot () in
      Alcotest.(check int) "still full" 3 (List.length s.Registry.events);
      Alcotest.(check int) "drop counted" 3 s.Registry.dropped_events)

(* ---------------- exporters ---------------- *)

let golden_snapshot () =
  Registry.reset ();
  let c = Registry.counter "g.counter" in
  Registry.incr c ~n:42;
  let h = Registry.histogram "g.hist" in
  Registry.observe h 1L;
  Registry.observe h 2L;
  Registry.observe h 3L;
  Registry.point "g.point" ~value:5L;
  Registry.snapshot ()

let test_export_json () =
  with_fresh_registry (fun () ->
      Registry.set_clock (fun () -> 11L);
      let json = Export.to_json (golden_snapshot ()) in
      List.iter
        (fun needle ->
          if not (contains json needle) then
            Alcotest.failf "JSON missing %S in:\n%s" needle json)
        [
          "\"g.counter\": 42";
          "\"g.hist\": { \"count\": 3, \"sum\": 6, \"max\": 3";
          "{ \"le\": 1, \"count\": 1 }";
          "{ \"le\": 3, \"count\": 2 }";
          "\"kind\": \"point\"";
          "\"name\": \"g.point\"";
          "\"value\": 5";
        ])

let test_export_prometheus () =
  with_fresh_registry (fun () ->
      let prom = Export.to_prometheus (golden_snapshot ()) in
      let expect =
        [
          "# TYPE untenable_g_counter counter";
          "untenable_g_counter 42";
          "# TYPE untenable_g_hist histogram";
          "untenable_g_hist_bucket{le=\"1\"} 1";
          (* cumulative: bucket 2 holds observations 2 and 3 *)
          "untenable_g_hist_bucket{le=\"3\"} 3";
          "untenable_g_hist_bucket{le=\"+Inf\"} 3";
          "untenable_g_hist_sum 6";
          "untenable_g_hist_count 3";
          "untenable_trace_events_dropped 0";
        ]
      in
      let lines = String.split_on_char '\n' prom in
      List.iter
        (fun l ->
          if not (List.mem l lines) then
            Alcotest.failf "prometheus missing line %S in:\n%s" l prom)
        expect)

let test_snapshot_file_roundtrip () =
  with_fresh_registry (fun () ->
      Registry.set_trace_capacity 2;
      Registry.set_clock (fun () -> 33L);
      let c = Registry.counter "t.file" in
      Registry.incr c ~n:17;
      Registry.observe (Registry.histogram "t.file_h") 12L;
      (* a name with spaces exercises the name-rejoining path *)
      Registry.point "guard trip fuel exhausted" ~value:2L;
      Registry.point "second" ~value:3L;
      Registry.point "third overflows" ~value:4L;
      let s = Registry.snapshot () in
      let path = Filename.temp_file "untenable-tele" ".snap" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Export.save_file s path;
          let s' = Export.load_file path in
          Alcotest.(check (list (pair string int))) "counters" s.Registry.counters s'.Registry.counters;
          Alcotest.(check int) "dropped" 1 s'.Registry.dropped_events;
          Alcotest.(check int) "events" 2 (List.length s'.Registry.events);
          let e = List.hd s'.Registry.events in
          Alcotest.(check string) "multi-word name survives" "guard trip fuel exhausted" e.Event.name;
          Alcotest.check t64 "event time" 33L e.Event.time_ns;
          let h = List.assoc "t.file_h" s'.Registry.histograms in
          Alcotest.(check int) "hist count" 1 (Histogram.count h);
          Alcotest.check t64 "hist sum" 12L (Histogram.sum h);
          Alcotest.(check (list (pair int int)))
            "hist buckets" [ (4, 1) ] (Histogram.nonzero_buckets h)))

let test_load_file_rejects_garbage () =
  let path = Filename.temp_file "untenable-tele" ".snap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "not a snapshot\n";
      close_out oc;
      match Export.load_file path with
      | _ -> Alcotest.fail "expected bad-magic failure"
      | exception Failure _ -> ())

let suite =
  [
    Alcotest.test_case "counter math" `Quick test_counter_math;
    Alcotest.test_case "registry interning and reset" `Quick test_registry_interning;
    Alcotest.test_case "disabled sink is a no-op" `Quick test_disabled_is_noop;
    Alcotest.test_case "histogram bucket boundaries" `Quick test_histogram_buckets;
    Alcotest.test_case "histogram stats" `Quick test_histogram_stats;
    Alcotest.test_case "histogram of_parts" `Quick test_histogram_of_parts;
    Alcotest.test_case "span nesting on injected clock" `Quick test_span_nesting;
    Alcotest.test_case "span is exception-safe" `Quick test_span_exception_safe;
    Alcotest.test_case "ring overflow drops newest" `Quick test_ring_overflow;
    Alcotest.test_case "JSON export" `Quick test_export_json;
    Alcotest.test_case "Prometheus export" `Quick test_export_prometheus;
    Alcotest.test_case "snapshot file round-trip" `Quick test_snapshot_file_roundtrip;
    Alcotest.test_case "snapshot file rejects garbage" `Quick test_load_file_rejects_garbage;
  ]
