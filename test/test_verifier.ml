(* Verifier tests: acceptance/rejection behaviour for every class of check
   the engine implements, the injectable-bug flips, and the qcheck
   soundness property (accepted loop-free programs never fault at runtime). *)

open Untenable
open Ebpf.Asm
module V = Bpf_verifier.Verifier
module Vbug = Bpf_verifier.Vbug
module Program = Ebpf.Program
module Bpf_map = Maps.Bpf_map
module Kernel = Kernel_sim.Kernel

let test_map_def : Bpf_map.def =
  { Bpf_map.name = "t"; kind = Bpf_map.Array; key_size = 4; value_size = 16;
    max_entries = 4; lock_off = None }

let lock_map_def : Bpf_map.def =
  { test_map_def with Bpf_map.name = "l"; lock_off = Some 0 }

let map_def = function 1 -> Some test_map_def | 2 -> Some lock_map_def | _ -> None

let verify ?config ?(prog_type = Program.Kprobe) items =
  let prog = Program.of_items_exn ~name:"t" ~prog_type items in
  V.verify ?config ~map_def prog

let config_with ?(f = fun (_ : Vbug.t) -> ()) () =
  let c = V.default_config () in
  f c.V.bugs;
  c

let expect_ok ?config ?prog_type items =
  match verify ?config ?prog_type items with
  | Ok _ -> ()
  | Error r -> Alcotest.failf "unexpected rejection: %s" (Format.asprintf "%a" V.pp_reject r)

let expect_reject ?config ?prog_type ~substring items =
  match verify ?config ?prog_type items with
  | Ok _ -> Alcotest.failf "expected rejection mentioning %S" substring
  | Error r ->
    let msg = Format.asprintf "%a" V.pp_reject r in
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    if not (contains msg substring) then
      Alcotest.failf "rejection %S does not mention %S" msg substring

let h = Helpers.Registry.id_of_name

(* ---------------- basics ---------------- *)

let test_minimal () = expect_ok [ mov_i r0 0; exit_ ]

let test_empty () = expect_reject ~substring:"empty" []

let test_fallthrough () = expect_reject ~substring:"fall-through" [ mov_i r0 0 ]

let test_jump_oob () =
  expect_reject ~substring:"out of range" [ insn (Ebpf.Insn.Ja 5); exit_ ]

let test_fp_readonly () =
  expect_reject ~substring:"read only" [ mov_i r10 0; mov_i r0 0; exit_ ]

let test_uninit_read () =
  expect_reject ~substring:"!read_ok" [ mov_r r0 r3; exit_ ]

let test_uninit_exit () =
  expect_reject ~substring:"R0" [ insn Ebpf.Insn.Exit ]

let test_too_many_insns () =
  let config = { (V.default_config ()) with V.max_insns = 4 } in
  expect_reject ~config ~substring:"too many instructions"
    [ mov_i r0 0; mov_i r1 0; mov_i r2 0; mov_i r3 0; exit_ ]

let test_unknown_helper () =
  expect_reject ~substring:"invalid func" [ call 9999; mov_i r0 0; exit_ ]

let test_unknown_map_fd () =
  expect_reject ~substring:"valid map" [ map_fd r1 77; mov_i r0 0; exit_ ]

(* ---------------- stack ---------------- *)

let test_stack_write_read () =
  expect_ok [ stdw r10 (-8) 7; ldxdw r0 r10 (-8); exit_ ]

let test_stack_uninit_read () =
  expect_reject ~substring:"invalid read from stack" [ ldxdw r0 r10 (-8); exit_ ]

let test_stack_oob_write () =
  expect_reject ~substring:"invalid stack access" [ stdw r10 (-520) 0; mov_i r0 0; exit_ ]

let test_stack_positive_offset () =
  expect_reject ~substring:"invalid stack access" [ stdw r10 8 0; mov_i r0 0; exit_ ]

let test_stack_variable_offset () =
  expect_reject ~substring:"variable stack access"
    [ ldxdw r2 r1 0; mov_r r3 r10; add_r r3 r2; stdw r3 (-8) 0 [@warning "-26"];
      mov_i r0 0; exit_ ]

let test_spill_fill_pointer () =
  (* spilling a pointer and filling it back preserves its type *)
  expect_ok
    [ stxdw r10 (-8) r1; ldxdw r2 r10 (-8); ldxdw r0 r2 0; mov_i r0 0; exit_ ]

let test_partial_pointer_spill () =
  expect_reject ~substring:"partial spill"
    [ stxw r10 (-8) r1; mov_i r0 0; exit_ ]

let test_zero_slot_is_const () =
  (* reading a zeroed slot yields constant 0, usable as a null check *)
  expect_ok [ stdw r10 (-8) 0; ldxdw r0 r10 (-8); exit_ ]

(* ---------------- ctx ---------------- *)

let test_ctx_read () = expect_ok [ ldxdw r0 r1 0; exit_ ]

let test_ctx_bad_offset () =
  expect_reject ~substring:"invalid bpf_context access" [ ldxdw r0 r1 63; exit_ ]

let test_ctx_bad_size () =
  (* kprobe ctx has 8-byte fields; a 4-byte read at offset 0 mismatches *)
  expect_reject ~substring:"invalid bpf_context access" [ ldxw r0 r1 0; exit_ ]

let test_ctx_readonly_write () =
  expect_reject ~prog_type:Program.Socket_filter ~substring:"read-only ctx field"
    [ stw r1 0 0; mov_i r0 0; exit_ ]

let test_ctx_writable_field () =
  (* skb mark at offset 8 is writable *)
  expect_ok ~prog_type:Program.Socket_filter [ stw r1 8 0; mov_i r0 0; exit_ ]

let test_ctx_variable_offset () =
  expect_reject ~substring:"variable"
    [ ldxdw r2 r1 0; add_r r1 r2; ldxdw r0 r1 0; exit_ ]

(* ---------------- scalars / pointers ---------------- *)

let test_scalar_mem_access () =
  expect_reject ~substring:"invalid mem access"
    [ mov_i r2 42; ldxdw r0 r2 0; exit_ ]

let test_pointer_leak_return () =
  expect_reject ~substring:"leaks addr" [ mov_r r0 r10; exit_ ]

let test_pointer_leak_allowed_privileged () =
  let config = { (V.default_config ()) with V.allow_ptr_leaks = true } in
  expect_ok ~config [ mov_r r0 r10; exit_ ]

let test_pointer_partial_copy () =
  expect_reject ~substring:"partial copy"
    [ mov32_r r2 r10; mov_i r0 0; exit_ ]

let test_pointer_arith_prohibited_ops () =
  expect_reject ~substring:"prohibited"
    [ mul_i r1 3; mov_i r0 0; exit_ ]

let test_fp_minus_fp_is_scalar () =
  expect_ok [ mov_r r2 r10; sub_r r2 r10; mov_r r0 r2; exit_ ]

let test_pointer_comparison_prohibited () =
  expect_reject ~substring:"pointer comparison"
    [ mov_i r2 5; jeq_r r1 r2 "out"; label "out"; mov_i r0 0; exit_ ]

(* ---------------- map access & bounds ---------------- *)

let map_lookup_prelude =
  [ stdw r10 (-8) 0; map_fd r1 1; mov_r r2 r10; add_i r2 (-8);
    call (h "bpf_map_lookup_elem") ]

let test_map_lookup_null_check_required () =
  expect_reject ~substring:"possibly NULL"
    (map_lookup_prelude @ [ ldxdw r0 r0 0; exit_ ])

let test_map_lookup_after_null_check () =
  expect_ok
    (map_lookup_prelude
    @ [ jeq_i r0 0 "out"; ldxdw r3 r0 0 [@warning "-26"]; label "out"; mov_i r0 0;
        exit_ ])

let test_map_value_oob_const () =
  expect_reject ~substring:"invalid access"
    (map_lookup_prelude
    @ [ jeq_i r0 0 "out"; ldxdw r3 r0 9 [@warning "-26"]; label "out"; mov_i r0 0;
        exit_ ])

let test_map_value_bounded_variable () =
  (* a scalar bounded to [0,8] may index into the 16-byte value *)
  expect_ok
    (map_lookup_prelude
    @ [ jeq_i r0 0 "out"; stdw r10 (-16) 0; ldxdw r4 r10 (-16); and_i r4 8;
        add_r r0 r4; ldxb r3 r0 0 [@warning "-26"]; label "out"; mov_i r0 0;
        exit_ ])

let test_map_value_unbounded_variable () =
  expect_reject ~substring:"outside of the map_value"
    ([ ldxdw r6 r1 0 ] @ map_lookup_prelude
    @ [ jeq_i r0 0 "out"; add_r r0 r6; ldxb r3 r0 0 [@warning "-26"];
        label "out"; mov_i r0 0; exit_ ])

let test_bounds_refinement_via_branch () =
  (* jlt refines the unsigned upper bound, making the access safe *)
  expect_ok
    ([ ldxdw r6 r1 0 ] @ map_lookup_prelude
    @ [ jeq_i r0 0 "out"; jge_i r6 16 "out"; add_r r0 r6;
        ldxb r3 r0 0 [@warning "-26"]; label "out"; mov_i r0 0; exit_ ])

let test_branch_statically_decided () =
  (* the dead branch dereferences NULL; the verifier must prove it dead *)
  expect_ok
    [ mov_i r2 5; jeq_i r2 5 "good"; mov_i r3 0; ldxdw r0 r3 0; exit_;
      label "good"; mov_i r0 0; exit_ ]

(* ---------------- helper arg checking ---------------- *)

let test_helper_uninit_arg () =
  expect_reject ~substring:"!read_ok"
    [ map_fd r1 1; call (h "bpf_map_lookup_elem"); mov_i r0 0; exit_ ]

let test_helper_wrong_map_arg () =
  expect_reject ~substring:"expected map pointer"
    [ mov_i r1 1; mov_r r2 r10; add_i r2 (-8); stdw r10 (-8) 0;
      call (h "bpf_map_lookup_elem"); mov_i r0 0; exit_ ]

let test_helper_key_uninit_stack () =
  expect_reject ~substring:"uninitialized stack"
    [ map_fd r1 1; mov_r r2 r10; add_i r2 (-8); call (h "bpf_map_lookup_elem");
      mov_i r0 0; exit_ ]

let test_helper_unbounded_size () =
  expect_reject ~substring:"unbounded memory size"
    [ ldxdw r2 r1 0; (* unknown size *)
      mov_r r1 r10; add_i r1 (-16); mov_i r3 0;
      call (h "bpf_probe_read_kernel"); mov_i r0 0; exit_ ]

let test_helper_version_gate () =
  let config = { (V.default_config ()) with V.version = Kerndata.Kver.V4_3 } in
  expect_reject ~config ~substring:"not available"
    [ mov_i r1 0; mov_label r2 "cb"; mov_i r3 0; mov_i r4 0; call (h "bpf_loop");
      mov_i r0 0; exit_; label "cb"; mov_i r0 0; exit_ ]

let test_callback_pc_must_be_const () =
  expect_reject ~substring:"callback target"
    [ ldxdw r2 r1 0; mov_i r1 4; mov_i r3 0; mov_i r4 0; call (h "bpf_loop");
      mov_i r0 0; exit_ ]

let test_callback_body_verified () =
  (* the callback dereferences NULL: rejected even though the main body is
     fine *)
  expect_reject ~substring:"invalid mem access"
    [ mov_i r1 4; mov_label r2 "cb"; mov_i r3 0; mov_i r4 0; call (h "bpf_loop");
      mov_i r0 0; exit_;
      label "cb"; mov_i r3 0; ldxdw r0 r3 0; exit_ ]

let test_loop_accepted () =
  expect_ok
    [ mov_i r1 8; mov_label r2 "cb"; mov_i r3 0; mov_i r4 0; call (h "bpf_loop");
      mov_i r0 0; exit_; label "cb"; mov_i r0 0; exit_ ]

(* ---------------- atomics ---------------- *)

let test_atomic_on_stack_ok () =
  expect_ok
    [ stdw r10 (-8) 0; mov_i r3 1; atomic_add r10 (-8) r3; ldxdw r0 r10 (-8); exit_ ]

let test_atomic_on_scalar_rejected () =
  expect_reject ~substring:"invalid mem access"
    [ mov_i r2 4096; mov_i r3 1; atomic_add r2 0 r3; mov_i r0 0; exit_ ]

let test_atomic_uninit_slot_rejected () =
  expect_reject ~substring:"invalid read from stack"
    [ mov_i r3 1; atomic_add r10 (-8) r3; mov_i r0 0; exit_ ]

let test_atomic_pointer_src_rejected () =
  expect_reject ~substring:"leaks addr"
    [ stdw r10 (-8) 0; atomic_xchg r10 (-8) r1; mov_i r0 0; exit_ ]

let test_atomic_cmpxchg_needs_r0 () =
  expect_reject ~substring:"R0 !read_ok"
    [ stdw r10 (-8) 0; mov_i r3 1; atomic_cmpxchg r10 (-8) r3; mov_i r0 0; exit_ ]

let test_atomic_fetch_on_spilled_pointer_rejected () =
  (* the a82fe085 class: fetching from a slot holding a pointer would leak *)
  expect_reject ~substring:"leaking pointer through atomic"
    [ stxdw r10 (-8) r1; mov_i r3 0; atomic_add ~fetch:true r10 (-8) r3;
      mov_i r0 0; exit_ ]

let test_atomic_ptr_leak_bug_flips () =
  let items =
    [ stxdw r10 (-8) r1; mov_i r3 0; atomic_add ~fetch:true r10 (-8) r3;
      mov_i r0 0; exit_ ]
  in
  (match verify items with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted without the bug");
  let config = config_with ~f:(fun b -> b.Vbug.spill_ptr_leak <- true) () in
  match verify ~config items with
  | Ok _ -> ()
  | Error r -> Alcotest.failf "still rejected: %s" (Format.asprintf "%a" V.pp_reject r)

(* ---------------- references & locks ---------------- *)

let test_ref_leak_rejected () =
  expect_reject ~substring:"unreleased reference"
    [ mov_i r1 8080; call (h "bpf_sk_lookup_tcp"); mov_i r0 0; exit_ ]

let test_ref_release_ok () =
  expect_ok
    [ mov_i r1 8080; call (h "bpf_sk_lookup_tcp"); jeq_i r0 0 "out"; mov_r r1 r0;
      call (h "bpf_sk_release"); label "out"; mov_i r0 0; exit_ ]

let test_release_unreferenced () =
  expect_reject ~substring:"expected referenced sock"
    [ mov_i r1 0; call (h "bpf_sk_release"); mov_i r0 0; exit_ ]

let test_use_after_release () =
  expect_reject ~substring:"!read_ok"
    [ mov_i r1 8080; call (h "bpf_sk_lookup_tcp"); jeq_i r0 0 "out"; mov_r r6 r0;
      mov_r r1 r6; call (h "bpf_sk_release"); ldxw r0 r6 0; exit_;
      label "out"; mov_i r0 0; exit_ ]

let lock_prelude =
  [ stdw r10 (-8) 0; map_fd r1 2; mov_r r2 r10; add_i r2 (-8);
    call (h "bpf_map_lookup_elem"); jeq_i r0 0 "out"; mov_r r6 r0 ]

let test_lock_unlock_ok () =
  expect_ok
    (lock_prelude
    @ [ mov_r r1 r6; call (h "bpf_spin_lock"); mov_r r1 r6;
        call (h "bpf_spin_unlock"); label "out"; mov_i r0 0; exit_ ])

let test_exit_holding_lock () =
  expect_reject ~substring:"held at exit"
    (lock_prelude
    @ [ mov_r r1 r6; call (h "bpf_spin_lock"); label "out"; mov_i r0 0; exit_ ])

let test_helper_while_locked () =
  expect_reject ~substring:"not allowed while holding"
    (lock_prelude
    @ [ mov_r r1 r6; call (h "bpf_spin_lock"); call (h "bpf_ktime_get_ns");
        mov_r r1 r6; call (h "bpf_spin_unlock"); label "out"; mov_i r0 0; exit_ ])

let test_unlock_without_lock () =
  expect_reject ~substring:"without holding"
    (lock_prelude
    @ [ mov_r r1 r6; call (h "bpf_spin_unlock"); label "out"; mov_i r0 0; exit_ ])

let test_direct_lock_field_access () =
  expect_reject ~substring:"bpf_spin_lock"
    (lock_prelude @ [ ldxw r3 r6 0 [@warning "-26"]; label "out"; mov_i r0 0; exit_ ])

let test_lock_wrong_offset () =
  expect_reject ~substring:"bpf_spin_lock"
    (lock_prelude
    @ [ mov_r r1 r6; add_i r1 8; call (h "bpf_spin_lock"); mov_r r1 r6;
        call (h "bpf_spin_unlock"); label "out"; mov_i r0 0; exit_ ])

let test_ringbuf_must_complete () =
  expect_reject ~substring:"unreleased reference"
    [ map_fd r1 1; mov_i r2 8; mov_i r3 0; call (h "bpf_ringbuf_reserve");
      mov_i r0 0; exit_ ]

let test_ringbuf_submit_ok () =
  expect_ok
    [ map_fd r1 1; mov_i r2 8; mov_i r3 0; call (h "bpf_ringbuf_reserve");
      jeq_i r0 0 "out"; mov_r r1 r0; mov_i r2 0; call (h "bpf_ringbuf_submit");
      label "out"; mov_i r0 0; exit_ ]

let test_ringbuf_null_branch_clears_ref () =
  (* on the NULL branch the reservation never existed: no obligation *)
  expect_ok
    [ map_fd r1 1; mov_i r2 8; mov_i r3 0; call (h "bpf_ringbuf_reserve");
      jne_i r0 0 "have"; mov_i r0 0; exit_;
      label "have"; mov_r r1 r0; mov_i r2 0; call (h "bpf_ringbuf_discard");
      mov_i r0 0; exit_ ]

let test_for_each_callback_map_value_bounds () =
  (* the for_each callback receives the map value in r2: in-bounds access
     verifies, out-of-bounds is rejected inside the callback *)
  let body off =
    [ map_fd r1 1; mov_label r2 "cb"; mov_i r3 0; mov_i r4 0;
      call (h "bpf_for_each_map_elem"); mov_i r0 0; exit_;
      label "cb"; ldxdw r0 r2 off; mov_i r0 0; exit_ ]
  in
  expect_ok (body 0);
  expect_reject ~substring:"invalid access" (body 9)

(* ---------------- bpf-to-bpf calls ---------------- *)

let test_subprog_verified () =
  expect_ok
    [ mov_i r1 1; call_sub "sub"; exit_;
      label "sub"; mov_r r0 r1; add_i r0 1; exit_ ]

let test_subprog_body_checked () =
  (* the subprogram dereferences NULL: rejected *)
  expect_reject ~substring:"invalid mem access"
    [ mov_i r1 1; call_sub "sub"; exit_;
      label "sub"; mov_i r3 0; ldxdw r0 r3 0; exit_ ]

let test_subprog_stack_ptr_arg_rejected () =
  expect_reject ~substring:"cross a bpf2bpf call"
    [ stdw r10 (-8) 0; mov_r r1 r10; add_i r1 (-8); call_sub "sub"; exit_;
      label "sub"; mov_i r0 0; exit_ ]

let test_subprog_ctx_arg_ok () =
  expect_ok
    [ call_sub "sub"; exit_;
      label "sub"; ldxdw r0 r1 0; exit_ ]

let test_subprog_call_while_locked () =
  expect_reject ~substring:"while holding a lock"
    (lock_prelude
    @ [ mov_r r1 r6; call (h "bpf_spin_lock"); mov_i r1 0; call_sub "sub";
        label "out"; mov_i r0 0; exit_;
        label "sub"; mov_i r0 0; exit_ ])

(* ---------------- loops & budget ---------------- *)

let test_legacy_backedge_reject () =
  let config = { (V.default_config ()) with V.allow_loops = false } in
  expect_reject ~config ~substring:"back-edge"
    [ mov_i r0 4; label "l"; sub_i r0 1; jne_i r0 0 "l"; exit_ ]

let test_bounded_loop_accepted () =
  expect_ok [ mov_i r0 4; label "l"; sub_i r0 1; jne_i r0 0 "l"; exit_ ]

let test_budget_rejection () =
  let config = { (V.default_config ()) with V.insn_budget = 100 } in
  expect_reject ~config ~substring:"too large"
    [ mov_i r0 200; label "l"; sub_i r0 1; jne_i r0 0 "l"; exit_ ]

let test_pruning_reduces_work () =
  (* jset branches with identical join states: pruning keeps the walk linear *)
  let items =
    [ mov_i r0 0; ldxdw r6 r1 0 ]
    @ List.concat_map
        (fun i ->
          [ jset_i r6 1 (Printf.sprintf "t%d" i); add_i r0 0;
            label (Printf.sprintf "t%d" i) ])
        (List.init 12 (fun i -> i))
    @ [ mov_i r0 0; exit_ ]
  in
  let pruned =
    match verify items with Ok s -> s.V.insns_processed | Error _ -> -1
  in
  let config = { (V.default_config ()) with V.prune = false } in
  let unpruned =
    match verify ~config items with Ok s -> s.V.insns_processed | Error _ -> -1
  in
  Alcotest.(check bool)
    (Printf.sprintf "pruned %d << unpruned %d" pruned unpruned)
    true
    (pruned > 0 && unpruned > 100 * pruned)

let test_false_positive_mod_vs_mask () =
  (* §2.1's false-positive phenomenon: % escapes the abstract domain, & does
     not — both programs are memory-safe *)
  let body op =
    [ ldxdw r6 r1 0 ] @ op
    @ map_lookup_prelude
    @ [ jeq_i r0 0 "out"; add_r r0 r6; ldxb r3 r0 0 [@warning "-26"];
        label "out"; mov_i r0 0; exit_ ]
  in
  expect_reject ~substring:"outside of the map_value"
    (body [ mov_i r2 16; mod_r r6 r2 ]);
  expect_ok (body [ and_i r6 15 ])

let test_spectre_v1_gate () =
  (* the §4 transient-execution defence: the same bounded variable-offset
     access is fine for privileged programs and refused for unprivileged *)
  let items =
    [ ldxdw r6 r1 0 ] @ map_lookup_prelude
    @ [ jeq_i r0 0 "out"; jge_i r6 16 "out"; add_r r0 r6;
        ldxb r3 r0 0 [@warning "-26"]; label "out"; mov_i r0 0; exit_ ]
  in
  expect_ok items;
  let config = { (V.default_config ()) with V.reject_speculative_oob = true } in
  expect_reject ~config ~substring:"speculation" items

let test_verbose_log () =
  let config = { (V.default_config ()) with V.verbose = true } in
  match verify ~config [ mov_i r0 0; mov_i r1 5; exit_ ] with
  | Ok s ->
    Alcotest.(check bool) "log mentions insns" true (String.length s.V.log > 10);
    let contains sub =
      let n = String.length s.V.log and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s.V.log i m = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "log shows the mov" true (contains "mov r1, 5")
  | Error _ -> Alcotest.fail "rejected"

let test_quiet_by_default () =
  match verify [ mov_i r0 0; exit_ ] with
  | Ok s -> Alcotest.(check string) "no log collected" "" s.V.log
  | Error _ -> Alcotest.fail "rejected"

(* ---------------- injectable bugs flip decisions ---------------- *)

let flip_test name ~vuln_field items =
  ( name,
    fun () ->
      (match verify items with
      | Ok _ -> Alcotest.failf "%s: accepted without the bug" name
      | Error _ -> ());
      let config = config_with ~f:vuln_field () in
      match verify ~config items with
      | Ok _ -> ()
      | Error r ->
        Alcotest.failf "%s: still rejected with the bug: %s" name
          (Format.asprintf "%a" V.pp_reject r) )

let bug_flips =
  [
    flip_test "ptr_arith_or_null flips"
      ~vuln_field:(fun b -> b.Vbug.ptr_arith_or_null <- true)
      (map_lookup_prelude
      @ [ add_i r0 8; jeq_i r0 0 "out"; stw r0 0 65; label "out"; mov_i r0 0; exit_ ]);
    flip_test "bounds_32bit_broken flips"
      ~vuln_field:(fun b -> b.Vbug.bounds_32bit_broken <- true)
      ([ ldxdw r6 r1 0; and_i r6 15;
         insn (Ebpf.Insn.Alu { op = Ebpf.Insn.Sub; width = Ebpf.Insn.W32; dst = r6;
                               src = Ebpf.Insn.Imm 20 }) ]
      @ map_lookup_prelude
      @ [ jeq_i r0 0 "out"; add_r r0 r6; st Ebpf.Insn.B r0 0 65; label "out";
          mov_i r0 0; exit_ ]);
    flip_test "spill_ptr_leak flips"
      ~vuln_field:(fun b -> b.Vbug.spill_ptr_leak <- true)
      (map_lookup_prelude
      @ [ jeq_i r0 0 "out"; stxdw r10 (-16) r0; ldxdw r7 r10 (-16); stxdw r0 0 r7;
          label "out"; mov_i r0 0; exit_ ]);
    flip_test "task_or_null_as_task flips"
      ~vuln_field:(fun b -> b.Vbug.task_or_null_as_task <- true)
      [ map_fd r1 1; mov_i r2 0; mov_i r3 0; mov_i r4 0;
        call (h "bpf_task_storage_get"); mov_i r0 0; exit_ ];
  ]

let test_verifier_crash_bug () =
  let config = config_with ~f:(fun b -> b.Vbug.loop_inline_uaf <- true) () in
  match
    verify ~config
      [ mov_i r1 4; mov_label r2 "cb"; mov_i r3 0; mov_i r4 0; call (h "bpf_loop");
        mov_i r0 0; exit_; label "cb"; mov_i r0 0; exit_ ]
  with
  | exception Vbug.Verifier_crash _ -> ()
  | _ -> Alcotest.fail "expected the verifier itself to crash"

(* ---------------- soundness property ---------------- *)

(* Random loop-free programs over ALU ops, stack accesses, ctx reads and
   branches.  Whatever the verifier accepts must run without any kernel
   oops (helpers excluded: this is the core-language soundness claim). *)
let gen_safe_insn =
  QCheck.Gen.(
    let reg = int_range 0 9 in
    let small = int_range (-64) 64 in
    oneof
      [ (let* dst = reg and* v = small in
         return [ mov_i dst v ]);
        (let* dst = reg and* src = reg in
         return [ mov_r dst src ]);
        (let* op = oneofl [ `Add; `Sub; `Mul; `And; `Or; `Xor ] and* dst = reg
         and* v = small in
         return
           [ (match op with
             | `Add -> add_i dst v
             | `Sub -> sub_i dst v
             | `Mul -> mul_i dst v
             | `And -> and_i dst v
             | `Or -> or_i dst v
             | `Xor -> xor_i dst v) ]);
        (let* dst = reg and* src = reg in
         return [ add_r dst src ]);
        (let* dst = reg and* sh = int_bound 63 in
         return [ lsh_i dst sh ]);
        (let* dst = reg and* sh = int_bound 63 in
         return [ rsh_i dst sh ]);
        (let* dst = reg and* v = int_range 1 64 in
         return [ div_i dst v ]);
        (let* slot = int_range 1 8 and* src = reg in
         return [ stxdw r10 (-8 * slot) src ]);
        (let* slot = int_range 1 8 and* dst = reg in
         return [ stdw r10 (-8 * slot) 7; ldxdw dst r10 (-8 * slot) ]);
        (let* dst = reg and* fld = int_bound 7 in
         return [ ldxdw dst r1 (fld * 8) ]);
        return [ call (h "bpf_ktime_get_ns") ];
        return [ call (h "bpf_get_current_pid_tgid") ] ])

(* composite idioms: the interesting multi-instruction patterns a real
   program uses — map lookup + null check + bounded access, an
   acquire/release pair, an atomic RMW on an initialized slot *)
let gen_idiom =
  QCheck.Gen.(
    let* tag = int_bound 2 in
    let* uniq = int_bound 100000 in
    let l suffix = Printf.sprintf "idiom%d_%d" uniq suffix in
    match tag with
    | 0 ->
      let* off_mask = oneofl [ 7; 8; 15 ] in
      return
        [ stdw r10 (-8) 0; map_fd r1 1; mov_r r2 r10; add_i r2 (-8);
          call (h "bpf_map_lookup_elem"); jeq_i r0 0 (l 0);
          stdw r10 (-16) 3; ldxdw r4 r10 (-16); and_i r4 off_mask; add_r r0 r4;
          ldxb r3 r0 0 [@warning "-26"]; label (l 0); mov_i r0 0 ]
    | 1 ->
      return
        [ mov_i r1 8080; call (h "bpf_sk_lookup_tcp"); jeq_i r0 0 (l 0);
          mov_r r1 r0; call (h "bpf_sk_release"); label (l 0); mov_i r0 0 ]
    | _ ->
      let* v = int_range 0 50 in
      return [ stdw r10 (-24) v; mov_i r3 v; atomic_add r10 (-24) r3 ])

(* forward-only branches keep the program loop-free *)
let gen_program =
  QCheck.Gen.(
    let* chunks =
      list_size (int_range 2 25)
        (oneof [ gen_safe_insn; gen_safe_insn; gen_safe_insn; gen_idiom ])
    in
    let* branch_points = list_size (int_range 0 4) (pair (int_bound 63) (int_bound 100)) in
    let n = List.length chunks in
    let items =
      List.concat
        (List.mapi
           (fun i chunk ->
             let jumps =
               List.filter_map
                 (fun (v, at) ->
                   if at mod n = i then
                     Some (jeq_i r0 v (Printf.sprintf "end"))
                   else None)
                 branch_points
             in
             chunk @ jumps)
           chunks)
    in
    return (items @ [ label "end"; mov_i r0 0; exit_ ]))

let arb_program =
  QCheck.make
    ~print:(fun items ->
      match Ebpf.Asm.assemble items with
      | Ok insns -> Ebpf.Disasm.to_string insns
      | Error e -> e)
    gen_program

let soundness_property =
  QCheck.Test.make ~count:300
    ~name:"verifier soundness: accepted loop-free programs never oops" arb_program
    (fun items ->
      match Ebpf.Asm.assemble items with
      | Error _ -> QCheck.assume_fail ()
      | Ok insns -> (
        let prog = Program.make ~name:"rand" ~prog_type:Program.Kprobe insns in
        match V.verify ~map_def prog with
        | Error _ -> QCheck.assume_fail () (* only accepted programs matter *)
        | Ok _ -> (
          let world = Framework.World.create_populated () in
          (* the property's map_def assigns id 1 to the test map: mirror it *)
          let m = Framework.World.register_map world test_map_def in
          assert (m.Bpf_map.id = 1);
          let loaded =
            match Framework.Loader.load_ebpf world prog with
            | Ok l -> l
            | Error _ -> Alcotest.fail "re-verification failed"
          in
          let opts =
            { Framework.Invoke.default_opts with
              Framework.Invoke.fuel = Some 1_000_000L
            }
          in
          let report = Framework.Invoke.run ~opts world loaded in
          match report.Framework.Loader.outcome with
          | Framework.Loader.Crashed _ -> false
          | Framework.Loader.Finished _ | Framework.Loader.Stopped _
          | Framework.Loader.Exhausted _ ->
            true)))

let suite =
  [
    Alcotest.test_case "minimal program" `Quick test_minimal;
    Alcotest.test_case "empty program" `Quick test_empty;
    Alcotest.test_case "fall-through" `Quick test_fallthrough;
    Alcotest.test_case "jump out of range" `Quick test_jump_oob;
    Alcotest.test_case "fp read-only" `Quick test_fp_readonly;
    Alcotest.test_case "uninit register read" `Quick test_uninit_read;
    Alcotest.test_case "uninit r0 at exit" `Quick test_uninit_exit;
    Alcotest.test_case "program size cap" `Quick test_too_many_insns;
    Alcotest.test_case "unknown helper" `Quick test_unknown_helper;
    Alcotest.test_case "unknown map fd" `Quick test_unknown_map_fd;
    Alcotest.test_case "stack write/read" `Quick test_stack_write_read;
    Alcotest.test_case "stack uninit read" `Quick test_stack_uninit_read;
    Alcotest.test_case "stack oob write" `Quick test_stack_oob_write;
    Alcotest.test_case "stack positive offset" `Quick test_stack_positive_offset;
    Alcotest.test_case "stack variable offset" `Quick test_stack_variable_offset;
    Alcotest.test_case "pointer spill/fill" `Quick test_spill_fill_pointer;
    Alcotest.test_case "partial pointer spill" `Quick test_partial_pointer_spill;
    Alcotest.test_case "zero slot" `Quick test_zero_slot_is_const;
    Alcotest.test_case "ctx read" `Quick test_ctx_read;
    Alcotest.test_case "ctx bad offset" `Quick test_ctx_bad_offset;
    Alcotest.test_case "ctx bad size" `Quick test_ctx_bad_size;
    Alcotest.test_case "ctx read-only write" `Quick test_ctx_readonly_write;
    Alcotest.test_case "ctx writable field" `Quick test_ctx_writable_field;
    Alcotest.test_case "ctx variable offset" `Quick test_ctx_variable_offset;
    Alcotest.test_case "scalar mem access" `Quick test_scalar_mem_access;
    Alcotest.test_case "pointer leak via return" `Quick test_pointer_leak_return;
    Alcotest.test_case "leak allowed when privileged" `Quick test_pointer_leak_allowed_privileged;
    Alcotest.test_case "pointer partial copy" `Quick test_pointer_partial_copy;
    Alcotest.test_case "pointer arith bad ops" `Quick test_pointer_arith_prohibited_ops;
    Alcotest.test_case "fp-fp subtraction" `Quick test_fp_minus_fp_is_scalar;
    Alcotest.test_case "pointer comparison" `Quick test_pointer_comparison_prohibited;
    Alcotest.test_case "map value needs null check" `Quick test_map_lookup_null_check_required;
    Alcotest.test_case "map value after null check" `Quick test_map_lookup_after_null_check;
    Alcotest.test_case "map value const oob" `Quick test_map_value_oob_const;
    Alcotest.test_case "map value bounded var" `Quick test_map_value_bounded_variable;
    Alcotest.test_case "map value unbounded var" `Quick test_map_value_unbounded_variable;
    Alcotest.test_case "bounds refinement" `Quick test_bounds_refinement_via_branch;
    Alcotest.test_case "static branch decision" `Quick test_branch_statically_decided;
    Alcotest.test_case "helper uninit arg" `Quick test_helper_uninit_arg;
    Alcotest.test_case "helper wrong map arg" `Quick test_helper_wrong_map_arg;
    Alcotest.test_case "helper key uninit stack" `Quick test_helper_key_uninit_stack;
    Alcotest.test_case "helper unbounded size" `Quick test_helper_unbounded_size;
    Alcotest.test_case "helper version gate" `Quick test_helper_version_gate;
    Alcotest.test_case "callback pc const" `Quick test_callback_pc_must_be_const;
    Alcotest.test_case "callback body verified" `Quick test_callback_body_verified;
    Alcotest.test_case "bpf_loop accepted" `Quick test_loop_accepted;
    Alcotest.test_case "atomic on stack" `Quick test_atomic_on_stack_ok;
    Alcotest.test_case "atomic on scalar" `Quick test_atomic_on_scalar_rejected;
    Alcotest.test_case "atomic uninit slot" `Quick test_atomic_uninit_slot_rejected;
    Alcotest.test_case "atomic pointer src" `Quick test_atomic_pointer_src_rejected;
    Alcotest.test_case "atomic cmpxchg needs r0" `Quick test_atomic_cmpxchg_needs_r0;
    Alcotest.test_case "atomic fetch on spilled ptr" `Quick test_atomic_fetch_on_spilled_pointer_rejected;
    Alcotest.test_case "atomic ptr leak bug flips" `Quick test_atomic_ptr_leak_bug_flips;
    Alcotest.test_case "ref leak rejected" `Quick test_ref_leak_rejected;
    Alcotest.test_case "ref release ok" `Quick test_ref_release_ok;
    Alcotest.test_case "release unreferenced" `Quick test_release_unreferenced;
    Alcotest.test_case "use after release" `Quick test_use_after_release;
    Alcotest.test_case "lock/unlock ok" `Quick test_lock_unlock_ok;
    Alcotest.test_case "exit holding lock" `Quick test_exit_holding_lock;
    Alcotest.test_case "helper while locked" `Quick test_helper_while_locked;
    Alcotest.test_case "unlock without lock" `Quick test_unlock_without_lock;
    Alcotest.test_case "direct lock field access" `Quick test_direct_lock_field_access;
    Alcotest.test_case "lock wrong offset" `Quick test_lock_wrong_offset;
    Alcotest.test_case "ringbuf must complete" `Quick test_ringbuf_must_complete;
    Alcotest.test_case "ringbuf submit ok" `Quick test_ringbuf_submit_ok;
    Alcotest.test_case "ringbuf null branch" `Quick test_ringbuf_null_branch_clears_ref;
    Alcotest.test_case "for_each callback bounds" `Quick test_for_each_callback_map_value_bounds;
    Alcotest.test_case "subprog verified" `Quick test_subprog_verified;
    Alcotest.test_case "subprog body checked" `Quick test_subprog_body_checked;
    Alcotest.test_case "subprog stack-ptr arg" `Quick test_subprog_stack_ptr_arg_rejected;
    Alcotest.test_case "subprog ctx arg" `Quick test_subprog_ctx_arg_ok;
    Alcotest.test_case "subprog while locked" `Quick test_subprog_call_while_locked;
    Alcotest.test_case "legacy back-edge reject" `Quick test_legacy_backedge_reject;
    Alcotest.test_case "bounded loop accepted" `Quick test_bounded_loop_accepted;
    Alcotest.test_case "budget rejection" `Quick test_budget_rejection;
    Alcotest.test_case "pruning reduces work" `Quick test_pruning_reduces_work;
    Alcotest.test_case "verifier crash bug" `Quick test_verifier_crash_bug;
    Alcotest.test_case "false positive: mod vs mask" `Quick test_false_positive_mod_vs_mask;
    Alcotest.test_case "spectre v1 gate" `Quick test_spectre_v1_gate;
    Alcotest.test_case "verbose log" `Quick test_verbose_log;
    Alcotest.test_case "quiet by default" `Quick test_quiet_by_default;
  ]
  @ List.map (fun (name, f) -> Alcotest.test_case name `Quick f) bug_flips
  @ [ QCheck_alcotest.to_alcotest soundness_property ]
