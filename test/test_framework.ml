(* Framework tests: worlds, both load paths, the full exploit corpus
   (every demo must succeed on the vulnerable kernel and be defeated on the
   fixed one), and the executable Table 2 matrix. *)

open Untenable
module World = Framework.World
module Loader = Framework.Loader
module Invoke = Framework.Invoke
module Exploits = Framework.Exploits
module Report = Framework.Report
module Kernel = Kernel_sim.Kernel
module Bpf_map = Maps.Bpf_map
open Ebpf.Asm

let h = Helpers.Registry.id_of_name

let trivial_prog =
  Ebpf.Program.of_items_exn ~name:"triv" ~prog_type:Ebpf.Program.Kprobe
    [ mov_i r0 7; exit_ ]

(* ---------------- worlds & loaders ---------------- *)

let test_world_populated () =
  let world = World.create_populated () in
  Alcotest.(check bool) "has tasks" true
    (List.length world.World.kernel.Kernel.tasks >= 3);
  Alcotest.(check bool) "request sock present" true
    (Kernel.find_sock world.World.kernel ~port:8443 <> None);
  Alcotest.(check bool) "starts healthy" true
    (Kernel.healthy (Kernel.health world.World.kernel))

let test_load_and_run_ebpf () =
  let world = World.create_populated () in
  match Loader.load_ebpf world trivial_prog with
  | Error e -> Alcotest.failf "load: %s" (Format.asprintf "%a" Loader.pp_load_error e)
  | Ok loaded -> (
    match (Invoke.run world loaded).Loader.outcome with
    | Loader.Finished 7L -> ()
    | o -> Alcotest.failf "expected 7, got %s" (Format.asprintf "%a" Loader.pp_outcome o))

let test_load_rejects () =
  let world = World.create_populated () in
  let bad =
    Ebpf.Program.of_items_exn ~name:"bad" ~prog_type:Ebpf.Program.Kprobe
      [ mov_i r2 0; ldxdw r0 r2 0; exit_ ]
  in
  match Loader.load_ebpf world bad with
  | Error (Loader.Rejected _) -> ()
  | _ -> Alcotest.fail "bad program loaded"

let test_skb_ctx_wiring () =
  let world = World.create_populated () in
  let prog =
    Ebpf.Program.of_items_exn ~name:"len" ~prog_type:Ebpf.Program.Socket_filter
      [ ldxw r0 r1 0; exit_ ]
  in
  match Loader.load_ebpf world prog with
  | Error _ -> Alcotest.fail "rejected"
  | Ok loaded -> (
    match
      (Invoke.run
         ~opts:
           { Invoke.default_opts with
             Invoke.skb_payload = Some (Bytes.make 99 'p')
           }
         world loaded)
        .Loader.outcome
    with
    | Loader.Finished 99L -> ()
    | o -> Alcotest.failf "expected len 99, got %s" (Format.asprintf "%a" Loader.pp_outcome o))

let test_tail_call_chain () =
  let world = World.create_populated () in
  (* prog B returns 55; prog A tail-calls index 0 *)
  let prog_b =
    Ebpf.Program.of_items_exn ~name:"b" ~prog_type:Ebpf.Program.Kprobe
      [ mov_i r0 55; exit_ ]
  in
  let b_loaded = Result.get_ok (Loader.load_ebpf world prog_b) in
  let b_id = match b_loaded with Loader.Ebpf_prog { prog_id; _ } -> prog_id | _ -> 0 in
  let prog_a =
    Ebpf.Program.of_items_exn ~name:"a" ~prog_type:Ebpf.Program.Kprobe
      [ mov_r r1 r1; mov_i r2 0; mov_i r3 0; call (h "bpf_tail_call");
        mov_i r0 1; exit_ ]
  in
  match Loader.load_ebpf world prog_a with
  | Error e -> Alcotest.failf "a rejected: %s" (Format.asprintf "%a" Loader.pp_load_error e)
  | Ok a_loaded ->
    (* wire the prog array in the shared hctx at run time is loader-internal;
       instead run and expect the fallthrough (-ENOENT path) *)
    (match (Invoke.run world a_loaded).Loader.outcome with
    | Loader.Finished 1L -> () (* empty prog array: tail call fails, returns 1 *)
    | o -> Alcotest.failf "expected 1, got %s" (Format.asprintf "%a" Loader.pp_outcome o));
    ignore b_id

let test_rustlite_load_path () =
  let world = World.create_populated () in
  let src =
    { Rustlite.Toolchain.name = "c"; maps = []; body = Rustlite.Ast.Lit_int 3L }
  in
  let ext = Result.get_ok (Rustlite.Toolchain.compile src) in
  match Loader.load_rustlite world ext with
  | Error _ -> Alcotest.fail "valid extension rejected"
  | Ok loaded -> (
    match (Invoke.run world loaded).Loader.outcome with
    | Loader.Finished 3L -> ()
    | o -> Alcotest.failf "expected 3, got %s" (Format.asprintf "%a" Loader.pp_outcome o))

let test_rustlite_bad_signature () =
  let world = World.create_populated () in
  let src =
    { Rustlite.Toolchain.name = "c"; maps = []; body = Rustlite.Ast.Lit_int 3L }
  in
  let ext = Result.get_ok (Rustlite.Toolchain.compile src) in
  let evil =
    { ext with
      Rustlite.Toolchain.src =
        { ext.Rustlite.Toolchain.src with
          Rustlite.Toolchain.body = Rustlite.Ast.Panic "evil" } }
  in
  match Loader.load_rustlite world evil with
  | Error Loader.Bad_signature -> ()
  | _ -> Alcotest.fail "tampered extension loaded"

let test_load_time_fixup () =
  let world = World.create_populated () in
  let prog =
    Ebpf.Program.of_items_exn ~name:"fixup" ~prog_type:Ebpf.Program.Kprobe
      [ call_named "bpf_ktime_get_ns"; exit_ ]
  in
  Alcotest.(check bool) "relocations recorded" true (prog.Ebpf.Program.relocs <> []);
  (match Loader.load_ebpf world prog with
  | Error e -> Alcotest.failf "fixup load: %s" (Format.asprintf "%a" Loader.pp_load_error e)
  | Ok loaded -> (
    match (Invoke.run world loaded).Loader.outcome with
    | Loader.Finished _ -> ()
    | o -> Alcotest.failf "run after fixup: %s" (Format.asprintf "%a" Loader.pp_outcome o)));
  (* an unknown name fails the fixup, not the verifier *)
  let bad =
    Ebpf.Program.of_items_exn ~name:"badfix" ~prog_type:Ebpf.Program.Kprobe
      [ call_named "bpf_totally_made_up"; mov_i r0 0; exit_ ]
  in
  match Loader.load_ebpf world bad with
  | Error (Loader.Fixup_failed "bpf_totally_made_up") -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Format.asprintf "%a" Loader.pp_load_error e)
  | Ok _ -> Alcotest.fail "unknown helper name loaded"

(* ---------------- the exploit corpus, exhaustively ---------------- *)

let exploit_tests =
  List.concat_map
    (fun (d : Exploits.demo) ->
      [ Alcotest.test_case (d.Exploits.id ^ " [vulnerable]") `Quick (fun () ->
            let r = d.Exploits.run ~vulnerable:true in
            Alcotest.(check bool)
              (Printf.sprintf "attack succeeds on vulnerable kernel (%s / %s)"
                 r.Exploits.gate r.Exploits.runtime)
              true r.Exploits.attack_succeeded);
        Alcotest.test_case (d.Exploits.id ^ " [fixed]") `Quick (fun () ->
            let r = d.Exploits.run ~vulnerable:false in
            Alcotest.(check bool)
              (Printf.sprintf "attack defeated on fixed kernel (%s / %s)"
                 r.Exploits.gate r.Exploits.runtime)
              false r.Exploits.attack_succeeded) ])
    Exploits.all

let test_every_bug_class_has_executable_demo () =
  (* every non-Misc Table 1 class must reference at least one demo that
     exists in the corpus *)
  List.iter
    (fun (c : Kerndata.Bug_stats.clazz) ->
      if c.Kerndata.Bug_stats.name <> "Misc" then begin
        Alcotest.(check bool)
          (c.Kerndata.Bug_stats.name ^ " has demos")
          true
          (c.Kerndata.Bug_stats.demos <> []);
        List.iter
          (fun id ->
            (* vbug: ids map to verifier toggles; hbug: ids to the corpus *)
            if String.length id > 5 && String.sub id 0 5 = "hbug:" then
              Alcotest.(check bool) (id ^ " demo exists") true
                (Exploits.find id <> None))
          c.Kerndata.Bug_stats.demos
      end)
    Kerndata.Bug_stats.classes

(* ---------------- safety matrix ---------------- *)

let test_safety_matrix_upheld () =
  List.iter
    (fun (row : Framework.Safety_matrix.row) ->
      Alcotest.(check bool)
        (row.Framework.Safety_matrix.property ^ ": "
        ^ row.Framework.Safety_matrix.observed)
        true row.Framework.Safety_matrix.upheld)
    (Framework.Safety_matrix.rows ())

let test_safety_matrix_matches_table2 () =
  let rows = Framework.Safety_matrix.rows () in
  Alcotest.(check int) "six properties" (List.length Kerndata.Safety_props.table)
    (List.length rows);
  List.iter2
    (fun (paper : Kerndata.Safety_props.property) (row : Framework.Safety_matrix.row) ->
      Alcotest.(check string) "property name" paper.Kerndata.Safety_props.prop
        row.Framework.Safety_matrix.property;
      Alcotest.(check string) "mechanism"
        (Kerndata.Safety_props.mechanism_to_string paper.Kerndata.Safety_props.enforced_by)
        (Kerndata.Safety_props.mechanism_to_string row.Framework.Safety_matrix.mechanism))
    Kerndata.Safety_props.table rows

(* ---------------- report rendering ---------------- *)

let test_report_table () =
  let out = Report.table ~header:[ "a"; "bb" ] [ [ "xxx"; "y" ]; [ "z"; "wwww" ] ] in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check bool) "4 lines + trailing" true (List.length lines >= 4);
  (* all non-empty lines have equal width *)
  let widths =
    List.filter_map
      (fun l -> if String.length l > 0 then Some (String.length l) else None)
      lines
  in
  Alcotest.(check bool) "aligned" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_report_bar_chart () =
  let out = Report.bar_chart ~width:10 [ ("a", 10.); ("b", 5.) ] in
  Alcotest.(check bool) "contains bars" true (String.contains out '#')

let suite =
  [
    Alcotest.test_case "world populated" `Quick test_world_populated;
    Alcotest.test_case "load & run ebpf" `Quick test_load_and_run_ebpf;
    Alcotest.test_case "load rejects bad" `Quick test_load_rejects;
    Alcotest.test_case "skb ctx wiring" `Quick test_skb_ctx_wiring;
    Alcotest.test_case "tail call fallthrough" `Quick test_tail_call_chain;
    Alcotest.test_case "rustlite load path" `Quick test_rustlite_load_path;
    Alcotest.test_case "rustlite bad signature" `Quick test_rustlite_bad_signature;
    Alcotest.test_case "load-time fixup" `Quick test_load_time_fixup;
    Alcotest.test_case "bug classes have demos" `Quick test_every_bug_class_has_executable_demo;
    Alcotest.test_case "safety matrix upheld" `Quick test_safety_matrix_upheld;
    Alcotest.test_case "safety matrix matches Table 2" `Quick test_safety_matrix_matches_table2;
    Alcotest.test_case "report table" `Quick test_report_table;
    Alcotest.test_case "report bar chart" `Quick test_report_bar_chart;
  ]
  @ exploit_tests
