(* Epoch-based serving core tests: builder staging and atomic publish,
   pin/retire grace periods on the virtual clock, the epoch-transition
   log, the stale-pooled-hctx regression the epoch pinning closes, and
   the qcheck property that a stream with hot reloads at arbitrary event
   boundaries is observably identical to quiescing, reloading
   stop-the-world and resuming. *)

open Untenable
module World = Framework.World
module Epoch = Framework.Epoch
module Pipeline = Framework.Pipeline
module Invoke = Framework.Invoke
module Attach = Framework.Attach
module Dispatch = Framework.Dispatch
module Serve = Framework.Serve
module Verdict_cache = Framework.Verdict_cache
module Vclock = Kernel_sim.Vclock
module Kernel = Kernel_sim.Kernel
module Program = Ebpf.Program
open Ebpf.Asm

let h = Helpers.Registry.id_of_name

let load_exn world ?(name = "p") items =
  match
    Pipeline.load_ebpf world
      (Program.of_items_exn ~name ~prog_type:Program.Kprobe items)
  with
  | Ok loaded -> loaded
  | Error e -> Alcotest.failf "load %s: %a" name Pipeline.pp_error e

let prog_id_of = function
  | Pipeline.Ebpf_prog { prog_id; _ } -> prog_id
  | Pipeline.Rustlite_ext _ -> Alcotest.fail "expected an eBPF handle"

(* ---------------- builder / publish ---------------- *)

let test_builder_publish () =
  let world = World.create_populated () in
  Alcotest.(check int) "genesis epoch" 1 (Epoch.current_epoch world.World.epochs);
  let loaded = load_exn world ~name:"a" [ mov_i r0 1; exit_ ] in
  let a_id = prog_id_of loaded in
  Alcotest.(check int) "load published epoch 2" 2
    (Epoch.current_epoch world.World.epochs);
  let snap =
    World.reconfigure world (fun b -> Epoch.set_tail_call b ~index:0 ~prog_id:a_id)
  in
  Alcotest.(check int) "reconfigure published epoch 3" 3 snap.Epoch.epoch;
  Alcotest.(check (option int)) "tail target visible" (Some a_id)
    (Epoch.tail_target snap 0);
  Alcotest.(check int) "one program" 1 (List.length (World.progs_sorted world));
  (* nothing pinned the superseded snapshots: they retired at once *)
  Alcotest.(check int) "no grace pending" 0
    (Epoch.grace_pending world.World.epochs);
  Alcotest.(check int) "published twice" 2 (Epoch.published world.World.epochs);
  Alcotest.(check int) "retired twice" 2 (Epoch.retired world.World.epochs);
  match Epoch.transitions world.World.epochs with
  | [ t2; t3 ] ->
    Alcotest.(check int) "t2 is epoch 2" 2 t2.Epoch.epoch;
    Alcotest.(check int) "t2 staged one load" 1 t2.Epoch.loads;
    Alcotest.(check int) "t3 staged one rewire" 1 t3.Epoch.tail_call_updates;
    Alcotest.(check bool) "t2 grace recorded" true (t2.Epoch.grace_ns <> None)
  | l -> Alcotest.failf "expected 2 transitions, got %d" (List.length l)

let test_builder_single_shot () =
  let world = World.create_populated () in
  let b = Epoch.begin_ world.World.epochs in
  ignore (Epoch.publish b);
  Alcotest.check_raises "second publish raises"
    (Invalid_argument "Epoch: builder already published") (fun () ->
      ignore (Epoch.publish b))

let test_failed_load_publishes_nothing () =
  let world = World.create_populated () in
  let before = Epoch.current_epoch world.World.epochs in
  let bad =
    Program.of_items_exn ~name:"bad" ~prog_type:Program.Kprobe
      [ mov_i r2 0; ldxdw r0 r2 0; exit_ ]
  in
  (match Pipeline.load_ebpf world bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected a reject");
  Alcotest.(check int) "rejected load swaps no epoch" before
    (Epoch.current_epoch world.World.epochs)

(* ---------------- grace periods ---------------- *)

let test_pin_blocks_retirement () =
  let world = World.create_populated () in
  let clock = world.World.kernel.Kernel.clock in
  let pinned = World.pin world in
  let retired0 = Epoch.retired world.World.epochs in
  ignore (World.reconfigure world (fun _ -> ()));
  Alcotest.(check int) "superseded epoch waits for the pin" 1
    (Epoch.grace_pending world.World.epochs);
  Alcotest.(check int) "not retired yet" retired0
    (Epoch.retired world.World.epochs);
  Vclock.advance clock 500L;
  World.unpin world pinned;
  Alcotest.(check int) "unpin retires it" 0
    (Epoch.grace_pending world.World.epochs);
  Alcotest.(check int) "retirement counted" (retired0 + 1)
    (Epoch.retired world.World.epochs);
  (* the grace period covers the 500ns the pin held the epoch open *)
  match Epoch.transitions world.World.epochs with
  | [] -> Alcotest.fail "expected a transition"
  | l -> (
    match (List.rev l : Epoch.transition list) with
    | last :: _ ->
      Alcotest.(check bool) "grace >= 500ns" true
        (match last.Epoch.grace_ns with Some g -> g >= 500L | None -> false)
    | [] -> assert false)

let test_retain_retired_raises () =
  let world = World.create_populated () in
  let old = World.current world in
  ignore (World.reconfigure world (fun _ -> ()));
  (* [old] retired instantly (no pins); pinning it again must be refused *)
  Alcotest.check_raises "retired snapshots cannot be re-pinned"
    (Invalid_argument "Epoch.retain: snapshot already retired") (fun () ->
      ignore (Epoch.retain world.World.epochs old))

(* ---------------- stale pooled-hctx regression ---------------- *)

(* The bug the epoch split closes: with a live mutable prog table, an
   unload (or tail-call rewire) published between `sync_hctx` and the
   tail-call chase could tear an in-flight invocation's world view.  Now
   every invocation pins one snapshot: a reader holding the old epoch
   still resolves the unloaded program, the current epoch cleanly
   reports the missing target (-22, like a cleared prog-array slot) —
   never a half-applied mix. *)
let test_unload_epoch_isolation () =
  let world = World.create_populated () in
  let b_id = prog_id_of (load_exn world ~name:"b" [ mov_i r0 55; exit_ ]) in
  World.set_tail_call world ~index:0 ~prog_id:b_id;
  let caller =
    load_exn world ~name:"a"
      [ mov_r r1 r1; mov_i r2 0; mov_i r3 0; call (h "bpf_tail_call");
        mov_i r0 1; exit_ ]
  in
  let ictx = Invoke.create world in
  let run ?snap () = (Invoke.run ~ictx ?snap world caller).Invoke.outcome in
  Alcotest.(check bool) "chain wired: a -> b -> 55" true (run () = Invoke.Finished 55L);
  (* pin the pre-unload epoch, as an in-flight event would *)
  let old = World.pin world in
  Alcotest.(check bool) "unload hits" true (World.unload world ~prog_id:b_id);
  Alcotest.(check bool) "pinned reader still resolves the unloaded prog" true
    (run ~snap:old () = Invoke.Finished 55L);
  Alcotest.(check bool) "current epoch reports the dangling slot" true
    (run () = Invoke.Finished (-22L));
  World.unpin world old;
  Alcotest.(check int) "old epoch retires once released" 0
    (Epoch.grace_pending world.World.epochs)

(* ---------------- cross-epoch verdict reuse ---------------- *)

let test_cross_epoch_cache_reuse () =
  let world = World.create_populated () in
  let items = [ mov_i r0 9; exit_ ] in
  ignore (load_exn world ~name:"c" items);
  (* an unrelated epoch swap must not cold-start the verdict cache *)
  World.set_tail_call world ~index:3 ~prog_id:999;
  ignore (load_exn world ~name:"c" items);
  Alcotest.(check int) "hit carried across the swap" 1
    (Verdict_cache.hits world.World.vcache);
  Alcotest.(check int) "counted as cross-epoch reuse" 1
    (Verdict_cache.cross_epoch_reuse world.World.vcache)

(* ---------------- epoch-swap = stop-the-world (qcheck) ---------------- *)

(* Two tail-call targets; each scheduled reload flips the index-0 slot
   between them.  The caller's return value is therefore a function of
   which epoch its event pinned — exactly the observable a torn swap
   would corrupt. *)
let build_reload_world () =
  let world = World.create_populated () in
  let engine = Dispatch.create world in
  let b1 = prog_id_of (load_exn world ~name:"b1" [ mov_i r0 55; exit_ ]) in
  let b2 = prog_id_of (load_exn world ~name:"b2" [ mov_i r0 77; exit_ ]) in
  World.set_tail_call world ~index:0 ~prog_id:b1;
  let caller =
    load_exn world ~name:"caller"
      [ mov_r r1 r1; mov_i r2 0; mov_i r3 0; call (h "bpf_tail_call");
        mov_i r0 1; exit_ ]
  in
  ignore (Attach.attach engine.Dispatch.attach ~hook:"xdp" caller);
  ignore
    (Attach.attach engine.Dispatch.attach ~hook:"xdp"
       (load_exn world ~name:"len" [ mov_i r0 2; exit_ ]));
  (engine, b1, b2)

(* a pure packet generator: identical whether the stream is run whole or
   in segments (the default xorshift generator is stateful) *)
let pure_gen i = Bytes.make (8 + (i mod 5)) (Char.chr (i land 0xff))

let target_for ~b1 ~b2 k = if k mod 2 = 0 then b2 else b1

let run_with_reloads ~count indices =
  let engine, b1, b2 = build_reload_world () in
  let reload =
    List.mapi
      (fun k idx ->
        ( idx,
          fun _e b ->
            Epoch.set_tail_call b ~index:0 ~prog_id:(target_for ~b1 ~b2 k) ))
      indices
  in
  let s =
    Serve.run engine
      (Serve.plan ~gen:pure_gen ~reloads:reload ~record_checksums:true
         ~hook:"xdp" ~count ())
  in
  (s.Serve.event_checksums, s.Serve.totals.Serve.reloads)

(* The oracle: stop the stream entirely at each reload boundary, publish
   the same change, resume on the next segment. *)
let run_stop_the_world ~count indices =
  let engine, b1, b2 = build_reload_world () in
  let world = engine.Dispatch.world in
  let checksums = Array.make count 0L in
  let run_segment ~from ~until =
    if until > from then begin
      let s =
        Serve.run engine
          (Serve.plan ~record_checksums:true ~hook:"xdp"
             ~gen:(fun i -> pure_gen (i + from))
             ~count:(until - from) ())
      in
      Array.blit s.Serve.event_checksums 0 checksums from (until - from)
    end
  in
  let pos = ref 0 in
  List.iteri
    (fun k idx ->
      run_segment ~from:!pos ~until:idx;
      pos := idx;
      World.set_tail_call world ~index:0 ~prog_id:(target_for ~b1 ~b2 k))
    indices;
  run_segment ~from:!pos ~until:count;
  checksums

let gen_reload_indices ~count =
  QCheck.Gen.(
    map
      (fun l -> List.sort_uniq Int.compare l)
      (list_size (int_range 0 4) (int_range 0 (count - 1))))

let reload_equivalence_property =
  let count = 24 in
  QCheck.Test.make ~count:40
    ~name:"epoch-swap stream = stop-the-world reload"
    (QCheck.make (gen_reload_indices ~count))
    (fun indices ->
      let with_reloads, applied = run_with_reloads ~count indices in
      let oracle = run_stop_the_world ~count indices in
      applied = List.length indices && with_reloads = oracle)

(* ---------------- dispatch accounting under reloads ---------------- *)

let test_stream_per_epoch_counts () =
  let engine, b1, b2 = build_reload_world () in
  ignore b1;
  let reload =
    [ (10, fun _e b -> Epoch.set_tail_call b ~index:0 ~prog_id:b2) ]
  in
  let s =
    Serve.run engine
      (Serve.plan ~reloads:reload ~gen:pure_gen ~hook:"xdp" ~count:30 ())
  in
  Alcotest.(check int) "one reload applied" 1 s.Serve.totals.Serve.reloads;
  (* setup published five epochs (three loads, the rewire, one more
     load), so the stream starts on epoch 6 and the reload publishes 7 *)
  Alcotest.(check (list (pair int int))) "events split across the swap"
    [ (6, 10); (7, 20) ] s.Serve.totals.Serve.per_epoch

let suite =
  [
    Alcotest.test_case "builder stages, publish swaps" `Quick test_builder_publish;
    Alcotest.test_case "builder is single-shot" `Quick test_builder_single_shot;
    Alcotest.test_case "failed load publishes nothing" `Quick
      test_failed_load_publishes_nothing;
    Alcotest.test_case "pin blocks retirement, unpin retires" `Quick
      test_pin_blocks_retirement;
    Alcotest.test_case "retired snapshots cannot be re-pinned" `Quick
      test_retain_retired_raises;
    Alcotest.test_case "unload isolation (stale-hctx regression)" `Quick
      test_unload_epoch_isolation;
    Alcotest.test_case "verdicts survive unrelated epoch swaps" `Quick
      test_cross_epoch_cache_reuse;
    QCheck_alcotest.to_alcotest reload_equivalence_property;
    Alcotest.test_case "per-epoch event accounting" `Quick
      test_stream_per_epoch_counts;
  ]
