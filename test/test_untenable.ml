(* The aggregated test runner: one alcotest suite per library, plus the
   integration scenarios.  `dune runtest` runs everything. *)

let () =
  Alcotest.run "untenable"
    [
      ("telemetry", Test_telemetry.suite);
      ("tnum", Test_tnum.suite);
      ("kernel_sim", Test_kernel_sim.suite);
      ("maps", Test_maps.suite);
      ("ebpf", Test_ebpf.suite);
      ("verifier", Test_verifier.suite);
      ("runtime", Test_runtime.suite);
      ("helpers", Test_helpers.suite);
      ("rustlite", Test_rustlite.suite);
      ("framework", Test_framework.suite);
      ("pipeline", Test_pipeline.suite);
      ("epoch", Test_epoch.suite);
      ("analysis", Test_analysis.suite);
      ("supervisor", Test_supervisor.suite);
      ("serve", Test_serve.suite);
      ("fuzz", Test_fuzz.suite);
      ("observability", Test_observability.suite);
      ("data", Test_data.suite);
      ("integration", Test_integration.suite);
      ("section4", Test_section4.suite);
      ("parser", Test_parser.suite);
      ("prevail", Test_prevail.suite);
      ("regstate", Test_regstate.suite);
    ]
