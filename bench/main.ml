(* The benchmark/reproduction harness: one generator per figure and table
   of the paper, plus bechamel microbenchmarks for the performance claims.

     dune exec bench/main.exe            regenerate everything, paper order
     dune exec bench/main.exe -- fig2    one experiment (fig2 fig3 fig4 tab1
                                         tab2 exp-safety exp-term exp-retire
                                         exp-vcost perf)

   Each generator prints the paper's reported numbers next to the measured
   ones; EXPERIMENTS.md records the comparison. *)

open Untenable
module Report = Framework.Report
module Exploits = Framework.Exploits
module Loader = Framework.Loader
module World = Framework.World
module Vconfig = Bpf_verifier.Verifier
module Serve = Framework.Serve
module Kver = Kerndata.Kver

(* ------------------------------------------------------------------ *)
(* Figure 2: verifier LoC growth                                       *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  print_string (Report.section "Figure 2: LoC of the eBPF verifier by kernel version");
  print_string
    (Report.table
       ~header:[ "version"; "year"; "LoC"; "features driving the growth" ]
       (List.map
          (fun (p : Kerndata.Verifier_loc.point) ->
            [ Kver.to_string p.version;
              string_of_int (Kver.year p.version);
              string_of_int p.loc;
              String.concat "; " p.features_added ])
          Kerndata.Verifier_loc.series));
  print_string
    (Report.bar_chart
       (List.map
          (fun (p : Kerndata.Verifier_loc.point) ->
            (Kver.to_string p.version, float_of_int p.loc))
          Kerndata.Verifier_loc.series));
  Printf.printf
    "growth: %.1fx over 2014-2022 (paper: ~2k to ~12k LoC, monotone: %b)\n"
    Kerndata.Verifier_loc.growth_factor Kerndata.Verifier_loc.monotone;
  (* the executable cross-check: this repo's own verifier grows the same
     way — features map to config knobs and code paths that exist here *)
  Printf.printf
    "cross-check: this repository's verifier implements the same feature\n\
     ladder (bounds tracking, state pruning, spin-lock tracking, reference\n\
     tracking, bounded loops, callback verification) — see exp-vcost for\n\
     what each costs.\n"

(* ------------------------------------------------------------------ *)
(* Figure 3: call-graph complexity of each helper                      *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  print_string (Report.section "Figure 3: call-graph complexity of each eBPF helper");
  let built = Callgraph.Kernel_graph.build () in
  let dist = Callgraph.Analysis.measure built in
  Printf.printf "synthetic Linux-5.18 call graph: %d nodes, %d edges, %d helper roots\n"
    (Callgraph.Graph.node_count built.Callgraph.Kernel_graph.graph)
    (Callgraph.Graph.edge_count built.Callgraph.Kernel_graph.graph)
    dist.Callgraph.Analysis.n;
  Printf.printf "\nper-helper reachable-node counts (log buckets):\n";
  print_string (Report.log_buckets_chart (Callgraph.Analysis.log_histogram dist));
  let row name =
    match Callgraph.Analysis.find dist name with
    | Some m -> Printf.printf "  %-26s %5d nodes\n" name m.Callgraph.Analysis.nodes
    | None -> ()
  in
  Printf.printf "\nanchors the paper names exactly:\n";
  row "bpf_get_current_pid_tgid";
  row "bpf_sys_bpf";
  print_string
    (Report.table
       ~header:[ "statistic"; "paper"; "measured" ]
       [ [ "helpers (5.18 census)"; "249"; string_of_int dist.Callgraph.Analysis.n ];
         [ "share with 30+ nodes"; "52.2%";
           Printf.sprintf "%.1f%%" (100. *. dist.Callgraph.Analysis.share_ge30) ];
         [ "share with 500+ nodes"; "34.5%";
           Printf.sprintf "%.1f%%" (100. *. dist.Callgraph.Analysis.share_ge500) ];
         [ "bpf_get_current_pid_tgid"; "calls nothing (1)";
           string_of_int
             (match Callgraph.Analysis.find dist "bpf_get_current_pid_tgid" with
             | Some m -> m.Callgraph.Analysis.nodes
             | None -> -1) ];
         [ "bpf_sys_bpf"; "4845";
           string_of_int
             (match Callgraph.Analysis.find dist "bpf_sys_bpf" with
             | Some m -> m.Callgraph.Analysis.nodes
             | None -> -1) ] ])

(* ------------------------------------------------------------------ *)
(* Figure 4: number of helpers by version                              *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  print_string (Report.section "Figure 4: number of eBPF helpers by kernel version");
  print_string
    (Report.table
       ~header:[ "version"; "year"; "#helpers" ]
       (List.map
          (fun (p : Kerndata.Helper_history.point) ->
            [ Kver.to_string p.version; string_of_int (Kver.year p.version);
              string_of_int p.count ])
          Kerndata.Helper_history.series));
  print_string
    (Report.bar_chart
       (List.map
          (fun (p : Kerndata.Helper_history.point) ->
            (Kver.to_string p.version, float_of_int p.count))
          Kerndata.Helper_history.series));
  Printf.printf
    "slope: %.1f helpers per two years (paper: \"roughly 50 helper functions \
     are added every two years\")\n"
    Kerndata.Helper_history.per_two_years;
  Printf.printf
    "Fig. 3 census cross-check: %d helpers in 5.18 counting per-program-type entries\n"
    Kerndata.Helper_history.census_5_18;
  (* executable cross-check against our own registry *)
  Printf.printf "\nimplemented-registry growth (this repo's %d helpers):\n"
    Helpers.Registry.count;
  List.iter
    (fun v ->
      Printf.printf "  %-6s %2d implemented\n" (Kver.to_string v)
        (List.length (Helpers.Registry.available ~version:v)))
    Kver.figure_axis

(* ------------------------------------------------------------------ *)
(* Table 1: bug statistics, with the executable demo per class         *)
(* ------------------------------------------------------------------ *)

let tab1 ?(run_demos = true) () =
  print_string
    (Report.section "Table 1: bugs in eBPF helpers and verifier (2021-2022)");
  print_string
    (Report.table
       ~header:[ "Vulnerabilities/Bugs"; "Total"; "Helper"; "Verifier" ]
       (List.map
          (fun (c : Kerndata.Bug_stats.clazz) ->
            [ c.name; string_of_int c.total; string_of_int c.in_helpers;
              string_of_int c.in_verifier ])
          Kerndata.Bug_stats.classes
       @ [ [ "Total"; string_of_int Kerndata.Bug_stats.total;
             string_of_int Kerndata.Bug_stats.total_helpers;
             string_of_int Kerndata.Bug_stats.total_verifier ] ]));
  let pt, ph, pv = Kerndata.Bug_stats.paper_totals in
  Printf.printf "paper totals: %d = %d helper + %d verifier (encoded exactly)\n" pt ph pv;
  if run_demos then begin
    Printf.printf
      "\nexecutable instances (each demo run on a vulnerable and a fixed kernel):\n";
    print_string
      (Report.table
         ~header:[ "class"; "demo"; "vulnerable kernel"; "fixed kernel"; "class demonstrated" ]
         (List.map
            (fun (d : Exploits.demo) ->
              let v = d.run ~vulnerable:true in
              let f = d.run ~vulnerable:false in
              [ d.bug_class; d.id;
                (if v.Exploits.attack_succeeded then "attack succeeded" else "no attack");
                (if f.Exploits.attack_succeeded then "ATTACK SUCCEEDED" else "defended");
                Report.check (v.Exploits.attack_succeeded && not f.Exploits.attack_succeeded) ])
            Exploits.all))
  end

(* ------------------------------------------------------------------ *)
(* Table 2: safety properties and enforcement                          *)
(* ------------------------------------------------------------------ *)

let tab2 () =
  print_string
    (Report.section "Table 2: safety properties of the proposed framework (executable)");
  let rows = Framework.Safety_matrix.rows () in
  print_string
    (Report.table
       ~header:[ "Safety property"; "Enforcement (paper)"; "Upheld" ]
       (List.map
          (fun (r : Framework.Safety_matrix.row) ->
            [ r.property; Kerndata.Safety_props.mechanism_to_string r.mechanism;
              Report.check r.upheld ])
          rows));
  Printf.printf "witness details:\n";
  List.iter
    (fun (r : Framework.Safety_matrix.row) ->
      Printf.printf "  %s\n    attempt:  %s\n    observed: %s\n" r.property r.witness
        r.observed)
    rows

(* ------------------------------------------------------------------ *)
(* EXP-SAFETY (§2.2 bullet 1)                                          *)
(* ------------------------------------------------------------------ *)

let exp_safety () =
  print_string
    (Report.section "EXP-SAFETY (§2.2): crash the kernel through bpf_sys_bpf");
  List.iter
    (fun (d : Exploits.demo) ->
      Printf.printf "\n%s\n" d.title;
      List.iter
        (fun vulnerable ->
          let r = d.run ~vulnerable in
          Printf.printf "  %-18s load: %s\n  %-18s run:  %s\n"
            (if vulnerable then "[pre-fix kernel]" else "[post-fix kernel]")
            r.Exploits.gate "" r.Exploits.runtime)
        [ true; false ])
    [ Exploits.sys_bpf_null_union; Exploits.sys_bpf_arbitrary_read ];
  Printf.printf
    "\npaper: \"we achieved a kernel crash by dereferencing the NULL pointer \
     inside\nthe union ... soon was determined to be exploitable (allowing an \
     arbitrary\nkernel read) and assigned a CVE\" — both reproduced above.\n"

(* ------------------------------------------------------------------ *)
(* EXP-TERM (§2.2 bullet 2)                                            *)
(* ------------------------------------------------------------------ *)

let exp_term () =
  print_string
    (Report.section "EXP-TERM (§2.2): nested bpf_loop runs (effectively) forever");
  Printf.printf "sweep: simulated runtime vs iteration budget (all verifier-ACCEPTED):\n";
  let points =
    List.map
      (fun (outer, inner) -> Exploits.nested_loop_run ~outer ~inner ())
      [ (32, 32); (64, 64); (128, 128); (256, 256); (512, 512); (1024, 512) ]
  in
  print_string
    (Report.table
       ~header:[ "outer"; "inner"; "iterations"; "sim runtime"; "ns/iter"; "RCU stalls" ]
       (List.map
          (fun (p : Exploits.term_datapoint) ->
            [ string_of_int p.outer; string_of_int p.inner;
              string_of_int p.total_iterations;
              Format.asprintf "%a" Kernel_sim.Vclock.pp_duration p.sim_runtime_ns;
              Printf.sprintf "%.0f"
                (Int64.to_float p.sim_runtime_ns /. float_of_int p.total_iterations);
              string_of_int p.rcu_stalls ])
          points));
  (* linearity: R^2 of runtime vs iterations *)
  let xs = List.map (fun (p : Exploits.term_datapoint) -> float_of_int p.total_iterations) points in
  let ys = List.map (fun (p : Exploits.term_datapoint) -> Int64.to_float p.sim_runtime_ns) points in
  let n = float_of_int (List.length xs) in
  let sx = List.fold_left ( +. ) 0. xs and sy = List.fold_left ( +. ) 0. ys in
  let sxy = List.fold_left2 (fun a x y -> a +. (x *. y)) 0. xs ys in
  let sxx = List.fold_left (fun a x -> a +. (x *. x)) 0. xs in
  let syy = List.fold_left (fun a y -> a +. (y *. y)) 0. ys in
  let slope = ((n *. sxy) -. (sx *. sy)) /. ((n *. sxx) -. (sx *. sx)) in
  let r =
    ((n *. sxy) -. (sx *. sy))
    /. Float.sqrt (((n *. sxx) -. (sx *. sx)) *. ((n *. syy) -. (sy *. sy)))
  in
  Printf.printf
    "linear fit: %.1f ns/iteration, R^2 = %.6f (paper: \"linear control over \
     total runtime\")\n"
    slope (r *. r);
  let years iters = slope *. iters /. 1e9 /. 86400. /. 365.25 in
  Printf.printf "extrapolation at this slope:\n";
  Printf.printf "  paper's 800 s observation      = %.2e iterations\n" (800e9 /. slope);
  Printf.printf "  2 nested 8M-iteration loops   -> %.1f days\n"
    (years (8_388_608. ** 2.) *. 365.25);
  Printf.printf
    "  3 nested 8M-iteration loops   -> %.1e years (paper: \"millions of years\")\n"
    (years (8_388_608. ** 3.));
  (* the RCU stall itself, at the kernel's real 21 s threshold *)
  Printf.printf
    "\nRCU stall detection (threshold %.0f s, as in Linux): a 512x512 run at the\n\
     default simulated helper costs stays under it; the demo below scales the\n\
     threshold to 100 ms to show the stall firing, and the fixed kernel's\n\
     watchdog cutting the program first:\n"
    (Int64.to_float Kernel_sim.Rcu.default_stall_threshold_ns /. 1e9);
  List.iter
    (fun vulnerable ->
      let r = Exploits.nested_loop_stall.Exploits.run ~vulnerable in
      Printf.printf "  %-22s %s\n"
        (if vulnerable then "[no runtime guards]" else "[watchdog enabled]")
        r.Exploits.runtime)
    [ true; false ]

(* ------------------------------------------------------------------ *)
(* EXP-RETIRE (§3.2): the helper taxonomy, executably                  *)
(* ------------------------------------------------------------------ *)

let exp_retire () =
  print_string (Report.section "EXP-RETIRE (§3.2): helpers under a safe language");
  print_string
    (Report.table
       ~header:[ "disposition"; "count (paper)"; "examples" ]
       [ [ "retire"; Printf.sprintf "%d" Kerndata.Retirement.retire_count;
           "bpf_loop, bpf_strtol, bpf_strncmp, ..." ];
         [ "simplify"; "-"; "bpf_get_task_stack, bpf_sk_lookup_tcp, array lookup" ];
         [ "wrap"; "-"; "bpf_task_storage_get, bpf_sys_bpf" ] ]);
  Printf.printf "\nfull retire list (the paper counts 16):\n";
  List.iter
    (fun (e : Kerndata.Retirement.entry) ->
      if e.disposition = Kerndata.Retirement.Retire then
        Printf.printf "  %-26s %s\n" e.helper e.rustlite_counterpart)
    Kerndata.Retirement.entries;

  (* case study 1: bpf_strtol vs str::parse *)
  Printf.printf "\ncase study 1 — bpf_strtol vs core::str::parse:\n";
  let world = World.create_populated () in
  let hctx = World.new_hctx world in
  let kernel = world.World.kernel in
  let buf =
    Kernel_sim.Kmem.alloc kernel.Kernel_sim.Kernel.mem ~size:32 ~kind:"stack"
      ~name:"strtol_buf" ()
  in
  Kernel_sim.Kmem.store_bytes kernel.Kernel_sim.Kernel.mem ~addr:buf.Kernel_sim.Kmem.base
    ~src:(Bytes.of_string "-4711 trailing\000") ~context:"bench";
  let res_addr = Kernel_sim.Kmem.region_addr buf 24 in
  let ret =
    Helpers.Helpers_string.strtol hctx [| buf.Kernel_sim.Kmem.base; 16L; 0L; res_addr |]
  in
  let helper_result =
    Kernel_sim.Kmem.load kernel.Kernel_sim.Kernel.mem ~size:8 ~addr:res_addr ~context:"bench"
  in
  Printf.printf "  helper:   bpf_strtol(\"-4711 trailing\") = %Ld (consumed %Ld chars)\n"
    helper_result ret;
  let kctx = { Rustlite.Kcrate.hctx; map_ids = [] } in
  (match
     Rustlite.Eval.run ~kctx
       (Rustlite.Ast.Match_option
          { scrutinee = Rustlite.Ast.Str_parse (Rustlite.Ast.Lit_str "-4711");
            bind = "v"; some_branch = Rustlite.Ast.Var "v";
            none_branch = Rustlite.Ast.Lit_int 0L })
   with
  | Rustlite.Eval.Ret v -> Format.printf "  rustlite: \"-4711\".parse() = %a@." Rustlite.Value.pp v
  | other -> Format.printf "  rustlite: %a@." Rustlite.Eval.pp_outcome other);
  Printf.printf "  -> no kernel code involved: the helper can be retired\n";

  (* case study 2: bpf_strncmp vs pure comparison *)
  Printf.printf "\ncase study 2 — bpf_strncmp vs pure safe comparison:\n";
  (match
     Rustlite.Eval.run ~kctx
       (Rustlite.Ast.Str_cmp (Rustlite.Ast.Lit_str "alpha", Rustlite.Ast.Lit_str "beta"))
   with
  | Rustlite.Eval.Ret v -> Format.printf "  rustlite: strcmp(alpha,beta) = %a@." Rustlite.Value.pp v
  | other -> Format.printf "  rustlite: %a@." Rustlite.Eval.pp_outcome other);
  Printf.printf "  -> implemented entirely in the safe language: retired\n";

  (* case study 3: bpf_loop vs a native loop *)
  Printf.printf "\ncase study 3 — bpf_loop vs a native loop:\n";
  (match
     Rustlite.Eval.run ~kctx
       (Rustlite.Ast.Let
          { name = "acc"; mut = true; value = Rustlite.Ast.Lit_int 0L;
            body =
              Rustlite.Ast.Seq
                [ Rustlite.Ast.For
                    ( "i", Rustlite.Ast.Lit_int 0L, Rustlite.Ast.Lit_int 1000L,
                      Rustlite.Ast.Assign
                        ( "acc",
                          Rustlite.Ast.Binop
                            (Rustlite.Ast.Add, Rustlite.Ast.Var "acc",
                             Rustlite.Ast.Var "i") ) );
                  Rustlite.Ast.Var "acc" ] })
   with
  | Rustlite.Eval.Ret v ->
    Format.printf "  rustlite: sum of 0..999 via native for-loop = %a@." Rustlite.Value.pp v
  | other -> Format.printf "  rustlite: %a@." Rustlite.Eval.pp_outcome other);
  Printf.printf "  -> \"bpf_loop ... merely provides a loop mechanism\": retired\n";

  (* simplify/wrap case studies piggyback on the exploit corpus *)
  Printf.printf "\nsimplify/wrap case studies (buggy helper vs safe wrapper):\n";
  List.iter
    (fun id ->
      match Exploits.find id with
      | None -> ()
      | Some d ->
        let v = d.Exploits.run ~vulnerable:true in
        Printf.printf "  %-38s buggy helper: %s\n" d.Exploits.id
          (if v.Exploits.attack_succeeded then "bug manifests" else "no effect"))
    [ "hbug:get-task-stack-no-ref"; "hbug:sk-lookup-request-sock-leak";
      "hbug:array-map-32bit-overflow"; "hbug:task-storage-null-owner";
      "hbug:cve-2022-2785-sys-bpf" ];
  Printf.printf
    "  (rustlite wrappers for the same operations: RAII handles, checked\n\
    \   arithmetic and typed commands — see tab2 and the safe_tracer example)\n"

(* ------------------------------------------------------------------ *)
(* EXP-VCOST (§2.1): verification cost and the complexity budget       *)
(* ------------------------------------------------------------------ *)

(* A program with [n] branches whose paths all join: 2^n paths, but prunable
   states (jset does not refine, so the join states are identical). *)
let diamond_chain_prog n =
  let open Ebpf.Asm in
  let items =
    List.concat
      [ [ mov_i r0 0; ldxdw r6 r1 0 ];
        List.concat_map
          (fun i ->
            (* jset does not refine bounds: the two join states are equal,
               so pruning merges them; without pruning, 2^n paths *)
            [ jset_i r6 1 (Printf.sprintf "t%d" i);
              add_i r0 0;
              label (Printf.sprintf "t%d" i) ])
          (List.init n (fun i -> i));
        [ mov_i r0 0; Ebpf.Asm.exit_ ] ]
  in
  Ebpf.Program.of_items_exn ~name:(Printf.sprintf "diamond%d" n)
    ~prog_type:Ebpf.Program.Kprobe items

(* Branches that accumulate a path-unique bitmask defeat pruning — every
   join sees 2^i distinct constants, so no state subsumes another and the
   verifier hits its complexity budget: the §2.1 wall. *)
let unprunable_prog n =
  let open Ebpf.Asm in
  let items =
    List.concat
      [ [ mov_i r0 0; mov_i r7 0 ];
        List.concat_map
          (fun i ->
            [ ldxdw r6 r1 (8 * (i mod 8));
              jle_i r6 1000 (Printf.sprintf "t%d" i);
              or_i r7 (1 lsl i);
              label (Printf.sprintf "t%d" i) ])
          (List.init n (fun i -> i));
        [ mov_i r0 0; Ebpf.Asm.exit_ ] ]
  in
  Ebpf.Program.of_items_exn ~name:(Printf.sprintf "unprunable%d" n)
    ~prog_type:Ebpf.Program.Kprobe items

let verify_stats ?(prune = true) ?(budget = 1_000_000) prog =
  let config =
    { (Vconfig.default_config ()) with Vconfig.prune; insn_budget = budget }
  in
  let t0 = Unix.gettimeofday () in
  let result = Vconfig.verify ~config ~map_def:(fun _ -> None) prog in
  let dt = Unix.gettimeofday () -. t0 in
  (result, dt)

let prevail_stats prog =
  let t0 = Unix.gettimeofday () in
  let result = Bpf_verifier.Prevail.verify ~map_def:(fun _ -> None) prog in
  let dt = Unix.gettimeofday () -. t0 in
  (result, dt)

let exp_vcost () =
  print_string
    (Report.section "EXP-VCOST (§2.1): verification is expensive and must be capped");
  Printf.printf
    "path-joining branch chains (pruning merges the paths; without pruning the\n\
     walk is exponential — the ablation for design decision 1 in DESIGN.md):\n\n";
  print_string
    (Report.table
       ~header:[ "branches"; "paths"; "pruned: insns"; "pruned: time"; "unpruned: insns";
                 "unpruned: time" ]
       (List.map
          (fun n ->
            let prog = diamond_chain_prog n in
            let with_prune, t1 = verify_stats ~prune:true prog in
            let without, t2 = verify_stats ~prune:false ~budget:2_000_000 prog in
            [ string_of_int n;
              (if n < 62 then Printf.sprintf "2^%d" n else "huge");
              (match with_prune with
              | Ok s -> string_of_int s.Vconfig.insns_processed
              | Error r -> "REJECTED: " ^ r.Vconfig.reason);
              Printf.sprintf "%.1fms" (t1 *. 1000.);
              (match without with
              | Ok s -> string_of_int s.Vconfig.insns_processed
              | Error _ -> "budget exceeded");
              Printf.sprintf "%.1fms" (t2 *. 1000.) ])
          [ 4; 8; 12; 14; 16 ]));
  Printf.printf
    "\npath-unique state (a bitmask of taken branches) defeats pruning even in\n\
     a correct verifier — the scalability wall behind the complexity budget\n\
     (here capped at 100k processed instructions):\n\n";
  print_string
    (Report.table
       ~header:[ "branches"; "in-kernel DFS verdict"; "DFS insns"; "DFS time";
                 "PREVAIL-style AI"; "AI insns"; "AI time" ]
       (List.map
          (fun n ->
            let prog = unprunable_prog n in
            let result, dt = verify_stats ~budget:100_000 prog in
            let presult, pdt = prevail_stats prog in
            [ string_of_int n;
              (match result with
              | Ok _ -> "accepted"
              | Error _ -> "REJECTED (complexity)");
              (match result with
              | Ok s -> string_of_int s.Vconfig.insns_processed
              | Error _ -> ">100000 (budget)");
              Printf.sprintf "%.1fms" (dt *. 1000.);
              (match presult with
              | Ok _ -> "accepted"
              | Error r -> "rejected: " ^ r.Vconfig.reason);
              (match presult with
              | Ok s -> string_of_int s.Bpf_verifier.Prevail.insns_processed
              | Error _ -> "-");
              Printf.sprintf "%.1fms" (pdt *. 1000.) ])
          [ 8; 10; 12; 14; 16; 24; 32 ]));
  Printf.printf
    "\nthe §2.3 comparison: the PREVAIL-style userspace verifier (abstract\n\
     interpretation with joins) verifies the same family in linear work —\n\
     but joins lose path correlations, so it rejects some programs the\n\
     path-sensitive engine proves (see test/test_prevail.ml).\n";
  (* §2.1's false positives: a correct program the verifier cannot prove *)
  Printf.printf
    "\nfalse positives force code massage (§2.1: \"frequently reports false\n\
     positives that unnecessarily force developers to heavily massage correct\n\
     eBPF code\"):\n\n";
  let correct_mod =
    (* idx = value %% 16 is always in-bounds for a 16-byte map value, but the
       abstract domain loses modulo results: rejected *)
    let open Ebpf.Asm in
    Ebpf.Program.of_items_exn ~name:"mod16" ~prog_type:Ebpf.Program.Kprobe
      [ ldxdw r6 r1 0; mov_i r2 16; mod_r r6 r2;
        stdw r10 (-8) 0; map_fd r1 1; mov_r r2 r10; add_i r2 (-8);
        call (Helpers.Registry.id_of_name "bpf_map_lookup_elem"); jeq_i r0 0 "out";
        add_r r0 r6; ldxb r3 r0 0 [@warning "-26"]; label "out"; mov_i r0 0; exit_ ]
  in
  let massaged =
    (* the standard workaround: replace %% 16 with & 15 *)
    let open Ebpf.Asm in
    Ebpf.Program.of_items_exn ~name:"and15" ~prog_type:Ebpf.Program.Kprobe
      [ ldxdw r6 r1 0; and_i r6 15;
        stdw r10 (-8) 0; map_fd r1 1; mov_r r2 r10; add_i r2 (-8);
        call (Helpers.Registry.id_of_name "bpf_map_lookup_elem"); jeq_i r0 0 "out";
        add_r r0 r6; ldxb r3 r0 0 [@warning "-26"]; label "out"; mov_i r0 0; exit_ ]
  in
  let vmap = function
    | 1 ->
      Some { Maps.Bpf_map.name = "m"; kind = Maps.Bpf_map.Array; key_size = 4;
             value_size = 16; max_entries = 4; lock_off = None }
    | _ -> None
  in
  let verdict prog =
    match Vconfig.verify ~map_def:vmap prog with
    | Ok _ -> "accepted"
    | Error r -> Format.asprintf "REJECTED: %a" Vconfig.pp_reject r
  in
  print_string
    (Report.table
       ~header:[ "program (both are memory-safe)"; "verifier verdict" ]
       [ [ "idx = x % 16;  value[idx]"; verdict correct_mod ];
         [ "idx = x & 15;  value[idx]   (the massaged version)"; verdict massaged ] ]);
  Printf.printf
    "\npaper: \"the verifier ... has to limit the eBPF program size and \
     complexity\nto complete the verification in time.  To satisfy these \
     verifier limits,\ndevelopers need to find ways to break their program \
     into small pieces\" —\nsee examples/packet_filter.ml for the forced split.\n"

(* ------------------------------------------------------------------ *)
(* EXP-S4: the §4 discussion features, demonstrated                    *)
(* ------------------------------------------------------------------ *)

let exp_s4 () =
  print_string
    (Report.section "EXP-S4 (§4): dynamic allocation and hardware protection");
  (* dynamic allocation from the pre-allocated pool, RAII-recycled *)
  Printf.printf "dynamic memory allocation (pool-backed, non-sleepable-safe):
";
  let world = World.create_populated () in
  let kctx = { Rustlite.Kcrate.hctx = World.new_hctx world; map_ids = [] } in
  let src =
    Rustlite.Parser.parse_exn
      {|
        let mut sum = 0;
        for i in 0..100 {
          if let Some(c) = pool_alloc() {
            chunk_write(&c, 0, i * i);
            sum = sum + chunk_read(&c, 0);
          }   // chunk drops here: returned to the pool
        }
        sum
      |}
  in
  (match Rustlite.Eval.run ~kctx src with
  | Rustlite.Eval.Ret v ->
    Format.printf
      "  100 allocations from a %d-chunk pool, every chunk recycled by RAII: sum=%a@."
      Kernel_sim.Kernel.default_pool_chunks Rustlite.Value.pp v
  | o -> Format.printf "  unexpected: %a@." Rustlite.Eval.pp_outcome o);
  Printf.printf "  leaked chunks after the run: %d (pool available: %d)
"
    (List.length (Kernel_sim.Mempool.leaked world.World.kernel.Kernel_sim.Kernel.pool))
    (Kernel_sim.Mempool.available world.World.kernel.Kernel_sim.Kernel.pool);
  (* MPK ablation: a stray kernel write into extension memory *)
  Printf.printf
    "
protection from unsafe code (MPK-style domains; the §4 open question):
";
  let stray_write ~mpk =
    let kernel = Kernel_sim.Kernel.create () in
    let mem = kernel.Kernel_sim.Kernel.mem in
    let ext = Kernel_sim.Kmem.alloc mem ~size:64 ~kind:"map_value" ~name:"ext" () in
    Kernel_sim.Kmem.set_domain ext ~pkey:1;
    if mpk then Kernel_sim.Kmem.enable_mpk mem;
    match
      Kernel_sim.Kmem.store mem ~size:8 ~addr:ext.Kernel_sim.Kmem.base ~value:0x41L
        ~context:"buggy kernel subsystem"
    with
    | () -> "silent corruption of extension data"
    | exception Kernel_sim.Oops.Kernel_oops r ->
      Format.asprintf "blocked: %a" Kernel_sim.Oops.pp_report r
  in
  print_string
    (Report.table
       ~header:[ "configuration"; "stray helper write into extension memory" ]
       [ [ "MPK disabled (today)"; stray_write ~mpk:false ];
         [ "MPK domains enforced"; stray_write ~mpk:true ] ]);
  Printf.printf
    "paper: \"if we must resort to hardware protection mechanisms, is language\n\
     safety or verification still necessary?\" — the matrix above shows the two\n\
     mechanisms defend against different writers (guest vs host), so they compose.\n"

(* ------------------------------------------------------------------ *)
(* PERF: bechamel microbenchmarks                                      *)
(* ------------------------------------------------------------------ *)

let bechamel_run tests =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> Printf.printf "  %-34s %12.1f ns/op\n" name est
      | _ -> Printf.printf "  %-34s (no estimate)\n" name)
    results

(* a small ALU-heavy verified program: 64-iteration counted loop *)
let alu_loop_prog =
  let open Ebpf.Asm in
  Ebpf.Program.of_items_exn ~name:"alu_loop" ~prog_type:Ebpf.Program.Kprobe
    [ mov_i r0 0; mov_i r6 64;
      label "loop";
      add_i r0 7; xor_i r0 3; add_i r0 1;
      sub_i r6 1; jne_i r6 0 "loop";
      exit_ ]

let perf () =
  print_string
    (Report.section "PERF: runtime-mechanism overhead (bechamel, ns per operation)");
  let world = World.create_populated () in
  let hctx = World.new_hctx world in
  let ctx =
    Kernel_sim.Kmem.alloc world.World.kernel.Kernel_sim.Kernel.mem ~size:64
      ~kind:"ctx" ~name:"bench_ctx" ()
  in
  let ctx_addr = ctx.Kernel_sim.Kmem.base in
  let jit = Runtime.Jit.compile hctx alu_loop_prog in
  let m =
    World.register_map world
      { Maps.Bpf_map.name = "bench"; kind = Maps.Bpf_map.Array; key_size = 4;
        value_size = 8; max_entries = 16; lock_off = None }
  in
  let key = Bytes.make 4 '\000' in
  let kctx = { Rustlite.Kcrate.hctx; map_ids = [ ("bench", m.Maps.Bpf_map.id) ] } in
  let rl_loop =
    Rustlite.Ast.(
      Let
        { name = "acc"; mut = true; value = Lit_int 0L;
          body =
            Seq
              [ For ("i", Lit_int 0L, Lit_int 64L,
                     Assign ("acc", Binop (Add, Var "acc", Lit_int 7L)));
                Var "acc" ] })
  in
  let open Bechamel in
  bechamel_run
    (Test.make_grouped ~name:"untenable"
       [ Test.make ~name:"interp: 64-iter ALU loop"
           (Staged.stage (fun () ->
                ignore
                  (Runtime.Interp.run ~hctx ~prog:alu_loop_prog ~ctx_addr ())));
         Test.make ~name:"interp+fuel guard: same loop"
           (Staged.stage (fun () ->
                ignore
                  (Runtime.Interp.run ~fuel:100_000L ~hctx ~prog:alu_loop_prog
                     ~ctx_addr ())));
         Test.make ~name:"jit: same loop"
           (Staged.stage (fun () -> ignore (Runtime.Jit.run hctx jit ~ctx_addr)));
         Test.make ~name:"rustlite eval: same loop"
           (Staged.stage (fun () -> ignore (Rustlite.Eval.run ~kctx rl_loop)));
         Test.make ~name:"rustlite eval+fuel: same loop"
           (Staged.stage (fun () ->
                ignore (Rustlite.Eval.run ~fuel:100_000L ~kctx rl_loop)));
         Test.make ~name:"helper: map_lookup_elem"
           (Staged.stage (fun () ->
                ignore (Maps.Bpf_map.lookup m ~key)));
         Test.make ~name:"verifier: 16-branch diamond (pruned)"
           (Staged.stage
              (let prog = diamond_chain_prog 16 in
               fun () -> ignore (verify_stats prog)));
         Test.make ~name:"toolchain: typecheck+own+sign"
           (Staged.stage (fun () ->
                ignore
                  (Rustlite.Toolchain.compile
                     { Rustlite.Toolchain.name = "bench"; maps = []; body = rl_loop })));
         Test.make ~name:"signature validation (load time)"
           (Staged.stage
              (let ext =
                 Result.get_ok
                   (Rustlite.Toolchain.compile
                      { Rustlite.Toolchain.name = "bench"; maps = []; body = rl_loop })
               in
               fun () -> ignore (Rustlite.Toolchain.validate ext))) ])

(* ------------------------------------------------------------------ *)
(* TELEMETRY: instrumentation overhead                                 *)
(* ------------------------------------------------------------------ *)

(* Manual timing loops rather than bechamel: the measurement toggles a global
   flag between the two arms, and bechamel interleaves test quotas in ways
   that make flag scoping fragile. *)
let telemetry ?(smoke = false) () =
  print_string
    (Report.section "TELEMETRY: instrumentation overhead (interpreter hot path)");
  let iters = if smoke then 200 else 400 in
  let world = World.create_populated () in
  let hctx = World.new_hctx world in
  let ctx =
    Kernel_sim.Kmem.alloc world.World.kernel.Kernel_sim.Kernel.mem ~size:64
      ~kind:"ctx" ~name:"bench_ctx" ()
  in
  let ctx_addr = ctx.Kernel_sim.Kmem.base in
  let jit = Runtime.Jit.compile hctx alu_loop_prog in
  let run_interp () =
    ignore (Runtime.Interp.run ~hctx ~prog:alu_loop_prog ~ctx_addr ())
  in
  let run_jit () = ignore (Runtime.Jit.run hctx jit ~ctx_addr) in
  let was_enabled = Telemetry.Registry.enabled () in
  let measure name f =
    (* Interleave the two arms rep by rep so CPU-frequency and GC drift hit
       both equally, and take the min over many short reps — the floor
       estimator.  Timing the arms in separate blocks showed ±6% run-to-run
       swings, larger than the overhead being measured.  The warm-up also
       fills the trace ring once, so the enabled arm is measured in steady
       state (pushes take the drop path and do not allocate) rather than
       paying the one-time ring fill. *)
    let reps = if smoke then 3 else 41 in
    let rep enabled =
      Telemetry.Registry.set_enabled enabled;
      Gc.minor ();
      let t0 = Unix.gettimeofday () in
      for _ = 1 to iters do
        f ()
      done;
      (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters
    in
    Telemetry.Registry.reset ();
    ignore (rep true);
    ignore (rep false);
    ignore (rep true);
    let off = ref infinity and on_ = ref infinity in
    for _ = 1 to reps do
      off := Float.min !off (rep false);
      on_ := Float.min !on_ (rep true)
    done;
    let off = !off and on_ = !on_ in
    let overhead = (on_ -. off) /. off *. 100. in
    Printf.printf "  %-28s no-op sink %10.1f ns/run   enabled %10.1f ns/run   overhead %+.1f%%\n"
      name off on_ overhead;
    overhead
  in
  let interp_overhead = measure "interp: 64-iter ALU loop" run_interp in
  let _jit_overhead = measure "jit: same loop" run_jit in
  Printf.printf "  target: <5%% on the interpreter hot path — %s (%+.1f%%)\n"
    (if interp_overhead < 5. then "MET" else "MISSED")
    interp_overhead;
  let s = Telemetry.Registry.snapshot () in
  let nonzero = List.length (List.filter (fun (_, v) -> v <> 0) s.Telemetry.Registry.counters) in
  Printf.printf "  (enabled arm left %d nonzero counters, %d trace events retained, %d dropped)\n"
    nonzero (List.length s.Telemetry.Registry.events) s.Telemetry.Registry.dropped_events;
  Telemetry.Registry.set_enabled was_enabled

(* ------------------------------------------------------------------ *)
(* PROFILE: sampling-profiler overhead                                 *)
(* ------------------------------------------------------------------ *)

(* Same interleaved min-floor harness as the telemetry experiment, with
   telemetry enabled in every arm (the sampler requires it).  Three arms
   rep by rep: sampling off measured twice — the delta between the two
   identical replicates is the noise floor, which is what "no measurable
   overhead disabled" is measured against (the disabled path is one
   always-false compare per instruction) — and sampling on, whose delta
   over the off arm is the <5% acceptance. *)
let profile_exp ?(smoke = false) () =
  print_string
    (Report.section "PROFILE: Vclock sampling-profiler overhead (interp + jit)");
  let iters = if smoke then 200 else 400 in
  let period = 5000L in
  let world = World.create_populated () in
  let hctx = World.new_hctx world in
  let ctx =
    Kernel_sim.Kmem.alloc world.World.kernel.Kernel_sim.Kernel.mem ~size:64
      ~kind:"ctx" ~name:"bench_ctx" ()
  in
  let ctx_addr = ctx.Kernel_sim.Kmem.base in
  let jit = Runtime.Jit.compile hctx alu_loop_prog in
  let run_interp () =
    ignore (Runtime.Interp.run ~hctx ~prog:alu_loop_prog ~ctx_addr ())
  in
  let run_jit () = ignore (Runtime.Jit.run hctx jit ~ctx_addr) in
  let was_enabled = Telemetry.Registry.enabled () in
  Telemetry.Registry.set_enabled true;
  let reps = if smoke then 3 else 41 in
  let measure name f =
    let rep sampling =
      Telemetry.Profiler.set_period (if sampling then period else 0L);
      Gc.minor ();
      let t0 = Unix.gettimeofday () in
      for _ = 1 to iters do
        f ()
      done;
      Telemetry.Profiler.set_period 0L;
      (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters
    in
    Telemetry.Registry.reset ();
    ignore (rep true);
    ignore (rep false);
    ignore (rep true);
    let off1 = ref infinity and off2 = ref infinity and on_ = ref infinity in
    for _ = 1 to reps do
      off1 := Float.min !off1 (rep false);
      on_ := Float.min !on_ (rep true);
      off2 := Float.min !off2 (rep false)
    done;
    let off = Float.min !off1 !off2 in
    let noise = Float.abs (!off1 -. !off2) /. off *. 100. in
    let overhead = (!on_ -. off) /. off *. 100. in
    Printf.printf
      "  %-26s sampling off %8.1f ns/run   on %8.1f ns/run   overhead %+.1f%%  \
       (replicate delta %.1f%% = noise floor)\n"
      name off !on_ overhead noise;
    overhead
  in
  let interp_overhead = measure "interp: 64-iter ALU loop" run_interp in
  let _jit_overhead = measure "jit: same loop" run_jit in
  Printf.printf "  samples taken while armed: %d (period %Ldns, vclock-driven)\n"
    (Telemetry.Profiler.total ()) period;
  (match Telemetry.Profiler.sample_list () with
  | (stack, n) :: _ -> Printf.printf "  hottest stack: %s (%d samples)\n" stack n
  | [] -> ());
  (* The full run has enough replicates to resolve the real target; the
     3-rep smoke run only has the statistical power to bound the ratio. *)
  (if smoke then
     Printf.printf
       "  smoke bound: sampling-on/off ratio below 2.0x — %s (%.2fx); see \
        `bench -- profile` for the <5%% measurement\n"
       (if interp_overhead < 100. then "MET" else "MISSED")
       (1. +. (interp_overhead /. 100.))
   else
     Printf.printf
       "  target: sampling enabled <5%% on the interpreter hot path — %s \
        (%+.1f%%); disabled cost sits below the replicate noise floor\n"
       (if interp_overhead < 5. then "MET" else "MISSED")
       interp_overhead);
  Telemetry.Profiler.reset ();
  Telemetry.Registry.set_enabled was_enabled

(* ------------------------------------------------------------------ *)
(* THROUGHPUT: the serving path — verdict cache + dispatch engine      *)
(* ------------------------------------------------------------------ *)

(* The paper's load-path cost (§2.1) is per *load*; a kernel under heavy
   extension traffic amortises it.  Part 1 measures what the
   content-addressed verdict cache buys on repeat loads of one
   expensive-to-verify image; part 2 drives a synthetic packet stream
   through several attached filters with the pooled dispatch engine and
   checks the run is deterministic. *)
let throughput ?(smoke = false) () =
  print_string
    (Report.section
       "THROUGHPUT: content-addressed verdict cache and the dispatch engine");
  (* -- part 1: repeat loads of one expensive-to-verify image -- *)
  let n = if smoke then 10 else 14 in
  let prog = unprunable_prog n in
  let loads = if smoke then 5 else 25 in
  let time_repeat ~use_cache =
    let world = World.create_populated () in
    (match Framework.Pipeline.load_ebpf ~use_cache world prog with
    | Ok _ -> ()
    | Error e -> failwith (Format.asprintf "%a" Framework.Pipeline.pp_error e));
    let t0 = Unix.gettimeofday () in
    for _ = 1 to loads do
      ignore (Framework.Pipeline.load_ebpf ~use_cache world prog)
    done;
    ((Unix.gettimeofday () -. t0) /. float_of_int loads, world)
  in
  let uncached, _ = time_repeat ~use_cache:false in
  let cached, cworld = time_repeat ~use_cache:true in
  let speedup = uncached /. Float.max cached 1e-9 in
  Printf.printf
    "  repeat loads of %s (%d insns, pruning-defeating):\n\
    \    uncached %8.3f ms/load\n\
    \    cached   %8.4f ms/load  (%.0fx; world cache: %d hits %d misses %d entries)\n"
    prog.Ebpf.Program.name (Ebpf.Program.length prog) (uncached *. 1000.)
    (cached *. 1000.) speedup
    (Framework.Verdict_cache.hits cworld.World.vcache)
    (Framework.Verdict_cache.misses cworld.World.vcache)
    (Framework.Verdict_cache.size cworld.World.vcache);
  Printf.printf "  acceptance: cache-hit repeat load >=10x faster — %s\n\n"
    (if speedup >= 10. then "MET" else "MISSED");
  (* -- part 2: a packet stream through several attached filters -- *)
  let build_engine () =
    let world = World.create_populated () in
    let engine = Framework.Dispatch.create world in
    let open Ebpf.Asm in
    let h = Helpers.Registry.id_of_name in
    let filter name items =
      Ebpf.Program.of_items_exn ~name ~prog_type:Ebpf.Program.Socket_filter items
    in
    let filters =
      [ filter "len" [ ldxw r0 r1 0; exit_ ];
        filter "parity" [ ldxw r6 r1 0; mov_r r0 r6; and_i r0 1; exit_ ];
        (* payload-dependent: return the big-endian u16 at offset 16 *)
        filter "port"
          [ stdw r10 (-8) 0; mov_i r1 16; mov_r r2 r10; add_i r2 (-8);
            mov_i r3 2; call (h "bpf_skb_load_bytes"); ldxb r6 r10 (-8);
            lsh_i r6 8; ldxb r7 r10 (-7); or_r r6 r7; mov_r r0 r6; exit_ ] ]
    in
    List.iter
      (fun p ->
        match Framework.Pipeline.load_ebpf engine.Framework.Dispatch.world p with
        | Ok loaded ->
          ignore
            (Framework.Attach.attach engine.Framework.Dispatch.attach ~hook:"xdp"
               loaded)
        | Error e -> failwith (Format.asprintf "%a" Framework.Pipeline.pp_error e))
      filters;
    engine
  in
  let count = if smoke then 500 else 10_000 in
  let engine = build_engine () in
  let stats =
    (Serve.run engine (Serve.plan ~size:64 ~hook:"xdp" ~count ())).Serve.totals
  in
  Printf.printf "  dispatch %d events x %d attached filters:\n    %s\n" count
    (Framework.Attach.count engine.Framework.Dispatch.attach)
    (Format.asprintf "%a" Serve.pp_totals stats);
  (* determinism: a second engine, same seed, must match checksum-for-checksum *)
  let stats' =
    (Serve.run (build_engine ()) (Serve.plan ~size:64 ~hook:"xdp" ~count ()))
      .Serve.totals
  in
  Printf.printf "  deterministic replay (fresh world, same seed): %s\n"
    (if
       Int64.equal stats.Serve.ret_checksum stats'.Serve.ret_checksum
       && stats.Serve.invocations = stats'.Serve.invocations
     then "MATCH"
     else "MISMATCH");
  let cval name = Telemetry.Counter.value (Telemetry.Registry.counter name) in
  Printf.printf
    "  counters: pipeline.cache_hits=%d pipeline.cache_misses=%d \
     dispatch.events=%d dispatch.events_per_sec=%d\n"
    (cval "pipeline.cache_hits") (cval "pipeline.cache_misses")
    (cval "dispatch.events") (cval "dispatch.events_per_sec")

(* ------------------------------------------------------------------ *)
(* CHAOS: supervised dispatch under deterministic fault injection      *)
(* ------------------------------------------------------------------ *)

(* The §3 position made operational: what the verifier cannot promise, the
   serving path must absorb.  Part 1 attaches a verifier-accepted crasher
   (the §2.2 probe-read vehicle, bug armed) next to healthy filters and
   shows the supervised engine quarantining it while every event is still
   served.  Part 2 measures what chaos injection costs: the same healthy
   population with and without a 1% deterministic fault schedule, compared
   by throughput. *)
let chaos_exp ?(smoke = false) () =
  let module Dispatch = Framework.Dispatch in
  let module Chaos = Framework.Chaos in
  let module Supervisor = Framework.Supervisor in
  let module Attach = Framework.Attach in
  print_string
    (Report.section
       "CHAOS: supervised dispatch under deterministic fault injection");
  let open Ebpf.Asm in
  let h = Helpers.Registry.id_of_name in
  let load world name ~prog_type items =
    match
      Loader.load_ebpf world
        (Ebpf.Program.of_items_exn ~name ~prog_type items)
    with
    | Ok loaded -> loaded
    | Error e -> failwith (Format.asprintf "%a" Loader.pp_load_error e)
  in
  let build ?policy ~crasher () =
    let world = World.create_populated () in
    let engine = Dispatch.create ?policy world in
    if crasher then begin
      Helpers.Bugdb.force_on world.World.bugs "hbug:probe-read-size-unchecked";
      ignore
        (Attach.attach engine.Dispatch.attach ~hook:"xdp"
           (load world "crasher" ~prog_type:Ebpf.Program.Kprobe
              [ call (h "bpf_get_current_task"); mov_r r3 r0; mov_r r1 r10;
                add_i r1 (-16); mov_i r2 16; call (h "bpf_probe_read_kernel");
                mov_i r0 0; exit_ ]))
    end;
    List.iter
      (fun (name, items) ->
        ignore
          (Attach.attach engine.Dispatch.attach ~hook:"xdp"
             (load world name ~prog_type:Ebpf.Program.Socket_filter items)))
      [ ("len", [ ldxw r0 r1 0; exit_ ]);
        ("parity", [ ldxw r6 r1 0; mov_r r0 r6; and_i r0 1; exit_ ]);
        ("mask", [ ldxw r6 r1 0; mov_r r0 r6; and_i r0 255; exit_ ]) ]
    ;
    engine
  in
  let run ?chaos ~count engine =
    Serve.run engine (Serve.plan ?chaos ~size:64 ~hook:"xdp" ~count ())
  in
  let eps (s : Serve.stats) = s.Serve.totals.Serve.events_per_sec in
  (* -- part 1: a crasher in the population, supervised -- *)
  let count1 = if smoke then 300 else 3_000 in
  let sup_config =
    { Supervisor.default_config with
      Supervisor.cooldown_ns = 100L (* expire within a few events *);
      max_cooldown_ns = 1_000L }
  in
  let engine = build ~policy:(Dispatch.Supervise sup_config) ~crasher:true () in
  let r = run ~count:count1 engine in
  Printf.printf
    "  crasher + 3 healthy filters, Supervise policy, %d events:\n    %s\n"
    count1
    (Format.asprintf "%a" Serve.pp_stats r);
  List.iter
    (fun h -> Format.printf "%a@." Supervisor.pp_health h)
    r.Serve.per_ext;
  Printf.printf "  acceptance: every event served, offender quarantined — %s\n\n"
    (if
       r.Serve.totals.Serve.events = count1
       && r.Serve.totals.Serve.quarantined = 1
     then "MET"
     else "MISSED");
  (* -- part 2: throughput cost of a 1% chaos schedule -- *)
  let count2 = if smoke then 5_000 else 20_000 in
  let chaos = Chaos.default_config (* 1% fault rate *) in
  ignore (run ~count:(count2 / 10) (build ~crasher:false ())) (* warm up *);
  (* wall-clock rates are noisy at smoke sizes: take the best of [reps]
     runs of each configuration (the schedule is deterministic, so every
     rep serves the identical stream) *)
  let reps = if smoke then 3 else 2 in
  let best ?chaos () =
    List.fold_left
      (fun acc r -> if eps r > eps acc then r else acc)
      (run ?chaos ~count:count2 (build ~crasher:false ()))
      (List.init (reps - 1) (fun _ ->
           run ?chaos ~count:count2 (build ~crasher:false ())))
  in
  let base = best () in
  let noisy = best ~chaos () in
  let degradation = (eps base -. eps noisy) /. eps base *. 100. in
  Printf.printf
    "  healthy population, %d events, chaos fault rate %.1f%% (%d planned):\n\
    \    calm  %s\n\
    \    chaos %s\n\
    \    degradation %.1f%%\n"
    count2
    (chaos.Chaos.fault_rate *. 100.)
    (Chaos.planned chaos ~count:count2)
    (Format.asprintf "%a" Serve.pp_stats base)
    (Format.asprintf "%a" Serve.pp_stats noisy)
    degradation;
  Printf.printf
    "  acceptance: <15%% throughput degradation at 1%% fault rate — %s\n"
    (if degradation < 15. then "MET" else "MISSED")

(* ------------------------------------------------------------------ *)
(* ELISION: what the redundant-guard pass buys the serving path        *)
(* ------------------------------------------------------------------ *)

(* A guard-heavy filter: a chain of constant bounds checks the elide pass
   resolves statically, in front of a small amount of real packet work.
   The same loaded handle is invoked with elision honoured and with every
   guard evaluated dynamically; fuel and virtual clock charge identically
   either way (an elided guard still retires), so the delta is pure
   host-side dispatch cost — the honest analogue of compiling checks
   out. *)
let elision_exp ?(smoke = false) () =
  let module Pipeline = Framework.Pipeline in
  let module Invoke = Framework.Invoke in
  print_string
    (Report.section "ELISION: redundant-guard elision on the serving path");
  let guards = 48 in
  let open Ebpf.Asm in
  let prog =
    Ebpf.Program.of_items_exn ~name:"guard-heavy"
      ~prog_type:Ebpf.Program.Socket_filter
      ([ mov_i r6 4 ]
      @ List.concat
          (List.init guards (fun i ->
               [ jgt_i r6 (10 + (i mod 7)) "drop" ]))
      @ [ ldxw r0 r1 0; and_i r0 0xff; exit_; label "drop"; mov_i r0 0;
          exit_ ])
  in
  let world = World.create_populated () in
  let loaded =
    match Pipeline.load_ebpf world prog with
    | Ok l -> l
    | Error e -> failwith (Format.asprintf "%a" Pipeline.pp_error e)
  in
  (match loaded with
  | Pipeline.Ebpf_prog { analysis = Some a; _ } ->
    Printf.printf "  %s: %d insns, %d of %d guards elided statically\n"
      prog.Ebpf.Program.name (Ebpf.Program.length prog) a.Analysis.Driver.elided
      guards
  | _ -> failwith "analysis stage did not run");
  let ictx = Invoke.create world in
  let payload = Bytes.make 64 '\x2a' in
  let count = if smoke then 3_000 else 100_000 in
  let reps = if smoke then 3 else 2 in
  let rate ~use_jit ~use_elision =
    let opts =
      { Invoke.default_opts with
        skb_payload = Some payload; use_jit; use_elision }
    in
    let once () =
      let t0 = Unix.gettimeofday () in
      for _ = 1 to count do
        ignore (Invoke.run ~opts ~ictx world loaded)
      done;
      float_of_int count /. (Unix.gettimeofday () -. t0)
    in
    ignore (once ()) (* warm up *);
    List.fold_left (fun acc _ -> Float.max acc (once ())) (once ())
      (List.init (reps - 1) Fun.id)
  in
  let line engine ~use_jit =
    let off = rate ~use_jit ~use_elision:false in
    let on = rate ~use_jit ~use_elision:true in
    Printf.printf
      "  %-6s %d invocations: guards dynamic %9.0f/s, elided %9.0f/s  \
       (%+.1f%%)\n"
      engine count off on
      ((on -. off) /. off *. 100.);
    (off, on)
  in
  let ioff, ion = line "interp" ~use_jit:false in
  ignore (line "jit" ~use_jit:true);
  (* the acceptance bar is interp throughput: elision must never cost *)
  Printf.printf
    "  acceptance: interp throughput with elision >= without — %s\n"
    (if ion >= ioff *. 0.98 then "MET" else "MISSED")

(* ------------------------------------------------------------------ *)
(* BOUND: static cost bounds and fuel-check batching                   *)
(* ------------------------------------------------------------------ *)

(* The bound pass's hot-path payoff, measured: a loop-heavy program the
   pass proves Bounded serves under a fuel guard with the per-insn fuel
   check hoisted to straight-line-window entry.  Fuel is still charged
   per retired instruction, so outcomes and retired counts must be
   bit-identical with batching on or off — asserted below before the
   throughput legs. *)
let bound_exp ?(smoke = false) () =
  let module Pipeline = Framework.Pipeline in
  let module Invoke = Framework.Invoke in
  print_string
    (Report.section "BOUND: static cost bounds and fuel-check batching");
  let open Ebpf.Asm in
  let body =
    List.concat
      (List.init 8 (fun _ -> [ add_i r0 7; xor_i r0 3; add_i r0 1 ]))
  in
  let prog =
    Ebpf.Program.of_items_exn ~name:"alu-loop-heavy"
      ~prog_type:Ebpf.Program.Socket_filter
      ([ mov_i r0 0; mov_i r6 32; label "loop" ]
      @ body
      @ [ sub_i r6 1; jne_i r6 0 "loop"; exit_ ])
  in
  let world = World.create_populated () in
  let loaded =
    match Pipeline.load_ebpf world prog with
    | Ok l -> l
    | Error e -> failwith (Format.asprintf "%a" Pipeline.pp_error e)
  in
  (match loaded with
  | Pipeline.Ebpf_prog { analysis = Some a; _ } -> (
    match a.Analysis.Driver.cost with
    | Some c ->
      Format.printf "  %s: %d insns, static bound %a@." prog.Ebpf.Program.name
        (Ebpf.Program.length prog) Analysis.Bound_pass.pp_bound
        c.Analysis.Bound_pass.bound
    | None -> failwith "bound pass did not run")
  | _ -> failwith "analysis stage did not run");
  let ictx = Invoke.create world in
  let payload = Bytes.make 64 '\x2a' in
  let opts_of ~use_jit ~use_bound_batching =
    { Invoke.default_opts with
      skb_payload = Some payload; fuel = Some 100_000L; use_jit;
      use_bound_batching }
  in
  (* identity: batching must not change the outcome or the retired count *)
  List.iter
    (fun use_jit ->
      let once b =
        let r =
          Invoke.run ~opts:(opts_of ~use_jit ~use_bound_batching:b) ~ictx
            world loaded
        in
        (r.Invoke.outcome, r.Invoke.insns_retired)
      in
      if once true <> once false then
        failwith "fuel-check batching changed an outcome or retired count")
    [ false; true ];
  let count = if smoke then 2_000 else 50_000 in
  let reps = if smoke then 3 else 2 in
  let rate ~use_jit ~use_bound_batching =
    let opts = opts_of ~use_jit ~use_bound_batching in
    let once () =
      let t0 = Unix.gettimeofday () in
      for _ = 1 to count do
        ignore (Invoke.run ~opts ~ictx world loaded)
      done;
      float_of_int count /. (Unix.gettimeofday () -. t0)
    in
    ignore (once ()) (* warm up *);
    List.fold_left (fun acc _ -> Float.max acc (once ())) (once ())
      (List.init (reps - 1) Fun.id)
  in
  let line engine ~use_jit =
    let off = rate ~use_jit ~use_bound_batching:false in
    let on = rate ~use_jit ~use_bound_batching:true in
    Printf.printf
      "  %-6s %d invocations: fuel checked per-insn %9.0f/s, batched \
       %9.0f/s  (%+.1f%%)\n"
      engine count off on
      ((on -. off) /. off *. 100.);
    (off, on)
  in
  let ioff, ion = line "interp" ~use_jit:false in
  ignore (line "jit" ~use_jit:true);
  Printf.printf
    "  acceptance: interp hot path with batching >= 5%% faster — %s\n"
    (if ion >= ioff *. 1.05 then "MET" else "MISSED")

(* ------------------------------------------------------------------ *)
(* RELOAD: epoch swaps under live dispatch                             *)
(* ------------------------------------------------------------------ *)

(* The serving core's hot-reload claim, measured.  An epoch swap is one
   pointer publish, so a stream that reloads mid-flight should serve at
   the same rate as one that never does.  Part 1 drives a scripted
   reload schedule through a live stream and reports swap latency, grace
   periods and the transition log; part 2 compares throughput at 0, 1
   and 1-per-10k reloads (the acceptance bar: 1 reload per 10k events
   costs < 5%). *)
let reload_exp ?(smoke = false) () =
  let module Dispatch = Framework.Dispatch in
  let module Attach = Framework.Attach in
  let module Epoch = Framework.Epoch in
  let module Pipeline = Framework.Pipeline in
  print_string (Report.section "RELOAD: epoch swaps under live dispatch");
  let open Ebpf.Asm in
  let h = Helpers.Registry.id_of_name in
  let load world name ~prog_type items =
    match
      Pipeline.load_ebpf world (Ebpf.Program.of_items_exn ~name ~prog_type items)
    with
    | Ok l -> l
    | Error e -> failwith (Format.asprintf "%a" Pipeline.pp_error e)
  in
  let prog_id = function
    | Pipeline.Ebpf_prog { prog_id; _ } -> prog_id
    | Pipeline.Rustlite_ext _ -> assert false
  in
  (* a tail-calling caller plus two switchable targets: each reload
     rewires slot 0, so every swap has a per-event observable effect *)
  let build () =
    let world = World.create_populated () in
    let engine = Framework.Dispatch.create world in
    let b1 =
      prog_id (load world "b1" ~prog_type:Ebpf.Program.Kprobe [ mov_i r0 55; exit_ ])
    in
    let b2 =
      prog_id (load world "b2" ~prog_type:Ebpf.Program.Kprobe [ mov_i r0 77; exit_ ])
    in
    World.set_tail_call world ~index:0 ~prog_id:b1;
    ignore
      (Attach.attach engine.Dispatch.attach ~hook:"xdp"
         (load world "caller" ~prog_type:Ebpf.Program.Kprobe
            [ mov_r r1 r1; mov_i r2 0; mov_i r3 0; call (h "bpf_tail_call");
              mov_i r0 1; exit_ ]));
    ignore
      (Attach.attach engine.Dispatch.attach ~hook:"xdp"
         (load world "len" ~prog_type:Ebpf.Program.Socket_filter
            [ ldxw r0 r1 0; exit_ ]));
    (engine, b1, b2)
  in
  let schedule ~count ~reloads (b1, b2) =
    List.init reloads (fun k ->
        ( (k + 1) * count / (reloads + 1),
          fun _e b ->
            Epoch.set_tail_call b ~index:0
              ~prog_id:(if k mod 2 = 0 then b2 else b1) ))
  in
  (* -- part 1: a scripted schedule; swap latency and grace periods -- *)
  let count1 = if smoke then 2_000 else 20_000 in
  let engine, b1, b2 = build () in
  let world = engine.Dispatch.world in
  let reload = schedule ~count:count1 ~reloads:4 (b1, b2) in
  let r =
    Serve.run engine
      (Serve.plan ~size:64 ~reloads:reload ~hook:"xdp" ~count:count1 ())
  in
  Printf.printf "  scripted stream, %d events, %d reloads applied:\n    %s\n"
    count1 r.Serve.totals.Serve.reloads
    (Format.asprintf "%a" Serve.pp_stats r);
  Printf.printf "  events per epoch: %s\n"
    (String.concat "  "
       (List.map
          (fun (e, n) -> Printf.sprintf "e%d:%d" e n)
          r.Serve.totals.Serve.per_epoch));
  Printf.printf "  transition log:\n";
  List.iter
    (fun tr -> Printf.printf "    %s\n" (Format.asprintf "%a" Epoch.pp_transition tr))
    (Epoch.transitions world.World.epochs);
  let swap = Telemetry.Registry.histogram "epoch.swap_ns" in
  let grace = Telemetry.Registry.histogram "epoch.grace_ns" in
  Printf.printf "  swap latency (host ns):    count=%d mean=%.0f p99=%Ld max=%Ld\n"
    (Telemetry.Histogram.count swap)
    (Telemetry.Histogram.mean swap)
    (Telemetry.Histogram.quantile swap 0.99)
    (Telemetry.Histogram.max_value swap);
  Printf.printf
    "  grace periods (vclock ns): count=%d mean=%.0f max=%Ld (pending %d)\n\n"
    (Telemetry.Histogram.count grace)
    (Telemetry.Histogram.mean grace)
    (Telemetry.Histogram.max_value grace)
    (Epoch.grace_pending world.World.epochs);
  (* -- part 2: throughput at 0 / 1 / 1-per-10k reloads -- *)
  let count2 = if smoke then 10_000 else 100_000 in
  let reps = if smoke then 3 else 5 in
  let rate ~reloads =
    let once () =
      let engine, b1, b2 = build () in
      let reload = schedule ~count:count2 ~reloads (b1, b2) in
      (Serve.run engine
         (Serve.plan ~size:64 ~reloads:reload ~hook:"xdp" ~count:count2 ()))
        .Serve.totals.Serve.events_per_sec
    in
    ignore (once ()) (* warm up *);
    List.fold_left
      (fun acc _ -> Float.max acc (once ()))
      (once ())
      (List.init (reps - 1) Fun.id)
  in
  let dense_n = max 1 (count2 / 10_000) in
  let base = rate ~reloads:0 in
  let one = rate ~reloads:1 in
  let dense = if dense_n = 1 then one else rate ~reloads:dense_n in
  let pct x = (x -. base) /. base *. 100. in
  Printf.printf
    "  throughput, %d events:\n\
    \    0 reloads  %9.0f ev/s\n\
    \    1 reload   %9.0f ev/s (%+.1f%%)\n\
    \    %d reloads %9.0f ev/s (%+.1f%%)\n"
    count2 base one (pct one) dense_n dense (pct dense);
  let degradation = -.pct dense in
  Printf.printf
    "  acceptance: 1 reload per 10k events costs < 5%% throughput — %s (%.1f%%)\n"
    (if degradation < 5. then "MET" else "MISSED")
    degradation;
  degradation < 5.

(* The CI smoke: the reduced run above, plus hard assertions — a seeded
   mid-stream swap must be byte-identical to stopping the world at the
   same boundary (no torn reads), and every superseded epoch must have
   quiesced by the time the stream ends. *)
let reload_smoke () =
  let module Dispatch = Framework.Dispatch in
  let module Attach = Framework.Attach in
  let module Epoch = Framework.Epoch in
  let module Pipeline = Framework.Pipeline in
  ignore (reload_exp ~smoke:true ());
  let open Ebpf.Asm in
  let h = Helpers.Registry.id_of_name in
  let build () =
    let world = World.create_populated () in
    let engine = Framework.Dispatch.create world in
    let load name ~prog_type items =
      match
        Pipeline.load_ebpf world
          (Ebpf.Program.of_items_exn ~name ~prog_type items)
      with
      | Ok l -> l
      | Error e -> failwith (Format.asprintf "%a" Pipeline.pp_error e)
    in
    let b1 =
      match load "b1" ~prog_type:Ebpf.Program.Kprobe [ mov_i r0 55; exit_ ] with
      | Pipeline.Ebpf_prog { prog_id; _ } -> prog_id
      | _ -> assert false
    in
    let b2 =
      match load "b2" ~prog_type:Ebpf.Program.Kprobe [ mov_i r0 77; exit_ ] with
      | Pipeline.Ebpf_prog { prog_id; _ } -> prog_id
      | _ -> assert false
    in
    World.set_tail_call world ~index:0 ~prog_id:b1;
    ignore
      (Attach.attach engine.Dispatch.attach ~hook:"xdp"
         (load "caller" ~prog_type:Ebpf.Program.Kprobe
            [ mov_r r1 r1; mov_i r2 0; mov_i r3 0; call (h "bpf_tail_call");
              mov_i r0 1; exit_ ]));
    (engine, b2)
  in
  let count = 1_000 and boundary = 500 in
  (* live: one epoch swap in the middle of the stream *)
  let engine, b2 = build () in
  let live =
    Serve.run engine
      (Serve.plan
         ~reloads:
           [ (boundary, fun _e b -> Epoch.set_tail_call b ~index:0 ~prog_id:b2) ]
         ~record_checksums:true ~size:64 ~hook:"xdp" ~count ())
  in
  (* oracle: same world shape, stream stopped at the boundary, the same
     change published stop-the-world, stream resumed.  The generator is
     shared so both halves draw the same xorshift sequence. *)
  let engine2, b2' = build () in
  let g = Serve.synthetic_packets ~size:64 () in
  let first =
    Serve.run engine2
      (Serve.plan ~gen:g ~record_checksums:true ~hook:"xdp" ~count:boundary ())
  in
  World.set_tail_call engine2.Dispatch.world ~index:0 ~prog_id:b2';
  let second =
    Serve.run engine2
      (Serve.plan
         ~gen:(fun i -> g (i + boundary))
         ~record_checksums:true ~hook:"xdp"
         ~count:(count - boundary) ())
  in
  let oracle =
    Array.append first.Serve.event_checksums second.Serve.event_checksums
  in
  let fail msg =
    Printf.eprintf "reload-smoke: FAILED — %s\n" msg;
    exit 1
  in
  if live.Serve.totals.Serve.reloads <> 1 then
    fail "expected exactly one applied reload";
  if live.Serve.event_checksums <> oracle then
    fail "torn read: live swap diverged from the stop-the-world oracle";
  if Epoch.grace_pending engine.Dispatch.world.World.epochs <> 0 then
    fail "superseded epoch still pending after the stream quiesced";
  if List.length live.Serve.totals.Serve.per_epoch <> 2 then
    fail "expected the stream to span exactly two epochs";
  Printf.printf
    "reload-smoke: OK — %d events, swap at %d, checksums match the \
     stop-the-world oracle, all epochs quiesced\n"
    count boundary

(* ------------------------------------------------------------------ *)
(* PARALLEL: sharded serving over epoch snapshots                      *)
(* ------------------------------------------------------------------ *)

(* The Serve plan API measured at 1, 2, 4 and 8 domains over the same
   seeded stream.  Every sharded run must reconstruct the sequential
   run's checksum exactly, event for event (the determinism oracle) —
   that gate is unconditional.  The speedup column is honest wall clock,
   so the >= 2.5x-at-4-domains acceptance bar is only judged when the
   host actually has 4 cores to run on; on smaller hosts it reports
   SKIPPED with the core count. *)

let parallel_engine () =
  let world = World.create_populated () in
  let engine = Framework.Dispatch.create world in
  let open Ebpf.Asm in
  let h = Helpers.Registry.id_of_name in
  let filter name items =
    Ebpf.Program.of_items_exn ~name ~prog_type:Ebpf.Program.Socket_filter items
  in
  List.iter
    (fun p ->
      match Framework.Pipeline.load_ebpf world p with
      | Ok loaded ->
        ignore (Framework.Attach.attach engine.Framework.Dispatch.attach ~hook:"xdp" loaded)
      | Error e -> failwith (Format.asprintf "%a" Framework.Pipeline.pp_error e))
    [ filter "len" [ ldxw r0 r1 0; exit_ ];
      filter "parity" [ ldxw r6 r1 0; mov_r r0 r6; and_i r0 1; exit_ ];
      filter "port"
        [ stdw r10 (-8) 0; mov_i r1 16; mov_r r2 r10; add_i r2 (-8);
          mov_i r3 2; call (h "bpf_skb_load_bytes"); ldxb r6 r10 (-8);
          lsh_i r6 8; ldxb r7 r10 (-7); or_r r6 r7; mov_r r0 r6; exit_ ] ];
  engine

(* One mid-stream hot reload both legs of every comparison share: stage a
   fresh filter on the epoch builder and attach it, so the sharded path
   exercises segment capture, snapshot retention and the swap publish. *)
let parallel_reload k (e : Serve.engine) b =
  let name = Printf.sprintf "hot%d" k in
  let prog =
    Ebpf.Asm.(
      Ebpf.Program.of_items_exn ~name ~prog_type:Ebpf.Program.Socket_filter
        [ mov_i r0 (200 + k); exit_ ])
  in
  match Framework.Pipeline.load_ebpf ~into:b e.Serve.world prog with
  | Ok loaded -> ignore (Framework.Attach.attach e.Serve.attach ~hook:"xdp" loaded)
  | Error err -> failwith (Format.asprintf "%a" Framework.Pipeline.pp_error err)

let parallel_exp ?(smoke = false) () =
  print_string (Report.section "PARALLEL: sharded serving over epoch snapshots");
  let count = if smoke then 2_000 else 50_000 in
  let reloads = [ (count / 2, parallel_reload 0) ] in
  let run ~domains =
    let engine = parallel_engine () in
    let plan =
      Serve.plan ~size:64 ~domains ~reloads ~record_checksums:true ~hook:"xdp"
        ~count ()
    in
    if domains = 1 then Serve.run engine plan else Serve.sharded engine plan
  in
  let seq = run ~domains:1 in
  let seq_rate = seq.Serve.totals.Serve.events_per_sec in
  Printf.printf "  %d events x %d filters, one mid-stream reload:\n" count 3;
  let speedups =
    List.map
      (fun domains ->
        let r = if domains = 1 then seq else run ~domains in
        let ok =
          Int64.equal r.Serve.totals.Serve.ret_checksum
            seq.Serve.totals.Serve.ret_checksum
          && r.Serve.event_checksums = seq.Serve.event_checksums
        in
        if not ok then begin
          Printf.eprintf
            "parallel: FAILED — %d-domain run diverged from the sequential \
             checksum\n"
            domains;
          exit 1
        end;
        let rate = r.Serve.totals.Serve.events_per_sec in
        let speedup = rate /. seq_rate in
        Printf.printf "    %d domain%s %9.0f ev/s  %.2fx%s\n" domains
          (if domains = 1 then " " else "s")
          rate speedup
          (if domains = 1 then " (sequential baseline)"
           else "  checksum MATCH");
        (domains, speedup))
      [ 1; 2; 4; 8 ]
  in
  let cores = Domain.recommended_domain_count () in
  let at4 = List.assoc 4 speedups in
  if cores >= 4 then
    Printf.printf "  acceptance: >= 2.5x speedup at 4 domains — %s (%.2fx)\n"
      (if at4 >= 2.5 then "MET" else "MISSED")
      at4
  else
    Printf.printf
      "  acceptance: >= 2.5x speedup at 4 domains — SKIPPED (host has %d \
       core%s; determinism oracle still enforced)\n"
      cores
      (if cores = 1 then "" else "s")

(* The CI smoke: a 4-domain sharded run (forced through the coordinator,
   queues, shard worlds and checksum reconstruction) must agree with the
   sequential loop event for event, with and without a mid-stream
   reload. *)
let parallel_smoke () =
  let count = 1_500 in
  let fail msg =
    Printf.eprintf "parallel-smoke: FAILED — %s\n" msg;
    exit 1
  in
  let leg ~reloads label =
    let seq =
      Serve.run (parallel_engine ())
        (Serve.plan ~size:64 ~reloads ~record_checksums:true ~hook:"xdp" ~count ())
    in
    let par =
      Serve.sharded (parallel_engine ())
        (Serve.plan ~size:64 ~domains:4 ~reloads ~record_checksums:true
           ~hook:"xdp" ~count ())
    in
    if par.Serve.totals.Serve.events <> count then
      fail (label ^ ": sharded run lost events");
    if
      not
        (Int64.equal seq.Serve.totals.Serve.ret_checksum
           par.Serve.totals.Serve.ret_checksum)
    then fail (label ^ ": stream checksum diverged");
    if seq.Serve.event_checksums <> par.Serve.event_checksums then
      fail (label ^ ": per-event checksums diverged");
    if par.Serve.totals.Serve.reloads <> List.length reloads then
      fail (label ^ ": reload count wrong")
  in
  leg ~reloads:[] "calm";
  leg ~reloads:[ (count / 3, parallel_reload 0); (2 * count / 3, parallel_reload 1) ]
    "reloading";
  Printf.printf
    "parallel-smoke: OK — 4-domain sharded serving matches the sequential \
     loop event for event (calm and mid-stream-reload legs)\n"

(* ------------------------------------------------------------------ *)
(* Differential fuzzing: generator throughput and oracle conformance   *)
(* ------------------------------------------------------------------ *)

(* The seeded generator swept through the oracle's execution-mode matrix:
   programs/sec (each program runs on every leg of the matrix) and the
   divergence count, which on an unmodified tree must be zero.  The smoke
   variant is the CI gate: a pinned seed, >= 500 programs, zero
   divergences across the quick matrix, plus one planted-JIT-bug probe
   that must BE caught to prove the oracle has teeth. *)
let fuzz_exp ?(smoke = false) () =
  let budget = if smoke then 500 else 1_000 in
  let matrix = if smoke then "quick" else "full" in
  let seed = 0xF00DL in
  let t0 = Unix.gettimeofday () in
  let r = Fuzz.Driver.run ~seed ~budget ~matrix () in
  let dt = Unix.gettimeofday () -. t0 in
  let per_sec = float_of_int r.Fuzz.Driver.programs /. dt in
  if smoke then begin
    if r.Fuzz.Driver.findings <> [] then begin
      Printf.eprintf "fuzz-smoke: FAILED — %d divergence(s) on seed %Ld:\n"
        (List.length r.Fuzz.Driver.findings) seed;
      List.iter
        (fun f -> Format.eprintf "  %a@." Fuzz.Driver.pp_finding f)
        r.Fuzz.Driver.findings;
      exit 1
    end;
    (* The oracle must also catch a planted bug, or "zero divergences"
       is vacuous. *)
    let planted =
      Fuzz.Driver.run ~seed ~budget:60 ~matrix:"quick"
        ~plant:[ Fuzz.Oracle.jit_branch_bug_key ] ()
    in
    (match planted.Fuzz.Driver.findings with
    | [] ->
      Printf.eprintf
        "fuzz-smoke: FAILED — planted JIT branch bug was not caught\n";
      exit 1
    | f :: _ when f.Fuzz.Driver.shrunk.Fuzz.Shrink.insns > 10 ->
      Printf.eprintf
        "fuzz-smoke: FAILED — planted-bug counterexample did not shrink \
         (%d insns)\n"
        f.Fuzz.Driver.shrunk.Fuzz.Shrink.insns;
      exit 1
    | f :: _ ->
      Printf.printf
        "fuzz-smoke: OK — %d programs, 0 divergences (quick matrix, seed \
         %Ld, %.0f programs/sec); planted JIT bug caught and shrunk to %d \
         insns\n"
        r.Fuzz.Driver.programs seed per_sec
        f.Fuzz.Driver.shrunk.Fuzz.Shrink.insns)
  end
  else begin
    print_string
      (Report.section "FUZZ: differential conformance across execution modes");
    print_string
      (Report.table
         ~header:[ "matrix"; "programs"; "divergences"; "programs/sec" ]
         [ [ matrix; string_of_int r.Fuzz.Driver.programs;
             string_of_int (List.length r.Fuzz.Driver.findings);
             Printf.sprintf "%.0f" per_sec ] ]);
    List.iter
      (fun f -> Format.printf "  %a@." Fuzz.Driver.pp_finding f)
      r.Fuzz.Driver.findings
  end

let experiments =
  [ ("fig2", fig2); ("fig3", fig3); ("fig4", fig4); ("tab1", tab1 ~run_demos:true);
    ("tab2", tab2); ("exp-safety", exp_safety); ("exp-term", exp_term);
    ("exp-retire", exp_retire); ("exp-vcost", exp_vcost); ("exp-s4", exp_s4);
    ("perf", perf); ("telemetry", fun () -> telemetry ());
    ("profile", fun () -> profile_exp ());
    ("throughput", fun () -> throughput ()); ("chaos", fun () -> chaos_exp ());
    ("elision", fun () -> elision_exp ());
    ("bound", fun () -> bound_exp ());
    ("reload", fun () -> ignore (reload_exp ()));
    ("parallel", fun () -> parallel_exp ());
    ("fuzz", fun () -> fuzz_exp ()) ]

(* Not part of the default full run: a reduced-iteration variant for
   `make check`. *)
let tele_isolate () =
  let world = World.create_populated () in
  let hctx = World.new_hctx world in
  let time n g =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do g () done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int n
  in
  let clock = fun () -> Kernel_sim.Vclock.now hctx.Helpers.Hctx.kernel.Kernel_sim.Kernel.clock in
  Telemetry.Registry.set_enabled true;
  let span () = Telemetry.Registry.with_span "interp.run" ~clock (fun () -> ()) in
  ignore (time 1000 span);
  Printf.printf "span alone (enabled): %.1f ns\n" (time 10000 span);
  let h = Telemetry.Registry.histogram "interp.run.ns" in
  let span_h () = Telemetry.Registry.with_span "interp.run" ~clock ~hist:h (fun () -> ()) in
  Printf.printf "span with ~hist: %.1f ns\n" (time 10000 span_h);
  Printf.printf "histogram lookup: %.1f ns\n"
    (time 100000 (fun () -> ignore (Telemetry.Registry.histogram "interp.run.ns")));
  Printf.printf "observe: %.1f ns\n"
    (time 100000 (fun () -> Telemetry.Registry.observe h 12345L));
  Printf.printf "point: %.1f ns\n"
    (time 100000 (fun () -> Telemetry.Registry.point "x.p" ~value:1L));
  Printf.printf "clock call: %.1f ns\n" (time 100000 (fun () -> ignore (clock ())));
  let ctx =
    Kernel_sim.Kmem.alloc world.World.kernel.Kernel_sim.Kernel.mem ~size:64
      ~kind:"ctx" ~name:"iso_ctx" ()
  in
  let ctx_addr = ctx.Kernel_sim.Kmem.base in
  let jit = Runtime.Jit.compile hctx alu_loop_prog in
  let run_jit () = ignore (Runtime.Jit.run hctx jit ~ctx_addr) in
  let run_interp () = ignore (Runtime.Interp.run ~hctx ~prog:alu_loop_prog ~ctx_addr ()) in
  let arm label g =
    ignore (time 1000 g);
    Printf.printf "%s: %.1f ns/run\n" label (time 5000 g)
  in
  Telemetry.Registry.set_enabled false;
  arm "jit disabled" run_jit;
  Telemetry.Registry.set_enabled true;
  Telemetry.Registry.reset ();
  arm "jit enabled (ring 4096)" run_jit;
  Telemetry.Registry.set_trace_capacity 0;
  arm "jit enabled (ring 0)" run_jit;
  Telemetry.Registry.set_trace_capacity 4096;
  Telemetry.Registry.set_enabled false;
  arm "interp disabled" run_interp;
  Telemetry.Registry.set_enabled true;
  Telemetry.Registry.reset ();
  arm "interp enabled (ring 4096)" run_interp;
  Telemetry.Registry.set_trace_capacity 0;
  arm "interp enabled (ring 0)" run_interp;
  Telemetry.Registry.set_trace_capacity 4096;
  let c = Telemetry.Registry.counter "x.y" in
  Printf.printf "bump: %.2f ns\n" (time 100000 (fun () -> Telemetry.Registry.bump c));
  Printf.printf "incr ~n: %.2f ns\n" (time 100000 (fun () -> Telemetry.Registry.incr c ~n:3))

let extra_experiments =
  [ ("telemetry-smoke", fun () -> telemetry ~smoke:true ());
    ("profile-smoke", fun () -> profile_exp ~smoke:true ());
    ("throughput-smoke", fun () -> throughput ~smoke:true ());
    ("chaos-smoke", fun () -> chaos_exp ~smoke:true ());
    ("elision-smoke", fun () -> elision_exp ~smoke:true ());
    ("bound-smoke", fun () -> bound_exp ~smoke:true ());
    ("reload-smoke", reload_smoke);
    ("parallel-smoke", parallel_smoke);
    ("fuzz-smoke", fun () -> fuzz_exp ~smoke:true ());
    ("parallel-quick", fun () -> parallel_exp ~smoke:true ());
    ("tele-isolate", tele_isolate) ]

let () =
  match Sys.argv with
  | [| _ |] ->
    Printf.printf "untenable %s — full reproduction run\n%s\n" Untenable.version
      Untenable.paper;
    List.iter (fun (_, f) -> f ()) experiments
  | [| _; name |] -> (
    match List.assoc_opt name (experiments @ extra_experiments) with
    | Some f -> f ()
    | None ->
      Printf.eprintf "unknown experiment %S; available: %s\n" name
        (String.concat " " (List.map fst experiments));
      exit 1)
  | _ ->
    Printf.eprintf "usage: main.exe [experiment]\n";
    exit 1
