(** The staged extension-load pipeline:

    {v admission -> fixup -> gate [verify | validate-signature] -> link v}

    Path A (today's architecture, paper Figure 1) gates on the in-kernel
    verifier, fronted by the world's content-addressed {!Verdict_cache};
    path B (the proposal, paper Figure 5) gates on toolchain signature
    validation only.  Both paths produce the same {!loaded} handle.

    {!Loader} re-exports this behind the historical flat API. *)

type loaded =
  | Ebpf_prog of { prog_id : int; prog : Ebpf.Program.t;
                   vstats : Bpf_verifier.Verifier.stats;
                   analysis : Analysis.Driver.report option
                     (** [None] when every analysis pass is off *) }
  | Rustlite_ext of { ext : Rustlite.Toolchain.signed_extension;
                      map_ids : (string * int) list }

type stage = Admission | Fixup | Analyze | Gate | Link

val stage_name : stage -> string

type error =
  | Too_many_insns of { count : int; max : int }
      (** admission: program exceeds the instruction cap *)
  | Cost_budget_exceeded of { bound : int; max : int }
      (** admission: static worst-case cost over the [max_cost] budget *)
  | Unbounded_cost
      (** admission: no static bound and the unbounded policy is [Deny] *)
  | Unknown_helper of string  (** fixup: unresolved helper relocation *)
  | Verifier_rejected of Bpf_verifier.Verifier.reject  (** gate, path A *)
  | Verifier_crashed of string  (** gate, path A: a verifier bug fired *)
  | Bad_signature  (** gate, path B *)
  | Duplicate_map of string  (** link, path B: ambiguous declared map name *)

val stage_of_error : error -> stage
val pp_error : Format.formatter -> error -> unit

val admit :
  vconfig:Bpf_verifier.Verifier.config ->
  Ebpf.Program.t -> (Ebpf.Program.t, error) result
(** Admission stage alone: cheap structural caps, before per-insn work,
    under the (staged) verifier configuration the load will publish with. *)

val fixup : Ebpf.Program.t -> (Ebpf.Program.t, error) result
(** Fixup stage alone: resolve helper-name relocations to helper ids. *)

val analyze_ebpf :
  ?use_cache:bool -> aconfig:Analysis.Driver.config -> World.t ->
  Ebpf.Program.t -> Analysis.Driver.report option
(** Analyze stage alone: run the static-analysis passes [aconfig] enables
    (resource obligations, lock discipline, guard elision) on a fixed-up
    program.  Findings are advisory — they never block a load — so the
    stage has no error arm; [None] means every pass is off.  Reports are
    cached in the world's verdict cache under (program digest,
    analysis-config signature). *)

val gate_verify :
  ?use_cache:bool ->
  vconfig:Bpf_verifier.Verifier.config ->
  aconfig:Analysis.Driver.config ->
  World.t -> Ebpf.Program.t ->
  (Bpf_verifier.Verifier.stats, error) result
(** Gate stage, path A: the verifier behind the verdict cache (default on).
    The cache key fingerprints every verdict input, so a changed config or
    bug set invalidates; verifier crashes are never cached.  Cached entries
    are epoch-tagged: a hit stored under an earlier epoch counts as a
    cross-epoch reuse ([cache.cross_epoch_reuse]). *)

val gate_validate :
  Rustlite.Toolchain.signed_extension -> (unit, error) result
(** Gate stage, path B: toolchain signature validation only. *)

val load_ebpf :
  ?use_cache:bool -> ?into:Epoch.builder -> World.t -> Ebpf.Program.t ->
  (loaded, error) result
(** Path A end to end: admission -> fixup -> cached verify gate -> link.

    With [?into], the stages read the builder's staged vconfig/aconfig and
    the link stage emits into it — the load rides the caller's epoch
    transaction and becomes visible when the caller publishes.  Without
    it, a successful load publishes its own epoch; a failed load publishes
    nothing. *)

val load_rustlite :
  World.t -> Rustlite.Toolchain.signed_extension -> (loaded, error) result
(** Path B end to end: validate-signature gate -> link (map registration). *)
