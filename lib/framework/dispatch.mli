(** Dispatch: the historical face of the serving loop, now a thin facade
    over {!Serve}.

    The engine, policy and reload types are {!Serve}'s, re-exported with
    type equations so values flow freely between the two modules.
    Streams are {!Serve}'s business — build a {!Serve.plan} and call
    {!Serve.run}; the deprecated [run_stream] shim has been removed.
    What remains here is the one-event fan-out ({!dispatch_event}), the
    raw building block under both. *)

type policy = Serve.policy =
  | Fail_fast
      (** the first kernel crash aborts the stream and the kernel stays
          dead (the historical [stop_on_crash:true] behaviour) *)
  | Isolate
      (** contain each crash to the invocation that caused it: revive the
          kernel, charge the fault to the offending extension, keep
          serving (the default) *)
  | Supervise of Supervisor.config
      (** isolate + per-extension circuit breakers + quarantine *)

type engine = Serve.engine = {
  world : World.t;
  attach : Attach.t;
  ictx : Invoke.t;
  opts : Invoke.run_opts;
  policy : policy;
  sup : Supervisor.t;
}

val create : ?opts:Invoke.run_opts -> ?policy:policy -> World.t -> engine
(** [opts] applies to every invocation (its [skb_payload] is overridden per
    event).  [policy] defaults to {!Isolate}. *)

type reload_plan = Serve.reload
(** A scheduled hot reload — see {!Serve.reload}. *)

val synthetic_packets : ?seed:int64 -> size:int -> unit -> int -> Bytes.t
(** Alias of {!Serve.synthetic_packets}. *)

val dispatch_event : engine -> hook:string -> Bytes.t -> Invoke.run_report list
(** One event through every extension on [hook], in attach order, with no
    supervision — the raw fan-out. *)
