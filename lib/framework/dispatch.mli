(** Event-driven dispatch: drive simulated packet/event streams through all
    extensions attached to a hook, in attach order, over a pooled
    invocation context — under an explicit fault-handling {!policy}.

    Fully deterministic for a fixed seed: two engines built the same way
    produce identical {!stream_result}s (checksums included), and chaos
    injection is a pure function of [(seed, event index)]. *)

type policy =
  | Fail_fast
      (** the first kernel crash aborts the stream and the kernel stays
          dead (the historical [stop_on_crash:true] behaviour) *)
  | Isolate
      (** contain each crash to the invocation that caused it: revive the
          kernel, charge the fault to the offending extension, keep
          serving (the default) *)
  | Supervise of Supervisor.config
      (** isolate + per-extension circuit breakers + quarantine *)

type engine = {
  world : World.t;
  attach : Attach.t;
  ictx : Invoke.t;
  opts : Invoke.run_opts;
  policy : policy;
  sup : Supervisor.t;
}

val create : ?opts:Invoke.run_opts -> ?policy:policy -> World.t -> engine
(** [opts] applies to every invocation (its [skb_payload] is overridden per
    event).  [policy] defaults to {!Isolate}. *)

type reload_plan = engine -> Epoch.builder -> unit
(** A scheduled hot reload: stage epoch changes on the builder (loads via
    [Pipeline.load_ebpf ~into], unloads, tail-call rewires, config
    changes) and/or rewire the engine's attachments.  The engine publishes
    the builder when the plan returns and measures the swap as
    [epoch.swap_ns]. *)

type stream_result = {
  events : int;
  invocations : int;
  finished : int;
  stopped : int;
  crashed : int;
  exhausted : int;
  skipped : int;      (** invocations suppressed by an open breaker *)
  faults_absorbed : int;
      (** crashes + exhaustions contained (always 0 under [Fail_fast]) *)
  quarantined : int;  (** extensions detached during this stream *)
  injected : int;     (** chaos injections that landed on an event *)
  ret_checksum : int64;  (** order-sensitive fold of all outcomes *)
  host_ns : int64;       (** wall time for the whole stream *)
  events_per_sec : float;
  per_ext : Supervisor.health list;
      (** per-extension health, attach order, quarantined included *)
  reloads : int;  (** reload plans applied (epoch swaps published) *)
  per_epoch : (int * int) list;
      (** events served under each epoch, ascending epoch order *)
  event_checksums : int64 array;
      (** per-event outcome folds; empty unless [record_checksums] *)
}

val all_healthy : stream_result -> bool
(** No faults, no skips, no quarantines: every invocation finished. *)

val pp_stream_result : Format.formatter -> stream_result -> unit

val pp_per_ext : Format.formatter -> stream_result -> unit
(** One {!Supervisor.pp_health} line per extension. *)

val synthetic_packets : ?seed:int64 -> size:int -> unit -> int -> Bytes.t
(** Deterministic packet generator: [synthetic_packets ~size () i] is the
    [i]th packet (byte 0 carries [i land 0xff]). *)

val dispatch_event : engine -> hook:string -> Bytes.t -> Invoke.run_report list
(** One event through every extension on [hook], in attach order, with no
    supervision — the raw fan-out. *)

val run_stream :
  ?chaos:Chaos.config ->
  ?reload:(int * reload_plan) list ->
  ?record_checksums:bool ->
  engine -> hook:string -> gen:(int -> Bytes.t) -> count:int -> unit ->
  stream_result
(** Drive [count] events from [gen] through [hook] under the engine's
    policy.  With [chaos], each event may get a fault injected on the
    deterministic schedule.  Updates the [dispatch.*] telemetry counters
    and exports the stream's throughput as [dispatch.events_per_sec].

    [?reload] schedules hot reloads: each [(i, plan)] runs at the boundary
    {e before} event [i] (plans sharing an index apply in list order) and
    publishes one epoch swap; events keep pinning whichever epoch is
    current when they start, so no event observes a half-applied world.
    [?record_checksums] fills [event_checksums] with a per-event outcome
    fold — the observable the epoch-swap ≡ stop-the-world equivalence
    property compares.

    Engine supervision state (breakers, per-extension tallies) accumulates
    across successive [run_stream] calls on the same engine. *)
