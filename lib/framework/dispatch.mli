(** Dispatch: the historical face of the serving loop, now a thin facade
    over {!Serve}.

    The engine, policy and reload types are {!Serve}'s, re-exported with
    type equations so values flow freely between the two modules.
    {!run_stream} survives one more release as a deprecated shim; new
    code builds a {!Serve.plan} and calls {!Serve.run}. *)

type policy = Serve.policy =
  | Fail_fast
      (** the first kernel crash aborts the stream and the kernel stays
          dead (the historical [stop_on_crash:true] behaviour) *)
  | Isolate
      (** contain each crash to the invocation that caused it: revive the
          kernel, charge the fault to the offending extension, keep
          serving (the default) *)
  | Supervise of Supervisor.config
      (** isolate + per-extension circuit breakers + quarantine *)

type engine = Serve.engine = {
  world : World.t;
  attach : Attach.t;
  ictx : Invoke.t;
  opts : Invoke.run_opts;
  policy : policy;
  sup : Supervisor.t;
}

val create : ?opts:Invoke.run_opts -> ?policy:policy -> World.t -> engine
(** [opts] applies to every invocation (its [skb_payload] is overridden per
    event).  [policy] defaults to {!Isolate}. *)

type reload_plan = Serve.reload
(** A scheduled hot reload — see {!Serve.reload}. *)

type stream_result = {
  events : int;
  invocations : int;
  finished : int;
  stopped : int;
  crashed : int;
  exhausted : int;
  skipped : int;      (** invocations suppressed by an open breaker *)
  faults_absorbed : int;
      (** crashes + exhaustions contained (always 0 under [Fail_fast]) *)
  quarantined : int;  (** extensions detached during this stream *)
  injected : int;     (** chaos injections that landed on an event *)
  ret_checksum : int64;  (** order-sensitive fold of all outcomes *)
  host_ns : int64;       (** wall time for the whole stream *)
  events_per_sec : float;
  per_ext : Supervisor.health list;
      (** per-extension health, attach order, quarantined included *)
  reloads : int;  (** reload plans applied (epoch swaps published) *)
  per_epoch : (int * int) list;
      (** events served under each epoch, ascending epoch order *)
  event_checksums : int64 array;
      (** per-event outcome folds; empty unless [record_checksums] *)
}

val all_healthy : stream_result -> bool
(** No faults, no skips, no quarantines: every invocation finished. *)

val pp_stream_result : Format.formatter -> stream_result -> unit

val pp_per_ext : Format.formatter -> stream_result -> unit
(** One {!Supervisor.pp_health} line per extension. *)

val synthetic_packets : ?seed:int64 -> size:int -> unit -> int -> Bytes.t
(** Alias of {!Serve.synthetic_packets}. *)

val dispatch_event : engine -> hook:string -> Bytes.t -> Invoke.run_report list
(** One event through every extension on [hook], in attach order, with no
    supervision — the raw fan-out. *)

val run_stream :
  ?chaos:Chaos.config ->
  ?reload:(int * reload_plan) list ->
  ?record_checksums:bool ->
  engine -> hook:string -> gen:(int -> Bytes.t) -> count:int -> unit ->
  stream_result
  [@@ocaml.deprecated
    "Build a Serve.plan and call Serve.run instead; this shim assembles a \
     one-domain plan and re-shapes the stats."]
(** Deprecated one-domain shim over {!Serve.run}: identical behaviour to
    the historical loop (supervision state accumulates across calls on
    one engine; [?reload] boundaries, chaos and checksum recording all
    preserved). *)
