(** Event-driven dispatch: drive simulated packet/event streams through all
    extensions attached to a hook, in attach order, over a pooled
    invocation context.

    Fully deterministic for a fixed seed: two engines built the same way
    produce identical {!stream_stats} (checksum included). *)

type engine = {
  world : World.t;
  attach : Attach.t;
  ictx : Invoke.t;
  opts : Invoke.run_opts;
}

val create : ?opts:Invoke.run_opts -> World.t -> engine
(** [opts] applies to every invocation (its [skb_payload] is overridden per
    event). *)

type stream_stats = {
  events : int;
  invocations : int;
  finished : int;
  stopped : int;
  crashed : int;
  ret_checksum : int64;  (** order-sensitive fold of outcomes *)
  host_ns : int64;       (** wall time for the whole stream *)
  events_per_sec : float;
}

val pp_stream_stats : Format.formatter -> stream_stats -> unit

val synthetic_packets : ?seed:int64 -> size:int -> unit -> int -> Bytes.t
(** Deterministic packet generator: [synthetic_packets ~size () i] is the
    [i]th packet (byte 0 carries [i land 0xff]). *)

val dispatch_event : engine -> hook:string -> Bytes.t -> Invoke.run_report list
(** One event through every extension on [hook], in attach order. *)

val run_stream :
  ?stop_on_crash:bool ->
  engine -> hook:string -> gen:(int -> Bytes.t) -> count:int -> unit ->
  stream_stats
(** Drive [count] events from [gen] through [hook].  Updates the
    [dispatch.*] telemetry counters and exports the stream's throughput as
    the [dispatch.events_per_sec] counter. *)
