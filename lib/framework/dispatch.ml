(* The event-driven dispatch loop: the serving side of the study.

   A real kernel does not load an extension, run it once, and throw the
   world away — it drives packet/event streams through whole populations of
   attached extensions.  The engine owns a pooled invocation context
   (Invoke.t), so a 10k-event stream reuses one helper context and one skb
   buffer instead of allocating per event.

   Determinism: the synthetic packet generator is a seeded xorshift, the
   simulated clock only moves by instruction cost, and dispatch order is
   attach order — two engines fed the same seed produce identical stats
   (ret_checksum included), which the tests assert. *)

module Kernel = Kernel_sim.Kernel

type engine = {
  world : World.t;
  attach : Attach.t;
  ictx : Invoke.t;
  opts : Invoke.run_opts;
}

let create ?(opts = Invoke.default_opts) (w : World.t) =
  { world = w; attach = Attach.create (); ictx = Invoke.create w; opts }

type stream_stats = {
  events : int;
  invocations : int;
  finished : int;
  stopped : int;
  crashed : int;
  ret_checksum : int64;   (* order-sensitive fold of return values *)
  host_ns : int64;        (* wall time for the whole stream *)
  events_per_sec : float;
}

let pp_stream_stats ppf s =
  Format.fprintf ppf
    "events=%d invocations=%d finished=%d stopped=%d crashed=%d \
     checksum=%016Lx rate=%.0f ev/s"
    s.events s.invocations s.finished s.stopped s.crashed s.ret_checksum
    s.events_per_sec

(* ---- telemetry ---- *)

let tele_events = Telemetry.Registry.counter "dispatch.events"
let tele_invocations = Telemetry.Registry.counter "dispatch.invocations"
let tele_crashes = Telemetry.Registry.counter "dispatch.crashes"
let tele_stops = Telemetry.Registry.counter "dispatch.stops"
let tele_event_ns = Telemetry.Registry.histogram "dispatch.event_ns"
let tele_rate = Telemetry.Registry.counter "dispatch.events_per_sec"

let host_ns () = Int64.of_float (Sys.time () *. 1e9)

(* ---- synthetic events ---- *)

(* Deterministic packet stream: xorshift64* seeded per stream, byte [0] of
   each packet carries the low bits of the event index so attached filters
   can discriminate. *)
let synthetic_packets ?(seed = 0x9e3779b97f4a7c15L) ~size () =
  let state = ref (if Int64.equal seed 0L then 1L else seed) in
  let next () =
    let x = !state in
    let x = Int64.logxor x (Int64.shift_left x 13) in
    let x = Int64.logxor x (Int64.shift_right_logical x 7) in
    let x = Int64.logxor x (Int64.shift_left x 17) in
    state := x;
    x
  in
  fun i ->
    let b = Bytes.create size in
    for off = 0 to size - 1 do
      Bytes.set b off (Char.chr (Int64.to_int (next ()) land 0xff))
    done;
    if size > 0 then Bytes.set b 0 (Char.chr (i land 0xff));
    b

(* ---- dispatch ---- *)

(* One event through every extension attached to [hook], in attach order.
   Returns the per-attachment reports (same order). *)
let dispatch_event e ~hook payload =
  Telemetry.Registry.bump tele_events;
  let started = host_ns () in
  let opts = { e.opts with Invoke.skb_payload = Some payload } in
  let reports =
    List.map
      (fun (a : Attach.attachment) ->
        Telemetry.Registry.bump tele_invocations;
        let report = Invoke.run ~opts ~ictx:e.ictx e.world a.Attach.loaded in
        (match report.Invoke.outcome with
        | Invoke.Crashed _ -> Telemetry.Registry.bump tele_crashes
        | Invoke.Stopped _ -> Telemetry.Registry.bump tele_stops
        | Invoke.Finished _ -> ());
        report)
      (Attach.attached e.attach ~hook)
  in
  Telemetry.Registry.observe tele_event_ns (Int64.sub (host_ns ()) started);
  reports

let checksum_add acc = function
  | Invoke.Finished v -> Int64.add (Int64.mul acc 31L) v
  | Invoke.Stopped _ -> Int64.add (Int64.mul acc 31L) (-1L)
  | Invoke.Crashed _ -> Int64.add (Int64.mul acc 31L) (-2L)

(* Drive [count] events from [gen] through [hook].  [stop_on_crash] aborts
   the stream the first time an invocation oopses the kernel (default:
   keep going and count, the way a real kernel limps on after a WARN). *)
let run_stream ?(stop_on_crash = false) e ~hook ~gen ~count () =
  let started = host_ns () in
  let finished = ref 0 and stopped = ref 0 and crashed = ref 0 in
  let invocations = ref 0 in
  let checksum = ref 0L in
  let events = ref 0 in
  (try
     for i = 0 to count - 1 do
       let reports = dispatch_event e ~hook (gen i) in
       incr events;
       List.iter
         (fun (r : Invoke.run_report) ->
           incr invocations;
           checksum := checksum_add !checksum r.Invoke.outcome;
           match r.Invoke.outcome with
           | Invoke.Finished _ -> incr finished
           | Invoke.Stopped _ -> incr stopped
           | Invoke.Crashed _ ->
             incr crashed;
             if stop_on_crash then raise Exit)
         reports
     done
   with Exit -> ());
  let elapsed = Int64.sub (host_ns ()) started in
  let rate =
    if Int64.compare elapsed 0L > 0 then
      float_of_int !events /. (Int64.to_float elapsed /. 1e9)
    else 0.
  in
  (* export the latest stream's throughput (counter-as-gauge) *)
  Telemetry.Counter.reset tele_rate;
  Telemetry.Registry.incr tele_rate ~n:(int_of_float rate);
  {
    events = !events;
    invocations = !invocations;
    finished = !finished;
    stopped = !stopped;
    crashed = !crashed;
    ret_checksum = !checksum;
    host_ns = elapsed;
    events_per_sec = rate;
  }
