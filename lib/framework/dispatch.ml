(* The event-driven dispatch loop: the serving side of the study.

   A real kernel does not load an extension, run it once, and throw the
   world away — it drives packet/event streams through whole populations of
   attached extensions.  The engine owns a pooled invocation context
   (Invoke.t), so a 10k-event stream reuses one helper context and one skb
   buffer instead of allocating per event.

   Fault handling is a policy, not a boolean.  Under [Fail_fast] the first
   kernel crash aborts the stream (the kernel stays dead, the old
   stop_on_crash behaviour).  Under [Isolate] a crash is contained to the
   invocation that caused it: the kernel is revived and the stream carries
   on, with the fault charged to the offending extension.  [Supervise]
   additionally runs each extension behind a circuit breaker (Supervisor)
   and detaches — quarantines — extensions that keep re-tripping it.

   Determinism: the synthetic packet generator is a seeded xorshift, the
   simulated clock only moves by instruction cost, dispatch order is attach
   order, and chaos injection (Chaos) is a pure function of (seed, event
   index) — two engines fed the same seed produce identical results
   (checksums included), which the tests assert. *)

module Kernel = Kernel_sim.Kernel
module Vclock = Kernel_sim.Vclock

type policy =
  | Fail_fast             (* first crash aborts the stream, kernel stays dead *)
  | Isolate               (* contain crashes per invocation, keep serving *)
  | Supervise of Supervisor.config
                          (* isolate + circuit breakers + quarantine *)

type engine = {
  world : World.t;
  attach : Attach.t;
  ictx : Invoke.t;
  opts : Invoke.run_opts;
  policy : policy;
  sup : Supervisor.t;
}

let create ?(opts = Invoke.default_opts) ?(policy = Isolate) (w : World.t) =
  let config =
    match policy with Supervise c -> c | Fail_fast | Isolate -> Supervisor.default_config
  in
  { world = w; attach = Attach.create (); ictx = Invoke.create w; opts; policy;
    sup = Supervisor.create ~config () }

(* A scheduled hot reload: stage epoch changes on the builder (loads,
   unloads, tail-call rewires, config changes) and/or rewire the engine's
   attachments; the engine publishes the builder when the plan returns.
   Runs at an event boundary — in-flight events hold their pinned epoch, so
   the swap is torn-read-free by construction. *)
type reload_plan = engine -> Epoch.builder -> unit

type stream_result = {
  events : int;
  invocations : int;
  finished : int;
  stopped : int;
  crashed : int;
  exhausted : int;
  skipped : int;          (* invocations suppressed by an open breaker *)
  faults_absorbed : int;  (* crashes + exhaustions contained (not Fail_fast) *)
  quarantined : int;      (* extensions detached during this stream *)
  injected : int;         (* chaos injections that landed on an event *)
  ret_checksum : int64;   (* order-sensitive fold of all outcomes *)
  host_ns : int64;        (* wall time for the whole stream *)
  events_per_sec : float;
  per_ext : Supervisor.health list;  (* per-extension health, attach order *)
  reloads : int;          (* reload plans applied (epoch swaps published) *)
  per_epoch : (int * int) list;  (* epoch -> events served under it *)
  event_checksums : int64 array;
      (* per-event outcome folds ([record_checksums] only, else empty) *)
}

let all_healthy r =
  r.crashed = 0 && r.exhausted = 0 && r.stopped = 0 && r.skipped = 0
  && r.quarantined = 0

let pp_stream_result ppf r =
  Format.fprintf ppf
    "events=%d invocations=%d finished=%d stopped=%d crashed=%d exhausted=%d \
     skipped=%d absorbed=%d quarantined=%d injected=%d reloads=%d \
     checksum=%016Lx rate=%.0f ev/s"
    r.events r.invocations r.finished r.stopped r.crashed r.exhausted r.skipped
    r.faults_absorbed r.quarantined r.injected r.reloads r.ret_checksum
    r.events_per_sec

let pp_per_ext ppf r =
  List.iter (fun h -> Format.fprintf ppf "%a@." Supervisor.pp_health h) r.per_ext

(* ---- telemetry ---- *)

let tele_events = Telemetry.Registry.counter "dispatch.events"
let tele_invocations = Telemetry.Registry.counter "dispatch.invocations"
let tele_crashes = Telemetry.Registry.counter "dispatch.crashes"
let tele_stops = Telemetry.Registry.counter "dispatch.stops"
let tele_exhausted = Telemetry.Registry.counter "dispatch.exhausted"
let tele_skipped = Telemetry.Registry.counter "dispatch.skipped"
let tele_absorbed = Telemetry.Registry.counter "dispatch.faults_absorbed"
let tele_event_ns = Telemetry.Registry.histogram "dispatch.event_ns"
let tele_event_span_ns = Telemetry.Registry.histogram "dispatch.event.ns"
let tele_rate = Telemetry.Registry.counter "dispatch.events_per_sec"
let tele_reloads = Telemetry.Registry.counter "dispatch.reloads"
let tele_swap_ns = Telemetry.Registry.histogram "epoch.swap_ns"

let host_ns () = Int64.of_float (Sys.time () *. 1e9)

(* ---- synthetic events ---- *)

(* Deterministic packet stream: xorshift64* seeded per stream, byte [0] of
   each packet carries the low bits of the event index so attached filters
   can discriminate. *)
let synthetic_packets ?(seed = 0x9e3779b97f4a7c15L) ~size () =
  let state = ref (if Int64.equal seed 0L then 1L else seed) in
  let next () =
    let x = !state in
    let x = Int64.logxor x (Int64.shift_left x 13) in
    let x = Int64.logxor x (Int64.shift_right_logical x 7) in
    let x = Int64.logxor x (Int64.shift_left x 17) in
    state := x;
    x
  in
  fun i ->
    let b = Bytes.create size in
    for off = 0 to size - 1 do
      Bytes.set b off (Char.chr (Int64.to_int (next ()) land 0xff))
    done;
    if size > 0 then Bytes.set b 0 (Char.chr (i land 0xff));
    b

(* ---- dispatch ---- *)

let checksum_add acc = function
  | Invoke.Finished v -> Int64.add (Int64.mul acc 31L) v
  | Invoke.Stopped _ -> Int64.add (Int64.mul acc 31L) (-1L)
  | Invoke.Crashed _ -> Int64.add (Int64.mul acc 31L) (-2L)
  | Invoke.Exhausted _ -> Int64.add (Int64.mul acc 31L) (-3L)

(* One event through every extension attached to [hook], in attach order,
   with no supervision — the raw fan-out.  Returns the per-attachment
   reports (same order). *)
let dispatch_event e ~hook payload =
  Telemetry.Registry.bump tele_events;
  let started = host_ns () in
  let opts = { e.opts with Invoke.skb_payload = Some payload } in
  let reports =
    List.map
      (fun (a : Attach.attachment) ->
        Telemetry.Registry.bump tele_invocations;
        let report = Invoke.run ~opts ~ictx:e.ictx e.world a.Attach.loaded in
        (match report.Invoke.outcome with
        | Invoke.Crashed _ -> Telemetry.Registry.bump tele_crashes
        | Invoke.Stopped _ -> Telemetry.Registry.bump tele_stops
        | Invoke.Exhausted _ -> Telemetry.Registry.bump tele_exhausted
        | Invoke.Finished _ -> ());
        report)
      (Attach.attached e.attach ~hook)
  in
  Telemetry.Registry.observe tele_event_ns (Int64.sub (host_ns ()) started);
  reports

(* Drive [count] events from [gen] through [hook] under the engine's
   policy, optionally with chaos injection and a hot-reload schedule. *)
let run_stream ?chaos ?(reload = []) ?(record_checksums = false) e ~hook ~gen
    ~count () =
  let started = host_ns () in
  let invocations = ref 0 and finished = ref 0 and stopped = ref 0 in
  let crashed = ref 0 and exhausted = ref 0 and skipped = ref 0 in
  let faults_absorbed = ref 0 and quarantined = ref 0 and injected = ref 0 in
  let checksum = ref 0L in
  let events = ref 0 in
  let reloads = ref 0 in
  let epoch_counts : (int, int ref) Hashtbl.t = Hashtbl.create 4 in
  let event_checksums =
    if record_checksums then Array.make (max count 0) 0L else [||]
  in
  (* Apply every reload plan scheduled for event boundary [i]: stage on a
     fresh builder, publish atomically, measure the swap on the host
     clock.  In-flight pins are impossible here (we are between events),
     but the grace-period machinery still runs — a superseded epoch held
     by an explicit pin outlives the swap untouched. *)
  let apply_reloads i =
    List.iter
      (fun (_, plan) ->
        let swap_started = host_ns () in
        let b = Epoch.begin_ e.world.World.epochs in
        plan e b;
        ignore (Epoch.publish b);
        Telemetry.Registry.observe tele_swap_ns
          (Int64.sub (host_ns ()) swap_started);
        Telemetry.Registry.bump tele_reloads;
        incr reloads)
      (List.filter (fun (idx, _) -> idx = i) reload)
  in
  let kernel = e.world.World.kernel in
  let supervised = match e.policy with Supervise _ -> true | _ -> false in
  (* A contained fault: revive already happened (crash) or was unnecessary
     (exhaustion); charge the breaker and quarantine on its verdict. *)
  let contained_fault ext =
    incr faults_absorbed;
    Telemetry.Registry.bump tele_absorbed;
    if supervised then begin
      let now = Vclock.now kernel.Kernel.clock in
      match Supervisor.observe_fault e.sup ext ~now_ns:now with
      | Supervisor.Quarantine ->
        ignore (Attach.detach e.attach ~attach_id:ext.Supervisor.attach_id);
        incr quarantined
      | Supervisor.Tripped _ | Supervisor.No_change -> ()
    end
  in
  (* Each event runs under a fresh causal trace on the simulated clock:
     dispatch.event > dispatch.<ext> > loader.run > interp/jit.run, with
     supervisor and chaos points landing inside whichever span was open
     when they fired. *)
  let vnow () = Vclock.now kernel.Kernel.clock in
  (try
     for i = 0 to count - 1 do
       apply_reloads i;
       Telemetry.Registry.bump tele_events;
       let ev_started = host_ns () in
       incr events;
       (let ep = (World.current e.world).Epoch.epoch in
        match Hashtbl.find_opt epoch_counts ep with
        | Some r -> incr r
        | None -> Hashtbl.add epoch_counts ep (ref 1));
       let ev_checksum = ref 0L in
       (Telemetry.Registry.with_trace (Telemetry.Registry.fresh_trace ())
       @@ fun () ->
       Telemetry.Registry.with_span "dispatch.event" ~hist:tele_event_span_ns
         ~clock:vnow
       @@ fun () ->
       let inj =
         match chaos with
         | None -> Chaos.Calm
         | Some c -> Chaos.injection c ~event:i
       in
       if inj <> Chaos.Calm then incr injected;
       let opts =
         Chaos.apply_opts inj { e.opts with Invoke.skb_payload = Some (gen i) }
       in
       Chaos.arm inj e.world.World.bugs;
       Fun.protect ~finally:(fun () -> Chaos.disarm inj e.world.World.bugs)
       @@ fun () ->
       List.iter
         (fun (a : Attach.attachment) ->
           let name = Attach.name a in
           let ext =
             (* digest-keyed: the same image keeps its breaker history
                across detach/re-attach and epoch swaps *)
             Supervisor.ext e.sup ~digest:(Attach.digest a)
               ~attach_id:a.Attach.attach_id ~name
           in
           let decision =
             if supervised then
               Supervisor.decide e.sup ext
                 ~now_ns:(Vclock.now kernel.Kernel.clock)
             else Supervisor.Execute
           in
           Telemetry.Registry.with_span ("dispatch." ^ name) ~clock:vnow
           @@ fun () ->
           match decision with
           | Supervisor.Skip ->
             (* breaker open / quarantined: fast-fail, span still closes *)
             Telemetry.Registry.point "dispatch.skip"
               ~value:(Int64.of_int a.Attach.attach_id);
             Supervisor.observe_skip ext;
             incr skipped;
             Telemetry.Registry.bump tele_skipped
           | Supervisor.Execute | Supervisor.Probe ->
             Telemetry.Registry.bump tele_invocations;
             let inv_started = Vclock.now kernel.Kernel.clock in
             let r = Invoke.run ~opts ~ictx:e.ictx e.world a.Attach.loaded in
             (* scorecard latency: Vclock cost of this invocation,
                recorded whether or not tracing retained the spans *)
             Telemetry.Registry.observe ext.Supervisor.lat
               (Int64.sub (Vclock.now kernel.Kernel.clock) inv_started);
             incr invocations;
             ext.Supervisor.invocations <- ext.Supervisor.invocations + 1;
             checksum := checksum_add !checksum r.Invoke.outcome;
             ev_checksum := checksum_add !ev_checksum r.Invoke.outcome;
             ext.Supervisor.ret_checksum <-
               checksum_add ext.Supervisor.ret_checksum r.Invoke.outcome;
             (match r.Invoke.outcome with
             | Invoke.Finished _ ->
               incr finished;
               ext.Supervisor.finished <- ext.Supervisor.finished + 1;
               if supervised then
                 Supervisor.observe_ok e.sup ext
                   ~now_ns:(Vclock.now kernel.Kernel.clock)
             | Invoke.Stopped _ ->
               (* a language panic is a clean self-stop, not a fault *)
               Telemetry.Registry.bump tele_stops;
               incr stopped;
               ext.Supervisor.stopped <- ext.Supervisor.stopped + 1;
               if supervised then
                 Supervisor.observe_ok e.sup ext
                   ~now_ns:(Vclock.now kernel.Kernel.clock)
             | Invoke.Crashed _ -> (
               Telemetry.Registry.bump tele_crashes;
               incr crashed;
               ext.Supervisor.crashed <- ext.Supervisor.crashed + 1;
               match e.policy with
               | Fail_fast -> raise Exit
               | Isolate | Supervise _ ->
                 ignore (Kernel.revive kernel);
                 contained_fault ext)
             | Invoke.Exhausted _ ->
               Telemetry.Registry.bump tele_exhausted;
               incr exhausted;
               ext.Supervisor.exhausted <- ext.Supervisor.exhausted + 1;
               (match e.policy with
               | Fail_fast -> ()  (* guards cleaned up; keep serving *)
               | Isolate | Supervise _ -> contained_fault ext)))
         (Attach.attached e.attach ~hook));
       if record_checksums then event_checksums.(i) <- !ev_checksum;
       Telemetry.Registry.observe tele_event_ns
         (Int64.sub (host_ns ()) ev_started)
     done
   with Exit -> ());
  let elapsed = Int64.sub (host_ns ()) started in
  let rate =
    if Int64.compare elapsed 0L > 0 then
      float_of_int !events /. (Int64.to_float elapsed /. 1e9)
    else 0.
  in
  (* export the latest stream's throughput (counter-as-gauge) *)
  Telemetry.Counter.reset tele_rate;
  Telemetry.Registry.incr tele_rate ~n:(int_of_float rate);
  {
    events = !events;
    invocations = !invocations;
    finished = !finished;
    stopped = !stopped;
    crashed = !crashed;
    exhausted = !exhausted;
    skipped = !skipped;
    faults_absorbed = !faults_absorbed;
    quarantined = !quarantined;
    injected = !injected;
    ret_checksum = !checksum;
    host_ns = elapsed;
    events_per_sec = rate;
    per_ext = Supervisor.healths e.sup;
    reloads = !reloads;
    per_epoch =
      Hashtbl.fold (fun ep r acc -> (ep, !r) :: acc) epoch_counts []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b);
    event_checksums;
  }
