(* Dispatch: the historical face of the serving loop, now a thin facade
   over Serve.

   The engine, policy and reload types ARE Serve's (re-exported with
   equations, so values flow freely between the two modules), and
   [run_stream] is a deprecated shim that assembles a one-domain
   Serve.plan and re-shapes Serve.stats into the old [stream_result].
   New code should build a [Serve.plan] and call [Serve.run]; this module
   keeps one PR's worth of compatibility for out-of-tree callers. *)

type policy = Serve.policy =
  | Fail_fast
  | Isolate
  | Supervise of Supervisor.config

type engine = Serve.engine = {
  world : World.t;
  attach : Attach.t;
  ictx : Invoke.t;
  opts : Invoke.run_opts;
  policy : policy;
  sup : Supervisor.t;
}

let create = Serve.create

type reload_plan = Serve.reload

type stream_result = {
  events : int;
  invocations : int;
  finished : int;
  stopped : int;
  crashed : int;
  exhausted : int;
  skipped : int;          (* invocations suppressed by an open breaker *)
  faults_absorbed : int;  (* crashes + exhaustions contained (not Fail_fast) *)
  quarantined : int;      (* extensions detached during this stream *)
  injected : int;         (* chaos injections that landed on an event *)
  ret_checksum : int64;   (* order-sensitive fold of all outcomes *)
  host_ns : int64;        (* wall time for the whole stream *)
  events_per_sec : float;
  per_ext : Supervisor.health list;  (* per-extension health, attach order *)
  reloads : int;          (* reload plans applied (epoch swaps published) *)
  per_epoch : (int * int) list;  (* epoch -> events served under it *)
  event_checksums : int64 array;
      (* per-event outcome folds ([record_checksums] only, else empty) *)
}

let all_healthy r =
  r.crashed = 0 && r.exhausted = 0 && r.stopped = 0 && r.skipped = 0
  && r.quarantined = 0

let pp_stream_result ppf r =
  Format.fprintf ppf
    "events=%d invocations=%d finished=%d stopped=%d crashed=%d exhausted=%d \
     skipped=%d absorbed=%d quarantined=%d injected=%d reloads=%d \
     checksum=%016Lx rate=%.0f ev/s"
    r.events r.invocations r.finished r.stopped r.crashed r.exhausted r.skipped
    r.faults_absorbed r.quarantined r.injected r.reloads r.ret_checksum
    r.events_per_sec

let pp_per_ext ppf r =
  List.iter (fun h -> Format.fprintf ppf "%a@." Supervisor.pp_health h) r.per_ext

let synthetic_packets = Serve.synthetic_packets

(* ---- one-event fan-out (unsupervised) ---- *)

let tele_events = Telemetry.Registry.counter "dispatch.events"
let tele_invocations = Telemetry.Registry.counter "dispatch.invocations"
let tele_crashes = Telemetry.Registry.counter "dispatch.crashes"
let tele_stops = Telemetry.Registry.counter "dispatch.stops"
let tele_exhausted = Telemetry.Registry.counter "dispatch.exhausted"
let tele_event_ns = Telemetry.Registry.histogram "dispatch.event_ns"

let host_ns () = Int64.of_float (Sys.time () *. 1e9)

(* One event through every extension attached to [hook], in attach order,
   with no supervision — the raw fan-out.  Returns the per-attachment
   reports (same order). *)
let dispatch_event e ~hook payload =
  Telemetry.Registry.bump tele_events;
  let started = host_ns () in
  let opts = { e.opts with Invoke.skb_payload = Some payload } in
  let reports =
    List.map
      (fun (a : Attach.attachment) ->
        Telemetry.Registry.bump tele_invocations;
        let report = Invoke.run ~opts ~ictx:e.ictx e.world a.Attach.loaded in
        (match report.Invoke.outcome with
        | Invoke.Crashed _ -> Telemetry.Registry.bump tele_crashes
        | Invoke.Stopped _ -> Telemetry.Registry.bump tele_stops
        | Invoke.Exhausted _ -> Telemetry.Registry.bump tele_exhausted
        | Invoke.Finished _ -> ());
        report)
      (Attach.attached e.attach ~hook)
  in
  Telemetry.Registry.observe tele_event_ns (Int64.sub (host_ns ()) started);
  reports

(* ---- deprecated stream shim ---- *)

let run_stream ?chaos ?(reload = []) ?(record_checksums = false) e ~hook ~gen
    ~count () =
  let p =
    Serve.plan ?chaos ~gen ~reloads:reload ~record_checksums ~hook ~count ()
  in
  let s = Serve.run e p in
  let t = s.Serve.totals in
  {
    events = t.Serve.events;
    invocations = t.Serve.invocations;
    finished = t.Serve.finished;
    stopped = t.Serve.stopped;
    crashed = t.Serve.crashed;
    exhausted = t.Serve.exhausted;
    skipped = t.Serve.skipped;
    faults_absorbed = t.Serve.faults_absorbed;
    quarantined = t.Serve.quarantined;
    injected = t.Serve.injected;
    ret_checksum = t.Serve.ret_checksum;
    host_ns = t.Serve.host_ns;
    events_per_sec = t.Serve.events_per_sec;
    per_ext = s.Serve.per_ext;
    reloads = t.Serve.reloads;
    per_epoch = t.Serve.per_epoch;
    event_checksums = s.Serve.event_checksums;
  }
