(* Dispatch: the historical face of the serving loop, now a thin facade
   over Serve.

   The engine, policy and reload types ARE Serve's (re-exported with
   equations, so values flow freely between the two modules).  Streams
   are Serve's business — build a [Serve.plan] and call [Serve.run]; the
   deprecated [run_stream] shim has been removed.  What remains here is
   the one-event fan-out ([dispatch_event]), the raw building block under
   both. *)

type policy = Serve.policy =
  | Fail_fast
  | Isolate
  | Supervise of Supervisor.config

type engine = Serve.engine = {
  world : World.t;
  attach : Attach.t;
  ictx : Invoke.t;
  opts : Invoke.run_opts;
  policy : policy;
  sup : Supervisor.t;
}

let create = Serve.create

type reload_plan = Serve.reload

let synthetic_packets = Serve.synthetic_packets

(* ---- one-event fan-out (unsupervised) ---- *)

let tele_events = Telemetry.Registry.counter "dispatch.events"
let tele_invocations = Telemetry.Registry.counter "dispatch.invocations"
let tele_crashes = Telemetry.Registry.counter "dispatch.crashes"
let tele_stops = Telemetry.Registry.counter "dispatch.stops"
let tele_exhausted = Telemetry.Registry.counter "dispatch.exhausted"
let tele_event_ns = Telemetry.Registry.histogram "dispatch.event_ns"

let host_ns () = Int64.of_float (Sys.time () *. 1e9)

(* One event through every extension attached to [hook], in attach order,
   with no supervision — the raw fan-out.  Returns the per-attachment
   reports (same order). *)
let dispatch_event e ~hook payload =
  Telemetry.Registry.bump tele_events;
  let started = host_ns () in
  let opts = { e.opts with Invoke.skb_payload = Some payload } in
  let reports =
    List.map
      (fun (a : Attach.attachment) ->
        Telemetry.Registry.bump tele_invocations;
        let report = Invoke.run ~opts ~ictx:e.ictx e.world a.Attach.loaded in
        (match report.Invoke.outcome with
        | Invoke.Crashed _ -> Telemetry.Registry.bump tele_crashes
        | Invoke.Stopped _ -> Telemetry.Registry.bump tele_stops
        | Invoke.Exhausted _ -> Telemetry.Registry.bump tele_exhausted
        | Invoke.Finished _ -> ());
        report)
      (Attach.attached e.attach ~hook)
  in
  Telemetry.Registry.observe tele_event_ns (Int64.sub (host_ns ()) started);
  reports
