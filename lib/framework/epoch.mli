(** Epoch-based world snapshots: immutable views of the serving state with
    RCU-style publication and grace periods.

    A {!snapshot} freezes everything an in-flight invocation reads — the
    loaded-program table, the tail-call index, the verifier and analysis
    configurations.  Readers {!pin} the current snapshot for one
    invocation and resolve every lookup against it, so no event can
    observe a half-applied world.

    All mutation flows through a {!builder}: stage loads, unloads,
    tail-call rewires and config changes, then {!publish} swaps epoch
    [N+1] in atomically.  The superseded snapshot retires only after a
    grace period in which no reader pins it and the simulated kernel's
    RCU read-side tracking ({!Kernel_sim.Rcu.in_critical_section})
    reports quiescence; grace periods are measured on the virtual clock
    and exported as the [epoch.grace_ns] histogram, alongside the
    [epoch.published] / [epoch.retired] counters.

    Registry-level state (the kernel, map registry, bug database,
    supervisor history) lives outside the snapshot, in {!World}. *)

module Int_map : Map.S with type key = int

type snapshot = private {
  epoch : int;  (** 1-based; genesis is epoch 1 *)
  progs : Ebpf.Program.t Int_map.t;
  prog_array : int Int_map.t;  (** tail-call index -> prog id *)
  vconfig : Bpf_verifier.Verifier.config;
  aconfig : Analysis.Driver.config;
  published_at_ns : int64;  (** virtual-clock publish time *)
  mutable pins : int;
  mutable superseded_at_ns : int64 option;
  mutable retired_at_ns : int64 option;
}
(** Immutable world view.  The mutable fields are lifecycle bookkeeping
    owned by the store; callers read them but mutate only through
    {!retain} / {!release} / {!publish}. *)

type transition = private {
  epoch : int;              (** the epoch this publish created *)
  at_ns : int64;
  loads : int;
  unloads : int;
  tail_call_updates : int;
  vconfig_changed : bool;
  aconfig_changed : bool;
  mutable grace_ns : int64 option;
      (** the superseded epoch's grace period, once it retires *)
}
(** One row of the epoch-transition log. *)

type store
(** The long-lived epoch chain: current snapshot, retiring snapshots
    waiting out their grace periods, the prog-id allocator and the
    transition log. *)

val create_store :
  clock:Kernel_sim.Vclock.t ->
  rcu:Kernel_sim.Rcu.t ->
  vconfig:Bpf_verifier.Verifier.config ->
  aconfig:Analysis.Driver.config ->
  store
(** A store whose genesis snapshot (epoch 1, empty tables) carries the
    given configurations.  Genesis is not counted in [epoch.published]
    and has no transition row. *)

val current : store -> snapshot
val current_epoch : store -> int

val pin : store -> snapshot
(** Pin the current snapshot for one invocation ([retain] on current). *)

val retain : store -> snapshot -> snapshot
(** Add a read-side pin to [snap] (which may already be superseded).
    Raises [Invalid_argument] if the snapshot has already retired. *)

val release : store -> snapshot -> unit
(** Drop one pin and attempt retirement of superseded snapshots: any
    snapshot with no pins retires once the kernel's RCU read-side
    tracking reports quiescence, closing its grace period. *)

val published : store -> int
(** Swaps since genesis. *)

val retired : store -> int
val grace_pending : store -> int
(** Superseded snapshots still waiting out their grace period. *)

val transitions : store -> transition list
(** Oldest first. *)

val pp_transition : Format.formatter -> transition -> unit

(** {2 Snapshot reads} *)

val find_prog : snapshot -> int -> Ebpf.Program.t option
val tail_target : snapshot -> int -> int option
val progs_sorted : snapshot -> (int * Ebpf.Program.t) list
val tail_calls_sorted : snapshot -> (int * int) list

(** {2 The builder — the only mutation path} *)

type builder
(** Staged changes against the snapshot that was current at {!begin_}.
    Single-shot: every operation raises after {!publish}. *)

val begin_ : store -> builder

val add_prog : builder -> Ebpf.Program.t -> int
(** Stage a program load; allocates and returns its prog id. *)

val unload : builder -> prog_id:int -> bool
(** Stage removal of a loaded program; [false] if the id is not loaded.
    Tail-call entries pointing at it are kept — a chase through them then
    finds no program and returns -EINVAL, like a cleared prog-array
    slot.  Use {!clear_tail_call} to drop the slot itself. *)

val set_tail_call : builder -> index:int -> prog_id:int -> unit
val clear_tail_call : builder -> index:int -> unit
val set_vconfig : builder -> Bpf_verifier.Verifier.config -> unit
val set_aconfig : builder -> Analysis.Driver.config -> unit

val vconfig : builder -> Bpf_verifier.Verifier.config
(** The staged verifier configuration (the base snapshot's until
    {!set_vconfig}). *)

val aconfig : builder -> Analysis.Driver.config

val publish : builder -> snapshot
(** Swap epoch [N+1] in: one atomic pointer write.  The superseded
    snapshot enters its grace period (retiring immediately if nothing
    pins it).  Bumps [epoch.published] and appends a {!transition}. *)
