(* Table 2, executable: for every safety property the paper lists, run a
   witness program that tries to violate it under the proposed framework
   and record which mechanism (language safety / runtime protection)
   actually stopped it — plus the kernel's health afterwards. *)

module Kernel = Kernel_sim.Kernel
module Bpf_map = Maps.Bpf_map
module Guard = Runtime.Guard
module Program = Ebpf.Program
open Rustlite.Ast

type row = {
  property : string;
  mechanism : Kerndata.Safety_props.mechanism;
  witness : string;     (* what the violation attempt was *)
  observed : string;    (* what actually happened *)
  upheld : bool;        (* the kernel stayed healthy *)
}

let rl_source ~name ?(maps = []) body = { Rustlite.Toolchain.name; maps; body }

let run_rustlite ?fuel ?wall_ns world src =
  match Rustlite.Toolchain.compile src with
  | Error e -> `Toolchain_rejected (Format.asprintf "%a" Rustlite.Toolchain.pp_error e)
  | Ok ext -> (
    match Loader.load_rustlite world ext with
    | Error _ -> `Toolchain_rejected "bad signature"
    | Ok loaded ->
      let opts = { Invoke.default_opts with Invoke.fuel; wall_ns } in
      let report = Invoke.run ~opts world loaded in
      `Ran report)

let healthy world = Kernel.healthy (Kernel.health world.World.kernel)

(* 1. No arbitrary memory access: a dynamic out-of-bounds index panics
   (checked indexing); the panic terminates safely. *)
let witness_memory () =
  let world = World.create_populated () in
  let src =
    rl_source ~name:"oob_index"
      (Let { name = "a"; mut = false;
             value = Array_lit [ Lit_int 1L; Lit_int 2L; Lit_int 3L; Lit_int 4L ];
             body =
               Let { name = "i"; mut = false; value = Call ("skb_len", []);
                     (* attacker-controlled index, 0 here but unknown statically *)
                     body = Index (Var "a", Binop (Add, Var "i", Lit_int 7L)) } })
  in
  let observed =
    match run_rustlite world src with
    | `Toolchain_rejected msg -> "toolchain rejected: " ^ msg
    | `Ran r -> Format.asprintf "%a" Loader.pp_outcome r.Loader.outcome
  in
  { property = "No arbitrary memory access";
    mechanism = Kerndata.Safety_props.Language_safety;
    witness = "index a[i+7] into a 4-element array (checked indexing)";
    observed; upheld = healthy world }

(* 2. No arbitrary control-flow transfer: computed jumps are not
   representable; the nearest attempt (a huge computed shift used to fake a
   jump table) is just checked arithmetic. *)
let witness_control_flow () =
  let world = World.create_populated () in
  let src =
    rl_source ~name:"no_goto"
      (Let { name = "target"; mut = false; value = Lit_int 1234L;
             body = Binop (Shl, Lit_int 1L, Var "target") })
  in
  let observed =
    match run_rustlite world src with
    | `Toolchain_rejected msg -> "toolchain rejected: " ^ msg
    | `Ran r ->
      Format.asprintf "no jump primitive exists; closest attempt: %a"
        Loader.pp_outcome r.Loader.outcome
  in
  { property = "No arbitrary control-flow transfer";
    mechanism = Kerndata.Safety_props.Language_safety;
    witness = "computed control transfer (unrepresentable; structured flow only)";
    observed; upheld = healthy world }

(* 3. Type safety: the toolchain rejects ill-typed programs outright, and a
   post-signing AST mutation invalidates the signature at load time. *)
let witness_type_safety () =
  let world = World.create_populated () in
  let ill_typed =
    rl_source ~name:"ill_typed" (Binop (Add, Lit_int 1L, Lit_bool true))
  in
  let first =
    match Rustlite.Toolchain.compile ill_typed with
    | Error e -> Format.asprintf "toolchain: %a" Rustlite.Toolchain.pp_error e
    | Ok _ -> "toolchain ACCEPTED ill-typed program (!)"
  in
  (* tamper with a validly signed extension *)
  let good = rl_source ~name:"good" (Lit_int 7L) in
  let tampered =
    match Rustlite.Toolchain.compile good with
    | Error _ -> "could not build the tamper witness"
    | Ok ext -> (
      let evil =
        { ext with
          Rustlite.Toolchain.src =
            { ext.Rustlite.Toolchain.src with Rustlite.Toolchain.body = Panic "evil" } }
      in
      match Loader.load_rustlite world evil with
      | Error Loader.Bad_signature -> "tampered artifact: signature validation failed"
      | Error _ -> "tampered artifact: rejected"
      | Ok _ -> "tampered artifact LOADED (!)")
  in
  { property = "Type safety";
    mechanism = Kerndata.Safety_props.Language_safety;
    witness = "1 + true, and a post-signing AST mutation";
    observed = first ^ "; " ^ tampered;
    upheld =
      healthy world
      && String.length first > 0 && first.[0] = 't'
      && String.length tampered > 0 && tampered.[0] = 't' }

(* 4. Safe resource management: acquire a socket and a ringbuf reservation,
   then panic; the recorded destructors must release both. *)
let witness_resources () =
  let world = World.create_populated () in
  let rb_def =
    { Bpf_map.name = "events"; kind = Bpf_map.Ringbuf; key_size = 0; value_size = 0;
      max_entries = 4096; lock_off = None }
  in
  let src =
    rl_source ~name:"panic_with_resources" ~maps:[ rb_def ]
      (Match_option
         { scrutinee = Call ("sk_lookup", [ Lit_int 8080L ]);
           bind = "sk";
           some_branch =
             Match_option
               { scrutinee = Call ("ringbuf_reserve", [ Lit_str "events"; Lit_int 64L ]);
                 bind = "res";
                 some_branch =
                   Seq [ Call ("rb_write_i64", [ Borrow "res"; Lit_int 0L; Lit_int 42L ]);
                         Panic "injected failure with 2 resources held" ];
                 none_branch = Lit_unit };
           none_branch = Lit_unit })
  in
  let observed =
    match run_rustlite world src with
    | `Toolchain_rejected msg -> "toolchain rejected: " ^ msg
    | `Ran r ->
      let health = r.Loader.health in
      Format.asprintf "%a; leaked refs=%d, outstanding resources=%d"
        Loader.pp_outcome r.Loader.outcome
        (List.length health.Kernel.leaked_refs)
        r.Loader.resources_outstanding
  in
  { property = "Safe resource management";
    mechanism = Kerndata.Safety_props.Runtime_protection;
    witness = "panic while holding a socket reference and a ringbuf reservation";
    observed; upheld = healthy world }

(* 5. Termination: an infinite loop is cut down by the watchdog. *)
let witness_termination () =
  let world = World.create_populated () in
  let src =
    rl_source ~name:"spin_forever"
      (Let { name = "x"; mut = true; value = Lit_int 0L;
             body = While (Lit_bool true, Assign ("x", Binop (BXor, Var "x", Lit_int 1L))) })
  in
  let observed =
    match run_rustlite ~wall_ns:1_000_000L world src with
    | `Toolchain_rejected msg -> "toolchain rejected: " ^ msg
    | `Ran r -> Format.asprintf "%a" Loader.pp_outcome r.Loader.outcome
  in
  { property = "Termination";
    mechanism = Kerndata.Safety_props.Runtime_protection;
    witness = "while true {} under a 1 ms watchdog";
    observed; upheld = healthy world }

(* 6. Stack protection: runaway callback recursion (bpf_loop calling itself)
   is cut by the runtime's frame-depth guard with full cleanup. *)
let witness_stack () =
  let world = World.create_populated () in
  let open Ebpf.Asm in
  let open Ebpf.Insn in
  let hid = Helpers.Registry.id_of_name in
  let prog =
    Program.of_items_exn ~name:"deep_callbacks" ~prog_type:Program.Kprobe
      [
        mov_i r1 1;
        mov_label r2 "cb";
        mov_i r3 0;
        mov_i r4 0;
        call (hid "bpf_loop");
        mov_i r0 0;
        exit_;
        label "cb";
        mov_i r1 1;
        mov_label r2 "cb"; (* the callback re-enters itself *)
        mov_i r3 0;
        mov_i r4 0;
        call (hid "bpf_loop");
        mov_i r0 0;
        exit_;
      ]
  in
  let observed =
    match Loader.load_ebpf world prog with
    | Error e -> Format.asprintf "%a" Loader.pp_load_error e
    | Ok loaded ->
      let r = Invoke.run world loaded in
      Format.asprintf "%a" Loader.pp_outcome r.Loader.outcome
  in
  { property = "Stack protection";
    mechanism = Kerndata.Safety_props.Runtime_protection;
    witness = "self-recursive bpf_loop callback (unbounded frame growth)";
    observed; upheld = healthy world }

let rows () =
  [ witness_memory (); witness_control_flow (); witness_type_safety ();
    witness_resources (); witness_termination (); witness_stack () ]
