(* Attachment registry: many loaded extensions hanging off named hook
   points (xdp, tracepoint/syscalls/sys_enter, ...), the way a real kernel
   carries a whole population of extensions at once rather than the
   one-prog-per-experiment shape the demos use.  Order matters: dispatch
   runs a hook's extensions in attach order, like the kernel's prog-array
   chains. *)

type attachment = {
  attach_id : int;
  hook : string;
  loaded : Pipeline.loaded;
}

type t = {
  mutable next_attach_id : int;
  (* hook name -> attachments, newest first (reversed on read) *)
  hooks : (string, attachment list) Hashtbl.t;
}

let create () = { next_attach_id = 1; hooks = Hashtbl.create 4 }

let attach t ~hook loaded =
  let a = { attach_id = t.next_attach_id; hook; loaded } in
  t.next_attach_id <- t.next_attach_id + 1;
  let existing = Option.value ~default:[] (Hashtbl.find_opt t.hooks hook) in
  Hashtbl.replace t.hooks hook (a :: existing);
  a

let detach t ~attach_id =
  let found = ref false in
  Hashtbl.iter
    (fun hook attachments ->
      if List.exists (fun a -> a.attach_id = attach_id) attachments then begin
        found := true;
        Hashtbl.replace t.hooks hook
          (List.filter (fun a -> a.attach_id <> attach_id) attachments)
      end)
    t.hooks;
  !found

let find t ~attach_id =
  Hashtbl.fold
    (fun _ attachments acc ->
      match acc with
      | Some _ -> acc
      | None -> List.find_opt (fun a -> a.attach_id = attach_id) attachments)
    t.hooks None

(* The extension's own name, for health reports. *)
let name a =
  match a.loaded with
  | Pipeline.Ebpf_prog { prog; _ } -> prog.Ebpf.Program.name
  | Pipeline.Rustlite_ext { ext; _ } ->
    ext.Rustlite.Toolchain.src.Rustlite.Toolchain.name

(* The extension's content digest — the identity that survives reloads:
   re-attaching the same image after an epoch swap produces a new attach id
   but the same digest, which is how the supervisor carries breaker and
   quarantine history across epochs. *)
let digest a =
  match a.loaded with
  | Pipeline.Ebpf_prog { prog; _ } -> Ebpf.Program.digest prog
  | Pipeline.Rustlite_ext { ext; _ } -> Rustlite.Toolchain.artifact_digest ext

(* Attachments on [hook], in attach order. *)
let attached t ~hook =
  List.rev (Option.value ~default:[] (Hashtbl.find_opt t.hooks hook))

(* All hook names carrying at least one attachment, sorted — the
   deterministic view for printing. *)
let hooks t =
  Hashtbl.fold (fun h atts acc -> if atts = [] then acc else h :: acc) t.hooks []
  |> List.sort String.compare

let count t = List.fold_left (fun n h -> n + List.length (attached t ~hook:h)) 0 (hooks t)

let describe a =
  match a.loaded with
  | Pipeline.Ebpf_prog { prog_id; prog; _ } ->
    Printf.sprintf "#%d %s prog_id=%d %s" a.attach_id prog.Ebpf.Program.name
      prog_id
      (String.sub (digest a) 0 12)
  | Pipeline.Rustlite_ext { ext; _ } ->
    Printf.sprintf "#%d %s (rustlite) %s" a.attach_id
      ext.Rustlite.Toolchain.src.Rustlite.Toolchain.name
      (String.sub (digest a) 0 12)
