(** Attachment registry: many loaded extensions on named hook points.

    Dispatch order within a hook is attach order, like the kernel's
    prog-array chains. *)

type attachment = {
  attach_id : int;
  hook : string;
  loaded : Pipeline.loaded;
}

type t

val create : unit -> t

val attach : t -> hook:string -> Pipeline.loaded -> attachment

val detach : t -> attach_id:int -> bool
(** [false] if no attachment had that id. *)

val find : t -> attach_id:int -> attachment option

val name : attachment -> string
(** The extension's own (program / crate) name, for health reports. *)

val digest : attachment -> string
(** The extension's full content digest — the identity that survives
    reloads (a re-attached image gets a new attach id, same digest).
    {!Supervisor} keys breaker/quarantine history by it. *)

val attached : t -> hook:string -> attachment list
(** In attach order. *)

val hooks : t -> string list
(** Hook names carrying at least one attachment, sorted. *)

val count : t -> int

val describe : attachment -> string
(** One line: attach id, program name/id, content-digest prefix. *)
