(* Epoch-based world snapshots: the serving core's RCU-style publication
   scheme.

   The paper's §3 framework is a *serving* architecture — extensions are
   signed, loaded and revoked over the lifetime of a running kernel — so
   the tables an invocation reads (the loaded-program table, the tail-call
   index, the verifier/analysis configuration) must never change underneath
   an in-flight event.  Mutable hashtables cannot promise that; immutable
   snapshots can.

   The scheme mirrors kernel RCU:

   - a [snapshot] is an immutable value: frozen program table, frozen
     tail-call index, the vconfig/aconfig the programs were admitted under.
     Readers pin it ([retain]/[release]) for the duration of one
     invocation and resolve every lookup against it — a half-applied world
     is unrepresentable.

   - all mutation goes through a [builder]: stage loads/unloads/tail-call
     rewires/config changes against the current snapshot, then [publish]
     swaps epoch N+1 in atomically (one pointer write in this simulation).

   - the superseded snapshot N retires only after a grace period: when no
     reader pins it *and* the simulated kernel's RCU read-side tracking
     ([Kernel_sim.Rcu.in_critical_section]) reports quiescence.  The grace
     period is measured on the virtual clock and exported as the
     [epoch.grace_ns] histogram.

   Registry-level state — the kernel itself, the map registry, the helper
   bug database, supervisor history, telemetry — deliberately lives
   *outside* the snapshot (in [World]): fault injection and health history
   straddle epochs by design.  The [Bpf_verifier.Vbug.t] toggles nested
   inside vconfig are likewise live injection state shared across epochs;
   the verdict cache fingerprints them on every lookup, so flipping one
   invalidates verdicts without an epoch swap. *)

module Vclock = Kernel_sim.Vclock
module Rcu = Kernel_sim.Rcu
module Program = Ebpf.Program
module Verifier = Bpf_verifier.Verifier
module Int_map = Map.Make (Int)

type snapshot = {
  epoch : int;
  progs : Program.t Int_map.t;
  prog_array : int Int_map.t;  (* tail-call index -> prog id *)
  vconfig : Verifier.config;
  aconfig : Analysis.Driver.config;
  published_at_ns : int64;
  mutable pins : int;
  mutable superseded_at_ns : int64 option;
  mutable retired_at_ns : int64 option;
}

(* One row of the epoch-transition log: what the publish that *created*
   [epoch] staged, and — once the predecessor retires — how long its grace
   period ran. *)
type transition = {
  epoch : int;
  at_ns : int64;
  loads : int;
  unloads : int;
  tail_call_updates : int;
  vconfig_changed : bool;
  aconfig_changed : bool;
  mutable grace_ns : int64 option;
}

type store = {
  clock : Vclock.t;
  rcu : Rcu.t;
  (* One lock serialises every store mutation (pin/release bookkeeping,
     publish, prog-id allocation) and every multi-field read.  Sharded
     serving (Framework.Serve) pins and releases from N domains against
     one shared store; the critical sections are a handful of field
     updates, so contention is negligible next to an invocation. *)
  lock : Mutex.t;
  mutable current : snapshot;
  mutable next_prog_id : int;
  (* superseded snapshots still waiting out their grace period *)
  mutable retiring : snapshot list;
  mutable transitions : transition list;  (* newest first *)
  mutable published : int;  (* swaps since genesis (genesis excluded) *)
  mutable retired : int;
}

let locked store f = Mutex.protect store.lock f

(* ---- telemetry ---- *)

let tele_published = Telemetry.Registry.counter "epoch.published"
let tele_retired = Telemetry.Registry.counter "epoch.retired"
let tele_grace_ns = Telemetry.Registry.histogram "epoch.grace_ns"

(* ---- store ---- *)

let create_store ~clock ~rcu ~vconfig ~aconfig =
  let genesis =
    { epoch = 1; progs = Int_map.empty; prog_array = Int_map.empty;
      vconfig; aconfig; published_at_ns = Vclock.now clock; pins = 0;
      superseded_at_ns = None; retired_at_ns = None }
  in
  { clock; rcu; lock = Mutex.create (); current = genesis; next_prog_id = 1;
    retiring = []; transitions = []; published = 0; retired = 0 }

let current store = locked store (fun () -> store.current)
let current_epoch store = locked store (fun () -> store.current.epoch)
let published store = locked store (fun () -> store.published)
let retired store = locked store (fun () -> store.retired)
let grace_pending store = locked store (fun () -> List.length store.retiring)
let transitions store = locked store (fun () -> List.rev store.transitions)

(* ---- snapshot reads ---- *)

let find_prog snap prog_id = Int_map.find_opt prog_id snap.progs
let tail_target snap index = Int_map.find_opt index snap.prog_array
let progs_sorted snap = Int_map.bindings snap.progs
let tail_calls_sorted snap = Int_map.bindings snap.prog_array

(* ---- grace periods ---- *)

(* Retire every superseded snapshot nobody can still read: no pins, and the
   kernel's RCU read-side tracking reports no open critical section.  The
   grace period is supersession -> retirement on the virtual clock. *)
let quiesce_locked store =
  if not (Rcu.in_critical_section store.rcu) then begin
    let now = Vclock.now store.clock in
    let still_held, done_ = List.partition (fun s -> s.pins > 0) store.retiring in
    List.iter
      (fun s ->
        s.retired_at_ns <- Some now;
        store.retired <- store.retired + 1;
        Telemetry.Registry.bump tele_retired;
        let grace =
          match s.superseded_at_ns with
          | Some t -> Int64.sub now t
          | None -> 0L
        in
        Telemetry.Registry.observe tele_grace_ns grace;
        (* credit the grace period to the transition that superseded [s] *)
        match
          List.find_opt (fun tr -> tr.epoch = s.epoch + 1) store.transitions
        with
        | Some tr -> tr.grace_ns <- Some grace
        | None -> ())
      done_;
    store.retiring <- still_held
  end

let retain store snap =
  locked store (fun () ->
      (match snap.retired_at_ns with
      | Some _ -> invalid_arg "Epoch.retain: snapshot already retired"
      | None -> ());
      snap.pins <- snap.pins + 1;
      snap)

let release store snap =
  locked store (fun () ->
      snap.pins <- (if snap.pins > 0 then snap.pins - 1 else 0);
      quiesce_locked store)

let pin store =
  locked store (fun () ->
      let snap = store.current in
      snap.pins <- snap.pins + 1;
      snap)

(* ---- the builder: the only mutation path ---- *)

type builder = {
  store : store;
  mutable b_progs : Program.t Int_map.t;
  mutable b_prog_array : int Int_map.t;
  mutable b_vconfig : Verifier.config;
  mutable b_aconfig : Analysis.Driver.config;
  mutable b_loads : int;
  mutable b_unloads : int;
  mutable b_tc_updates : int;
  mutable b_vconfig_changed : bool;
  mutable b_aconfig_changed : bool;
  mutable b_published : bool;
}

let begin_ store =
  let base = locked store (fun () -> store.current) in
  { store; b_progs = base.progs; b_prog_array = base.prog_array;
    b_vconfig = base.vconfig; b_aconfig = base.aconfig; b_loads = 0;
    b_unloads = 0; b_tc_updates = 0; b_vconfig_changed = false;
    b_aconfig_changed = false; b_published = false }

let check_open b =
  if b.b_published then invalid_arg "Epoch: builder already published"

let add_prog b prog =
  check_open b;
  let prog_id =
    locked b.store (fun () ->
        let id = b.store.next_prog_id in
        b.store.next_prog_id <- id + 1;
        id)
  in
  b.b_progs <- Int_map.add prog_id prog b.b_progs;
  b.b_loads <- b.b_loads + 1;
  prog_id

let unload b ~prog_id =
  check_open b;
  if Int_map.mem prog_id b.b_progs then begin
    b.b_progs <- Int_map.remove prog_id b.b_progs;
    b.b_unloads <- b.b_unloads + 1;
    (* tail-call entries pointing at the unloaded program stay: a chase
       through them finds no program and returns -EINVAL, like a cleared
       prog-array slot — use [clear_tail_call] to drop the slot itself *)
    true
  end
  else false

let set_tail_call b ~index ~prog_id =
  check_open b;
  b.b_prog_array <- Int_map.add index prog_id b.b_prog_array;
  b.b_tc_updates <- b.b_tc_updates + 1

let clear_tail_call b ~index =
  check_open b;
  if Int_map.mem index b.b_prog_array then begin
    b.b_prog_array <- Int_map.remove index b.b_prog_array;
    b.b_tc_updates <- b.b_tc_updates + 1
  end

let set_vconfig b vconfig =
  check_open b;
  b.b_vconfig <- vconfig;
  b.b_vconfig_changed <- true

let set_aconfig b aconfig =
  check_open b;
  b.b_aconfig <- aconfig;
  b.b_aconfig_changed <- true

let vconfig b = b.b_vconfig
let aconfig b = b.b_aconfig

(* Publish epoch N+1: one pointer swap, the old snapshot enters its grace
   period.  The builder is single-shot — a second publish raises. *)
let publish b =
  check_open b;
  b.b_published <- true;
  let store = b.store in
  locked store (fun () ->
      let old = store.current in
      let now = Vclock.now store.clock in
      let snap =
        { epoch = old.epoch + 1; progs = b.b_progs;
          prog_array = b.b_prog_array; vconfig = b.b_vconfig;
          aconfig = b.b_aconfig; published_at_ns = now; pins = 0;
          superseded_at_ns = None; retired_at_ns = None }
      in
      old.superseded_at_ns <- Some now;
      store.retiring <- old :: store.retiring;
      store.current <- snap;
      store.published <- store.published + 1;
      Telemetry.Registry.bump tele_published;
      store.transitions <-
        { epoch = snap.epoch; at_ns = now; loads = b.b_loads;
          unloads = b.b_unloads; tail_call_updates = b.b_tc_updates;
          vconfig_changed = b.b_vconfig_changed;
          aconfig_changed = b.b_aconfig_changed; grace_ns = None }
        :: store.transitions;
      quiesce_locked store;
      snap)

let pp_transition ppf tr =
  Format.fprintf ppf
    "epoch %d @%Ldns loads=%d unloads=%d tail_calls=%d vconfig=%s aconfig=%s \
     grace=%s"
    tr.epoch tr.at_ns tr.loads tr.unloads tr.tail_call_updates
    (if tr.vconfig_changed then "changed" else "-")
    (if tr.aconfig_changed then "changed" else "-")
    (match tr.grace_ns with
    | Some g -> Printf.sprintf "%Ldns" g
    | None -> "pending")
