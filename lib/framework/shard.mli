(** Bounded coordinator -> worker event queues for the sharded serving
    engine ({!Serve}).

    One queue per shard: single producer (the coordinator walking the
    event stream in original order), single consumer (the shard domain).
    The bound is admission control; the {!overflow} policy decides what a
    full queue means:

    - {!Block}: the producer waits for the consumer — deterministic
      backpressure, no event is ever lost (the mode the determinism
      oracle requires);
    - {!Drop_newest}: the incoming event is dropped and counted,
      mirroring the BPF ring buffer's producer-fails contract.

    Occupancy peak, producer waits and drops are all counted, so a lossy
    or contended run is visible in {!Serve.stats}, never silent. *)

type overflow = Block | Drop_newest

val overflow_to_string : overflow -> string

type 'a t

val create : capacity:int -> overflow -> 'a t
(** Raises [Invalid_argument] if [capacity < 1]. *)

val push : 'a t -> 'a -> bool
(** [true] if accepted.  Under {!Block} waits while full (never [false]);
    under {!Drop_newest} returns [false] and counts the drop.  Raises
    [Invalid_argument] if the queue is closed. *)

val pop : 'a t -> 'a option
(** Blocking; [None] once the queue is closed and drained. *)

val close : 'a t -> unit
(** Idempotent.  Wakes all waiters; subsequent {!push} raises, {!pop}
    drains the remaining events then returns [None]. *)

val length : 'a t -> int
val capacity : 'a t -> int
val overflow : 'a t -> overflow

val peak : 'a t -> int
(** Maximum occupancy observed. *)

val backpressure_waits : 'a t -> int
(** Times the producer waited on a full queue ({!Block} only). *)

val dropped : 'a t -> int
(** Events rejected on overflow ({!Drop_newest} only). *)
