(* Bounded coordinator -> worker event queues for the sharded serving
   engine (Serve).

   One queue per shard, single producer (the coordinator walking the
   event stream in order) and single consumer (the shard's domain).  The
   bound is the serving engine's admission control: under [Block] a full
   queue makes the producer wait — deterministic, nothing is lost, the
   stream just applies backpressure — while under [Drop_newest] the
   incoming event is dropped and counted, mirroring the BPF ring buffer's
   producer-fails contract (and [Telemetry.Ring]'s).

   The counters ([peak] occupancy, [backpressure_waits], [dropped]) are
   surfaced per shard in [Serve.stats] so a lossy or contended run is
   visible, never silent. *)

type overflow = Block | Drop_newest

let overflow_to_string = function
  | Block -> "block"
  | Drop_newest -> "drop-newest"

type 'a t = {
  capacity : int;
  overflow : overflow;
  lock : Mutex.t;
  not_full : Condition.t;
  not_empty : Condition.t;
  buf : 'a Queue.t;
  mutable closed : bool;
  mutable peak : int;                (* max occupancy observed *)
  mutable backpressure_waits : int;  (* producer waits under Block *)
  mutable dropped : int;             (* events lost under Drop_newest *)
}

let create ~capacity overflow =
  if capacity < 1 then invalid_arg "Shard.create: capacity must be >= 1";
  { capacity; overflow; lock = Mutex.create ();
    not_full = Condition.create (); not_empty = Condition.create ();
    buf = Queue.create (); closed = false; peak = 0; backpressure_waits = 0;
    dropped = 0 }

let enqueue_locked t v =
  Queue.push v t.buf;
  let len = Queue.length t.buf in
  if len > t.peak then t.peak <- len;
  Condition.signal t.not_empty

(* [true] if the event was accepted; [false] only under [Drop_newest]
   overflow (the drop is counted).  Under [Block] the call waits for the
   consumer instead of failing. *)
let push t v =
  Mutex.protect t.lock @@ fun () ->
  if t.closed then invalid_arg "Shard.push: queue closed";
  match t.overflow with
  | Drop_newest ->
    if Queue.length t.buf >= t.capacity then begin
      t.dropped <- t.dropped + 1;
      false
    end
    else begin
      enqueue_locked t v;
      true
    end
  | Block ->
    while Queue.length t.buf >= t.capacity && not t.closed do
      t.backpressure_waits <- t.backpressure_waits + 1;
      Condition.wait t.not_full t.lock
    done;
    if t.closed then invalid_arg "Shard.push: queue closed";
    enqueue_locked t v;
    true

(* Blocking pop; [None] once the queue is closed AND drained — the
   consumer's termination signal. *)
let pop t =
  Mutex.protect t.lock @@ fun () ->
  while Queue.is_empty t.buf && not t.closed do
    Condition.wait t.not_empty t.lock
  done;
  if Queue.is_empty t.buf then None
  else begin
    let v = Queue.pop t.buf in
    Condition.signal t.not_full;
    Some v
  end

let close t =
  Mutex.protect t.lock @@ fun () ->
  t.closed <- true;
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full

let length t = Mutex.protect t.lock (fun () -> Queue.length t.buf)
let peak t = Mutex.protect t.lock (fun () -> t.peak)
let backpressure_waits t = Mutex.protect t.lock (fun () -> t.backpressure_waits)
let dropped t = Mutex.protect t.lock (fun () -> t.dropped)
let capacity t = t.capacity
let overflow t = t.overflow
