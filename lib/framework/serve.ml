(* The serving engine: one consolidated plan API over two execution
   strategies.

   This module owns what Dispatch.run_stream's optional-argument pile
   used to describe: the shape of one served stream (hook, event count,
   generator, chaos schedule, reload schedule, sharding) is a [plan]
   value built by smart constructors, and [run] executes it —
   sequentially on the calling domain when [plan.domains = 1] (the exact
   historical run_stream semantics), or sharded across N OCaml domains
   otherwise.

   ---- sharding model ----

   The coordinator walks the synthetic event stream in original order
   (the generator is stateful, so order is identity), partitions each
   event to a shard by flow hash (or round robin) and enqueues it on that
   shard's bounded queue (Shard).  Each shard domain owns a *private*
   machine: a shard World (fresh simulated kernel, the map topology
   recreated with shard-local storage, a copy of the bug database — see
   World.shard_of), a private pooled invocation context, a private
   Supervisor, and a private Telemetry.Registry installed domain-locally
   so every instrumentation site that runs on the shard lands in it.

   What shards *share* is exactly the published program state: the base
   world's epoch chain.  Mid-stream reloads still work — the stream is
   cut into segments at the distinct reload boundaries, and a
   segment-control table (one mutex) lazily applies reload groups in
   boundary order the first time any shard needs a segment, capturing
   that segment's published snapshot (retained until stream end) and its
   materialized attachment list.  Every invocation pins its segment's
   snapshot (Invoke.run ?snap), so the epoch grace period cannot close
   while any shard still serves events under a superseded epoch.

   ---- determinism ----

   Per-event work is deterministic in the ORIGINAL event index: the
   generator is consumed in order by the coordinator, chaos injection is
   a pure function of (seed, index), and each event's outcome fold is
   written to a slot private to its index.  The sequential stream
   checksum is then reconstructed exactly: with k_i invocations folding
   to e_i on event i,

     g_i = g_{i-1} * 31^{k_i} + e_i

   recombines the per-event folds into the same order-sensitive value the
   sequential loop computes — so N shards, 1 shard and the sequential
   path all agree, for any N (the qcheck oracle asserts this).

   The guarantee is scoped honestly: it holds for extensions whose
   per-event outcome does not read simulation state mutated by *other*
   events (map contents are shard-local, per-CPU-map style; the virtual
   clocks of different shards advance independently).  Under [Supervise]
   breaker state evolves per shard in shard-local observation order, so
   scorecards are per-shard honest but not shard-count invariant; the
   oracle therefore runs under [Isolate].  [Fail_fast] sharded is a
   best-effort broadcast abort, not an exact replay of the sequential
   prefix. *)

module Kernel = Kernel_sim.Kernel
module Vclock = Kernel_sim.Vclock
module Registry = Telemetry.Registry

(* ---- engine ---- *)

type policy =
  | Fail_fast             (* first crash aborts the stream, kernel stays dead *)
  | Isolate               (* contain crashes per invocation, keep serving *)
  | Supervise of Supervisor.config
                          (* isolate + circuit breakers + quarantine *)

type engine = {
  world : World.t;
  attach : Attach.t;
  ictx : Invoke.t;
  opts : Invoke.run_opts;
  policy : policy;
  sup : Supervisor.t;
}

let sup_config = function
  | Supervise c -> c
  | Fail_fast | Isolate -> Supervisor.default_config

let create ?(opts = Invoke.default_opts) ?(policy = Isolate) (w : World.t) =
  { world = w; attach = Attach.create (); ictx = Invoke.create w; opts; policy;
    sup = Supervisor.create ~config:(sup_config policy) () }

type reload = engine -> Epoch.builder -> unit

(* ---- synthetic events ---- *)

(* Deterministic packet stream: xorshift64* seeded per stream, byte [0] of
   each packet carries the low bits of the event index so attached filters
   can discriminate.  STATEFUL: packet [i] depends on how many packets were
   generated before it, so a generator must be consumed in order, once —
   which is why [plan] mints a fresh one per call. *)
let synthetic_packets ?(seed = 0x9e3779b97f4a7c15L) ~size () =
  let state = ref (if Int64.equal seed 0L then 1L else seed) in
  let next () =
    let x = !state in
    let x = Int64.logxor x (Int64.shift_left x 13) in
    let x = Int64.logxor x (Int64.shift_right_logical x 7) in
    let x = Int64.logxor x (Int64.shift_left x 17) in
    state := x;
    x
  in
  fun i ->
    let b = Bytes.create size in
    for off = 0 to size - 1 do
      Bytes.set b off (Char.chr (Int64.to_int (next ()) land 0xff))
    done;
    if size > 0 then Bytes.set b 0 (Char.chr (i land 0xff));
    b

(* ---- the plan ---- *)

type partition = Flow_hash | Round_robin

type plan = {
  hook : string;
  count : int;
  gen : int -> Bytes.t;
  domains : int;
  chaos : Chaos.config option;
  reloads : (int * reload) list;
  record_checksums : bool;
  queue_capacity : int;
  overflow : Shard.overflow;
  partition : partition;
}

let plan ?seed ?(size = 64) ?gen ?(domains = 1) ?chaos ?(reloads = [])
    ?(record_checksums = false) ?(queue_capacity = 256)
    ?(overflow = Shard.Block) ?(partition = Flow_hash) ~hook ~count () =
  if count < 0 then invalid_arg "Serve.plan: count must be >= 0";
  if domains < 1 then invalid_arg "Serve.plan: domains must be >= 1";
  if queue_capacity < 1 then
    invalid_arg "Serve.plan: queue_capacity must be >= 1";
  let gen =
    match gen with
    | Some g ->
      if seed <> None then
        invalid_arg "Serve.plan: ~seed is meaningless with an explicit ~gen";
      g
    | None -> synthetic_packets ?seed ~size ()
  in
  { hook; count; gen; domains; chaos; reloads; record_checksums;
    queue_capacity; overflow; partition }

(* A function, not a value: the default generator is stateful, so every
   default plan needs a fresh one. *)
let default ~hook ~count = plan ~hook ~count ()

(* ---- stats ---- *)

type totals = {
  events : int;
  invocations : int;
  finished : int;
  stopped : int;
  crashed : int;
  exhausted : int;
  skipped : int;          (* invocations suppressed by an open breaker *)
  faults_absorbed : int;  (* crashes + exhaustions contained (not Fail_fast) *)
  quarantined : int;      (* extensions detached/benched during the stream *)
  injected : int;         (* chaos injections that landed on an event *)
  dropped : int;          (* events lost to Drop_newest queue overflow *)
  reloads : int;          (* reload plans applied (epoch swaps published) *)
  ret_checksum : int64;   (* order-sensitive fold of all outcomes *)
  host_ns : int64;        (* wall time for the whole stream *)
  events_per_sec : float;
  per_epoch : (int * int) list;  (* epoch -> events served under it *)
}

type shard_stats = {
  shard : int;
  s_events : int;
  s_invocations : int;
  s_finished : int;
  s_stopped : int;
  s_crashed : int;
  s_exhausted : int;
  s_skipped : int;
  s_faults_absorbed : int;
  s_quarantined : int;
  s_injected : int;
  s_dropped : int;            (* events this shard's queue rejected *)
  s_queue_peak : int;
  s_backpressure_waits : int;
  s_host_ns : int64;          (* wall time of this shard's worker *)
  s_per_ext : Supervisor.health list;  (* this shard's private scorecard *)
}

type stats = {
  domains : int;
  totals : totals;
  per_ext : Supervisor.health list;
      (* digest-keyed merge of the per-shard scorecards *)
  per_shard : shard_stats list;  (* ascending shard index; [] sequential *)
  event_checksums : int64 array;
      (* per-event outcome folds at original indices (record_checksums) *)
}

let all_healthy s =
  s.totals.crashed = 0 && s.totals.exhausted = 0 && s.totals.stopped = 0
  && s.totals.skipped = 0 && s.totals.quarantined = 0
  && s.totals.dropped = 0

let pp_totals ppf t =
  Format.fprintf ppf
    "events=%d invocations=%d finished=%d stopped=%d crashed=%d exhausted=%d \
     skipped=%d absorbed=%d quarantined=%d injected=%d dropped=%d reloads=%d \
     checksum=%016Lx rate=%.0f ev/s"
    t.events t.invocations t.finished t.stopped t.crashed t.exhausted
    t.skipped t.faults_absorbed t.quarantined t.injected t.dropped t.reloads
    t.ret_checksum t.events_per_sec

let pp_shard ppf s =
  Format.fprintf ppf
    "shard %d: events=%d invocations=%d finished=%d crashed=%d exhausted=%d \
     skipped=%d injected=%d dropped=%d qpeak=%d waits=%d"
    s.shard s.s_events s.s_invocations s.s_finished s.s_crashed s.s_exhausted
    s.s_skipped s.s_injected s.s_dropped s.s_queue_peak s.s_backpressure_waits

let pp_stats ppf s =
  Format.fprintf ppf "%a" pp_totals s.totals;
  List.iter (fun sh -> Format.fprintf ppf "@.%a" pp_shard sh) s.per_shard

(* ---- shared helpers ---- *)

let checksum_add acc = function
  | Invoke.Finished v -> Int64.add (Int64.mul acc 31L) v
  | Invoke.Stopped _ -> Int64.add (Int64.mul acc 31L) (-1L)
  | Invoke.Crashed _ -> Int64.add (Int64.mul acc 31L) (-2L)
  | Invoke.Exhausted _ -> Int64.add (Int64.mul acc 31L) (-3L)

let host_ns () = Int64.of_float (Sys.time () *. 1e9)

(* FNV-1a over the payload: the stand-in for a real flow key (5-tuple). *)
let flow_hash (b : Bytes.t) =
  let h = ref 0xcbf29ce484222325L in
  for i = 0 to Bytes.length b - 1 do
    h :=
      Int64.mul
        (Int64.logxor !h (Int64.of_int (Char.code (Bytes.unsafe_get b i))))
        0x100000001b3L
  done;
  Int64.to_int (Int64.logand !h 0x3fffffff_ffffffffL)

let shard_for p ~nshards ~index payload =
  match p.partition with
  | Round_robin -> index mod nshards
  | Flow_hash -> flow_hash payload mod nshards

(* ---- sequential execution (plan.domains = 1) ----

   The historical Dispatch.run_stream loop, verbatim in behaviour: runs on
   the calling domain, against the engine's own world/ictx/supervisor, so
   supervision state accumulates across successive runs on one engine. *)

let tele_events = Registry.counter "dispatch.events"
let tele_invocations = Registry.counter "dispatch.invocations"
let tele_crashes = Registry.counter "dispatch.crashes"
let tele_stops = Registry.counter "dispatch.stops"
let tele_exhausted = Registry.counter "dispatch.exhausted"
let tele_skipped = Registry.counter "dispatch.skipped"
let tele_absorbed = Registry.counter "dispatch.faults_absorbed"
let tele_event_ns = Registry.histogram "dispatch.event_ns"
let tele_event_span_ns = Registry.histogram "dispatch.event.ns"
let tele_rate = Registry.counter "dispatch.events_per_sec"
let tele_reloads = Registry.counter "dispatch.reloads"
let tele_swap_ns = Registry.histogram "epoch.swap_ns"

let run_sequential (e : engine) (p : plan) : stats =
  let started = host_ns () in
  let invocations = ref 0 and finished = ref 0 and stopped = ref 0 in
  let crashed = ref 0 and exhausted = ref 0 and skipped = ref 0 in
  let faults_absorbed = ref 0 and quarantined = ref 0 and injected = ref 0 in
  let checksum = ref 0L in
  let events = ref 0 in
  let reloads = ref 0 in
  let epoch_counts : (int, int ref) Hashtbl.t = Hashtbl.create 4 in
  let event_checksums =
    if p.record_checksums then Array.make (max p.count 0) 0L else [||]
  in
  (* Apply every reload plan scheduled for event boundary [i]: stage on a
     fresh builder, publish atomically, measure the swap on the host
     clock.  In-flight pins are impossible here (we are between events),
     but the grace-period machinery still runs — a superseded epoch held
     by an explicit pin outlives the swap untouched. *)
  let apply_reloads i =
    List.iter
      (fun (_, rplan) ->
        let swap_started = host_ns () in
        let b = Epoch.begin_ e.world.World.epochs in
        rplan e b;
        ignore (Epoch.publish b);
        Registry.observe tele_swap_ns (Int64.sub (host_ns ()) swap_started);
        Registry.bump tele_reloads;
        incr reloads)
      (List.filter (fun (idx, _) -> idx = i) p.reloads)
  in
  let kernel = e.world.World.kernel in
  let supervised = match e.policy with Supervise _ -> true | _ -> false in
  (* A contained fault: revive already happened (crash) or was unnecessary
     (exhaustion); charge the breaker and quarantine on its verdict. *)
  let contained_fault ext =
    incr faults_absorbed;
    Registry.bump tele_absorbed;
    if supervised then begin
      let now = Vclock.now kernel.Kernel.clock in
      match Supervisor.observe_fault e.sup ext ~now_ns:now with
      | Supervisor.Quarantine ->
        ignore (Attach.detach e.attach ~attach_id:ext.Supervisor.attach_id);
        incr quarantined
      | Supervisor.Tripped _ | Supervisor.No_change -> ()
    end
  in
  (* Each event runs under a fresh causal trace on the simulated clock:
     dispatch.event > dispatch.<ext> > loader.run > interp/jit.run, with
     supervisor and chaos points landing inside whichever span was open
     when they fired. *)
  let vnow () = Vclock.now kernel.Kernel.clock in
  (try
     for i = 0 to p.count - 1 do
       apply_reloads i;
       Registry.bump tele_events;
       let ev_started = host_ns () in
       incr events;
       (let ep = (World.current e.world).Epoch.epoch in
        match Hashtbl.find_opt epoch_counts ep with
        | Some r -> incr r
        | None -> Hashtbl.add epoch_counts ep (ref 1));
       let ev_checksum = ref 0L in
       (Registry.with_trace (Registry.fresh_trace ())
       @@ fun () ->
       Registry.with_span "dispatch.event" ~hist:tele_event_span_ns ~clock:vnow
       @@ fun () ->
       let inj =
         match p.chaos with
         | None -> Chaos.Calm
         | Some c -> Chaos.injection c ~event:i
       in
       if inj <> Chaos.Calm then incr injected;
       let opts =
         Chaos.apply_opts inj { e.opts with Invoke.skb_payload = Some (p.gen i) }
       in
       Chaos.arm inj e.world.World.bugs;
       Fun.protect ~finally:(fun () -> Chaos.disarm inj e.world.World.bugs)
       @@ fun () ->
       List.iter
         (fun (a : Attach.attachment) ->
           let name = Attach.name a in
           let ext =
             (* digest-keyed: the same image keeps its breaker history
                across detach/re-attach and epoch swaps *)
             Supervisor.ext e.sup ~digest:(Attach.digest a)
               ~attach_id:a.Attach.attach_id ~name
           in
           let decision =
             if supervised then
               Supervisor.decide e.sup ext
                 ~now_ns:(Vclock.now kernel.Kernel.clock)
             else Supervisor.Execute
           in
           Registry.with_span ("dispatch." ^ name) ~clock:vnow
           @@ fun () ->
           match decision with
           | Supervisor.Skip ->
             (* breaker open / quarantined: fast-fail, span still closes *)
             Registry.point "dispatch.skip"
               ~value:(Int64.of_int a.Attach.attach_id);
             Supervisor.observe_skip ext;
             incr skipped;
             Registry.bump tele_skipped
           | Supervisor.Execute | Supervisor.Probe ->
             Registry.bump tele_invocations;
             let inv_started = Vclock.now kernel.Kernel.clock in
             let r = Invoke.run ~opts ~ictx:e.ictx e.world a.Attach.loaded in
             (* scorecard latency: Vclock cost of this invocation,
                recorded whether or not tracing retained the spans *)
             Registry.observe ext.Supervisor.lat
               (Int64.sub (Vclock.now kernel.Kernel.clock) inv_started);
             incr invocations;
             ext.Supervisor.invocations <- ext.Supervisor.invocations + 1;
             checksum := checksum_add !checksum r.Invoke.outcome;
             ev_checksum := checksum_add !ev_checksum r.Invoke.outcome;
             ext.Supervisor.ret_checksum <-
               checksum_add ext.Supervisor.ret_checksum r.Invoke.outcome;
             (match r.Invoke.outcome with
             | Invoke.Finished _ ->
               incr finished;
               ext.Supervisor.finished <- ext.Supervisor.finished + 1;
               if supervised then
                 Supervisor.observe_ok e.sup ext
                   ~now_ns:(Vclock.now kernel.Kernel.clock)
             | Invoke.Stopped _ ->
               (* a language panic is a clean self-stop, not a fault *)
               Registry.bump tele_stops;
               incr stopped;
               ext.Supervisor.stopped <- ext.Supervisor.stopped + 1;
               if supervised then
                 Supervisor.observe_ok e.sup ext
                   ~now_ns:(Vclock.now kernel.Kernel.clock)
             | Invoke.Crashed _ -> (
               Registry.bump tele_crashes;
               incr crashed;
               ext.Supervisor.crashed <- ext.Supervisor.crashed + 1;
               match e.policy with
               | Fail_fast -> raise Exit
               | Isolate | Supervise _ ->
                 ignore (Kernel.revive kernel);
                 contained_fault ext)
             | Invoke.Exhausted _ ->
               Registry.bump tele_exhausted;
               incr exhausted;
               ext.Supervisor.exhausted <- ext.Supervisor.exhausted + 1;
               (match e.policy with
               | Fail_fast -> ()  (* guards cleaned up; keep serving *)
               | Isolate | Supervise _ -> contained_fault ext)))
         (Attach.attached e.attach ~hook:p.hook));
       if p.record_checksums then event_checksums.(i) <- !ev_checksum;
       Registry.observe tele_event_ns (Int64.sub (host_ns ()) ev_started)
     done
   with Exit -> ());
  let elapsed = Int64.sub (host_ns ()) started in
  let rate =
    if Int64.compare elapsed 0L > 0 then
      float_of_int !events /. (Int64.to_float elapsed /. 1e9)
    else 0.
  in
  (* export the latest stream's throughput (counter-as-gauge) *)
  Telemetry.Counter.reset tele_rate;
  Registry.incr tele_rate ~n:(int_of_float rate);
  let totals =
    {
      events = !events;
      invocations = !invocations;
      finished = !finished;
      stopped = !stopped;
      crashed = !crashed;
      exhausted = !exhausted;
      skipped = !skipped;
      faults_absorbed = !faults_absorbed;
      quarantined = !quarantined;
      injected = !injected;
      dropped = 0;
      reloads = !reloads;
      ret_checksum = !checksum;
      host_ns = elapsed;
      events_per_sec = rate;
      per_epoch =
        Hashtbl.fold (fun ep r acc -> (ep, !r) :: acc) epoch_counts []
        |> List.sort (fun (a, _) (b, _) -> Int.compare a b);
    }
  in
  { domains = 1; totals; per_ext = Supervisor.healths e.sup; per_shard = [];
    event_checksums }

(* ---- sharded execution ---- *)

(* Segment control: the stream cut at the distinct reload boundaries.
   Segment [s] is the run of events between boundary [s-1] (inclusive)
   and boundary [s] (exclusive); its world view is the snapshot published
   after applying the first [s] reload groups.  Groups are applied
   lazily, in boundary order, under one mutex, the first time any shard
   needs the segment; each segment's snapshot is retained until stream
   end (so it can never retire while a shard still serves it), and its
   attachment list is materialized once, digests precomputed. *)

type seg_entry = {
  seg_snap : Epoch.snapshot;
  seg_attach : (Attach.attachment * string * string) array;
      (* (attachment, name, digest) in attach order *)
}

type segctl = {
  sc_lock : Mutex.t;
  sc_boundaries : int array;  (* sorted distinct reload indices *)
  sc_engine : engine;
  sc_plan : plan;
  mutable sc_applied : int;   (* reload groups applied so far *)
  sc_entries : seg_entry option array;  (* one slot per segment *)
  mutable sc_reloads : int;   (* individual reload plans applied *)
}

let segctl_create e p =
  let boundaries =
    List.filter_map
      (fun (idx, _) -> if idx >= 0 && idx < p.count then Some idx else None)
      p.reloads
    |> List.sort_uniq Int.compare |> Array.of_list
  in
  { sc_lock = Mutex.create (); sc_boundaries = boundaries; sc_engine = e;
    sc_plan = p; sc_applied = 0;
    sc_entries = Array.make (Array.length boundaries + 1) None;
    sc_reloads = 0 }

(* Segment of event [i]: how many boundaries are <= i. *)
let segment_of ctl i =
  let b = ctl.sc_boundaries in
  let lo = ref 0 and hi = ref (Array.length b) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if b.(mid) <= i then lo := mid + 1 else hi := mid
  done;
  !lo

let capture_segment ctl k =
  if ctl.sc_entries.(k) = None then begin
    let e = ctl.sc_engine in
    let store = e.world.World.epochs in
    let snap = Epoch.retain store (Epoch.current store) in
    let attach =
      Attach.attached e.attach ~hook:ctl.sc_plan.hook
      |> List.map (fun a -> (a, Attach.name a, Attach.digest a))
      |> Array.of_list
    in
    ctl.sc_entries.(k) <- Some { seg_snap = snap; seg_attach = attach }
  end

let apply_group ctl idx =
  let e = ctl.sc_engine in
  List.iter
    (fun (_, rplan) ->
      let swap_started = host_ns () in
      let b = Epoch.begin_ e.world.World.epochs in
      rplan e b;
      ignore (Epoch.publish b);
      (* name-resolved so the swap is credited to whichever shard's
         registry triggered the lazy application *)
      Registry.observe_name "epoch.swap_ns"
        (Int64.sub (host_ns ()) swap_started);
      Registry.incr_name "dispatch.reloads";
      ctl.sc_reloads <- ctl.sc_reloads + 1)
    (List.filter (fun (i, _) -> i = idx) ctl.sc_plan.reloads)

let ensure_segment ctl s =
  Mutex.protect ctl.sc_lock @@ fun () ->
  while ctl.sc_applied < s do
    (* freeze the current segment's view before advancing past it *)
    capture_segment ctl ctl.sc_applied;
    apply_group ctl ctl.sc_boundaries.(ctl.sc_applied);
    ctl.sc_applied <- ctl.sc_applied + 1
  done;
  capture_segment ctl s;
  Option.get ctl.sc_entries.(s)

let release_segments ctl =
  Mutex.protect ctl.sc_lock @@ fun () ->
  Array.iteri
    (fun k entry ->
      match entry with
      | Some { seg_snap; _ } ->
        Epoch.release ctl.sc_engine.world.World.epochs seg_snap;
        ctl.sc_entries.(k) <- None
      | None -> ())
    ctl.sc_entries

(* What one worker hands back at the barrier (queue counters are read off
   the queue afterwards). *)
type worker_result = {
  w_events : int;
  w_invocations : int;
  w_finished : int;
  w_stopped : int;
  w_crashed : int;
  w_exhausted : int;
  w_skipped : int;
  w_faults_absorbed : int;
  w_quarantined : int;
  w_injected : int;
  w_host_ns : int64;
  w_per_ext : Supervisor.health list;
  w_per_epoch : (int * int) list;
}

(* One shard worker: drain the queue, run every event against the shard's
   private machine under the segment's pinned snapshot.  [ev_sums] /
   [ev_counts] are shared arrays indexed by ORIGINAL event index — each
   slot is written by exactly one shard (the one the event was
   partitioned to), so there is no cross-domain write conflict. *)
let worker (e : engine) (p : plan) ctl queue ~(ev_sums : int64 array)
    ~(ev_counts : int array) ~(abort : bool Atomic.t) () =
  let w_started = host_ns () in
  let sw = World.shard_of e.world in
  let ictx = Invoke.create sw in
  let sup = Supervisor.create ~config:(sup_config e.policy) () in
  let kernel = sw.World.kernel in
  let supervised = match e.policy with Supervise _ -> true | _ -> false in
  (* shard-local quarantine: the shared Attach table is never mutated by
     workers; a benched extension is simply filtered out on this shard *)
  let benched : (int, unit) Hashtbl.t = Hashtbl.create 4 in
  (* intern the hot handles in THIS shard's registry (we are inside
     Registry.using): name-resolution here, raw bumps on the event path *)
  let tele_events = Registry.counter "dispatch.events" in
  let tele_invocations = Registry.counter "dispatch.invocations" in
  let tele_crashes = Registry.counter "dispatch.crashes" in
  let tele_stops = Registry.counter "dispatch.stops" in
  let tele_exhausted = Registry.counter "dispatch.exhausted" in
  let tele_skipped = Registry.counter "dispatch.skipped" in
  let tele_absorbed = Registry.counter "dispatch.faults_absorbed" in
  let tele_event_ns = Registry.histogram "dispatch.event_ns" in
  let tele_event_span_ns = Registry.histogram "dispatch.event.ns" in
  let invocations = ref 0 and finished = ref 0 and stopped = ref 0 in
  let crashed = ref 0 and exhausted = ref 0 and skipped = ref 0 in
  let faults_absorbed = ref 0 and quarantined = ref 0 and injected = ref 0 in
  let events = ref 0 in
  let epoch_counts : (int, int ref) Hashtbl.t = Hashtbl.create 4 in
  let vnow () = Vclock.now kernel.Kernel.clock in
  let contained_fault ext =
    incr faults_absorbed;
    Registry.bump tele_absorbed;
    if supervised then begin
      let now = Vclock.now kernel.Kernel.clock in
      match Supervisor.observe_fault sup ext ~now_ns:now with
      | Supervisor.Quarantine ->
        Hashtbl.replace benched ext.Supervisor.attach_id ();
        incr quarantined
      | Supervisor.Tripped _ | Supervisor.No_change -> ()
    end
  in
  (* cache the last segment looked up: per-shard event indices ascend, so
     segment lookups are monotone and the mutex is taken once per segment *)
  let cur_seg = ref (-1) in
  let cur_entry = ref None in
  let entry_for seg =
    if !cur_seg <> seg then begin
      cur_entry := Some (ensure_segment ctl seg);
      cur_seg := seg
    end;
    Option.get !cur_entry
  in
  let process (i, seg, payload) =
    let { seg_snap; seg_attach } = entry_for seg in
    Registry.bump tele_events;
    let ev_started = host_ns () in
    incr events;
    (let ep = seg_snap.Epoch.epoch in
     match Hashtbl.find_opt epoch_counts ep with
     | Some r -> incr r
     | None -> Hashtbl.add epoch_counts ep (ref 1));
    let ev_checksum = ref 0L in
    let ev_invocations = ref 0 in
    (Registry.with_trace (Registry.fresh_trace ())
    @@ fun () ->
    Registry.with_span "dispatch.event" ~hist:tele_event_span_ns ~clock:vnow
    @@ fun () ->
    let inj =
      match p.chaos with
      | None -> Chaos.Calm
      | Some c -> Chaos.injection c ~event:i
    in
    if inj <> Chaos.Calm then incr injected;
    let opts =
      Chaos.apply_opts inj { e.opts with Invoke.skb_payload = Some payload }
    in
    Chaos.arm inj sw.World.bugs;
    Fun.protect ~finally:(fun () -> Chaos.disarm inj sw.World.bugs)
    @@ fun () ->
    Array.iter
      (fun ((a : Attach.attachment), name, digest) ->
        if not (Hashtbl.mem benched a.Attach.attach_id) then begin
          let ext =
            Supervisor.ext sup ~digest ~attach_id:a.Attach.attach_id ~name
          in
          let decision =
            if supervised then
              Supervisor.decide sup ext
                ~now_ns:(Vclock.now kernel.Kernel.clock)
            else Supervisor.Execute
          in
          Registry.with_span ("dispatch." ^ name) ~clock:vnow
          @@ fun () ->
          match decision with
          | Supervisor.Skip ->
            Registry.point "dispatch.skip"
              ~value:(Int64.of_int a.Attach.attach_id);
            Supervisor.observe_skip ext;
            incr skipped;
            Registry.bump tele_skipped
          | Supervisor.Execute | Supervisor.Probe ->
            Registry.bump tele_invocations;
            let inv_started = Vclock.now kernel.Kernel.clock in
            let r = Invoke.run ~opts ~ictx ~snap:seg_snap sw a.Attach.loaded in
            Registry.observe ext.Supervisor.lat
              (Int64.sub (Vclock.now kernel.Kernel.clock) inv_started);
            incr invocations;
            incr ev_invocations;
            ext.Supervisor.invocations <- ext.Supervisor.invocations + 1;
            ev_checksum := checksum_add !ev_checksum r.Invoke.outcome;
            ext.Supervisor.ret_checksum <-
              checksum_add ext.Supervisor.ret_checksum r.Invoke.outcome;
            (match r.Invoke.outcome with
            | Invoke.Finished _ ->
              incr finished;
              ext.Supervisor.finished <- ext.Supervisor.finished + 1;
              if supervised then
                Supervisor.observe_ok sup ext
                  ~now_ns:(Vclock.now kernel.Kernel.clock)
            | Invoke.Stopped _ ->
              Registry.bump tele_stops;
              incr stopped;
              ext.Supervisor.stopped <- ext.Supervisor.stopped + 1;
              if supervised then
                Supervisor.observe_ok sup ext
                  ~now_ns:(Vclock.now kernel.Kernel.clock)
            | Invoke.Crashed _ -> (
              Registry.bump tele_crashes;
              incr crashed;
              ext.Supervisor.crashed <- ext.Supervisor.crashed + 1;
              match e.policy with
              | Fail_fast ->
                (* broadcast abort; this shard's kernel stays dead *)
                Atomic.set abort true;
                raise Exit
              | Isolate | Supervise _ ->
                ignore (Kernel.revive kernel);
                contained_fault ext)
            | Invoke.Exhausted _ ->
              Registry.bump tele_exhausted;
              incr exhausted;
              ext.Supervisor.exhausted <- ext.Supervisor.exhausted + 1;
              (match e.policy with
              | Fail_fast -> ()
              | Isolate | Supervise _ -> contained_fault ext))
        end)
      seg_attach);
    ev_sums.(i) <- !ev_checksum;
    ev_counts.(i) <- !ev_invocations;
    Registry.observe tele_event_ns (Int64.sub (host_ns ()) ev_started)
  in
  (* Main drain loop.  After a Fail_fast abort the loop keeps draining —
     discarding events — so a Block-mode producer can never deadlock
     against a stopped consumer. *)
  let rec drain () =
    match Shard.pop queue with
    | None -> ()
    | Some ev ->
      if not (Atomic.get abort) then (try process ev with Exit -> ());
      drain ()
  in
  drain ();
  {
    w_events = !events;
    w_invocations = !invocations;
    w_finished = !finished;
    w_stopped = !stopped;
    w_crashed = !crashed;
    w_exhausted = !exhausted;
    w_skipped = !skipped;
    w_faults_absorbed = !faults_absorbed;
    w_quarantined = !quarantined;
    w_injected = !injected;
    w_host_ns = Int64.sub (host_ns ()) w_started;
    w_per_ext = Supervisor.healths sup;
    w_per_epoch =
      Hashtbl.fold (fun ep r acc -> (ep, !r) :: acc) epoch_counts []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b);
  }

(* Exact reconstruction of the sequential order-sensitive checksum from
   the per-event folds: g_i = g_{i-1} * 31^{k_i} + e_i.  Slots of dropped
   events hold (k = 0, e = 0), which leaves the fold unchanged — a
   dropped event simply never happened. *)
let recombine ~(ev_sums : int64 array) ~(ev_counts : int array) =
  let acc = ref 0L in
  for i = 0 to Array.length ev_sums - 1 do
    for _ = 1 to ev_counts.(i) do
      acc := Int64.mul !acc 31L
    done;
    acc := Int64.add !acc ev_sums.(i)
  done;
  !acc

let merge_per_epoch per_shard =
  let tbl : (int, int ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (List.iter (fun (ep, n) ->
         match Hashtbl.find_opt tbl ep with
         | Some r -> r := !r + n
         | None -> Hashtbl.add tbl ep (ref n)))
    per_shard;
  Hashtbl.fold (fun ep r acc -> (ep, !r) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let run_sharded (e : engine) (p : plan) : stats =
  let n = p.domains in
  let started = host_ns () in
  let ctl = segctl_create e p in
  let ev_sums = Array.make (max p.count 0) 0L in
  let ev_counts = Array.make (max p.count 0) 0 in
  let abort = Atomic.make false in
  let queues =
    Array.init n (fun _ -> Shard.create ~capacity:p.queue_capacity p.overflow)
  in
  let registries =
    Array.init n (fun k ->
        Registry.create ~label:(Printf.sprintf "shard-%d" k) ())
  in
  let home = Registry.current () in
  let doms =
    Array.init n (fun k ->
        Domain.spawn (fun () ->
            Registry.using registries.(k)
              (worker e p ctl queues.(k) ~ev_sums ~ev_counts ~abort)))
  in
  (* The coordinator is the single producer: the stateful generator is
     consumed in original order, so event [i]'s payload is identical to
     what the sequential loop would have fed it. *)
  (try
     for i = 0 to p.count - 1 do
       if Atomic.get abort then raise Exit;
       let payload = p.gen i in
       let shard = shard_for p ~nshards:n ~index:i payload in
       ignore (Shard.push queues.(shard) (i, segment_of ctl i, payload))
     done
   with Exit -> ());
  Array.iter Shard.close queues;
  let results = Array.map Domain.join doms in
  (* barrier: fold every shard's registry into the caller's, bench the
     segment pins so superseded epochs can finish their grace periods *)
  Array.iter (fun reg -> Registry.merge reg ~into:home) registries;
  release_segments ctl;
  let elapsed = Int64.sub (host_ns ()) started in
  let sum f = Array.fold_left (fun acc r -> acc + f r) 0 results in
  let events = sum (fun r -> r.w_events) in
  let dropped = Array.fold_left (fun acc q -> acc + Shard.dropped q) 0 queues in
  let rate =
    if Int64.compare elapsed 0L > 0 then
      float_of_int events /. (Int64.to_float elapsed /. 1e9)
    else 0.
  in
  Telemetry.Counter.reset tele_rate;
  Registry.incr tele_rate ~n:(int_of_float rate);
  let totals =
    {
      events;
      invocations = sum (fun r -> r.w_invocations);
      finished = sum (fun r -> r.w_finished);
      stopped = sum (fun r -> r.w_stopped);
      crashed = sum (fun r -> r.w_crashed);
      exhausted = sum (fun r -> r.w_exhausted);
      skipped = sum (fun r -> r.w_skipped);
      faults_absorbed = sum (fun r -> r.w_faults_absorbed);
      quarantined = sum (fun r -> r.w_quarantined);
      injected = sum (fun r -> r.w_injected);
      dropped;
      reloads = ctl.sc_reloads;
      ret_checksum = recombine ~ev_sums ~ev_counts;
      host_ns = elapsed;
      events_per_sec = rate;
      per_epoch =
        merge_per_epoch (Array.to_list (Array.map (fun r -> r.w_per_epoch) results));
    }
  in
  let per_shard =
    List.init n (fun k ->
        let r = results.(k) in
        let q = queues.(k) in
        {
          shard = k;
          s_events = r.w_events;
          s_invocations = r.w_invocations;
          s_finished = r.w_finished;
          s_stopped = r.w_stopped;
          s_crashed = r.w_crashed;
          s_exhausted = r.w_exhausted;
          s_skipped = r.w_skipped;
          s_faults_absorbed = r.w_faults_absorbed;
          s_quarantined = r.w_quarantined;
          s_injected = r.w_injected;
          s_dropped = Shard.dropped q;
          s_queue_peak = Shard.peak q;
          s_backpressure_waits = Shard.backpressure_waits q;
          s_host_ns = r.w_host_ns;
          s_per_ext = r.w_per_ext;
        })
  in
  {
    domains = n;
    totals;
    per_ext =
      Supervisor.merge_healths
        (Array.to_list (Array.map (fun r -> r.w_per_ext) results));
    per_shard;
    event_checksums = (if p.record_checksums then ev_sums else [||]);
  }

let sharded = run_sharded

let run e (p : plan) =
  if p.domains = 1 then run_sequential e p else run_sharded e p
