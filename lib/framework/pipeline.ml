(* The staged load pipeline: the two load paths of the study as one explicit
   sequence of stages, each with its own typed error.

     admission -> fixup -> gate [verify | validate-signature] -> link

   Path A (today's architecture, paper Figure 1): the gate is the in-kernel
   verifier's symbolic execution — with a content-addressed verdict cache in
   front of it, because a kernel serving heavy extension traffic sees the
   same program image over and over, and verification is a pure function of
   program content plus the inputs Verdict_cache fingerprints.

   Path B (the proposal, paper Figure 5): the gate is signature validation
   only; safety came from the userspace toolchain and will be backstopped by
   the runtime guards.

   Both paths produce the same [loaded] handle, run by Invoke/Loader, so any
   difference in observed safety is attributable to the architecture. *)

module Kernel = Kernel_sim.Kernel
module Oops = Kernel_sim.Oops
module Bpf_map = Maps.Bpf_map
module Program = Ebpf.Program
module Verifier = Bpf_verifier.Verifier

type loaded =
  | Ebpf_prog of { prog_id : int; prog : Program.t; vstats : Verifier.stats;
                   analysis : Analysis.Driver.report option }
  | Rustlite_ext of { ext : Rustlite.Toolchain.signed_extension;
                      map_ids : (string * int) list }

(* ---- stages and their typed errors ---- *)

type stage = Admission | Fixup | Analyze | Gate | Link

let stage_name = function
  | Admission -> "admission"
  | Fixup -> "fixup"
  | Analyze -> "analyze"
  | Gate -> "gate"
  | Link -> "link"

type error =
  | Too_many_insns of { count : int; max : int }  (* admission: size cap *)
  | Cost_budget_exceeded of { bound : int; max : int }
      (* admission: static worst-case bound over the aconfig budget *)
  | Unbounded_cost                                (* admission: no static bound, policy Deny *)
  | Unknown_helper of string                      (* fixup: unresolved relocation *)
  | Verifier_rejected of Verifier.reject          (* gate, path A *)
  | Verifier_crashed of string                    (* gate, path A: verifier bug fired *)
  | Bad_signature                                 (* gate, path B *)
  | Duplicate_map of string                       (* link, path B: ambiguous map name *)

let stage_of_error = function
  | Too_many_insns _ | Cost_budget_exceeded _ | Unbounded_cost -> Admission
  | Unknown_helper _ -> Fixup
  | Verifier_rejected _ | Verifier_crashed _ | Bad_signature -> Gate
  | Duplicate_map _ -> Link

let pp_error ppf = function
  | Too_many_insns { count; max } ->
    Format.fprintf ppf "[admission] too many instructions (%d > %d)" count max
  | Cost_budget_exceeded { bound; max } ->
    Format.fprintf ppf
      "[admission] worst-case cost %d exceeds the max_cost budget %d" bound max
  | Unbounded_cost ->
    Format.fprintf ppf
      "[admission] no static instruction bound and the unbounded policy is deny"
  | Unknown_helper name -> Format.fprintf ppf "[fixup] unknown helper %s" name
  | Verifier_rejected r -> Format.fprintf ppf "[gate] verifier rejected: %a" Verifier.pp_reject r
  | Verifier_crashed msg -> Format.fprintf ppf "[gate] KERNEL BUG in verifier: %s" msg
  | Bad_signature -> Format.fprintf ppf "[gate] signature validation failed"
  | Duplicate_map name -> Format.fprintf ppf "[link] duplicate map name %s" name

(* ---- telemetry ---- *)

(* loader.* names predate the pipeline split and are kept stable for
   existing consumers; pipeline.* covers what is new. *)
let tele_ebpf_loads = Telemetry.Registry.counter "loader.ebpf_loads"
let tele_rustlite_loads = Telemetry.Registry.counter "loader.rustlite_loads"
let tele_load_errors = Telemetry.Registry.counter "loader.load_errors"
let tele_load_ns = Telemetry.Registry.histogram "loader.load_ns"
let tele_validate_ns = Telemetry.Registry.histogram "loader.validate_ns"
let tele_cache_hits = Telemetry.Registry.counter "pipeline.cache_hits"
let tele_cache_misses = Telemetry.Registry.counter "pipeline.cache_misses"
let tele_gate_ns = Telemetry.Registry.histogram "pipeline.gate_ns"
let tele_analysis_hits = Telemetry.Registry.counter "pipeline.analysis_cache_hits"
let tele_analysis_misses = Telemetry.Registry.counter "pipeline.analysis_cache_misses"
let tele_analysis_ns = Telemetry.Registry.histogram "pipeline.analysis_ns"
let tele_budget_rejects = Telemetry.Registry.counter "pipeline.cost_budget_rejects"

(* Loading happens before the simulated clock moves; host CPU time is the
   meaningful measure (it is dominated by verification on path A and by
   signature validation on path B). *)
let host_ns () = Int64.of_float (Sys.time () *. 1e9)

(* Every load runs under a fresh causal trace, with one span per pipeline
   stage, so the exported trace tree shows exactly where a given load spent
   its time (and whether the gate was a cache hit).  Stage spans are timed
   on the host clock, like the load histograms — the simulated clock has
   not started moving yet. *)
let stage_span stage f =
  Telemetry.Registry.with_span ~clock:host_ns ("pipeline." ^ stage_name stage) f

(* ------------------------------------------------------------------ *)
(* path A stages                                                      *)
(* ------------------------------------------------------------------ *)

(* Admission: the cheap structural checks that gate entry to the pipeline,
   before any per-instruction work.  The size cap mirrors the verifier's own
   BPF_MAXINSNS check so rejected programs see the identical verdict they
   always did — they just see it without paying for fixup first.  Reads the
   builder's staged vconfig: a load riding an epoch that also changes the
   cap is admitted under the cap it will be published with. *)
let admit ~(vconfig : Verifier.config) (prog : Program.t) :
    (Program.t, error) result =
  let count = Array.length prog.Program.insns in
  let max = vconfig.Verifier.max_insns in
  if count > max then Error (Too_many_insns { count; max }) else Ok prog

(* Fixup: resolve helper-name relocations to helper ids — the "load-time
   fixup on the program to resolve helper function addresses and other
   relocations" of §3.1.  Returns the patched program. *)
let fixup (prog : Program.t) : (Program.t, error) result =
  match prog.Program.relocs with
  | [] -> Ok prog
  | relocs -> (
    let insns = Array.copy prog.Program.insns in
    let missing =
      List.find_map
        (fun (pc, name) ->
          match Helpers.Registry.find_by_name name with
          | Some def ->
            insns.(pc) <- Ebpf.Insn.Call def.Helpers.Registry.id;
            None
          | None -> Some name)
        relocs
    in
    match missing with
    | Some name -> Error (Unknown_helper name)
    | None -> Ok { prog with Program.insns; relocs = [] })

let world_map_def (w : World.t) fd =
  Option.map (fun m -> m.Bpf_map.def) (Bpf_map.Registry.find w.World.maps fd)

(* Analyze: the optional static-analysis stage between fixup and the verify
   gate.  Findings never block a load — they are advisory (the verifier is
   still the authority on safety) and the elision vector is a performance
   fact — so this stage has no error arm; it decorates the eventual handle.
   Reports are cached in the world's verdict cache under (program digest,
   analysis-config signature), the only inputs the passes read. *)
let analyze_ebpf ?(use_cache = true) ~aconfig (w : World.t) (prog : Program.t) :
    Analysis.Driver.report option =
  let config = aconfig in
  if config = Analysis.Driver.all_off then None
  else begin
    let started = host_ns () in
    let report =
      if not use_cache then Analysis.Driver.analyze ~config prog.Program.insns
      else begin
        let key =
          Verdict_cache.analysis_key ~digest:(Program.digest prog)
            ~signature:(Analysis.Driver.config_signature config)
        in
        match Verdict_cache.find_analysis w.World.vcache key with
        | Some r ->
          Telemetry.Registry.bump tele_analysis_hits;
          r
        | None ->
          Telemetry.Registry.bump tele_analysis_misses;
          let r = Analysis.Driver.analyze ~config prog.Program.insns in
          Verdict_cache.store_analysis w.World.vcache key r;
          r
      end
    in
    Telemetry.Registry.observe tele_analysis_ns (Int64.sub (host_ns ()) started);
    Some report
  end

(* One full verifier run, with the verifier's own crash class converted into
   a typed gate error (and an oops on the simulated kernel: the verifier
   dying *is* a kernel bug). *)
let verify_uncached ~config (w : World.t) (prog : Program.t) :
    (Verifier.stats, error) result =
  match Verifier.verify_with_registry ~config ~registry:w.World.maps prog with
  | Ok vstats -> Ok vstats
  | Error r -> Error (Verifier_rejected r)
  | exception Bpf_verifier.Vbug.Verifier_crash msg ->
    Kernel.record_oops w.World.kernel
      { Oops.kind = Oops.Use_after_free; addr = None;
        context = "bpf_check/" ^ msg;
        time_ns = Kernel_sim.Vclock.now w.World.kernel.Kernel.clock };
    Error (Verifier_crashed msg)

(* Gate, path A: the in-kernel verifier behind the content-addressed verdict
   cache.  The fingerprint is recomputed from live mutable state on every
   load, so config/bug-set mutation invalidates by construction; crashes are
   never cached (each crashing load must oops the kernel again). *)
let gate_verify ?(use_cache = true) ~vconfig ~aconfig (w : World.t)
    (prog : Program.t) : (Verifier.stats, error) result =
  let started = host_ns () in
  let result =
    if not use_cache then verify_uncached ~config:vconfig w prog
    else begin
      let epoch = Epoch.current_epoch w.World.epochs in
      let fingerprint =
        Verdict_cache.fingerprint
          ~analysis:(Analysis.Driver.config_signature aconfig)
          ~config:vconfig ~bugs:w.World.bugs
          ~map_def:(world_map_def w) prog
      in
      let key = Verdict_cache.key ~digest:(Program.digest prog) ~fingerprint in
      match Verdict_cache.find ~epoch w.World.vcache key with
      | Some (Ok vstats) ->
        Telemetry.Registry.bump tele_cache_hits;
        Telemetry.Registry.point ~clock:host_ns "pipeline.cache_hit";
        Ok vstats
      | Some (Error r) ->
        Telemetry.Registry.bump tele_cache_hits;
        Telemetry.Registry.point ~clock:host_ns "pipeline.cache_hit";
        Error (Verifier_rejected r)
      | None -> (
        Telemetry.Registry.bump tele_cache_misses;
        Telemetry.Registry.point ~clock:host_ns "pipeline.cache_miss";
        match verify_uncached ~config:vconfig w prog with
        | Ok vstats as ok ->
          Verdict_cache.store ~epoch w.World.vcache key (Ok vstats);
          ok
        | Error (Verifier_rejected r) as e ->
          Verdict_cache.store ~epoch w.World.vcache key (Error r);
          e
        | Error _ as e -> e)
    end
  in
  Telemetry.Registry.observe tele_gate_ns (Int64.sub (host_ns ()) started);
  result

(* Link, path A: allocate a prog id and stage the program into the epoch
   builder's table (where tail calls will resolve it once published). *)
let link_ebpf (b : Epoch.builder) (prog : Program.t) (vstats : Verifier.stats)
    (analysis : Analysis.Driver.report option) : loaded =
  let prog_id = Epoch.add_prog b prog in
  Ebpf_prog { prog_id; prog; vstats; analysis }

let ( let* ) = Result.bind

(* With [?into] the stages emit into the caller's epoch builder — the load
   rides a larger transaction and publishes when the caller publishes.
   Without it, a successful load opens a one-shot builder and publishes the
   new epoch itself; a failed load publishes nothing (no epoch churn). *)
let load_ebpf ?use_cache ?into (w : World.t) (prog : Program.t) :
    (loaded, error) result =
  Telemetry.Registry.bump tele_ebpf_loads;
  let started = host_ns () in
  let b, own_builder =
    match into with
    | Some b -> (b, false)
    | None -> (Epoch.begin_ w.World.epochs, true)
  in
  let vconfig = Epoch.vconfig b and aconfig = Epoch.aconfig b in
  let result =
    Telemetry.Registry.with_trace (Telemetry.Registry.fresh_trace ()) (fun () ->
        Telemetry.Registry.with_span ~clock:host_ns "pipeline.load" (fun () ->
            let* prog = stage_span Admission (fun () -> admit ~vconfig prog) in
            let* prog = stage_span Fixup (fun () -> fixup prog) in
            let analysis =
              stage_span Analyze (fun () -> analyze_ebpf ?use_cache ~aconfig w prog)
            in
            (* cost-budget admission rides the analyze result: a static
               bound over the epoch's max_cost budget (or an Unbounded
               verdict under the Deny policy) rejects before the gate *)
            let* () =
              match analysis with
              | Some { Analysis.Driver.cost = Some c; _ } -> (
                match
                  ( c.Analysis.Bound_pass.bound,
                    aconfig.Analysis.Driver.max_cost,
                    aconfig.Analysis.Driver.on_unbounded )
                with
                | Analysis.Bound_pass.Bounded bound, Some max, _
                  when bound > max ->
                  Telemetry.Registry.bump tele_budget_rejects;
                  Error (Cost_budget_exceeded { bound; max })
                | Analysis.Bound_pass.Unbounded, _, Analysis.Driver.Deny ->
                  Telemetry.Registry.bump tele_budget_rejects;
                  Error Unbounded_cost
                | _ -> Ok ())
              | _ -> Ok ()
            in
            let* vstats =
              stage_span Gate (fun () ->
                  gate_verify ?use_cache ~vconfig ~aconfig w prog)
            in
            Ok (stage_span Link (fun () -> link_ebpf b prog vstats analysis))))
  in
  (match result with
  | Ok _ when own_builder -> ignore (Epoch.publish b)
  | Ok _ | Error _ -> ());
  Telemetry.Registry.observe tele_load_ns (Int64.sub (host_ns ()) started);
  (match result with
  | Error _ -> Telemetry.Registry.bump tele_load_errors
  | Ok _ -> ());
  result

(* ------------------------------------------------------------------ *)
(* path B stages                                                      *)
(* ------------------------------------------------------------------ *)

(* Gate, path B: recompute the payload and check the toolchain MAC; no
   analysis of any kind happens kernel-side. *)
let gate_validate (ext : Rustlite.Toolchain.signed_extension) : (unit, error) result =
  let started = host_ns () in
  let valid = Rustlite.Toolchain.validate ext in
  Telemetry.Registry.observe tele_validate_ns (Int64.sub (host_ns ()) started);
  if valid then Ok () else Error Bad_signature

(* Link, path B: load-time fixup — register the declared maps, nothing else.
   Duplicate declared names would make the name->id table ambiguous, so they
   fail the link stage before anything registers. *)
let link_rustlite (w : World.t) (ext : Rustlite.Toolchain.signed_extension) :
    (loaded, error) result =
  let defs = ext.Rustlite.Toolchain.src.Rustlite.Toolchain.maps in
  let dup =
    List.find_opt
      (fun (d : Bpf_map.def) ->
        List.length
          (List.filter
             (fun (d' : Bpf_map.def) -> String.equal d.Bpf_map.name d'.Bpf_map.name)
             defs)
        > 1)
      defs
  in
  match dup with
  | Some d -> Error (Duplicate_map d.Bpf_map.name)
  | None ->
    let map_ids =
      List.map
        (fun def ->
          let m = World.register_map w def in
          (def.Bpf_map.name, m.Bpf_map.id))
        defs
    in
    Ok (Rustlite_ext { ext; map_ids })

let load_rustlite (w : World.t) (ext : Rustlite.Toolchain.signed_extension) :
    (loaded, error) result =
  Telemetry.Registry.bump tele_rustlite_loads;
  let result =
    Telemetry.Registry.with_trace (Telemetry.Registry.fresh_trace ()) (fun () ->
        Telemetry.Registry.with_span ~clock:host_ns "pipeline.load" (fun () ->
            let* () = stage_span Gate (fun () -> gate_validate ext) in
            stage_span Link (fun () -> link_rustlite w ext)))
  in
  (match result with
  | Error _ -> Telemetry.Registry.bump tele_load_errors
  | Ok _ -> ());
  result
