(* The two load paths of the study, side by side:

   Path A (today's architecture, paper Figure 1): bytecode arrives in the
   kernel and the in-kernel verifier symbolically executes it.  Acceptance
   is the only safety gate; helpers are trusted.

   Path B (the proposal, paper Figure 5): a signed artifact arrives; the
   kernel validates the toolchain signature and performs only load-time
   fixup (map registration); safety came from the userspace toolchain and
   will be backstopped by the runtime guards.

   Both paths produce a [loaded] handle run by the same machinery, so any
   difference in observed safety is attributable to the architecture. *)

module Kernel = Kernel_sim.Kernel
module Kobject = Kernel_sim.Kobject
module Kmem = Kernel_sim.Kmem
module Oops = Kernel_sim.Oops
module Bpf_map = Maps.Bpf_map
module Hctx = Helpers.Hctx
module Guard = Runtime.Guard
module Program = Ebpf.Program

type loaded =
  | Ebpf_prog of { prog_id : int; prog : Program.t; vstats : Bpf_verifier.Verifier.stats }
  | Rustlite_ext of { ext : Rustlite.Toolchain.signed_extension;
                      map_ids : (string * int) list }

type load_error =
  | Rejected of Bpf_verifier.Verifier.reject      (* path A: verifier said no *)
  | Verifier_crashed of string                (* path A: verifier bug fired *)
  | Bad_signature                             (* path B: validation failed *)
  | Fixup_failed of string                    (* unresolved helper relocation *)

let pp_load_error ppf = function
  | Rejected r -> Format.fprintf ppf "verifier rejected: %a" Bpf_verifier.Verifier.pp_reject r
  | Verifier_crashed msg -> Format.fprintf ppf "KERNEL BUG in verifier: %s" msg
  | Bad_signature -> Format.fprintf ppf "signature validation failed"
  | Fixup_failed name -> Format.fprintf ppf "load-time fixup failed: unknown helper %s" name

(* ---- load-time fixup (both paths need some of it; Fig. 1 / Fig. 5) ---- *)

(* Resolve helper-name relocations to helper ids — the "load-time fixup on
   the program to resolve helper function addresses and other relocations"
   of §3.1.  Returns the patched program. *)
let fixup (prog : Program.t) : (Program.t, load_error) result =
  match prog.Program.relocs with
  | [] -> Ok prog
  | relocs -> (
    let insns = Array.copy prog.Program.insns in
    let missing =
      List.find_map
        (fun (pc, name) ->
          match Helpers.Registry.find_by_name name with
          | Some def ->
            insns.(pc) <- Ebpf.Insn.Call def.Helpers.Registry.id;
            None
          | None -> Some name)
        relocs
    in
    match missing with
    | Some name -> Error (Fixup_failed name)
    | None -> Ok { prog with Program.insns; relocs = [] })

(* ---- telemetry ---- *)

let tele_ebpf_loads = Telemetry.Registry.counter "loader.ebpf_loads"
let tele_rustlite_loads = Telemetry.Registry.counter "loader.rustlite_loads"
let tele_load_errors = Telemetry.Registry.counter "loader.load_errors"
let tele_runs = Telemetry.Registry.counter "loader.runs"
let tele_load_ns = Telemetry.Registry.histogram "loader.load_ns"
let tele_validate_ns = Telemetry.Registry.histogram "loader.validate_ns"
let tele_run_ns = Telemetry.Registry.histogram "loader.run.ns"

(* Loading happens before the simulated clock moves; host CPU time is the
   meaningful measure (it is dominated by verification on path A and by
   signature validation on path B). *)
let host_ns () = Int64.of_float (Sys.time () *. 1e9)

(* ---- path A ---- *)

let load_ebpf_unmetered (w : World.t) (prog : Program.t) : (loaded, load_error) result =
  match fixup prog with
  | Error e -> Error e
  | Ok prog ->
  let config = { w.World.vconfig with Bpf_verifier.Verifier.bugs = w.World.vconfig.bugs } in
  match Bpf_verifier.Verifier.verify_with_registry ~config ~registry:w.World.maps prog with
  | Ok vstats ->
    let prog_id = w.World.next_prog_id in
    w.World.next_prog_id <- prog_id + 1;
    Hashtbl.replace w.World.progs prog_id prog;
    Ok (Ebpf_prog { prog_id; prog; vstats })
  | Error r -> Error (Rejected r)
  | exception Bpf_verifier.Vbug.Verifier_crash msg ->
    (* the verifier itself died: that is a kernel bug *)
    Kernel.record_oops w.World.kernel
      { Oops.kind = Oops.Use_after_free; addr = None;
        context = "bpf_check/" ^ msg;
        time_ns = Kernel_sim.Vclock.now w.World.kernel.Kernel.clock };
    Error (Verifier_crashed msg)

let load_ebpf w prog =
  Telemetry.Registry.bump tele_ebpf_loads;
  let started = host_ns () in
  let result = load_ebpf_unmetered w prog in
  Telemetry.Registry.observe tele_load_ns (Int64.sub (host_ns ()) started);
  (match result with
  | Error _ -> Telemetry.Registry.bump tele_load_errors
  | Ok _ -> ());
  result

(* ---- path B ---- *)

let load_rustlite (w : World.t) (ext : Rustlite.Toolchain.signed_extension) :
    (loaded, load_error) result =
  Telemetry.Registry.bump tele_rustlite_loads;
  let started = host_ns () in
  let valid = Rustlite.Toolchain.validate ext in
  Telemetry.Registry.observe tele_validate_ns (Int64.sub (host_ns ()) started);
  if not valid then begin
    Telemetry.Registry.bump tele_load_errors;
    Error Bad_signature
  end
  else begin
    (* load-time fixup: register the declared maps, nothing else *)
    let map_ids =
      List.map
        (fun def ->
          let m = World.register_map w def in
          (def.Bpf_map.name, m.Bpf_map.id))
        ext.Rustlite.Toolchain.src.Rustlite.Toolchain.maps
    in
    Ok (Rustlite_ext { ext; map_ids })
  end

(* ---- running ---- *)

type outcome =
  | Finished of int64                  (* clean return value *)
  | Crashed of Oops.report             (* the kernel is dead *)
  | Stopped of Guard.termination       (* runtime guard fired; cleaned up *)

let pp_outcome ppf = function
  | Finished v -> Format.fprintf ppf "finished ret=%Ld" v
  | Crashed r -> Format.fprintf ppf "CRASHED: %a" Oops.pp_report r
  | Stopped t -> Format.fprintf ppf "%a" Guard.pp_termination t

type run_report = {
  outcome : outcome;
  health : Kernel.health;
  trace : string list;
  resources_outstanding : int;  (* leaked-by-exit acquired resources *)
}

(* Build and fill the context struct for an eBPF program type. *)
let make_ctx_region (w : World.t) (prog : Program.t) (skb : Kobject.sk_buff option) =
  let desc = Program.ctx_of_prog_type prog.Program.prog_type in
  let region =
    Kmem.alloc w.World.kernel.Kernel.mem ~size:desc.Program.ctx_size ~kind:"ctx"
      ~name:"prog_ctx" ()
  in
  (match (prog.Program.prog_type, skb) with
  | (Program.Socket_filter | Program.Xdp), Some skb ->
    Kmem.store w.World.kernel.Kernel.mem ~size:4 ~addr:region.Kmem.base
      ~value:(Int64.of_int skb.Kobject.len) ~context:"ctx setup";
    Kmem.store w.World.kernel.Kernel.mem ~size:4
      ~addr:(Kmem.region_addr region 4) ~value:0x0800L ~context:"ctx setup"
  | _ -> ());
  region

let max_tail_calls = 33

let run ?skb_payload ?fuel ?wall_ns ?(ns_per_insn = 1L) ?use_jit
    ?(jit_branch_bug = false) (w : World.t) (loaded : loaded) : run_report =
  let hctx = World.new_hctx w in
  let skb =
    Option.map (fun payload -> Kobject.make_skb w.World.kernel.Kernel.mem ~payload)
      skb_payload
  in
  hctx.Hctx.skb <- skb;
  Kernel.snapshot_refs w.World.kernel;
  Telemetry.Registry.bump tele_runs;
  let outcome =
    Telemetry.Registry.with_span "loader.run" ~hist:tele_run_ns
      ~clock:(fun () -> Kernel_sim.Vclock.now w.World.kernel.Kernel.clock)
      (fun () ->
    match loaded with
    | Ebpf_prog { prog; _ } -> (
      let ctx = make_ctx_region w prog skb in
      let use_jit = Option.value ~default:false use_jit in
      let convert = function
        | Runtime.Interp.Ret v -> Finished v
        | Runtime.Interp.Oopsed r -> Crashed r
        | Runtime.Interp.Terminated t -> Stopped t
      in
      (* fire armed timers once the invocation completes (the simulated
         softirq): advance the clock to each deadline and run the callback
         at its pc with (0, cb_ctx) — the shape the verifier checked *)
      let fire_timers prog =
        let timers = List.sort compare hctx.Hctx.timers in
        hctx.Hctx.timers <- [];
        List.iter
          (fun (deadline, cb_pc, cb_ctx) ->
            let now = Kernel_sim.Vclock.now w.World.kernel.Kernel.clock in
            if Int64.compare deadline now > 0 then
              Kernel_sim.Vclock.advance w.World.kernel.Kernel.clock
                (Int64.sub deadline now);
            let t = Runtime.Interp.create ~fuel:1_000_000L hctx in
            match
              Runtime.Interp.exec_insns t prog.Program.insns ~entry:cb_pc ~depth:1
                ~args:[| 0L; cb_ctx; 0L; 0L; 0L |]
            with
            | (_ : int64) -> ()
            | exception Runtime.Guard.Terminate reason ->
              ignore (Runtime.Guard.terminate hctx reason))
          timers
      in
      let rec go prog remaining_tail_calls =
        match
          if use_jit then
            let compiled =
              Runtime.Jit.compile ~bug_branch_off_by_one:jit_branch_bug hctx prog
            in
            Runtime.Jit.run ?fuel ~ns_per_insn hctx compiled ~ctx_addr:ctx.Kmem.base
          else
            Runtime.Interp.run ?fuel ?wall_ns ~ns_per_insn ~hctx ~prog
              ~ctx_addr:ctx.Kmem.base ()
        with
        | r ->
          (* softirq: deliver any timers the program armed *)
          (match r with
          | Runtime.Interp.Ret _ when hctx.Hctx.timers <> [] -> (
            match Kernel.protect w.World.kernel (fun () -> fire_timers prog) with
            | Ok () -> ()
            | Error _ -> ())
          | _ -> ());
          convert r
        | exception Hctx.Tail_call prog_id -> (
          (* the old program's invocation ends here; leave its RCU section
             before entering the next program in the chain *)
          Kernel_sim.Rcu.read_unlock w.World.kernel.Kernel.rcu ~context:"tail_call";
          if remaining_tail_calls = 0 then Finished 0L
          else
            match Hashtbl.find_opt w.World.progs prog_id with
            | None -> Finished (-22L)
            | Some next -> go next (remaining_tail_calls - 1))
      in
      go prog max_tail_calls)
    | Rustlite_ext { ext; map_ids } -> (
      let kctx = { Rustlite.Kcrate.hctx; map_ids } in
      match
        Rustlite.Eval.run ?fuel ?wall_ns ~kctx
          ext.Rustlite.Toolchain.src.Rustlite.Toolchain.body
      with
      | Rustlite.Eval.Ret v ->
        Finished (match v with Rustlite.Value.V_int x -> x | _ -> 0L)
      | Rustlite.Eval.Oopsed r -> Crashed r
      | Rustlite.Eval.Terminated t -> Stopped t))
  in
  {
    outcome;
    health = Kernel.health w.World.kernel;
    trace = Hctx.trace_output hctx;
    resources_outstanding = Helpers.Resources.outstanding hctx.Hctx.resources;
  }
