(* Historical flat API over the staged pipeline.

   The load/run machinery lives in Pipeline (admission -> fixup -> gate ->
   link, with the verdict cache in front of the verify gate) and Invoke
   (one-shot and pooled invocation); this module keeps the original
   surface — [load_ebpf], [load_rustlite], [run] with flat optional
   arguments, and the flat [load_error] — so every existing experiment and
   test reads exactly as before. *)

module Program = Ebpf.Program

type loaded = Pipeline.loaded =
  | Ebpf_prog of { prog_id : int; prog : Program.t; vstats : Bpf_verifier.Verifier.stats;
                   analysis : Analysis.Driver.report option }
  | Rustlite_ext of { ext : Rustlite.Toolchain.signed_extension;
                      map_ids : (string * int) list }

type load_error =
  | Rejected of Bpf_verifier.Verifier.reject      (* path A: verifier said no *)
  | Verifier_crashed of string                (* path A: verifier bug fired *)
  | Bad_signature                             (* path B: validation failed *)
  | Fixup_failed of string                    (* unresolved helper relocation *)

let pp_load_error ppf = function
  | Rejected r -> Format.fprintf ppf "verifier rejected: %a" Bpf_verifier.Verifier.pp_reject r
  | Verifier_crashed msg -> Format.fprintf ppf "KERNEL BUG in verifier: %s" msg
  | Bad_signature -> Format.fprintf ppf "signature validation failed"
  | Fixup_failed name -> Format.fprintf ppf "load-time fixup failed: unknown helper %s" name

(* Flatten the pipeline's staged error into the historical shape.  An
   admission-stage size rejection folds into the verdict the verifier's own
   cap produced before the stage split, text included. *)
let of_pipeline_error : Pipeline.error -> load_error = function
  | Pipeline.Too_many_insns { count; max } ->
    Rejected
      { Bpf_verifier.Verifier.at_pc = 0;
        reason = Printf.sprintf "too many instructions (%d > %d)" count max }
  | Pipeline.Cost_budget_exceeded { bound; max } ->
    Rejected
      { Bpf_verifier.Verifier.at_pc = 0;
        reason =
          Printf.sprintf "worst-case cost %d exceeds budget %d" bound max }
  | Pipeline.Unbounded_cost ->
    Rejected
      { Bpf_verifier.Verifier.at_pc = 0;
        reason = "no static instruction bound (unbounded policy: deny)" }
  | Pipeline.Unknown_helper name -> Fixup_failed name
  | Pipeline.Verifier_rejected r -> Rejected r
  | Pipeline.Verifier_crashed msg -> Verifier_crashed msg
  | Pipeline.Bad_signature -> Bad_signature
  | Pipeline.Duplicate_map name ->
    Fixup_failed (Printf.sprintf "duplicate map name %s" name)

let fixup prog = Result.map_error of_pipeline_error (Pipeline.fixup prog)

let load_ebpf w prog = Result.map_error of_pipeline_error (Pipeline.load_ebpf w prog)

let load_rustlite w ext = Result.map_error of_pipeline_error (Pipeline.load_rustlite w ext)

(* ---- running ---- *)

type resource = Invoke.resource = Fuel | Wall_clock | Stack

type outcome = Invoke.outcome =
  | Finished of int64                  (* clean return value *)
  | Stopped of Runtime.Guard.termination (* clean self-stop (language panic) *)
  | Crashed of Kernel_sim.Oops.report  (* the kernel is dead *)
  | Exhausted of resource * Runtime.Guard.termination
      (* a runtime budget ran out; destructors ran, kernel intact *)

let pp_outcome = Invoke.pp_outcome

type run_report = Invoke.run_report = {
  outcome : outcome;
  health : Kernel_sim.Kernel.health;
  trace : string list;
  resources_outstanding : int;
  insns_retired : int64;
}

let max_tail_calls = Invoke.max_tail_calls
