(** The serving engine: a consolidated, typed {!plan} describing one
    served event stream, executed sequentially or sharded across N OCaml
    domains over shared epoch snapshots.

    {2 Model}

    A {!plan} replaces the optional-argument pile that used to live on
    [Dispatch.run_stream]: hook, event count, generator, chaos schedule,
    hot-reload schedule, and the sharding shape (domain count, queue
    bound, overflow policy, partition function) are one value with smart
    constructors.  {!run} executes it:

    - [domains = 1]: on the calling domain, against the engine's own
      world and supervisor — the exact historical [run_stream] semantics
      (supervision state accumulates across runs on one engine).
    - [domains > 1]: the coordinator walks the stream in original order,
      partitions events to shards by flow hash over the payload (or round
      robin), and each shard domain serves its events against a private
      machine — a shard {!World.shard_of} (own kernel, shard-local map
      storage, own bug database), private invocation context, private
      {!Supervisor}, private {!Telemetry.Registry} — while sharing the
      base world's epoch chain.  Mid-stream reloads cut the stream into
      segments: reload groups apply lazily in boundary order under one
      lock, each segment's snapshot is retained until stream end, and
      every invocation pins its segment's snapshot ({!Invoke.run}
      [?snap]), so a superseded epoch's grace period cannot close while
      any shard still serves under it.

    {2 Determinism}

    Per-event work depends only on the original event index: the
    generator is consumed in order by the coordinator and chaos is a pure
    function of [(seed, index)].  Each event's outcome fold and
    invocation count land at its original index, and the sequential
    checksum is reconstructed exactly as
    [g_i = g_(i-1) * 31^(k_i) + e_i] — so N-shard, 1-shard ({!sharded})
    and sequential runs agree, for extensions whose per-event outcome
    does not read state mutated by other events (map contents are
    shard-local, per-CPU style).  Under [Supervise] breaker state evolves
    in shard-local order (scorecards are honest per shard, not
    shard-count invariant); the determinism oracle runs under {!Isolate}.
    [Fail_fast] sharded is a best-effort broadcast abort.  [Drop_newest]
    overflow is lossy by design; drops are counted, and a dropped event
    leaves the reconstructed checksum unchanged. *)

(** {2 Engine} *)

type policy =
  | Fail_fast
      (** the first kernel crash aborts the stream and the kernel stays
          dead; sharded: best-effort broadcast abort *)
  | Isolate
      (** contain each crash to the invocation that caused it: revive the
          kernel, charge the fault to the offending extension, keep
          serving (the default) *)
  | Supervise of Supervisor.config
      (** isolate + per-extension circuit breakers + quarantine (sharded:
          per-shard breakers, benched shard-locally, merged by digest) *)

type engine = {
  world : World.t;
  attach : Attach.t;
  ictx : Invoke.t;
  opts : Invoke.run_opts;
  policy : policy;
  sup : Supervisor.t;
}

val create : ?opts:Invoke.run_opts -> ?policy:policy -> World.t -> engine
(** [opts] applies to every invocation (its [skb_payload] is overridden
    per event).  [policy] defaults to {!Isolate}.

    Statically bounded programs (the bound pass) serve with fuel-check
    batching by default ([opts.use_bound_batching]); a serving loop that
    wants a per-extension watchdog derived from each program's static
    bound sets [opts.bound_watchdog] — the deadline hint is per handle
    (each extension's own analysis rides its loaded handle into
    {!Invoke.run}), advisory, and off by default so outcomes stay
    bit-identical to per-instruction checking. *)

type reload = engine -> Epoch.builder -> unit
(** A scheduled hot reload: stage epoch changes on the builder (loads via
    [Pipeline.load_ebpf ~into], unloads, tail-call rewires, config
    changes) and/or rewire the engine's attachments.  The engine
    publishes the builder when the plan returns and measures the swap as
    [epoch.swap_ns]. *)

(** {2 The plan} *)

val synthetic_packets : ?seed:int64 -> size:int -> unit -> int -> Bytes.t
(** Deterministic packet generator: [synthetic_packets ~size () i] is the
    [i]th packet (byte 0 carries [i land 0xff]).  Stateful — consume in
    order, once. *)

type partition =
  | Flow_hash    (** FNV-1a over the payload, the stand-in for a flow key *)
  | Round_robin  (** [index mod domains] *)

type plan = {
  hook : string;
  count : int;
  gen : int -> Bytes.t;  (** stateful: called once per index, in order *)
  domains : int;
  chaos : Chaos.config option;
  reloads : (int * reload) list;
      (** each [(i, plan)] runs at the boundary before event [i]; plans
          sharing an index apply in list order, one epoch swap each *)
  record_checksums : bool;
  queue_capacity : int;
  overflow : Shard.overflow;
  partition : partition;
}

val plan :
  ?seed:int64 ->
  ?size:int ->
  ?gen:(int -> Bytes.t) ->
  ?domains:int ->
  ?chaos:Chaos.config ->
  ?reloads:(int * reload) list ->
  ?record_checksums:bool ->
  ?queue_capacity:int ->
  ?overflow:Shard.overflow ->
  ?partition:partition ->
  hook:string -> count:int -> unit -> plan
(** Smart constructor.  Defaults: a fresh {!synthetic_packets} generator
    (default seed, [size] 64 — pass [?seed]/[?size] to shape it, or
    [?gen] to replace it; [?seed] with [?gen] raises), [domains] 1, no
    chaos, no reloads, no checksum recording, [queue_capacity] 256,
    {!Shard.Block} overflow, {!Flow_hash} partition.  Raises
    [Invalid_argument] on [count < 0], [domains < 1] or
    [queue_capacity < 1]. *)

val default : hook:string -> count:int -> plan
(** [plan ~hook ~count ()].  A function, not a value: the default
    generator is stateful, so every default plan needs a fresh one. *)

(** {2 Stats} *)

type totals = {
  events : int;
  invocations : int;
  finished : int;
  stopped : int;
  crashed : int;
  exhausted : int;
  skipped : int;      (** invocations suppressed by an open breaker *)
  faults_absorbed : int;
      (** crashes + exhaustions contained (always 0 under [Fail_fast]) *)
  quarantined : int;
      (** extensions detached (sequential) or shard-benched (sharded) *)
  injected : int;     (** chaos injections that landed on an event *)
  dropped : int;      (** events lost to [Drop_newest] queue overflow *)
  reloads : int;      (** reload plans applied (epoch swaps published) *)
  ret_checksum : int64;
      (** order-sensitive fold of all outcomes, in original event order
          (sharded: reconstructed exactly from per-event folds) *)
  host_ns : int64;    (** wall time for the whole stream *)
  events_per_sec : float;
  per_epoch : (int * int) list;
      (** events served under each epoch, ascending epoch order *)
}

type shard_stats = {
  shard : int;
  s_events : int;
  s_invocations : int;
  s_finished : int;
  s_stopped : int;
  s_crashed : int;
  s_exhausted : int;
  s_skipped : int;
  s_faults_absorbed : int;
  s_quarantined : int;
  s_injected : int;
  s_dropped : int;            (** events this shard's queue rejected *)
  s_queue_peak : int;         (** max queue occupancy observed *)
  s_backpressure_waits : int; (** producer waits on this shard's queue *)
  s_host_ns : int64;          (** wall time of this shard's worker *)
  s_per_ext : Supervisor.health list;
      (** this shard's private scorecard, attach order *)
}

type stats = {
  domains : int;
  totals : totals;
  per_ext : Supervisor.health list;
      (** per-extension health: the engine supervisor's scorecard
          (sequential) or the digest-keyed merge of the per-shard
          scorecards ({!Supervisor.merge_healths}) *)
  per_shard : shard_stats list;
      (** ascending shard index; empty on the sequential path *)
  event_checksums : int64 array;
      (** per-event outcome folds at original indices; empty unless
          [record_checksums] *)
}

val all_healthy : stats -> bool
(** No faults, skips, quarantines or drops: every event fully finished. *)

val pp_totals : Format.formatter -> totals -> unit
val pp_shard : Format.formatter -> shard_stats -> unit

val pp_stats : Format.formatter -> stats -> unit
(** Totals line, then one line per shard (sharded runs). *)

val checksum_add : int64 -> Invoke.outcome -> int64
(** The outcome fold: [Finished v -> acc*31+v], [Stopped -> acc*31-1],
    [Crashed -> acc*31-2], [Exhausted -> acc*31-3]. *)

(** {2 Execution} *)

val run : engine -> plan -> stats
(** Execute the plan: sequentially when [plan.domains = 1], sharded
    otherwise.  Updates the [dispatch.*] telemetry counters (sharded:
    recorded per shard, folded into the calling domain's registry at the
    barrier via {!Telemetry.Registry.merge}) and exports the stream's
    throughput as [dispatch.events_per_sec]. *)

val sharded : engine -> plan -> stats
(** Force the sharded machinery even for [domains = 1] — the oracle's
    "1-shard" leg: coordinator, queue, shard world and checksum
    reconstruction all engaged, with a single worker domain. *)
