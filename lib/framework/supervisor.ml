(* Per-extension health supervision for the serving path.

   The paper's §3 position is that what the verifier cannot promise
   statically must be enforced at runtime; this module is the piece that
   makes that enforcement *per extension* instead of per stream.  Each
   attached extension gets a circuit breaker:

     Closed --(fault_threshold faults within a window of [window]
               observations)--> Open
     Open --(cooldown elapsed on the virtual clock)--> Half_open
     Half_open --(probe finishes)--> Closed
     Half_open --(probe faults)--> Open again, cooldown doubled
     (quarantine_after trips) --> Quarantined (detached by dispatch)

   Cooldowns are measured in Vclock ns so the whole machine is
   deterministic, and the state machine is driven through [decide] /
   [observe_*] so the tests can exercise every transition without a
   dispatch engine in the loop.

   A "fault" is a contained kernel crash or a budget exhaustion
   (fuel / wall-clock / stack).  A language panic is a clean self-stop —
   the extension asked to stop, the guard cleaned up — so it does not
   count against the breaker. *)

type config = {
  window : int;            (* sliding window length, in observations *)
  fault_threshold : int;   (* faults within [window] that open the breaker *)
  cooldown_ns : int64;     (* base open -> half-open cooldown (Vclock ns) *)
  backoff : float;         (* cooldown multiplier per re-trip *)
  max_cooldown_ns : int64; (* backoff cap *)
  quarantine_after : int;  (* breaker trips before quarantine *)
}

let default_config =
  {
    window = 16;
    fault_threshold = 3;
    cooldown_ns = 1_000_000L (* 1 simulated ms *);
    backoff = 2.0;
    max_cooldown_ns = 1_000_000_000L;
    quarantine_after = 3;
  }

type state = Closed | Open of { until_ns : int64 } | Half_open | Quarantined

let state_to_string = function
  | Closed -> "closed"
  | Open { until_ns } -> Printf.sprintf "open(until=%Ldns)" until_ns
  | Half_open -> "half-open"
  | Quarantined -> "quarantined"

type ext = {
  (* last-seen attach id: a re-attach of the same image after an epoch
     swap rebinds the record to the new id while keeping all history *)
  mutable attach_id : int;
  name : string;
  (* content digest the record is keyed by; "" when attach-id keyed *)
  digest : string;
  mutable state : state;
  mutable trips : int;           (* times the breaker opened, cumulative *)
  mutable seq : int;             (* observations (executions + skips) *)
  mutable fault_seqs : int list; (* seqs of recent faults, newest first *)
  (* per-extension serving tallies, filled in by dispatch *)
  mutable invocations : int;
  mutable finished : int;
  mutable stopped : int;
  mutable crashed : int;
  mutable exhausted : int;
  mutable skipped : int;
  mutable ret_checksum : int64;
  mutable quarantined_at_ns : int64 option;
  (* per-extension invocation latency (Vclock ns), observed by dispatch;
     interned in the registry as "ext.<name>.ns" so it shows up in
     snapshots and feeds the health scorecard's p50/p99 *)
  lat : Telemetry.Histogram.t;
}

type t = {
  config : config;
  (* keyed by extension content digest when the caller has one (dispatch
     always does), so breaker/quarantine history survives detach/re-attach
     across epochs; attach-id keyed otherwise (unit-test convenience) *)
  exts : (string, ext) Hashtbl.t;
}

let create ?(config = default_config) () =
  { config; exts = Hashtbl.create 8 }

let key ?digest ~attach_id () =
  match digest with
  | Some d -> "digest:" ^ d
  | None -> "attach:" ^ string_of_int attach_id

let ext ?digest t ~attach_id ~name =
  let k = key ?digest ~attach_id () in
  match Hashtbl.find_opt t.exts k with
  | Some e ->
    e.attach_id <- attach_id;
    e
  | None ->
    let e =
      { attach_id; name; digest = Option.value digest ~default:"";
        state = Closed; trips = 0; seq = 0; fault_seqs = [];
        invocations = 0; finished = 0; stopped = 0; crashed = 0; exhausted = 0;
        skipped = 0; ret_checksum = 0L; quarantined_at_ns = None;
        lat = Telemetry.Registry.histogram ("ext." ^ name ^ ".ns") }
    in
    Hashtbl.add t.exts k e;
    e

let exts t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.exts []
  |> List.sort (fun a b -> compare a.attach_id b.attach_id)

(* ---- telemetry ---- *)

let tele_faults = Telemetry.Registry.counter "supervisor.faults_absorbed"
let tele_trips = Telemetry.Registry.counter "supervisor.breaker_trips"
let tele_quarantined = Telemetry.Registry.counter "supervisor.quarantined"
let tele_probes = Telemetry.Registry.counter "supervisor.probes"

(* ---- the state machine ---- *)

type decision =
  | Execute                  (* breaker closed: run normally *)
  | Probe                    (* half-open: run once to test recovery *)
  | Skip                     (* open or quarantined: do not run *)

let decide _t e ~now_ns =
  match e.state with
  | Closed -> Execute
  | Quarantined -> Skip
  | Half_open -> Probe
  | Open { until_ns } ->
    if Int64.compare now_ns until_ns >= 0 then begin
      e.state <- Half_open;
      Telemetry.Registry.bump tele_probes;
      Probe
    end
    else Skip

(* Cooldown for the [n]th trip (1-based): cooldown * backoff^(n-1), capped. *)
let cooldown_for config ~trip =
  let scaled =
    Int64.to_float config.cooldown_ns
    *. (config.backoff ** float_of_int (max 0 (trip - 1)))
  in
  let capped = min scaled (Int64.to_float config.max_cooldown_ns) in
  Int64.of_float capped

type transition =
  | No_change
  | Tripped of { until_ns : int64; trip : int }
  | Quarantine

let prune_window config e =
  e.fault_seqs <- List.filter (fun s -> s > e.seq - config.window) e.fault_seqs

let trip t e ~now_ns =
  e.trips <- e.trips + 1;
  e.fault_seqs <- [];
  Telemetry.Registry.bump tele_trips;
  if e.trips >= t.config.quarantine_after then begin
    e.state <- Quarantined;
    e.quarantined_at_ns <- Some now_ns;
    Telemetry.Registry.bump tele_quarantined;
    Telemetry.Registry.point ("supervisor.quarantined." ^ e.name)
      ~value:(Int64.of_int e.attach_id);
    Quarantine
  end
  else begin
    let until_ns = Int64.add now_ns (cooldown_for t.config ~trip:e.trips) in
    e.state <- Open { until_ns };
    Telemetry.Registry.point ("supervisor.breaker_open." ^ e.name)
      ~value:until_ns;
    Tripped { until_ns; trip = e.trips }
  end

(* A fault was observed (and contained) for [e].  Returns the breaker
   transition so the caller can detach on [Quarantine]. *)
let observe_fault t e ~now_ns =
  e.seq <- e.seq + 1;
  Telemetry.Registry.bump tele_faults;
  match e.state with
  | Quarantined -> No_change
  | Half_open ->
    (* the recovery probe failed: re-trip immediately, backoff doubled *)
    trip t e ~now_ns
  | Open _ ->
    (* not normally reachable (open extensions are skipped) *)
    No_change
  | Closed ->
    e.fault_seqs <- e.seq :: e.fault_seqs;
    prune_window t.config e;
    if List.length e.fault_seqs >= t.config.fault_threshold then
      trip t e ~now_ns
    else No_change

(* A clean execution: a successful half-open probe closes the breaker. *)
let observe_ok _t e ~now_ns:_ =
  e.seq <- e.seq + 1;
  match e.state with
  | Half_open ->
    e.state <- Closed;
    e.fault_seqs <- []
  | Closed | Open _ | Quarantined -> ()

let observe_skip e =
  e.seq <- e.seq + 1;
  e.skipped <- e.skipped + 1

(* ---- reporting ---- *)

type health = {
  attach_id : int;
  name : string;
  digest : string;  (* "" when the record was attach-id keyed *)
  state : state;
  trips : int;
  invocations : int;
  finished : int;
  stopped : int;
  crashed : int;
  exhausted : int;
  skipped : int;
  ret_checksum : int64;
  quarantined : bool;
  p50_ns : int64;        (* median invocation latency (Vclock ns) *)
  p99_ns : int64;        (* tail invocation latency (Vclock ns) *)
  crash_rate : float;    (* crashed / invocations *)
  exhaust_rate : float;  (* exhausted / invocations *)
}

let health_of_ext (e : ext) =
  let rate n = if e.invocations = 0 then 0.0 else float_of_int n /. float_of_int e.invocations in
  {
    attach_id = e.attach_id;
    name = e.name;
    digest = e.digest;
    state = e.state;
    trips = e.trips;
    invocations = e.invocations;
    finished = e.finished;
    stopped = e.stopped;
    crashed = e.crashed;
    exhausted = e.exhausted;
    skipped = e.skipped;
    ret_checksum = e.ret_checksum;
    quarantined = (e.state = Quarantined);
    p50_ns = Telemetry.Histogram.quantile e.lat 0.50;
    p99_ns = Telemetry.Histogram.quantile e.lat 0.99;
    crash_rate = rate e.crashed;
    exhaust_rate = rate e.exhausted;
  }

let healths t = List.map health_of_ext (exts t)

(* ---- merging (sharded serving) ----

   Each shard runs its own supervisor over the same attached extensions;
   at the barrier the per-shard scorecards fold into one, keyed by content
   digest — the same identity that makes breaker history survive
   re-attach.  Records without a digest (attach-id keyed, unit tests)
   merge by name + attach id instead.

   Tallies sum exactly.  [ret_checksum] is combined by Int64 addition —
   order-insensitive, so the merged value is shard-count independent, but
   it is NOT the sequential stream checksum (Serve reconstructs that one
   exactly from per-event records).  Latency quantiles merge as max — the
   conservative bound available once shards have reduced their histograms
   to two points.  State merges to the worst across shards
   (Quarantined > Open > Half_open > Closed), trips sum, and the rates are
   recomputed from the merged tallies. *)

let state_severity = function
  | Closed -> 0
  | Half_open -> 1
  | Open _ -> 2
  | Quarantined -> 3

let worst_state a b = if state_severity b > state_severity a then b else a

let merge_two (a : health) (b : health) =
  let invocations = a.invocations + b.invocations in
  let crashed = a.crashed + b.crashed in
  let exhausted = a.exhausted + b.exhausted in
  let rate n =
    if invocations = 0 then 0.0 else float_of_int n /. float_of_int invocations
  in
  let state = worst_state a.state b.state in
  {
    attach_id = max a.attach_id b.attach_id;
    name = a.name;
    digest = a.digest;
    state;
    trips = a.trips + b.trips;
    invocations;
    finished = a.finished + b.finished;
    stopped = a.stopped + b.stopped;
    crashed;
    exhausted;
    skipped = a.skipped + b.skipped;
    ret_checksum = Int64.add a.ret_checksum b.ret_checksum;
    quarantined = (state = Quarantined);
    p50_ns = (if Int64.compare a.p50_ns b.p50_ns > 0 then a.p50_ns else b.p50_ns);
    p99_ns = (if Int64.compare a.p99_ns b.p99_ns > 0 then a.p99_ns else b.p99_ns);
    crash_rate = rate crashed;
    exhaust_rate = rate exhausted;
  }

let merge_key (h : health) =
  if h.digest <> "" then "digest:" ^ h.digest
  else "attach:" ^ string_of_int h.attach_id ^ ":" ^ h.name

let merge_healths (per_shard : health list list) =
  let merged : (string, health) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (List.iter (fun h ->
         let k = merge_key h in
         match Hashtbl.find_opt merged k with
         | Some prev -> Hashtbl.replace merged k (merge_two prev h)
         | None ->
           order := k :: !order;
           Hashtbl.replace merged k h))
    per_shard;
  List.rev_map (fun k -> Hashtbl.find merged k) !order
  |> List.sort (fun a b ->
         match compare a.attach_id b.attach_id with
         | 0 -> String.compare a.name b.name
         | c -> c)

let pp_health ppf h =
  Format.fprintf ppf
    "#%d %-16s %-10s inv=%d ok=%d stop=%d crash=%d exhaust=%d skip=%d \
     trips=%d p50=%Ldns p99=%Ldns checksum=%016Lx"
    h.attach_id h.name (state_to_string h.state) h.invocations h.finished
    h.stopped h.crashed h.exhausted h.skipped h.trips h.p50_ns h.p99_ns
    h.ret_checksum
