(* The content-addressed verdict cache that sits in front of the verify gate.

   The in-kernel verifier's DFS is the expensive step of the paper's Figure 1
   load path — exponential in the worst case (§2.1) — yet a kernel servicing
   heavy extension traffic sees the *same* program images over and over
   (fleet rollouts load one image on every node; per-CPU attach loads one
   image per core).  Verification is a pure function of

     (program content, verifier configuration, referenced map shapes,
      kernel version, injected bug set)

   so its verdict can be memoized under a key that covers every input.  A
   repeat load of an identical program then skips the DFS entirely and
   replays the recorded verdict — including the stats, so a cache hit is
   observationally identical to a fresh verification.

   Correctness hinges on the key covering *all* the inputs.  World.vconfig
   is a mutable field and Vbug.t is a record of mutable toggles, so the
   fingerprint is recomputed from live values on every lookup: mutate the
   config (or force a helper bug on) and the next load misses rather than
   replaying a stale accept.  Verifier *crashes* (an injected verifier bug
   killing the verifier itself) are deliberately not cached: each crashing
   load oopses the kernel as a side effect and must keep doing so. *)

module Bugdb = Helpers.Bugdb
module Bpf_map = Maps.Bpf_map
module Kver = Kerndata.Kver
module Verifier = Bpf_verifier.Verifier
module Vbug = Bpf_verifier.Vbug
module Program = Ebpf.Program

type verdict = (Verifier.stats, Verifier.reject) result

type t = {
  (* verdict plus the epoch it was stored under: a hit from an earlier
     epoch is a *cross-epoch reuse* — the payoff of content-addressed
     caching under hot reload (same image, new epoch, no re-verify) *)
  tbl : (string, verdict * int) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable cross_epoch : int;
  (* static-analysis reports, cached alongside verdicts: same content
     addressing, separate table and tallies so analysis caching cannot
     perturb verdict hit-rate measurements *)
  atbl : (string, Analysis.Driver.report) Hashtbl.t;
  mutable ahits : int;
  mutable amisses : int;
  (* digest -> fingerprint of the last lookup, to distinguish a cold miss
     (never saw this program) from an invalidation (same program, changed
     config/bug-set/map shapes) *)
  last_fp : (string, string) Hashtbl.t;
  mutable invalidations : int;
}

let create () =
  { tbl = Hashtbl.create 16; hits = 0; misses = 0; cross_epoch = 0;
    atbl = Hashtbl.create 16; ahits = 0; amisses = 0;
    last_fp = Hashtbl.create 16; invalidations = 0 }

let tele_hit = Telemetry.Registry.counter "cache.hit"
let tele_miss = Telemetry.Registry.counter "cache.miss"
let tele_invalidated = Telemetry.Registry.counter "cache.invalidated"
let tele_cross_epoch = Telemetry.Registry.counter "cache.cross_epoch_reuse"

let serialize_map_def (d : Bpf_map.def) =
  Printf.sprintf "(map %s %s %d %d %d %s)" d.Bpf_map.name
    (Bpf_map.kind_to_string d.Bpf_map.kind)
    d.Bpf_map.key_size d.Bpf_map.value_size d.Bpf_map.max_entries
    (match d.Bpf_map.lock_off with None -> "-" | Some o -> string_of_int o)

(* Canonical fingerprint of everything besides program content that can
   change a verdict.  Built from live values, hashed to a fixed-size key
   component. *)
let fingerprint ?(analysis = "") ~(config : Verifier.config) ~(bugs : Bugdb.t)
    ~(map_def : int -> Bpf_map.def option) (prog : Program.t) : string =
  let b = Buffer.create 256 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  add "kver %s" (Kver.to_string config.Verifier.version);
  (* the static-analysis configuration rides along: toggling a pass (or a
     helper safety flag) must not replay load results computed without it *)
  if analysis <> "" then add "analysis %s" (Hash.Sha256.hex_digest analysis);
  add "max_insns %d" config.Verifier.max_insns;
  add "insn_budget %d" config.Verifier.insn_budget;
  add "max_states %d" config.Verifier.max_states_per_point;
  add "allow_loops %b" config.Verifier.allow_loops;
  add "track_ringbuf_refs %b" config.Verifier.track_ringbuf_refs;
  add "prune %b" config.Verifier.prune;
  add "allow_ptr_leaks %b" config.Verifier.allow_ptr_leaks;
  add "reject_speculative_oob %b" config.Verifier.reject_speculative_oob;
  add "verbose %b" config.Verifier.verbose;
  (* the injected verifier-bug set: live mutable toggles *)
  add "vbugs %s" (String.concat "," (Vbug.keys config.Verifier.bugs));
  (* the helper-bug injection set: the kernel the verdict was issued for *)
  add "bugdb %s %s"
    (Kver.to_string bugs.Bugdb.version)
    (String.concat ","
       (List.sort String.compare
          (List.map (fun (bug : Bugdb.bug) -> bug.Bugdb.key) (Bugdb.active_bugs bugs))));
  (* the shapes of every map the program references: a map recreated with a
     different value_size must not replay the old bounds verdict *)
  List.iter
    (fun fd ->
      match map_def fd with
      | Some d -> add "fd %d %s" fd (serialize_map_def d)
      | None -> add "fd %d missing" fd)
    (Program.referenced_maps prog);
  Hash.Sha256.hex_digest (Buffer.contents b)

let key ~digest ~fingerprint = digest ^ ":" ^ fingerprint

let split_key k =
  match String.index_opt k ':' with
  | Some i -> (String.sub k 0 i, String.sub k (i + 1) (String.length k - i - 1))
  | None -> (k, "")

let find ?(epoch = 0) t k =
  let digest, fp = split_key k in
  let r =
    match Hashtbl.find_opt t.tbl k with
    | Some (v, stored_epoch) ->
      t.hits <- t.hits + 1;
      Telemetry.Registry.bump tele_hit;
      if stored_epoch < epoch then begin
        t.cross_epoch <- t.cross_epoch + 1;
        Telemetry.Registry.bump tele_cross_epoch
      end;
      Some v
    | None ->
      t.misses <- t.misses + 1;
      Telemetry.Registry.bump tele_miss;
      (* a miss for a digest whose previous lookup used a different
         fingerprint means some fingerprinted input changed under us *)
      (match Hashtbl.find_opt t.last_fp digest with
      | Some prev when prev <> fp ->
        t.invalidations <- t.invalidations + 1;
        Telemetry.Registry.bump tele_invalidated
      | _ -> ());
      None
  in
  Hashtbl.replace t.last_fp digest fp;
  r

let store ?(epoch = 0) t k v = Hashtbl.replace t.tbl k (v, epoch)

(* Analysis reports are keyed by (program digest, analysis-config
   signature): the passes read nothing else, so nothing else can
   invalidate them. *)
let analysis_key ~digest ~signature =
  digest ^ ":" ^ Hash.Sha256.hex_digest signature

let find_analysis t k =
  match Hashtbl.find_opt t.atbl k with
  | Some r ->
    t.ahits <- t.ahits + 1;
    Some r
  | None ->
    t.amisses <- t.amisses + 1;
    None

let store_analysis t k r = Hashtbl.replace t.atbl k r

let clear t = Hashtbl.reset t.tbl; Hashtbl.reset t.atbl; Hashtbl.reset t.last_fp
let size t = Hashtbl.length t.tbl
let hits t = t.hits
let misses t = t.misses
let invalidations t = t.invalidations
let cross_epoch_reuse t = t.cross_epoch
let analysis_size t = Hashtbl.length t.atbl
let analysis_hits t = t.ahits
let analysis_misses t = t.amisses
