(** Invoking a loaded extension, one-shot or through a pooled context.

    {!run} without an [ictx] reproduces the historical per-invocation
    behaviour exactly: fresh helper context, fresh ctx/skb regions.  With a
    pooled {!t}, the helper context is reset and the ctx/skb regions are
    reused, keeping the simulated address space constant-size under a
    serving loop ({!Dispatch}). *)

type run_opts = {
  skb_payload : Bytes.t option;  (** packet to attach (socket_filter/xdp) *)
  fuel : int64 option;           (** instruction budget guard *)
  wall_ns : int64 option;        (** wall-clock guard (interpreter only) *)
  max_depth : int option;        (** call-depth cap (interpreter only) *)
  ns_per_insn : int64;           (** simulated cost per instruction *)
  use_jit : bool;
  jit_branch_bug : bool;         (** inject the JIT branch-offset bug *)
  use_elision : bool;
      (** honour the elide pass's guard elisions carried on the loaded
          handle (no-op when the analysis did not run); off = always
          evaluate every guard dynamically *)
  use_bound_batching : bool;
      (** honour the bound pass's fuel-check windows on proven-bounded
          programs: one up-front fuel charge per straight-line window
          instead of a check per instruction.  Outcome- and
          trip-point-identical to per-instruction checking (a window opens
          only when the tank covers it whole); off = check every
          instruction *)
  bound_watchdog : bool;
      (** when no [wall_ns] was given and the program has a static bound,
          derive an advisory wall-clock deadline from it (well past what a
          bounded program can spend — it only fires if the bound lied).
          Off by default: a derived deadline changes outcomes for programs
          that sleep in helpers, so it is strictly opt-in *)
}

val default_opts : run_opts
(** No packet, no guards, 1ns/insn, interpreter, elision and fuel-check
    batching honoured, no derived watchdog. *)

type t
(** A reusable invocation context bound to one world. *)

val create : World.t -> t

type resource = Fuel | Wall_clock | Stack
(** Which runtime budget an invocation ran out of. *)

val resource_to_string : resource -> string

type outcome =
  | Finished of int64                    (** clean return value *)
  | Stopped of Runtime.Guard.termination
      (** clean self-stop: a language panic handled by safe termination *)
  | Crashed of Kernel_sim.Oops.report    (** the kernel is dead *)
  | Exhausted of resource * Runtime.Guard.termination
      (** a runtime budget (fuel / wall-clock / stack) ran out; the
          recorded destructors ran and the kernel is intact *)

val outcome_of_termination : Runtime.Guard.termination -> outcome
(** Lift a guard termination into the outcome algebra: fuel, watchdog and
    stack trips become {!Exhausted}; a language panic becomes {!Stopped}. *)

val pp_outcome : Format.formatter -> outcome -> unit

type run_report = {
  outcome : outcome;
  health : Kernel_sim.Kernel.health;
  trace : string list;                  (** bpf_trace_printk / kcrate trace *)
  resources_outstanding : int;          (** acquired resources left at exit *)
  insns_retired : int64;
      (** instructions retired by completed activations: the quantity the
          bound pass's [Bounded n] promises never exceeds [n].  An
          activation cut short by a tail call is not counted (the
          bound-vs-observed cross-check skips tail-calling runs); Rustlite
          extensions report 0 *)
}

val max_tail_calls : int
(** MAX_TAIL_CALL_CNT: the kernel's cap on chained tail calls. *)

val run :
  ?opts:run_opts -> ?ictx:t -> ?snap:Epoch.snapshot -> World.t ->
  Pipeline.loaded -> run_report
(** One invocation: pins one epoch snapshot for its whole duration
    (RCU-style — [?snap] to pin an explicitly retained older epoch,
    default the current one), builds (or reuses) the attach context,
    snapshots refcounts for leak attribution, executes under the requested
    guards, chases tail calls (up to {!max_tail_calls}) {e against the
    pinned snapshot}, fires armed timers (the simulated softirq), and
    reports the outcome with the kernel's health.  The pin is released on
    every exit path, letting superseded epochs retire.  Raises
    [Invalid_argument] if [ictx] was created for a different world. *)
