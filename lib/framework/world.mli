(** A complete testbed, split registry/epochs.

    The record is the long-lived {e registry}: one simulated kernel, the
    map registry, the helper-bug database and the verdict cache — state
    that outlives any individual extension.  Everything an in-flight
    invocation reads (loaded programs, the tail-call index, the verifier
    and analysis configurations) lives in the immutable epoch chain
    ({!Epoch}) and is only reachable through the facade below.

    The type is [private]: every field is readable, but construction and
    mutation happen only through this interface — all serving-state
    mutation flows through an {!Epoch.builder} (directly, or via the
    {!set_vconfig} / {!set_tail_call} / {!unload} sugar), so a published
    epoch can never be torn.

    Every experiment builds a fresh world, so failures cannot contaminate
    each other. *)

module Kernel = Kernel_sim.Kernel
module Kver = Kerndata.Kver
module Bpf_map = Maps.Bpf_map
module Hctx = Helpers.Hctx
module Bugdb = Helpers.Bugdb

type t = private {
  kernel : Kernel.t;
  maps : Bpf_map.Registry.t;
  bugs : Bugdb.t;
  epochs : Epoch.store;  (** the immutable-snapshot chain (see {!Epoch}) *)
  vcache : Verdict_cache.t;  (** content-addressed verify-gate verdicts *)
  mutable populated : bool;
      (** whether {!populate} ran; shard worlds replay it (see {!shard_of}) *)
}

val create :
  ?version:Kver.t -> ?vconfig:Bpf_verifier.Verifier.config ->
  ?aconfig:Analysis.Driver.config -> unit -> t
(** A bare world at the given simulated kernel version (default v5.18,
    which also selects the default helper-bug windows).  [?aconfig]
    defaults to {!Analysis.Driver.default_config} (all passes on). *)

val register_map : t -> Bpf_map.def -> Bpf_map.t

(** {2 Epoch facade} *)

val current : t -> Epoch.snapshot
(** The currently published snapshot. *)

val pin : t -> Epoch.snapshot
(** Pin the current snapshot for one invocation; pair with {!unpin}. *)

val unpin : t -> Epoch.snapshot -> unit
(** Release a pin; superseded snapshots retire once unpinned and the
    kernel's RCU read side is quiescent. *)

val vconfig : t -> Bpf_verifier.Verifier.config
(** The current snapshot's verifier configuration.  (The {!Vbug} toggles
    nested inside it are live injection state shared across epochs.) *)

val aconfig : t -> Analysis.Driver.config

val reconfigure : t -> (Epoch.builder -> unit) -> Epoch.snapshot
(** Stage arbitrary changes on a fresh builder and publish them as the
    next epoch; returns the published snapshot. *)

val set_vconfig : t -> Bpf_verifier.Verifier.config -> unit
(** Publish an epoch carrying the new verifier configuration. *)

val set_aconfig : t -> Analysis.Driver.config -> unit

val set_tail_call : t -> index:int -> prog_id:int -> unit
(** Publish an epoch whose tail-call table maps [index] to [prog_id]. *)

val unload : t -> prog_id:int -> bool
(** Publish an epoch without [prog_id]; [false] (and no epoch swap) if the
    id was not loaded. *)

val progs_sorted : t -> (int * Ebpf.Program.t) list
(** The current snapshot's program table in ascending prog-id order — the
    deterministic view any printed output must use. *)

val tail_calls_sorted : t -> (int * int) list
(** The current snapshot's tail-call table as (index, prog id). *)

(** {2 Helper contexts} *)

val new_hctx : ?owner:string -> ?snap:Epoch.snapshot -> t -> Hctx.t
(** A fresh helper execution context wired to this world, with its
    tail-call table taken from [snap] (default: the current snapshot). *)

val sync_hctx : ?snap:Epoch.snapshot -> t -> Hctx.t -> unit
(** Re-point an existing hctx's tail-call table at [snap] (default: the
    current snapshot) — used when reusing a pooled invocation context,
    so each run reads its own pinned epoch. *)

val populate : t -> t
(** Add the standard task/socket population (nginx pid 1234 as current,
    postgres, an established sock on 8080 and a request sock on 8443) and
    snapshot refcounts so health reports only extension-caused leaks. *)

val create_populated :
  ?version:Kver.t -> ?vconfig:Bpf_verifier.Verifier.config ->
  ?aconfig:Analysis.Driver.config -> unit -> t

val shard_of : t -> t
(** A per-domain shard view of [base] for parallel serving
    ({!Serve.run}): shares the epoch chain and verdict cache (every shard
    reads the same published snapshots; pins count against the same grace
    periods) but owns a private simulated kernel, the map topology
    recreated with the same ids and empty shard-local storage, and a copy
    of the bug database.  If [base] was {!populate}d the shard kernel is
    populated too.  Shard map contents never flow between shards —
    per-CPU map semantics writ large. *)
