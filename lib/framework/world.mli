(** A complete testbed: one simulated kernel plus the map registry, the
    helper-bug database, the verifier configuration, the loaded-program
    table (for tail calls), and the tail-call index.  Every experiment
    builds a fresh world, so failures cannot contaminate each other. *)

module Kernel = Kernel_sim.Kernel
module Kver = Kerndata.Kver
module Bpf_map = Maps.Bpf_map
module Hctx = Helpers.Hctx
module Bugdb = Helpers.Bugdb

type t = {
  kernel : Kernel.t;
  maps : Bpf_map.Registry.t;
  bugs : Bugdb.t;
  mutable vconfig : Bpf_verifier.Verifier.config;
  mutable aconfig : Analysis.Driver.config;
      (** which static-analysis passes the load pipeline runs *)
  progs : (int, Ebpf.Program.t) Hashtbl.t;
  mutable next_prog_id : int;
  prog_array : (int, int) Hashtbl.t;  (** tail-call index -> prog id *)
  vcache : Verdict_cache.t;  (** content-addressed verify-gate verdicts *)
}

val create :
  ?version:Kver.t -> ?vconfig:Bpf_verifier.Verifier.config ->
  ?aconfig:Analysis.Driver.config -> unit -> t
(** A bare world at the given simulated kernel version (default v5.18,
    which also selects the default helper-bug windows).  [?aconfig]
    defaults to {!Analysis.Driver.default_config} (all passes on). *)

val register_map : t -> Bpf_map.def -> Bpf_map.t

val new_hctx : ?owner:string -> t -> Hctx.t
(** A fresh helper execution context wired to this world (including the
    tail-call table). *)

val sync_hctx : t -> Hctx.t -> unit
(** Re-point an existing hctx's tail-call table at this world's current
    state (used when reusing a pooled invocation context). *)

val set_tail_call : t -> index:int -> prog_id:int -> unit
(** Wire a loaded program into the tail-call table. *)

val progs_sorted : t -> (int * Ebpf.Program.t) list
(** The loaded-program table in ascending prog-id order — the deterministic
    view any printed output must use instead of raw [Hashtbl] order. *)

val tail_calls_sorted : t -> (int * int) list
(** The tail-call table as (index, prog id), ascending by index. *)

val populate : t -> t
(** Add the standard task/socket population (nginx pid 1234 as current,
    postgres, an established sock on 8080 and a request sock on 8443) and
    snapshot refcounts so health reports only extension-caused leaks. *)

val create_populated :
  ?version:Kver.t -> ?vconfig:Bpf_verifier.Verifier.config ->
  ?aconfig:Analysis.Driver.config -> unit -> t
