(* A complete testbed: the long-lived registry half of the serving core.

   A world is split in two:

   - the *registry* (this record): the simulated kernel, the map registry,
     the helper bug database and the verdict cache — state that outlives
     any individual extension and deliberately straddles epochs (fault
     injection, health history, memoized verdicts).

   - the *epoch chain* ([epochs]): immutable snapshots of everything an
     in-flight invocation reads — the loaded-program table, the tail-call
     index, vconfig/aconfig.  All mutation flows through an Epoch.builder
     and lands as an atomically published epoch N+1; see Epoch for the
     RCU-style grace-period machinery.

   Every experiment builds a fresh world, so failures cannot contaminate
   each other. *)

module Kernel = Kernel_sim.Kernel
module Kver = Kerndata.Kver
module Bpf_map = Maps.Bpf_map
module Hctx = Helpers.Hctx
module Bugdb = Helpers.Bugdb

type t = {
  kernel : Kernel.t;
  maps : Bpf_map.Registry.t;
  bugs : Bugdb.t;
  epochs : Epoch.store;
  (* content-addressed verdicts for the verify gate (Pipeline); per world,
     because a world *is* one kernel instance *)
  vcache : Verdict_cache.t;
  mutable populated : bool;
}

let create ?(version = Kver.V5_18) ?vconfig
    ?(aconfig = Analysis.Driver.default_config) () =
  let vconfig =
    match vconfig with
    | Some c -> c
    | None -> { (Bpf_verifier.Verifier.default_config ()) with Bpf_verifier.Verifier.version }
  in
  let kernel = Kernel.create () in
  { kernel; maps = Bpf_map.Registry.create ();
    bugs = Bugdb.create ~version ();
    epochs =
      Epoch.create_store ~clock:kernel.Kernel.clock ~rcu:kernel.Kernel.rcu
        ~vconfig ~aconfig;
    vcache = Verdict_cache.create (); populated = false }

let register_map t (def : Bpf_map.def) = Bpf_map.Registry.register t.maps t.kernel def

(* ---- epoch facade ---- *)

let current t = Epoch.current t.epochs
let pin t = Epoch.pin t.epochs
let unpin t snap = Epoch.release t.epochs snap
let vconfig t = (Epoch.current t.epochs).Epoch.vconfig
let aconfig t = (Epoch.current t.epochs).Epoch.aconfig

(* The generic mutation entry point: stage changes on a builder, publish
   the next epoch.  Everything below is sugar over this. *)
let reconfigure t f =
  let b = Epoch.begin_ t.epochs in
  f b;
  Epoch.publish b

let set_vconfig t c = ignore (reconfigure t (fun b -> Epoch.set_vconfig b c))
let set_aconfig t c = ignore (reconfigure t (fun b -> Epoch.set_aconfig b c))

(* Wire a loaded program into the tail-call table at [index] — publishes
   the epoch carrying the rewired table. *)
let set_tail_call t ~index ~prog_id =
  ignore (reconfigure t (fun b -> Epoch.set_tail_call b ~index ~prog_id))

(* Unload a program.  Publishes only when the id was actually loaded. *)
let unload t ~prog_id =
  let b = Epoch.begin_ t.epochs in
  if Epoch.unload b ~prog_id then begin
    ignore (Epoch.publish b);
    true
  end
  else false

(* Deterministic views of the current snapshot's tables, for printing. *)
let progs_sorted t = Epoch.progs_sorted (Epoch.current t.epochs)
let tail_calls_sorted t = Epoch.tail_calls_sorted (Epoch.current t.epochs)

(* ---- helper contexts ---- *)

(* Re-point an existing hctx's tail-call table at [snap] (the invocation's
   pinned epoch; defaults to current).  Used when a pooled invocation
   context is reused across runs. *)
let sync_hctx ?snap t (hctx : Hctx.t) =
  let snap = match snap with Some s -> s | None -> Epoch.current t.epochs in
  Hashtbl.reset hctx.Hctx.prog_array;
  Epoch.Int_map.iter
    (fun k v -> Hashtbl.replace hctx.Hctx.prog_array k v)
    snap.Epoch.prog_array

let new_hctx ?(owner = "bpf_prog") ?snap t =
  let hctx = Hctx.create ~owner ~kernel:t.kernel ~maps:t.maps ~bugs:t.bugs () in
  sync_hctx ?snap t hctx;
  hctx

(* Populate a default environment: a couple of tasks and sockets for the
   task/sock helpers to find. *)
let populate t =
  let task = Kernel.add_task t.kernel ~pid:1234 ~tgid:1234 ~comm:"nginx" in
  Kernel.set_current t.kernel task;
  ignore (Kernel.add_task t.kernel ~pid:1300 ~tgid:1300 ~comm:"postgres");
  ignore (Kernel.add_sock t.kernel ~port:8080 ~state:Kernel_sim.Kobject.Established);
  ignore (Kernel.add_sock t.kernel ~port:8443 ~state:Kernel_sim.Kobject.Request);
  (* baseline the refcounts so health reports only extension-caused leaks *)
  Kernel.snapshot_refs t.kernel;
  t.populated <- true;
  t

let create_populated ?version ?vconfig ?aconfig () =
  populate (create ?version ?vconfig ?aconfig ())

(* ---- shard worlds ----

   One per serving domain (Framework.Serve): the *program* state is shared
   — the epoch chain (and verdict cache) is the [base] world's, so every
   shard reads the same published snapshots and pins count against the
   same grace periods — while the *machine* state is private: a fresh
   simulated kernel (own Vclock, own memory, own RCU bookkeeping), the map
   topology recreated with the same ids but empty shard-local storage
   (per-CPU map semantics writ large), and a copy of the bug database so
   chaos injection arms per shard without racing.

   Two consequences to know about:
   - map contents do not flow between shards; extensions that need
     cross-flow state see per-shard views, exactly like per-CPU maps;
   - the shared store's RCU read-side tracking follows the base kernel;
     shard read-side protection is carried entirely by snapshot pins,
     which every invocation takes ([Invoke.run ?snap]). *)
let shard_of (base : t) =
  let kernel = Kernel.create () in
  let t =
    { kernel;
      maps = Bpf_map.Registry.clone base.maps ~kernel;
      bugs = { base.bugs with Bugdb.version = base.bugs.Bugdb.version };
      epochs = base.epochs;
      vcache = base.vcache;
      populated = false }
  in
  if base.populated then ignore (populate t);
  t
