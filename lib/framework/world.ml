(* A complete testbed: one simulated kernel plus the map registry, the
   helper bug database, the verifier configuration, and the table of loaded
   programs (for tail calls).  Every experiment builds a fresh world, so
   failures cannot contaminate each other. *)

module Kernel = Kernel_sim.Kernel
module Kver = Kerndata.Kver
module Bpf_map = Maps.Bpf_map
module Hctx = Helpers.Hctx
module Bugdb = Helpers.Bugdb

type t = {
  kernel : Kernel.t;
  maps : Bpf_map.Registry.t;
  bugs : Bugdb.t;
  mutable vconfig : Bpf_verifier.Verifier.config;
  (* which static-analysis passes the load pipeline runs; mutable for the
     same reason vconfig is — experiments toggle passes on a live world and
     the verdict-cache fingerprint must notice *)
  mutable aconfig : Analysis.Driver.config;
  progs : (int, Ebpf.Program.t) Hashtbl.t;
  mutable next_prog_id : int;
  (* the BPF_MAP_TYPE_PROG_ARRAY stand-in: tail-call index -> prog id *)
  prog_array : (int, int) Hashtbl.t;
  (* content-addressed verdicts for the verify gate (Pipeline); per world,
     because a world *is* one kernel instance *)
  vcache : Verdict_cache.t;
}

let create ?(version = Kver.V5_18) ?vconfig
    ?(aconfig = Analysis.Driver.default_config) () =
  let vconfig =
    match vconfig with
    | Some c -> c
    | None -> { (Bpf_verifier.Verifier.default_config ()) with Bpf_verifier.Verifier.version }
  in
  { kernel = Kernel.create (); maps = Bpf_map.Registry.create ();
    bugs = Bugdb.create ~version (); vconfig; aconfig;
    progs = Hashtbl.create 4;
    next_prog_id = 1; prog_array = Hashtbl.create 4;
    vcache = Verdict_cache.create () }

let register_map t (def : Bpf_map.def) = Bpf_map.Registry.register t.maps t.kernel def

(* Re-point an existing hctx's tail-call table at this world's current
   state (used when a pooled invocation context is reused across runs). *)
let sync_hctx t (hctx : Hctx.t) =
  Hashtbl.reset hctx.Hctx.prog_array;
  Hashtbl.iter (fun k v -> Hashtbl.replace hctx.Hctx.prog_array k v) t.prog_array

let new_hctx ?(owner = "bpf_prog") t =
  let hctx = Hctx.create ~owner ~kernel:t.kernel ~maps:t.maps ~bugs:t.bugs () in
  Hashtbl.iter (fun k v -> Hashtbl.replace hctx.Hctx.prog_array k v) t.prog_array;
  hctx

(* Wire a loaded program into the tail-call table at [index]. *)
let set_tail_call t ~index ~prog_id = Hashtbl.replace t.prog_array index prog_id

(* Deterministic views of the two Hashtbl-backed tables, for printing:
   raw Hashtbl order depends on insertion history and hashing, so anything
   user-visible iterates these instead. *)
let progs_sorted t =
  Hashtbl.fold (fun id p acc -> (id, p) :: acc) t.progs []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let tail_calls_sorted t =
  Hashtbl.fold (fun idx pid acc -> (idx, pid) :: acc) t.prog_array []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

(* Populate a default environment: a couple of tasks and sockets for the
   task/sock helpers to find. *)
let populate t =
  let task = Kernel.add_task t.kernel ~pid:1234 ~tgid:1234 ~comm:"nginx" in
  Kernel.set_current t.kernel task;
  ignore (Kernel.add_task t.kernel ~pid:1300 ~tgid:1300 ~comm:"postgres");
  ignore (Kernel.add_sock t.kernel ~port:8080 ~state:Kernel_sim.Kobject.Established);
  ignore (Kernel.add_sock t.kernel ~port:8443 ~state:Kernel_sim.Kobject.Request);
  (* baseline the refcounts so health reports only extension-caused leaks *)
  Kernel.snapshot_refs t.kernel;
  t

let create_populated ?version ?vconfig ?aconfig () =
  populate (create ?version ?vconfig ?aconfig ())
