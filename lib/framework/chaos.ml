(* Deterministic fault injection for the serving path.

   The supervision layer is only trustworthy if it can be exercised: this
   module decides, from a seed and an event index alone, whether an event
   gets a fault injected and which kind — arming a helper bug from
   Helpers.Bugdb for the duration of one event, squeezing the fuel budget,
   or collapsing the call-depth cap (synthetic stack pressure).

   The schedule is a pure function of (seed, event index): no mutable RNG
   state, so two runs with the same seed inject exactly the same faults at
   exactly the same events regardless of what happens in between — the
   property the bench's degradation comparison and the tests rely on. *)

module Bugdb = Helpers.Bugdb

type injection =
  | Calm                    (* no injection this event *)
  | Helper_bug of string    (* arm this Bugdb key for one event *)
  | Fuel_pressure of int64  (* squeeze the fuel budget to this value *)
  | Stack_pressure          (* collapse the call-depth cap: immediate trip *)

type config = {
  seed : int64;
  fault_rate : float;       (* injection probability per event, [0, 1] *)
  bug_keys : string list;   (* helper bugs in the rotation *)
  fuel_pressure : int64;    (* injected fuel budget; negative disables *)
  stack_pressure : bool;
}

let default_config =
  {
    seed = 0x63_68_61_6f_73L (* "chaos" *);
    fault_rate = 0.01;
    bug_keys = [ "hbug:probe-read-size-unchecked" ];
    fuel_pressure = 16L;
    stack_pressure = true;
  }

(* splitmix64 of (seed, i): random-access, no state. *)
let mix seed i =
  let z = Int64.add seed (Int64.mul (Int64.of_int (i + 1)) 0x9e3779b97f4a7c15L) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let kinds c =
  List.map (fun k -> Helper_bug k) c.bug_keys
  @ (if Int64.compare c.fuel_pressure 0L >= 0 then [ Fuel_pressure c.fuel_pressure ] else [])
  @ if c.stack_pressure then [ Stack_pressure ] else []

(* The injection for event [event] — a pure function of the config. *)
let injection c ~event =
  if c.fault_rate <= 0. then Calm
  else
    let u = mix c.seed event in
    let bucket = Int64.to_int (Int64.rem (Int64.shift_right_logical u 11) 1_000_000L) in
    if float_of_int bucket >= c.fault_rate *. 1e6 then Calm
    else
      match kinds c with
      | [] -> Calm
      | ks ->
        let pick =
          Int64.to_int
            (Int64.rem (Int64.shift_right_logical u 33)
               (Int64.of_int (List.length ks)))
        in
        List.nth ks pick

let tele_injected = Telemetry.Registry.counter "chaos.injected"

(* Arm/disarm the world-level part of an injection (the Bugdb toggle).
   Disarm uses [Bugdb.clear_forced], not [force_off]: off would win over any
   later force_on and pin the bug off for the rest of the world's life. *)
let arm inj (bugs : Bugdb.t) =
  match inj with
  | Calm -> ()
  | Helper_bug key ->
    Bugdb.force_on bugs key;
    Telemetry.Registry.bump tele_injected
  | Fuel_pressure _ | Stack_pressure -> Telemetry.Registry.bump tele_injected

let disarm inj (bugs : Bugdb.t) =
  match inj with
  | Helper_bug key -> Bugdb.clear_forced bugs key
  | Calm | Fuel_pressure _ | Stack_pressure -> ()

(* The per-invocation part: tighten the run options for this event. *)
let apply_opts inj (opts : Invoke.run_opts) =
  match inj with
  | Calm | Helper_bug _ -> opts
  | Fuel_pressure f ->
    let fuel =
      match opts.Invoke.fuel with
      | Some existing when Int64.compare existing f < 0 -> existing
      | _ -> f
    in
    { opts with Invoke.fuel = Some fuel }
  | Stack_pressure ->
    (* depth 0 > -1: the entry frame itself trips the stack guard *)
    { opts with Invoke.max_depth = Some (-1) }

let describe = function
  | Calm -> "calm"
  | Helper_bug k -> "helper-bug " ^ k
  | Fuel_pressure f -> Printf.sprintf "fuel-pressure %Ld" f
  | Stack_pressure -> "stack-pressure"

(* How many injections a [count]-event stream will see (for reporting). *)
let planned c ~count =
  let n = ref 0 in
  for i = 0 to count - 1 do
    if injection c ~event:i <> Calm then incr n
  done;
  !n
