(** Content-addressed verdict cache for the verify gate of the load
    pipeline.

    Keyed by (program digest, fingerprint of verifier config + injected bug
    sets + referenced map shapes + kernel version); a hit replays the
    recorded verdict — stats included — without re-running the verifier's
    DFS.  The fingerprint is recomputed from live mutable state on every
    lookup, so mutating {!World.t.vconfig}, a {!Bpf_verifier.Vbug.t}
    toggle, or the {!Helpers.Bugdb.t} injection set invalidates cached
    verdicts instead of replaying a stale accept. *)

type verdict = (Bpf_verifier.Verifier.stats, Bpf_verifier.Verifier.reject) result

type t

val create : unit -> t

val fingerprint :
  ?analysis:string ->
  config:Bpf_verifier.Verifier.config ->
  bugs:Helpers.Bugdb.t ->
  map_def:(int -> Maps.Bpf_map.def option) ->
  Ebpf.Program.t ->
  string
(** Hash of every verdict input besides program content.  [?analysis] is
    the static-analysis configuration signature
    ({!Analysis.Driver.config_signature}); when non-empty it is folded in,
    so toggling an analysis pass invalidates cached load results. *)

val key : digest:string -> fingerprint:string -> string

val find : ?epoch:int -> t -> string -> verdict option
(** Bumps the hit/miss tallies (and the registry's [cache.hit] /
    [cache.miss] / [cache.invalidated] counters) as a side effect.  A miss
    for a digest whose previous lookup used a different fingerprint counts
    as an invalidation: the program is known, but a fingerprinted input
    changed.

    [?epoch] is the caller's current {!Epoch} number: a hit on an entry
    stored under an earlier epoch additionally counts as a cross-epoch
    reuse ([cache.cross_epoch_reuse]) — the same image re-admitted after a
    hot reload without re-verification. *)

val store : ?epoch:int -> t -> string -> verdict -> unit
(** Record a verdict, tagged with the epoch it was computed under. *)

(** {2 Cached static-analysis reports}

    Stored alongside verdicts under (program digest, analysis-config
    signature) — the only inputs the passes read — with separate hit/miss
    tallies so analysis caching cannot perturb verdict measurements. *)

val analysis_key : digest:string -> signature:string -> string

val find_analysis : t -> string -> Analysis.Driver.report option
(** Bumps the analysis hit/miss tallies as a side effect. *)

val store_analysis : t -> string -> Analysis.Driver.report -> unit

val clear : t -> unit
val size : t -> int
val hits : t -> int
val misses : t -> int

val invalidations : t -> int
(** Misses that replaced an existing digest's fingerprint (config, bug-set
    or map-shape churn), as opposed to never-seen programs. *)

val cross_epoch_reuse : t -> int
(** Hits whose entry was stored under an earlier epoch than the lookup's. *)

val analysis_size : t -> int
val analysis_hits : t -> int
val analysis_misses : t -> int
