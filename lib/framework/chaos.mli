(** Deterministic fault injection for the serving path.

    The injection schedule is a pure function of [(seed, event index)] —
    no mutable RNG state — so two runs with the same seed inject the same
    faults at the same events.  Three injection kinds cover the fault
    classes the supervisor must absorb: a helper bug armed from
    {!Helpers.Bugdb} for one event (kernel crash), a squeezed fuel budget
    (fuel exhaustion), and a collapsed call-depth cap (stack trip). *)

type injection =
  | Calm                    (** no injection this event *)
  | Helper_bug of string    (** arm this Bugdb key for one event *)
  | Fuel_pressure of int64  (** squeeze the fuel budget to this value *)
  | Stack_pressure          (** collapse the call-depth cap *)

type config = {
  seed : int64;
  fault_rate : float;       (** injection probability per event, [0, 1] *)
  bug_keys : string list;   (** helper bugs in the rotation *)
  fuel_pressure : int64;    (** injected fuel budget; negative disables *)
  stack_pressure : bool;
}

val default_config : config
(** 1% fault rate; rotation = probe-read OOB bug, fuel 16, stack pressure. *)

val injection : config -> event:int -> injection
(** The injection for one event — pure and random-access. *)

val arm : injection -> Helpers.Bugdb.t -> unit
(** Apply the world-level part (Bugdb force_on) and count the injection. *)

val disarm : injection -> Helpers.Bugdb.t -> unit
(** Undo [arm] via [Bugdb.clear_forced] (a [force_off] would pin the bug
    off for the rest of the world's life). *)

val apply_opts : injection -> Invoke.run_opts -> Invoke.run_opts
(** The per-invocation part: tighten fuel / call-depth for this event. *)

val describe : injection -> string

val planned : config -> count:int -> int
(** How many of the first [count] events carry an injection. *)
