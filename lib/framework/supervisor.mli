(** Per-extension health supervision for the serving path.

    Each attached extension carries a circuit breaker driven on the virtual
    clock:

    {v
    Closed --(fault_threshold faults in a window)--> Open
    Open --(cooldown elapsed)--> Half_open
    Half_open --(probe ok)--> Closed
    Half_open --(probe faults)--> Open, cooldown * backoff
    (quarantine_after trips) --> Quarantined
    v}

    A {e fault} is a contained kernel crash ({!Invoke.Crashed}) or a budget
    exhaustion ({!Invoke.Exhausted}); a language panic ({!Invoke.Stopped})
    is a clean self-stop and does not count against the breaker.

    The machine is exercised through {!decide} / {!observe_fault} /
    {!observe_ok} with an explicit [now_ns], so every transition is
    deterministic and unit-testable without a dispatch engine. *)

type config = {
  window : int;            (** sliding window length, in observations *)
  fault_threshold : int;   (** faults within [window] that open the breaker *)
  cooldown_ns : int64;     (** base open -> half-open cooldown (Vclock ns) *)
  backoff : float;         (** cooldown multiplier per re-trip *)
  max_cooldown_ns : int64; (** backoff cap *)
  quarantine_after : int;  (** breaker trips before quarantine *)
}

val default_config : config
(** window 16, threshold 3, cooldown 1 simulated ms, backoff x2 capped at
    1 s, quarantine after 3 trips. *)

type state = Closed | Open of { until_ns : int64 } | Half_open | Quarantined

val state_to_string : state -> string

type ext = {
  mutable attach_id : int;
      (** last-seen attach id; rebound when the same image re-attaches *)
  name : string;
  digest : string;
      (** content digest the record is keyed by; [""] when attach-id keyed *)
  mutable state : state;
  mutable trips : int;            (** times the breaker opened, cumulative *)
  mutable seq : int;              (** observations (executions + skips) *)
  mutable fault_seqs : int list;  (** seqs of recent faults, newest first *)
  mutable invocations : int;
  mutable finished : int;
  mutable stopped : int;
  mutable crashed : int;
  mutable exhausted : int;
  mutable skipped : int;
  mutable ret_checksum : int64;
  mutable quarantined_at_ns : int64 option;
  lat : Telemetry.Histogram.t;
      (** invocation latency (Vclock ns), interned as ["ext.<name>.ns"];
          observed by {!Dispatch}, read back as the scorecard's p50/p99 *)
}
(** Mutable per-extension record; the serving tallies are filled in by
    {!Dispatch}. *)

type t

val create : ?config:config -> unit -> t

val ext : ?digest:string -> t -> attach_id:int -> name:string -> ext
(** Find-or-create the record for one attachment.  With [?digest] (the
    extension's content digest, {!Attach.digest}) the record is keyed by
    digest, so breaker state, trip counts and quarantine survive
    detach/re-attach across epochs — the same image keeps its history, a
    genuinely new image starts clean.  Without a digest the record is
    keyed by attach id (unit-test convenience).  [attach_id] is rebound to
    the latest value on every lookup. *)

val exts : t -> ext list
(** All tracked extensions, in attach order. *)

type decision =
  | Execute  (** breaker closed: run normally *)
  | Probe    (** half-open: run once to test recovery *)
  | Skip     (** open or quarantined: do not run *)

val decide : t -> ext -> now_ns:int64 -> decision
(** May move an expired [Open] breaker to [Half_open]. *)

type transition =
  | No_change
  | Tripped of { until_ns : int64; trip : int }  (** breaker opened *)
  | Quarantine  (** trip budget spent: caller must detach *)

val observe_fault : t -> ext -> now_ns:int64 -> transition
(** Record a contained fault.  In [Closed], trips once the window holds
    [fault_threshold] faults; in [Half_open], re-trips immediately with the
    backed-off cooldown.  Emits [supervisor.*] telemetry. *)

val observe_ok : t -> ext -> now_ns:int64 -> unit
(** Record a clean execution; a successful probe closes the breaker. *)

val observe_skip : ext -> unit

val cooldown_for : config -> trip:int -> int64
(** Cooldown for the [trip]th trip (1-based):
    [cooldown_ns * backoff^(trip-1)], capped at [max_cooldown_ns]. *)

type health = {
  attach_id : int;
  name : string;
  digest : string;  (** [""] when the record was attach-id keyed *)
  state : state;
  trips : int;
  invocations : int;
  finished : int;
  stopped : int;
  crashed : int;
  exhausted : int;
  skipped : int;
  ret_checksum : int64;
  quarantined : bool;
  p50_ns : int64;        (** median invocation latency (Vclock ns) *)
  p99_ns : int64;        (** tail invocation latency (Vclock ns) *)
  crash_rate : float;    (** crashed / invocations *)
  exhaust_rate : float;  (** exhausted / invocations *)
}
(** Immutable snapshot of one extension's serving health: the scorecard
    row rendered by the CLI's [top] subcommand. *)

val health_of_ext : ext -> health
val healths : t -> health list
(** Snapshots in attach order (quarantined extensions included). *)

val merge_healths : health list list -> health list
(** Fold per-shard scorecards into one, keyed by content digest (records
    without a digest merge by attach id + name).  Tallies and trips sum;
    [ret_checksum] combines by order-insensitive Int64 addition (NOT the
    sequential stream checksum — {!Serve} reconstructs that exactly);
    p50/p99 take the max across shards (the conservative bound once each
    shard has reduced its histogram to quantiles); state merges to the
    worst (Quarantined > Open > Half-open > Closed); rates are recomputed
    from the merged tallies.  Result sorted by attach id, then name. *)

val pp_health : Format.formatter -> health -> unit
