(** Historical flat API over the staged load pipeline.

    The machinery lives in {!Pipeline} (admission -> fixup -> gate -> link,
    with the content-addressed verdict cache in front of the verify gate)
    and {!Invoke} (one-shot and pooled invocation).  This module re-exports
    it behind the original surface, so existing experiments and tests are
    unchanged.

    Path A (today's architecture, paper Figure 1): bytecode arrives in the
    kernel; the in-kernel verifier symbolically executes it; acceptance is
    the only safety gate and helpers are trusted.

    Path B (the proposal, paper Figure 5): a signed artifact arrives; the
    kernel validates the toolchain signature, performs only load-time
    fixup, and relies on the runtime guards from then on. *)

type loaded = Pipeline.loaded =
  | Ebpf_prog of { prog_id : int; prog : Ebpf.Program.t;
                   vstats : Bpf_verifier.Verifier.stats;
                   analysis : Analysis.Driver.report option }
  | Rustlite_ext of { ext : Rustlite.Toolchain.signed_extension;
                      map_ids : (string * int) list }

type load_error =
  | Rejected of Bpf_verifier.Verifier.reject  (** path A: verifier said no *)
  | Verifier_crashed of string                (** path A: a verifier bug fired *)
  | Bad_signature                             (** path B: validation failed *)
  | Fixup_failed of string                    (** unresolved helper relocation *)

val pp_load_error : Format.formatter -> load_error -> unit

val of_pipeline_error : Pipeline.error -> load_error
(** Flatten a staged pipeline error into the historical shape. *)

val fixup : Ebpf.Program.t -> (Ebpf.Program.t, load_error) result
(** Resolve helper-name relocations to helper ids (the §3.1 "load-time
    fixup ... to resolve helper function addresses"). *)

val load_ebpf : World.t -> Ebpf.Program.t -> (loaded, load_error) result
(** Path A: admission, fixup, then the cached in-kernel verify gate. *)

val load_rustlite :
  World.t -> Rustlite.Toolchain.signed_extension -> (loaded, load_error) result
(** Path B: signature validation + map registration, no analysis. *)

type resource = Invoke.resource = Fuel | Wall_clock | Stack

type outcome = Invoke.outcome =
  | Finished of int64                  (** clean return value *)
  | Stopped of Runtime.Guard.termination
      (** clean self-stop: a language panic handled by safe termination *)
  | Crashed of Kernel_sim.Oops.report  (** the kernel is dead *)
  | Exhausted of resource * Runtime.Guard.termination
      (** a runtime budget ran out; destructors ran, kernel intact *)

val pp_outcome : Format.formatter -> outcome -> unit

type run_report = Invoke.run_report = {
  outcome : outcome;
  health : Kernel_sim.Kernel.health;
  trace : string list;                  (** bpf_trace_printk / kcrate trace *)
  resources_outstanding : int;          (** acquired resources left at exit *)
  insns_retired : int64;                (** see {!Invoke.run_report} *)
}

val max_tail_calls : int
(** MAX_TAIL_CALL_CNT: the kernel's cap on chained tail calls.

    The deprecated [Loader.run] optional-argument facade is gone: build an
    {!Invoke.run_opts} record — [{ Invoke.default_opts with fuel = ... }]
    — and call {!Invoke.run}[ ~opts]. *)
