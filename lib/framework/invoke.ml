(* Running a loaded extension.

   Two modes share one code path:

   - one-shot (the historical Loader.run behaviour): a fresh helper context
     and fresh ctx/skb regions per invocation.  Exploit demos depend on the
     exact allocation pattern (an OOB write lands in a *new* region), so
     this stays byte-for-byte what it was.

   - pooled (a [t]): a serving loop reuses one helper context, one ctx
     region per context size, and one growable skb buffer.  Kmem regions
     are never freed on this path and lookups scan the region list, so
     without reuse a 10k-event dispatch run allocates 20k regions and ends
     up quadratic; with reuse the address space stays constant-size. *)

module Kernel = Kernel_sim.Kernel
module Kobject = Kernel_sim.Kobject
module Kmem = Kernel_sim.Kmem
module Oops = Kernel_sim.Oops
module Hctx = Helpers.Hctx
module Guard = Runtime.Guard
module Program = Ebpf.Program

type run_opts = {
  skb_payload : Bytes.t option;  (* packet to attach (socket_filter/xdp) *)
  fuel : int64 option;           (* instruction budget guard *)
  wall_ns : int64 option;        (* wall-clock guard (interpreter only) *)
  max_depth : int option;        (* call-depth cap (interpreter only) *)
  ns_per_insn : int64;           (* simulated cost per instruction *)
  use_jit : bool;
  jit_branch_bug : bool;         (* inject the JIT branch-offset bug *)
  use_elision : bool;            (* honour the elide pass's guard elisions *)
  use_bound_batching : bool;     (* honour the bound pass's fuel-check
                                    windows on proven-bounded programs *)
  bound_watchdog : bool;         (* derive a wall-clock deadline from the
                                    static bound when none was given *)
}

let default_opts =
  { skb_payload = None; fuel = None; wall_ns = None; max_depth = None;
    ns_per_insn = 1L; use_jit = false; jit_branch_bug = false;
    use_elision = true; use_bound_batching = true; bound_watchdog = false }

(* ---- reusable invocation context ---- *)

type t = {
  world : World.t;
  hctx : Hctx.t;
  (* one preallocated ctx struct per context size seen, zeroed on reuse *)
  mutable ctx_regions : (int * Kmem.region) list;
  (* one skb backing buffer, grown (reallocated) only when a larger packet
     arrives; the sk_buff record itself is rebuilt per event with the
     event's length *)
  mutable skb_region : Kmem.region option;
}

let create (w : World.t) =
  { world = w; hctx = World.new_hctx w; ctx_regions = []; skb_region = None }

let ctx_region ictx size =
  match List.assoc_opt size ictx.ctx_regions with
  | Some r ->
    Bytes.fill r.Kmem.bytes 0 size '\000';
    r
  | None ->
    let r =
      Kmem.alloc ictx.world.World.kernel.Kernel.mem ~size ~kind:"ctx"
        ~name:"prog_ctx" ()
    in
    ictx.ctx_regions <- (size, r) :: ictx.ctx_regions;
    r

let reuse_skb ictx payload =
  let mem = ictx.world.World.kernel.Kernel.mem in
  let len = Bytes.length payload in
  let region =
    match ictx.skb_region with
    | Some r when r.Kmem.size >= max len 1 -> r
    | _ ->
      let r = Kmem.alloc mem ~size:(max len 1) ~kind:"ctx" ~name:"sk_buff" () in
      ictx.skb_region <- Some r;
      r
  in
  Kmem.store_bytes mem ~addr:region.Kmem.base ~src:payload ~context:"make_skb";
  { Kobject.skb_mem = region; len; mark = 0L }

(* ---- telemetry ---- *)

let tele_runs = Telemetry.Registry.counter "loader.runs"
let tele_run_ns = Telemetry.Registry.histogram "loader.run.ns"

(* Bound-vs-observed cross-check: every non-tail-calling invocation of a
   statically bounded program records its retired-instruction count, and
   any run that retires more than the static bound bumps the violation
   counter — which must stay 0 (the pass's soundness contract). *)
let tele_bound_observed =
  Telemetry.Registry.histogram "analysis.bound.observed_insns"
let tele_bound_violations =
  Telemetry.Registry.counter "analysis.bound.violations"

(* ---- running ---- *)

(* The closed outcome algebra of an invocation.  A guard trip carries *which
   budget* ran out as data, not as a string buried in the termination
   record: supervisors and dispatch policies branch on it. *)

type resource = Fuel | Wall_clock | Stack

let resource_to_string = function
  | Fuel -> "fuel"
  | Wall_clock -> "wall-clock"
  | Stack -> "stack"

type outcome =
  | Finished of int64                       (* clean return value *)
  | Stopped of Guard.termination            (* clean self-stop (language panic) *)
  | Crashed of Oops.report                  (* the kernel is dead *)
  | Exhausted of resource * Guard.termination
      (* a runtime budget ran out; destructors ran, kernel intact *)

(* Guard terminations carry a [reason]; lift it into the outcome algebra. *)
let outcome_of_termination (t : Guard.termination) =
  match t.Guard.reason with
  | Guard.Fuel_exhausted -> Exhausted (Fuel, t)
  | Guard.Watchdog_timeout -> Exhausted (Wall_clock, t)
  | Guard.Stack_violation -> Exhausted (Stack, t)
  | Guard.Language_panic _ -> Stopped t

let pp_outcome ppf = function
  | Finished v -> Format.fprintf ppf "finished ret=%Ld" v
  | Crashed r -> Format.fprintf ppf "CRASHED: %a" Oops.pp_report r
  | Stopped t -> Format.fprintf ppf "%a" Guard.pp_termination t
  | Exhausted (res, t) ->
    Format.fprintf ppf "%s exhausted: %a" (resource_to_string res)
      Guard.pp_termination t

type run_report = {
  outcome : outcome;
  health : Kernel.health;
  trace : string list;
  resources_outstanding : int;  (* leaked-by-exit acquired resources *)
  insns_retired : int64;
      (* instructions retired by completed activations (an activation cut
         short by a tail call is not counted; Rustlite reports 0) *)
}

(* Fill the context struct for an eBPF program type (the region is fresh or
   freshly zeroed, so only the populated fields matter). *)
let fill_ctx (w : World.t) (prog : Program.t) (skb : Kobject.sk_buff option) region =
  (match (prog.Program.prog_type, skb) with
  | (Program.Socket_filter | Program.Xdp), Some skb ->
    Kmem.store w.World.kernel.Kernel.mem ~size:4 ~addr:region.Kmem.base
      ~value:(Int64.of_int skb.Kobject.len) ~context:"ctx setup";
    Kmem.store w.World.kernel.Kernel.mem ~size:4
      ~addr:(Kmem.region_addr region 4) ~value:0x0800L ~context:"ctx setup"
  | _ -> ());
  region

let max_tail_calls = 33

let run ?(opts = default_opts) ?ictx ?snap (w : World.t)
    (loaded : Pipeline.loaded) : run_report =
  (match ictx with
  | Some i when i.world != w ->
    invalid_arg "Invoke.run: invocation context belongs to a different world"
  | _ -> ());
  (* Pin one epoch for the whole invocation, RCU-style: every tail-call and
     hctx prog-array lookup resolves against this snapshot, so a reload
     published mid-stream can never tear the event's world view.  The pin
     is released (and superseded epochs get to retire) on every exit
     path. *)
  let snap =
    match snap with
    | Some s -> Epoch.retain w.World.epochs s
    | None -> World.pin w
  in
  Fun.protect ~finally:(fun () -> Epoch.release w.World.epochs snap)
  @@ fun () ->
  let hctx =
    match ictx with
    | Some i ->
      Hctx.reset i.hctx;
      World.sync_hctx ~snap w i.hctx;
      i.hctx
    | None -> World.new_hctx ~snap w
  in
  let skb =
    Option.map
      (fun payload ->
        match ictx with
        | Some i -> reuse_skb i payload
        | None -> Kobject.make_skb w.World.kernel.Kernel.mem ~payload)
      opts.skb_payload
  in
  hctx.Hctx.skb <- skb;
  Kernel.snapshot_refs w.World.kernel;
  Telemetry.Registry.bump tele_runs;
  let { fuel; wall_ns; max_depth; ns_per_insn; use_jit; jit_branch_bug;
        use_elision; use_bound_batching; bound_watchdog; _ } =
    opts
  in
  let retired = ref 0L in
  let tail_called = ref false in
  let outcome =
    Telemetry.Registry.with_span "loader.run" ~hist:tele_run_ns
      ~clock:(fun () -> Kernel_sim.Vclock.now w.World.kernel.Kernel.clock)
      (fun () ->
    match loaded with
    | Pipeline.Ebpf_prog { prog; analysis; _ } -> (
      (* the elide pass's per-pc resolved branch targets, honoured only for
         the program they were computed on (a tail-call target has its own
         handle and its own analysis) *)
      let elide0 =
        if not use_elision then [||]
        else
          match analysis with
          | Some a
            when Array.length a.Analysis.Driver.elide
                 = Array.length prog.Program.insns ->
            a.Analysis.Driver.elide
          | _ -> [||]
      in
      (* the bound pass's verdict and fuel-check window vector, honoured
         under the same provenance rule as elision: first program in the
         chain only (tail-call targets carry their own analysis) *)
      let static_bound =
        match analysis with
        | Some { Analysis.Driver.cost = Some c; _ } -> (
          match c.Analysis.Bound_pass.bound with
          | Analysis.Bound_pass.Bounded b
            when Array.length c.Analysis.Bound_pass.spans
                 = Array.length prog.Program.insns ->
            Some (b, c.Analysis.Bound_pass.spans)
          | _ -> None)
        | _ -> None
      in
      let spans0 =
        match static_bound with
        | Some (_, spans) when use_bound_batching -> spans
        | _ -> [||]
      in
      let wall_ns =
        match (wall_ns, static_bound) with
        | None, Some (b, _) when bound_watchdog ->
          (* advisory deadline hint: well past anything a bounded program
             can spend, so it only fires if the static bound lied *)
          Some
            (Int64.add
               (Int64.mul (Int64.mul (Int64.of_int b) ns_per_insn) 8L)
               4096L)
        | w, _ -> w
      in
      let desc = Program.ctx_of_prog_type prog.Program.prog_type in
      let region =
        match ictx with
        | Some i -> ctx_region i desc.Program.ctx_size
        | None ->
          Kmem.alloc w.World.kernel.Kernel.mem ~size:desc.Program.ctx_size
            ~kind:"ctx" ~name:"prog_ctx" ()
      in
      let ctx = fill_ctx w prog skb region in
      let convert = function
        | Runtime.Interp.Ret v -> Finished v
        | Runtime.Interp.Oopsed r -> Crashed r
        | Runtime.Interp.Terminated t -> outcome_of_termination t
      in
      (* fire armed timers once the invocation completes (the simulated
         softirq): advance the clock to each deadline and run the callback
         at its pc with (0, cb_ctx) — the shape the verifier checked *)
      let fire_timers prog =
        let timers = List.sort compare hctx.Hctx.timers in
        hctx.Hctx.timers <- [];
        List.iter
          (fun (deadline, cb_pc, cb_ctx) ->
            let now = Kernel_sim.Vclock.now w.World.kernel.Kernel.clock in
            if Int64.compare deadline now > 0 then
              Kernel_sim.Vclock.advance w.World.kernel.Kernel.clock
                (Int64.sub deadline now);
            let t = Runtime.Interp.create ~fuel:1_000_000L hctx in
            match
              Runtime.Interp.exec_insns t prog.Program.insns ~entry:cb_pc ~depth:1
                ~args:[| 0L; cb_ctx; 0L; 0L; 0L |]
            with
            | (_ : int64) -> ()
            | exception Runtime.Guard.Terminate reason ->
              ignore (Runtime.Guard.terminate hctx reason))
          timers
      in
      let rec go prog elide spans remaining_tail_calls =
        match
          if use_jit then begin
            let compiled =
              Runtime.Jit.compile ~bug_branch_off_by_one:jit_branch_bug ~elide
                hctx prog
            in
            let r, n =
              Runtime.Jit.run_counted ?fuel ~ns_per_insn ~spans hctx compiled
                ~ctx_addr:ctx.Kmem.base
            in
            retired := Int64.add !retired n;
            r
          end
          else begin
            let r, n =
              Runtime.Interp.run_counted ?fuel ?wall_ns ?max_depth ~ns_per_insn
                ~elide ~spans ~hctx ~prog ~ctx_addr:ctx.Kmem.base ()
            in
            retired := Int64.add !retired n;
            r
          end
        with
        | r ->
          (* softirq: deliver any timers the program armed *)
          (match r with
          | Runtime.Interp.Ret _ when hctx.Hctx.timers <> [] -> (
            match Kernel.protect w.World.kernel (fun () -> fire_timers prog) with
            | Ok () -> ()
            | Error _ -> ())
          | _ -> ());
          convert r
        | exception Hctx.Tail_call prog_id -> (
          (* the old program's invocation ends here; leave its RCU section
             before entering the next program in the chain *)
          tail_called := true;
          Kernel_sim.Rcu.read_unlock w.World.kernel.Kernel.rcu ~context:"tail_call";
          if remaining_tail_calls = 0 then Finished 0L
          else
            (* resolve against the pinned snapshot, never the live world:
               an unload published since this invocation began must not be
               observable half-way through a chain *)
            match Epoch.find_prog snap prog_id with
            | None -> Finished (-22L)
            | Some next -> go next [||] [||] (remaining_tail_calls - 1))
      in
      let r = go prog elide0 spans0 max_tail_calls in
      (match static_bound with
      | Some (b, _) when not !tail_called ->
        Telemetry.Registry.observe tele_bound_observed !retired;
        if Int64.compare !retired (Int64.of_int b) > 0 then
          Telemetry.Registry.bump tele_bound_violations
      | _ -> ());
      r)
    | Pipeline.Rustlite_ext { ext; map_ids } -> (
      let kctx = { Rustlite.Kcrate.hctx; map_ids } in
      match
        Rustlite.Eval.run ?fuel ?wall_ns ~kctx
          ext.Rustlite.Toolchain.src.Rustlite.Toolchain.body
      with
      | Rustlite.Eval.Ret v ->
        Finished (match v with Rustlite.Value.V_int x -> x | _ -> 0L)
      | Rustlite.Eval.Oopsed r -> Crashed r
      | Rustlite.Eval.Terminated t -> outcome_of_termination t))
  in
  {
    outcome;
    health = Kernel.health w.World.kernel;
    trace = Hctx.trace_output hctx;
    resources_outstanding = Helpers.Resources.outstanding hctx.Hctx.resources;
    insns_retired = !retired;
  }
