(** [untenable]: a complete, executable reproduction of {e Kernel extension
    verification is untenable} (HotOS '23).

    The umbrella module re-exports every subsystem:

    - {!Tnum} — tristate numbers, the verifier's abstract value domain;
    - {!Telemetry} — counters, histograms, trace spans, and the ring-buffer
      trace sink every other subsystem reports into;
    - {!Hash} — SHA-256/HMAC, shared by the signing toolchain and the
      content-addressed verdict cache;
    - {!Kernel_sim} — the simulated kernel (guarded memory, RCU, refcounts,
      spinlocks, memory pool, virtual clock, oops machine);
    - {!Maps} — eBPF maps (array/hash/LRU/per-CPU/ringbuf);
    - {!Ebpf} — bytecode ISA, assembler, encoder, disassembler, CFG;
    - {!Bpf_verifier} — the in-kernel-style verifier with injectable
      historical bugs;
    - {!Analysis} — the worklist dataflow engine and the static passes the
      load pipeline runs between fixup and the verify gate (resource
      obligations, lock discipline, redundant-guard elision);
    - {!Runtime} — interpreter, closure JIT, and the runtime guards
      (watchdog, fuel, stack guard, destructor-list termination);
    - {!Helpers} — the helper-function table with its own bug database;
    - {!Callgraph} — the calibrated synthetic kernel call graph (Figure 3);
    - {!Kerndata} — the paper's datasets (Figures 2/4, Tables 1/2, §3.2);
    - {!Rustlite} — the proposed safe-language framework (typed AST,
      ownership checker, signing toolchain, RAII kernel crate);
    - {!Framework} — worlds, the staged load pipeline with its verdict
      cache, attach/dispatch with per-extension supervision (circuit
      breakers, quarantine, chaos injection), the exploit corpus, and the
      executable safety matrix;
    - {!Fuzz} — the differential fuzzing subsystem: a seeded program
      generator, an execution-mode conformance oracle, a divergence
      shrinker, and corpus persistence for replay.

    Quick start (see also [examples/quickstart.ml]):

    {[
      let world = Untenable.Framework.World.create_populated () in
      let prog = (* build with Untenable.Ebpf.Asm *) ... in
      match Untenable.Framework.Loader.load_ebpf world prog with
      | Ok loaded ->
        let report = Untenable.Framework.Invoke.run world loaded in
        Format.printf "%a@." Untenable.Framework.Loader.pp_outcome report.outcome
      | Error e -> Format.printf "%a@." Untenable.Framework.Loader.pp_load_error e
    ]} *)

module Tnum = Tnum
module Telemetry = Telemetry
module Hash = Hash
module Kernel_sim = Kernel_sim
module Maps = Maps
module Ebpf = Ebpf
module Bpf_verifier = Bpf_verifier
module Analysis = Analysis
module Runtime = Runtime
module Helpers = Helpers
module Callgraph = Callgraph
module Kerndata = Kerndata
module Rustlite = Rustlite
module Framework = Framework
module Fuzz = Fuzz

let version = "1.0.0"

let paper =
  "Jia, Sahu, Oswald, Williams, Le, Xu: Kernel extension verification is \
   untenable. HotOS '23. https://doi.org/10.1145/3593856.3595892"
