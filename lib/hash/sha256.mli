(** Self-contained SHA-256 / HMAC-SHA256, the shared crypto primitive behind
    extension signing ({!Rustlite.Sign}), content-addressed program digests
    ({!Ebpf.Program.digest}) and the load-path verdict cache
    ({!Framework.Verdict_cache}).  Dependency-free by design: one
    implementation, one set of bytes, everywhere. *)

val digest : string -> string
(** Raw 32-byte SHA-256 digest. *)

val to_hex : string -> string

val hex_digest : string -> string
(** [to_hex (digest msg)], the 64-char content address of [msg]. *)

val hmac : key:string -> string -> string
(** HMAC-SHA256, raw 32-byte MAC. *)
