(** Static cost & termination analysis (SCEV-lite).

    Infers per-loop trip counts over the verifier's interval domain (the
    elide pass's solver facts, reused), composes them with per-block
    instruction costs into a whole-program worst-case instruction bound,
    and emits the per-pc fuel-check window vector the interpreter and JIT
    use to batch fuel checks for proven-bounded programs.

    Soundness contract: for any program this pass reports
    [Bounded n], no single invocation can retire more than [n]
    instructions (helper-internal work and bpf-to-bpf callees force
    [Unbounded] instead of being estimated).  Over-approximation is
    expected; undercounting is a bug — [test/test_analysis.ml] holds a
    qcheck oracle comparing the static bound against retired-instruction
    counts under random chaos schedules. *)

val pass_name : string

type bound = Bounded of int | Unbounded

type loop_info = {
  head : int;          (** head block start pc *)
  body_blocks : int;   (** blocks in the natural-loop body *)
  reg : int option;    (** induction register, when inferred *)
  trips : int option;  (** sound upper bound on body executions *)
}

type result = {
  bound : bound;
  spans : int array;
      (** [spans.(pc)]: length (>= 1) of the straight-line run starting at
          [pc] that one up-front fuel check covers.  Never extends past a
          call (the callee may drain fuel mid-window) and never crosses a
          block boundary. *)
  loops : loop_info list;  (** ascending head pc *)
  findings : Finding.t list;
}

val pp_bound : Format.formatter -> bound -> unit

val cost_cap : int
(** Saturation point of the cost arithmetic: any total at or above this
    collapses to [Unbounded]. *)

val run : Ebpf.Insn.insn array -> Ebpf.Cfg.t -> result
