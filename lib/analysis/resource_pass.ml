(* Resource-obligation analysis: acquire/release pairing for the helper
   families Helpers.Resources tracks at runtime — sk refcounts, ringbuf
   reservations, spinlocks.

   Forward may-analysis.  A fact is the set of obligations some path into
   the program point still owes, each identified by the pc of the acquiring
   call and its family, plus the registers that MUST still hold the
   acquired pointer on every such path.  Join is union on obligations
   (report if ANY path leaks — exactly the runtime ground truth: that path
   leaks under Invoke and the §3.1 destructor list has to clean it) and
   intersection on the holder registers (a register is a holder only if it
   holds the pointer on all paths that owe the obligation).

   The holder set is what makes the pass null-aware: the acquire helpers
   return pointer-or-NULL, and the idiomatic clean program tests r0 and
   skips the release on the NULL arm.  On an edge that proves a holder
   register is zero, the acquiring call returned NULL on that path, so the
   obligation is vacuous there and is dropped — the clean idiom produces no
   finding, while an exit reachable with the pointer live still does.
   Must-holders make the drop sound: a register only in the set when every
   owing path agrees can never dismiss a real leak.

   The lattice is finite (at most one obligation per call site, holder sets
   bounded by the register file), so plain join converges without real
   widening. *)

module Cfg = Ebpf.Cfg
module Insn = Ebpf.Insn
module Proto = Helpers.Proto

let pass_name = "resource"

type family = Sock | Ringbuf | Lock

let family_to_string = function
  | Sock -> "sock ref"
  | Ringbuf -> "ringbuf reservation"
  | Lock -> "spinlock"

(* Which family a helper's Acquires/Locks effect creates, from its
   verifier-visible prototype alone. *)
let acquired_family (p : Proto.t) =
  if Proto.locks p then Some Lock
  else if Proto.acquires p then
    match p.Proto.ret with
    | Proto.Ret_sock_or_null -> Some Sock
    | Proto.Ret_mem_or_null _ -> Some Ringbuf
    | _ -> Some Sock
  else None

(* Which family a Releases/Unlocks effect discharges, from the released
   argument's type; also the argument's register (arg i lives in r{i+1}),
   so the release can prefer the obligation actually passed to it. *)
let released_family (p : Proto.t) =
  if Proto.unlocks p then Some (Lock, None)
  else
    match Proto.releases p with
    | None -> None
    | Some i ->
      let fam =
        match List.nth_opt p.Proto.args i with
        | Some Proto.Arg_sock -> Sock
        | Some Proto.Arg_ringbuf_mem -> Ringbuf
        | Some Proto.Arg_spin_lock -> Lock
        | _ -> Sock
      in
      Some (fam, Some (i + 1))

(* One outstanding obligation: where it was acquired, what it is, and which
   registers are guaranteed to still hold the acquired pointer. *)
type oblig = { apc : int; fam : family; regs : int list (* sorted *) }

module L = struct
  (* Sorted by (apc, fam); at most one entry per acquire site. *)
  type fact = oblig list

  let bottom = []
  let entry = []
  let equal = ( = )

  let join a b =
    let key o = (o.apc, o.fam) in
    let merged = Hashtbl.create 8 in
    List.iter (fun o -> Hashtbl.replace merged (key o) o) a;
    List.iter
      (fun o ->
        match Hashtbl.find_opt merged (key o) with
        | None -> Hashtbl.replace merged (key o) o
        | Some o' ->
          (* both paths owe it: a holder must hold on every path *)
          Hashtbl.replace merged (key o)
            { o with regs = List.filter (fun r -> List.mem r o'.regs) o.regs })
      b;
    Hashtbl.fold (fun _ o acc -> o :: acc) merged []
    |> List.sort (fun x y -> compare (key x) (key y))

  let widen ~prev:_ next = next
end

module Solver = Dataflow.Make (L)

let clobber r (fact : L.fact) =
  List.map (fun o -> { o with regs = List.filter (( <> ) r) o.regs }) fact

let alias ~dst ~src (fact : L.fact) =
  List.map
    (fun o ->
      if List.mem src o.regs then
        { o with regs = List.sort_uniq compare (dst :: o.regs) }
      else { o with regs = List.filter (( <> ) dst) o.regs })
    fact

let acquire pc fam (fact : L.fact) =
  (* the acquired pointer lands in r0 (locks hold nothing in a register) *)
  let regs = match fam with Lock -> [] | Sock | Ringbuf -> [ 0 ] in
  List.sort
    (fun x y -> compare (x.apc, x.fam) (y.apc, y.fam))
    ({ apc = pc; fam; regs } :: clobber 0 fact)

(* Discharge one obligation of the family: the one held in the released
   argument's register if the analysis still tracks it there, otherwise the
   most recent outstanding — LIFO, matching both Resources' cleanup order
   and the common pairing idiom. *)
let release ?reg fam (fact : L.fact) =
  let candidates = List.filter (fun o -> o.fam = fam) fact in
  match candidates with
  | [] -> (fact, false)
  | _ ->
    let newest =
      List.fold_left
        (fun best o ->
          match best with Some b when b.apc >= o.apc -> best | _ -> Some o)
        None candidates
    in
    let chosen =
      match reg with
      | Some r -> (
        match List.find_opt (fun o -> List.mem r o.regs) candidates with
        | Some o -> Some o
        | None -> newest)
      | None -> newest
    in
    (match chosen with
    | None -> (fact, false)
    | Some c ->
      ( List.filter (fun o -> not (o.apc = c.apc && o.fam = c.fam)) fact,
        true ))

let transfer_insn pc insn (fact : L.fact) =
  match insn with
  | Insn.Alu { op = Insn.Mov; width = Insn.W64; dst; src = Insn.Reg s } ->
    alias ~dst ~src:s fact
  | Insn.Alu { dst; _ } -> clobber dst fact
  | Insn.Ld_imm64 (dst, _) | Insn.Ld_map_fd (dst, _) -> clobber dst fact
  | Insn.Ldx { dst; _ } -> clobber dst fact
  | Insn.Atomic { aop; src; fetch; _ } ->
    let fact =
      if fetch || aop = Insn.A_xchg then clobber src fact else fact
    in
    if aop = Insn.A_cmpxchg then clobber 0 fact else fact
  | Insn.Call id -> (
    match Helpers.Registry.find id with
    | None -> clobber 0 fact
    | Some def -> (
      match acquired_family def.Helpers.Registry.proto with
      | Some fam -> acquire pc fam fact
      | None -> (
        match released_family def.Helpers.Registry.proto with
        | Some (fam, reg) -> clobber 0 (fst (release ?reg fam fact))
        | None -> clobber 0 fact)))
  | Insn.Call_sub _ -> clobber 0 fact
  | Insn.St _ | Insn.Stx _ | Insn.Jmp _ | Insn.Ja _ | Insn.Exit -> fact

let transfer insns (b : Cfg.block) fact =
  Dataflow.fold_block insns b ~init:fact ~f:transfer_insn

(* Null-awareness: the edge of a `if (rX == 0)` test that proves rX zero
   carries no obligation whose pointer must be in rX — the acquire returned
   NULL on that path. *)
let edge_refine insns (cfg : Cfg.t) ~from ~into (fact : L.fact) =
  match Hashtbl.find_opt cfg.Cfg.blocks from with
  | None -> fact
  | Some b -> (
    match insns.(b.Cfg.end_pc) with
    | Insn.Jmp
        { cond = (Insn.Eq | Insn.Ne) as cond; width = Insn.W64; dst;
          src = Insn.Imm 0; off } ->
      let tpc = b.Cfg.end_pc + 1 + off and fpc = b.Cfg.end_pc + 1 in
      if tpc = fpc then fact
      else
        let null_edge =
          match cond with
          | Insn.Eq -> into = tpc && into <> fpc
          | _ -> into = fpc && into <> tpc
        in
        if null_edge then
          List.filter
            (fun o -> o.fam = Lock || not (List.mem dst o.regs))
            fact
        else fact
    | _ -> fact)

(* Replay each reachable block from its fixed in-fact and report:
   - an obligation still outstanding when a path terminates (Exit, or a
     block that falls off the end of the program) — the leak;
   - a release with nothing outstanding to release — the double free the
     runtime would refuse. *)
let run (insns : Insn.insn array) (cfg : Cfg.t) : Finding.t list =
  let solved =
    Solver.solve cfg ~transfer:(transfer insns)
      ~edge_refine:(edge_refine insns cfg)
  in
  let live = Cfg.reachable cfg in
  let findings = ref [] in
  let leaked = Hashtbl.create 8 in (* dedup by (acquire_pc, family) *)
  let emit f = findings := f :: !findings in
  let report_leaks ~at (fact : L.fact) =
    List.iter
      (fun o ->
        if not (Hashtbl.mem leaked (o.apc, o.fam)) then begin
          Hashtbl.replace leaked (o.apc, o.fam) ();
          emit
            (Finding.make ~pass:pass_name ~pc:at ~severity:Finding.Error
               (Printf.sprintf
                  "%s acquired at insn %d can reach exit without a release"
                  (family_to_string o.fam) o.apc))
        end)
      fact
  in
  List.iter
    (fun (b : Cfg.block) ->
      if Hashtbl.mem live b.Cfg.start_pc then begin
        let final =
          Dataflow.fold_block insns b
            ~init:(Solver.in_fact solved b.Cfg.start_pc)
            ~f:(fun pc insn fact ->
              (match insn with
              | Insn.Call id -> (
                match Helpers.Registry.find id with
                | None -> ()
                | Some def -> (
                  match acquired_family def.Helpers.Registry.proto with
                  | Some _ -> ()
                  | None -> (
                    match released_family def.Helpers.Registry.proto with
                    | Some (fam, reg) ->
                      let _, found = release ?reg fam fact in
                      if not found then
                        emit
                          (Finding.make ~pass:pass_name ~pc
                             ~severity:Finding.Warning
                             (Printf.sprintf
                                "release of a %s with none outstanding on \
                                 some path"
                                (family_to_string fam)))
                    | None -> ())))
              | Insn.Exit -> report_leaks ~at:pc fact
              | _ -> ());
              transfer_insn pc insn fact)
        in
        (* a block with no successors that does not end in Exit falls off
           the end of the program: that path terminates too *)
        if
          Cfg.succs_of cfg b.Cfg.start_pc = []
          && insns.(b.Cfg.end_pc) <> Insn.Exit
        then report_leaks ~at:b.Cfg.end_pc final
      end)
    (Cfg.blocks_sorted cfg);
  Finding.sort !findings
