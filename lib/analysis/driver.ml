(* The pass driver: which passes run, what they produced, and the
   configuration signature the verdict cache folds into its fingerprint so
   toggling a pass (or changing a helper's safety flags) invalidates cached
   results. *)

module Cfg = Ebpf.Cfg
module Insn = Ebpf.Insn

type unbounded_policy = Warn | Deny

type config = {
  resource : bool;  (* acquire/release pairing *)
  lock : bool;      (* spinlock discipline *)
  elide : bool;     (* redundant-guard elision *)
  bound : bool;     (* static cost / termination analysis *)
  max_cost : int option;
      (* admission budget: reject programs whose worst-case instruction
         bound exceeds this (None = no budget) *)
  on_unbounded : unbounded_policy;
      (* what admission does with an Unbounded verdict: Warn keeps the
         runtime guards as the only line of defence (the paper's
         position), Deny rejects at load *)
}

let default_config =
  { resource = true; lock = true; elide = true; bound = true;
    max_cost = None; on_unbounded = Warn }

let all_off =
  { resource = false; lock = false; elide = false; bound = false;
    max_cost = None; on_unbounded = Warn }

type report = {
  findings : Finding.t list;  (* all passes, worst first *)
  elide : int array;  (* per-pc resolved jump target, -1 = keep the guard *)
  elided : int;       (* how many guards the elide pass resolved *)
  cost : Bound_pass.result option;  (* Some iff the bound pass ran *)
  passes_run : string list;
}

let errors r =
  List.filter (fun f -> f.Finding.severity = Finding.Error) r.findings

(* The analysis-relevant configuration, serialized for cache fingerprints:
   enabled passes plus every helper's effect/safety flags (the facts the
   passes read from the registry — flip one and cached findings are
   stale). *)
let config_signature (c : config) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "passes:%b,%b,%b,%b\n" c.resource c.lock c.elide c.bound);
  Buffer.add_string buf
    (Printf.sprintf "budget:%s,%s\n"
       (match c.max_cost with None -> "-" | Some m -> string_of_int m)
       (match c.on_unbounded with Warn -> "warn" | Deny -> "deny"));
  List.iter
    (fun (d : Helpers.Registry.def) ->
      let p = d.Helpers.Registry.proto in
      Buffer.add_string buf
        (Printf.sprintf "helper:%d:%b:%b:%b:%b:%b:%s\n" d.Helpers.Registry.id
           (Helpers.Proto.may_sleep p) (Helpers.Proto.unbounded p)
           (Helpers.Proto.acquires p) (Helpers.Proto.locks p)
           (Helpers.Proto.unlocks p)
           (match Helpers.Proto.releases p with
           | None -> "-"
           | Some i -> string_of_int i)))
    Helpers.Registry.defs;
  Buffer.contents buf

(* ---- telemetry ---- *)

let tele_runs = Telemetry.Registry.counter "analysis.runs"
let tele_passes = Telemetry.Registry.counter "analysis.passes"
let tele_findings = Telemetry.Registry.counter "analysis.findings"
let tele_errors = Telemetry.Registry.counter "analysis.errors"
let tele_elisions = Telemetry.Registry.counter "analysis.elisions"
let tele_bounded = Telemetry.Registry.counter "analysis.bound.bounded"
let tele_unbounded = Telemetry.Registry.counter "analysis.bound.unbounded"
let tele_loops = Telemetry.Registry.counter "analysis.bound.loops"

let analyze ?(config = default_config) (insns : Insn.insn array) : report =
  Telemetry.Registry.bump tele_runs;
  let cfg = Cfg.build insns in
  let passes = ref [] in
  let run_pass name f =
    passes := name :: !passes;
    Telemetry.Registry.bump tele_passes;
    f ()
  in
  let resource_findings =
    if config.resource then run_pass Resource_pass.pass_name (fun () ->
        Resource_pass.run insns cfg)
    else []
  in
  let lock_findings =
    if config.lock then run_pass Lock_pass.pass_name (fun () ->
        Lock_pass.run insns cfg)
    else []
  in
  let elide_findings, elide, elided =
    if config.elide then
      run_pass Elide_pass.pass_name (fun () ->
          let r = Elide_pass.run insns cfg in
          (r.Elide_pass.findings, r.Elide_pass.elide, r.Elide_pass.elided))
    else ([], Array.make (Array.length insns) (-1), 0)
  in
  let bound_findings, cost =
    if config.bound then
      run_pass Bound_pass.pass_name (fun () ->
          let r = Bound_pass.run insns cfg in
          (match r.Bound_pass.bound with
          | Bound_pass.Bounded _ -> Telemetry.Registry.bump tele_bounded
          | Bound_pass.Unbounded -> Telemetry.Registry.bump tele_unbounded);
          Telemetry.Registry.incr tele_loops
            ~n:(List.length r.Bound_pass.loops);
          (r.Bound_pass.findings, Some r))
    else ([], None)
  in
  let findings =
    Finding.sort
      (resource_findings @ lock_findings @ elide_findings @ bound_findings)
  in
  Telemetry.Registry.incr tele_findings ~n:(List.length findings);
  Telemetry.Registry.incr tele_errors
    ~n:(List.length (List.filter (fun f -> f.Finding.severity = Finding.Error) findings));
  Telemetry.Registry.incr tele_elisions ~n:elided;
  { findings; elide; elided; cost; passes_run = List.rev !passes }

let pp_report ppf r =
  Format.fprintf ppf "%d finding(s), %d guard(s) elided%s, passes: %s"
    (List.length r.findings) r.elided
    (match r.cost with
    | Some c ->
      Format.asprintf ", bound %a" Bound_pass.pp_bound c.Bound_pass.bound
    | None -> "")
    (String.concat "," r.passes_run)
