(* The pass driver: which passes run, what they produced, and the
   configuration signature the verdict cache folds into its fingerprint so
   toggling a pass (or changing a helper's safety flags) invalidates cached
   results. *)

module Cfg = Ebpf.Cfg
module Insn = Ebpf.Insn

type config = {
  resource : bool;  (* acquire/release pairing *)
  lock : bool;      (* spinlock discipline *)
  elide : bool;     (* redundant-guard elision *)
}

let default_config = { resource = true; lock = true; elide = true }
let all_off = { resource = false; lock = false; elide = false }

type report = {
  findings : Finding.t list;  (* all passes, worst first *)
  elide : int array;  (* per-pc resolved jump target, -1 = keep the guard *)
  elided : int;       (* how many guards the elide pass resolved *)
  passes_run : string list;
}

let errors r =
  List.filter (fun f -> f.Finding.severity = Finding.Error) r.findings

(* The analysis-relevant configuration, serialized for cache fingerprints:
   enabled passes plus every helper's effect/safety flags (the facts the
   passes read from the registry — flip one and cached findings are
   stale). *)
let config_signature (c : config) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "passes:%b,%b,%b\n" c.resource c.lock c.elide);
  List.iter
    (fun (d : Helpers.Registry.def) ->
      let p = d.Helpers.Registry.proto in
      Buffer.add_string buf
        (Printf.sprintf "helper:%d:%b:%b:%b:%b:%b:%s\n" d.Helpers.Registry.id
           (Helpers.Proto.may_sleep p) (Helpers.Proto.unbounded p)
           (Helpers.Proto.acquires p) (Helpers.Proto.locks p)
           (Helpers.Proto.unlocks p)
           (match Helpers.Proto.releases p with
           | None -> "-"
           | Some i -> string_of_int i)))
    Helpers.Registry.defs;
  Buffer.contents buf

(* ---- telemetry ---- *)

let tele_runs = Telemetry.Registry.counter "analysis.runs"
let tele_passes = Telemetry.Registry.counter "analysis.passes"
let tele_findings = Telemetry.Registry.counter "analysis.findings"
let tele_errors = Telemetry.Registry.counter "analysis.errors"
let tele_elisions = Telemetry.Registry.counter "analysis.elisions"

let analyze ?(config = default_config) (insns : Insn.insn array) : report =
  Telemetry.Registry.bump tele_runs;
  let cfg = Cfg.build insns in
  let passes = ref [] in
  let run_pass name f =
    passes := name :: !passes;
    Telemetry.Registry.bump tele_passes;
    f ()
  in
  let resource_findings =
    if config.resource then run_pass Resource_pass.pass_name (fun () ->
        Resource_pass.run insns cfg)
    else []
  in
  let lock_findings =
    if config.lock then run_pass Lock_pass.pass_name (fun () ->
        Lock_pass.run insns cfg)
    else []
  in
  let elide_findings, elide, elided =
    if config.elide then
      run_pass Elide_pass.pass_name (fun () ->
          let r = Elide_pass.run insns cfg in
          (r.Elide_pass.findings, r.Elide_pass.elide, r.Elide_pass.elided))
    else ([], Array.make (Array.length insns) (-1), 0)
  in
  let findings =
    Finding.sort (resource_findings @ lock_findings @ elide_findings)
  in
  Telemetry.Registry.incr tele_findings ~n:(List.length findings);
  Telemetry.Registry.incr tele_errors
    ~n:(List.length (List.filter (fun f -> f.Finding.severity = Finding.Error) findings));
  Telemetry.Registry.incr tele_elisions ~n:elided;
  { findings; elide; elided; passes_run = List.rev !passes }

let pp_report ppf r =
  Format.fprintf ppf "%d finding(s), %d guard(s) elided, passes: %s"
    (List.length r.findings) r.elided
    (String.concat "," r.passes_run)
