(* A generic worklist dataflow engine over Ebpf.Cfg.

   The lattice is supplied as a module (join-semilattice with a widening
   hook); the engine computes per-block in/out facts to a fixpoint, forward
   or backward.  Widening is applied at loop heads (targets of back edges in
   the traversal direction) once a block has been re-joined more than
   [widen_delay] times, so infinite-height lattices — the register-state
   domain reuses Tnum plus 64-bit bounds — still terminate.

   Branch-sensitive passes refine the fact flowing along each edge with the
   optional [edge_refine] hook (the fall-through and taken edges of a
   conditional jump learn different bounds); passes that only care about
   call effects leave it out. *)

module Cfg = Ebpf.Cfg

module type LATTICE = sig
  type fact

  val bottom : fact
  (** No information: the in-fact of a block no path has reached yet. *)

  val entry : fact
  (** The boundary fact: at the CFG entry (forward) or at every exit block
      (backward). *)

  val equal : fact -> fact -> bool

  val join : fact -> fact -> fact
  (** Least upper bound; must be monotone w.r.t. the implied order. *)

  val widen : prev:fact -> fact -> fact
  (** Accelerate convergence at loop heads.  [fun ~prev:_ f -> f] is fine
      for finite lattices; infinite-height ones must jump moving components
      to their extremes. *)
end

type direction = Forward | Backward

module Make (L : LATTICE) = struct
  type result = {
    block_in : (int, L.fact) Hashtbl.t;
      (* fact at block start (forward) / block end (backward) *)
    block_out : (int, L.fact) Hashtbl.t;
    iterations : int;  (* block transfer evaluations until fixpoint *)
    converged : bool;  (* false only if the safety cap stopped the solve *)
  }

  let in_fact r pc = Option.value ~default:L.bottom (Hashtbl.find_opt r.block_in pc)
  let out_fact r pc = Option.value ~default:L.bottom (Hashtbl.find_opt r.block_out pc)

  let solve ?(dir = Forward) ?(widen_delay = 2) ?max_iterations
      ?(edge_refine = fun ~from:_ ~into:_ fact -> fact) (cfg : Cfg.t)
      ~(transfer : Cfg.block -> L.fact -> L.fact) : result =
    let blocks = Cfg.blocks_sorted cfg in
    let preds = Cfg.preds cfg in
    (* Edges in traversal direction: forward uses succs, backward preds. *)
    let edges_into pc =
      match dir with
      | Forward -> Option.value ~default:[] (Hashtbl.find_opt preds pc)
      | Backward -> Cfg.succs_of cfg pc
    in
    let edges_out_of pc =
      match dir with
      | Forward -> Cfg.succs_of cfg pc
      | Backward -> Option.value ~default:[] (Hashtbl.find_opt preds pc)
    in
    (* Boundary blocks get L.entry joined into their in-fact. *)
    let is_boundary pc =
      match dir with
      | Forward -> pc = cfg.Cfg.entry
      | Backward -> Cfg.succs_of cfg pc = []
    in
    (* Loop heads in traversal direction: widen here.  Backward traversal
       sees forward back edges reversed, so the head is the edge source. *)
    let loop_heads = Hashtbl.create 8 in
    List.iter
      (fun (from, into) ->
        Hashtbl.replace loop_heads
          (match dir with Forward -> into | Backward -> from)
          ())
      (Cfg.back_edges cfg);
    let block_in = Hashtbl.create 16 in
    let block_out = Hashtbl.create 16 in
    let visits = Hashtbl.create 16 in
    let order =
      match dir with Forward -> blocks | Backward -> List.rev blocks
    in
    let queued = Hashtbl.create 16 in
    let queue = Queue.create () in
    let enqueue pc =
      if not (Hashtbl.mem queued pc) then begin
        Hashtbl.replace queued pc ();
        Queue.add pc queue
      end
    in
    List.iter (fun (b : Cfg.block) -> enqueue b.Cfg.start_pc) order;
    let cap =
      match max_iterations with
      | Some m -> m
      | None -> 64 * (1 + List.length blocks) * (widen_delay + 2)
    in
    let iterations = ref 0 in
    let converged = ref true in
    (try
       while not (Queue.is_empty queue) do
         let pc = Queue.pop queue in
         Hashtbl.remove queued pc;
         match Hashtbl.find_opt cfg.Cfg.blocks pc with
         | None -> ()
         | Some b ->
           incr iterations;
           if !iterations > cap then begin
             converged := false;
             raise Exit
           end;
           let flowed =
             List.fold_left
               (fun acc p ->
                 match Hashtbl.find_opt block_out p with
                 | None -> acc
                 | Some f -> L.join acc (edge_refine ~from:p ~into:pc f))
               L.bottom (edges_into pc)
           in
           let inb = if is_boundary pc then L.join L.entry flowed else flowed in
           let n = 1 + Option.value ~default:0 (Hashtbl.find_opt visits pc) in
           Hashtbl.replace visits pc n;
           let inb =
             if n > widen_delay && Hashtbl.mem loop_heads pc then
               match Hashtbl.find_opt block_in pc with
               | Some prev -> L.widen ~prev inb
               | None -> inb
             else inb
           in
           Hashtbl.replace block_in pc inb;
           let out = transfer b inb in
           let changed =
             match Hashtbl.find_opt block_out pc with
             | Some old -> not (L.equal old out)
             | None -> true
           in
           if changed then begin
             Hashtbl.replace block_out pc out;
             List.iter enqueue (edges_out_of pc)
           end
       done
     with Exit -> ());
    { block_in; block_out; iterations = !iterations; converged = !converged }
end

(* Walk the instructions of one block, threading a per-insn accumulator —
   the shape every pass's transfer function and reporting replay share. *)
let fold_block (insns : Ebpf.Insn.insn array) (b : Cfg.block) ~init ~f =
  let acc = ref init in
  for pc = b.Cfg.start_pc to min b.Cfg.end_pc (Array.length insns - 1) do
    acc := f pc insns.(pc) !acc
  done;
  !acc
