(* Redundant-guard elision.

   A forward abstract interpretation over the verifier's own register-state
   domain (Reg_state: tnum + signed/unsigned 64-bit bounds), one state per
   register, joined pointwise at block boundaries and widened at loop
   heads.  Where the facts prove a conditional jump can only go one way —
   a bounds check dominated by an earlier check, a null test of a constant,
   a range already established by the surrounding arithmetic — the pass
   records the resolved target in a per-pc elision vector that the
   interpreter and JIT consume to skip the dynamic test.

   Soundness discipline: a branch is resolved with the verifier's own
   [branch_taken], and only for W64 jumps on Scalar facts (pointer rtypes
   carry concrete addresses the bounds do not describe).  Constant facts
   are computed with the interpreter's exact Int64 semantics — including
   div-by-zero -> 0, mod-by-zero -> dividend, and shift-count masking —
   and everything the transfer functions cannot bound exactly collapses to
   an unknown scalar, which [branch_taken] can never resolve.  Over-
   approximate facts therefore only ever keep a guard, never drop a live
   one. *)

module Cfg = Ebpf.Cfg
module Insn = Ebpf.Insn
module Reg_state = Bpf_verifier.Reg_state
module Verifier = Bpf_verifier.Verifier

let pass_name = "elide"

let n_regs = 11

let entry_regs () =
  let regs = Array.make n_regs Reg_state.not_init in
  regs.(1) <- Reg_state.pointer Reg_state.Ptr_ctx;
  regs.(10) <- Reg_state.pointer Reg_state.Ptr_stack;
  regs

module L = struct
  type fact = Bot | Regs of Reg_state.t array

  let bottom = Bot
  let entry = Regs (entry_regs ())

  let equal a b =
    match (a, b) with
    | Bot, Bot -> true
    | Regs x, Regs y -> x = y
    | _ -> false

  let join a b =
    match (a, b) with
    | Bot, f | f, Bot -> f
    | Regs x, Regs y -> Regs (Array.init n_regs (fun i -> Reg_state.join x.(i) y.(i)))

  let widen ~prev next =
    match (prev, next) with
    | Regs p, Regs n ->
      Regs (Array.init n_regs (fun i -> Reg_state.widen ~prev:p.(i) n.(i)))
    | _ -> next
end

module Solver = Dataflow.Make (L)

let u32 = Int64.logand 0xffff_ffffL
let sext32 x = Int64.shift_right (Int64.shift_left x 32) 32

(* Exact 64-bit ALU, byte-for-byte the interpreter's semantics. *)
let exact64 (op : Insn.alu_op) d s =
  match op with
  | Insn.Add -> Int64.add d s
  | Insn.Sub -> Int64.sub d s
  | Insn.Mul -> Int64.mul d s
  | Insn.Div -> if Int64.equal s 0L then 0L else Int64.unsigned_div d s
  | Insn.Mod -> if Int64.equal s 0L then d else Int64.unsigned_rem d s
  | Insn.Or -> Int64.logor d s
  | Insn.And -> Int64.logand d s
  | Insn.Xor -> Int64.logxor d s
  | Insn.Mov -> s
  | Insn.Neg -> Int64.neg d
  | Insn.Lsh -> Int64.shift_left d (Int64.to_int (Int64.logand s 63L))
  | Insn.Rsh -> Int64.shift_right_logical d (Int64.to_int (Int64.logand s 63L))
  | Insn.Arsh -> Int64.shift_right d (Int64.to_int (Int64.logand s 63L))

(* Exact 32-bit ALU: low words in, zero-extended result out. *)
let exact32 (op : Insn.alu_op) d s =
  let d32 = u32 d and s32 = u32 s in
  let r32 =
    match op with
    | Insn.Add -> Int64.add d32 s32
    | Insn.Sub -> Int64.sub d32 s32
    | Insn.Mul -> Int64.mul d32 s32
    | Insn.Div -> if Int64.equal s32 0L then 0L else Int64.unsigned_div d32 s32
    | Insn.Mod -> if Int64.equal s32 0L then d32 else Int64.unsigned_rem d32 s32
    | Insn.Or -> Int64.logor d32 s32
    | Insn.And -> Int64.logand d32 s32
    | Insn.Xor -> Int64.logxor d32 s32
    | Insn.Mov -> s32
    | Insn.Neg -> Int64.neg d32
    | Insn.Lsh -> Int64.shift_left d32 (Int64.to_int (Int64.logand s32 31L))
    | Insn.Rsh ->
      Int64.shift_right_logical (u32 d32) (Int64.to_int (Int64.logand s32 31L))
    | Insn.Arsh -> Int64.shift_right (sext32 d32) (Int64.to_int (Int64.logand s32 31L))
  in
  u32 r32

(* The 32-bit result set is [0, 2^32): the widest sound fact for a W32 op
   the transfers cannot track exactly. *)
let unknown32 = Reg_state.zext32 Reg_state.unknown_scalar

let operand regs = function
  | Insn.Reg r -> regs.(r)
  | Insn.Imm i -> Reg_state.const_scalar (Int64.of_int i)

let alu_result (op : Insn.alu_op) (width : Insn.width) d s =
  let open Reg_state in
  match width with
  | Insn.W64 -> (
    match (const_value d, const_value s) with
    | _ when op = Insn.Mov -> s (* copies anything, pointers included *)
    | Some cd, Some cs -> const_scalar (exact64 op cd cs)
    | Some cd, _ when op = Insn.Neg -> const_scalar (Int64.neg cd)
    | _ when not (is_scalar d && (is_scalar s || op = Insn.Neg)) ->
      unknown_scalar (* pointer arithmetic: an address, untracked *)
    | _ -> (
      match op with
      | Insn.Add -> scalar_add d s
      | Insn.Sub -> scalar_sub d s
      | Insn.Mul -> scalar_mul d s
      | Insn.And -> scalar_and d s
      | Insn.Or -> scalar_or d s
      | Insn.Xor -> scalar_xor d s
      | Insn.Neg -> scalar_neg d
      | Insn.Lsh | Insn.Rsh | Insn.Arsh -> (
        match const_value s with
        | Some c ->
          let shift = Int64.to_int (Int64.logand c 63L) in
          let sop =
            match op with
            | Insn.Lsh -> `Lsh
            | Insn.Rsh -> `Rsh
            | _ -> `Arsh
          in
          scalar_shift_const sop d shift
        | None -> unknown_scalar)
      | Insn.Div -> (
        match const_value s with
        | Some c -> scalar_div_const d c
        | None -> unknown_scalar)
      | Insn.Mod -> unknown_scalar (* div bounds do NOT bound a remainder *)
      | Insn.Mov -> s))
  | Insn.W32 -> (
    match (const_value d, const_value s) with
    | _ when op = Insn.Mov ->
      if is_scalar s then zext32 s else unknown32
    | Some cd, Some cs -> const_scalar (exact32 op cd cs)
    | Some cd, _ when op = Insn.Neg -> const_scalar (exact32 Insn.Neg cd 0L)
    | _ -> unknown32)

let transfer_insn regs pc insn =
  ignore pc;
  match insn with
  | Insn.Alu { op; width; dst; src } ->
    regs.(dst) <- alu_result op width regs.(dst) (operand regs src)
  | Insn.Ld_imm64 (dst, v) -> regs.(dst) <- Reg_state.const_scalar v
  | Insn.Ld_map_fd (dst, fd) ->
    (* runtime value is the raw fd, but treat it as a handle so no branch
       on a map pointer is ever elided *)
    regs.(dst) <- Reg_state.pointer (Reg_state.Map_handle { map_id = fd })
  | Insn.Ldx { dst; _ } -> regs.(dst) <- Reg_state.unknown_scalar
  | Insn.St _ | Insn.Stx _ -> ()
  | Insn.Atomic { aop; src; fetch; _ } ->
    if fetch || aop = Insn.A_xchg then regs.(src) <- Reg_state.unknown_scalar;
    if aop = Insn.A_cmpxchg then regs.(0) <- Reg_state.unknown_scalar
  | Insn.Call _ | Insn.Call_sub _ ->
    (* interpreter and JIT write only r0; frames below use their own
       register file, so r1..r9 survive the call *)
    regs.(0) <- Reg_state.unknown_scalar
  | Insn.Jmp _ | Insn.Ja _ | Insn.Exit -> ()

let transfer insns (b : Cfg.block) (fact : L.fact) =
  match fact with
  | L.Bot -> L.Bot
  | L.Regs regs ->
    let regs = Array.copy regs in
    for pc = b.Cfg.start_pc to min b.Cfg.end_pc (Array.length insns - 1) do
      transfer_insn regs pc insns.(pc)
    done;
    L.Regs regs

(* The constant the jump compares against, if the analysis knows it. *)
let jmp_const regs = function
  | Insn.Imm i -> Some (Int64.of_int i)
  | Insn.Reg r -> Reg_state.const_value regs.(r)

(* Sharpen the fact flowing along one CFG edge with what the branch on the
   source block's last insn proves — the verifier's own refinement. *)
let edge_refine insns (cfg : Cfg.t) ~from ~into (fact : L.fact) =
  match fact with
  | L.Bot -> L.Bot
  | L.Regs regs -> (
    match Hashtbl.find_opt cfg.Cfg.blocks from with
    | None -> fact
    | Some b -> (
      match insns.(b.Cfg.end_pc) with
      | Insn.Jmp { cond; width = Insn.W64; dst; src; off } -> (
        let tpc = b.Cfg.end_pc + 1 + off and fpc = b.Cfg.end_pc + 1 in
        if tpc = fpc then fact
        else
          match jmp_const regs src with
          | Some c when Reg_state.is_scalar regs.(dst) ->
            let taken =
              if into = tpc then Some true
              else if into = fpc then Some false
              else None
            in
            (match taken with
            | None -> fact
            | Some taken ->
              let regs = Array.copy regs in
              regs.(dst) <-
                Verifier.refine_against_const cond regs.(dst) c ~taken;
              L.Regs regs)
          | _ -> fact)
      | _ -> fact))

type result = {
  findings : Finding.t list;
  elide : int array;   (* per-pc resolved jump target, -1 = keep the guard *)
  elided : int;
}

let run (insns : Insn.insn array) (cfg : Cfg.t) : result =
  let solved =
    Solver.solve cfg ~transfer:(transfer insns)
      ~edge_refine:(edge_refine insns cfg)
  in
  let live = Cfg.reachable cfg in
  let n = Array.length insns in
  let elide = Array.make n (-1) in
  let findings = ref [] in
  let elided = ref 0 in
  List.iter
    (fun (b : Cfg.block) ->
      if Hashtbl.mem live b.Cfg.start_pc && solved.Solver.converged then
        match Solver.in_fact solved b.Cfg.start_pc with
        | L.Bot -> ()
        | L.Regs regs0 ->
          let regs = Array.copy regs0 in
          for pc = b.Cfg.start_pc to b.Cfg.end_pc do
            (match insns.(pc) with
            | Insn.Jmp { cond; width = Insn.W64; dst; src; off } -> (
              match jmp_const regs src with
              | Some c when Reg_state.is_scalar regs.(dst) -> (
                match Verifier.branch_taken cond regs.(dst) c with
                | Some taken ->
                  let target = if taken then pc + 1 + off else pc + 1 in
                  if target >= 0 && target <= n then begin
                    elide.(pc) <- target;
                    incr elided;
                    findings :=
                      Finding.make ~pass:pass_name ~pc ~severity:Finding.Info
                        (Printf.sprintf
                           "guard always %s: %s proves it; dynamic check \
                            elided"
                           (if taken then "taken" else "fall-through")
                           (Format.asprintf "%a" Reg_state.pp regs.(dst)))
                      :: !findings
                  end
                | None -> ())
              | _ -> ())
            | _ -> ());
            transfer_insn regs pc insns.(pc)
          done)
    (Cfg.blocks_sorted cfg);
  { findings = Finding.sort !findings; elide; elided = !elided }
