(* A single diagnostic produced by a lint pass: which pass, where, how bad,
   and a human-readable message.  Findings never block a load by themselves
   — the verify gate still decides — but the pipeline carries and caches
   them so callers (CLI `lint`, dispatch policies) can act on them. *)

type severity = Error | Warning | Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

type t = {
  pass : string;      (* "resource" | "lock" | "elide" *)
  pc : int;           (* instruction the finding anchors to *)
  severity : severity;
  message : string;
}

let make ~pass ~pc ~severity message = { pass; pc; severity; message }

(* Deterministic report order: worst first, then by location. *)
let compare a b =
  match Stdlib.compare (severity_rank a.severity) (severity_rank b.severity) with
  | 0 -> (
    match Stdlib.compare a.pc b.pc with
    | 0 -> Stdlib.compare (a.pass, a.message) (b.pass, b.message)
    | c -> c)
  | c -> c

let sort fs = List.sort_uniq compare fs

let pp ppf f =
  Format.fprintf ppf "%s: [%s] insn %d: %s"
    (severity_to_string f.severity)
    f.pass f.pc f.message

let to_string f = Format.asprintf "%a" pp f
