(* Static cost & termination analysis (SCEV-lite).

   A whole-program worst-case instruction bound built from three pieces:

   1. the interval facts the elide pass already computes (a forward
      abstract interpretation over the verifier's Reg_state domain, with
      widening at loop heads), reused verbatim — the loop-entry value of
      an induction register is read off the preheader edge, which is never
      widened, so it stays exact;

   2. natural-loop trip counts: for each DFS back edge, the loop body is
      the head plus everything that reaches the tail without passing the
      head.  A loop is bounded when it has a single back edge, a single
      entry, a monotone induction register (exactly one write in the whole
      body, a W64 add/sub of a nonzero immediate, sitting in the head or
      tail block so it executes exactly once per circuit) and an exit test
      (a W64 conditional jump against an immediate, in the head or tail
      block, with exactly one successor outside the body).  Every formula
      over-approximates — slack is fine, undercounting never is — and
      anything the rules cannot prove collapses to [Unbounded];

   3. per-block instruction costs composed through the loop nest: each
      block's length times the product of the trip counts of every loop
      containing it, all in saturating arithmetic.

   The per-pc [spans] vector is the hot-path payoff: [spans.(pc)] is the
   length of the longest straight-line run starting at [pc] that a single
   up-front fuel check can cover.  A window never extends past a helper
   call or bpf-to-bpf call (the callee may re-enter the interpreter on the
   same fuel account mid-window), though it may end on one.  Programs this
   pass proves [Bounded] let the interpreter and JIT hoist the per-insn
   fuel check to window entry; fuel is still *charged* per retired
   instruction, so trip points, retired counts and virtual-clock values
   are bit-identical to the unbatched path.

   Anything that escapes the cost model — a bpf-to-bpf call (callee cost
   not modelled) or a helper whose [Proto.unbounded] flag is set
   (bpf_loop-style callback iteration drains fuel the caller's instruction
   count does not see) — forces [Unbounded]. *)

module Cfg = Ebpf.Cfg
module Insn = Ebpf.Insn
module Reg_state = Bpf_verifier.Reg_state

let pass_name = "bound"

type bound = Bounded of int | Unbounded

type loop_info = {
  head : int;          (* head block start pc *)
  body_blocks : int;   (* blocks in the natural-loop body *)
  reg : int option;    (* induction register, when inferred *)
  trips : int option;  (* sound upper bound on body executions *)
}

type result = {
  bound : bound;
  spans : int array;  (* per-pc fuel-check window length (>= 1) *)
  loops : loop_info list;  (* ascending head pc *)
  findings : Finding.t list;
}

let pp_bound ppf = function
  | Bounded n -> Format.fprintf ppf "%d" n
  | Unbounded -> Format.fprintf ppf "unbounded"

(* Saturating arithmetic: anything at or above [cost_cap] means "too big
   to be a useful budget" and collapses to Unbounded. *)
let cost_cap = max_int / 4

let sat_add a b = if a >= cost_cap - b then cost_cap else a + b
let sat_mul a b =
  if a = 0 || b = 0 then 0 else if a >= cost_cap / b then cost_cap else a * b

let is_call = function Insn.Call _ | Insn.Call_sub _ -> true | _ -> false

(* Window lengths: scanning each block backwards, a call resets the run to
   1 (so a window may *end* on a call but never reach past it) and the
   block's last insn starts a fresh run (control transfers end windows). *)
let compute_spans insns (cfg : Cfg.t) =
  let n = Array.length insns in
  let spans = Array.make n 1 in
  List.iter
    (fun (b : Cfg.block) ->
      let e = min b.Cfg.end_pc (n - 1) in
      for pc = e downto b.Cfg.start_pc do
        if pc = e || is_call insns.(pc) then spans.(pc) <- 1
        else spans.(pc) <- spans.(pc + 1) + 1
      done)
    (Cfg.blocks_sorted cfg);
  spans

(* The continue condition, given which side of the branch stays in the
   loop.  [Set] has no usable negation (jset tests a bit mask). *)
let negate = function
  | Insn.Eq -> Some Insn.Ne
  | Insn.Ne -> Some Insn.Eq
  | Insn.Gt -> Some Insn.Le
  | Insn.Le -> Some Insn.Gt
  | Insn.Ge -> Some Insn.Lt
  | Insn.Lt -> Some Insn.Ge
  | Insn.Sgt -> Some Insn.Sle
  | Insn.Sle -> Some Insn.Sgt
  | Insn.Sge -> Some Insn.Slt
  | Insn.Slt -> Some Insn.Sge
  | Insn.Set -> None

(* Unsigned ceiling division, wrap-safe ([d] may be any 64-bit value). *)
let ceil_div_u d s =
  if Int64.equal d 0L then 0L
  else Int64.add (Int64.unsigned_div (Int64.sub d 1L) s) 1L

(* Upper bound on the number of *circuits* (back-edge traversals) a loop
   can make while [r cond limit] keeps holding, when the induction value
   advances by [step] exactly once per circuit.  Every branch either
   proves the bound (including that the step cannot jump over the exit
   region and wrap around) or gives up with None. *)
let rec circuits ~cond ~limit ~step (r : Reg_state.t) : int64 option =
  if not (Reg_state.is_scalar r) || step = 0 then None
  else
    let s = Int64.of_int step in
    let s' = Int64.neg s in
    (* abs, for negative steps *)
    let open Reg_state in
    match (cond : Insn.cond) with
    | Insn.Eq ->
      (* continue while r = limit: one step later the value differs by a
         nonzero s, so at most two tests can pass *)
      Some 2L
    | Insn.Ne when step = 1 ->
      (* exits only by hitting [limit] exactly: every possible initial
         value must sit strictly below it (unsigned), else the counter
         walks past and wraps *)
      if u_lt r.umax limit then Some (Int64.sub limit r.umin) else None
    | Insn.Ne when step = -1 ->
      if u_lt limit r.umin then Some (Int64.sub r.umax limit) else None
    | Insn.Ne -> None
    | Insn.Lt ->
      (* continue while r <u limit *)
      if step < 0 then None
      else if not (u_lt r.umin limit) then Some 0L
      else if u_lt (Int64.neg limit) s then None
        (* exit region [limit, 2^64) is narrower than the step: the
           counter can jump over it and wrap *)
      else Some (ceil_div_u (Int64.sub limit r.umin) s)
    | Insn.Le ->
      if Int64.equal limit (-1L) then None (* r <=u 2^64-1 always holds *)
      else circuits ~cond:Insn.Lt ~limit:(Int64.add limit 1L) ~step r
    | Insn.Gt ->
      (* continue while r >u limit *)
      if step > 0 then None
      else if not (u_lt limit r.umax) then Some 0L
      else if u_lt (Int64.add limit 1L) s' then None
      else Some (ceil_div_u (Int64.sub r.umax limit) s')
    | Insn.Ge ->
      if Int64.equal limit 0L then None (* r >=u 0 always holds *)
      else circuits ~cond:Insn.Gt ~limit:(Int64.sub limit 1L) ~step r
    | Insn.Slt ->
      (* continue while r <s limit *)
      if step < 0 then None
      else if r.smin >= limit then Some 0L
      else if signed_add_overflows (Int64.sub limit 1L) s then None
        (* a value just under the limit could overflow past INT64_MAX *)
      else if signed_sub_overflows limit r.smin then None
      else Some (ceil_div_u (Int64.sub limit r.smin) s)
    | Insn.Sle ->
      if Int64.equal limit Int64.max_int then None
      else circuits ~cond:Insn.Slt ~limit:(Int64.add limit 1L) ~step r
    | Insn.Sgt ->
      (* continue while r >s limit *)
      if step > 0 then None
      else if r.smax <= limit then Some 0L
      else if signed_sub_overflows (Int64.add limit 1L) s' then None
      else if signed_sub_overflows r.smax limit then None
      else Some (ceil_div_u (Int64.sub r.smax limit) s')
    | Insn.Sge ->
      if Int64.equal limit Int64.min_int then None
      else circuits ~cond:Insn.Sgt ~limit:(Int64.sub limit 1L) ~step r
    | Insn.Set -> None

(* Registers an instruction writes (the interpreter's ground truth). *)
let written = function
  | Insn.Alu { dst; _ } | Insn.Ld_imm64 (dst, _) | Insn.Ld_map_fd (dst, _)
  | Insn.Ldx { dst; _ } ->
    [ dst ]
  | Insn.Atomic { aop; src; fetch; _ } ->
    (if fetch || aop = Insn.A_xchg then [ src ] else [])
    @ (if aop = Insn.A_cmpxchg then [ 0 ] else [])
  | Insn.Call _ | Insn.Call_sub _ -> [ 0 ]
  | Insn.St _ | Insn.Stx _ | Insn.Jmp _ | Insn.Ja _ | Insn.Exit -> []

type loop_internal = {
  li_head : int;
  li_tails : int list;
  li_body : (int, unit) Hashtbl.t;
  mutable li_reg : int option;
  mutable li_trips : int option;
}

let run (insns : Insn.insn array) (cfg : Cfg.t) : result =
  let n = Array.length insns in
  let spans = compute_spans insns cfg in
  let live = Cfg.reachable cfg in
  let findings = ref [] in
  let finding ~pc severity msg =
    findings := Finding.make ~pass:pass_name ~pc ~severity msg :: !findings
  in
  (* -- escapes from the cost model (reachable code only) -- *)
  let escape = ref false in
  Hashtbl.iter
    (fun start () ->
      match Hashtbl.find_opt cfg.Cfg.blocks start with
      | None -> ()
      | Some b ->
        for pc = b.Cfg.start_pc to min b.Cfg.end_pc (n - 1) do
          match insns.(pc) with
          | Insn.Call_sub _ ->
            escape := true;
            finding ~pc Finding.Warning
              "bpf-to-bpf call: callee cost is outside this analysis; \
               worst case unbounded"
          | Insn.Call id -> (
            match Helpers.Registry.find id with
            | Some d when Helpers.Proto.unbounded d.Helpers.Registry.proto ->
              escape := true;
              finding ~pc Finding.Warning
                (Printf.sprintf
                   "helper %s is unbounded (bpf_loop-style callback \
                    iteration); worst case unbounded"
                   d.Helpers.Registry.name)
            | _ -> ())
          | _ -> ()
        done)
    live;
  (* -- natural loops from the DFS back edges -- *)
  let solved =
    Elide_pass.Solver.solve cfg
      ~transfer:(Elide_pass.transfer insns)
      ~edge_refine:(Elide_pass.edge_refine insns cfg)
  in
  let preds = Cfg.preds cfg in
  let live_preds pc =
    List.filter (Hashtbl.mem live)
      (Option.value ~default:[] (Hashtbl.find_opt preds pc))
  in
  let by_head = Hashtbl.create 8 in
  List.iter
    (fun (tail, head) ->
      if Hashtbl.mem live tail && Hashtbl.mem live head then
        Hashtbl.replace by_head head
          (tail :: Option.value ~default:[] (Hashtbl.find_opt by_head head)))
    (Cfg.back_edges cfg);
  let loops =
    Hashtbl.fold
      (fun head tails acc ->
        let body = Hashtbl.create 8 in
        Hashtbl.replace body head ();
        let stack = ref tails in
        while !stack <> [] do
          match !stack with
          | [] -> ()
          | b :: tl ->
            stack := tl;
            if not (Hashtbl.mem body b) then begin
              Hashtbl.replace body b ();
              stack := live_preds b @ !stack
            end
        done;
        { li_head = head; li_tails = tails; li_body = body; li_reg = None;
          li_trips = None }
        :: acc)
      by_head []
    |> List.sort (fun a b -> compare a.li_head b.li_head)
  in
  (* [blk] executes exactly once per circuit of [l] iff no cycle through
     [blk] avoids [l]'s head.  Every cycle is covered by the natural loop
     of one of its back edges, so it suffices that every *other* loop
     containing [blk] also contains [l]'s head (i.e. encloses [l]); a loop
     containing [blk] but not the head is an inner (or disjoint, in
     irreducible graphs) cycle that could re-run [blk] mid-circuit. *)
  let once_per (l : loop_internal) blk =
    List.for_all
      (fun m ->
        m == l
        || (not (Hashtbl.mem m.li_body blk))
        || Hashtbl.mem m.li_body l.li_head)
      loops
  in
  let infer (l : loop_internal) =
    match l.li_tails with
    | [ tail ] when solved.Elide_pass.Solver.converged ->
      let head = l.li_head in
      let single_entry =
        Hashtbl.fold
          (fun b () ok ->
            ok
            && (b = head
               || List.for_all (fun p -> Hashtbl.mem l.li_body p)
                    (live_preds b)))
          l.li_body true
      in
      if not single_entry then ()
      else begin
        (* induction candidates: exactly one write in the whole body, and
           that write is a W64 add/sub-immediate in the head or tail block
           (each executes exactly once per circuit) *)
        let write_count = Array.make 11 0 in
        let write_site = Array.make 11 None in
        Hashtbl.iter
          (fun start () ->
            match Hashtbl.find_opt cfg.Cfg.blocks start with
            | None -> ()
            | Some b ->
              for pc = b.Cfg.start_pc to min b.Cfg.end_pc (n - 1) do
                List.iter
                  (fun r ->
                    write_count.(r) <- write_count.(r) + 1;
                    write_site.(r) <- Some (start, insns.(pc)))
                  (written insns.(pc))
              done)
          l.li_body;
        let step_of r =
          if write_count.(r) <> 1 then None
          else
            match write_site.(r) with
            | Some (blk, Insn.Alu { op; width = Insn.W64; src = Insn.Imm k; _ })
              when (blk = l.li_head || blk = tail)
                   && once_per l blk && k <> 0 -> (
              match op with
              | Insn.Add -> Some k
              | Insn.Sub -> Some (-k)
              | _ -> None)
            | _ -> None
        in
        (* loop-entry facts: joined over the non-back-edge predecessor
           edges of the head — never widened, so exact for counted loops *)
        let init_fact =
          let base =
            if head = cfg.Cfg.entry then Elide_pass.L.entry
            else Elide_pass.L.Bot
          in
          List.fold_left
            (fun acc p ->
              if p = tail then acc
              else
                Elide_pass.L.join acc
                  (Elide_pass.edge_refine insns cfg ~from:p ~into:head
                     (Elide_pass.Solver.out_fact solved p)))
            base (live_preds head)
        in
        (* exit tests: a W64 conditional jump against an immediate, in the
           head or tail block, with exactly one successor outside the body *)
        let consider start =
          match Hashtbl.find_opt cfg.Cfg.blocks start with
          | Some b when once_per l start -> (
            match insns.(min b.Cfg.end_pc (n - 1)) with
            | Insn.Jmp { cond; width = Insn.W64; dst; src = Insn.Imm c; off }
              -> (
              let e = min b.Cfg.end_pc (n - 1) in
              let tpc = e + 1 + off and fpc = e + 1 in
              let inside pc =
                Hashtbl.mem l.li_body pc && Hashtbl.mem cfg.Cfg.blocks pc
              in
              if inside tpc = inside fpc then None
              else
                let continue_cond =
                  if inside tpc then Some cond else negate cond
                in
                match (continue_cond, step_of dst, init_fact) with
                | Some cc, Some step, Elide_pass.L.Regs regs -> (
                  match
                    circuits ~cond:cc ~limit:(Int64.of_int c) ~step regs.(dst)
                  with
                  | Some circ
                    when Reg_state.u_lt circ (Int64.of_int cost_cap) ->
                    (* +1: a do-while body runs once before its first test *)
                    Some (dst, Int64.to_int circ + 1)
                  | _ -> None)
                | _ -> None)
            | _ -> None)
          | _ -> None
        in
        let candidates =
          List.filter_map consider
            (List.sort_uniq compare [ l.li_head; tail ])
        in
        match
          List.sort (fun (_, a) (_, b) -> compare a b) candidates
        with
        | (r, t) :: _ ->
          l.li_reg <- Some r;
          l.li_trips <- Some t
        | [] -> ()
      end
    | _ -> ()
  in
  List.iter infer loops;
  List.iter
    (fun l ->
      match l.li_trips with
      | Some t ->
        finding ~pc:l.li_head Finding.Info
          (Printf.sprintf "loop at block %d: at most %d iteration(s) (r%d)"
             l.li_head t
             (Option.value ~default:(-1) l.li_reg))
      | None ->
        finding ~pc:l.li_head Finding.Warning
          (Printf.sprintf
             "loop at block %d: trip count not inferable; worst case \
              unbounded"
             l.li_head))
    loops;
  (* -- compose per-block costs through the loop nest -- *)
  let bound =
    if !escape || List.exists (fun l -> l.li_trips = None) loops then
      Unbounded
    else begin
      let total = ref 0 in
      Hashtbl.iter
        (fun start () ->
          match Hashtbl.find_opt cfg.Cfg.blocks start with
          | None -> ()
          | Some b ->
            let len = min b.Cfg.end_pc (n - 1) - b.Cfg.start_pc + 1 in
            let mult =
              List.fold_left
                (fun m l ->
                  if Hashtbl.mem l.li_body start then
                    sat_mul m (Option.get l.li_trips)
                  else m)
                1 loops
            in
            total := sat_add !total (sat_mul len mult))
        live;
      if !total >= cost_cap then Unbounded else Bounded !total
    end
  in
  { bound;
    spans;
    loops =
      List.map
        (fun l ->
          { head = l.li_head; body_blocks = Hashtbl.length l.li_body;
            reg = l.li_reg; trips = l.li_trips })
        loops;
    findings = Finding.sort !findings }
