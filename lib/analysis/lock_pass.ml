(* Lock-discipline analysis.

   Forward may-analysis over a four-point lattice per block: can this point
   be reached with the spinlock held, and can it be reached with it free?
   With both bits the pass distinguishes "always held" from "held on some
   path" without path enumeration.

   Reported disciplines (all of which the kernel enforces for real
   bpf_spin_lock regions):
   - no may_sleep helper call while the lock may be held;
   - no unbounded helper (bpf_loop-style) while the lock may be held —
     lock hold time must be bounded by the program's own instructions;
   - no lock held across a CFG back edge (unbounded hold time via looping);
   - no lock still held at exit (the runtime would have to break it);
   - taking the lock when it may already be held (double lock). *)

module Cfg = Ebpf.Cfg
module Insn = Ebpf.Insn
module Proto = Helpers.Proto

let pass_name = "lock"

module L = struct
  (* (may be reached unlocked, may be reached locked) *)
  type fact = { unlocked : bool; locked : bool }

  let bottom = { unlocked = false; locked = false }
  let entry = { unlocked = true; locked = false }
  let equal = ( = )
  let join a b = { unlocked = a.unlocked || b.unlocked; locked = a.locked || b.locked }
  let widen ~prev:_ next = next
end

module Solver = Dataflow.Make (L)

let transfer_insn _pc insn (fact : L.fact) =
  match insn with
  | Insn.Call id -> (
    match Helpers.Registry.find id with
    | None -> fact
    | Some def ->
      let p = def.Helpers.Registry.proto in
      if Proto.locks p then { L.unlocked = false; locked = fact.L.unlocked || fact.L.locked }
      else if Proto.unlocks p then
        { L.unlocked = fact.L.unlocked || fact.L.locked; locked = false }
      else fact)
  | _ -> fact

let transfer insns (b : Cfg.block) fact =
  Dataflow.fold_block insns b ~init:fact ~f:transfer_insn

let run (insns : Insn.insn array) (cfg : Cfg.t) : Finding.t list =
  let solved = Solver.solve cfg ~transfer:(transfer insns) in
  let live = Cfg.reachable cfg in
  let findings = ref [] in
  let emit f = findings := f :: !findings in
  List.iter
    (fun (b : Cfg.block) ->
      if Hashtbl.mem live b.Cfg.start_pc then
        ignore
          (Dataflow.fold_block insns b
             ~init:(Solver.in_fact solved b.Cfg.start_pc)
             ~f:(fun pc insn (fact : L.fact) ->
               match insn with
               | Insn.Call id -> (
                 match Helpers.Registry.find id with
                 | None -> fact
                 | Some def ->
                   let p = def.Helpers.Registry.proto in
                   let name = def.Helpers.Registry.name in
                   if fact.L.locked && Proto.may_sleep p then
                     emit
                       (Finding.make ~pass:pass_name ~pc ~severity:Finding.Error
                          (Printf.sprintf
                             "%s may sleep while a spinlock may be held" name));
                   if fact.L.locked && Proto.unbounded p then
                     emit
                       (Finding.make ~pass:pass_name ~pc ~severity:Finding.Error
                          (Printf.sprintf
                             "%s has unbounded runtime while a spinlock may \
                              be held"
                             name));
                   if fact.L.locked && Proto.locks p then
                     emit
                       (Finding.make ~pass:pass_name ~pc
                          ~severity:Finding.Warning
                          "spinlock taken while it may already be held");
                   if fact.L.unlocked && not fact.L.locked && Proto.unlocks p
                   then
                     emit
                       (Finding.make ~pass:pass_name ~pc
                          ~severity:Finding.Warning
                          "spinlock released while not held");
                   transfer_insn pc insn fact)
               | Insn.Exit ->
                 if fact.L.locked then
                   emit
                     (Finding.make ~pass:pass_name ~pc ~severity:Finding.Error
                        "spinlock may still be held at exit");
                 fact
               | _ -> fact)))
    (Cfg.blocks_sorted cfg);
  (* lock held across a back edge: unbounded hold time *)
  List.iter
    (fun (from, into) ->
      if Hashtbl.mem live from then
        let out = Solver.out_fact solved from in
        if out.L.locked then
          let b = Hashtbl.find cfg.Cfg.blocks from in
          emit
            (Finding.make ~pass:pass_name ~pc:b.Cfg.end_pc
               ~severity:Finding.Error
               (Printf.sprintf
                  "spinlock may be held across the loop back edge to insn %d"
                  into)))
    (Cfg.back_edges cfg);
  Finding.sort !findings
