(* Execution context handed to every helper implementation: the simulated
   kernel, the map registry, the resource table for RAII-style cleanup, the
   bug database, and runtime callbacks (time/fuel charging and subprogram
   invocation for callback-taking helpers like bpf_loop). *)

module Kernel = Kernel_sim.Kernel
module Kmem = Kernel_sim.Kmem
module Kobject = Kernel_sim.Kobject

exception Tail_call of int
(* raised by bpf_tail_call: the runtime replaces the current program *)

type t = {
  kernel : Kernel.t;
  maps : Maps.Bpf_map.Registry.t;
  mutable resources : Resources.t;
  bugs : Bugdb.t;
  owner : string;                      (* lock-ownership context *)
  mutable rng_state : int64;           (* deterministic bpf_get_prandom_u32 *)
  mutable call_subprog : (int -> int64 array -> int64) option;
  mutable charge : int64 -> unit;      (* advance simulated time / burn fuel *)
  mutable helper_calls : int;
  mutable loop_depth : int;
  mutable trace : string list;         (* bpf_trace_printk output, newest first *)
  mutable skb : Kobject.sk_buff option; (* packet attached to this invocation *)
  prog_array : (int, int) Hashtbl.t;   (* tail-call map: index -> prog id *)
  (* reusable per-depth program stack frames (512B each), shared by the
     interpreter and the JIT so repeated runs do not grow the address space *)
  frames : Kmem.region option array;
  (* bpf_timer model: (deadline_ns, callback pc, callback ctx) armed by the
     program, fired by the runtime once the invocation completes (the
     simulated softirq). *)
  mutable timers : (int64 * int * int64) list;
}

(* The PRNG seed every context starts from (each Loader.run historically
   built a fresh hctx, so every invocation saw the same deterministic
   stream; [reset] restores it for the same reason). *)
let initial_rng_seed = 0x853c49e6748fea9bL

let create ?(owner = "bpf_prog") ~kernel ~maps ~bugs () =
  { kernel; maps; resources = Resources.create (); bugs; owner;
    rng_state = initial_rng_seed; call_subprog = None; charge = (fun _ -> ());
    helper_calls = 0; loop_depth = 0; trace = []; skb = None;
    prog_array = Hashtbl.create 4; frames = Array.make 16 None; timers = [] }

let charge t ns = t.charge ns

(* Return a context to its just-created state while keeping the expensive
   parts — the preallocated stack frames and the kernel/map wiring — so a
   serving loop can reuse one context across invocations instead of
   rebuilding it per run.  The tail-call table is the world's job to refresh
   (World.sync_hctx). *)
let reset t =
  t.resources <- Resources.create ();
  t.rng_state <- initial_rng_seed;
  t.call_subprog <- None;
  t.charge <- (fun _ -> ());
  t.helper_calls <- 0;
  t.loop_depth <- 0;
  t.trace <- [];
  t.skb <- None;
  t.timers <- []

(* xorshift64*: deterministic, seedable PRNG for bpf_get_prandom_u32 and the
   random map accesses of the §2.2 termination exploit. *)
let next_random t =
  let x = t.rng_state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  t.rng_state <- x;
  x

let trace_output t = List.rev t.trace

(* Fetch (or lazily create) the reusable stack frame for a call depth. *)
let stack_frame t depth =
  match t.frames.(depth) with
  | Some r -> r
  | None ->
    let r =
      Kmem.alloc t.kernel.Kernel.mem ~size:512 ~kind:"stack"
        ~name:(Printf.sprintf "bpf_stack[%d]" depth) ()
    in
    t.frames.(depth) <- Some r;
    r
