(* The helper-function table: every helper the simulation implements, with
   its verifier-visible prototype, the kernel version that introduced it
   (Figure 4's growth), its call-graph node count (Figure 3's complexity;
   values for the two extremes are the ones the paper states: 1 for
   bpf_get_current_pid_tgid, 4845 for bpf_sys_bpf), and its §3.2
   disposition under a safe-language framework.

   Helper ids follow the kernel UAPI numbering where the helper exists
   there; the table, not the number, is authoritative for the simulation.

   Note on calling convention: some prototypes are simplified (e.g.
   bpf_sk_lookup_tcp takes a port scalar instead of a tuple struct, skb
   helpers take the skb from the execution context); each simplification
   keeps the verifier-relevant shape (pointer kinds, size relations,
   acquire/release effects) intact. *)

module Kver = Kerndata.Kver
module Retirement = Kerndata.Retirement
open Proto

type def = {
  id : int;
  name : string;
  proto : Proto.t;
  introduced : Kver.t;
  callgraph_nodes : int;
  disposition : Retirement.disposition option;
  impl : Hctx.t -> int64 array -> int64;
}

let p ?effects ?may_sleep ?unbounded args ret =
  Proto.make ?effects ?may_sleep ?unbounded ~args ~ret ()

let defs =
  [
    (* maps *)
    { id = 1; name = "bpf_map_lookup_elem";
      proto = p [ Arg_map_handle; Arg_map_key ] Ret_map_value_or_null;
      introduced = Kver.V3_18; callgraph_nodes = 73;
      disposition = Some Retirement.Simplify; impl = Helpers_map.lookup_elem };
    { id = 2; name = "bpf_map_update_elem";
      proto = p [ Arg_map_handle; Arg_map_key; Arg_map_value; Arg_scalar ] Ret_scalar;
      introduced = Kver.V3_18; callgraph_nodes = 312; disposition = None;
      impl = Helpers_map.update_elem };
    { id = 3; name = "bpf_map_delete_elem";
      proto = p [ Arg_map_handle; Arg_map_key ] Ret_scalar;
      introduced = Kver.V3_18; callgraph_nodes = 287; disposition = None;
      impl = Helpers_map.delete_elem };
    { id = 87; name = "bpf_map_push_elem";
      proto = p [ Arg_map_handle; Arg_map_value; Arg_scalar ] Ret_scalar;
      introduced = Kver.V4_20; callgraph_nodes = 54;
      disposition = Some Retirement.Retire; impl = Helpers_map.push_elem };
    { id = 88; name = "bpf_map_pop_elem";
      proto = p [ Arg_map_handle; Arg_map_value_out ] Ret_scalar;
      introduced = Kver.V4_20; callgraph_nodes = 49;
      disposition = Some Retirement.Retire; impl = Helpers_map.pop_elem };
    { id = 89; name = "bpf_map_peek_elem";
      proto = p [ Arg_map_handle; Arg_map_value_out ] Ret_scalar;
      introduced = Kver.V4_20; callgraph_nodes = 41;
      disposition = Some Retirement.Retire; impl = Helpers_map.peek_elem };
    { id = 164; name = "bpf_for_each_map_elem";
      proto = p ~unbounded:true
          [ Arg_map_handle; Arg_callback_pc; Arg_anything; Arg_scalar ] Ret_scalar;
      introduced = Kver.V5_15; callgraph_nodes = 128;
      disposition = Some Retirement.Retire; impl = Helpers_map.for_each_map_elem };
    (* locks *)
    { id = 93; name = "bpf_spin_lock";
      proto = p ~effects:[ Locks ] [ Arg_spin_lock ] Ret_void;
      introduced = Kver.V5_4; callgraph_nodes = 9; disposition = None;
      impl = Helpers_spin.spin_lock };
    { id = 94; name = "bpf_spin_unlock";
      proto = p ~effects:[ Unlocks ] [ Arg_spin_lock ] Ret_void;
      introduced = Kver.V5_4; callgraph_nodes = 7; disposition = None;
      impl = Helpers_spin.spin_unlock };
    (* ring buffer *)
    { id = 131; name = "bpf_ringbuf_reserve";
      proto = p ~effects:[ Acquires ] [ Arg_map_handle; Arg_scalar; Arg_scalar ]
          (Ret_mem_or_null (Size_arg 1));
      introduced = Kver.V5_10; callgraph_nodes = 167; disposition = None;
      impl = Helpers_ringbuf.ringbuf_reserve };
    { id = 132; name = "bpf_ringbuf_submit";
      proto = p ~effects:[ Releases 0 ] [ Arg_ringbuf_mem; Arg_scalar ] Ret_void;
      introduced = Kver.V5_10; callgraph_nodes = 98; disposition = None;
      impl = Helpers_ringbuf.ringbuf_submit };
    { id = 133; name = "bpf_ringbuf_discard";
      proto = p ~effects:[ Releases 0 ] [ Arg_ringbuf_mem; Arg_scalar ] Ret_void;
      introduced = Kver.V5_10; callgraph_nodes = 95; disposition = None;
      impl = Helpers_ringbuf.ringbuf_discard };
    { id = 130; name = "bpf_ringbuf_output";
      proto = p [ Arg_map_handle; Arg_mem_readable (Size_arg 2); Arg_scalar; Arg_scalar ]
          Ret_scalar;
      introduced = Kver.V5_10; callgraph_nodes = 203; disposition = None;
      impl = Helpers_ringbuf.ringbuf_output };
    (* tasks *)
    { id = 14; name = "bpf_get_current_pid_tgid";
      proto = p [] Ret_scalar;
      introduced = Kver.V4_3; callgraph_nodes = 1; disposition = None;
      impl = Helpers_task.get_current_pid_tgid };
    { id = 15; name = "bpf_get_current_uid_gid";
      proto = p [] Ret_scalar;
      introduced = Kver.V4_3; callgraph_nodes = 1; disposition = None;
      impl = Helpers_task.get_current_uid_gid };
    { id = 16; name = "bpf_get_current_comm";
      proto = p [ Arg_mem_writable (Size_arg 1); Arg_scalar ] Ret_scalar;
      introduced = Kver.V4_3; callgraph_nodes = 18; disposition = None;
      impl = Helpers_task.get_current_comm };
    { id = 35; name = "bpf_get_current_task";
      proto = p [] Ret_task;
      introduced = Kver.V4_9; callgraph_nodes = 1; disposition = None;
      impl = Helpers_task.get_current_task };
    { id = 156; name = "bpf_task_storage_get";
      proto = p [ Arg_map_handle; Arg_task; Arg_anything; Arg_scalar ]
          Ret_map_value_or_null;
      introduced = Kver.V5_10; callgraph_nodes = 341;
      disposition = Some Retirement.Wrap; impl = Helpers_task.task_storage_get };
    { id = 157; name = "bpf_task_storage_delete";
      proto = p [ Arg_map_handle; Arg_task ] Ret_scalar;
      introduced = Kver.V5_10; callgraph_nodes = 297; disposition = None;
      impl = Helpers_task.task_storage_delete };
    { id = 141; name = "bpf_get_task_stack";
      proto = p [ Arg_task; Arg_mem_writable (Size_arg 2); Arg_scalar; Arg_scalar ]
          Ret_scalar;
      introduced = Kver.V5_10; callgraph_nodes = 934;
      disposition = Some Retirement.Simplify; impl = Helpers_task.get_task_stack };
    { id = 109; name = "bpf_send_signal";
      proto = p [ Arg_scalar ] Ret_scalar;
      introduced = Kver.V5_4; callgraph_nodes = 542; disposition = None;
      impl = Helpers_task.send_signal };
    (* sockets *)
    { id = 84; name = "bpf_sk_lookup_tcp";
      proto = p ~effects:[ Acquires ] [ Arg_scalar ] Ret_sock_or_null;
      introduced = Kver.V4_20; callgraph_nodes = 1522;
      disposition = Some Retirement.Simplify; impl = Helpers_sock.sk_lookup_tcp };
    { id = 85; name = "bpf_sk_lookup_udp";
      proto = p ~effects:[ Acquires ] [ Arg_scalar ] Ret_sock_or_null;
      introduced = Kver.V4_20; callgraph_nodes = 1437; disposition = None;
      impl = Helpers_sock.sk_lookup_udp };
    { id = 86; name = "bpf_sk_release";
      proto = p ~effects:[ Releases 0 ] [ Arg_sock ] Ret_scalar;
      introduced = Kver.V4_20; callgraph_nodes = 118; disposition = None;
      impl = Helpers_sock.sk_release };
    { id = 46; name = "bpf_get_socket_cookie";
      proto = p [ Arg_ctx ] Ret_scalar;
      introduced = Kver.V4_14; callgraph_nodes = 35; disposition = None;
      impl = Helpers_sock.get_socket_cookie };
    (* skb *)
    { id = 26; name = "bpf_skb_load_bytes";
      proto = p [ Arg_scalar; Arg_mem_writable (Size_arg 2); Arg_scalar ] Ret_scalar;
      introduced = Kver.V4_9; callgraph_nodes = 44; disposition = None;
      impl = Helpers_skb.skb_load_bytes };
    { id = 9; name = "bpf_skb_store_bytes";
      proto = p [ Arg_scalar; Arg_mem_readable (Size_arg 2); Arg_scalar; Arg_scalar ]
          Ret_scalar;
      introduced = Kver.V4_9; callgraph_nodes = 76; disposition = None;
      impl = Helpers_skb.skb_store_bytes };
    (* strings *)
    { id = 105; name = "bpf_strtol";
      proto = p [ Arg_mem_readable (Size_arg 1); Arg_scalar; Arg_scalar;
                  Arg_mem_writable (Fixed 8) ] Ret_scalar;
      introduced = Kver.V5_4; callgraph_nodes = 22;
      disposition = Some Retirement.Retire; impl = Helpers_string.strtol };
    { id = 106; name = "bpf_strtoul";
      proto = p [ Arg_mem_readable (Size_arg 1); Arg_scalar; Arg_scalar;
                  Arg_mem_writable (Fixed 8) ] Ret_scalar;
      introduced = Kver.V5_4; callgraph_nodes = 21;
      disposition = Some Retirement.Retire; impl = Helpers_string.strtoul };
    { id = 182; name = "bpf_strncmp";
      proto = p [ Arg_mem_readable (Size_arg 1); Arg_scalar; Arg_mem_readable (Fixed 1) ]
          Ret_scalar;
      introduced = Kver.V5_15; callgraph_nodes = 8;
      disposition = Some Retirement.Retire; impl = Helpers_string.strncmp };
    { id = 165; name = "bpf_snprintf";
      proto = p [ Arg_mem_writable (Size_arg 1); Arg_scalar; Arg_mem_readable (Fixed 1);
                  Arg_mem_readable (Size_arg 4); Arg_scalar ] Ret_scalar;
      introduced = Kver.V5_15; callgraph_nodes = 46;
      disposition = Some Retirement.Retire; impl = Helpers_string.snprintf };
    (* probe reads *)
    { id = 113; name = "bpf_probe_read_kernel";
      proto = p [ Arg_mem_writable (Size_arg 1); Arg_scalar; Arg_anything ] Ret_scalar;
      introduced = Kver.V5_4; callgraph_nodes = 92; disposition = None;
      impl = Helpers_probe.probe_read_kernel };
    { id = 112; name = "bpf_probe_read_user";
      proto = p ~may_sleep:true
          [ Arg_mem_writable (Size_arg 1); Arg_scalar; Arg_anything ] Ret_scalar;
      introduced = Kver.V5_4; callgraph_nodes = 97; disposition = None;
      impl = Helpers_probe.probe_read_user };
    { id = 115; name = "bpf_probe_read_kernel_str";
      proto = p [ Arg_mem_writable (Size_arg 1); Arg_scalar; Arg_anything ] Ret_scalar;
      introduced = Kver.V5_4; callgraph_nodes = 104; disposition = None;
      impl = Helpers_probe.probe_read_kernel_str };
    (* control flow *)
    { id = 181; name = "bpf_loop";
      proto = p ~unbounded:true
          [ Arg_scalar; Arg_callback_pc; Arg_anything; Arg_scalar ] Ret_scalar;
      introduced = Kver.V5_15; callgraph_nodes = 15;
      disposition = Some Retirement.Retire; impl = Helpers_loop.loop };
    { id = 170; name = "bpf_timer_start";
      proto = p [ Arg_scalar; Arg_callback_pc; Arg_scalar; Arg_scalar ] Ret_scalar;
      introduced = Kver.V5_15; callgraph_nodes = 88; disposition = None;
      impl = Helpers_loop.timer_start };
    { id = 171; name = "bpf_timer_cancel";
      proto = p [ Arg_callback_pc ] Ret_scalar;
      introduced = Kver.V5_15; callgraph_nodes = 52; disposition = None;
      impl = Helpers_loop.timer_cancel };
    { id = 12; name = "bpf_tail_call";
      proto = p [ Arg_ctx; Arg_anything; Arg_scalar ] Ret_scalar;
      introduced = Kver.V4_3; callgraph_nodes = 12; disposition = None;
      impl = Helpers_loop.tail_call };
    (* misc *)
    { id = 5; name = "bpf_ktime_get_ns";
      proto = p [] Ret_scalar;
      introduced = Kver.V4_3; callgraph_nodes = 6; disposition = None;
      impl = Helpers_misc.ktime_get_ns };
    { id = 125; name = "bpf_ktime_get_boot_ns";
      proto = p [] Ret_scalar;
      introduced = Kver.V5_10; callgraph_nodes = 7; disposition = None;
      impl = Helpers_misc.ktime_get_boot_ns };
    { id = 118; name = "bpf_jiffies64";
      proto = p [] Ret_scalar;
      introduced = Kver.V5_4; callgraph_nodes = 1; disposition = None;
      impl = Helpers_misc.jiffies64 };
    { id = 7; name = "bpf_get_prandom_u32";
      proto = p [] Ret_scalar;
      introduced = Kver.V4_3; callgraph_nodes = 4; disposition = None;
      impl = Helpers_misc.get_prandom_u32 };
    { id = 8; name = "bpf_get_smp_processor_id";
      proto = p [] Ret_scalar;
      introduced = Kver.V4_3; callgraph_nodes = 1; disposition = None;
      impl = Helpers_misc.get_smp_processor_id };
    { id = 42; name = "bpf_get_numa_node_id";
      proto = p [] Ret_scalar;
      introduced = Kver.V4_14; callgraph_nodes = 3; disposition = None;
      impl = Helpers_misc.get_numa_node_id };
    { id = 6; name = "bpf_trace_printk";
      proto = p [ Arg_mem_readable (Size_arg 1); Arg_scalar; Arg_scalar; Arg_scalar;
                  Arg_scalar ] Ret_scalar;
      introduced = Kver.V4_3; callgraph_nodes = 61; disposition = None;
      impl = Helpers_misc.trace_printk };
    (* the big one *)
    { id = 166; name = "bpf_sys_bpf";
      proto = p ~may_sleep:true ~unbounded:true
          [ Arg_scalar; Arg_mem_readable (Size_arg 2); Arg_scalar ] Ret_scalar;
      introduced = Kver.V5_15; callgraph_nodes = 4845;
      disposition = Some Retirement.Wrap; impl = Helpers_sys.sys_bpf };
    { id = 58; name = "bpf_override_return";
      proto = p [ Arg_ctx; Arg_scalar ] Ret_scalar;
      introduced = Kver.V4_14; callgraph_nodes = 25; disposition = None;
      impl = Helpers_sys.override_return };
  ]

let by_id = Hashtbl.create 64
let by_name = Hashtbl.create 64

let () =
  List.iter
    (fun d ->
      assert (not (Hashtbl.mem by_id d.id));
      Hashtbl.replace by_id d.id d;
      Hashtbl.replace by_name d.name d)
    defs

let find id = Hashtbl.find_opt by_id id
let find_by_name name = Hashtbl.find_opt by_name name

let id_of_name name =
  match find_by_name name with
  | Some d -> d.id
  | None -> invalid_arg ("unknown helper " ^ name)

let count = List.length defs

(* ---- telemetry ----

   Per-helper call counts and Vclock latency histograms: the executable
   version of Figure 3's "helpers are where the cost hides".  Interned once
   per helper so the call path does one hashtable lookup, not three. *)

type tele = {
  t_calls : Telemetry.Counter.t;
  t_latency : Telemetry.Histogram.t;
  t_event : string;
}

(* The memo is domain-local and pinned to the registry it was built
   against: a shard worker that installs its private registry
   (Telemetry.Registry.using) must intern fresh handles there, not reuse
   handles interned in another shard's tables.  A registry swap on the
   same domain invalidates the whole cache. *)
type tele_cache = {
  tc_reg : Telemetry.Registry.t;
  tc_by_id : (int, tele) Hashtbl.t;
  tc_calls : Telemetry.Counter.t;
  tc_errors : Telemetry.Counter.t;
}

let cache_for reg =
  {
    tc_reg = reg;
    tc_by_id = Hashtbl.create 64;
    tc_calls = Telemetry.Registry.counter "helper.calls";
    tc_errors = Telemetry.Registry.counter "helper.errors";
  }

let tele_cache : tele_cache Domain.DLS.key =
  Domain.DLS.new_key (fun () -> cache_for (Telemetry.Registry.current ()))

let current_cache () =
  let c = Domain.DLS.get tele_cache in
  let reg = Telemetry.Registry.current () in
  if c.tc_reg == reg then c
  else begin
    let c = cache_for reg in
    Domain.DLS.set tele_cache c;
    c
  end

let tele_of cache def =
  match Hashtbl.find_opt cache.tc_by_id def.id with
  | Some t -> t
  | None ->
    let t =
      {
        t_calls = Telemetry.Registry.counter ("helper.calls." ^ def.name);
        t_latency = Telemetry.Registry.histogram ("helper.ns." ^ def.name);
        t_event = "helper." ^ def.name;
      }
    in
    Hashtbl.replace cache.tc_by_id def.id t;
    t

(* Kernel convention (IS_ERR_VALUE): returns in [-4095, -1] are errnos. *)
let max_errno = -4095L

(* The one helper entry point the interpreter and JIT share.  Latency is
   measured on the simulated clock and recorded only for normal returns;
   a helper that oopses or terminates the program is accounted by the oops
   latch and guard counters instead. *)
let invoke def (hctx : Hctx.t) args =
  if not (Telemetry.Registry.enabled ()) then def.impl hctx args
  else begin
    let cache = current_cache () in
    let tele = tele_of cache def in
    Telemetry.Registry.bump cache.tc_calls;
    Telemetry.Registry.bump tele.t_calls;
    let clock = hctx.kernel.Kernel_sim.Kernel.clock in
    let t0 = Kernel_sim.Vclock.now clock in
    let ret = def.impl hctx args in
    Telemetry.Registry.observe tele.t_latency (Int64.sub (Kernel_sim.Vclock.now clock) t0);
    Telemetry.Registry.point tele.t_event ~value:ret;
    if Int64.compare ret 0L < 0 && Int64.compare ret max_errno >= 0 then begin
      Telemetry.Registry.bump cache.tc_errors;
      Telemetry.Registry.incr_name ("helper.errno." ^ Errno.name ret)
    end;
    ret
  end

(* Helpers available on a given simulated kernel version. *)
let available ~version = List.filter (fun d -> Kver.(d.introduced <= version)) defs

let pinned_callgraph_nodes name =
  Option.map (fun d -> d.callgraph_nodes) (find_by_name name)
