(* Negative errno return values, as helpers report failures to programs. *)

let einval = -22L
let enoent = -2L
let e2big = -7L
let efault = -14L
let enomem = -12L
let eperm = -1L
let enotsupp = -524L
let ebusy = -16L

let name v =
  if Int64.equal v eperm then "EPERM"
  else if Int64.equal v enoent then "ENOENT"
  else if Int64.equal v e2big then "E2BIG"
  else if Int64.equal v enomem then "ENOMEM"
  else if Int64.equal v efault then "EFAULT"
  else if Int64.equal v ebusy then "EBUSY"
  else if Int64.equal v einval then "EINVAL"
  else if Int64.equal v enotsupp then "ENOTSUPP"
  else "E" ^ Int64.to_string (Int64.neg v)

let of_map_error : Maps.Bpf_map.error -> int64 = function
  | Maps.Bpf_map.E2BIG -> e2big
  | ENOENT -> enoent
  | EINVAL -> einval
  | ENOTSUPP -> enotsupp
  | ENOMEM -> enomem
