(* The injectable helper-bug database.

   Table 1's point is that helper bugs are plentiful and recurring; each
   entry here models one documented bug (CVE or fix commit) as a toggle the
   helper implementations consult.  A toggle is on when the simulated kernel
   version lies in the bug's [introduced, fixed) window, or when forced by
   an override — so the bench harness can demonstrate the failure on a
   vulnerable kernel and its absence on a fixed one, executably. *)

module Kver = Kerndata.Kver

type window = { introduced : Kver.t; fixed : Kver.t option }

type bug = {
  key : string;              (* "hbug:..." ids referenced from Bug_stats *)
  helper : string;
  summary : string;
  window : window;
}

let bugs =
  [
    { key = "hbug:cve-2022-2785-sys-bpf"; helper = "bpf_sys_bpf";
      summary = "no deep inspection of union argument: NULL field dereferenced (CVE-2022-2785)";
      window = { introduced = Kver.V5_15; fixed = None } };
    { key = "hbug:task-storage-null-owner"; helper = "bpf_task_storage_get";
      summary = "missing NULL check on owner task pointer (fix 1a9c72ad)";
      window = { introduced = Kver.V5_10; fixed = Some Kver.V5_15 } };
    { key = "hbug:sk-lookup-request-sock-leak"; helper = "bpf_sk_lookup_tcp";
      summary = "request_sock reference not released (fix 3046a827)";
      window = { introduced = Kver.V4_20; fixed = Some Kver.V6_1 } };
    { key = "hbug:get-task-stack-no-ref"; helper = "bpf_get_task_stack";
      summary = "task stack used without holding a reference (fix 06ab134c)";
      window = { introduced = Kver.V5_10; fixed = Some Kver.V5_15 } };
    { key = "hbug:array-map-32bit-overflow"; helper = "bpf_map_lookup_elem";
      summary = "32-bit index*value_size overflow on huge arrays (fix 87ac0d60)";
      window = { introduced = Kver.V3_18; fixed = Some Kver.V6_1 } };
    { key = "hbug:ringbuf-double-submit"; helper = "bpf_ringbuf_submit";
      summary = "double submit frees a record twice (use-after-free class)";
      window = { introduced = Kver.V5_10; fixed = Some Kver.V5_15 } };
    { key = "hbug:probe-read-size-unchecked"; helper = "bpf_probe_read_kernel";
      summary = "size not clamped to destination buffer (out-of-bounds class)";
      window = { introduced = Kver.V5_4; fixed = Some Kver.V5_10 } };
    { key = "hbug:nested-bpf-loop-hang"; helper = "bpf_loop";
      summary = "nested loops give linear control over runtime: RCU stalls (§2.2)";
      window = { introduced = Kver.V5_15; fixed = None } };
  ]

type t = {
  version : Kver.t;
  mutable forced_on : string list;
  mutable forced_off : string list;
}

let create ?(version = Kver.V5_18) () = { version; forced_on = []; forced_off = [] }

let force_on t key = t.forced_on <- key :: t.forced_on
let force_off t key = t.forced_off <- key :: t.forced_off

(* Drop every override for [key], restoring the version-window default.
   [force_off] cannot undo a [force_on] (off wins and both lists only ever
   grow), so transient injection — the chaos harness arming a bug for one
   event — needs a true removal. *)
let clear_forced t key =
  t.forced_on <- List.filter (fun k -> not (String.equal k key)) t.forced_on;
  t.forced_off <- List.filter (fun k -> not (String.equal k key)) t.forced_off

let find key = List.find_opt (fun b -> String.equal b.key key) bugs

let active t key =
  if List.mem key t.forced_off then false
  else if List.mem key t.forced_on then true
  else
    match find key with
    | None -> false
    | Some b ->
      Kver.(b.window.introduced <= t.version)
      && (match b.window.fixed with
         | None -> true
         | Some fixed -> Kver.compare t.version fixed < 0)

let active_bugs t = List.filter (fun b -> active t b.key) bugs
