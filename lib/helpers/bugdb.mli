(** The injectable helper-bug database: each entry models one documented
    helper bug (CVE or fix commit) from the paper's Table 1 audit as a
    toggle the helper implementations consult.

    A bug is active when the simulated kernel version falls inside its
    [introduced, fixed) window, or when forced — so every demo can run the
    same program on a vulnerable and a fixed kernel. *)

module Kver = Kerndata.Kver

type window = { introduced : Kver.t; fixed : Kver.t option }

type bug = {
  key : string;     (** "hbug:..." ids cross-referenced from Kerndata.Bug_stats *)
  helper : string;
  summary : string;
  window : window;
}

val bugs : bug list

type t = {
  version : Kver.t;
  mutable forced_on : string list;
  mutable forced_off : string list;
}

val create : ?version:Kver.t -> unit -> t

val force_on : t -> string -> unit
val force_off : t -> string -> unit

val clear_forced : t -> string -> unit
(** Drop every override for a key, restoring the version-window default —
    the undo [force_off] cannot provide (off wins over on and the override
    lists only grow).  Used for transient injection (chaos harness). *)

val find : string -> bug option

val active : t -> string -> bool
(** Forced settings win; otherwise the version window decides. *)

val active_bugs : t -> bug list
