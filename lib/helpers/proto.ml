(* Helper prototypes: what the verifier knows about a helper.

   This is deliberately shallow — argument types describe the pointer kind
   and a size relation, nothing about the pointed-to *contents*.  That
   shallowness is the paper's §2.2 point: "the verifier does not perform
   deep argument inspection", so a union with a NULL field sails through. *)

type mem_size =
  | Fixed of int      (* pointed-to buffer has this exact size *)
  | Size_arg of int   (* 0-based index of the argument carrying the size *)

type arg_type =
  | Arg_anything                      (* unchecked: the widest escape hatch *)
  | Arg_scalar
  | Arg_map_handle
  | Arg_map_key
  | Arg_map_value
  | Arg_map_value_out                 (* writable buffer of value_size (pop/peek) *)
  | Arg_mem_readable of mem_size
  | Arg_mem_writable of mem_size
  | Arg_ctx
  | Arg_task                          (* pointer to a task_struct *)
  | Arg_sock                          (* ref-tracked socket pointer *)
  | Arg_spin_lock                     (* map value containing a bpf_spin_lock *)
  | Arg_callback_pc                   (* static pc of a callback subprogram *)
  | Arg_ringbuf_mem                   (* reservation returned by ringbuf_reserve *)

type ret_type =
  | Ret_scalar
  | Ret_void
  | Ret_map_value_or_null
  | Ret_sock_or_null                  (* acquires a reference *)
  | Ret_task                          (* current task: trusted, not acquired *)
  | Ret_mem_or_null of mem_size       (* e.g. ringbuf_reserve *)

(* Resource effects the verifier must track (and that the runtime records
   for termination cleanup). *)
type effect_ =
  | Acquires                          (* ret carries a reference obligation *)
  | Releases of int                   (* arg at index releases its reference *)
  | Locks
  | Unlocks

type t = {
  args : arg_type list;               (* at most 5 (r1..r5) *)
  ret : ret_type;
  effects : effect_ list;
  may_sleep : bool;                   (* may block: illegal under a spinlock *)
  unbounded : bool;                   (* runtime not bounded by own insns
                                         (bpf_loop-style iteration) *)
}

let make ?(effects = []) ?(may_sleep = false) ?(unbounded = false) ~args ~ret
    () =
  { args; ret; effects; may_sleep; unbounded }

let arg_count t = List.length t.args

let acquires t = List.mem Acquires t.effects
let releases t = List.find_map (function Releases i -> Some i | _ -> None) t.effects
let locks t = List.mem Locks t.effects
let unlocks t = List.mem Unlocks t.effects
let may_sleep t = t.may_sleep
let unbounded t = t.unbounded
