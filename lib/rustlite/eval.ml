(* The rustlite evaluator: safe-language semantics over the simulated
   kernel.

   Language safety at work (Table 2, rows enforced by "Language safety"):
   arithmetic is checked (overflow, division by zero and out-of-range
   shifts panic instead of wrapping into undefined behaviour), array
   indexing is bounds-checked, there is no way to fabricate a pointer, and
   control flow is structured (no computed gotos).

   Runtime protection at work (rows enforced by "Runtime protection"):
   every evaluation step burns fuel and advances the virtual clock; the
   fuel/watchdog guards terminate the program, and termination — like a
   panic — runs the recorded RAII destructors (Guard.terminate), so kernel
   resources cannot leak no matter where execution stops. *)

module Oops = Kernel_sim.Oops
module Rcu = Kernel_sim.Rcu
module Vclock = Kernel_sim.Vclock
module Guard = Runtime.Guard
open Ast
open Value

type outcome =
  | Ret of Value.t
  | Terminated of Guard.termination
  | Oopsed of Oops.report

let pp_outcome ppf = function
  | Ret v -> Format.fprintf ppf "ret=%a" Value.pp v
  | Terminated t -> Guard.pp_termination ppf t
  | Oopsed r -> Oops.pp_report ppf r

type run_ctx = {
  kctx : Kcrate.ctx;
  mutable fuel : int64;   (* remaining steps; negative = unlimited *)
  wall_deadline : int64;  (* absolute, -1 = none *)
  ns_per_step : int64;
  mutable steps : int64;
}

let panic msg = raise (Guard.Terminate (Guard.Language_panic msg))

let tick rc =
  (* fuel precedes the step, as in Interp.tick: fuel:N runs exactly N steps *)
  if Int64.compare rc.fuel 0L >= 0 then begin
    if Int64.equal rc.fuel 0L then raise (Guard.Terminate Guard.Fuel_exhausted);
    rc.fuel <- Int64.sub rc.fuel 1L
  end;
  rc.steps <- Int64.add rc.steps 1L;
  Vclock.advance rc.kctx.Kcrate.hctx.kernel.clock rc.ns_per_step;
  if Int64.rem rc.steps 1024L = 0L then begin
    Rcu.check_stall rc.kctx.Kcrate.hctx.kernel.rcu ~context:"rustlite_ext";
    if Int64.compare rc.wall_deadline 0L >= 0
       && Int64.compare (Vclock.now rc.kctx.Kcrate.hctx.kernel.clock) rc.wall_deadline > 0
    then raise (Guard.Terminate Guard.Watchdog_timeout)
  end

(* checked i64 arithmetic: Rust debug-profile semantics *)
let checked_add a b =
  let r = Int64.add a b in
  if (Int64.compare a 0L > 0 && Int64.compare b 0L > 0 && Int64.compare r 0L < 0)
     || (Int64.compare a 0L < 0 && Int64.compare b 0L < 0 && Int64.compare r 0L >= 0)
  then panic "attempt to add with overflow"
  else r

let checked_sub a b =
  if Int64.equal b Int64.min_int then
    if Int64.compare a 0L >= 0 then panic "attempt to subtract with overflow"
    else Int64.sub a b
  else checked_add a (Int64.neg b)

let checked_mul a b =
  if Int64.equal a 0L || Int64.equal b 0L then 0L
  else
    let r = Int64.mul a b in
    if not (Int64.equal (Int64.div r a) b) then panic "attempt to multiply with overflow"
    else r

let checked_div a b =
  if Int64.equal b 0L then panic "attempt to divide by zero"
  else if Int64.equal a Int64.min_int && Int64.equal b (-1L) then
    panic "attempt to divide with overflow"
  else Int64.div a b

let checked_rem a b =
  if Int64.equal b 0L then panic "attempt to calculate the remainder with a divisor of zero"
  else if Int64.equal a Int64.min_int && Int64.equal b (-1L) then 0L
  else Int64.rem a b

let checked_shift what f a b =
  if Int64.compare b 0L < 0 || Int64.compare b 63L > 0 then
    panic ("attempt to " ^ what ^ " with overflow")
  else f a (Int64.to_int b)

type binding = { mutable v : Value.t }

(* Drop a value: run RAII destructors of live resources inside it. *)
let rec drop_value (rc : run_ctx) (v : Value.t) =
  match v with
  | V_resource h when h.alive ->
    h.alive <- false;
    ignore (Helpers.Resources.release_by_key rc.kctx.Kcrate.hctx.resources h.key)
  | V_resource _ -> ()
  | V_option (Some inner) -> drop_value rc inner
  | V_array a -> Array.iter (drop_value rc) a
  | V_unit | V_bool _ | V_int _ | V_str _ | V_option None | V_ref _ -> ()

let rec eval (rc : run_ctx) (env : (string * binding) list) (e : expr) : Value.t =
  tick rc;
  match e with
  | Lit_unit -> V_unit
  | Lit_bool b -> V_bool b
  | Lit_int v -> V_int v
  | Lit_str s -> V_str s
  | Var x -> (List.assoc x env).v
  | Let { name; mut = _; value; body } ->
    let v = eval rc env value in
    let b = { v } in
    let result = eval rc ((name, b) :: env) body in
    (* scope exit: RAII drop of whatever the binding still owns *)
    drop_value rc b.v;
    result
  | Assign (x, e) ->
    let b = List.assoc x env in
    let v = eval rc env e in
    drop_value rc b.v;
    b.v <- v;
    V_unit
  | Binop (op, a, b) -> (
    match op with
    | LAnd -> if as_bool (eval rc env a) then eval rc env b else V_bool false
    | LOr -> if as_bool (eval rc env a) then V_bool true else eval rc env b
    | _ -> (
      let va = eval rc env a and vb = eval rc env b in
      match op with
      | Add -> V_int (checked_add (as_int va) (as_int vb))
      | Sub -> V_int (checked_sub (as_int va) (as_int vb))
      | Mul -> V_int (checked_mul (as_int va) (as_int vb))
      | Div -> V_int (checked_div (as_int va) (as_int vb))
      | Rem -> V_int (checked_rem (as_int va) (as_int vb))
      | BAnd -> V_int (Int64.logand (as_int va) (as_int vb))
      | BOr -> V_int (Int64.logor (as_int va) (as_int vb))
      | BXor -> V_int (Int64.logxor (as_int va) (as_int vb))
      | Shl -> V_int (checked_shift "shift left" Int64.shift_left (as_int va) (as_int vb))
      | Shr ->
        V_int (checked_shift "shift right" Int64.shift_right (as_int va) (as_int vb))
      | Eq -> V_bool (va = vb)
      | Ne -> V_bool (va <> vb)
      | Lt -> V_bool (Int64.compare (as_int va) (as_int vb) < 0)
      | Le -> V_bool (Int64.compare (as_int va) (as_int vb) <= 0)
      | Gt -> V_bool (Int64.compare (as_int va) (as_int vb) > 0)
      | Ge -> V_bool (Int64.compare (as_int va) (as_int vb) >= 0)
      | LAnd | LOr -> assert false))
  | Not e -> V_bool (not (as_bool (eval rc env e)))
  | Neg e ->
    let v = as_int (eval rc env e) in
    if Int64.equal v Int64.min_int then panic "attempt to negate with overflow"
    else V_int (Int64.neg v)
  | If (c, t, f) -> if as_bool (eval rc env c) then eval rc env t else eval rc env f
  | While (c, body) ->
    while as_bool (eval rc env c) do
      ignore (eval rc env body)
    done;
    V_unit
  | For (x, lo, hi, body) ->
    let lo = as_int (eval rc env lo) and hi = as_int (eval rc env hi) in
    let i = ref lo in
    while Int64.compare !i hi < 0 do
      ignore (eval rc ((x, { v = V_int !i }) :: env) body);
      i := Int64.add !i 1L
    done;
    V_unit
  | Seq es ->
    let rec go = function
      | [] -> V_unit
      | [ last ] -> eval rc env last
      | e :: rest ->
        let v = eval rc env e in
        (* a discarded temporary is dropped immediately *)
        drop_value rc v;
        go rest
    in
    go es
  | Some_ e -> V_option (Some (eval rc env e))
  | None_ _ -> V_option None
  | Match_option { scrutinee; bind; some_branch; none_branch } -> (
    match eval rc env scrutinee with
    | V_option (Some payload) ->
      let b = { v = payload } in
      let result = eval rc ((bind, b) :: env) some_branch in
      drop_value rc b.v;
      result
    | V_option None -> eval rc env none_branch
    | _ -> panic "match on non-Option")
  | Array_lit es -> V_array (Array.of_list (List.map (eval rc env) es))
  | Index (a, i) -> (
    let arr = eval rc env a and idx = as_int (eval rc env i) in
    match arr with
    | V_array a ->
      let n = Array.length a in
      if Int64.compare idx 0L < 0 || Int64.compare idx (Int64.of_int n) >= 0 then
        panic
          (Printf.sprintf "index out of bounds: the len is %d but the index is %Ld" n idx)
      else a.(Int64.to_int idx)
    | _ -> panic "index on non-array")
  | Index_assign (x, i, v) -> (
    let b = List.assoc x env in
    let idx = as_int (eval rc env i) in
    let value = eval rc env v in
    match b.v with
    | V_array a ->
      let n = Array.length a in
      if Int64.compare idx 0L < 0 || Int64.compare idx (Int64.of_int n) >= 0 then
        panic
          (Printf.sprintf "index out of bounds: the len is %d but the index is %Ld" n idx)
      else begin
        a.(Int64.to_int idx) <- value;
        V_unit
      end
    | _ -> panic "index-assign on non-array")
  | Borrow x -> V_ref (List.assoc x env).v
  | Call (f, args) -> (
    let vargs = List.map (eval rc env) args in
    match Kcrate.call rc.kctx f vargs with
    | v -> v
    | exception Kcrate.Panic msg -> panic msg)
  | Panic msg -> panic msg
  | Str_len e -> V_int (Int64.of_int (String.length (as_str (eval rc env e))))
  | Str_parse e -> (
    (* core::str::parse::<i64>() *)
    let s = String.trim (as_str (eval rc env e)) in
    match Int64.of_string_opt s with
    | Some v -> V_option (Some (V_int v))
    | None -> V_option None)
  | Str_cmp (a, b) ->
    V_int (Int64.of_int (compare (as_str (eval rc env a)) (as_str (eval rc env b))))
  | Drop_ x ->
    let b = List.assoc x env in
    drop_value rc b.v;
    V_unit

let run ?(fuel = -1L) ?(wall_ns = -1L) ?(ns_per_step = 2L) ~(kctx : Kcrate.ctx)
    (e : expr) : outcome =
  let hctx = kctx.Kcrate.hctx in
  let wall_deadline =
    if Int64.compare wall_ns 0L < 0 then -1L
    else Int64.add (Vclock.now hctx.kernel.clock) wall_ns
  in
  let rc = { kctx; fuel; wall_deadline; ns_per_step; steps = 0L } in
  let rcu = hctx.kernel.rcu in
  Rcu.read_lock rcu;
  match eval rc [] e with
  | v ->
    Rcu.read_unlock rcu ~context:"rustlite exit";
    (* the program's own result may carry resources; top-level return drops
       them (ownership returns to the kernel crate) *)
    drop_value rc v;
    Ret v
  | exception Guard.Terminate reason -> Terminated (Guard.terminate hctx reason)
  | exception Oops.Kernel_oops report ->
    Kernel_sim.Kernel.record_oops hctx.kernel report;
    Oopsed report

let steps rc = rc.steps
