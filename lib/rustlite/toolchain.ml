(* The trusted userspace toolchain: type check -> ownership check -> sign.

   Only extensions that pass both checkers get a signature; the kernel-side
   loader (Framework.Loader) validates the signature and loads without any
   in-kernel verification — the architecture of the paper's Figure 5. *)

module Bpf_map = Maps.Bpf_map

type source = {
  name : string;
  maps : Bpf_map.def list; (* maps the extension declares (by name) *)
  body : Ast.expr;
}

type signed_extension = {
  src : source;
  payload : string;       (* what was signed: name + maps + canonical body *)
  signature : Sign.signature;
}

type error =
  | Type_error of Typeck.error
  | Ownership_error of Ownck.error

let pp_error ppf = function
  | Type_error e -> Format.fprintf ppf "type error at %s: %s" e.Typeck.where_ e.Typeck.what
  | Ownership_error e ->
    Format.fprintf ppf "ownership error at %s: %s" e.Ownck.where_ e.Ownck.what

let serialize_map (d : Bpf_map.def) =
  Printf.sprintf "(map %s %s %d %d %d)" d.Bpf_map.name
    (Bpf_map.kind_to_string d.Bpf_map.kind) d.Bpf_map.key_size d.Bpf_map.value_size
    d.Bpf_map.max_entries

let payload_of (src : source) =
  Printf.sprintf "(extension %s (maps %s) %s)" src.name
    (String.concat " " (List.map serialize_map src.maps))
    (Ast.serialize src.body)

(* The toolchain's signing key.  In the real design this is the private half
   of a keypair whose public half the kernel trusts via secure boot / IMA;
   the shared-MAC simplification does not change the load-time protocol. *)
let toolchain_key = "untenable-trusted-toolchain-key-v1"

let compile (src : source) : (signed_extension, error) result =
  match Typeck.check src.body with
  | Error e -> Error (Type_error e)
  | Ok _ty -> (
    match Ownck.check src.body with
    | Error e -> Error (Ownership_error e)
    | Ok () ->
      let payload = payload_of src in
      Ok { src; payload; signature = Sign.sign ~key:toolchain_key payload })

(* Canonical content digest of a signed artifact: recomputed from the payload
   that actually arrived (not the signature's claim), so a tampered artifact
   gets a different address.  Shares the digest space of Ebpf.Program.digest:
   both are SHA-256 hex over the canonical serialization. *)
let artifact_digest (ext : signed_extension) : string =
  Hash.Sha256.hex_digest ext.payload

(* Kernel-side validation: recompute the payload from what arrived and check
   the MAC.  Tampering with the AST after signing changes the payload. *)
let validate (ext : signed_extension) : bool =
  let payload = payload_of ext.src in
  String.equal payload ext.payload
  && Sign.validate ~key:toolchain_key payload ext.signature
