(* Extension signing: the "decoupling static code analysis" half of §3.1.

   The trusted userspace toolchain checks a program and signs its canonical
   serialization; the kernel validates the signature at load time and skips
   all in-kernel analysis ("it does not incur the burden (and complexity)
   of checking safety properties").

   The SHA-256/HMAC primitives live in the shared [Hash] library (also used
   by Ebpf.Program.digest and the Framework verdict cache); this module
   re-exports them and layers the signature record on top.  The trust model
   is a shared MAC key between toolchain and kernel — standing in for the
   asymmetric signatures and secure key bootstrap (IMA integration) the
   paper points at. *)

let sha256 = Hash.Sha256.digest
let to_hex = Hash.Sha256.to_hex
let hmac = Hash.Sha256.hmac

(* ---------------- signatures over extensions ---------------- *)

type signature = { digest_hex : string; mac_hex : string }

let sign ~key (payload : string) : signature =
  { digest_hex = to_hex (sha256 payload); mac_hex = to_hex (hmac ~key payload) }

let validate ~key (payload : string) (s : signature) : bool =
  let expect = sign ~key payload in
  (* constant-time-ish comparison (length is fixed) *)
  String.equal expect.mac_hex s.mac_hex && String.equal expect.digest_hex s.digest_hex
