(** Extension signing: the "decoupling static code analysis" half of §3.1.

    The SHA-256/HMAC primitives are the shared {!Hash.Sha256} library
    (re-exported here for existing callers); the shared-MAC trust model
    stands in for the asymmetric signatures and secure key bootstrap (IMA
    integration) the paper points at, without changing the load-time
    protocol. *)

val sha256 : string -> string
(** Raw 32-byte digest ({!Hash.Sha256.digest}). *)

val to_hex : string -> string

val hmac : key:string -> string -> string
(** HMAC-SHA256, raw 32-byte MAC. *)

type signature = { digest_hex : string; mac_hex : string }

val sign : key:string -> string -> signature

val validate : key:string -> string -> signature -> bool
(** Recompute and compare; any payload or key change fails. *)
