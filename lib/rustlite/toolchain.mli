(** The trusted userspace toolchain of §3.1: type check, ownership check,
    sign.  Only extensions that pass both checkers get a signature; the
    kernel-side loader ({!Framework.Loader.load_rustlite}) validates the
    signature and performs no analysis of its own — the architecture of
    the paper's Figure 5. *)

type source = {
  name : string;
  maps : Maps.Bpf_map.def list; (** maps the extension declares, by name *)
  body : Ast.expr;
}

type signed_extension = {
  src : source;
  payload : string;        (** the canonical serialization that was signed *)
  signature : Sign.signature;
}

type error =
  | Type_error of Typeck.error
  | Ownership_error of Ownck.error

val pp_error : Format.formatter -> error -> unit

val payload_of : source -> string

val toolchain_key : string
(** The signing key.  In the real design this is the private half of a
    keypair whose public half the kernel trusts via secure boot/IMA; the
    shared-MAC simplification does not change the load-time protocol. *)

val compile : source -> (signed_extension, error) result
(** typecheck -> ownership check -> sign. *)

val artifact_digest : signed_extension -> string
(** Canonical content address of a signed artifact: SHA-256 hex recomputed
    over the payload that actually arrived (tampering changes it). *)

val validate : signed_extension -> bool
(** Kernel-side: recompute the payload from what arrived and check the MAC;
    any post-signing mutation fails. *)
