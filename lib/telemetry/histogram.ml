(* Log2-bucket histograms, in the style of the kernel's BPF-exported
   latency histograms: bucket [i] counts observations [v] with
   2^(i-1) <= v < 2^i (bucket 0 collects v <= 0).  Cheap enough to sit on
   the helper-call path: one highest-bit scan and three field updates. *)

let bucket_count = 65 (* bucket 0 (v <= 0) + one per bit of a 64-bit value *)

type t = {
  name : string;
  buckets : int array;
  mutable count : int;
  mutable sum : int64;
  mutable max : int64;
}

let make name = { name; buckets = Array.make bucket_count 0; count = 0; sum = 0L; max = 0L }

(* Index of the highest set bit, plus one: v=1 -> 1, v in [2,4) -> 2, ... *)
let bucket_index v =
  if Int64.compare v 0L <= 0 then 0
  else begin
    let i = ref 0 and v = ref v in
    while not (Int64.equal !v 0L) do
      incr i;
      v := Int64.shift_right_logical !v 1
    done;
    !i
  end

(* Inclusive upper bound of bucket [i], i.e. 2^i - 1 (bucket 0: 0). *)
let bucket_bound i = if i = 0 then 0L else Int64.sub (Int64.shift_left 1L i) 1L

let observe t v =
  t.buckets.(bucket_index v) <- t.buckets.(bucket_index v) + 1;
  t.count <- t.count + 1;
  t.sum <- Int64.add t.sum v;
  if Int64.compare v t.max > 0 then t.max <- v

let name t = t.name
let count t = t.count
let sum t = t.sum
let max_value t = t.max
let mean t = if t.count = 0 then 0.0 else Int64.to_float t.sum /. float_of_int t.count

(* (bucket index, count) for every non-empty bucket, ascending. *)
let nonzero_buckets t =
  let acc = ref [] in
  for i = bucket_count - 1 downto 0 do
    if t.buckets.(i) > 0 then acc := (i, t.buckets.(i)) :: !acc
  done;
  !acc

(* Approximate quantile from the log2 buckets: the inclusive upper bound of
   the bucket holding the q-th observation, clamped to the observed max so
   p99 of a tight distribution cannot exceed the largest value seen.  Good
   to a factor of two — the same fidelity the kernel's exported latency
   histograms give, and enough to rank extensions against each other. *)
let quantile t q =
  if t.count = 0 then 0L
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let rank = Stdlib.max 1 (int_of_float (ceil (q *. float_of_int t.count))) in
    let cum = ref 0 and idx = ref 0 in
    (try
       for i = 0 to bucket_count - 1 do
         cum := !cum + t.buckets.(i);
         if !cum >= rank then begin
           idx := i;
           raise Exit
         end
       done
     with Exit -> ());
    let bound = bucket_bound !idx in
    if Int64.compare bound t.max > 0 then t.max else bound
  end

let copy t =
  { name = t.name; buckets = Array.copy t.buckets; count = t.count; sum = t.sum; max = t.max }

(* Rebuild a histogram from exported parts (snapshot loading). *)
let of_parts ~name ~count ~sum ~max ~buckets =
  let t = make name in
  List.iter (fun (i, n) -> if i >= 0 && i < bucket_count then t.buckets.(i) <- n) buckets;
  t.count <- count;
  t.sum <- sum;
  t.max <- max;
  t

let reset t =
  Array.fill t.buckets 0 bucket_count 0;
  t.count <- 0;
  t.sum <- 0L;
  t.max <- 0L

(* Fold [src] into [dst]: bucket-wise count addition, sums added, max of
   maxes.  Exact for everything the log2 representation keeps — merging
   per-shard histograms then reading a quantile equals observing the union
   of the samples. *)
let merge_into ~src ~dst =
  for i = 0 to bucket_count - 1 do
    dst.buckets.(i) <- dst.buckets.(i) + src.buckets.(i)
  done;
  dst.count <- dst.count + src.count;
  dst.sum <- Int64.add dst.sum src.sum;
  if Int64.compare src.max dst.max > 0 then dst.max <- src.max
