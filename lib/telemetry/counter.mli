(* A named monotonic counter. *)

type t

val make : string -> t
val incr : ?n:int -> t -> unit

(** [bump t] is [incr t] without optional-argument overhead — use on hot
    paths (it is what the interpreter charges per instruction). *)
val bump : t -> unit

(** [add t n] is [incr ~n t] without optional-argument overhead. *)
val add : t -> int -> unit
val value : t -> int
val name : t -> string
val reset : t -> unit
