(* The metric registry and trace sink — now a first-class value.

   Every instrumented subsystem interns its counters/histograms here by
   dotted name ("interp.insns", "helper.ns.bpf_loop", ...).  Historically
   the registry was a single process-global; the sharded serving engine
   (Framework.Serve) needs one registry *per shard* so that N domains can
   record telemetry without sharing mutable tables, and a [merge] at the
   barrier so the per-shard registries fold into one export.

   The scheme:

   - [type t] reifies everything that used to be module-global: the
     counter/histogram tables, the trace ring, the span depth, the ambient
     trace id and the injected clock.

   - [global] is the default instance; every pre-existing call site keeps
     its exact behaviour.

   - the *current* registry is domain-local ([Domain.DLS]), defaulting to
     [global].  All name-based entry points (interning, spans, points,
     snapshots, resets) resolve against the current registry, so a shard
     that installs its private registry with [using] captures every
     instrumentation site that runs on its domain — including ones deep in
     the interpreter and helper layer that know nothing about shards —
     with no argument threading.

   - handle-based entry points ([bump]/[add]/[observe] on an interned
     object) mutate that object wherever it was interned.  Module-level
     handles interned at init time belong to [global]; concurrent bumps
     from several domains are benign int races (increments may be lost
     under contention, never torn or unsafe).

   Trace-id allocation stays global (one atomic), so two shards never mint
   the same causal trace id.

   Disabling ([set_enabled false]) turns every recording entry point into a
   no-op sink — one flag load on the hot path — which is what the bench's
   overhead experiment compares against. *)

let on = ref true
let default_trace_capacity = 4096

type t = {
  label : string;
  counters : (string, Counter.t) Hashtbl.t;
  histograms : (string, Histogram.t) Hashtbl.t;
  mutable ring : Ring.t;
  mutable depth : int;
  mutable cur_trace : int;
  mutable clock : unit -> int64;
}

let create ?(label = "registry") ?(trace_capacity = default_trace_capacity) () =
  {
    label;
    counters = Hashtbl.create 64;
    histograms = Hashtbl.create 32;
    ring = Ring.create ~capacity:trace_capacity;
    depth = 0;
    cur_trace = 0;
    clock = (fun () -> 0L);
  }

let global = create ~label:"global" ()
let label t = t.label

(* The ambient registry for this domain.  [global] unless a scope installed
   a private one ([using]) — which is exactly what shard workers do. *)
let dls_current : t Domain.DLS.key = Domain.DLS.new_key (fun () -> global)
let current () = Domain.DLS.get dls_current

let using r f =
  let saved = Domain.DLS.get dls_current in
  Domain.DLS.set dls_current r;
  Fun.protect ~finally:(fun () -> Domain.DLS.set dls_current saved) f

(* Causal trace ids.  A trace groups the spans and points of one logical
   unit of work (one pipeline load, one dispatched packet); 0 means
   "outside any trace".  Allocation is a process-wide atomic so two
   domains never share an id, and [with_trace] scopes the ambient id on
   the *current registry* (hence per domain), so instrumentation sites
   deep in the runtime inherit the right trace without argument
   threading. *)
let next_trace = Atomic.make 0
let fresh_trace () = Atomic.fetch_and_add next_trace 1 + 1
let current_trace () = (current ()).cur_trace

let with_trace id f =
  let r = current () in
  let saved = r.cur_trace in
  r.cur_trace <- id;
  Fun.protect ~finally:(fun () -> r.cur_trace <- saved) f

let enabled () = !on
let set_enabled b = on := b
let set_clock f = (current ()).clock <- f
let now () = (current ()).clock ()

(* Replaces the current registry's ring: existing events are discarded. *)
let set_trace_capacity n = (current ()).ring <- Ring.create ~capacity:n

(* Interning returns the same [Counter.t] for the same name within one
   registry, so hot call sites can hold the counter directly and skip the
   hash lookup. *)
let counter_in r name =
  match Hashtbl.find_opt r.counters name with
  | Some c -> c
  | None ->
    let c = Counter.make name in
    Hashtbl.add r.counters name c;
    c

let histogram_in r name =
  match Hashtbl.find_opt r.histograms name with
  | Some h -> h
  | None ->
    let h = Histogram.make name in
    Hashtbl.add r.histograms name h;
    h

let counter name = counter_in (current ()) name
let histogram name = histogram_in (current ()) name
let incr ?(n = 1) c = if !on then Counter.incr ~n c
let[@inline] bump c = if !on then Counter.bump c
let[@inline] add c n = if !on then Counter.add c n
let incr_name ?(n = 1) name = if !on then Counter.incr ~n (counter name)
let observe h v = if !on then Histogram.observe h v
let observe_name name v = if !on then Histogram.observe (histogram name) v

let point ?clock ?value name =
  if !on then begin
    let r = current () in
    let t = match clock with Some c -> c () | None -> r.clock () in
    Ring.push r.ring ~time_ns:t ~depth:r.depth ~trace:r.cur_trace
      ~kind:Event.Point ~name
      ~value:(Option.value value ~default:0L)
  end

(* A span emits Enter/Exit trace events and feeds a "<name>.ns" duration
   histogram, all on the current registry.  Durations are measured on
   [?clock] (default: the registry's injected clock).  Hot call sites
   should pre-intern the histogram and pass it as [?hist]; resolving
   "<name>.ns" costs a string concatenation plus a hash lookup per span. *)
let with_span ?clock ?hist name f =
  if not !on then f ()
  else begin
    let r = current () in
    let now = match clock with Some c -> c | None -> r.clock in
    let t0 = now () in
    Ring.push r.ring ~time_ns:t0 ~depth:r.depth ~trace:r.cur_trace
      ~kind:Event.Enter ~name ~value:0L;
    r.depth <- r.depth + 1;
    let finish () =
      r.depth <- r.depth - 1;
      let t1 = now () in
      let dt = Int64.sub t1 t0 in
      Ring.push r.ring ~time_ns:t1 ~depth:r.depth ~trace:r.cur_trace
        ~kind:Event.Exit ~name ~value:dt;
      let h = match hist with Some h -> h | None -> histogram_in r (name ^ ".ns") in
      Histogram.observe h dt
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

(* ---- merging ----

   Folding one registry into another — the per-shard -> one-export path:

   - counters: summed by name (missing names interned in [into]);
   - log2 histograms: bucket-wise count addition, sums added, max of
     maxes — exact for everything the representation keeps;
   - trace rings: [src]'s events appended to [into]'s ring oldest-first
     (re-sequenced by the destination), events past capacity dropped and
     counted, and [src]'s own drop count carried over.

   [merge] does not clear [src]; it can be inspected (or re-merged —
   don't) afterwards. *)
let merge src ~into =
  if src == into then invalid_arg "Registry.merge: src and into are the same registry";
  Hashtbl.iter
    (fun name c ->
      let v = Counter.value c in
      if v <> 0 then Counter.add (counter_in into name) v)
    src.counters;
  Hashtbl.iter
    (fun name h ->
      if Histogram.count h > 0 then
        Histogram.merge_into ~src:h ~dst:(histogram_in into name))
    src.histograms;
  Ring.merge_into ~src:src.ring ~dst:into.ring

(* ---- snapshots ---- *)

type snapshot = {
  counters : (string * int) list;           (* sorted by name *)
  histograms : (string * Histogram.t) list; (* sorted by name; copies *)
  events : Event.t list;                    (* oldest first *)
  dropped_events : int;
  trace_capacity : int;                     (* ring capacity at snapshot time *)
}

let sorted_bindings tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot_of (r : t) =
  {
    counters = sorted_bindings r.counters Counter.value;
    histograms = sorted_bindings r.histograms Histogram.copy;
    events = Ring.events r.ring;
    dropped_events = Ring.dropped r.ring;
    trace_capacity = Ring.capacity r.ring;
  }

let snapshot () = snapshot_of (current ())

(* Zero all values but keep interned objects alive, so module-level counter
   references held by instrumentation sites survive a reset.  Resets the
   *current* registry; the global trace-id allocator resets only when the
   global registry is the current one (tests depend on fresh ids). *)
let reset () =
  let r = current () in
  Hashtbl.iter (fun _ c -> Counter.reset c) r.counters;
  Hashtbl.iter (fun _ h -> Histogram.reset h) r.histograms;
  Ring.reset r.ring;
  r.depth <- 0;
  r.cur_trace <- 0;
  if r == global then Atomic.set next_trace 0
