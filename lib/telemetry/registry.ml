(* The process-global metric registry and trace sink.

   Every instrumented subsystem interns its counters/histograms here by
   dotted name ("interp.insns", "helper.ns.bpf_loop", ...).  The registry
   is deliberately global: instrumentation sites are scattered across
   libraries that share no common context object, and threading one through
   would be most of the cost of the feature.

   Disabling ([set_enabled false]) turns every recording entry point into a
   no-op sink — one flag load on the hot path — which is what the bench's
   overhead experiment compares against.

   Time comes from an injected clock so this library stays dependency-free
   while spans are still timed on the simulated [Vclock]: [Kernel.create]
   points the clock at its world's Vclock.  Call sites that hold a specific
   kernel can pass [?clock] explicitly to be robust to multiple worlds. *)

let on = ref true
let clock_src : (unit -> int64) ref = ref (fun () -> 0L)

let counters : (string, Counter.t) Hashtbl.t = Hashtbl.create 64
let histograms : (string, Histogram.t) Hashtbl.t = Hashtbl.create 32
let default_trace_capacity = 4096
let ring = ref (Ring.create ~capacity:default_trace_capacity)
let depth = ref 0

(* Causal trace ids.  A trace groups the spans and points of one logical
   unit of work (one pipeline load, one dispatched packet); 0 means
   "outside any trace".  Allocation is a plain counter so two loads never
   share an id, and [with_trace] scopes the ambient id dynamically, so
   instrumentation sites deep in the runtime inherit the right trace
   without any argument threading. *)
let next_trace = ref 0
let cur_trace = ref 0

let fresh_trace () =
  incr next_trace;
  !next_trace

let current_trace () = !cur_trace

let with_trace id f =
  let saved = !cur_trace in
  cur_trace := id;
  Fun.protect ~finally:(fun () -> cur_trace := saved) f

let enabled () = !on
let set_enabled b = on := b
let set_clock f = clock_src := f
let now () = !clock_src ()

(* Replaces the ring: existing events are discarded. *)
let set_trace_capacity n = ring := Ring.create ~capacity:n

(* Interning returns the same [Counter.t] for the same name, so hot call
   sites can hold the counter directly and skip the hash lookup. *)
let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = Counter.make name in
    Hashtbl.add counters name c;
    c

let histogram name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
    let h = Histogram.make name in
    Hashtbl.add histograms name h;
    h

let incr ?(n = 1) c = if !on then Counter.incr ~n c
let[@inline] bump c = if !on then Counter.bump c
let[@inline] add c n = if !on then Counter.add c n
let incr_name ?(n = 1) name = if !on then Counter.incr ~n (counter name)
let observe h v = if !on then Histogram.observe h v
let observe_name name v = if !on then Histogram.observe (histogram name) v

let point ?clock ?value name =
  if !on then
    let t = match clock with Some c -> c () | None -> now () in
    Ring.push !ring ~time_ns:t ~depth:!depth ~trace:!cur_trace ~kind:Event.Point ~name
      ~value:(Option.value value ~default:0L)

(* A span emits Enter/Exit trace events and feeds a "<name>.ns" duration
   histogram.  Durations are measured on [?clock] (default: the injected
   registry clock).  Hot call sites should pre-intern the histogram and
   pass it as [?hist]; resolving "<name>.ns" costs a string concatenation
   plus a hash lookup per span. *)
let with_span ?clock ?hist name f =
  if not !on then f ()
  else begin
    let now = match clock with Some c -> c | None -> !clock_src in
    let t0 = now () in
    Ring.push !ring ~time_ns:t0 ~depth:!depth ~trace:!cur_trace ~kind:Event.Enter ~name ~value:0L;
    depth := !depth + 1;
    let finish () =
      depth := !depth - 1;
      let t1 = now () in
      let dt = Int64.sub t1 t0 in
      Ring.push !ring ~time_ns:t1 ~depth:!depth ~trace:!cur_trace ~kind:Event.Exit ~name ~value:dt;
      let h = match hist with Some h -> h | None -> histogram (name ^ ".ns") in
      Histogram.observe h dt
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

(* ---- snapshots ---- *)

type snapshot = {
  counters : (string * int) list;           (* sorted by name *)
  histograms : (string * Histogram.t) list; (* sorted by name; copies *)
  events : Event.t list;                    (* oldest first *)
  dropped_events : int;
  trace_capacity : int;                     (* ring capacity at snapshot time *)
}

let sorted_bindings tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot () =
  {
    counters = sorted_bindings counters Counter.value;
    histograms = sorted_bindings histograms Histogram.copy;
    events = Ring.events !ring;
    dropped_events = Ring.dropped !ring;
    trace_capacity = Ring.capacity !ring;
  }

(* Zero all values but keep interned objects alive, so module-level counter
   references held by instrumentation sites survive a reset. *)
let reset () =
  Hashtbl.iter (fun _ c -> Counter.reset c) counters;
  Hashtbl.iter (fun _ h -> Histogram.reset h) histograms;
  Ring.reset !ring;
  depth := 0;
  next_trace := 0;
  cur_trace := 0
