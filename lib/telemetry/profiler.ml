(* Vclock-driven sampling profiler.

   The run loops (interpreter, JIT) call [deadline]/[next_deadline] to turn
   the global period into a per-run threshold, and compare the simulated
   clock against it once per instruction.  When sampling is off the
   deadline is [Int64.max_int], so the disabled cost is a single always-
   false 64-bit compare — the same trick the interpreter's block-profile
   tallies use to stay off the flame graph themselves.

   Samples are keyed by a folded-stack string ("prog;block:12") so the
   aggregate is already in flamegraph-collapse format; attribution from pc
   to CFG block happens at the sampling site, which owns the program. *)

let period = ref 0L

(* One process-wide sample store, shared by every domain: samples are rare
   by construction (at most one per period), so a mutex on the record/read
   path costs nothing while keeping the table safe when sharded serving
   (Framework.Serve) runs the interpreter on several domains at once. *)
let samples : (string, int ref) Hashtbl.t = Hashtbl.create 64
let samples_mutex = Mutex.create ()
let locked f = Mutex.protect samples_mutex f

(* [set_period 0] disables sampling; any positive period is the simulated
   nanoseconds between samples. *)
let set_period ns = period := if Int64.compare ns 0L < 0 then 0L else ns
let period_ns () = !period
let enabled () = Int64.compare !period 0L > 0

(* Deadline for a run (or following a sample) at simulated time [now]: the
   next global period boundary after [now].  Boundaries are absolute —
   multiples of the period on the shared Vclock — so runs shorter than one
   period still accumulate toward a sample instead of re-arming a sliding
   now+period deadline they can never reach; and skipping forward keeps the
   sample rate bounded when one instruction advances the clock by many
   periods. *)
let next_deadline ~now =
  if enabled () then
    let p = !period in
    Int64.add now (Int64.sub p (Int64.rem now p))
  else Int64.max_int

let record key =
  locked @@ fun () ->
  match Hashtbl.find_opt samples key with
  | Some r -> incr r
  | None -> Hashtbl.add samples key (ref 1)

let total () = locked (fun () -> Hashtbl.fold (fun _ r acc -> acc + !r) samples 0)

(* (stack, count), heaviest first; ties broken by name for determinism. *)
let sample_list () =
  locked (fun () -> Hashtbl.fold (fun k r acc -> (k, !r) :: acc) samples [])
  |> List.sort (fun (ka, ca) (kb, cb) ->
         match compare cb ca with 0 -> String.compare ka kb | c -> c)

(* Flamegraph collapse format: one "stack count" line per distinct stack,
   sorted by stack so the output is diffable. *)
let to_folded () =
  let buf = Buffer.create 256 in
  locked (fun () -> Hashtbl.fold (fun k r acc -> (k, !r) :: acc) samples [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (k, c) -> Buffer.add_string buf (Printf.sprintf "%s %d\n" k c));
  Buffer.contents buf

let reset () = locked (fun () -> Hashtbl.reset samples)
