(* A single trace event.  Spans emit an [Enter]/[Exit] pair ([Exit] carries
   the span duration in [value]); instant events are [Point]s (the value is
   event-specific, e.g. a helper's return). *)

type kind = Enter | Exit | Point

type t = {
  seq : int;          (* global attempt sequence; gaps reveal drops *)
  time_ns : int64;    (* simulated (Vclock) time when recorded *)
  depth : int;        (* span nesting depth at emission *)
  trace : int;        (* causal trace id (0 = outside any trace) *)
  kind : kind;
  name : string;
  value : int64;
}

let kind_to_string = function Enter -> "enter" | Exit -> "exit" | Point -> "point"

let kind_of_string = function
  | "enter" -> Some Enter
  | "exit" -> Some Exit
  | "point" -> Some Point
  | _ -> None

let pp ppf e =
  let indent = String.make (2 * e.depth) ' ' in
  match e.kind with
  | Enter -> Format.fprintf ppf "%12Ldns %s> %s" e.time_ns indent e.name
  | Exit -> Format.fprintf ppf "%12Ldns %s< %s (%Ldns)" e.time_ns indent e.name e.value
  | Point -> Format.fprintf ppf "%12Ldns %s* %s = %Ld" e.time_ns indent e.name e.value
