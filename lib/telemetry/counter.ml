(* Monotonic event counters.

   Values are plain [int]s, not [Int64.t]: a counter increment sits on the
   interpreter's per-instruction hot path, and a mutable boxed int64 field
   would allocate on every bump.  At 63 bits an int cannot realistically
   wrap in a simulation. *)

type t = { name : string; mutable value : int }

let make name = { name; value = 0 }
let incr ?(n = 1) t = t.value <- t.value + n

(* Fast paths for hot loops: no optional-argument plumbing. *)
let[@inline] bump t = t.value <- t.value + 1
let[@inline] add t n = t.value <- t.value + n
let value t = t.value
let name t = t.name
let reset t = t.value <- 0
