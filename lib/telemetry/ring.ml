(* Bounded trace-event ring.

   Overflow semantics deliberately mirror [Maps.Ringbuf.reserve]: when the
   buffer is full the NEW event is dropped (and counted), the oldest events
   are retained.  That is the BPF ring buffer's contract — producers fail,
   consumers never lose what was already committed — and keeping the trace
   sink bit-compatible with the thing it observes avoids two mental models. *)

type t = {
  capacity : int;
  mutable rev_events : Event.t list; (* newest first *)
  mutable len : int;
  mutable dropped : int;
  mutable next_seq : int;
}

let create ~capacity = { capacity; rev_events = []; len = 0; dropped = 0; next_seq = 0 }

let push t ~time_ns ~depth ~trace ~kind ~name ~value =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  if t.len >= t.capacity then t.dropped <- t.dropped + 1
  else begin
    t.rev_events <- { Event.seq; time_ns; depth; trace; kind; name; value } :: t.rev_events;
    t.len <- t.len + 1
  end

let events t = List.rev t.rev_events
let length t = t.len
let capacity t = t.capacity
let dropped t = t.dropped

let reset t =
  t.rev_events <- [];
  t.len <- 0;
  t.dropped <- 0;
  t.next_seq <- 0

(* Fold [src]'s events into [dst], oldest first, re-sequenced by [dst] —
   the per-shard -> merged-export path.  Capacity overflow follows the
   normal push contract (new events dropped and counted), and [src]'s own
   drop count carries over so no loss is hidden by the merge. *)
let merge_into ~src ~dst =
  List.iter
    (fun (e : Event.t) ->
      push dst ~time_ns:e.Event.time_ns ~depth:e.Event.depth ~trace:e.Event.trace
        ~kind:e.Event.kind ~name:e.Event.name ~value:e.Event.value)
    (events src);
  dst.dropped <- dst.dropped + src.dropped
