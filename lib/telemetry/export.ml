(* Renderers and persistence for registry snapshots.

   Three output formats:
     - JSON, for machine consumption;
     - Prometheus text exposition, so a scrape endpoint can be bolted on
       later without touching instrumentation sites;
     - a human table (the CLI's `stats` default).

   Snapshots also round-trip through a line-based text file so separate CLI
   invocations can share state (`demo` writes, `stats` reads) without this
   library growing a JSON parser. *)

type snapshot = Registry.snapshot = {
  counters : (string * int) list;
  histograms : (string * Histogram.t) list;
  events : Event.t list;
  dropped_events : int;
  trace_capacity : int;
}

(* ---- JSON ---- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json (s : snapshot) =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n  \"counters\": {";
  List.iteri
    (fun i (name, v) -> add "%s\n    \"%s\": %d" (if i = 0 then "" else ",") (json_escape name) v)
    s.counters;
  add "\n  },\n  \"histograms\": {";
  List.iteri
    (fun i (name, h) ->
      add "%s\n    \"%s\": { \"count\": %d, \"sum\": %Ld, \"max\": %Ld, \"buckets\": ["
        (if i = 0 then "" else ",")
        (json_escape name) (Histogram.count h) (Histogram.sum h) (Histogram.max_value h);
      List.iteri
        (fun j (idx, n) ->
          add "%s{ \"le\": %Ld, \"count\": %d }" (if j = 0 then "" else ", ")
            (Histogram.bucket_bound idx) n)
        (Histogram.nonzero_buckets h);
      add "] }")
    s.histograms;
  add "\n  },\n  \"trace\": { \"retained\": %d, \"dropped\": %d, \"capacity\": %d, \"events\": ["
    (List.length s.events) s.dropped_events s.trace_capacity;
  List.iteri
    (fun i (e : Event.t) ->
      add
        "%s\n    { \"seq\": %d, \"t\": %Ld, \"depth\": %d, \"trace\": %d, \"kind\": \"%s\", \"name\": \"%s\", \"value\": %Ld }"
        (if i = 0 then "" else ",")
        e.seq e.time_ns e.depth e.trace (Event.kind_to_string e.kind) (json_escape e.name)
        e.value)
    s.events;
  add "\n  ] }\n}\n";
  Buffer.contents buf

(* ---- Prometheus text exposition ---- *)

let prom_name name =
  "untenable_"
  ^ String.map (fun c -> match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_') name

(* Label VALUES keep the raw name (unlike metric names, which are mangled
   by [prom_name]) and so need the exposition-format escapes: backslash,
   double quote and newline.  Everything else passes through untouched. *)
let prom_label_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_prometheus (s : snapshot) =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun (name, v) ->
      let n = prom_name name in
      add "# TYPE %s counter\n%s %d\n" n n v)
    s.counters;
  List.iter
    (fun (name, h) ->
      let n = prom_name name in
      add "# TYPE %s histogram\n" n;
      let cumulative = ref 0 in
      List.iter
        (fun (idx, c) ->
          cumulative := !cumulative + c;
          add "%s_bucket{le=\"%Ld\"} %d\n" n (Histogram.bucket_bound idx) !cumulative)
        (Histogram.nonzero_buckets h);
      add "%s_bucket{le=\"+Inf\"} %d\n" n (Histogram.count h);
      add "%s_sum %Ld\n%s_count %d\n" n (Histogram.sum h) n (Histogram.count h))
    s.histograms;
  (* Retained trace events per span/point name, with the raw (escaped)
     name as a label — the one place arbitrary names reach label values. *)
  (if s.events <> [] then begin
     let by_name = Hashtbl.create 16 in
     List.iter
       (fun (e : Event.t) ->
         Hashtbl.replace by_name e.name (1 + Option.value ~default:0 (Hashtbl.find_opt by_name e.name)))
       s.events;
     add "# TYPE untenable_trace_events_total counter\n";
     Hashtbl.fold (fun name n acc -> (name, n) :: acc) by_name []
     |> List.sort (fun (a, _) (b, _) -> String.compare a b)
     |> List.iter (fun (name, n) ->
            add "untenable_trace_events_total{name=\"%s\"} %d\n" (prom_label_escape name) n)
   end);
  add "# TYPE untenable_trace_ring_capacity gauge\nuntenable_trace_ring_capacity %d\n"
    s.trace_capacity;
  add "# TYPE untenable_trace_events_dropped counter\nuntenable_trace_events_dropped %d\n"
    s.dropped_events;
  Buffer.contents buf

(* ---- human table ---- *)

let namespace name = match String.index_opt name '.' with None -> name | Some i -> String.sub name 0 i

let pp_table ?(all = false) ppf (s : snapshot) =
  let counters = if all then s.counters else List.filter (fun (_, v) -> v <> 0) s.counters in
  let histograms =
    if all then s.histograms else List.filter (fun (_, h) -> Histogram.count h > 0) s.histograms
  in
  Format.fprintf ppf "== counters ==@.";
  let last_ns = ref "" in
  List.iter
    (fun (name, v) ->
      let ns = namespace name in
      if ns <> !last_ns then begin
        if !last_ns <> "" then Format.fprintf ppf "@.";
        last_ns := ns
      end;
      Format.fprintf ppf "  %-42s %12d@." name v)
    counters;
  if histograms <> [] then begin
    Format.fprintf ppf "@.== histograms (log2 buckets) ==@.";
    List.iter
      (fun (name, h) ->
        Format.fprintf ppf "  %-42s count=%-8d mean=%-12.1f max=%Ld@." name (Histogram.count h)
          (Histogram.mean h) (Histogram.max_value h))
      histograms
  end;
  Format.fprintf ppf "@.== trace ==@.  %d events retained (capacity %d), %d dropped@."
    (List.length s.events) s.trace_capacity s.dropped_events

let pp_timeline ppf (s : snapshot) =
  List.iter (fun e -> Format.fprintf ppf "%a@." Event.pp e) s.events;
  if s.dropped_events > 0 then
    Format.fprintf ppf "... %d further events dropped (ring full)@." s.dropped_events

(* ---- Chrome trace-event JSON (Perfetto / chrome://tracing) ---- *)

(* Each causal trace becomes a lane: pid 1, tid = trace id, so Perfetto
   renders one swim-lane per load/invocation with spans nested inside.
   Enter/Exit map to the duration-event pair ph "B"/"E"; points become
   thread-scoped instants ("i").  Timestamps are microseconds (floats), so
   simulated-nanosecond resolution survives as fractional µs. *)
let to_chrome_trace (s : snapshot) =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (* A lane can mix clock domains: pipeline spans are timed on the host
     clock while points emitted from inside them (verifier internals) read
     the registry's simulated clock.  Trace-event consumers require
     monotone per-lane timestamps, so clamp each event to its lane's high-
     water mark — event order (the causal truth) is preserved. *)
  let floor_ts : (int, float) Hashtbl.t = Hashtbl.create 8 in
  add "{\"traceEvents\": [";
  List.iteri
    (fun i (e : Event.t) ->
      let ts = Int64.to_float e.time_ns /. 1000.0 in
      let ts =
        match Hashtbl.find_opt floor_ts e.trace with
        | Some prev when ts < prev -> prev
        | _ -> ts
      in
      Hashtbl.replace floor_ts e.trace ts;
      let common =
        Printf.sprintf "\"name\": \"%s\", \"cat\": \"untenable\", \"ts\": %.3f, \"pid\": 1, \"tid\": %d"
          (json_escape e.name) ts e.trace
      in
      let sep = if i = 0 then "" else "," in
      match e.kind with
      | Event.Enter -> add "%s\n  { %s, \"ph\": \"B\" }" sep common
      | Event.Exit -> add "%s\n  { %s, \"ph\": \"E\" }" sep common
      | Event.Point ->
        add "%s\n  { %s, \"ph\": \"i\", \"s\": \"t\", \"args\": { \"value\": %Ld } }" sep common
          e.value)
    s.events;
  add "\n], \"displayTimeUnit\": \"ns\"}\n";
  Buffer.contents buf

(* ---- folded stacks (flamegraph collapse format) ---- *)

(* Self-time folded stacks from the span events: each Exit attributes its
   duration minus its children's durations to the stack of open span names
   at that point.  Lanes (trace ids) fold together, so the output answers
   "where does time go under this span path" across the whole snapshot. *)
let to_folded (s : snapshot) =
  let acc : (string, int64) Hashtbl.t = Hashtbl.create 32 in
  let stacks : (int, (string * int64 ref) list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack_of trace =
    match Hashtbl.find_opt stacks trace with
    | Some st -> st
    | None ->
      let st = ref [] in
      Hashtbl.add stacks trace st;
      st
  in
  List.iter
    (fun (e : Event.t) ->
      let stack = stack_of e.trace in
      match e.kind with
      | Event.Enter -> stack := (e.name, ref 0L) :: !stack
      | Event.Exit -> (
        match !stack with
        | [] -> () (* exit without enter: ring dropped the opening event *)
        | (name, children_ns) :: rest ->
          stack := rest;
          (match rest with
          | (_, parent_children) :: _ ->
            parent_children := Int64.add !parent_children e.value
          | [] -> ());
          let self = Int64.sub e.value !children_ns in
          let self = if Int64.compare self 0L < 0 then 0L else self in
          let key = String.concat ";" (List.rev_map fst ((name, children_ns) :: rest)) in
          let prev = Option.value ~default:0L (Hashtbl.find_opt acc key) in
          Hashtbl.replace acc key (Int64.add prev self))
      | Event.Point -> ())
    s.events;
  let buf = Buffer.create 256 in
  Hashtbl.fold (fun k v l -> (k, v) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (k, v) ->
         if Int64.compare v 0L > 0 then Buffer.add_string buf (Printf.sprintf "%s %Ld\n" k v));
  Buffer.contents buf

(* ---- snapshot file round-trip ---- *)

let file_magic = "untenable-telemetry v2"

let save_file (s : snapshot) path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (file_magic ^ "\n");
      List.iter (fun (name, v) -> Printf.fprintf oc "counter %s %d\n" name v) s.counters;
      List.iter
        (fun (name, h) ->
          let buckets =
            Histogram.nonzero_buckets h
            |> List.map (fun (i, c) -> Printf.sprintf "%d:%d" i c)
            |> String.concat ","
          in
          Printf.fprintf oc "hist %s %d %Ld %Ld %s\n" name (Histogram.count h) (Histogram.sum h)
            (Histogram.max_value h)
            (if buckets = "" then "-" else buckets))
        s.histograms;
      List.iter
        (fun (e : Event.t) ->
          Printf.fprintf oc "event %d %Ld %d %d %s %Ld %s\n" e.seq e.time_ns e.depth e.trace
            (Event.kind_to_string e.kind) e.value e.name)
        s.events;
      Printf.fprintf oc "dropped %d\n" s.dropped_events;
      Printf.fprintf oc "capacity %d\n" s.trace_capacity)

let parse_error line = failwith (Printf.sprintf "telemetry snapshot: cannot parse %S" line)

let load_file path : snapshot =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let counters = ref [] and histograms = ref [] and events = ref [] in
      let dropped = ref 0 and capacity = ref Registry.default_trace_capacity in
      (match input_line ic with
      | magic when magic = file_magic -> ()
      | magic -> failwith (Printf.sprintf "telemetry snapshot: bad magic %S" magic)
      | exception End_of_file -> failwith "telemetry snapshot: empty file");
      (try
         while true do
           let line = input_line ic in
           match String.split_on_char ' ' line with
           | [ "counter"; name; v ] -> (
             match int_of_string_opt v with
             | Some v -> counters := (name, v) :: !counters
             | None -> parse_error line)
           | [ "hist"; name; count; sum; max; buckets ] ->
             let parse_buckets s =
               if s = "-" then []
               else
                 String.split_on_char ',' s
                 |> List.map (fun pair ->
                        match String.split_on_char ':' pair with
                        | [ i; c ] -> (int_of_string i, int_of_string c)
                        | _ -> parse_error line)
             in
             (try
                let h =
                  Histogram.of_parts ~name ~count:(int_of_string count)
                    ~sum:(Int64.of_string sum) ~max:(Int64.of_string max)
                    ~buckets:(parse_buckets buckets)
                in
                histograms := (name, h) :: !histograms
              with Failure _ -> parse_error line)
           | "event" :: seq :: time_ns :: depth :: trace :: kind :: value :: name_parts -> (
             match (Event.kind_of_string kind, String.concat " " name_parts) with
             | Some kind, name -> (
               try
                 events :=
                   {
                     Event.seq = int_of_string seq;
                     time_ns = Int64.of_string time_ns;
                     depth = int_of_string depth;
                     trace = int_of_string trace;
                     kind;
                     name;
                     value = Int64.of_string value;
                   }
                   :: !events
               with Failure _ -> parse_error line)
             | _ -> parse_error line)
           | [ "dropped"; n ] -> (
             match int_of_string_opt n with
             | Some n -> dropped := n
             | None -> parse_error line)
           | [ "capacity"; n ] -> (
             match int_of_string_opt n with
             | Some n -> capacity := n
             | None -> parse_error line)
           | [ "" ] -> ()
           | _ -> parse_error line
         done
       with End_of_file -> ());
      {
        counters = List.rev !counters;
        histograms = List.rev !histograms;
        events = List.rev !events;
        dropped_events = !dropped;
        trace_capacity = !capacity;
      })
