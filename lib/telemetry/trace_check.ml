(* Validator for exported Chrome trace-event JSON.

   [Export.to_chrome_trace] is only useful if Perfetto actually loads what
   it writes, so the smoke target and the round-trip test re-parse the
   exported bytes with this independent parser instead of trusting the
   writer.  The parser is a minimal recursive-descent JSON reader — enough
   for the trace-event schema; it is not a general-purpose JSON library. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected %c at byte %d, got %c" c !pos c'
    | None -> fail "expected %c at byte %d, got end of input" c !pos
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some '"' ->
          Buffer.add_char buf '"';
          advance ();
          go ()
        | Some '\\' ->
          Buffer.add_char buf '\\';
          advance ();
          go ()
        | Some '/' ->
          Buffer.add_char buf '/';
          advance ();
          go ()
        | Some 'n' ->
          Buffer.add_char buf '\n';
          advance ();
          go ()
        | Some 't' ->
          Buffer.add_char buf '\t';
          advance ();
          go ()
        | Some 'r' ->
          Buffer.add_char buf '\r';
          advance ();
          go ()
        | Some 'b' ->
          Buffer.add_char buf '\b';
          advance ();
          go ()
        | Some 'f' ->
          Buffer.add_char buf '\012';
          advance ();
          go ()
        | Some 'u' ->
          if !pos + 4 >= n then fail "truncated \\u escape";
          let hex = String.sub s (!pos + 1) 4 in
          let code =
            try int_of_string ("0x" ^ hex) with Failure _ -> fail "bad \\u escape %S" hex
          in
          (* Non-ASCII code points round-trip as '?' — the validator only
             needs structure, not exact text. *)
          Buffer.add_char buf (if code < 0x80 then Char.chr code else '?');
          pos := !pos + 5;
          go ()
        | _ -> fail "bad escape at byte %d" !pos)
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match float_of_string_opt lit with
    | Some f -> Num f
    | None -> fail "bad number %S" lit
  in
  let parse_lit lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail "bad literal at byte %d" !pos
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' -> parse_obj ()
    | Some '[' -> parse_arr ()
    | Some '"' -> Str (parse_string ())
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some 't' -> parse_lit "true" (Bool true)
    | Some 'f' -> parse_lit "false" (Bool false)
    | Some 'n' -> parse_lit "null" Null
    | Some c -> fail "unexpected %c at byte %d" c !pos
    | None -> fail "unexpected end of input"
  and parse_obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      advance ();
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec go () =
        skip_ws ();
        let key = parse_string () in
        skip_ws ();
        expect ':';
        let v = parse_value () in
        fields := (key, v) :: !fields;
        skip_ws ();
        match peek () with
        | Some ',' ->
          advance ();
          go ()
        | Some '}' -> advance ()
        | _ -> fail "expected , or } at byte %d" !pos
      in
      go ();
      Obj (List.rev !fields)
    end
  and parse_arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then begin
      advance ();
      Arr []
    end
    else begin
      let items = ref [] in
      let rec go () =
        let v = parse_value () in
        items := v :: !items;
        skip_ws ();
        match peek () with
        | Some ',' ->
          advance ();
          go ()
        | Some ']' -> advance ()
        | _ -> fail "expected , or ] at byte %d" !pos
      in
      go ();
      Arr (List.rev !items)
    end
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing bytes after JSON value at byte %d" !pos;
  v

(* ---- trace-event validation ---- *)

type stats = {
  events : int;      (* total trace events *)
  spans : int;       (* matched begin/end pairs *)
  instants : int;    (* "i" events *)
  traces : int;      (* distinct (pid, tid) lanes *)
  max_depth : int;   (* deepest span nesting observed *)
}

let field name = function
  | Obj fields -> (
    match List.assoc_opt name fields with
    | Some v -> v
    | None -> fail "event missing %S field" name)
  | _ -> fail "trace event is not an object"

let str_field name ev = match field name ev with Str s -> s | _ -> fail "%S not a string" name
let num_field name ev = match field name ev with Num f -> f | _ -> fail "%S not a number" name

(* Validate exported trace JSON: well-formed JSON, a traceEvents array,
   and per (pid, tid) lane a proper span tree — every "E" closes the most
   recent open "B" of the same name, timestamps never go backwards, and
   (by stack discipline plus monotone time) every child interval nests
   inside its parent's.  Returns aggregate stats or [Error reason]. *)
let validate (text : string) : (stats, string) result =
  match
    let root = parse text in
    let events =
      match field "traceEvents" root with
      | Arr evs -> evs
      | _ -> fail "traceEvents is not an array"
    in
    let lanes : (float * float, (string * float) list ref) Hashtbl.t = Hashtbl.create 8 in
    let last_ts : (float * float, float) Hashtbl.t = Hashtbl.create 8 in
    let lane ev = (num_field "pid" ev, num_field "tid" ev) in
    let spans = ref 0 and instants = ref 0 and max_depth = ref 0 in
    List.iter
      (fun ev ->
        let key = lane ev in
        let name = str_field "name" ev in
        let ts = num_field "ts" ev in
        (match Hashtbl.find_opt last_ts key with
        | Some prev when ts < prev -> fail "timestamp goes backwards in lane for %S" name
        | _ -> ());
        Hashtbl.replace last_ts key ts;
        let stack =
          match Hashtbl.find_opt lanes key with
          | Some st -> st
          | None ->
            let st = ref [] in
            Hashtbl.add lanes key st;
            st
        in
        match str_field "ph" ev with
        | "B" ->
          stack := (name, ts) :: !stack;
          if List.length !stack > !max_depth then max_depth := List.length !stack
        | "E" -> (
          match !stack with
          | [] -> fail "end event %S with no open span" name
          | (open_name, open_ts) :: rest ->
            if open_name <> name then
              fail "end event %S does not match open span %S" name open_name;
            if ts < open_ts then fail "span %S ends before it begins" name;
            stack := rest;
            incr spans)
        | "i" -> incr instants
        | ph -> fail "unsupported phase %S" ph)
      events;
    Hashtbl.iter
      (fun _ st ->
        match !st with
        | [] -> ()
        | (name, _) :: _ -> fail "span %S never closed" name)
      lanes;
    {
      events = List.length events;
      spans = !spans;
      instants = !instants;
      traces = Hashtbl.length lanes;
      max_depth = !max_depth;
    }
  with
  | stats -> Ok stats
  | exception Bad reason -> Error reason
