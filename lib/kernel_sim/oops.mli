(** The kernel "oops" machine: every safety violation the paper talks about
    (NULL dereference, use-after-free, out-of-bounds, refcount underflow,
    deadlock, ...) surfaces as a structured oops report — the simulated
    analogue of a real kernel crash. *)

type kind =
  | Null_deref
  | Invalid_access      (** wild pointer: no backing region *)
  | Use_after_free
  | Out_of_bounds
  | Permission          (** write to read-only memory *)
  | Refcount_underflow
  | Refcount_saturated
  | Double_free
  | Deadlock
  | Stack_overflow
  | Unwind_failure
  | Protection_key      (** MPK-style domain violation (§4 hardware protection) *)
  | Division_trap       (** only when the JIT guard is buggy *)
  | Control_flow_hijack (** JIT miscompilation landed in the weeds *)
  | Bug of string

type report = {
  kind : kind;
  addr : int64 option;
  context : string;  (** which subsystem / helper / insn faulted *)
  time_ns : int64;
}

exception Kernel_oops of report

val kind_to_string : kind -> string
(** The dmesg-style headline for [kind]. *)

val kind_slug : kind -> string
(** Short stable identifier for telemetry labels ("null-deref", "oob", ...). *)

val pp_report : Format.formatter -> report -> unit

val raise_oops :
  ?addr:int64 -> kind:kind -> context:string -> time_ns:int64 -> unit -> 'a
(** Raise {!Kernel_oops} with the assembled report. *)
