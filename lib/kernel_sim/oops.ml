(* The kernel "oops" machine: every safety violation the paper talks about
   (NULL dereference, use-after-free, out-of-bounds, refcount underflow,
   deadlock, ...) surfaces as a structured oops report.  An oops is the
   simulated analogue of a real kernel crash: once a kernel has oopsed it
   is considered dead and all further use is refused. *)

type kind =
  | Null_deref
  | Invalid_access      (* wild pointer: no backing region *)
  | Use_after_free
  | Out_of_bounds
  | Permission          (* write to read-only memory *)
  | Refcount_underflow
  | Refcount_saturated
  | Double_free
  | Deadlock
  | Stack_overflow
  | Unwind_failure
  | Protection_key      (* MPK-style domain violation (§4 hardware protection) *)
  | Division_trap       (* only when the JIT guard is buggy *)
  | Control_flow_hijack (* JIT miscompilation landed in the weeds *)
  | Bug of string

type report = {
  kind : kind;
  addr : int64 option;
  context : string;   (* which subsystem / helper / insn faulted *)
  time_ns : int64;
}

exception Kernel_oops of report

let kind_to_string = function
  | Null_deref -> "NULL pointer dereference"
  | Invalid_access -> "unable to handle kernel paging request"
  | Use_after_free -> "use-after-free"
  | Out_of_bounds -> "out-of-bounds access"
  | Permission -> "write to read-only memory"
  | Protection_key -> "protection key violation (pkey fault)"
  | Refcount_underflow -> "refcount underflow"
  | Refcount_saturated -> "refcount saturated"
  | Double_free -> "double free"
  | Deadlock -> "deadlock"
  | Stack_overflow -> "kernel stack overflow"
  | Unwind_failure -> "failure during unwinding"
  | Division_trap -> "divide error"
  | Control_flow_hijack -> "control-flow hijack"
  | Bug s -> "BUG: " ^ s

(* Short stable identifiers for telemetry labels. *)
let kind_slug = function
  | Null_deref -> "null-deref"
  | Invalid_access -> "invalid-access"
  | Use_after_free -> "uaf"
  | Out_of_bounds -> "oob"
  | Permission -> "permission"
  | Protection_key -> "pkey"
  | Refcount_underflow -> "ref-underflow"
  | Refcount_saturated -> "ref-saturated"
  | Double_free -> "double-free"
  | Deadlock -> "deadlock"
  | Stack_overflow -> "stack-overflow"
  | Unwind_failure -> "unwind"
  | Division_trap -> "div-trap"
  | Control_flow_hijack -> "cfh"
  | Bug _ -> "bug"

let pp_report ppf r =
  Format.fprintf ppf "kernel oops: %s%a (in %s, at t=%a)"
    (kind_to_string r.kind)
    (fun ppf -> function
      | None -> ()
      | Some a -> Format.fprintf ppf " at %016Lx" a)
    r.addr r.context Vclock.pp_duration r.time_ns

let raise_oops ?addr ~kind ~context ~time_ns () =
  raise (Kernel_oops { kind; addr; context; time_ns })
