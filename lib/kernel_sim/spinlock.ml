(* Simulated spinlocks with self-deadlock detection.

   bpf_spin_lock is the paper's running example of verifier complexity: the
   verifier "grew to check that an eBPF program only holds one lock at a
   time and releases the lock before termination".  In the simulation the
   lock itself detects what happens when those checks are bypassed: a
   re-acquire on the single simulated CPU is an immediate deadlock oops, and
   an exit with the lock held is reported by the leak accounting. *)

type t = {
  id : int;
  name : string;
  clock : Vclock.t;
  mutable holder : string option; (* execution context currently holding it *)
  mutable acquired_at : int64;
  mutable acquisitions : int;
}

let make ~id ~name clock =
  { id; name; clock; holder = None; acquired_at = 0L; acquisitions = 0 }

let tele_acquisitions = Telemetry.Registry.counter "ksim.spinlock_acquisitions"

let lock t ~owner =
  (match t.holder with
  | Some h ->
    (* single simulated CPU: any contention is a guaranteed deadlock *)
    let what = if String.equal h owner then "recursive spin_lock" else "spin_lock contention" in
    Oops.raise_oops ~kind:Oops.Deadlock
      ~context:(Printf.sprintf "%s on %s#%d (held by %s)" what t.name t.id h)
      ~time_ns:(Vclock.now t.clock) ()
  | None -> ());
  t.holder <- Some owner;
  t.acquired_at <- Vclock.now t.clock;
  t.acquisitions <- t.acquisitions + 1;
  Telemetry.Registry.bump tele_acquisitions

let unlock t ~owner =
  match t.holder with
  | Some h when String.equal h owner -> t.holder <- None
  | Some h ->
    Oops.raise_oops ~kind:(Oops.Bug "spin_unlock by non-owner")
      ~context:(Printf.sprintf "%s#%d held by %s, unlocked by %s" t.name t.id h owner)
      ~time_ns:(Vclock.now t.clock) ()
  | None ->
    Oops.raise_oops ~kind:(Oops.Bug "spin_unlock of unlocked lock")
      ~context:(Printf.sprintf "%s#%d" t.name t.id) ~time_ns:(Vclock.now t.clock) ()

let is_held t = Option.is_some t.holder
let holder t = t.holder
