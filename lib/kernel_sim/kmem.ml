(* Guarded, byte-addressable simulated kernel memory.

   Memory is a set of regions carved out of a fake kernel virtual address
   space (starting at the x86-64 direct-map base).  Every access is checked
   against region bounds, liveness and permissions, so the failure modes the
   paper discusses — NULL dereference, wild pointers, out-of-bounds,
   use-after-free, writes to read-only data — are all first-class, observable
   events rather than undefined behaviour. *)

type perm = { readable : bool; writable : bool }

let rw = { readable = true; writable = true }
let ro = { readable = true; writable = false }

type region = {
  id : int;
  base : int64;
  size : int;
  bytes : Bytes.t;
  mutable alive : bool;
  mutable perm : perm;
  kind : string; (* "stack" | "map_value" | "ctx" | "pool" | "object" | ... *)
  name : string;
  mutable pkey : int; (* MPK-style protection domain; 0 = default, always open *)
}

type t = {
  mutable regions : region list; (* newest first; scale is tens of regions *)
  mutable next_id : int;
  mutable next_base : int64;
  clock : Vclock.t;
  (* §4 "protection from unsafe code": lightweight memory protection keys.
     When [mpk_enforced], every access to a region with pkey <> 0 requires
     that pkey's bit in [pkru_allowed] — the model of Intel PKU's PKRU
     register (bit set = access allowed, inverted vs hardware for clarity). *)
  mutable mpk_enforced : bool;
  mutable pkru_allowed : int;
}

(* Base of the simulated kernel address space; matches the x86-64 direct map
   so that leaked "kernel pointers" in the pointer-leak experiments look the
   part. *)
let address_space_base = 0xffff_8880_0000_0000L

let create clock =
  { regions = []; next_id = 1; next_base = address_space_base; clock;
    mpk_enforced = false; pkru_allowed = 1 (* pkey 0 always open *) }

let guard_gap = 4096L

let alloc t ~size ~kind ~name ?(perm = rw) () =
  let region =
    { id = t.next_id; base = t.next_base; size; bytes = Bytes.make size '\000';
      alive = true; perm; kind; name; pkey = 0 }
  in
  t.next_id <- t.next_id + 1;
  t.next_base <- Int64.add t.next_base (Int64.add (Int64.of_int size) guard_gap);
  t.regions <- region :: t.regions;
  region

let free t region ~context =
  if not region.alive then
    Oops.raise_oops ~kind:Oops.Double_free ~addr:region.base ~context
      ~time_ns:(Vclock.now t.clock) ()
  else region.alive <- false

let region_addr region off = Int64.add region.base (Int64.of_int off)

let find_region t addr =
  let inside r =
    Int64.unsigned_compare addr r.base >= 0
    && Int64.unsigned_compare addr (Int64.add r.base (Int64.of_int r.size)) < 0
  in
  List.find_opt inside t.regions

let null_page_limit = 0x1000L

let tele_loads = Telemetry.Registry.counter "ksim.mem_loads"
let tele_stores = Telemetry.Registry.counter "ksim.mem_stores"
let tele_faults = Telemetry.Registry.counter "ksim.mem_faults"

let fault t ~kind ~addr ~context =
  Telemetry.Registry.bump tele_faults;
  Oops.raise_oops ~kind ~addr ~context ~time_ns:(Vclock.now t.clock) ()

(* Resolve [addr, addr+len) to a live region and byte offset, or oops. *)
let resolve t addr len ~write ~context =
  if Int64.unsigned_compare addr null_page_limit < 0 then
    fault t ~kind:Oops.Null_deref ~addr ~context;
  match find_region t addr with
  | None -> fault t ~kind:Oops.Invalid_access ~addr ~context
  | Some r ->
    if not r.alive then fault t ~kind:Oops.Use_after_free ~addr ~context;
    let off = Int64.to_int (Int64.sub addr r.base) in
    if off + len > r.size then fault t ~kind:Oops.Out_of_bounds ~addr ~context;
    if write && not r.perm.writable then fault t ~kind:Oops.Permission ~addr ~context;
    if (not write) && not r.perm.readable then
      fault t ~kind:Oops.Permission ~addr ~context;
    if t.mpk_enforced && r.pkey <> 0 && t.pkru_allowed land (1 lsl r.pkey) = 0 then
      fault t ~kind:Oops.Protection_key ~addr ~context;
    (r, off)

let load t ~size ~addr ~context =
  Telemetry.Registry.bump tele_loads;
  let r, off = resolve t addr size ~write:false ~context in
  let b i = Int64.of_int (Char.code (Bytes.get r.bytes (off + i))) in
  let rec go acc i =
    if i < 0 then acc else go (Int64.logor (Int64.shift_left acc 8) (b i)) (i - 1)
  in
  (* little-endian: accumulate from the most significant byte down *)
  go 0L (size - 1)

let store t ~size ~addr ~value ~context =
  Telemetry.Registry.bump tele_stores;
  let r, off = resolve t addr size ~write:true ~context in
  for i = 0 to size - 1 do
    let byte = Int64.to_int (Int64.logand (Int64.shift_right_logical value (8 * i)) 0xffL) in
    Bytes.set r.bytes (off + i) (Char.chr byte)
  done

let load_bytes t ~addr ~len ~context =
  Telemetry.Registry.bump tele_loads;
  let r, off = resolve t addr len ~write:false ~context in
  Bytes.sub r.bytes off len

let store_bytes t ~addr ~src ~context =
  Telemetry.Registry.bump tele_stores;
  let len = Bytes.length src in
  let r, off = resolve t addr len ~write:true ~context in
  Bytes.blit src 0 r.bytes off len

(* Read a NUL-terminated string of at most [max] bytes. *)
let load_cstring t ~addr ~max ~context =
  let buf = Buffer.create 16 in
  let rec go i =
    if i >= max then Buffer.contents buf
    else
      let c = load t ~size:1 ~addr:(Int64.add addr (Int64.of_int i)) ~context in
      if Int64.equal c 0L then Buffer.contents buf
      else begin
        Buffer.add_char buf (Char.chr (Int64.to_int c));
        go (i + 1)
      end
  in
  go 0

let live_regions t = List.filter (fun r -> r.alive) t.regions
let region_count t = List.length (live_regions t)

let pp_region ppf r =
  Format.fprintf ppf "[%016Lx +%6d %-9s %s%s]" r.base r.size r.kind r.name
    (if r.alive then "" else " (freed)")

(* ---- MPK-style protection domains (§4) ---- *)

let set_domain region ~pkey = region.pkey <- pkey

let enable_mpk t = t.mpk_enforced <- true
let disable_mpk t = t.mpk_enforced <- false

let grant_pkey t ~pkey = t.pkru_allowed <- t.pkru_allowed lor (1 lsl pkey)
let revoke_pkey t ~pkey = t.pkru_allowed <- t.pkru_allowed land lnot (1 lsl pkey)

(* The trusted-gate pattern: the kernel crate opens the extension's domain
   only around its own (trusted) accesses, like a wrpkru pair. *)
let with_pkey t ~pkey f =
  let before = t.pkru_allowed in
  grant_pkey t ~pkey;
  match f () with
  | v ->
    t.pkru_allowed <- before;
    v
  | exception e ->
    t.pkru_allowed <- before;
    raise e
