(* The simulated kernel world: clock, memory, RCU state, refcount registry,
   locks, a memory pool, a task/socket population, and the oops latch.

   Every experiment in the reproduction runs extensions against an instance
   of this world and then inspects its health: did it oops, which RCU stalls
   fired, which references or locks leaked?  A fresh world per experiment
   keeps runs independent and deterministic. *)

type health = {
  oopsed : Oops.report option;
  rcu_stalls : int;
  leaked_refs : Refcount.t list;
  held_locks : Spinlock.t list;
  leaked_pool_chunks : int;
}

type t = {
  clock : Vclock.t;
  mem : Kmem.t;
  rcu : Rcu.t;
  refs : Refcount.registry;
  pool : Mempool.t;
  mutable locks : Spinlock.t list;
  mutable next_lock_id : int;
  mutable tasks : Kobject.task list;
  mutable current : Kobject.task;
  mutable socks : Kobject.sock list;
  mutable next_sock_id : int;
  mutable oops : Oops.report option;
  mutable cpu : int; (* the simulated current CPU (per-CPU maps, smp id) *)
  stats : (string, int) Hashtbl.t;
  (* Baseline refcounts at the last snapshot, to attribute leaks to an
     extension execution rather than to kernel setup. *)
  mutable ref_baseline : (int * int) list; (* refcount id -> count *)
}

let default_pool_chunks = 64
let default_pool_chunk_size = 256

let tele_oops = Telemetry.Registry.counter "ksim.oops"
let tele_revives = Telemetry.Registry.counter "ksim.revives"

let create ?(pool_chunks = default_pool_chunks) () =
  let clock = Vclock.create () in
  (* Spans and trace events across the whole stack are timed on this world's
     virtual clock.  Worlds are created per experiment, so the registry
     follows the most recently created kernel. *)
  Telemetry.Registry.set_clock (fun () -> Vclock.now clock);
  let mem = Kmem.create clock in
  let refs = Refcount.create_registry clock in
  let pool = Mempool.create mem clock ~chunk_size:default_pool_chunk_size ~capacity:pool_chunks in
  let init_task = Kobject.make_task mem refs ~pid:1 ~tgid:1 ~comm:"swapper" in
  let t =
    { clock; mem; rcu = Rcu.create clock; refs; pool; locks = []; next_lock_id = 1;
      tasks = [ init_task ]; current = init_task; socks = []; next_sock_id = 1;
      oops = None; cpu = 0; stats = Hashtbl.create 16; ref_baseline = [] }
  in
  t

let bump ?(n = 1) t key =
  Hashtbl.replace t.stats key (n + Option.value ~default:0 (Hashtbl.find_opt t.stats key))

let stat t key = Option.value ~default:0 (Hashtbl.find_opt t.stats key)

let is_dead t = Option.is_some t.oops

let record_oops t report =
  if t.oops = None then begin
    t.oops <- Some report;
    Telemetry.Registry.bump tele_oops;
    Telemetry.Registry.point "ksim.oops" ~value:(Option.value report.Oops.addr ~default:0L)
  end

(* Supervised recovery: clear the oops latch and force the kernel back to a
   runnable state after a *contained* extension crash.  The crashed
   invocation may have died inside an RCU read-side section or while holding
   a spinlock; a real supervisor has to tear those down before the next
   extension runs, so we drain the RCU nesting and force-release held locks
   here.  Leak accounting (refcounts, pool chunks, stall history) is
   deliberately untouched: those remain attributable damage. *)
let revive t =
  match t.oops with
  | None -> false
  | Some _ ->
    t.oops <- None;
    while Rcu.in_critical_section t.rcu do
      Rcu.read_unlock t.rcu ~context:"revive"
    done;
    List.iter
      (fun (l : Spinlock.t) -> if Spinlock.is_held l then l.Spinlock.holder <- None)
      t.locks;
    Telemetry.Registry.bump tele_revives;
    true

(* Run [f] against the kernel, converting an escaped oops exception into the
   recorded-dead state.  Returns the oops if one occurred. *)
let protect t f =
  match f () with
  | v -> Ok v
  | exception Oops.Kernel_oops report ->
    record_oops t report;
    Error report

let add_task t ~pid ~tgid ~comm =
  let task = Kobject.make_task t.mem t.refs ~pid ~tgid ~comm in
  t.tasks <- task :: t.tasks;
  task

let set_current t task = t.current <- task

let add_sock t ~port ~state =
  let sk = Kobject.make_sock t.mem t.refs ~id:t.next_sock_id ~port ~state in
  t.next_sock_id <- t.next_sock_id + 1;
  t.socks <- sk :: t.socks;
  sk

let find_sock t ~port = List.find_opt (fun s -> s.Kobject.port = port) t.socks

let new_lock t ~name =
  let lock = Spinlock.make ~id:t.next_lock_id ~name t.clock in
  t.next_lock_id <- t.next_lock_id + 1;
  t.locks <- lock :: t.locks;
  lock

(* Snapshot refcounts so that [health] can report only what an extension
   leaked on top of the kernel's own references. *)
let snapshot_refs t =
  t.ref_baseline <-
    List.map (fun r -> (r.Refcount.id, Refcount.count r)) (Refcount.live t.refs)

let health t =
  let baseline r =
    match List.assoc_opt r.Refcount.id t.ref_baseline with
    | Some c -> c
    | None -> 0 (* created after the snapshot: any remaining count is a leak *)
  in
  {
    oopsed = t.oops;
    rcu_stalls = Rcu.stall_count t.rcu;
    leaked_refs =
      List.filter (fun r -> Refcount.count r > baseline r) (Refcount.live t.refs);
    held_locks = List.filter Spinlock.is_held t.locks;
    leaked_pool_chunks = List.length (Mempool.leaked t.pool);
  }

let healthy h =
  h.oopsed = None && h.rcu_stalls = 0 && h.leaked_refs = [] && h.held_locks = []
  && h.leaked_pool_chunks = 0

let pp_health ppf h =
  match h.oopsed with
  | Some r -> Format.fprintf ppf "DEAD (%a)" Oops.pp_report r
  | None ->
    if healthy h then Format.fprintf ppf "healthy"
    else
      Format.fprintf ppf "degraded: %d rcu stalls, %d leaked refs, %d held locks, %d leaked chunks"
        h.rcu_stalls (List.length h.leaked_refs) (List.length h.held_locks)
        h.leaked_pool_chunks
