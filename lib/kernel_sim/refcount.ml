(* Kernel-style reference counters with leak accounting.

   The paper's Table 1 lists reference-count leaks in bpf_get_task_stack and
   the sk-lookup helpers as a recurring helper-bug class, and §3.1/§3.2 argue
   RAII makes them structurally impossible.  The registry lets both the leak
   (eBPF path with the buggy helper) and its absence (rustlite RAII path) be
   measured rather than asserted. *)

type t = {
  id : int;
  what : string;          (* "task", "sock", "request_sock", ... *)
  mutable count : int;
  mutable released : (unit -> unit) option; (* run when count drops to 0 *)
}

type registry = {
  clock : Vclock.t;
  mutable next_id : int;
  mutable live : t list;
  mutable total_gets : int;
  mutable total_puts : int;
}

let create_registry clock = { clock; next_id = 1; live = []; total_gets = 0; total_puts = 0 }

let tele_incs = Telemetry.Registry.counter "ksim.refcount_incs"
let tele_decs = Telemetry.Registry.counter "ksim.refcount_decs"

let saturation_limit = 1 lsl 20

let make reg ~what ?released () =
  let t = { id = reg.next_id; what; count = 1; released } in
  reg.next_id <- reg.next_id + 1;
  reg.live <- t :: reg.live;
  reg.total_gets <- reg.total_gets + 1;
  t

let get reg t =
  if t.count <= 0 then
    Oops.raise_oops ~kind:Oops.Refcount_underflow ~context:("refcount_get " ^ t.what)
      ~time_ns:(Vclock.now reg.clock) ();
  if t.count >= saturation_limit then
    Oops.raise_oops ~kind:Oops.Refcount_saturated ~context:("refcount_get " ^ t.what)
      ~time_ns:(Vclock.now reg.clock) ();
  t.count <- t.count + 1;
  reg.total_gets <- reg.total_gets + 1;
  Telemetry.Registry.bump tele_incs

let put reg t =
  if t.count <= 0 then
    Oops.raise_oops ~kind:Oops.Refcount_underflow ~context:("refcount_put " ^ t.what)
      ~time_ns:(Vclock.now reg.clock) ();
  t.count <- t.count - 1;
  reg.total_puts <- reg.total_puts + 1;
  Telemetry.Registry.bump tele_decs;
  if t.count = 0 then begin
    reg.live <- List.filter (fun x -> x.id <> t.id) reg.live;
    match t.released with None -> () | Some f -> f ()
  end

let count t = t.count

(* Objects whose count exceeds the baseline the object's owner holds are
   leaks from the extension's point of view. *)
let leaked reg ~baseline =
  List.filter (fun t -> t.count > (try baseline t with Not_found -> 1)) reg.live

let live reg = reg.live

let pp ppf t = Format.fprintf ppf "%s#%d(rc=%d)" t.what t.id t.count
