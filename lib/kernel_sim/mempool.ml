(* Pre-allocated memory pool, after the BPF-specific allocator the paper
   cites (LWN "A BPF-specific memory allocator") and the §3.1 proposal to
   satisfy unwind-context/dynamic allocation from a pool because extensions
   run in non-sleepable contexts where a general allocator is unavailable.

   Chunks are fixed-size and carved from a single backing region, so chunk
   addresses are real simulated kernel addresses and all the usual memory
   guards apply to them. *)

type t = {
  chunk_size : int;
  capacity : int;
  backing : Kmem.region;
  mem : Kmem.t;
  clock : Vclock.t;
  mutable free_chunks : int list; (* chunk indices *)
  mutable allocated : (int64, int) Hashtbl.t; (* addr -> chunk idx *)
  mutable high_water : int;
}

let create mem clock ~chunk_size ~capacity =
  let backing =
    Kmem.alloc mem ~size:(chunk_size * capacity) ~kind:"pool" ~name:"bpf_mem_alloc" ()
  in
  { chunk_size; capacity; backing; mem; clock;
    free_chunks = List.init capacity (fun i -> i);
    allocated = Hashtbl.create 16; high_water = 0 }

let in_use t = Hashtbl.length t.allocated
let available t = List.length t.free_chunks

let tele_allocs = Telemetry.Registry.counter "ksim.pool_allocs"
let tele_frees = Telemetry.Registry.counter "ksim.pool_frees"
let tele_exhaustions = Telemetry.Registry.counter "ksim.pool_exhaustions"

(* Allocation failure is not an oops: real kernel code must handle NULL from
   a pool, and the helpers built on this return NULL to the program. *)
let alloc t =
  match t.free_chunks with
  | [] ->
    Telemetry.Registry.bump tele_exhaustions;
    Telemetry.Registry.point "ksim.pool_exhausted" ~value:(Int64.of_int t.capacity);
    None
  | idx :: rest ->
    t.free_chunks <- rest;
    let addr = Kmem.region_addr t.backing (idx * t.chunk_size) in
    Hashtbl.replace t.allocated addr idx;
    t.high_water <- max t.high_water (in_use t);
    (* scrub the chunk so stale data never leaks across allocations *)
    Kmem.store_bytes t.mem ~addr ~src:(Bytes.make t.chunk_size '\000')
      ~context:"mempool_alloc";
    Telemetry.Registry.bump tele_allocs;
    Some addr

let free t addr ~context =
  match Hashtbl.find_opt t.allocated addr with
  | Some idx ->
    Hashtbl.remove t.allocated addr;
    t.free_chunks <- idx :: t.free_chunks;
    Telemetry.Registry.bump tele_frees
  | None ->
    Oops.raise_oops ~kind:Oops.Double_free ~addr ~context
      ~time_ns:(Vclock.now t.clock) ()

let leaked t = Hashtbl.fold (fun addr _ acc -> addr :: acc) t.allocated []
