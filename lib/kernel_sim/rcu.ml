(* RCU read-side critical-section tracking with a stall detector.

   The paper's §2.2 termination experiment holds the RCU read lock while a
   verifier-approved program loops for 800+ seconds, triggering RCU stalls.
   eBPF programs implicitly run under rcu_read_lock, so the runtime enters a
   section around each program invocation; the stall detector mirrors the
   kernel's 21-second default (RCU_CPU_STALL_TIMEOUT). *)

type stall = {
  at_ns : int64;          (* when the stall was reported *)
  held_for_ns : int64;    (* how long the section had been open *)
  context : string;
}

type t = {
  clock : Vclock.t;
  mutable nesting : int;
  mutable entered_at : int64;
  mutable stalls : stall list;
  mutable stall_threshold_ns : int64;
  mutable last_report_at : int64;
}

let default_stall_threshold_ns = 21_000_000_000L (* 21 s, as in Linux *)

let tele_read_locks = Telemetry.Registry.counter "ksim.rcu_read_locks"
let tele_stall_checks = Telemetry.Registry.counter "ksim.rcu_stall_checks"
let tele_stalls = Telemetry.Registry.counter "ksim.rcu_stalls"

let create clock =
  { clock; nesting = 0; entered_at = 0L; stalls = [];
    stall_threshold_ns = default_stall_threshold_ns; last_report_at = 0L }

let read_lock t =
  Telemetry.Registry.bump tele_read_locks;
  if t.nesting = 0 then t.entered_at <- Vclock.now t.clock;
  t.nesting <- t.nesting + 1

let read_unlock t ~context =
  if t.nesting = 0 then
    Oops.raise_oops ~kind:(Oops.Bug "rcu_read_unlock imbalance") ~context
      ~time_ns:(Vclock.now t.clock) ();
  t.nesting <- t.nesting - 1

let in_critical_section t = t.nesting > 0

(* Called periodically by the runtime (the simulated tick).  Reports at most
   one stall per threshold interval, like the kernel's rate-limited splat. *)
let check_stall t ~context =
  Telemetry.Registry.bump tele_stall_checks;
  if t.nesting > 0 then begin
    let now = Vclock.now t.clock in
    let held = Int64.sub now t.entered_at in
    if
      Int64.compare held t.stall_threshold_ns >= 0
      && Int64.compare (Int64.sub now t.last_report_at) t.stall_threshold_ns >= 0
    then begin
      t.last_report_at <- now;
      t.stalls <- { at_ns = now; held_for_ns = held; context } :: t.stalls;
      Telemetry.Registry.bump tele_stalls;
      Telemetry.Registry.point "ksim.rcu_stall" ~value:held
    end
  end

let stalls t = List.rev t.stalls
let stall_count t = List.length t.stalls
let held_for t = if t.nesting = 0 then 0L else Int64.sub (Vclock.now t.clock) t.entered_at

let pp_stall ppf s =
  Format.fprintf ppf "rcu: INFO: self-detected stall on CPU (t=%a, section open %a) in %s"
    Vclock.pp_duration s.at_ns Vclock.pp_duration s.held_for_ns s.context
