(** The simulated kernel world: clock, memory, RCU state, refcount registry,
    locks, a memory pool, a task/socket population, and the oops latch.

    Every experiment runs extensions against an instance of this world and
    then inspects its {!health}: did it oops, which RCU stalls fired, which
    references or locks leaked?  A fresh world per experiment keeps runs
    independent and deterministic. *)

type health = {
  oopsed : Oops.report option;
  rcu_stalls : int;
  leaked_refs : Refcount.t list;
  held_locks : Spinlock.t list;
  leaked_pool_chunks : int;
}

type t = {
  clock : Vclock.t;
  mem : Kmem.t;
  rcu : Rcu.t;
  refs : Refcount.registry;
  pool : Mempool.t;
  mutable locks : Spinlock.t list;
  mutable next_lock_id : int;
  mutable tasks : Kobject.task list;
  mutable current : Kobject.task;
  mutable socks : Kobject.sock list;
  mutable next_sock_id : int;
  mutable oops : Oops.report option;
  mutable cpu : int;  (** the simulated current CPU (per-CPU maps, smp id) *)
  stats : (string, int) Hashtbl.t;
  mutable ref_baseline : (int * int) list;
      (** refcount baselines from the last {!snapshot_refs} *)
}

val default_pool_chunks : int
val default_pool_chunk_size : int

val create : ?pool_chunks:int -> unit -> t
(** A fresh world; also points the telemetry registry's clock at it. *)

val bump : ?n:int -> t -> string -> unit
(** Increment a free-form named kernel statistic. *)

val stat : t -> string -> int

val is_dead : t -> bool
(** True once an oops has been latched. *)

val record_oops : t -> Oops.report -> unit
(** Latch the first oops (later ones are ignored) and count it. *)

val revive : t -> bool
(** Supervised recovery after a {e contained} extension crash: clear the
    oops latch, drain any RCU read-side nesting the dead invocation left
    open, and force-release held spinlocks so the next extension can run.
    Leak accounting (refcounts, pool chunks, RCU stall history) is
    untouched — that damage stays attributable.  Returns [false] if the
    kernel was not dead. *)

val protect : t -> (unit -> 'a) -> ('a, Oops.report) result
(** Run [f], converting an escaped {!Oops.Kernel_oops} into the
    recorded-dead state. *)

val add_task : t -> pid:int -> tgid:int -> comm:string -> Kobject.task
val set_current : t -> Kobject.task -> unit
val add_sock : t -> port:int -> state:Kobject.sock_state -> Kobject.sock
val find_sock : t -> port:int -> Kobject.sock option
val new_lock : t -> name:string -> Spinlock.t

val snapshot_refs : t -> unit
(** Baseline refcounts so {!health} attributes only what an extension leaked
    on top of the kernel's own references. *)

val health : t -> health
val healthy : health -> bool
val pp_health : Format.formatter -> health -> unit
