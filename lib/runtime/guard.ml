(* The lightweight runtime protection mechanisms of §3.1: watchdog/fuel
   termination, stack protection, and — crucially — safe termination that
   releases acquired kernel resources by running the *recorded* destructor
   list instead of unwinding the stack (no user-defined Drop code runs, no
   allocation is needed, and failures during unwinding cannot happen). *)

module Vclock = Kernel_sim.Vclock
module Rcu = Kernel_sim.Rcu

type reason =
  | Fuel_exhausted          (* instruction-count watchdog *)
  | Watchdog_timeout        (* simulated wall-clock watchdog *)
  | Stack_violation         (* stack guard tripped *)
  | Language_panic of string (* rustlite panic (checked arithmetic, bounds) *)

let reason_to_string = function
  | Fuel_exhausted -> "fuel exhausted"
  | Watchdog_timeout -> "watchdog timeout"
  | Stack_violation -> "stack guard"
  | Language_panic msg -> "panic: " ^ msg

let tele_terminations = Telemetry.Registry.counter "guard.terminations"
let tele_fuel_trips = Telemetry.Registry.counter "guard.fuel_trips"
let tele_watchdog_trips = Telemetry.Registry.counter "guard.watchdog_trips"
let tele_stack_trips = Telemetry.Registry.counter "guard.stack_trips"
let tele_panic_trips = Telemetry.Registry.counter "guard.panic_trips"
let tele_resources_cleaned = Telemetry.Registry.counter "guard.resources_cleaned"

let tele_trip_counter = function
  | Fuel_exhausted -> tele_fuel_trips
  | Watchdog_timeout -> tele_watchdog_trips
  | Stack_violation -> tele_stack_trips
  | Language_panic _ -> tele_panic_trips

let reason_slug = function
  | Fuel_exhausted -> "fuel"
  | Watchdog_timeout -> "watchdog"
  | Stack_violation -> "stack"
  | Language_panic _ -> "panic"

type termination = {
  reason : reason;
  cleaned_resources : int; (* destructors run by the trusted cleanup list *)
  at_ns : int64;
}

exception Terminate of reason

(* Safe termination: run the recorded destructors (LIFO), then leave any RCU
   read-side sections the program was executing under.  This is the trusted,
   cannot-fail path the paper contrasts with ABI unwinding. *)
let terminate (hctx : Helpers.Hctx.t) reason =
  let cleaned = Helpers.Resources.cleanup hctx.resources in
  let rcu = hctx.kernel.rcu in
  while Rcu.in_critical_section rcu do
    Rcu.read_unlock rcu ~context:"guard/terminate"
  done;
  Telemetry.Registry.bump tele_terminations;
  Telemetry.Registry.incr (tele_trip_counter reason);
  Telemetry.Registry.incr tele_resources_cleaned ~n:cleaned;
  Telemetry.Registry.point ("guard.trip." ^ reason_slug reason) ~value:(Int64.of_int cleaned);
  { reason; cleaned_resources = cleaned; at_ns = Vclock.now hctx.kernel.clock }

let pp_termination ppf t =
  Format.fprintf ppf "terminated (%s) at t=%a, %d resources cleaned"
    (reason_to_string t.reason) Vclock.pp_duration t.at_ns t.cleaned_resources
