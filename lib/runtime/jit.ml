(* A closure-compiling "JIT": each instruction is translated once into an
   OCaml closure, removing the decode/dispatch cost from the hot loop.  This
   is the downstream component §2.1 warns about: "even a perfectly coded
   verifier cannot prevent malicious eBPF programs from exploiting bugs in
   downstream components ... such as the JIT compiler".

   [bug_branch_off_by_one] models CVE-2021-29154 (BPF JIT branch-offset
   miscomputation): with the bug enabled, *backward* branches are compiled
   one instruction short, so a verified program's control flow lands on an
   unintended instruction — a control-flow hijack certified safe by the
   verifier. *)

module Kmem = Kernel_sim.Kmem
module Oops = Kernel_sim.Oops
module Rcu = Kernel_sim.Rcu
module Vclock = Kernel_sim.Vclock
module Hctx = Helpers.Hctx
open Ebpf

type jstate = {
  regs : int64 array;
  mutable jpc : int;
  mutable done_ : bool;
}

type compiled = {
  prog : Program.t;
  ops : (jstate -> unit) array;
  bug_branch_off_by_one : bool;
}

let tele_compiles = Telemetry.Registry.counter "jit.compiles"
let tele_runs = Telemetry.Registry.counter "jit.runs"
let tele_insns = Telemetry.Registry.counter "jit.insns"
let tele_op_alu = Telemetry.Registry.counter "jit.op.alu"
let tele_op_ld = Telemetry.Registry.counter "jit.op.ld"
let tele_op_st = Telemetry.Registry.counter "jit.op.st"
let tele_op_atomic = Telemetry.Registry.counter "jit.op.atomic"
let tele_op_jmp = Telemetry.Registry.counter "jit.op.jmp"
let tele_op_call = Telemetry.Registry.counter "jit.op.call"
let tele_op_exit = Telemetry.Registry.counter "jit.op.exit"
let tele_run_ns = Telemetry.Registry.histogram "jit.run.ns"

let op_counter = function
  | Insn.Alu _ -> tele_op_alu
  | Insn.Ld_imm64 _ | Insn.Ld_map_fd _ | Insn.Ldx _ -> tele_op_ld
  | Insn.St _ | Insn.Stx _ -> tele_op_st
  | Insn.Atomic _ -> tele_op_atomic
  | Insn.Ja _ | Insn.Jmp _ -> tele_op_jmp
  | Insn.Call _ | Insn.Call_sub _ -> tele_op_call
  | Insn.Exit -> tele_op_exit

let compile ?(bug_branch_off_by_one = false) ?(elide = [||]) (hctx : Hctx.t)
    (prog : Program.t) : compiled =
  Telemetry.Registry.bump tele_compiles;
  let mem = hctx.kernel.mem in
  let branch_target pc off =
    let t = pc + 1 + off in
    (* the bug: backward targets computed without the +1 *)
    if bug_branch_off_by_one && off < 0 then pc + off else t
  in
  let compile_one pc insn : jstate -> unit =
    let ctx_str = Printf.sprintf "bpf_jit+%d" pc in
    match insn with
    | Insn.Jmp _
      when (not bug_branch_off_by_one)
           && pc < Array.length elide
           && elide.(pc) >= 0 ->
      (* a guard the static analysis proved one-way compiles to an
         unconditional jump.  Suppressed under the CVE-2021-29154 branch
         bug: elision would bypass the miscomputed backward target and
         silently mask the modelled JIT bug. *)
      let t = elide.(pc) in
      fun st -> st.jpc <- t
    | Insn.Alu { op; width; dst; src } ->
      let get_s =
        match src with
        | Insn.Reg r -> fun (st : jstate) -> st.regs.(r)
        | Insn.Imm v ->
          let c = Int64.of_int v in
          fun _ -> c
      in
      let apply d s =
        match op with
        | Insn.Add -> Int64.add d s
        | Insn.Sub -> Int64.sub d s
        | Insn.Mul -> Int64.mul d s
        | Insn.Div -> if Int64.equal s 0L then 0L else Int64.unsigned_div d s
        | Insn.Mod -> if Int64.equal s 0L then d else Int64.unsigned_rem d s
        | Insn.Or -> Int64.logor d s
        | Insn.And -> Int64.logand d s
        | Insn.Xor -> Int64.logxor d s
        | Insn.Mov -> s
        | Insn.Neg -> Int64.neg d
        | Insn.Lsh -> Int64.shift_left d (Int64.to_int (Int64.logand s 63L))
        | Insn.Rsh -> Int64.shift_right_logical d (Int64.to_int (Int64.logand s 63L))
        | Insn.Arsh -> Int64.shift_right d (Int64.to_int (Int64.logand s 63L))
      in
      (match width with
      | Insn.W64 ->
        fun st ->
          st.regs.(dst) <- apply st.regs.(dst) (get_s st);
          st.jpc <- pc + 1
      | Insn.W32 ->
        fun st ->
          let d32 = Int64.logand st.regs.(dst) 0xffff_ffffL in
          let s32 = Int64.logand (get_s st) 0xffff_ffffL in
          st.regs.(dst) <- Int64.logand (apply d32 s32) 0xffff_ffffL;
          st.jpc <- pc + 1)
    | Insn.Ld_imm64 (dst, v) ->
      fun st ->
        st.regs.(dst) <- v;
        st.jpc <- pc + 1
    | Insn.Ld_map_fd (dst, fd) ->
      let v = Int64.of_int fd in
      fun st ->
        st.regs.(dst) <- v;
        st.jpc <- pc + 1
    | Insn.Ldx { size; dst; src; off } ->
      let sz = Insn.size_bytes size in
      fun st ->
        st.regs.(dst) <-
          Kmem.load mem ~size:sz ~addr:(Int64.add st.regs.(src) (Int64.of_int off))
            ~context:ctx_str;
        st.jpc <- pc + 1
    | Insn.St { size; dst; off; imm } ->
      let sz = Insn.size_bytes size in
      let v = Int64.of_int imm in
      fun st ->
        Kmem.store mem ~size:sz ~addr:(Int64.add st.regs.(dst) (Int64.of_int off))
          ~value:v ~context:ctx_str;
        st.jpc <- pc + 1
    | Insn.Stx { size; dst; off; src } ->
      let sz = Insn.size_bytes size in
      fun st ->
        Kmem.store mem ~size:sz ~addr:(Int64.add st.regs.(dst) (Int64.of_int off))
          ~value:st.regs.(src) ~context:ctx_str;
        st.jpc <- pc + 1
    | Insn.Atomic { aop; size; dst; src; off; fetch } ->
      let sz = Insn.size_bytes size in
      fun st ->
        let addr = Int64.add st.regs.(dst) (Int64.of_int off) in
        let old = Kmem.load mem ~size:sz ~addr ~context:ctx_str in
        (match aop with
        | Insn.A_add ->
          Kmem.store mem ~size:sz ~addr ~value:(Int64.add old st.regs.(src)) ~context:ctx_str;
          if fetch then st.regs.(src) <- old
        | Insn.A_or ->
          Kmem.store mem ~size:sz ~addr ~value:(Int64.logor old st.regs.(src)) ~context:ctx_str;
          if fetch then st.regs.(src) <- old
        | Insn.A_and ->
          Kmem.store mem ~size:sz ~addr ~value:(Int64.logand old st.regs.(src)) ~context:ctx_str;
          if fetch then st.regs.(src) <- old
        | Insn.A_xor ->
          Kmem.store mem ~size:sz ~addr ~value:(Int64.logxor old st.regs.(src)) ~context:ctx_str;
          if fetch then st.regs.(src) <- old
        | Insn.A_xchg ->
          Kmem.store mem ~size:sz ~addr ~value:st.regs.(src) ~context:ctx_str;
          st.regs.(src) <- old
        | Insn.A_cmpxchg ->
          let expected =
            if sz = 4 then Int64.logand st.regs.(0) 0xffff_ffffL else st.regs.(0)
          in
          if Int64.equal old expected then
            Kmem.store mem ~size:sz ~addr ~value:st.regs.(src) ~context:ctx_str;
          st.regs.(0) <- old);
        st.jpc <- pc + 1
    | Insn.Ja off ->
      let t = branch_target pc off in
      fun st -> st.jpc <- t
    | Insn.Jmp { cond; width; dst; src; off } ->
      let t = branch_target pc off in
      let get_s =
        match src with
        | Insn.Reg r -> fun (st : jstate) -> st.regs.(r)
        | Insn.Imm v ->
          let c = Int64.of_int v in
          fun _ -> c
      in
      let sext32 x = Int64.shift_right (Int64.shift_left x 32) 32 in
      fun st ->
        let d = st.regs.(dst) and s = get_s st in
        let d, s =
          match width with
          | Insn.W64 -> (d, s)
          | Insn.W32 -> (Int64.logand d 0xffff_ffffL, Int64.logand s 0xffff_ffffL)
        in
        let ds, ss =
          match width with Insn.W64 -> (d, s) | Insn.W32 -> (sext32 d, sext32 s)
        in
        let taken =
          match cond with
          | Insn.Eq -> Int64.equal d s
          | Insn.Ne -> not (Int64.equal d s)
          | Insn.Gt -> Int64.unsigned_compare d s > 0
          | Insn.Ge -> Int64.unsigned_compare d s >= 0
          | Insn.Lt -> Int64.unsigned_compare d s < 0
          | Insn.Le -> Int64.unsigned_compare d s <= 0
          | Insn.Set -> not (Int64.equal (Int64.logand d s) 0L)
          | Insn.Sgt -> Int64.compare ds ss > 0
          | Insn.Sge -> Int64.compare ds ss >= 0
          | Insn.Slt -> Int64.compare ds ss < 0
          | Insn.Sle -> Int64.compare ds ss <= 0
        in
        st.jpc <- (if taken then t else pc + 1)
    | Insn.Call helper_id -> (
      match Helpers.Registry.find helper_id with
      | None ->
        fun _ ->
          Oops.raise_oops ~kind:(Oops.Bug (Printf.sprintf "unknown helper %d" helper_id))
            ~context:ctx_str ~time_ns:(Vclock.now hctx.kernel.clock) ()
      | Some def ->
        fun st ->
          hctx.helper_calls <- hctx.helper_calls + 1;
          st.regs.(0) <-
            Helpers.Registry.invoke def hctx
              [| st.regs.(1); st.regs.(2); st.regs.(3); st.regs.(4); st.regs.(5) |];
          st.jpc <- pc + 1)
    | Insn.Call_sub off ->
      (* the JIT delegates subprogram frames to the interpreter (as real
         JITs call the image of the other function) *)
      let target = pc + 1 + off in
      fun st ->
        let interp = Interp.create hctx in
        Interp.arm_profiler interp prog;
        st.regs.(0) <-
          Interp.exec_insns interp prog.Program.insns ~entry:target ~depth:1
            ~args:[| st.regs.(1); st.regs.(2); st.regs.(3); st.regs.(4); st.regs.(5) |];
        Interp.flush_tallies interp prog.Program.insns;
        st.jpc <- pc + 1
    | Insn.Exit -> fun st -> st.done_ <- true
  in
  (* Opcode classes are counted at compile time (the static mix of what the
     JIT emitted).  Counting dynamically would need a per-op wrapper closure
     — re-adding exactly the dispatch indirection the JIT exists to remove
     (measured at ~+28% on the run loop).  Dynamic totals are still visible
     as [jit.insns]. *)
  Array.iter (fun insn -> Telemetry.Registry.incr (op_counter insn)) prog.Program.insns;
  { prog; ops = Array.mapi compile_one prog.Program.insns;
    bug_branch_off_by_one }

(* Run compiled code.  The same guards as the interpreter apply.  [spans]
   is the bound pass's fuel-check window vector: same batching contract as
   the interpreter (charge a straight-line window up front only when the
   tank covers it; the executed count and clock stay per-op), so trip
   points and outcomes are bit-identical with batching on or off. *)
let run_counted ?(fuel = -1L) ?(ns_per_insn = 1L) ?(spans = [||])
    (hctx : Hctx.t) (c : compiled) ~ctx_addr : Interp.outcome * int64 =
  let stack = Hctx.stack_frame hctx 0 in
  let st =
    { regs = Array.make 11 0L; jpc = 0; done_ = false }
  in
  st.regs.(1) <- ctx_addr;
  st.regs.(10) <- Int64.add stack.Kmem.base 512L;
  Telemetry.Registry.bump tele_runs;
  (* executed-instruction count is kept in a local and flushed once; a
     registry call per op costs measurably on the jit loop (see compile) *)
  let executed = ref 0 in
  (* Sampling profiler: armed per run like the interpreter's; disabled cost
     is one predictable branch per op. *)
  let prof_on = Telemetry.Registry.enabled () && Telemetry.Profiler.enabled () in
  (* The closure array erases block structure, so there is no control-
     transfer site to hang the deadline check on as the interpreter does;
     instead the clock compare runs every 16th op (gated by an int mask on
     the op counter), bounding both the check cost and the sampling skew. *)
  let prof_next =
    ref
      (if prof_on then
         Telemetry.Profiler.next_deadline ~now:(Vclock.now hctx.kernel.clock)
       else Int64.max_int)
  in
  let prof_leaders =
    ref (if prof_on then Interp.block_leader_map c.prog.Program.insns else [||])
  in
  let prof_sample jpc =
    prof_next :=
      Telemetry.Profiler.next_deadline ~now:(Vclock.now hctx.kernel.clock);
    let leaders = !prof_leaders in
    let block = if jpc >= 0 && jpc < Array.length leaders then leaders.(jpc) else jpc in
    Telemetry.Profiler.record
      (c.prog.Program.name ^ ";jit;block:" ^ string_of_int block)
  in
  let result =
    Telemetry.Registry.with_span "jit.run" ~hist:tele_run_ns
      ~clock:(fun () -> Vclock.now hctx.kernel.clock)
      (fun () ->
        let rcu = hctx.kernel.rcu in
        Rcu.read_lock rcu;
        (* same off-by-one-free fuel semantics as Interp.tick: the check
           precedes the op, so fuel:N runs exactly N instructions *)
        let fuel_left = ref fuel in
        let batch = ref 0 in
        match
          while not st.done_ do
            if st.jpc < 0 || st.jpc >= Array.length c.ops then
              Oops.raise_oops ~kind:Oops.Control_flow_hijack
                ~context:(Printf.sprintf "jit pc=%d out of program" st.jpc)
                ~time_ns:(Vclock.now hctx.kernel.clock) ();
            if !batch > 0 then decr batch
            else if Int64.compare !fuel_left 0L >= 0 then begin
              let s =
                if st.jpc < Array.length spans then
                  Array.unsafe_get spans st.jpc
                else 1
              in
              if s > 1 && Int64.compare !fuel_left (Int64.of_int s) >= 0
              then begin
                fuel_left := Int64.sub !fuel_left (Int64.of_int s);
                batch := s - 1
              end
              else begin
                if Int64.equal !fuel_left 0L then
                  raise (Guard.Terminate Guard.Fuel_exhausted);
                fuel_left := Int64.sub !fuel_left 1L
              end
            end;
            let e = !executed + 1 in
            executed := e;
            Vclock.advance hctx.kernel.clock ns_per_insn;
            if prof_on && e land 15 = 0
               && Int64.compare (Vclock.now hctx.kernel.clock) !prof_next >= 0
            then prof_sample st.jpc;
            c.ops.(st.jpc) st
          done
        with
        | () ->
          Rcu.read_unlock rcu ~context:"bpf_jit exit";
          Interp.Ret st.regs.(0)
        | exception Guard.Terminate reason -> Interp.Terminated (Guard.terminate hctx reason)
        | exception Oops.Kernel_oops report ->
          Kernel_sim.Kernel.record_oops hctx.kernel report;
          Interp.Oopsed report)
  in
  if Telemetry.Registry.enabled () then
    Telemetry.Registry.incr tele_insns ~n:!executed;
  ignore stack;
  (result, Int64.of_int !executed)

let run ?fuel ?ns_per_insn ?spans hctx c ~ctx_addr =
  fst (run_counted ?fuel ?ns_per_insn ?spans hctx c ~ctx_addr)
