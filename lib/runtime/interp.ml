(* The eBPF bytecode interpreter, running programs against the simulated
   kernel for real: memory operations fault through Kmem, helper calls
   execute their implementations, time advances on the virtual clock, and
   every invocation runs inside an RCU read-side section (as eBPF programs
   do), with periodic stall checks.

   The optional fuel/watchdog guards are the runtime half of the paper's
   proposal; with both disabled the interpreter faithfully reproduces the
   "verified program runs forever under RCU" §2.2 behaviour. *)

module Kmem = Kernel_sim.Kmem
module Oops = Kernel_sim.Oops
module Rcu = Kernel_sim.Rcu
module Vclock = Kernel_sim.Vclock
module Hctx = Helpers.Hctx
open Ebpf

type outcome =
  | Ret of int64
  | Oopsed of Oops.report
  | Terminated of Guard.termination

let pp_outcome ppf = function
  | Ret v -> Format.fprintf ppf "ret=%Ld" v
  | Oopsed r -> Oops.pp_report ppf r
  | Terminated t -> Guard.pp_termination ppf t

type t = {
  hctx : Hctx.t;
  mutable fuel : int64;            (* remaining instructions; negative = unlimited *)
  wall_deadline : int64;           (* absolute sim time; -1 = none *)
  ns_per_insn : int64;
  max_depth : int;                 (* deepest allowed call depth *)
  rcu_check_interval : int;
  mutable rcu_left : int;          (* insns until the next stall/watchdog check *)
  mutable insns_retired : int64;
  spans : int array;               (* per-pc fuel-check window length from the
                                      bound pass; [||] = check every insn *)
  tele_on : bool;                  (* telemetry state, sampled once per run *)
  mutable pc_tally : int array;    (* per-run block-profile diff array, flushed at exit *)
  elide : int array;               (* per-pc statically resolved jump target,
                                      -1 = execute the guard; [||] = none *)
  mutable prof_armed : bool;       (* sampling on for this run *)
  mutable prof_next : int64;       (* next sampling deadline (simulated ns) *)
  mutable prof_leaders : int array; (* pc -> containing CFG-block start pc *)
  mutable prof_prefix : string;    (* "<prog>;interp;block:" sample-key prefix *)
}

let max_call_depth = 8
let stack_size = 512

let create ?(fuel = -1L) ?(wall_ns = -1L) ?(ns_per_insn = 1L)
    ?(max_depth = max_call_depth) ?(rcu_check_interval = 4096) ?(elide = [||])
    ?(spans = [||]) (hctx : Hctx.t) =
  let wall_deadline =
    if Int64.compare wall_ns 0L < 0 then -1L
    else Int64.add (Vclock.now hctx.kernel.clock) wall_ns
  in
  { hctx; fuel; wall_deadline; ns_per_insn; max_depth; rcu_check_interval;
    rcu_left = rcu_check_interval; insns_retired = 0L; spans;
    tele_on = Telemetry.Registry.enabled (); pc_tally = [||];
    elide; prof_armed = false; prof_next = Int64.max_int;
    prof_leaders = [||]; prof_prefix = "" }

let frame t depth = Hctx.stack_frame t.hctx depth

let tele_runs = Telemetry.Registry.counter "interp.runs"
let tele_insns = Telemetry.Registry.counter "interp.insns"
let tele_op_alu = Telemetry.Registry.counter "interp.op.alu"
let tele_op_ld = Telemetry.Registry.counter "interp.op.ld"
let tele_op_st = Telemetry.Registry.counter "interp.op.st"
let tele_op_atomic = Telemetry.Registry.counter "interp.op.atomic"
let tele_op_jmp = Telemetry.Registry.counter "interp.op.jmp"
let tele_op_call = Telemetry.Registry.counter "interp.op.call"
let tele_op_exit = Telemetry.Registry.counter "interp.op.exit"

(* Per-instruction accounting is a basic-block execution profile: straight-
   line instructions cost nothing, and each control transfer closes the open
   block [block_start, pc] with two writes into a difference array
   (diff.(start) += 1, diff.(end+1) -= 1).  A prefix sum at flush time
   recovers the per-pc execution count, which is then classified per opcode.
   Anything per-instruction — even one guarded array add — costs ~1 ns
   against a ~20 ns dispatch, which alone approaches the <5% overhead
   budget.

   The profile counts *completed* instructions: one that faults mid-way
   (oops) or never starts (fuel/watchdog trip) is not tallied, so
   [interp.insns] can lag [insns_retired] by one on a faulting run. *)
let op_class = function
  | Insn.Alu _ -> 0
  | Insn.Ld_imm64 _ | Insn.Ld_map_fd _ | Insn.Ldx _ -> 1
  | Insn.St _ | Insn.Stx _ -> 2
  | Insn.Atomic _ -> 3
  | Insn.Ja _ | Insn.Jmp _ -> 4
  | Insn.Call _ | Insn.Call_sub _ -> 5
  | Insn.Exit -> 6

let op_counters =
  [| tele_op_alu; tele_op_ld; tele_op_st; tele_op_atomic; tele_op_jmp;
     tele_op_call; tele_op_exit |]

let tele_run_ns = Telemetry.Registry.histogram "interp.run.ns"

(* ---- sampling profiler support ----

   Attribution is pc -> CFG-block start -> program name, computed from the
   same [Cfg] the analyses use.  The map is built only when sampling is
   armed, so the profiler costs nothing at rest: a disarmed run skips the
   check behind the same kind of [prof_on] test the tallies use.

   Even when armed, the deadline is checked only at control transfers
   (taken branches, calls, exit) — never per instruction: a clock read
   plus boxed Int64 compare per instruction costs more than the entire
   <5% overhead budget, while a check per transfer amortises over the
   block.  Attribution is per CFG block anyway, so checking at block
   boundaries loses nothing; every loop iteration contains a taken
   backward branch, so a hot loop is still sampled on period. *)

(* pc -> start pc of the containing CFG block.  One-slot memo on physical
   equality (same trick as [tally_pool]): the common case is the same
   program run back to back, and rebuilding the CFG per run costs more
   than the entire sampling budget. *)
(* Domain-local: each serving shard runs the interpreter on its own domain,
   and a shared one-slot memo would ping-pong (and cross-pollute) between
   them. *)
let leader_cache : (Insn.insn array * int array) ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref ([||], [||]))

let block_leader_map (insns : Insn.insn array) =
  let leader_cache = Domain.DLS.get leader_cache in
  let cached_insns, cached = !leader_cache in
  if cached_insns == insns then cached
  else begin
    let cfg = Cfg.build insns in
    let n = Array.length insns in
    let out = Array.make n 0 in
    List.iter
      (fun (b : Cfg.block) ->
        for pc = b.start_pc to min b.end_pc (n - 1) do
          out.(pc) <- b.start_pc
        done)
      (Cfg.blocks_sorted cfg);
    leader_cache := (insns, out);
    out
  end

(* Arm sampling for one run of [prog]; no-op unless both telemetry and the
   profiler are enabled. *)
let arm_profiler t (prog : Program.t) =
  if t.tele_on && Telemetry.Profiler.enabled () then begin
    (* aim at the next global period boundary, not now+period: runs shorter
       than one period would otherwise push the deadline ahead of
       themselves forever and never take a sample *)
    let now = Vclock.now t.hctx.kernel.clock in
    t.prof_armed <- true;
    t.prof_next <- Telemetry.Profiler.next_deadline ~now;
    t.prof_leaders <- block_leader_map prog.Program.insns;
    t.prof_prefix <- prog.Program.name ^ ";interp;block:"
  end

(* Take one sample attributed to the block containing [pc] and schedule the
   next deadline.  Cold by construction: called at most once per sampling
   period, never per instruction. *)
let prof_sample t pc =
  let now = Vclock.now t.hctx.kernel.clock in
  t.prof_next <- Telemetry.Profiler.next_deadline ~now;
  let block =
    if pc >= 0 && pc < Array.length t.prof_leaders then t.prof_leaders.(pc)
    else pc
  in
  Telemetry.Profiler.record (t.prof_prefix ^ string_of_int block)

(* Deadline check, placed at control transfers only (see above). *)
let[@inline] prof_check t pc =
  if Int64.compare (Vclock.now t.hctx.kernel.clock) t.prof_next >= 0 then
    prof_sample t pc

(* One-slot pool for the diff array: the common case is the same program run
   back to back, and recycling avoids an alloc + zeroing per run.  Single
   simulated CPU, so no contention; flush zeroes before returning. *)
(* Domain-local like [leader_cache]: two shards flushing tallies at once
   must not share the diff pool or the per-class scratch. *)
let tally_pool : int array ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [||])
let per_class_scratch : int array Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Array.make 7 0)

let flush_tallies t (insns : Insn.insn array) =
  if t.tele_on && Array.length t.pc_tally > 0 then begin
    let diff = t.pc_tally in
    let per_class = Domain.DLS.get per_class_scratch in
    Array.fill per_class 0 (Array.length per_class) 0;
    let running = ref 0 in
    let total = ref 0 in
    for pc = 0 to Array.length insns - 1 do
      running := !running + diff.(pc);
      if !running > 0 then begin
        let c = op_class insns.(pc) in
        per_class.(c) <- per_class.(c) + !running;
        total := !total + !running
      end
    done;
    if !total > 0 then Telemetry.Registry.add tele_insns !total;
    Array.iteri
      (fun i n -> if n > 0 then Telemetry.Registry.add op_counters.(i) n)
      per_class;
    Array.fill diff 0 (Array.length diff) 0;
    Domain.DLS.get tally_pool := diff;
    t.pc_tally <- [||]
  end

(* Retire one instruction: global count, virtual clock, and the periodic
   RCU-stall/watchdog check.  The period is a plain int countdown rather
   than [Int64.rem insns_retired interval] — same cadence (a check fires
   after every [rcu_check_interval]-th retired instruction, counted across
   nested activations), without a hardware division per instruction. *)
let rcu_tick t =
  t.insns_retired <- Int64.add t.insns_retired 1L;
  Vclock.advance t.hctx.kernel.clock t.ns_per_insn;
  t.rcu_left <- t.rcu_left - 1;
  if t.rcu_left <= 0 then begin
    t.rcu_left <- t.rcu_check_interval;
    Rcu.check_stall t.hctx.kernel.rcu ~context:"bpf_prog";
    if Int64.compare t.wall_deadline 0L >= 0
       && Int64.compare (Vclock.now t.hctx.kernel.clock) t.wall_deadline > 0
    then raise (Guard.Terminate Guard.Watchdog_timeout)
  end

(* charge one instruction; raises Guard.Terminate on guard trip.

   Fuel is checked *before* the instruction's effects: [~fuel:N] executes
   exactly N instructions, and the instruction that finds the tank empty
   never runs (and never retires).  [~fuel:0L] therefore trips immediately;
   unlimited is any negative value. *)
let tick t =
  if Int64.compare t.fuel 0L >= 0 then begin
    if Int64.equal t.fuel 0L then raise (Guard.Terminate Guard.Fuel_exhausted);
    t.fuel <- Int64.sub t.fuel 1L
  end;
  rcu_tick t

let u64 v = v

(* Execute [insns] starting at [entry] with the given initial r1..r5;
   returns r0 when that activation exits. *)
let rec exec_insns t (insns : Insn.insn array) ~entry ~depth ~(args : int64 array) =
  if depth > t.max_depth then raise (Guard.Terminate Guard.Stack_violation);
  let regs = Array.make 11 0L in
  Array.blit args 0 regs 1 (min 5 (Array.length args));
  let stack = frame t depth in
  regs.(10) <- Int64.add stack.Kmem.base (Int64.of_int stack.Kmem.size);
  let mem = t.hctx.kernel.mem in
  if t.tele_on && Array.length t.pc_tally <> Array.length insns + 1 then begin
    let pool = Domain.DLS.get tally_pool in
    if Array.length !pool = Array.length insns + 1 then begin
      t.pc_tally <- !pool;
      pool := [||]
    end
    else t.pc_tally <- Array.make (Array.length insns + 1) 0
  end;
  let tele_on = t.tele_on in
  let tally = t.pc_tally in
  (* Open straight-line block starts at [bs]; at the top of the loop every
     instruction in [bs, pc - 1] has completed but is not yet tallied.
     Taken branches and Exit commit the block inline ([bs <= pc] holds at
     any executed instruction, so the unsafe accesses are in bounds);
     [close_cold] is the guarded version for the exception path, where pc
     may be wild. *)
  let bs = ref entry in
  let close_cold e =
    if !bs >= 0 && !bs <= e && e < Array.length insns then begin
      tally.(!bs) <- tally.(!bs) + 1;
      tally.(e + 1) <- tally.(e + 1) - 1
    end
  in
  let pc = ref entry in
  let running = ref true in
  let retval = ref 0L in
  let prof_on = t.prof_armed in
  (* Fuel-check batching (bound pass): when the window vector says the next
     [s] instructions run straight-line with no call in between, charge all
     [s] up front and skip the per-insn fuel test for the rest of the
     window.  A window opens only when the tank covers the whole span, so a
     fuel trip lands on exactly the instruction the per-insn check would
     have stopped at; retirement, the virtual clock, and the RCU countdown
     stay per-instruction, so watchdog timing, chaos outcomes, and the
     checksum oracle are bit-identical with batching on or off.  [batch] is
     per-activation: a callee (bpf-to-bpf call, helper callback) shares
     [t.fuel] but never a caller's open window — windows end at calls by
     construction of the span vector. *)
  let spans = t.spans in
  let batch = ref 0 in
  let charge at =
    if !batch > 0 then begin
      decr batch;
      rcu_tick t
    end
    else begin
      if Int64.compare t.fuel 0L >= 0 then begin
        let s =
          if at < Array.length spans then Array.unsafe_get spans at else 1
        in
        if s > 1 && Int64.compare t.fuel (Int64.of_int s) >= 0 then begin
          t.fuel <- Int64.sub t.fuel (Int64.of_int s);
          batch := s - 1
        end
        else begin
          if Int64.equal t.fuel 0L then
            raise (Guard.Terminate Guard.Fuel_exhausted);
          t.fuel <- Int64.sub t.fuel 1L
        end
      end;
      rcu_tick t
    end
  in
  (try
  while !running do
    if !pc < 0 || !pc >= Array.length insns then
      Oops.raise_oops ~kind:Oops.Control_flow_hijack
        ~context:(Printf.sprintf "pc=%d out of program" !pc)
        ~time_ns:(Vclock.now t.hctx.kernel.clock) ();
    if !pc < Array.length t.elide && Array.unsafe_get t.elide !pc >= 0 then begin
      (* a guard the static analysis proved one-way: take the resolved edge
         without evaluating the condition.  The instruction still retires
         (fuel and clock charge as usual) so the simulated cost model is
         identical with elision on or off — elision saves host-side decode
         and condition evaluation, never simulated budget, which is what
         keeps Chaos fuel-pressure outcomes bit-identical either way. *)
      charge !pc;
      if prof_on then prof_check t !pc;
      let next = Array.unsafe_get t.elide !pc in
      if tele_on && next <> !pc + 1 then begin
        Array.unsafe_set tally !bs (Array.unsafe_get tally !bs + 1);
        Array.unsafe_set tally (!pc + 1) (Array.unsafe_get tally (!pc + 1) - 1);
        bs := next
      end;
      pc := next
    end
    else begin
    let insn = insns.(!pc) in
    charge !pc;
    (match insn with
    | Insn.Alu { op; width; dst; src } ->
      let s = match src with Insn.Reg r -> regs.(r) | Insn.Imm v -> Int64.of_int v in
      let d = regs.(dst) in
      let v64 =
        match op with
        | Insn.Add -> Int64.add d s
        | Insn.Sub -> Int64.sub d s
        | Insn.Mul -> Int64.mul d s
        | Insn.Div -> if Int64.equal s 0L then 0L else Int64.unsigned_div d s
        | Insn.Mod -> if Int64.equal s 0L then d else Int64.unsigned_rem d s
        | Insn.Or -> Int64.logor d s
        | Insn.And -> Int64.logand d s
        | Insn.Xor -> Int64.logxor d s
        | Insn.Mov -> s
        | Insn.Neg -> Int64.neg d
        | Insn.Lsh -> Int64.shift_left d (Int64.to_int (Int64.logand s 63L))
        | Insn.Rsh -> Int64.shift_right_logical d (Int64.to_int (Int64.logand s 63L))
        | Insn.Arsh -> Int64.shift_right d (Int64.to_int (Int64.logand s 63L))
      in
      let v =
        match width with
        | Insn.W64 -> v64
        | Insn.W32 -> (
          (* 32-bit ops compute on the low words and zero-extend *)
          let d32 = Int64.logand d 0xffff_ffffL and s32 = Int64.logand s 0xffff_ffffL in
          let r32 =
            match op with
            | Insn.Add -> Int64.add d32 s32
            | Insn.Sub -> Int64.sub d32 s32
            | Insn.Mul -> Int64.mul d32 s32
            | Insn.Div -> if Int64.equal s32 0L then 0L else Int64.unsigned_div d32 s32
            | Insn.Mod -> if Int64.equal s32 0L then d32 else Int64.unsigned_rem d32 s32
            | Insn.Or -> Int64.logor d32 s32
            | Insn.And -> Int64.logand d32 s32
            | Insn.Xor -> Int64.logxor d32 s32
            | Insn.Mov -> s32
            | Insn.Neg -> Int64.neg d32
            | Insn.Lsh -> Int64.shift_left d32 (Int64.to_int (Int64.logand s32 31L))
            | Insn.Rsh ->
              Int64.shift_right_logical (Int64.logand d32 0xffff_ffffL)
                (Int64.to_int (Int64.logand s32 31L))
            | Insn.Arsh ->
              (* arithmetic shift of the sign-extended low word *)
              Int64.shift_right
                (Int64.shift_right (Int64.shift_left d32 32) 32)
                (Int64.to_int (Int64.logand s32 31L))
          in
          Int64.logand r32 0xffff_ffffL)
      in
      regs.(dst) <- u64 v;
      incr pc
    | Insn.Ld_imm64 (dst, v) ->
      regs.(dst) <- v;
      incr pc
    | Insn.Ld_map_fd (dst, fd) ->
      regs.(dst) <- Int64.of_int fd;
      incr pc
    | Insn.Ldx { size; dst; src; off } ->
      regs.(dst) <-
        Kmem.load mem ~size:(Insn.size_bytes size)
          ~addr:(Int64.add regs.(src) (Int64.of_int off))
          ~context:(Printf.sprintf "bpf_prog+%d" !pc);
      incr pc
    | Insn.St { size; dst; off; imm } ->
      Kmem.store mem ~size:(Insn.size_bytes size)
        ~addr:(Int64.add regs.(dst) (Int64.of_int off))
        ~value:(Int64.of_int imm) ~context:(Printf.sprintf "bpf_prog+%d" !pc);
      incr pc
    | Insn.Stx { size; dst; off; src } ->
      Kmem.store mem ~size:(Insn.size_bytes size)
        ~addr:(Int64.add regs.(dst) (Int64.of_int off))
        ~value:regs.(src) ~context:(Printf.sprintf "bpf_prog+%d" !pc);
      incr pc
    | Insn.Atomic { aop; size; dst; src; off; fetch } ->
      let sz = Insn.size_bytes size in
      let addr = Int64.add regs.(dst) (Int64.of_int off) in
      let ctx_str = Printf.sprintf "bpf_prog+%d (atomic)" !pc in
      let old = Kmem.load mem ~size:sz ~addr ~context:ctx_str in
      (match aop with
      | Insn.A_add ->
        Kmem.store mem ~size:sz ~addr ~value:(Int64.add old regs.(src)) ~context:ctx_str;
        if fetch then regs.(src) <- old
      | Insn.A_or ->
        Kmem.store mem ~size:sz ~addr ~value:(Int64.logor old regs.(src)) ~context:ctx_str;
        if fetch then regs.(src) <- old
      | Insn.A_and ->
        Kmem.store mem ~size:sz ~addr ~value:(Int64.logand old regs.(src)) ~context:ctx_str;
        if fetch then regs.(src) <- old
      | Insn.A_xor ->
        Kmem.store mem ~size:sz ~addr ~value:(Int64.logxor old regs.(src)) ~context:ctx_str;
        if fetch then regs.(src) <- old
      | Insn.A_xchg ->
        Kmem.store mem ~size:sz ~addr ~value:regs.(src) ~context:ctx_str;
        regs.(src) <- old
      | Insn.A_cmpxchg ->
        (* compare with r0; on match write src; r0 always gets the old value *)
        let expected =
          if sz = 4 then Int64.logand regs.(0) 0xffff_ffffL else regs.(0)
        in
        if Int64.equal old expected then
          Kmem.store mem ~size:sz ~addr ~value:regs.(src) ~context:ctx_str;
        regs.(0) <- old);
      incr pc
    | Insn.Ja off ->
      if prof_on then prof_check t !pc;
      if tele_on && off <> 0 then begin
        Array.unsafe_set tally !bs (Array.unsafe_get tally !bs + 1);
        Array.unsafe_set tally (!pc + 1) (Array.unsafe_get tally (!pc + 1) - 1);
        bs := !pc + 1 + off
      end;
      pc := !pc + 1 + off
    | Insn.Jmp { cond; width; dst; src; off } ->
      let s = match src with Insn.Reg r -> regs.(r) | Insn.Imm v -> Int64.of_int v in
      let d = regs.(dst) in
      let d, s =
        match width with
        | Insn.W64 -> (d, s)
        | Insn.W32 -> (Int64.logand d 0xffff_ffffL, Int64.logand s 0xffff_ffffL)
      in
      let sext32 x = Int64.shift_right (Int64.shift_left x 32) 32 in
      let ds, ss =
        match width with Insn.W64 -> (d, s) | Insn.W32 -> (sext32 d, sext32 s)
      in
      let taken =
        match cond with
        | Insn.Eq -> Int64.equal d s
        | Insn.Ne -> not (Int64.equal d s)
        | Insn.Gt -> Int64.unsigned_compare d s > 0
        | Insn.Ge -> Int64.unsigned_compare d s >= 0
        | Insn.Lt -> Int64.unsigned_compare d s < 0
        | Insn.Le -> Int64.unsigned_compare d s <= 0
        | Insn.Set -> not (Int64.equal (Int64.logand d s) 0L)
        | Insn.Sgt -> Int64.compare ds ss > 0
        | Insn.Sge -> Int64.compare ds ss >= 0
        | Insn.Slt -> Int64.compare ds ss < 0
        | Insn.Sle -> Int64.compare ds ss <= 0
      in
      let next = if taken then !pc + 1 + off else !pc + 1 in
      if prof_on then prof_check t !pc;
      if tele_on && next <> !pc + 1 then begin
        Array.unsafe_set tally !bs (Array.unsafe_get tally !bs + 1);
        Array.unsafe_set tally (!pc + 1) (Array.unsafe_get tally (!pc + 1) - 1);
        bs := next
      end;
      pc := next
    | Insn.Call helper_id -> (
      match Helpers.Registry.find helper_id with
      | None ->
        Oops.raise_oops ~kind:(Oops.Bug (Printf.sprintf "unknown helper %d" helper_id))
          ~context:(Printf.sprintf "bpf_prog+%d" !pc)
          ~time_ns:(Vclock.now t.hctx.kernel.clock) ()
      | Some def ->
        (* no block close: callback re-entry shares the diff array (adds
           commute), and if the helper oopses the Call goes untallied like
           any other instruction that failed to complete *)
        t.hctx.helper_calls <- t.hctx.helper_calls + 1;
        let args = [| regs.(1); regs.(2); regs.(3); regs.(4); regs.(5) |] in
        (* helpers that take callbacks re-enter the interpreter *)
        t.hctx.call_subprog <-
          Some (fun cb_pc cb_args ->
              exec_insns t insns ~entry:cb_pc ~depth:(depth + 1) ~args:cb_args);
        regs.(0) <- Helpers.Registry.invoke def t.hctx args;
        if prof_on then prof_check t !pc;
        incr pc)
    | Insn.Call_sub off ->
      (* BPF-to-BPF call: fresh frame, args in r1..r5, result in r0;
         the caller's r6..r9 are callee-saved by construction *)
      let target = !pc + 1 + off in
      regs.(0) <-
        exec_insns t insns ~entry:target ~depth:(depth + 1)
          ~args:[| regs.(1); regs.(2); regs.(3); regs.(4); regs.(5) |];
      incr pc
    | Insn.Exit ->
      if prof_on then prof_check t !pc;
      if tele_on then begin
        Array.unsafe_set tally !bs (Array.unsafe_get tally !bs + 1);
        Array.unsafe_set tally (!pc + 1) (Array.unsafe_get tally (!pc + 1) - 1)
      end;
      retval := regs.(0);
      running := false)
    end
  done
  with e ->
    (* an instruction that raised never completed: commit [bs, pc - 1] *)
    if tele_on then close_cold (!pc - 1);
    raise e);
  !retval

(* Run a program whose context struct lives at [ctx_addr]. *)
let run_counted ?fuel ?wall_ns ?ns_per_insn ?max_depth ?rcu_check_interval
    ?elide ?spans ~(hctx : Hctx.t) ~(prog : Program.t) ~ctx_addr () :
    outcome * int64 =
  let t =
    create ?fuel ?wall_ns ?ns_per_insn ?max_depth ?rcu_check_interval ?elide
      ?spans hctx
  in
  (* charge clock via the helpers' charge hook too *)
  hctx.charge <- (fun ns -> Vclock.advance hctx.kernel.clock ns);
  arm_profiler t prog;
  Telemetry.Registry.bump tele_runs;
  let outcome =
    Telemetry.Registry.with_span "interp.run" ~hist:tele_run_ns
      ~clock:(fun () -> Vclock.now hctx.kernel.clock)
      (fun () ->
        let rcu = hctx.kernel.rcu in
        Rcu.read_lock rcu;
        match
          exec_insns t prog.Program.insns ~entry:0 ~depth:0
            ~args:[| ctx_addr; 0L; 0L; 0L; 0L |]
        with
        | ret ->
          Rcu.read_unlock rcu ~context:"bpf_prog exit";
          Ret ret
        | exception Guard.Terminate reason -> Terminated (Guard.terminate hctx reason)
        | exception Oops.Kernel_oops report ->
          Kernel_sim.Kernel.record_oops hctx.kernel report;
          Oopsed report)
  in
  flush_tallies t prog.Program.insns;
  (outcome, t.insns_retired)

let run ?fuel ?wall_ns ?ns_per_insn ?max_depth ?rcu_check_interval ?elide
    ?spans ~hctx ~prog ~ctx_addr () =
  fst
    (run_counted ?fuel ?wall_ns ?ns_per_insn ?max_depth ?rcu_check_interval
       ?elide ?spans ~hctx ~prog ~ctx_addr ())
