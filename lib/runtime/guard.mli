(** The lightweight runtime protection mechanisms of §3.1: watchdog/fuel
    termination, stack protection, and safe termination that releases
    acquired kernel resources by running the {e recorded} destructor list
    instead of unwinding the stack (no user-defined Drop code runs, no
    allocation is needed, and failures during unwinding cannot happen). *)

type reason =
  | Fuel_exhausted            (** instruction-count watchdog *)
  | Watchdog_timeout          (** simulated wall-clock watchdog *)
  | Stack_violation           (** stack guard tripped *)
  | Language_panic of string  (** rustlite panic (checked arithmetic, bounds) *)

val reason_to_string : reason -> string

type termination = {
  reason : reason;
  cleaned_resources : int;  (** destructors run by the trusted cleanup list *)
  at_ns : int64;
}

exception Terminate of reason
(** Raised at a guard trip point; caught by the interpreter/JIT drivers,
    which then call {!terminate}. *)

val terminate : Helpers.Hctx.t -> reason -> termination
(** Safe termination: run the recorded destructors (LIFO), leave any RCU
    read-side sections, bump the guard telemetry, and report what was
    cleaned.  This is the trusted, cannot-fail path the paper contrasts
    with ABI unwinding. *)

val pp_termination : Format.formatter -> termination -> unit
