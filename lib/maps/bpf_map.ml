module Kmem = Kernel_sim.Kmem
module Spinlock = Kernel_sim.Spinlock
module Kernel = Kernel_sim.Kernel

(* eBPF maps: the shared-state substrate between extensions and userspace.

   Map values live in guarded simulated kernel memory, so a map-value
   pointer handed to a program (or leaked past its bounds) behaves exactly
   like the kernel case: the verifier reasons about [0, value_size) and the
   memory system faults on anything else.

   Array, hash, LRU-hash, per-CPU array, queue, stack and ring buffer map
   kinds cover every map the paper's experiments touch (the §2.2
   termination exploit does random reads/writes on an array map; the ring
   buffer backs the tracing example; hash maps back the task-storage bug
   model; queue/stack exist mainly so their push/pop/peek helper shims can
   be demonstrated retired in §3.2). *)

type kind = Array | Hash | Lru_hash | Percpu_array | Ringbuf | Queue | Stack

let kind_to_string = function
  | Array -> "array"
  | Hash -> "hash"
  | Lru_hash -> "lru_hash"
  | Percpu_array -> "percpu_array"
  | Ringbuf -> "ringbuf"
  | Queue -> "queue"
  | Stack -> "stack"

type def = {
  name : string;
  kind : kind;
  key_size : int;
  value_size : int;
  max_entries : int;
  (* Offset of an embedded bpf_spin_lock in the value, if any.  The verifier
     needs this to check bpf_spin_lock/unlock arguments. *)
  lock_off : int option;
}

(* Hash-map slot bookkeeping: key bytes -> slot index; insertion order kept
   for LRU eviction. *)
type hash_state = {
  slots : (string, int) Hashtbl.t;
  mutable free : int list;
  mutable order : string list; (* most recently used first *)
}

(* queue/stack maps: a deque of occupied slot indices over a slab *)
type deque_state = {
  mutable occupied : int list; (* front first *)
  mutable free_slots : int list;
}

type storage =
  | Array_storage of Kmem.region
  | Hash_storage of Kmem.region * hash_state
  | Percpu_storage of Kmem.region array (* one region per cpu *)
  | Ringbuf_storage of Ringbuf.t
  | Deque_storage of Kmem.region * deque_state

type t = {
  id : int;
  def : def;
  kernel : Kernel.t; (* per-CPU maps consult the current simulated CPU *)
  storage : storage;
  lock : Spinlock.t option; (* model: one lock per map with lock_off set *)
  mutable lookups : int;
  mutable updates : int;
  mutable deletes : int;
}

type error = E2BIG | ENOENT | EINVAL | ENOTSUPP | ENOMEM

let error_to_string = function
  | E2BIG -> "E2BIG"
  | ENOENT -> "ENOENT"
  | EINVAL -> "EINVAL"
  | ENOTSUPP -> "ENOTSUPP"
  | ENOMEM -> "ENOMEM"

let nr_cpus = 4

let create (kernel : Kernel.t) ~id (def : def) =
  let mem = kernel.Kernel.mem in
  let storage =
    match def.kind with
    | Array ->
      Array_storage
        (Kmem.alloc mem ~size:(def.value_size * def.max_entries) ~kind:"map_value"
           ~name:("map:" ^ def.name) ())
    | Hash | Lru_hash ->
      let region =
        Kmem.alloc mem ~size:(def.value_size * def.max_entries) ~kind:"map_value"
          ~name:("map:" ^ def.name) ()
      in
      Hash_storage
        (region,
         { slots = Hashtbl.create 16; free = List.init def.max_entries (fun i -> i);
           order = [] })
    | Percpu_array ->
      Percpu_storage
        (Array.init nr_cpus (fun cpu ->
             Kmem.alloc mem ~size:(def.value_size * def.max_entries) ~kind:"map_value"
               ~name:(Printf.sprintf "map:%s[cpu%d]" def.name cpu) ()))
    | Ringbuf -> Ringbuf_storage (Ringbuf.create mem ~capacity:def.max_entries)
    | Queue | Stack ->
      let region =
        Kmem.alloc mem ~size:(def.value_size * def.max_entries) ~kind:"map_value"
          ~name:("map:" ^ def.name) ()
      in
      Deque_storage
        (region, { occupied = []; free_slots = List.init def.max_entries (fun i -> i) })
  in
  let lock =
    match def.lock_off with
    | Some _ -> Some (Kernel.new_lock kernel ~name:("map_lock:" ^ def.name))
    | None -> None
  in
  { id; def; kernel; storage; lock; lookups = 0; updates = 0; deletes = 0 }

let key_to_index def (key : Bytes.t) =
  (* array-style maps use a u32 key *)
  let rec go acc i = if i < 0 then acc else go ((acc lsl 8) lor Char.code (Bytes.get key i)) (i - 1) in
  ignore def;
  go 0 (min 3 (Bytes.length key - 1))

let touch_lru st key =
  st.order <- key :: List.filter (fun k -> not (String.equal k key)) st.order

(* Look up the address of the value for [key]; this is what the helper
   returns to the program as PTR_TO_MAP_VALUE_OR_NULL. *)
let lookup t ~(key : Bytes.t) : int64 option =
  t.lookups <- t.lookups + 1;
  match t.storage with
  | Array_storage region ->
    let idx = key_to_index t.def key in
    if idx < 0 || idx >= t.def.max_entries then None
    else Some (Kmem.region_addr region (idx * t.def.value_size))
  | Percpu_storage regions ->
    let idx = key_to_index t.def key in
    if idx < 0 || idx >= t.def.max_entries then None
    else
      let cpu = t.kernel.Kernel.cpu mod Array.length regions in
      Some (Kmem.region_addr regions.(cpu) (idx * t.def.value_size))
  | Hash_storage (region, st) ->
    let k = Bytes.to_string key in
    (match Hashtbl.find_opt st.slots k with
    | None -> None
    | Some slot ->
      if t.def.kind = Lru_hash then touch_lru st k;
      Some (Kmem.region_addr region (slot * t.def.value_size)))
  | Ringbuf_storage _ | Deque_storage _ -> None

let update t mem ~(key : Bytes.t) ~(value : Bytes.t) : (unit, error) result =
  t.updates <- t.updates + 1;
  if Bytes.length value <> t.def.value_size then Error EINVAL
  else
    match t.storage with
    | Array_storage region ->
      let idx = key_to_index t.def key in
      if idx < 0 || idx >= t.def.max_entries then Error E2BIG
      else begin
        Kmem.store_bytes mem ~addr:(Kmem.region_addr region (idx * t.def.value_size))
          ~src:value ~context:"map_update";
        Ok ()
      end
    | Percpu_storage regions ->
      let idx = key_to_index t.def key in
      if idx < 0 || idx >= t.def.max_entries then Error E2BIG
      else begin
        Array.iter
          (fun region ->
            Kmem.store_bytes mem ~addr:(Kmem.region_addr region (idx * t.def.value_size))
              ~src:value ~context:"map_update")
          regions;
        Ok ()
      end
    | Hash_storage (region, st) ->
      let k = Bytes.to_string key in
      let write slot =
        Kmem.store_bytes mem ~addr:(Kmem.region_addr region (slot * t.def.value_size))
          ~src:value ~context:"map_update";
        if t.def.kind = Lru_hash then touch_lru st k;
        Ok ()
      in
      (match Hashtbl.find_opt st.slots k with
      | Some slot -> write slot
      | None -> (
        match st.free with
        | slot :: rest ->
          st.free <- rest;
          Hashtbl.replace st.slots k slot;
          write slot
        | [] ->
          if t.def.kind = Lru_hash then
            (* evict the least recently used entry and retry *)
            match List.rev st.order with
            | [] -> Error E2BIG
            | victim :: _ ->
              let slot = Hashtbl.find st.slots victim in
              Hashtbl.remove st.slots victim;
              st.order <- List.filter (fun x -> not (String.equal x victim)) st.order;
              Hashtbl.replace st.slots k slot;
              write slot
          else Error E2BIG))
    | Ringbuf_storage _ | Deque_storage _ -> Error ENOTSUPP

let delete t ~(key : Bytes.t) : (unit, error) result =
  t.deletes <- t.deletes + 1;
  match t.storage with
  | Array_storage _ | Percpu_storage _ -> Error EINVAL (* arrays cannot delete *)
  | Hash_storage (_, st) ->
    let k = Bytes.to_string key in
    (match Hashtbl.find_opt st.slots k with
    | None -> Error ENOENT
    | Some slot ->
      Hashtbl.remove st.slots k;
      st.free <- slot :: st.free;
      st.order <- List.filter (fun x -> not (String.equal x k)) st.order;
      Ok ())
  | Ringbuf_storage _ | Deque_storage _ -> Error ENOTSUPP

(* queue/stack operations (bpf_map_push/pop/peek_elem) *)
let push t mem ~(value : Bytes.t) : (unit, error) result =
  t.updates <- t.updates + 1;
  if Bytes.length value <> t.def.value_size then Error EINVAL
  else
    match t.storage with
    | Deque_storage (region, st) -> (
      match st.free_slots with
      | [] -> Error E2BIG
      | slot :: rest ->
        st.free_slots <- rest;
        Kmem.store_bytes mem ~addr:(Kmem.region_addr region (slot * t.def.value_size))
          ~src:value ~context:"map_push";
        (match t.def.kind with
        | Stack -> st.occupied <- slot :: st.occupied          (* LIFO: front *)
        | _ -> st.occupied <- st.occupied @ [ slot ]);         (* FIFO: back *)
        Ok ())
    | Array_storage _ | Hash_storage _ | Percpu_storage _ | Ringbuf_storage _ ->
      Error ENOTSUPP

let pop_or_peek t mem ~remove : (Bytes.t, error) result =
  t.lookups <- t.lookups + 1;
  match t.storage with
  | Deque_storage (region, st) -> (
    match st.occupied with
    | [] -> Error ENOENT
    | slot :: rest ->
      let v =
        Kmem.load_bytes mem ~addr:(Kmem.region_addr region (slot * t.def.value_size))
          ~len:t.def.value_size ~context:"map_pop"
      in
      if remove then begin
        st.occupied <- rest;
        st.free_slots <- slot :: st.free_slots
      end;
      Ok v)
  | Array_storage _ | Hash_storage _ | Percpu_storage _ | Ringbuf_storage _ ->
    Error ENOTSUPP

let pop t mem = pop_or_peek t mem ~remove:true
let peek t mem = pop_or_peek t mem ~remove:false

let ringbuf t = match t.storage with Ringbuf_storage rb -> Some rb | _ -> None

let entries t =
  match t.storage with
  | Array_storage _ | Percpu_storage _ -> t.def.max_entries
  | Hash_storage (_, st) -> Hashtbl.length st.slots
  | Ringbuf_storage rb -> Ringbuf.pending_records rb
  | Deque_storage (_, st) -> List.length st.occupied

let create_map = create

(* Registry: the simulated bpf(2) map-fd table. *)
module Registry = struct
  type map = t

  type t = { mutable next_id : int; by_id : (int, map) Hashtbl.t }

  let create () = { next_id = 1; by_id = Hashtbl.create 8 }

  let register reg kernel def =
    let id = reg.next_id in
    reg.next_id <- reg.next_id + 1;
    let map = create_map kernel ~id def in
    Hashtbl.replace reg.by_id id map;
    map

  let find reg id = Hashtbl.find_opt reg.by_id id
  let all reg = Hashtbl.fold (fun _ m acc -> m :: acc) reg.by_id []

  (* Re-create every map of [reg] in [kernel], keeping the SAME ids (so
     programs compiled against the original fd table resolve identically)
     but with fresh, empty storage in the new kernel's memory.  This is
     the per-shard world constructor's view of "same topology, private
     state" — shard-local map contents are an isolation feature, matching
     per-CPU map semantics writ large.  [next_id] carries over so ids
     allocated after the clone never collide across worlds. *)
  let clone reg ~kernel =
    let fresh = { next_id = reg.next_id; by_id = Hashtbl.create 8 } in
    Hashtbl.iter
      (fun id (m : map) ->
        Hashtbl.replace fresh.by_id id (create_map kernel ~id m.def))
      reg.by_id;
    fresh
end
