(* Control-flow graph over an instruction array: basic blocks, successor
   edges, back-edge detection and a (capped) path count.  The verifier uses
   the block structure for its statistics and the path count feeds the
   §2.1 "verification is expensive" experiment. *)

type block = {
  start_pc : int;
  end_pc : int; (* inclusive *)
  mutable succs : int list; (* start pcs of successor blocks *)
}

type t = {
  blocks : (int, block) Hashtbl.t; (* keyed by start pc *)
  entry : int;
  n_insns : int;
}

let successors_of_insn pc insn =
  match insn with
  | Insn.Exit -> []
  | Insn.Ja off -> [ pc + 1 + off ]
  | Insn.Jmp { off; _ } -> [ pc + 1; pc + 1 + off ]
  | _ -> [ pc + 1 ]

let build (insns : Insn.insn array) : t =
  let n = Array.length insns in
  let leader = Array.make (n + 1) false in
  if n > 0 then leader.(0) <- true;
  Array.iteri
    (fun pc insn ->
      match insn with
      | Insn.Ja off ->
        if pc + 1 <= n then leader.(min n (pc + 1)) <- true;
        let t = pc + 1 + off in
        if t >= 0 && t <= n then leader.(min n t) <- true
      | Insn.Jmp { off; _ } ->
        if pc + 1 <= n then leader.(min n (pc + 1)) <- true;
        let t = pc + 1 + off in
        if t >= 0 && t <= n then leader.(min n t) <- true
      | Insn.Exit -> if pc + 1 <= n then leader.(min n (pc + 1)) <- true
      | _ -> ())
    insns;
  let blocks = Hashtbl.create 16 in
  let start = ref 0 in
  for pc = 0 to n - 1 do
    let is_last = pc = n - 1 || leader.(pc + 1) in
    if is_last then begin
      let b = { start_pc = !start; end_pc = pc; succs = [] } in
      b.succs <- successors_of_insn pc insns.(pc) |> List.filter (fun s -> s >= 0 && s < n);
      Hashtbl.replace blocks !start b;
      start := pc + 1
    end
  done;
  { blocks; entry = 0; n_insns = n }

let block_count t = Hashtbl.length t.blocks

let edge_count t = Hashtbl.fold (fun _ b acc -> acc + List.length b.succs) t.blocks 0

let blocks_sorted t =
  Hashtbl.fold (fun _ b acc -> b :: acc) t.blocks []
  |> List.sort (fun a b -> compare a.start_pc b.start_pc)

let succs_of t pc =
  match Hashtbl.find_opt t.blocks pc with None -> [] | Some b -> b.succs

(* Predecessor map: block start pc -> start pcs of blocks that jump to it. *)
let preds t =
  let tbl = Hashtbl.create (Hashtbl.length t.blocks) in
  Hashtbl.iter
    (fun start b ->
      List.iter
        (fun s ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt tbl s) in
          Hashtbl.replace tbl s (start :: cur))
        b.succs)
    t.blocks;
  tbl

(* Block start pcs reachable from the entry (iterative, so a pathological
   one-insn-per-block chain cannot blow the OCaml stack). *)
let reachable t =
  let seen = Hashtbl.create 16 in
  let stack = ref [ t.entry ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | pc :: tl ->
      stack := tl;
      if Hashtbl.mem t.blocks pc && not (Hashtbl.mem seen pc) then begin
        Hashtbl.replace seen pc ();
        stack := succs_of t pc @ !stack
      end
  done;
  seen

(* Back edges w.r.t. an iterative DFS forest: the loop detector.  Starting
   the forest at the entry and then at every still-unvisited block (in
   ascending start-pc order, for determinism) means loops confined to
   unreachable code are still reported — a program is not loop-free just
   because its loop is dead. *)
let back_edges_from t ~visited ~backs root =
  let on_stack = Hashtbl.create 16 in
  if not (Hashtbl.mem visited root) && Hashtbl.mem t.blocks root then begin
    let stack = ref [] in
    let push pc =
      Hashtbl.replace visited pc ();
      Hashtbl.replace on_stack pc ();
      stack := (pc, ref (succs_of t pc)) :: !stack
    in
    push root;
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | (pc, rest) :: tl -> (
        match !rest with
        | [] ->
          Hashtbl.remove on_stack pc;
          stack := tl
        | s :: more ->
          rest := more;
          if Hashtbl.mem on_stack s then backs := (pc, s) :: !backs
          else if not (Hashtbl.mem visited s) && Hashtbl.mem t.blocks s then
            push s)
    done
  end

let back_edges t =
  let visited = Hashtbl.create 16 in
  let backs = ref [] in
  back_edges_from t ~visited ~backs t.entry;
  List.iter
    (fun b -> back_edges_from t ~visited ~backs b.start_pc)
    (blocks_sorted t);
  !backs

let has_loop t = back_edges t <> []

(* Number of distinct entry-to-exit paths, capped (the quantity that blows
   up in path-sensitive verification).  Counted over the subgraph reachable
   from the entry: a cycle there returns the cap, while a cycle confined to
   dead code cannot inflate the count of paths that actually exist.  A
   block with no in-range successor (trailing [exit], or a final insn that
   just falls off the end) terminates a path.  Iterative throughout, so
   block-per-insn chains cannot overflow the stack. *)
let path_count ?(cap = 1_000_000_000) t =
  if t.n_insns = 0 || not (Hashtbl.mem t.blocks t.entry) then 0
  else begin
    let live = reachable t in
    let visited = Hashtbl.create 16 in
    let backs = ref [] in
    back_edges_from t ~visited ~backs t.entry;
    if !backs <> [] then cap
    else begin
      let memo = Hashtbl.create 16 in
      let stack = ref [ t.entry ] in
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | pc :: tl ->
          if Hashtbl.mem memo pc then stack := tl
          else begin
            let succs =
              List.filter (fun s -> Hashtbl.mem live s) (succs_of t pc)
            in
            let pending =
              List.filter (fun s -> not (Hashtbl.mem memo s)) succs
            in
            if pending = [] then begin
              let c =
                if succs = [] then 1
                else
                  (* saturating: every memo value is <= cap, but a plain
                     [acc + v] can wrap negative once cap approaches
                     [max_int] (a 128-diamond chain has 2^128 paths) *)
                  List.fold_left
                    (fun acc s ->
                      let v = Hashtbl.find memo s in
                      if acc >= cap - v then cap else acc + v)
                    0 succs
              in
              Hashtbl.replace memo pc c;
              stack := tl
            end
            else stack := pending @ !stack
          end
      done;
      Hashtbl.find memo t.entry
    end
  end
