(** Control-flow graph over an instruction array: basic blocks, back-edge
    detection (the pre-5.3 loop rejection), and the capped path count that
    feeds the §2.1 verification-cost experiment. *)

type block = {
  start_pc : int;
  end_pc : int; (** inclusive *)
  mutable succs : int list; (** start pcs of successor blocks *)
}

type t = {
  blocks : (int, block) Hashtbl.t; (** keyed by start pc *)
  entry : int;
  n_insns : int;
}

val successors_of_insn : int -> Insn.insn -> int list

val build : Insn.insn array -> t

val block_count : t -> int
val edge_count : t -> int

val blocks_sorted : t -> block list
(** All blocks in ascending start-pc order — the deterministic view. *)

val succs_of : t -> int -> int list
(** Successor start pcs of the block starting at the given pc ([[]] if no
    such block). *)

val preds : t -> (int, int list) Hashtbl.t
(** Predecessor map: block start pc -> start pcs of blocks with an edge to
    it.  Blocks with no predecessors (the entry, unreachable blocks) have
    no binding. *)

val reachable : t -> (int, unit) Hashtbl.t
(** Start pcs of blocks reachable from the entry. *)

val back_edges : t -> (int * int) list
(** DFS-forest back edges (from-block, to-block): the loop detector.  The
    forest covers unreachable blocks too, so a loop confined to dead code
    is still reported; iterative, so deep block chains cannot overflow the
    stack. *)

val has_loop : t -> bool

val path_count : ?cap:int -> t -> int
(** Distinct entry-to-exit paths among blocks reachable from the entry,
    capped (the quantity that explodes in path-sensitive verification);
    returns the cap when the reachable subgraph is cyclic, 0 for an empty
    program, and treats a block that falls off the end of the program as a
    path terminator (it cannot undercount a trailing non-[exit] insn).
    Counts saturate at the cap — a diamond chain with 2^128 paths reports
    the cap rather than wrapping negative, for any cap up to [max_int]. *)
