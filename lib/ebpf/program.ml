(* Programs and their attach-point context descriptors.

   Each program type exposes a different context struct to the extension;
   the verifier checks every ctx access against the descriptor (offset,
   size, writability), which is the ctx half of the kernel's
   [check_ctx_access].  Context fields here are scalars; packet payloads are
   accessed through helpers (as bpf_skb_load_bytes does), which keeps the
   model faithful without reimplementing packet-pointer range tracking. *)

type prog_type = Socket_filter | Xdp | Kprobe | Tracepoint

let prog_type_to_string = function
  | Socket_filter -> "socket_filter"
  | Xdp -> "xdp"
  | Kprobe -> "kprobe"
  | Tracepoint -> "tracepoint"

type ctx_field = { fname : string; foff : int; fsize : int; writable : bool }

type ctx_desc = { ctx_size : int; fields : ctx_field list }

let skb_ctx =
  { ctx_size = 32;
    fields =
      [ { fname = "len"; foff = 0; fsize = 4; writable = false };
        { fname = "protocol"; foff = 4; fsize = 4; writable = false };
        { fname = "mark"; foff = 8; fsize = 4; writable = true };
        { fname = "queue_mapping"; foff = 12; fsize = 4; writable = true };
        { fname = "ifindex"; foff = 16; fsize = 4; writable = false };
        { fname = "hash"; foff = 20; fsize = 4; writable = false };
        { fname = "priority"; foff = 24; fsize = 4; writable = true } ] }

let xdp_ctx =
  { ctx_size = 16;
    fields =
      [ { fname = "data_len"; foff = 0; fsize = 4; writable = false };
        { fname = "ingress_ifindex"; foff = 4; fsize = 4; writable = false };
        { fname = "rx_queue_index"; foff = 8; fsize = 4; writable = false } ] }

let kprobe_ctx =
  (* pt_regs-like: 8 readable u64 slots *)
  { ctx_size = 64;
    fields =
      List.init 8 (fun i ->
          { fname = Printf.sprintf "reg%d" i; foff = i * 8; fsize = 8; writable = false }) }

let tracepoint_ctx =
  { ctx_size = 48;
    fields =
      List.init 6 (fun i ->
          { fname = Printf.sprintf "arg%d" i; foff = i * 8; fsize = 8; writable = false }) }

let ctx_of_prog_type = function
  | Socket_filter -> skb_ctx
  | Xdp -> xdp_ctx
  | Kprobe -> kprobe_ctx
  | Tracepoint -> tracepoint_ctx

let find_ctx_field desc ~off ~size =
  List.find_opt (fun f -> f.foff = off && f.fsize = size) desc.fields

type t = {
  name : string;
  prog_type : prog_type;
  insns : Insn.insn array;
  (* unresolved helper-name relocations (insn pc -> helper name); the
     loader's fixup step patches them to helper ids *)
  relocs : (int * string) list;
}

let make ?(relocs = []) ~name ~prog_type insns = { name; prog_type; insns; relocs }

let of_items ~name ~prog_type items =
  Result.map
    (fun (insns, relocs) -> make ~relocs ~name ~prog_type insns)
    (Asm.assemble_with_relocs items)

let of_items_exn ~name ~prog_type items =
  match of_items ~name ~prog_type items with
  | Ok p -> p
  | Error msg -> invalid_arg ("Program.of_items: " ^ msg)

let length t = Array.length t.insns

(* Canonical content digest of a program: SHA-256 over the kernel wire
   encoding of the instructions, the program type, and any still-unresolved
   helper-name relocations (fixup changes what the program does, so a fixed
   and an unfixed image must not collide).  The program [name] is metadata,
   not content — two identically-encoded programs share an address, which is
   exactly what the load-path verdict cache wants. *)
let digest t =
  let b = Buffer.create 256 in
  Buffer.add_string b (prog_type_to_string t.prog_type);
  Buffer.add_char b '\n';
  Buffer.add_bytes b (Encode.to_bytes t.insns);
  List.iter
    (fun (pc, name) -> Buffer.add_string b (Printf.sprintf "\nreloc %d %s" pc name))
    (List.sort compare t.relocs);
  Hash.Sha256.hex_digest (Buffer.contents b)

(* Map fds referenced by the program (for load-time resolution). *)
let referenced_maps t =
  Array.to_list t.insns
  |> List.filter_map (function Insn.Ld_map_fd (_, fd) -> Some fd | _ -> None)
  |> List.sort_uniq compare
