(* Corpus persistence: a shrunk counterexample is written as a small text
   file — a header line, the program type, the name, and the hex-encoded
   kernel wire format ({!Ebpf.Encode}) — so a divergence found once can be
   replayed forever (`fuzz --replay FILE`), diffed in review, and uploaded
   as a CI artifact.  Generated programs carry no relocations (helper ids
   are emitted resolved), so the wire bytes are the whole program. *)

let magic = "untenable-fuzz-corpus v1"

let hex_of_bytes b =
  let buf = Buffer.create (2 * Bytes.length b) in
  Bytes.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) b;
  Buffer.contents buf

let bytes_of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then Error "odd-length hex payload"
  else
    let digit c =
      match c with
      | '0' .. '9' -> Ok (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Ok (Char.code c - Char.code 'a' + 10)
      | 'A' .. 'F' -> Ok (Char.code c - Char.code 'A' + 10)
      | c -> Error (Printf.sprintf "invalid hex digit %C" c)
    in
    let out = Bytes.create (n / 2) in
    let rec go i =
      if i >= n / 2 then Ok out
      else
        match (digit s.[2 * i], digit s.[(2 * i) + 1]) with
        | Ok hi, Ok lo ->
          Bytes.set out i (Char.chr ((hi lsl 4) lor lo));
          go (i + 1)
        | Error e, _ | _, Error e -> Error e
    in
    go 0

let prog_type_of_string = function
  | "socket_filter" -> Some Ebpf.Program.Socket_filter
  | "xdp" -> Some Ebpf.Program.Xdp
  | "kprobe" -> Some Ebpf.Program.Kprobe
  | "tracepoint" -> Some Ebpf.Program.Tracepoint
  | _ -> None

let to_string (p : Ebpf.Program.t) =
  String.concat "\n"
    [ magic;
      Ebpf.Program.prog_type_to_string p.Ebpf.Program.prog_type;
      p.Ebpf.Program.name;
      hex_of_bytes (Ebpf.Encode.to_bytes p.Ebpf.Program.insns); "" ]

let of_string text : (Ebpf.Program.t, string) result =
  match String.split_on_char '\n' text with
  | m :: ty :: name :: hex :: _rest when String.equal m magic -> (
    match prog_type_of_string ty with
    | None -> Error (Printf.sprintf "unknown program type %S" ty)
    | Some prog_type -> (
      match bytes_of_hex (String.trim hex) with
      | Error e -> Error ("corrupt payload: " ^ e)
      | Ok wire -> (
        match Ebpf.Encode.of_bytes wire with
        | Error e -> Error ("undecodable program: " ^ e)
        | Ok insns -> Ok (Ebpf.Program.make ~name ~prog_type insns))))
  | m :: _ when not (String.equal m magic) ->
    Error (Printf.sprintf "bad header (expected %S)" magic)
  | _ -> Error "truncated corpus file"

let load path : (Ebpf.Program.t, string) result =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | text -> of_string text

(* Save under a digest-derived name so re-finding the same counterexample
   is idempotent.  Returns the path written. *)
let save ~dir (p : Ebpf.Program.t) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path =
    Filename.concat dir
      (Printf.sprintf "%s.fuzz" (String.sub (Ebpf.Program.digest p) 0 16))
  in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string p));
  path
