(* Campaign driver: generate [budget] programs from a pinned seed, run
   each through the oracle matrix, shrink every divergence, and persist
   the minimized counterexamples to the corpus directory.  The whole
   pipeline is deterministic in (seed, budget, matrix, dist, plant) —
   which is what lets `make fuzz-smoke` and CI pin a seed and assert
   zero divergences, and lets the planted-bug acceptance test assert
   that a forced {!Oracle.jit_branch_bug_key} is caught and shrunk.

   Telemetry: [fuzz.programs_generated], [fuzz.divergences] (and
   [fuzz.shrink_steps], owned by {!Shrink}). *)

let tele_programs = Telemetry.Registry.counter "fuzz.programs_generated"
let tele_divergences = Telemetry.Registry.counter "fuzz.divergences"

type finding = {
  index : int;                    (* which generated program diverged *)
  dist : Gen.dist;
  divergence : Oracle.divergence; (* as first observed, pre-shrink *)
  shrunk : Shrink.result;
  corpus_path : string option;    (* where the minimized program went *)
}

type report = {
  seed : int64;
  budget : int;
  matrix : Oracle.matrix;
  programs : int;
  findings : finding list;
  shrink_steps : int;
}

let pp_finding ppf f =
  Format.fprintf ppf "program #%d (%s): %a; shrunk to %d insns in %d steps%a"
    f.index
    (Gen.dist_to_string f.dist)
    Oracle.pp_divergence f.divergence f.shrunk.Shrink.insns
    f.shrunk.Shrink.steps
    (fun ppf -> function
      | None -> ()
      | Some p -> Format.fprintf ppf " -> %s" p)
    f.corpus_path

(* Default distribution mix: mostly verifier-clean, with adversarial and
   hang-shaped programs salted in.  [?dist] pins a single distribution. *)
let roll_dist rng = function
  | Some d -> d
  | None ->
    Rng.weighted rng
      [ (6, Gen.Clean); (3, Gen.Adversarial); (1, Gen.Hang) ]

let run ?(seed = 1L) ?(budget = 500) ?(matrix = "quick") ?dist ?(plant = [])
    ?corpus_dir ?(max_findings = 3) ?(max_shrink_steps = 400) () =
  let m =
    match Oracle.matrix_of_string matrix with
    | Some m -> m
    | None ->
      invalid_arg
        (Printf.sprintf "unknown fuzz matrix %S (expected one of: %s)" matrix
           (String.concat ", " Oracle.matrix_names))
  in
  let rng = Rng.create seed in
  let findings = ref [] in
  let programs = ref 0 in
  let shrink_steps = ref 0 in
  (for i = 1 to budget do
     if List.length !findings < max_findings then begin
       let d = roll_dist rng dist in
       let shape = Gen.generate ~dist:d (Rng.split rng) in
       let prog =
         Gen.program_of_shape_exn ~name:(Printf.sprintf "fuzz_%Ld_%d" seed i)
           shape
       in
       incr programs;
       Telemetry.Registry.bump tele_programs;
       match Oracle.check ~plant m prog with
       | None -> ()
       | Some divergence ->
         Telemetry.Registry.bump tele_divergences;
         let diverges p = Oracle.check ~plant m p <> None in
         let shrunk = Shrink.run ~max_steps:max_shrink_steps ~diverges shape in
         shrink_steps := !shrink_steps + shrunk.Shrink.steps;
         let corpus_path =
           Option.map (fun dir -> Corpus.save ~dir shrunk.Shrink.program)
             corpus_dir
         in
         findings :=
           { index = i; dist = d; divergence; shrunk; corpus_path }
           :: !findings
     end
   done);
  { seed; budget; matrix = m; programs = !programs;
    findings = List.rev !findings; shrink_steps = !shrink_steps }

(* Replay a persisted counterexample: load it from the corpus and run the
   oracle matrix once.  [Error] covers unreadable/corrupt files — the CLI
   turns that into exit-code-1 discipline. *)
let replay ?(matrix = "quick") ?(plant = []) path :
    (Oracle.divergence option, string) result =
  match Oracle.matrix_of_string matrix with
  | None ->
    Error
      (Printf.sprintf "unknown fuzz matrix %S (expected one of: %s)" matrix
         (String.concat ", " Oracle.matrix_names))
  | Some m -> (
    match Corpus.load path with
    | Error e -> Error e
    | Ok prog -> Ok (Oracle.check ~plant m prog))
