(* Divergence minimization.  A generated program arrives as a prologue,
   a list of self-contained chunks, and an epilogue ({!Gen.shape}); the
   shrinker first drops whole segments (any chunk, then the prologue),
   then individual items, greedily re-testing the divergence predicate
   after each candidate.  Labels are never removed (a jump's target must
   keep resolving) and neither is the final [exit]; chunks keep their
   labels and jumps together, so every candidate still assembles.

   Each candidate evaluation is one shrink step — counted in the
   [fuzz.shrink_steps] telemetry counter and capped by [max_steps],
   since every step replays the whole oracle matrix. *)

open Ebpf.Asm

let tele_steps = Telemetry.Registry.counter "fuzz.shrink_steps"

type result = {
  program : Ebpf.Program.t;  (* smallest still-diverging program *)
  insns : int;               (* its instruction count (labels excluded) *)
  steps : int;               (* candidate evaluations spent *)
}

let insn_count items =
  List.fold_left
    (fun acc it -> match it with Label _ -> acc | _ -> acc + 1)
    0 items

let removable = function Label _ -> false | _ -> true

(* [diverges] replays the oracle on a candidate program; candidates that
   fail to assemble are simply skipped. *)
let run ?(max_steps = 400) ~diverges (shape : Gen.shape) =
  let steps = ref 0 in
  let best = ref None in
  let attempt items =
    if !steps >= max_steps then false
    else begin
      incr steps;
      Telemetry.Registry.bump tele_steps;
      match
        Ebpf.Program.of_items ~name:"fuzz_shrunk"
          ~prog_type:Ebpf.Program.Socket_filter items
      with
      | Error _ -> false
      | Ok p ->
        if diverges p then begin
          best := Some (p, items);
          true
        end
        else false
    end
  in
  (* Pass 1: drop whole segments.  The epilogue is pinned; everything
     else (prologue included) is fair game. *)
  let epilogue = shape.Gen.epilogue in
  let rec drop_segments segs =
    let n = List.length segs in
    let rec try_at i =
      if i >= n then segs
      else
        let cand = List.filteri (fun j _ -> j <> i) segs in
        if attempt (List.concat cand @ epilogue) then drop_segments cand
        else try_at (i + 1)
    in
    try_at 0
  in
  let segs =
    drop_segments
      (shape.Gen.prologue :: List.map (fun c -> c.Gen.items) shape.Gen.chunks)
  in
  (* Pass 2: drop single items.  The last item (the epilogue's [exit])
     stays; labels stay. *)
  let rec drop_items items =
    let n = List.length items in
    let rec try_at i =
      if i >= n - 1 then items
      else if not (removable (List.nth items i)) then try_at (i + 1)
      else
        let cand = List.filteri (fun j _ -> j <> i) items in
        if attempt cand then drop_items cand else try_at (i + 1)
    in
    try_at 0
  in
  let (_ : item list) = drop_items (List.concat segs @ epilogue) in
  let program, items =
    match !best with
    | Some (p, items) -> (p, items)
    | None ->
      (* No candidate ever succeeded: the original is the minimum. *)
      ( Ebpf.Program.of_items_exn ~name:"fuzz_shrunk"
          ~prog_type:Ebpf.Program.Socket_filter
          (Gen.items_of_shape shape),
        Gen.items_of_shape shape )
  in
  { program; insns = insn_count items; steps = !steps }
