(* The seeded eBPF program generator: a weighted instruction grammar that
   always emits CFG-valid programs (every jump targets a label the same
   chunk defines, every path reaches an [exit]), shaped by one of three
   distributions:

   - [Clean]: programs the verifier accepts — bounded loops, null-checked
     map access, paired ringbuf reserve/submit, ctx field loads;
   - [Adversarial]: programs the verifier would reject or that fault at
     runtime — resource leaks, unchecked map-value derefs, out-of-stack
     stores, the §2.2 probe-read vehicle;
   - [Hang]: programs shaped like the paper's termination exploits —
     statically unbounded or fuel-exhausting loops.

   The unit of generation is the {!chunk}: a self-contained item list
   (private labels, no cross-chunk control flow) so the shrinker can drop
   any chunk and still assemble a valid program.  All scratch state lives
   in r0/r6/r7/r8; r9 carries the ctx pointer from the prologue; stack
   slots are aligned offsets in [-64, -8]. *)

open Ebpf.Asm

type dist = Clean | Adversarial | Hang

let dist_to_string = function
  | Clean -> "clean"
  | Adversarial -> "adversarial"
  | Hang -> "hang"

let dist_of_string = function
  | "clean" -> Some Clean
  | "adversarial" -> Some Adversarial
  | "hang" -> Some Hang
  | _ -> None

(* The fixed map/tail-call topology every generated program compiles
   against; {!Oracle.setup_world} recreates it identically in every
   execution leg. *)
type env = {
  arr_fd : int;       (* Array map: key u32, value u64, 16 entries *)
  hash_fd : int;      (* Hash map: key u32, value u64, 8 entries *)
  rb_fd : int;        (* Ringbuf: 256 bytes *)
  tail_index : int;   (* tail-call table slot holding the leaf program *)
}

type chunk = { kind : string; items : item list }

type shape = {
  dist : dist;
  prologue : item list;
  chunks : chunk list;
  epilogue : item list;
  uses_maps : bool;
      (* whether any chunk reads or writes map/ringbuf state: such
         programs are per-event stateful, so the oracle must not compare
         them across different shard partitions *)
}

let h = Helpers.Registry.id_of_name

(* ---- chunk builders; [k] uniquifies labels ---- *)

let lbl k s = Printf.sprintf "c%d_%s" k s

let alu_body rng =
  List.init (Rng.range rng 1 4) (fun _ ->
      let reg = Rng.pick rng [ r6; r8 ] in
      match Rng.int rng 10 with
      | 0 -> add_i reg (Rng.int rng 1024)
      | 1 -> sub_i reg (Rng.int rng 1024)
      | 2 -> xor_i reg (Rng.int rng 0xffff)
      | 3 -> and_i reg (Rng.int rng 0xffff lor 0xff)
      | 4 -> or_i reg (Rng.int rng 255)
      | 5 -> mul_i reg (1 + Rng.int rng 7)
      | 6 -> div_i reg (1 + Rng.int rng 7)
      | 7 -> mod_i reg (1 + Rng.int rng 7)
      | 8 -> lsh_i reg (Rng.int rng 16)
      | _ -> add_r r6 r8)

let chunk_alu rng _env _k = { kind = "alu"; items = alu_body rng }

(* if (r6 <cond> imm) { then } else { else } — both arms rejoin. *)
let chunk_diamond rng _env k =
  let cond = Rng.int rng 100 in
  let jump =
    match Rng.int rng 3 with
    | 0 -> jgt_i r6 cond (lbl k "t")
    | 1 -> jeq_i r6 cond (lbl k "t")
    | _ -> jlt_i r6 cond (lbl k "t")
  in
  { kind = "diamond";
    items =
      (jump :: alu_body rng)
      @ [ ja (lbl k "e"); label (lbl k "t") ]
      @ alu_body rng
      @ [ label (lbl k "e") ] }

(* A counted loop on r7: always statically boundable. *)
let chunk_loop rng _env k =
  let trips = Rng.range rng 1 12 in
  { kind = "loop";
    items =
      [ mov_i r7 trips; label (lbl k "l") ]
      @ alu_body rng
      @ [ sub_i r7 1; jne_i r7 0 (lbl k "l") ] }

(* Read the ctx (skb len at 0, protocol at 4) through r9. *)
let chunk_ctx rng _env _k =
  let off = if Rng.bool rng then 0 else 4 in
  { kind = "ctx"; items = [ ldxw r8 r9 off; add_r r6 r8 ] }

let stack_slot rng = -8 * Rng.range rng 1 8

let chunk_stack rng _env _k =
  let off = stack_slot rng in
  { kind = "stack";
    items = [ stxdw r10 off r6; ldxdw r8 r10 off; xor_r r6 r8 ] }

(* Null-checked array/hash lookup: key at fp-8, deref only when non-null. *)
let chunk_map_lookup rng env k =
  let fd = if Rng.bool rng then env.arr_fd else env.hash_fd in
  let key = Rng.int rng 16 in
  { kind = "map_lookup";
    items =
      [ stw r10 (-8) key; map_fd r1 fd; mov_r r2 r10; add_i r2 (-8);
        call (h "bpf_map_lookup_elem"); jeq_i r0 0 (lbl k "miss");
        ldxdw r8 r0 0; add_r r6 r8; label (lbl k "miss"); mov_i r0 0 ] }

(* Update: key at fp-8, value (current r6) at fp-16. *)
let chunk_map_update rng env _k =
  let fd = if Rng.bool rng then env.arr_fd else env.hash_fd in
  let key = Rng.int rng (if fd = env.arr_fd then 16 else 8) in
  { kind = "map_update";
    items =
      [ stw r10 (-8) key; stxdw r10 (-16) r6; map_fd r1 fd; mov_r r2 r10;
        add_i r2 (-8); mov_r r3 r10; add_i r3 (-16); mov_i r4 0;
        call (h "bpf_map_update_elem") ] }

(* Paired ringbuf reserve/submit of one u64 record. *)
let chunk_ringbuf _rng env k =
  { kind = "ringbuf";
    items =
      [ map_fd r1 env.rb_fd; mov_i r2 8; mov_i r3 0;
        call (h "bpf_ringbuf_reserve"); jeq_i r0 0 (lbl k "full");
        stxdw r0 0 r6; mov_r r1 r0; mov_i r2 0;
        call (h "bpf_ringbuf_submit"); label (lbl k "full"); mov_i r0 0 ] }

(* The hctx-seeded PRNG: [Hctx.reset] reseeds it per invocation, so the
   stream is identical in every execution mode.  (bpf_ktime_get_ns is
   deliberately not generated: the virtual clock is charged differently
   under fuel-check batching and the JIT, so its reads are legitimately
   mode-dependent and would drown the oracle in false divergences.) *)
let chunk_helper_misc rng _env _k =
  let mask = [ 0xff; 0xfff; 0x7 ] |> Rng.pick rng in
  { kind = "helper_misc";
    items = [ call (h "bpf_get_prandom_u32"); and_i r0 mask; add_r r6 r0 ] }

(* Tail call into the leaf program the oracle loads at [env.tail_index];
   on success the rest of the program never runs. *)
let chunk_tail_call _rng env _k =
  { kind = "tail_call";
    items =
      [ mov_r r1 r9; mov_i r2 0; mov_i r3 env.tail_index;
        call (h "bpf_tail_call") ] }

(* ---- adversarial chunks ---- *)

(* Acquire without release: the classic §2.2 leak.  The acquired sk is a
   kernel address — allocation-order dependent, so different in a shard's
   cloned world — and must not escape into the data flow; only the
   found/not-found bit and the outstanding-resource count (which the
   oracle checks directly) are observable. *)
let chunk_leak _rng _env k =
  { kind = "leak";
    items =
      [ mov_i r1 8080; call (h "bpf_sk_lookup_tcp");
        jeq_i r0 0 (lbl k "n"); mov_i r0 1; label (lbl k "n"); add_r r6 r0 ] }

(* Deref a lookup miss without the null check: arr keys >= 16 miss. *)
let chunk_null_deref rng env _k =
  let key = 16 + Rng.int rng 8 in
  { kind = "null_deref";
    items =
      [ stw r10 (-8) key; map_fd r1 env.arr_fd; mov_r r2 r10; add_i r2 (-8);
        call (h "bpf_map_lookup_elem"); ldxdw r8 r0 0 ] }

(* Store above the frame pointer: out of the stack region. *)
let chunk_oob_stack rng _env _k =
  { kind = "oob_stack"; items = [ stdw r10 (8 * Rng.range rng 1 4) 42 ] }

(* The §2.2 probe-read vehicle: clean unless the Bugdb entry is armed. *)
let chunk_probe_read _rng _env _k =
  { kind = "probe_read";
    items =
      [ call (h "bpf_get_current_task"); mov_r r3 r0; mov_r r1 r10;
        add_i r1 (-16); mov_i r2 16; call (h "bpf_probe_read_kernel") ] }

(* ---- hang chunks ---- *)

(* A counted loop far past any sane fuel budget. *)
let chunk_big_loop rng _env k =
  let trips = 50_000 + Rng.int rng 100_000 in
  { kind = "big_loop";
    items =
      [ mov_i r7 trips; label (lbl k "b"); add_i r6 1; sub_i r7 1;
        jne_i r7 0 (lbl k "b") ] }

(* Statically unbounded: loop until the PRNG rolls 0 mod 4. *)
let chunk_data_loop _rng _env k =
  { kind = "data_loop";
    items =
      [ label (lbl k "d"); call (h "bpf_get_prandom_u32"); and_i r0 3;
        jne_i r0 0 (lbl k "d") ] }

(* The honest infinite loop; only a runtime guard ends it. *)
let chunk_spin _rng _env k =
  { kind = "spin"; items = [ label (lbl k "s"); add_i r6 1; ja (lbl k "s") ] }

(* ---- distribution tables ---- *)

let stateful_kinds = [ "map_lookup"; "map_update"; "ringbuf" ]

let table = function
  | Clean ->
    [ (5, chunk_alu); (3, chunk_diamond); (3, chunk_loop); (2, chunk_ctx);
      (2, chunk_stack); (2, chunk_map_lookup); (2, chunk_map_update);
      (1, chunk_ringbuf); (1, chunk_helper_misc); (1, chunk_tail_call) ]
  | Adversarial ->
    [ (3, chunk_alu); (2, chunk_diamond); (2, chunk_loop); (1, chunk_ctx);
      (1, chunk_stack); (2, chunk_map_lookup); (1, chunk_map_update);
      (2, chunk_leak); (2, chunk_null_deref); (1, chunk_oob_stack);
      (2, chunk_probe_read) ]
  | Hang ->
    [ (3, chunk_alu); (2, chunk_loop); (1, chunk_ctx); (2, chunk_big_loop);
      (2, chunk_data_loop); (1, chunk_spin) ]

let default_env = { arr_fd = 1; hash_fd = 2; rb_fd = 3; tail_index = 0 }

(* ---- generation ---- *)

let prologue =
  (* r9 = ctx; deterministic non-trivial seeds in the scratch registers *)
  [ mov_r r9 r1; mov_i r0 0; mov_i r6 17; mov_i r7 0; mov_i r8 5 ]

let epilogue = [ mov_r r0 r6; and_i r0 0xff; exit_ ]

let generate ?(env = default_env) ~dist rng =
  let n = Rng.range rng 2 8 in
  let chunks =
    List.init n (fun k -> (Rng.weighted rng (table dist)) rng env k)
  in
  let uses_maps =
    List.exists (fun c -> List.mem c.kind stateful_kinds) chunks
  in
  { dist; prologue; chunks; epilogue; uses_maps }

let items_of_shape s =
  s.prologue @ List.concat_map (fun c -> c.items) s.chunks @ s.epilogue

let insn_count s =
  List.fold_left
    (fun acc it -> match it with Label _ -> acc | _ -> acc + 1)
    0 (items_of_shape s)

let program_of_shape ?(name = "fuzz") s =
  Ebpf.Program.of_items ~name ~prog_type:Ebpf.Program.Socket_filter
    (items_of_shape s)

let program_of_shape_exn ?name s =
  match program_of_shape ?name s with
  | Ok p -> p
  | Error msg -> failwith ("fuzz generator emitted invalid program: " ^ msg)
