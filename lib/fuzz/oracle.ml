(* The differential oracle: run one generated program through a matrix of
   execution modes and cross-check everything observable — outcome
   variant (with the returned value / exhausted resource), retired
   instruction count, outstanding resources, the trace stream, map and
   ringbuf final-state digests, and (for serving legs) the stream
   checksums.

   Legs come in two comparison groups:

   - {e invoke} legs: one invocation per leg on a fresh world —
     interpreter vs JIT, guard elision on/off, fuel-check batching
     on/off.  All invoke legs must observe identically.
   - {e serve} groups: a short event stream per leg — sequential vs
     forced-sharded (1..N domains), calm and under a chaos schedule.
     Legs within a group must observe identically; map-using programs
     are per-event stateful, so multi-domain legs (whose shard-local map
     partitioning legitimately changes what each event reads) only apply
     to stateless programs, exactly the scope {!Serve}'s determinism
     contract is stated for.

   Every leg rebuilds the same world: the {!Gen.env} map topology with
   the same fds, a verified leaf program in tail-call slot 0, and the
   standard population.  The planted-bug hook is {!Helpers.Bugdb}:
   [check ~plant] forces the given keys on in each leg's world, and a JIT
   leg consults {!jit_branch_bug_key} — force it on and every JIT leg
   compiles with the historical branch-offset bug (CVE-2021-29154's
   shape), which is exactly what the oracle must catch. *)

module World = Framework.World
module Serve = Framework.Serve
module Attach = Framework.Attach
module Pipeline = Framework.Pipeline
module Invoke = Framework.Invoke
module Chaos = Framework.Chaos
module Driver = Analysis.Driver
module Bugdb = Helpers.Bugdb
module Bpf_map = Maps.Bpf_map
module Kmem = Kernel_sim.Kmem
module Kernel = Kernel_sim.Kernel

(* A Bugdb key with no version window: only [Bugdb.force_on] activates it.
   JIT legs translate it into [Invoke.run_opts.jit_branch_bug]. *)
let jit_branch_bug_key = "jbug:jit-branch-backward-off-by-one"

let fuel_budget = 4096L

(* ---- legs and matrices ---- *)

type leg = { label : string; jit : bool; elision : bool; batching : bool }

type serve_leg = {
  slabel : string;
  sharded : bool;  (* force the sharded machinery even for 1 domain *)
  sdomains : int;
  schaos : bool;
  sjit : bool;
  stateless_only : bool;
}

type matrix = {
  mname : string;
  invoke_legs : leg list;
  serve_groups : serve_leg list list;
  events : int;  (* stream length for serve legs *)
}

let ileg label ~jit ~elision ~batching = { label; jit; elision; batching }

let sleg slabel ?(sharded = false) ?(sdomains = 1) ?(schaos = false)
    ?(sjit = false) ?(stateless_only = false) () =
  { slabel; sharded; sdomains; schaos; sjit; stateless_only }

let base_leg = ileg "interp" ~jit:false ~elision:true ~batching:true

let mode_legs =
  (* the full interp × jit × elision × batching cube *)
  List.concat_map
    (fun jit ->
      List.concat_map
        (fun elision ->
          List.map
            (fun batching ->
              ileg
                (Printf.sprintf "%s%s%s"
                   (if jit then "jit" else "interp")
                   (if elision then "+elide" else "-elide")
                   (if batching then "+batch" else "-batch"))
                ~jit ~elision ~batching)
            [ true; false ])
        [ true; false ])
    [ false; true ]

let quick_legs =
  [ base_leg;
    ileg "jit" ~jit:true ~elision:true ~batching:true;
    ileg "interp-elide" ~jit:false ~elision:false ~batching:true;
    ileg "interp-batch" ~jit:false ~elision:true ~batching:false ]

let calm_group ~wide =
  [ sleg "seq" (); sleg "seq+jit" ~sjit:true (); sleg "shard1" ~sharded:true () ]
  @
  if wide then
    [ sleg "shard2" ~sharded:true ~sdomains:2 ~stateless_only:true ();
      sleg "shard3" ~sharded:true ~sdomains:3 ~stateless_only:true () ]
  else []

let chaos_group =
  [ sleg "seq+chaos" ~schaos:true ();
    sleg "shard1+chaos" ~sharded:true ~schaos:true () ]

let matrices =
  [ { mname = "quick"; invoke_legs = quick_legs;
      serve_groups = [ [ sleg "seq" (); sleg "shard1" ~sharded:true () ] ];
      events = 12 };
    { mname = "modes"; invoke_legs = mode_legs; serve_groups = []; events = 0 };
    { mname = "serve"; invoke_legs = [ base_leg ];
      serve_groups = [ calm_group ~wide:true; chaos_group ]; events = 24 };
    { mname = "full"; invoke_legs = mode_legs;
      serve_groups = [ calm_group ~wide:true; chaos_group ]; events = 24 } ]

let matrix_of_string name =
  List.find_opt (fun m -> String.equal m.mname name) matrices

let matrix_names = List.map (fun m -> m.mname) matrices

(* ---- world setup: identical in every leg ---- *)

let map_defs =
  [ { Bpf_map.name = "fuzz_arr"; kind = Bpf_map.Array; key_size = 4;
      value_size = 8; max_entries = 16; lock_off = None };
    { Bpf_map.name = "fuzz_hash"; kind = Bpf_map.Hash; key_size = 4;
      value_size = 8; max_entries = 8; lock_off = None };
    { Bpf_map.name = "fuzz_rb"; kind = Bpf_map.Ringbuf; key_size = 0;
      value_size = 0; max_entries = 256; lock_off = None } ]

let leaf_items = Ebpf.Asm.[ mov_i r0 7; exit_ ]

let setup_world ?(plant = []) () =
  let world = World.create_populated () in
  let fds =
    List.map (fun def -> (World.register_map world def).Bpf_map.id) map_defs
  in
  let env =
    match fds with
    | [ arr_fd; hash_fd; rb_fd ] ->
      { Gen.arr_fd; hash_fd; rb_fd; tail_index = 0 }
    | _ -> assert false
  in
  let leaf =
    Ebpf.Program.of_items_exn ~name:"fuzz_leaf"
      ~prog_type:Ebpf.Program.Socket_filter leaf_items
  in
  (match Pipeline.load_ebpf world leaf with
  | Ok (Pipeline.Ebpf_prog { prog_id; _ }) ->
    World.set_tail_call world ~index:env.Gen.tail_index ~prog_id
  | Ok _ -> assert false
  | Error e ->
    failwith (Format.asprintf "fuzz leaf failed to load: %a" Pipeline.pp_error e));
  List.iter (Bugdb.force_on world.World.bugs) plant;
  (world, env)

(* Hand the program straight to the runtime, path-B style: the oracle
   compares execution modes against each other, not against what the
   verify gate accepts — adversarial and hang-shaped programs must run. *)
let fabricate (p : Ebpf.Program.t) =
  Pipeline.Ebpf_prog
    { prog_id = 999; prog = p;
      vstats =
        { Bpf_verifier.Verifier.insns_processed = 0; states_explored = 0;
          prune_hits = 0; callbacks_verified = 0; log = "" };
      analysis = Some (Driver.analyze p.Ebpf.Program.insns) }

(* ---- observations ---- *)

let short_digest s = String.sub (Hash.Sha256.hex_digest s) 0 12

(* Map / ringbuf final state, folded to a digest.  Hash-map iteration
   order is canonicalized by sorting on key bytes; the ringbuf digest
   covers pending record payloads (drained) and the outstanding
   reservation count (leak visibility). *)
let digest_maps world (env : Gen.env) =
  let mem = world.World.kernel.Kernel.mem in
  let buf = Buffer.create 256 in
  let value m region slot =
    Kmem.load_bytes mem
      ~addr:(Kmem.region_addr region (slot * m.Bpf_map.def.Bpf_map.value_size))
      ~len:m.Bpf_map.def.Bpf_map.value_size ~context:"fuzz_digest"
  in
  let add_map fd =
    match Bpf_map.Registry.find world.World.maps fd with
    | None -> Buffer.add_string buf "missing;"
    | Some m -> (
      match m.Bpf_map.storage with
      | Bpf_map.Array_storage region ->
        for i = 0 to m.Bpf_map.def.Bpf_map.max_entries - 1 do
          Buffer.add_bytes buf (value m region i)
        done
      | Bpf_map.Hash_storage (region, st) ->
        Hashtbl.fold (fun k slot acc -> (k, slot) :: acc) st.Bpf_map.slots []
        |> List.sort compare
        |> List.iter (fun (k, slot) ->
               Buffer.add_string buf k;
               Buffer.add_bytes buf (value m region slot))
      | Bpf_map.Ringbuf_storage rb ->
        Buffer.add_string buf
          (Printf.sprintf "pending=%d outstanding=%d;"
             (Maps.Ringbuf.pending_records rb)
             (List.length (Maps.Ringbuf.outstanding_reservations rb)));
        List.iter (Buffer.add_bytes buf) (Maps.Ringbuf.consume rb)
      | _ -> Buffer.add_string buf "other;")
  in
  (try List.iter add_map [ env.Gen.arr_fd; env.Gen.hash_fd; env.Gen.rb_fd ]
   with e -> Buffer.add_string buf ("unreadable:" ^ Printexc.to_string e));
  short_digest (Buffer.contents buf)

let outcome_tag = function
  | Invoke.Finished v -> Printf.sprintf "finished:%Ld" v
  | Invoke.Stopped _ -> "stopped"
  | Invoke.Crashed _ -> "crashed"
  | Invoke.Exhausted (res, _) -> "exhausted:" ^ Invoke.resource_to_string res

(* One deterministic 48-byte packet for single-invocation legs. *)
let payload =
  Bytes.init 48 (fun i -> Char.chr ((i * 7) land 0xff))

let run_invoke_leg ~plant loaded (leg : leg) =
  let world, env = setup_world ~plant () in
  let opts =
    { Invoke.default_opts with
      Invoke.fuel = Some fuel_budget;
      skb_payload = Some payload;
      use_jit = leg.jit;
      jit_branch_bug = leg.jit && Bugdb.active world.World.bugs jit_branch_bug_key;
      use_elision = leg.elision;
      use_bound_batching = leg.batching }
  in
  let r = Invoke.run ~opts world loaded in
  Printf.sprintf "%s retired=%Ld outstanding=%d trace=%s maps=%s"
    (outcome_tag r.Invoke.outcome)
    r.Invoke.insns_retired r.Invoke.resources_outstanding
    (short_digest (String.concat "\n" r.Invoke.trace))
    (digest_maps world env)

let chaos_config = { Chaos.default_config with Chaos.fault_rate = 0.1 }

let run_serve_leg ~plant ~events loaded (sleg : serve_leg) =
  let world, _env = setup_world ~plant () in
  let opts =
    { Invoke.default_opts with
      Invoke.fuel = Some fuel_budget;
      use_jit = sleg.sjit;
      jit_branch_bug =
        sleg.sjit && Bugdb.active world.World.bugs jit_branch_bug_key }
  in
  let engine = Serve.create ~opts world in
  ignore (Attach.attach engine.Serve.attach ~hook:"xdp" loaded);
  let plan =
    Serve.plan
      ?chaos:(if sleg.schaos then Some chaos_config else None)
      ~domains:sleg.sdomains ~record_checksums:true ~size:48 ~hook:"xdp"
      ~count:events ()
  in
  let s = (if sleg.sharded then Serve.sharded else Serve.run) engine plan in
  let t = s.Serve.totals in
  Printf.sprintf
    "events=%d inv=%d fin=%d stop=%d crash=%d exh=%d checksum=%Ld ev=%s"
    t.Serve.events t.Serve.invocations t.Serve.finished t.Serve.stopped
    t.Serve.crashed t.Serve.exhausted t.Serve.ret_checksum
    (short_digest
       (String.concat ","
          (Array.to_list (Array.map Int64.to_string s.Serve.event_checksums))))

(* ---- the cross-check ---- *)

type divergence = {
  group : string;      (* "invoke" or "serve[N]" *)
  ref_leg : string;
  ref_obs : string;
  div_leg : string;
  div_obs : string;
}

let pp_divergence ppf d =
  Format.fprintf ppf "group %s: %s observed {%s} but %s observed {%s}" d.group
    d.ref_leg d.ref_obs d.div_leg d.div_obs

(* Run every leg of [matrix] on [prog]; [Some divergence] reports the
   first leg that disagrees with its group's reference leg. *)
let check ?(plant = []) matrix (prog : Ebpf.Program.t) : divergence option =
  let loaded = fabricate prog in
  let stateless = Ebpf.Program.referenced_maps prog = [] in
  let find_div ~group name_of run legs =
    match legs with
    | [] | [ _ ] -> None
    | ref_leg :: rest ->
      let ref_obs = run ref_leg in
      let rec go = function
        | [] -> None
        | leg :: rest ->
          let obs = run leg in
          if String.equal obs ref_obs then go rest
          else
            Some
              { group; ref_leg = name_of ref_leg; ref_obs;
                div_leg = name_of leg; div_obs = obs }
      in
      go rest
  in
  let invoke_div =
    find_div ~group:"invoke"
      (fun (l : leg) -> l.label)
      (run_invoke_leg ~plant loaded)
      matrix.invoke_legs
  in
  match invoke_div with
  | Some _ as d -> d
  | None ->
    let rec serve_groups i = function
      | [] -> None
      | legs :: rest -> (
        let legs =
          List.filter (fun s -> stateless || not s.stateless_only) legs
        in
        match
          find_div
            ~group:(Printf.sprintf "serve[%d]" i)
            (fun (s : serve_leg) -> s.slabel)
            (run_serve_leg ~plant ~events:matrix.events loaded)
            legs
        with
        | Some _ as d -> d
        | None -> serve_groups (i + 1) rest)
    in
    serve_groups 0 matrix.serve_groups
