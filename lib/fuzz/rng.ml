(* Seeded, deterministic PRNG for the fuzz generator: splitmix64, the
   standard seeding/stream generator (Steele et al., "Fast splittable
   pseudorandom number generators").  Self-contained so fuzz runs never
   depend on [Random]'s global state — the same seed produces the same
   program stream on every host, which is what makes a pinned-seed
   fuzz-smoke gate and corpus replay meaningful. *)

type t = { mutable state : int64 }

let create seed = { state = seed }

let golden = 0x9E3779B97F4A7C15L

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform int in [0, bound); bound must be positive. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

(* Uniform int in [lo, hi] inclusive. *)
let range t lo hi =
  if hi < lo then invalid_arg "Rng.range: hi < lo";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next t) 1L = 1L

let pick t l =
  match l with
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

(* Weighted choice over a non-empty [(weight, value)] list; weights are
   relative positive ints. *)
let weighted t choices =
  let total = List.fold_left (fun a (w, _) -> a + w) 0 choices in
  if total <= 0 then invalid_arg "Rng.weighted: no positive weight";
  let roll = int t total in
  let rec go acc = function
    | [] -> invalid_arg "Rng.weighted: unreachable"
    | (w, v) :: rest -> if roll < acc + w then v else go (acc + w) rest
  in
  go 0 choices

(* Derive an independent stream (for per-program sub-generators). *)
let split t = create (Int64.logxor (next t) 0xA5A5_5A5A_0F0F_F0F0L)
