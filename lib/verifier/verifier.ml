(* The in-kernel-style eBPF verifier: a faithful small-scale reimplementation
   of the Linux design that the paper argues is untenable.

   Like the kernel's [do_check], it symbolically executes every program path
   over abstract register states (Reg_state/Vstate), prunes at join points
   when a previously verified state subsumes the current one, enforces an
   instruction-processing budget (the "program too complex" limit that §2.1
   blames for forced program splitting), checks every memory access against
   the pointer type's bounds, checks helper arguments against shallow
   prototypes (§2.2's blind spot), and tracks references and the spin lock
   so that no path exits holding either.

   Historical verifier bugs are injectable through [Vbug]; each changes one
   specific decision below, turning a rejection into an acceptance exactly
   the way the corresponding CVE did. *)

module Kver = Kerndata.Kver
module Bpf_map = Maps.Bpf_map
open Ebpf

type config = {
  version : Kver.t;
  max_insns : int;             (* BPF_MAXINSNS-style program size cap *)
  insn_budget : int;           (* total processed-instruction complexity cap *)
  max_states_per_point : int;
  allow_loops : bool;          (* false = pre-5.3 back-edge rejection *)
  track_ringbuf_refs : bool;   (* false = pre-5.8: reservations untracked *)
  prune : bool;                (* state pruning (ablation knob) *)
  allow_ptr_leaks : bool;      (* privileged (CAP_PERFMON) mode *)
  reject_speculative_oob : bool;
  (* the §4 transient-execution defence (commit b2157399, "prevent
     out-of-bounds speculation"): for unprivileged programs, refuse
     variable-offset pointer arithmetic into map values rather than trust a
     bounds check the speculative machine may ignore *)
  verbose : bool;              (* collect a per-insn verification log *)
  bugs : Vbug.t;
}

let default_config () =
  { version = Kver.V5_18; max_insns = 4096; insn_budget = 1_000_000;
    max_states_per_point = 64; allow_loops = true; track_ringbuf_refs = true;
    prune = true; allow_ptr_leaks = false; reject_speculative_oob = false;
    verbose = false; bugs = Vbug.none () }

type reject = { at_pc : int; reason : string }

type stats = {
  insns_processed : int;
  states_explored : int;
  prune_hits : int;
  callbacks_verified : int;
  log : string; (* the verification trace, when config.verbose *)
}

type verdict = (stats, reject) result

let pp_reject ppf r = Format.fprintf ppf "at insn %d: %s" r.at_pc r.reason

exception Reject of int * string

let reject pc fmt = Format.kasprintf (fun s -> raise (Reject (pc, s))) fmt

type env = {
  prog : Program.t;
  ctx_desc : Program.ctx_desc;
  config : config;
  map_def : int -> Bpf_map.def option;
  visited : (int, Vstate.t list ref) Hashtbl.t;
  prune_points : bool array;
  mutable insns_processed : int;
  mutable states_explored : int;
  mutable prune_hits : int;
  mutable callbacks_verified : int;
  mutable pending_callbacks : (int * Vstate.t) list;
  mutable seen_callbacks : int list;
  mutable next_id : int;
  logbuf : Buffer.t;
}

let vlog env fmt =
  Format.kasprintf
    (fun s ->
      if env.config.verbose then begin
        Buffer.add_string env.logbuf s;
        Buffer.add_char env.logbuf '\n'
      end)
    fmt

let fresh_id env =
  env.next_id <- env.next_id + 1;
  env.next_id

(* ------------------------------------------------------------------ *)
(* static checks                                                      *)
(* ------------------------------------------------------------------ *)

let check_registers env =
  Array.iteri
    (fun pc insn ->
      let chk_dst ?(writes = true) d =
        if not (Insn.valid_reg d) then reject pc "R%d is invalid" d;
        if writes && d = 10 then reject pc "frame pointer is read only"
      in
      let chk_src s = if not (Insn.valid_reg s) then reject pc "R%d is invalid" s in
      let chk_op = function Insn.Reg s -> chk_src s | Insn.Imm _ -> () in
      match insn with
      | Insn.Alu { dst; src; _ } -> chk_dst dst; chk_op src
      | Insn.Ld_imm64 (dst, _) | Insn.Ld_map_fd (dst, _) -> chk_dst dst
      | Insn.Ldx { dst; src; _ } -> chk_dst dst; chk_src src
      | Insn.St { dst; _ } -> chk_dst ~writes:false dst
      | Insn.Stx { dst; src; _ } -> chk_dst ~writes:false dst; chk_src src
      | Insn.Atomic { dst; src; fetch; _ } ->
        chk_dst ~writes:false dst;
        if fetch then chk_dst src else chk_src src
      | Insn.Jmp { dst; src; _ } -> chk_dst ~writes:false dst; chk_op src
      | Insn.Ja _ | Insn.Call _ | Insn.Call_sub _ | Insn.Exit -> ())
    env.prog.Program.insns

let check_cfg env =
  let insns = env.prog.Program.insns in
  let n = Array.length insns in
  if n = 0 then reject 0 "empty program";
  (* jump ranges, and no fall-through off the end *)
  Array.iteri
    (fun pc insn ->
      let target off =
        let t = pc + 1 + off in
        if t < 0 || t >= n then reject pc "jump out of range (to %d)" t
      in
      match insn with
      | Insn.Ja off -> target off
      | Insn.Jmp { off; _ } -> target off
      | Insn.Call_sub off -> target off
      | _ -> ())
    insns;
  (match insns.(n - 1) with
  | Insn.Exit | Insn.Ja _ -> ()
  | Insn.Jmp _ | Insn.Alu _ | Insn.Ld_imm64 _ | Insn.Ld_map_fd _ | Insn.Ldx _
  | Insn.St _ | Insn.Stx _ | Insn.Atomic _ | Insn.Call _ | Insn.Call_sub _ ->
    reject (n - 1) "fall-through off the program end");
  let cfg = Cfg.build insns in
  if (not env.config.allow_loops) && Cfg.has_loop cfg then begin
    match Cfg.back_edges cfg with
    | (from, to_) :: _ -> reject from "back-edge to insn %d (loops are not allowed)" to_
    | [] -> ()
  end;
  (* map fd resolution *)
  Array.iteri
    (fun pc insn ->
      match insn with
      | Insn.Ld_map_fd (_, fd) ->
        if env.map_def fd = None then reject pc "fd %d is not pointing to a valid map" fd
      | _ -> ())
    insns

let compute_prune_points insns =
  let n = Array.length insns in
  let marks = Array.make n false in
  Array.iteri
    (fun pc insn ->
      let mark t = if t >= 0 && t < n then marks.(t) <- true in
      match insn with
      | Insn.Ja off -> mark (pc + 1 + off)
      | Insn.Jmp { off; _ } ->
        mark (pc + 1 + off);
        mark (pc + 1)
      | Insn.Call _ -> mark (pc + 1)
      | _ -> ())
    insns;
  marks

(* ------------------------------------------------------------------ *)
(* memory access checking                                             *)
(* ------------------------------------------------------------------ *)

let slot_of_addr addr = ((-addr) - 1) / 8

(* Check and perform a stack access.  Returns the loaded register state for
   reads. *)
let stack_access env st ~pc ~(reg : Reg_state.t) ~insn_off ~size ~(access : [ `Read | `Write of Reg_state.t option ]) =
  if not (Tnum.equal reg.Reg_state.var_off Tnum.zero) then
    reject pc "variable stack access is not allowed";
  let addr = reg.Reg_state.off + insn_off in
  if addr >= 0 || addr < -Vstate.stack_size || addr + size > 0 then
    reject pc "invalid stack access off=%d size=%d" addr size;
  let first = slot_of_addr (addr + size - 1) in
  let last = slot_of_addr addr in
  match access with
  | `Write value ->
    let aligned_full = addr mod 8 = 0 && size = 8 in
    (match value with
    | Some v when Reg_state.is_pointer v && aligned_full ->
      if env.config.bugs.Vbug.spill_ptr_leak then
        (* the bug: the spill is recorded as plain initialized bytes, so a
           later read yields an unknown *scalar* holding a kernel address *)
        st.Vstate.stack.(first) <- Vstate.Slot_misc
      else st.Vstate.stack.(first) <- Vstate.Slot_spill v
    | Some v when Reg_state.is_pointer v ->
      reject pc "partial spill of a pointer is not allowed"
    | Some v when aligned_full && Reg_state.const_value v = Some 0L ->
      st.Vstate.stack.(first) <- Vstate.Slot_zero
    | Some v when aligned_full -> st.Vstate.stack.(first) <- Vstate.Slot_spill v
    | _ ->
      for i = first to last do
        st.Vstate.stack.(i) <- Vstate.Slot_misc
      done);
    Reg_state.not_init
  | `Read ->
    if first <> last then begin
      (* multi-slot read: all bytes must be initialized; result is unknown *)
      for i = first to last do
        match st.Vstate.stack.(i) with
        | Vstate.Slot_invalid -> reject pc "invalid read from stack off %d" addr
        | Vstate.Slot_spill r when Reg_state.is_pointer r ->
          if not env.config.allow_ptr_leaks then
            reject pc "corrupted spill memory at off %d" addr
        | _ -> ()
      done;
      Reg_state.unknown_scalar
    end
    else
      match st.Vstate.stack.(first) with
      | Vstate.Slot_invalid -> reject pc "invalid read from stack off %d" addr
      | Vstate.Slot_zero -> Reg_state.const_scalar 0L
      | Vstate.Slot_misc -> Reg_state.unknown_scalar
      | Vstate.Slot_spill r ->
        if size = 8 && addr mod 8 = 0 then r
        else if Reg_state.is_pointer r && not env.config.allow_ptr_leaks then
          reject pc "corrupted spill memory at off %d" addr
        else Reg_state.unknown_scalar

(* Bounds check for pointer-to-buffer types (map values, helper memory).
   The variable part [umin, umax] is unsigned; comparisons must be too. *)
let buffer_access env ~pc ~(reg : Reg_state.t) ~insn_off ~size ~bound ~what =
  ignore env;
  let open Reg_state in
  let base = reg.off + insn_off in
  if base < 0 then
    reject pc "%s access might be negative (off=%d)" what base;
  if Int64.unsigned_compare reg.umax (Int64.of_int bound) > 0 then
    reject pc "R offset is outside of the %s (umax=%Lu)" what reg.umax;
  let max_total = Int64.add reg.umax (Int64.of_int (base + size)) in
  if Int64.unsigned_compare max_total (Int64.of_int bound) > 0 then
    reject pc "invalid access to %s: off=%Lu size=%d bound=%d" what
      (Int64.add reg.umax (Int64.of_int base)) size bound

let check_mem_access env st ~pc ~reg_no ~insn_off ~size ~access =
  let reg = Vstate.reg st reg_no in
  let open Reg_state in
  if not (is_init reg) then reject pc "R%d !read_ok" reg_no;
  if is_maybe_null reg then
    reject pc "R%d invalid mem access '%a'; possibly NULL" reg_no
      (fun ppf r -> Reg_state.pp_rtype ppf r.Reg_state.rtype) reg;
  (match access with
  | `Write (Some v) when Reg_state.is_pointer v && reg.rtype <> Ptr_stack ->
    if not env.config.allow_ptr_leaks then
      reject pc "R%d leaks addr into %a" reg_no
        (fun ppf r -> Reg_state.pp_rtype ppf r.Reg_state.rtype) reg
  | _ -> ());
  match reg.rtype with
  | Ptr_stack -> stack_access env st ~pc ~reg ~insn_off ~size ~access
  | Ptr_ctx -> (
    if not (Tnum.equal reg.var_off Tnum.zero) || reg.off <> 0 then
      reject pc "variable ctx access is not allowed";
    match Program.find_ctx_field env.ctx_desc ~off:insn_off ~size with
    | None -> reject pc "invalid bpf_context access off=%d size=%d" insn_off size
    | Some f -> (
      match access with
      | `Read -> Reg_state.unknown_scalar
      | `Write _ ->
        if not f.Program.writable then
          reject pc "write to read-only ctx field %s" f.Program.fname;
        Reg_state.not_init))
  | Ptr_map_value { map_id } -> (
    let def =
      match env.map_def map_id with
      | Some d -> d
      | None -> reject pc "internal: unknown map %d" map_id
    in
    buffer_access env ~pc ~reg ~insn_off ~size ~bound:def.Bpf_map.value_size
      ~what:"map_value";
    (* forbid touching the embedded spin lock directly *)
    (match def.Bpf_map.lock_off with
    | Some l when insn_off + reg.off <= l && l < insn_off + reg.off + size ->
      reject pc "direct access to bpf_spin_lock is not allowed"
    | _ -> ());
    match access with `Read -> Reg_state.unknown_scalar | `Write _ -> Reg_state.not_init)
  | Ptr_mem { mem_size } -> (
    buffer_access env ~pc ~reg ~insn_off ~size ~bound:mem_size ~what:"mem";
    match access with `Read -> Reg_state.unknown_scalar | `Write _ -> Reg_state.not_init)
  | Ptr_sock -> (
    match access with
    | `Write _ -> reject pc "cannot write into sock"
    | `Read ->
      buffer_access env ~pc ~reg ~insn_off ~size ~bound:128 ~what:"sock";
      Reg_state.unknown_scalar)
  | Ptr_task -> (
    match access with
    | `Write _ -> reject pc "cannot write into task_struct"
    | `Read ->
      buffer_access env ~pc ~reg ~insn_off ~size ~bound:256 ~what:"task_struct";
      Reg_state.unknown_scalar)
  | Scalar | Not_init | Map_handle _ | Ptr_map_value_or_null _ | Ptr_mem_or_null _
  | Ptr_sock_or_null | Ptr_task_or_null ->
    reject pc "R%d invalid mem access '%a'" reg_no
      (fun ppf r -> Reg_state.pp_rtype ppf r.Reg_state.rtype) reg

(* ------------------------------------------------------------------ *)
(* ALU                                                                *)
(* ------------------------------------------------------------------ *)

let operand_state st = function
  | Insn.Reg r -> Vstate.reg st r
  | Insn.Imm v -> Reg_state.const_scalar (Int64.of_int v)

let do_alu env st ~pc ~(op : Insn.alu_op) ~width ~dst ~src =
  let open Reg_state in
  let dreg = Vstate.reg st dst in
  let sreg = operand_state st src in
  (match src with
  | Insn.Reg r -> if not (is_init (Vstate.reg st r)) then reject pc "R%d !read_ok" r
  | Insn.Imm _ -> ());
  if op <> Insn.Mov && not (is_init dreg) then reject pc "R%d !read_ok" dst;
  let result =
    match op with
    | Insn.Mov -> (
      match width with
      | Insn.W64 -> { sreg with ref_obj_id = sreg.ref_obj_id }
      | Insn.W32 ->
        if is_pointer sreg then
          if env.config.allow_ptr_leaks then Reg_state.unknown_scalar
          else reject pc "R%d partial copy of pointer" dst
        else zext32 sreg)
    | Insn.Add | Insn.Sub when is_pointer dreg || is_pointer sreg -> (
      (* pointer arithmetic *)
      if width = Insn.W32 then reject pc "32-bit pointer arithmetic prohibited";
      if st.Vstate.lock_held && false then ();
      let ptr, scalar, ptr_is_dst =
        if is_pointer dreg && is_pointer sreg then begin
          if op = Insn.Sub && dreg.rtype = Ptr_stack && sreg.rtype = Ptr_stack then
            (* fp - fp is a scalar *)
            (dreg, sreg, true)
          else reject pc "R%d pointer %s pointer prohibited" dst
              (if op = Insn.Add then "+=" else "-=")
        end
        else if is_pointer dreg then (dreg, sreg, true)
        else (sreg, dreg, false)
      in
      if is_pointer dreg && is_pointer sreg then
        (* the fp - fp case: result is an unknown scalar *)
        Reg_state.unknown_scalar
      else begin
        if (not ptr_is_dst) && op = Insn.Sub then
          reject pc "R%d tried to subtract pointer from scalar" dst;
        if is_maybe_null ptr && not env.config.bugs.Vbug.ptr_arith_or_null then
          reject pc "R%d pointer arithmetic on %a prohibited, null-check it first" dst
            (fun ppf r -> Reg_state.pp_rtype ppf r.Reg_state.rtype) ptr;
        (match ptr.rtype with
        | Ptr_ctx when not (Tnum.is_const scalar.var_off) ->
          reject pc "variable offset on ctx pointer is not allowed"
        | Ptr_sock | Ptr_task | Ptr_sock_or_null | Ptr_task_or_null ->
          if not (Tnum.is_const scalar.var_off) then
            reject pc "variable offset on %a is not allowed"
              (fun ppf r -> Reg_state.pp_rtype ppf r.Reg_state.rtype) ptr
        | _ -> ());
        if not (is_scalar scalar) then reject pc "R%d pointer arithmetic with non-scalar" dst;
        match const_value scalar with
        | Some c ->
          let c = if op = Insn.Sub then Int64.neg c else c in
          let noff = ptr.off + Int64.to_int c in
          if abs noff > 1 lsl 29 then reject pc "value out of range for pointer offset";
          { ptr with off = noff }
        | None ->
          if env.config.reject_speculative_oob then
            (match ptr.rtype with
            | Ptr_map_value _ | Ptr_mem _ ->
              reject pc
                "R%d variable offset into a map value may be exploited under \
                 speculation (unprivileged)"
                dst
            | _ -> ());
          if op = Insn.Sub then reject pc "R%d variable pointer subtraction" dst
          else
            let sum = Reg_state.scalar_add { scalar with rtype = Scalar }
                { ptr with rtype = Scalar; off = 0; var_off = ptr.var_off;
                  smin = ptr.smin; smax = ptr.smax; umin = ptr.umin; umax = ptr.umax }
            in
            { ptr with var_off = sum.var_off; smin = sum.smin; smax = sum.smax;
              umin = sum.umin; umax = sum.umax }
      end)
    | Insn.Add | Insn.Sub | Insn.Mul | Insn.Div | Insn.Or | Insn.And | Insn.Lsh
    | Insn.Rsh | Insn.Mod | Insn.Xor | Insn.Arsh | Insn.Neg -> (
      (* scalar ALU *)
      if is_pointer dreg || is_pointer sreg then
        if env.config.allow_ptr_leaks then Reg_state.unknown_scalar
        else reject pc "R%d pointer arithmetic with '%s' prohibited" dst
            (Insn.alu_op_to_string op)
      else begin
        let d, s =
          match width with
          | Insn.W64 -> (dreg, sreg)
          | Insn.W32 -> (zext32 dreg, zext32 sreg)
        in
        let r =
          match op with
          | Insn.Add -> scalar_add d s
          | Insn.Sub ->
            if width = Insn.W32 && env.config.bugs.Vbug.bounds_32bit_broken then begin
              (* the bug: bounds computed as if the 32-bit subtraction cannot
                 wrap — negatives clamped to zero instead of widening *)
              let naive = scalar_sub d s in
              { naive with
                umin = 0L;
                umax = Reg_state.s_max 0L naive.smax;
                smin = 0L;
                smax = Reg_state.s_max 0L naive.smax;
                var_off = Tnum.range ~min:0L ~max:(Reg_state.s_max 0L naive.smax) }
            end
            else scalar_sub d s
          | Insn.Mul -> scalar_mul d s
          | Insn.And -> scalar_and d s
          | Insn.Or -> scalar_or d s
          | Insn.Xor -> scalar_xor d s
          | Insn.Lsh | Insn.Rsh | Insn.Arsh -> (
            let kind = match op with
              | Insn.Lsh -> `Lsh | Insn.Rsh -> `Rsh | _ -> `Arsh
            in
            match const_value s with
            | Some c when Int64.compare c 0L >= 0 && Int64.compare c 64L < 0 ->
              scalar_shift_const kind d (Int64.to_int c)
            | Some _ -> reject pc "invalid shift amount"
            | None -> Reg_state.mark_unknown d)
          | Insn.Div | Insn.Mod -> (
            match const_value s with
            | Some c -> scalar_div_const d c
            | None -> Reg_state.mark_unknown d)
          | Insn.Neg -> scalar_neg d
          | Insn.Mov -> assert false
        in
        match width with Insn.W64 -> r | Insn.W32 -> zext32 r
      end)
  in
  (* never allow writing a ref-carrying reg's obligation away silently: the
     obligation lives in st.refs; the reg copy is fine *)
  Vstate.set_reg st dst result

(* ------------------------------------------------------------------ *)
(* conditional jumps                                                  *)
(* ------------------------------------------------------------------ *)

let u_lt a b = Int64.unsigned_compare a b < 0
let u_le a b = Int64.unsigned_compare a b <= 0

(* Decide the branch statically if the bounds allow (is_branch_taken). *)
let branch_taken (cond : Insn.cond) (d : Reg_state.t) (c : int64) : bool option =
  let open Reg_state in
  match cond with
  | Insn.Eq ->
    if is_const d && const_value d = Some c then Some true
    else if not (Tnum.contains d.var_off c) || u_lt c d.umin || u_lt d.umax c then
      Some false
    else None
  | Insn.Ne -> (
    if is_const d && const_value d = Some c then Some false
    else if not (Tnum.contains d.var_off c) || u_lt c d.umin || u_lt d.umax c then
      Some true
    else None)
  | Insn.Gt -> if u_lt c d.umin then Some true else if u_le d.umax c then Some false else None
  | Insn.Ge -> if u_le c d.umin then Some true else if u_lt d.umax c then Some false else None
  | Insn.Lt -> if u_lt d.umax c then Some true else if u_le c d.umin then Some false else None
  | Insn.Le -> if u_le d.umax c then Some true else if u_lt c d.umin then Some false else None
  | Insn.Sgt ->
    if Int64.compare d.smin c > 0 then Some true
    else if Int64.compare d.smax c <= 0 then Some false
    else None
  | Insn.Sge ->
    if Int64.compare d.smin c >= 0 then Some true
    else if Int64.compare d.smax c < 0 then Some false
    else None
  | Insn.Slt ->
    if Int64.compare d.smax c < 0 then Some true
    else if Int64.compare d.smin c >= 0 then Some false
    else None
  | Insn.Sle ->
    if Int64.compare d.smax c <= 0 then Some true
    else if Int64.compare d.smin c > 0 then Some false
    else None
  | Insn.Set ->
    if not (Int64.equal (Int64.logand d.var_off.Tnum.value c) 0L) then Some true
    else if Int64.equal (Int64.logand (Tnum.umax d.var_off) c) 0L then Some false
    else None

(* Refine a scalar register's bounds given that (reg cond c) is [taken]. *)
let refine_against_const (cond : Insn.cond) (d : Reg_state.t) (c : int64) ~taken =
  let open Reg_state in
  if d.rtype <> Scalar then d
  else
    let d =
      match (cond, taken) with
      | Insn.Eq, true | Insn.Ne, false ->
        { d with var_off = Tnum.intersect d.var_off (Tnum.const c);
          umin = c; umax = c; smin = c; smax = c }
      | Insn.Eq, false | Insn.Ne, true -> d (* a single excluded point: keep *)
      | Insn.Gt, true | Insn.Le, false ->
        if Int64.equal c (-1L) then d else { d with umin = u_max d.umin (Int64.add c 1L) }
      | Insn.Gt, false | Insn.Le, true -> { d with umax = u_min d.umax c }
      | Insn.Ge, true | Insn.Lt, false -> { d with umin = u_max d.umin c }
      | Insn.Ge, false | Insn.Lt, true ->
        if Int64.equal c 0L then d else { d with umax = u_min d.umax (Int64.sub c 1L) }
      | Insn.Sgt, true | Insn.Sle, false ->
        if Int64.equal c Int64.max_int then d
        else { d with smin = s_max d.smin (Int64.add c 1L) }
      | Insn.Sgt, false | Insn.Sle, true -> { d with smax = s_min d.smax c }
      | Insn.Sge, true | Insn.Slt, false -> { d with smin = s_max d.smin c }
      | Insn.Sge, false | Insn.Slt, true ->
        if Int64.equal c Int64.min_int then d
        else { d with smax = s_min d.smax (Int64.sub c 1L) }
      | Insn.Set, _ -> d
    in
    bounds_sync d

(* ------------------------------------------------------------------ *)
(* helper calls                                                       *)
(* ------------------------------------------------------------------ *)

(* Memory-region readability/writability for helper buffer args. *)
let helper_buffer_check env st ~pc ~reg_no ~min_size ~max_size ~write =
  let reg = Vstate.reg st reg_no in
  let open Reg_state in
  if is_maybe_null reg then reject pc "R%d type=%a expected non-NULL buffer" reg_no
      (fun ppf r -> Reg_state.pp_rtype ppf r.Reg_state.rtype) reg;
  match reg.rtype with
  | Ptr_stack ->
    if not (Tnum.equal reg.var_off Tnum.zero) then
      reject pc "R%d variable stack buffer" reg_no;
    let addr = reg.off in
    if addr >= 0 || addr < -Vstate.stack_size || addr + max_size > 0 then
      reject pc "R%d invalid stack buffer off=%d size=%d" reg_no addr max_size;
    if write then begin
      (* the helper initializes the buffer *)
      let first = slot_of_addr (addr + max_size - 1) in
      let last = slot_of_addr addr in
      for i = first to last do
        st.Vstate.stack.(i) <- Vstate.Slot_misc
      done
    end
    else begin
      (* all bytes the helper may read must be initialized *)
      let first = slot_of_addr (addr + max_size - 1) in
      let last = slot_of_addr addr in
      for i = first to last do
        if st.Vstate.stack.(i) = Vstate.Slot_invalid then
          reject pc "R%d reads uninitialized stack (slot %d)" reg_no i
      done
    end
  | Ptr_map_value { map_id } ->
    let def =
      match env.map_def map_id with
      | Some d -> d
      | None -> reject pc "internal: unknown map %d" map_id
    in
    buffer_access env ~pc ~reg ~insn_off:0 ~size:max_size
      ~bound:def.Bpf_map.value_size ~what:"map_value"
  | Ptr_mem { mem_size } ->
    buffer_access env ~pc ~reg ~insn_off:0 ~size:max_size ~bound:mem_size ~what:"mem"
  | _ ->
    ignore min_size;
    reject pc "R%d type=%a expected buffer pointer" reg_no
      (fun ppf r -> Reg_state.pp_rtype ppf r.Reg_state.rtype) reg

(* Resolve the size carried by another argument register. *)
let resolve_size env st ~pc ~(spec : Helpers.Proto.mem_size) ~require_const =
  ignore env;
  match spec with
  | Helpers.Proto.Fixed n -> n
  | Helpers.Proto.Size_arg i ->
    let reg_no = i + 1 in
    let r = Vstate.reg st reg_no in
    if not (Reg_state.is_scalar r) then reject pc "R%d expected size scalar" reg_no;
    if require_const then
      match Reg_state.const_value r with
      | Some c when Int64.compare c 0L > 0 && Int64.compare c 0x10000L <= 0 ->
        Int64.to_int c
      | _ -> reject pc "R%d must be a known, sane constant size" reg_no
    else begin
      let umax = r.Reg_state.umax in
      if Int64.unsigned_compare umax 0x10000L > 0 then
        reject pc "R%d unbounded memory size (umax=%Lu)" reg_no umax;
      if Int64.equal umax 0L then reject pc "R%d zero-sized memory access" reg_no;
      Int64.to_int umax
    end

let do_call env st ~pc ~helper_id =
  let open Helpers in
  let def =
    match Registry.find helper_id with
    | Some d -> d
    | None -> reject pc "invalid func unknown#%d" helper_id
  in
  if Kver.compare def.Registry.introduced env.config.version > 0 then
    reject pc "helper %s not available in %s" def.Registry.name
      (Kver.to_string env.config.version);
  if env.config.bugs.Vbug.loop_inline_uaf && String.equal def.Registry.name "bpf_loop"
  then
    raise (Vbug.Verifier_crash "use-after-free in inline_bpf_loop (fb4e3b33)");
  if st.Vstate.lock_held && not (Proto.unlocks def.Registry.proto) then
    reject pc "helper call %s is not allowed while holding a lock" def.Registry.name;
  let proto = def.Registry.proto in
  (* scan args r1..rN *)
  let current_map = ref None in
  let callback_pc = ref None in
  List.iteri
    (fun i (arg : Proto.arg_type) ->
      let reg_no = i + 1 in
      let r = Vstate.reg st reg_no in
      let open Reg_state in
      if (not (is_init r)) && arg <> Proto.Arg_anything then
        reject pc "R%d !read_ok (helper %s arg %d)" reg_no def.Registry.name (i + 1);
      match arg with
      | Proto.Arg_anything -> ()
      | Proto.Arg_scalar ->
        if not (is_scalar r) then
          reject pc "R%d type=%a expected scalar" reg_no
            (fun ppf x -> Reg_state.pp_rtype ppf x.Reg_state.rtype) r
      | Proto.Arg_map_handle -> (
        match r.rtype with
        | Map_handle { map_id } -> (
          match env.map_def map_id with
          | Some def -> current_map := Some (map_id, def)
          | None -> reject pc "internal: unknown map %d" map_id)
        | _ -> reject pc "R%d expected map pointer" reg_no)
      | Proto.Arg_map_key -> (
        match !current_map with
        | None -> reject pc "R%d map key without preceding map arg" reg_no
        | Some (_, def) ->
          helper_buffer_check env st ~pc ~reg_no ~min_size:def.Bpf_map.key_size
            ~max_size:def.Bpf_map.key_size ~write:false)
      | Proto.Arg_map_value -> (
        match !current_map with
        | None -> reject pc "R%d map value without preceding map arg" reg_no
        | Some (_, def) ->
          helper_buffer_check env st ~pc ~reg_no ~min_size:def.Bpf_map.value_size
            ~max_size:def.Bpf_map.value_size ~write:false)
      | Proto.Arg_map_value_out -> (
        match !current_map with
        | None -> reject pc "R%d map value without preceding map arg" reg_no
        | Some (_, def) ->
          helper_buffer_check env st ~pc ~reg_no ~min_size:def.Bpf_map.value_size
            ~max_size:def.Bpf_map.value_size ~write:true)
      | Proto.Arg_mem_readable spec ->
        let size = resolve_size env st ~pc ~spec ~require_const:false in
        helper_buffer_check env st ~pc ~reg_no ~min_size:size ~max_size:size
          ~write:false
      | Proto.Arg_mem_writable spec ->
        let size = resolve_size env st ~pc ~spec ~require_const:false in
        helper_buffer_check env st ~pc ~reg_no ~min_size:size ~max_size:size
          ~write:true
      | Proto.Arg_ctx ->
        if r.rtype <> Ptr_ctx then reject pc "R%d expected ctx pointer" reg_no
      | Proto.Arg_task -> (
        match r.rtype with
        | Ptr_task -> ()
        | Ptr_task_or_null when env.config.bugs.Vbug.task_or_null_as_task ->
          (* the bug: maybe-NULL accepted where non-NULL required *)
          ()
        | Scalar when env.config.bugs.Vbug.task_or_null_as_task -> ()
        | _ ->
          reject pc "R%d type=%a expected task pointer (null-check it first)" reg_no
            (fun ppf x -> Reg_state.pp_rtype ppf x.Reg_state.rtype) r)
      | Proto.Arg_sock ->
        if r.rtype <> Ptr_sock then
          reject pc "R%d expected referenced sock pointer" reg_no
      | Proto.Arg_spin_lock -> (
        match r.rtype with
        | Ptr_map_value { map_id } -> (
          match env.map_def map_id with
          | Some def -> (
            match def.Bpf_map.lock_off with
            | Some l when r.off = l && Tnum.equal r.var_off Tnum.zero ->
              current_map := Some (map_id, def)
            | Some _ -> reject pc "R%d does not point at the map's bpf_spin_lock" reg_no
            | None -> reject pc "map does not contain a bpf_spin_lock" )
          | None -> reject pc "internal: unknown map %d" map_id)
        | _ -> reject pc "R%d expected map value with bpf_spin_lock" reg_no)
      | Proto.Arg_callback_pc -> (
        match Reg_state.const_value r with
        | Some c
          when Int64.compare c 0L >= 0
               && Int64.to_int c < Array.length env.prog.Program.insns ->
          callback_pc := Some (Int64.to_int c)
        | _ -> reject pc "R%d callback target must be a known valid insn" reg_no)
      | Proto.Arg_ringbuf_mem ->
        (match r.rtype with
        | Ptr_mem _ when r.ref_obj_id <> 0 || not env.config.track_ringbuf_refs -> ()
        | Ptr_mem _ -> reject pc "R%d mem is not a tracked ringbuf reservation" reg_no
        | _ -> reject pc "R%d expected ringbuf reservation" reg_no))
    proto.Proto.args;
  (* effects: releases *)
  (match Proto.releases proto with
  | None -> ()
  | Some i ->
    let reg_no = i + 1 in
    let r = Vstate.reg st reg_no in
    let rid = r.Reg_state.ref_obj_id in
    if rid = 0 then begin
      if env.config.track_ringbuf_refs || not (String.equal def.Registry.name "bpf_ringbuf_submit" || String.equal def.Registry.name "bpf_ringbuf_discard") then
        reject pc "release of unreferenced object in R%d" reg_no
    end
    else begin
      if not (List.mem_assoc rid st.Vstate.refs) then
        reject pc "release of already-released reference id=%d" rid;
      st.Vstate.refs <- List.remove_assoc rid st.Vstate.refs;
      Vstate.invalidate_ref st ~rid
    end);
  (* effects: lock *)
  if Proto.locks proto then begin
    if st.Vstate.lock_held then reject pc "second bpf_spin_lock while holding one";
    st.Vstate.lock_held <- true
  end;
  if Proto.unlocks proto then begin
    if not st.Vstate.lock_held then reject pc "bpf_spin_unlock without holding a lock";
    st.Vstate.lock_held <- false
  end;
  (* callback body gets queued for its own verification pass *)
  (match !callback_pc with
  | None -> ()
  | Some cb ->
    if not (List.mem cb env.seen_callbacks) then begin
      env.seen_callbacks <- cb :: env.seen_callbacks;
      let entry = Vstate.init () in
      (* r1 = loop index / element index; r2 = callback context (bpf_loop)
         or map value (for_each); r3 = context (for_each) *)
      Vstate.set_reg entry 1 Reg_state.unknown_scalar;
      (if String.equal def.Registry.name "bpf_for_each_map_elem" then begin
         (match !current_map with
         | Some (map_id, _) ->
           Vstate.set_reg entry 2
             (Reg_state.pointer (Reg_state.Ptr_map_value { map_id }))
         | None -> Vstate.set_reg entry 2 Reg_state.unknown_scalar);
         Vstate.set_reg entry 3 (Vstate.reg st 3)
       end
       else Vstate.set_reg entry 2 (Vstate.reg st 3));
      env.pending_callbacks <- (cb, entry) :: env.pending_callbacks
    end);
  (* resolve any return-size argument before the caller-saved clobber *)
  let ret_mem_size =
    match proto.Proto.ret with
    | Proto.Ret_mem_or_null spec ->
      Some (resolve_size env st ~pc ~spec ~require_const:true)
    | _ -> None
  in
  (* clobber caller-saved registers and set r0 *)
  for i = 1 to 5 do
    Vstate.set_reg st i Reg_state.not_init
  done;
  let set_r0_or_null ~mk =
    let id = fresh_id env in
    let acquires = Proto.acquires proto in
    let tracked =
      acquires
      && (env.config.track_ringbuf_refs
         || not (String.equal def.Registry.name "bpf_ringbuf_reserve"))
    in
    let ref_obj_id = if tracked then id else 0 in
    if tracked then begin
      let kind =
        match proto.Proto.ret with
        | Proto.Ret_sock_or_null -> Vstate.Ref_sock
        | Proto.Ret_mem_or_null _ -> Vstate.Ref_ringbuf
        | _ -> Vstate.Ref_task
      in
      st.Vstate.refs <- (id, kind) :: st.Vstate.refs
    end;
    Vstate.set_reg st 0 { (mk ~id ~ref_obj_id) with Reg_state.id }
  in
  (match proto.Proto.ret with
  | Proto.Ret_scalar | Proto.Ret_void -> Vstate.set_reg st 0 Reg_state.unknown_scalar
  | Proto.Ret_task -> Vstate.set_reg st 0 (Reg_state.pointer Reg_state.Ptr_task)
  | Proto.Ret_map_value_or_null ->
    let map_id =
      match !current_map with
      | Some (map_id, _) -> map_id
      | None -> reject pc "map_value return without map arg"
    in
    set_r0_or_null ~mk:(fun ~id ~ref_obj_id ->
        ignore id;
        { (Reg_state.pointer (Reg_state.Ptr_map_value_or_null { map_id }))
          with Reg_state.ref_obj_id })
  | Proto.Ret_sock_or_null ->
    set_r0_or_null ~mk:(fun ~id ~ref_obj_id ->
        ignore id;
        { (Reg_state.pointer Reg_state.Ptr_sock_or_null) with Reg_state.ref_obj_id })
  | Proto.Ret_mem_or_null _ ->
    let size = Option.get ret_mem_size in
    set_r0_or_null ~mk:(fun ~id ~ref_obj_id ->
        ignore id;
        { (Reg_state.pointer (Reg_state.Ptr_mem_or_null { mem_size = size }))
          with Reg_state.ref_obj_id }));
  ()

(* ------------------------------------------------------------------ *)
(* the main symbolic-execution walk                                   *)
(* ------------------------------------------------------------------ *)

let check_exit env st ~pc =
  let r0 = Vstate.reg st 0 in
  if not (Reg_state.is_init r0) then reject pc "R0 !read_ok at exit";
  if Reg_state.is_pointer r0 && not env.config.allow_ptr_leaks then
    reject pc "R0 leaks addr as return value";
  if st.Vstate.lock_held then reject pc "bpf_spin_lock is held at exit";
  match st.Vstate.refs with
  | [] -> ()
  | (rid, _) :: _ -> reject pc "unreleased reference id=%d at exit" rid

(* One branch fork: returns the list of (pc, state) successors. *)
let do_jmp env st ~pc ~cond ~width ~dst ~src ~off =
  let open Reg_state in
  let dreg = Vstate.reg st dst in
  if not (is_init dreg) then reject pc "R%d !read_ok" dst;
  (match src with
  | Insn.Reg r -> if not (is_init (Vstate.reg st r)) then reject pc "R%d !read_ok" r
  | Insn.Imm _ -> ());
  let fallthrough = pc + 1 in
  let target = pc + 1 + off in
  let fork () = [ (target, st); (fallthrough, Vstate.copy st) ] in
  let sreg = operand_state st src in
  (* pointer null checks *)
  if is_maybe_null dreg && (cond = Insn.Eq || cond = Insn.Ne)
     && Reg_state.const_value sreg = Some 0L && dreg.id <> 0
  then begin
    let null_branch_is_target = cond = Insn.Eq in
    let st_null = if null_branch_is_target then st else Vstate.copy st in
    let st_nonnull = if null_branch_is_target then Vstate.copy st else st in
    Vstate.mark_ptr_or_null st_null ~id:dreg.id ~is_null:true;
    Vstate.mark_ptr_or_null st_nonnull ~id:dreg.id ~is_null:false;
    if null_branch_is_target then [ (target, st_null); (fallthrough, st_nonnull) ]
    else [ (target, st_nonnull); (fallthrough, st_null) ]
  end
  else if is_pointer dreg || is_pointer sreg then begin
    (* pointer comparisons: same-type is tolerated, mixed is a leak vector *)
    if is_pointer dreg && is_pointer sreg && dreg.rtype = sreg.rtype then fork ()
    else if env.config.allow_ptr_leaks then fork ()
    else if is_maybe_null dreg && Reg_state.const_value sreg = Some 0L then
      (* or_null without id: treat as an opaque fork *)
      fork ()
    else reject pc "R%d pointer comparison prohibited" dst
  end
  else begin
    (* scalar comparison *)
    let d_for_test = match width with Insn.W64 -> dreg | Insn.W32 -> zext32 dreg in
    match Reg_state.const_value (match width with Insn.W64 -> sreg | Insn.W32 -> zext32 sreg) with
    | Some c -> (
      match branch_taken cond d_for_test c with
      | Some true -> [ (target, st) ]
      | Some false -> [ (fallthrough, st) ]
      | None ->
        if width = Insn.W64 then begin
          let st_t = st and st_f = Vstate.copy st in
          Vstate.set_reg st_t dst (refine_against_const cond dreg c ~taken:true);
          Vstate.set_reg st_f dst (refine_against_const cond dreg c ~taken:false);
          (* if src was a const-valued register, nothing more to refine *)
          [ (target, st_t); (fallthrough, st_f) ]
        end
        else fork ())
    | None -> fork ()
  end

let process_insn env st ~pc =
  let insns = env.prog.Program.insns in
  let insn = insns.(pc) in
  match insn with
  | Insn.Alu { op; width; dst; src } ->
    do_alu env st ~pc ~op ~width ~dst ~src;
    `Continue (pc + 1)
  | Insn.Ld_imm64 (dst, v) ->
    Vstate.set_reg st dst (Reg_state.const_scalar v);
    `Continue (pc + 1)
  | Insn.Ld_map_fd (dst, fd) ->
    Vstate.set_reg st dst (Reg_state.pointer (Reg_state.Map_handle { map_id = fd }));
    `Continue (pc + 1)
  | Insn.Ldx { size; dst; src; off } ->
    let v =
      check_mem_access env st ~pc ~reg_no:src ~insn_off:off
        ~size:(Insn.size_bytes size) ~access:`Read
    in
    let v = if Insn.size_bytes size < 8 then Reg_state.zext32 v else v in
    Vstate.set_reg st dst v;
    `Continue (pc + 1)
  | Insn.St { size; dst; off; imm } ->
    let (_ : Reg_state.t) =
      check_mem_access env st ~pc ~reg_no:dst ~insn_off:off
        ~size:(Insn.size_bytes size)
        ~access:(`Write (Some (Reg_state.const_scalar (Int64.of_int imm))))
    in
    `Continue (pc + 1)
  | Insn.Stx { size; dst; off; src } ->
    let sreg = Vstate.reg st src in
    if not (Reg_state.is_init sreg) then reject pc "R%d !read_ok" src;
    let (_ : Reg_state.t) =
      check_mem_access env st ~pc ~reg_no:dst ~insn_off:off
        ~size:(Insn.size_bytes size) ~access:(`Write (Some sreg))
    in
    `Continue (pc + 1)
  | Insn.Atomic { aop; size; dst; src; off; fetch } ->
    if size <> Insn.W && size <> Insn.DW then
      reject pc "BPF_ATOMIC requires a 32- or 64-bit operand";
    let sreg = Vstate.reg st src in
    if not (Reg_state.is_init sreg) then reject pc "R%d !read_ok" src;
    if Reg_state.is_pointer sreg && not env.config.allow_ptr_leaks then
      reject pc "R%d leaks addr into memory (atomic)" src;
    (* the atomic-fetch pointer-leak class (fixes a82fe085/7d3baf0a): a
       fetch/cmpxchg on a slot holding a spilled pointer would surface the
       kernel address in a scalar register *)
    let dreg = Vstate.reg st dst in
    (match dreg.Reg_state.rtype with
    | Reg_state.Ptr_stack when Tnum.equal dreg.Reg_state.var_off Tnum.zero -> (
      let addr = dreg.Reg_state.off + off in
      if addr < 0 && addr >= -Vstate.stack_size && addr mod 8 = 0 then
        match st.Vstate.stack.(slot_of_addr addr) with
        | Vstate.Slot_spill r
          when Reg_state.is_pointer r
               && (fetch || aop = Insn.A_cmpxchg)
               && (not env.config.bugs.Vbug.spill_ptr_leak)
               && not env.config.allow_ptr_leaks ->
          reject pc "leaking pointer through atomic fetch at fp%+d" addr
        | _ -> ())
    | _ -> ());
    if aop = Insn.A_cmpxchg && not (Reg_state.is_init (Vstate.reg st 0)) then
      reject pc "R0 !read_ok (cmpxchg comparand)";
    (* the access is a read-modify-write *)
    let (_ : Reg_state.t) =
      check_mem_access env st ~pc ~reg_no:dst ~insn_off:off
        ~size:(Insn.size_bytes size) ~access:`Read
    in
    let (_ : Reg_state.t) =
      check_mem_access env st ~pc ~reg_no:dst ~insn_off:off
        ~size:(Insn.size_bytes size)
        ~access:(`Write (Some Reg_state.unknown_scalar))
    in
    if fetch then Vstate.set_reg st src Reg_state.unknown_scalar;
    if aop = Insn.A_cmpxchg then Vstate.set_reg st 0 Reg_state.unknown_scalar;
    `Continue (pc + 1)
  | Insn.Ja off -> `Continue (pc + 1 + off)
  | Insn.Jmp { cond; width; dst; src; off } ->
    `Branch (do_jmp env st ~pc ~cond ~width ~dst ~src ~off)
  | Insn.Call helper_id ->
    do_call env st ~pc ~helper_id;
    `Continue (pc + 1)
  | Insn.Call_sub off ->
    (* BPF-to-BPF call (the +500-LoC Fig. 2 feature).  Arguments must be
       scalars or the ctx pointer: passing frame-local pointers across
       frames is not supported in this model (documented simplification). *)
    let target = pc + 1 + off in
    if st.Vstate.lock_held then
      reject pc "BPF-to-BPF call while holding a lock";
    let entry = Vstate.init () in
    for i = 1 to 5 do
      let r = Vstate.reg st i in
      let open Reg_state in
      (match r.rtype with
      | Not_init | Scalar | Ptr_ctx -> ()
      | _ ->
        if is_init r then
          reject pc "R%d: only scalars and ctx may cross a bpf2bpf call" i);
      Vstate.set_reg entry i
        (if is_init r then (if r.rtype = Ptr_ctx then r else Reg_state.unknown_scalar)
         else Reg_state.not_init)
    done;
    if not (List.mem target env.seen_callbacks) then begin
      env.seen_callbacks <- target :: env.seen_callbacks;
      env.pending_callbacks <- (target, entry) :: env.pending_callbacks
    end;
    (* caller side: r1-r5 clobbered, r0 = callee result *)
    for i = 1 to 5 do
      Vstate.set_reg st i Reg_state.not_init
    done;
    Vstate.set_reg st 0 Reg_state.unknown_scalar;
    `Continue (pc + 1)
  | Insn.Exit ->
    check_exit env st ~pc;
    `Done

(* Walk all paths from (entry_pc, entry_state). *)
let explore env ~entry_pc ~entry_state =
  let stack = ref [ (entry_pc, entry_state) ] in
  let budget_exceeded () =
    env.insns_processed > env.config.insn_budget
  in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | (pc, st) :: rest ->
      stack := rest;
      env.states_explored <- env.states_explored + 1;
      let continue_ = ref (Some (pc, st)) in
      while !continue_ <> None do
        let cur_pc, cur_st =
          match !continue_ with Some x -> x | None -> assert false
        in
        continue_ := None;
        if budget_exceeded () then
          reject cur_pc
            "BPF program is too large. Processed %d insn (the complexity limit)"
            env.insns_processed;
        if cur_pc < 0 || cur_pc >= Array.length env.prog.Program.insns then
          reject cur_pc "jump out of range"
        else begin
          env.insns_processed <- env.insns_processed + 1;
          (* pruning at join points *)
          let pruned =
            env.config.prune && env.prune_points.(cur_pc)
            && (match Hashtbl.find_opt env.visited cur_pc with
               | None -> false
               | Some olds ->
                 List.exists
                   (fun old_ ->
                     Vstate.subsumes
                       ~ignore_scalar_bounds:env.config.bugs.Vbug.prune_too_eager
                       ~ignore_lock:env.config.bugs.Vbug.spin_lock_path_miss ~old_
                       cur_st)
                   !olds)
          in
          if pruned then begin
            env.prune_hits <- env.prune_hits + 1;
            vlog env "%d: safe (pruned: state subsumed by a verified one)" cur_pc
          end
          else begin
            if env.config.prune && env.prune_points.(cur_pc) then begin
              let cell =
                match Hashtbl.find_opt env.visited cur_pc with
                | Some l -> l
                | None ->
                  let l = ref [] in
                  Hashtbl.replace env.visited cur_pc l;
                  l
              in
              if List.length !cell < env.config.max_states_per_point then
                cell := Vstate.copy cur_st :: !cell
            end;
            vlog env "%d: %s ; %s" cur_pc
              (Insn.to_string env.prog.Program.insns.(cur_pc))
              (Format.asprintf "%a" Vstate.pp cur_st);
            match process_insn env cur_st ~pc:cur_pc with
            | `Continue next -> continue_ := Some (next, cur_st)
            | `Done -> ()
            | `Branch succs -> (
              match succs with
              | [] -> ()
              | (npc, nst) :: others ->
                stack := others @ !stack;
                continue_ := Some (npc, nst))
          end
        end
      done
  done

let make_env ~config ~map_def (prog : Program.t) =
  { prog; ctx_desc = Program.ctx_of_prog_type prog.Program.prog_type; config;
    map_def; visited = Hashtbl.create 64;
    prune_points = compute_prune_points prog.Program.insns; insns_processed = 0;
    states_explored = 0; prune_hits = 0; callbacks_verified = 0;
    pending_callbacks = []; seen_callbacks = []; next_id = 0;
    logbuf = Buffer.create 256 }

let tele_runs = Telemetry.Registry.counter "verifier.runs"
let tele_accepts = Telemetry.Registry.counter "verifier.accepts"
let tele_rejects = Telemetry.Registry.counter "verifier.rejects"
let tele_insns = Telemetry.Registry.counter "verifier.insns_processed"
let tele_states = Telemetry.Registry.counter "verifier.states_explored"
let tele_prunes = Telemetry.Registry.counter "verifier.prune_hits"
let tele_callbacks = Telemetry.Registry.counter "verifier.callbacks_verified"
let tele_time = Telemetry.Registry.histogram "verifier.ns"

(* Verification happens at load time, before the simulated clock starts to
   move, so the per-program verification-time histogram — the continuously
   measurable form of §2's "verification cost keeps growing" — is taken on
   the host's CPU clock instead. *)
let host_ns () = Int64.of_float (Sys.time () *. 1e9)

let tele_record env started_ns accepted =
  if Telemetry.Registry.enabled () then begin
    Telemetry.Registry.bump tele_runs;
  Telemetry.Registry.incr (if accepted then tele_accepts else tele_rejects);
  Telemetry.Registry.incr tele_insns ~n:env.insns_processed;
  Telemetry.Registry.incr tele_states ~n:env.states_explored;
  Telemetry.Registry.incr tele_prunes ~n:env.prune_hits;
  Telemetry.Registry.incr tele_callbacks ~n:env.callbacks_verified;
  Telemetry.Registry.observe tele_time (Int64.sub (host_ns ()) started_ns);
    Telemetry.Registry.point
      (if accepted then "verifier.accept" else "verifier.reject")
      ~value:(Int64.of_int env.states_explored)
  end

let verify ?(config = default_config ()) ~map_def (prog : Program.t) : verdict =
  let env = make_env ~config ~map_def prog in
  let started_ns = host_ns () in
  match
    if Array.length prog.Program.insns > config.max_insns then
      reject 0 "too many instructions (%d > %d)" (Array.length prog.Program.insns)
        config.max_insns;
    check_registers env;
    check_cfg env;
    explore env ~entry_pc:0 ~entry_state:(Vstate.init ());
    (* verify queued callback bodies with their own entry states *)
    let rec drain () =
      match env.pending_callbacks with
      | [] -> ()
      | (cb_pc, entry) :: rest ->
        env.pending_callbacks <- rest;
        (* callbacks use a fresh stack frame and may not touch outer refs *)
        Hashtbl.reset env.visited;
        explore env ~entry_pc:cb_pc ~entry_state:entry;
        env.callbacks_verified <- env.callbacks_verified + 1;
        drain ()
    in
    drain ()
  with
  | () ->
    tele_record env started_ns true;
    Ok
      { insns_processed = env.insns_processed; states_explored = env.states_explored;
        prune_hits = env.prune_hits; callbacks_verified = env.callbacks_verified;
        log = Buffer.contents env.logbuf }
  | exception Reject (at_pc, reason) ->
    tele_record env started_ns false;
    Error { at_pc; reason }

(* Convenience: verify against a map registry. *)
let verify_with_registry ?config ~registry prog =
  let map_def id =
    Option.map (fun m -> m.Bpf_map.def) (Bpf_map.Registry.find registry id)
  in
  verify ?config ~map_def prog
