(** Per-register abstract state, after Linux's [struct bpf_reg_state]: a
    register type, a fixed offset (for pointers), a tnum for the variable
    part, and signed/unsigned 64-bit bounds kept mutually consistent by
    {!bounds_sync}.  The ALU transfer functions are simplified ports of
    [adjust_scalar_min_max_vals].  The {!join}/{!widen} pair makes the
    state a (widened) join-semilattice for the dataflow engine in
    [lib/analysis]. *)

type rtype =
  | Not_init
  | Scalar
  | Ptr_ctx
  | Ptr_stack
  | Ptr_map_value of { map_id : int }
  | Ptr_map_value_or_null of { map_id : int }
  | Ptr_mem of { mem_size : int }
  | Ptr_mem_or_null of { mem_size : int }
  | Ptr_sock
  | Ptr_sock_or_null
  | Ptr_task
  | Ptr_task_or_null
  | Map_handle of { map_id : int }

type t = {
  rtype : rtype;
  off : int;         (** fixed offset component for pointers *)
  var_off : Tnum.t;  (** scalar value / variable offset *)
  smin : int64;
  smax : int64;
  umin : int64;
  umax : int64;
  id : int;          (** non-zero: null-check propagation group *)
  ref_obj_id : int;  (** non-zero: carries a reference obligation *)
}

(** {2 Int64 comparison helpers} *)

val u_le : int64 -> int64 -> bool
val u_lt : int64 -> int64 -> bool
val u_min : int64 -> int64 -> int64
val u_max : int64 -> int64 -> int64
val s_min : int64 -> int64 -> int64
val s_max : int64 -> int64 -> int64

(** {2 Constructors} *)

val not_init : t
val unknown_scalar : t
val const_scalar : int64 -> t
val pointer : ?off:int -> ?id:int -> ?ref_obj_id:int -> rtype -> t

(** {2 Predicates} *)

val is_pointer : t -> bool
val is_maybe_null : t -> bool
val is_scalar : t -> bool
val is_init : t -> bool
val is_const : t -> bool
val const_value : t -> int64 option

(** {2 Bounds maintenance} *)

val bounds_sync : t -> t
(** Keep tnum and the four bounds mutually consistent (the kernel's
    [__update_reg_bounds] / [__reg_deduce_bounds] / [__reg_bound_offset]
    trio). *)

val mark_unknown : t -> t
val zext32 : t -> t
(** 32-bit destination: zero-extend (the eBPF ALU32 semantics). *)

val signed_add_overflows : int64 -> int64 -> bool
val signed_sub_overflows : int64 -> int64 -> bool
val unsigned_add_overflows : int64 -> int64 -> bool

(** {2 Scalar transfer functions (64-bit)} *)

val scalar_add : t -> t -> t
val scalar_sub : t -> t -> t
val scalar_mul : t -> t -> t
val scalar_and : t -> t -> t
val scalar_or : t -> t -> t
val scalar_xor : t -> t -> t

val scalar_shift_const : [ `Lsh | `Rsh | `Arsh ] -> t -> int -> t

val scalar_div_const : t -> int64 -> t
(** Unsigned division by a constant.  Sound for [Div] only: callers
    modelling [Mod] must not reuse these bounds (9 mod 5 = 4 exceeds
    9 / 5 = 1). *)

val scalar_neg : t -> t

(** {2 Printing} *)

val pp_rtype : Format.formatter -> rtype -> unit
val pp : Format.formatter -> t -> unit

(** {2 Join / widening (for the abstract-interpretation engine)} *)

val join : t -> t -> t
(** Least upper bound.  Where the types disagree the result is [Not_init]
    — unusable, so any later use rejects (sound over-approximation). *)

val widen : prev:t -> t -> t
(** Standard widening: any bound that moved since the previous iterate
    jumps to its extreme, guaranteeing termination of the fixpoint. *)
