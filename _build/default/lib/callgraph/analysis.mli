(** Figure 3's measurement: BFS from every helper root of the generated
    kernel call graph, summarised as the distribution the paper reports
    (min/median/max, the 30+/500+ shares, log-scale buckets). *)

type measurement = { helper : string; nodes : int }

type distribution = {
  measurements : measurement list; (** sorted by nodes, ascending *)
  n : int;
  min_nodes : int;
  max_nodes : int;
  median : int;
  mean : float;
  share_ge30 : float;   (** paper: 52.2% *)
  share_ge500 : float;  (** paper: 34.5% *)
}

val measure : Kernel_graph.built -> distribution

val find : distribution -> string -> measurement option

val log_histogram : distribution -> int array
(** Buckets [1-9 | 10-99 | 100-999 | 1000-9999 | >=10000]. *)
