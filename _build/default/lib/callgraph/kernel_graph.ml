(* A synthetic-but-calibrated Linux-5.18 call graph with 249 helper roots.

   We cannot ship the kernel, so the graph is generated; what makes it a
   reproduction rather than an invention is the calibration protocol:

   - the helpers implemented in this repo are pinned to their per-helper
     node counts (including the two extremes the paper names exactly:
     bpf_get_current_pid_tgid = 1, bpf_sys_bpf = 4845);
   - the remaining helpers' sizes are drawn (deterministically) to hit the
     paper's aggregate statistics exactly: 52.2% of the 249 helpers reach
     30+ nodes and 34.5% reach 500+;
   - Figure 3 is then produced by *measuring* the generated graph with BFS,
     not by echoing the target numbers.

   Structure: a long "kernel core" chain (f_k calls f_{k+1}) gives each
   helper a precise reachable count; random forward shortcut edges add
   realistic fan-out without changing reachable-set sizes. *)

let census = Kerndata.Helper_history.census_5_18 (* 249 *)

let target_ge30_share = 0.522
let target_ge500_share = 0.345

type built = {
  graph : Graph.t;
  helper_roots : (string * int) list; (* helper name -> node id *)
}

(* deterministic xorshift PRNG *)
let make_rng seed =
  let state = ref seed in
  fun bound ->
    let x = !state in
    let x = Int64.logxor x (Int64.shift_left x 13) in
    let x = Int64.logxor x (Int64.shift_right_logical x 7) in
    let x = Int64.logxor x (Int64.shift_left x 17) in
    state := x;
    Int64.to_int (Int64.unsigned_rem x (Int64.of_int bound))

(* The multiset of target sizes for all [census] helpers: pinned sizes for
   implemented helpers + synthetic sizes filling the aggregate buckets. *)
let target_sizes () =
  let pinned =
    List.map
      (fun d -> (d.Helpers.Registry.name, d.Helpers.Registry.callgraph_nodes))
      Helpers.Registry.defs
  in
  let n_pinned = List.length pinned in
  let want_ge500 = int_of_float (Float.round (target_ge500_share *. float_of_int census)) in
  let want_ge30 = int_of_float (Float.round (target_ge30_share *. float_of_int census)) in
  let pinned_ge500 = List.length (List.filter (fun (_, s) -> s >= 500) pinned) in
  let pinned_mid =
    List.length (List.filter (fun (_, s) -> s >= 30 && s < 500) pinned)
  in
  let rng = make_rng 0x5eedf00dL in
  let rest = census - n_pinned in
  let need_ge500 = max 0 (want_ge500 - pinned_ge500) in
  let need_mid = max 0 (want_ge30 - want_ge500 - pinned_mid) in
  let need_small = max 0 (rest - need_ge500 - need_mid) in
  let synth = ref [] in
  for i = 0 to need_ge500 - 1 do
    (* log-spread between 500 and ~4400 *)
    let s = 500 + rng 900 + (i * 3900 / max 1 need_ge500 * (rng 100) / 100) in
    synth := (Printf.sprintf "bpf_helper_l%03d" i, min 4400 s) :: !synth
  done;
  for i = 0 to need_mid - 1 do
    let s = 30 + rng 470 in
    synth := (Printf.sprintf "bpf_helper_m%03d" i, s) :: !synth
  done;
  for i = 0 to need_small - 1 do
    let s = 1 + rng 29 in
    synth := (Printf.sprintf "bpf_helper_s%03d" i, s) :: !synth
  done;
  pinned @ List.rev !synth

let build () =
  let sizes = target_sizes () in
  let graph = Graph.create () in
  let max_size = List.fold_left (fun a (_, s) -> max a s) 1 sizes in
  (* kernel core chain long enough for the biggest helper *)
  let chain_len = max_size + 8 in
  let chain = Array.init chain_len (fun i -> Graph.add_node graph ~name:(Printf.sprintf "kfunc_%05d" i)) in
  for i = 0 to chain_len - 2 do
    Graph.add_edge graph ~src:chain.(i) ~dst:chain.(i + 1)
  done;
  (* forward shortcuts for realistic fan-out (reachable counts unchanged) *)
  let rng = make_rng 0xdecafbadL in
  for _ = 1 to chain_len * 2 do
    let a = rng (chain_len - 1) in
    let b = a + 1 + rng (chain_len - a - 1) in
    Graph.add_edge graph ~src:chain.(a) ~dst:chain.(b)
  done;
  (* helper roots: a helper with target size s calls the chain node whose
     reachable set has exactly s-1 nodes (the node at chain_len-(s-1)) *)
  let helper_roots =
    List.map
      (fun (name, s) ->
        let root = Graph.add_node graph ~name in
        if s > 1 then begin
          let entry = chain_len - (s - 1) in
          Graph.add_edge graph ~src:root ~dst:chain.(entry);
          (* cosmetic extra fan-out into the same reachable region *)
          let extra = rng 3 in
          for j = 1 to extra do
            let k = entry + j in
            if k < chain_len then Graph.add_edge graph ~src:root ~dst:chain.(k)
          done
        end;
        (name, root))
      sizes
  in
  { graph; helper_roots }
