lib/callgraph/graph.ml: Hashtbl List Option Queue
