lib/callgraph/graph.mli: Hashtbl
