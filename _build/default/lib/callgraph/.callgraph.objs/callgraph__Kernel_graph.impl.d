lib/callgraph/kernel_graph.ml: Array Float Graph Helpers Int64 Kerndata List Printf
