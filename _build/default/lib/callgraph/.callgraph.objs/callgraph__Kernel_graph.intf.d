lib/callgraph/kernel_graph.mli: Graph
