lib/callgraph/analysis.mli: Kernel_graph
