lib/callgraph/analysis.ml: Array Graph Kernel_graph List String
